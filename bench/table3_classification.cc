// Reproduces paper Table 3: classification of naming conventions per ITDK.
//
// Paper (Aug '20 IPv4): 795 good (43.6%), 111 promising (6.1%), 919 poor
// (50.4%) of 1825 suffixes with an apparent geohint; IPv6 skews toward good
// (56.4%).
#include <cstdio>

#include "common.h"
#include "util/strings.h"

using namespace hoiho;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  std::printf("Table 3: Classification of NCs (synthetic, scale=%.2f)\n\n", scale);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Classification", "IPv4 Aug '20", "IPv4 Mar '21", "IPv6 Nov '20",
                  "IPv6 Mar '21"});
  std::vector<std::string> good = {"Good"}, promising = {"Promising"}, poor = {"Poor"},
                           total_row = {"Total"};

  for (const sim::ItdkKind kind : {sim::ItdkKind::kIpv4Aug20, sim::ItdkKind::kIpv4Mar21,
                                   sim::ItdkKind::kIpv6Nov20, sim::ItdkKind::kIpv6Mar21}) {
    const sim::ItdkScenario sc = sim::make_itdk(kind, scale);
    const core::HoihoResult result = bench::run_hoiho(sc.world, sc.pings);

    // The paper's denominator: suffixes with at least one apparent geohint.
    std::size_t with_hint = 0, n_good = 0, n_promising = 0, n_poor = 0;
    for (const core::SuffixResult& sr : result.suffixes) {
      if (sr.tagged_count == 0) continue;
      ++with_hint;
      if (!sr.has_nc()) {
        ++n_poor;  // no convention learnable: counted poor, as in the paper
        continue;
      }
      switch (sr.cls) {
        case core::NcClass::kGood: ++n_good; break;
        case core::NcClass::kPromising: ++n_promising; break;
        case core::NcClass::kPoor: ++n_poor; break;
      }
    }
    const auto cell = [&](std::size_t v) {
      return std::to_string(v) + " (" +
             util::fmt_pct(static_cast<double>(v), static_cast<double>(with_hint)) + ")";
    };
    good.push_back(cell(n_good));
    promising.push_back(cell(n_promising));
    poor.push_back(cell(n_poor));
    total_row.push_back(std::to_string(with_hint));
  }
  rows.push_back(good);
  rows.push_back(promising);
  rows.push_back(poor);
  rows.push_back(total_row);
  bench::print_table(rows);

  std::printf(
      "\nPaper: Aug '20 IPv4 good 43.6%%, promising 6.1%%, poor 50.4%%; IPv6 good ~56%%.\n");
  return 0;
}
