// Load generator for the hoihod serving subsystem.
//
// Drives N concurrent connections of pipelined lookups against a server and
// reports sustained throughput and p50/p99/p999 request latency, plus the
// outcome of a RELOAD issued mid-run (the hot-swap acceptance check: it
// must complete with zero request errors). Emits BENCH_SERVE.json.
//
// Two modes:
//   --spawn (default)    learn a model on a synthetic world, start an
//                        in-process Server on an ephemeral loopback port,
//                        and drive it — fully self-contained (CI mode).
//   --port P [--host H]  drive an externally started hoihod; requires
//                        --hosts FILE (e.g. from hoihod --write-demo-model
//                        conv.txt --hosts-out hosts.txt).
//
// Exit code 0 iff hits > 0, request errors == 0, and the mid-run RELOAD
// (when enabled) succeeded.
//
// Run: ./build/bench/serve_loadgen [--connections N] [--pipeline W]
//      [--duration-s S] [--operators N] [--geo-frac F] [--batch-size N]
//      [--no-reload] [--json PATH]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/hoiho.h"
#include "core/ncb.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "sim/probing.h"
#include "util/strings.h"

using namespace hoiho;

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct ThreadResult {
  std::uint64_t sent = 0, hits = 0, misses = 0, errors = 0;
  std::uint64_t geo = 0, geo_miss = 0;  // GEO,... answers / GEO,miss among them
  std::vector<std::uint64_t> latencies_ns;
  bool io_failed = false;
};

struct Options {
  bool spawn = true;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string hosts_file;
  std::string json_path = "BENCH_SERVE.json";
  std::size_t connections = 4;
  std::size_t pipeline = 64;
  double duration_s = 2.0;
  std::size_t operators = 48;
  bool reload_mid_run = true;
  // Fraction of requests sent as `GEO <hostname>` instead of a bare lookup
  // (0 = pure-lookup workload, matching the historical bench).
  double geo_frac = 0.0;
  // When > 0, a GEOB phase after the main run: one connection sends
  // `GEOB <batch_size>` blocks for ~1s and the per-subject latency lands in
  // the JSON's "geob" section (the single-GEO numbers above are the
  // baseline it amortizes against).
  std::size_t batch_size = 0;
};

// The GEOB phase accounting: whole-block round trips divided by the batch
// size give per-subject latency.
struct GeobResult {
  std::uint64_t batches = 0, subjects = 0, geo = 0, geo_miss = 0, errors = 0;
  double per_subject_us_p50 = 0, per_subject_us_p99 = 0;
  double subjects_per_sec = 0;
  bool io_failed = false;
};

void drive(const Options& opt, const std::vector<std::string>& hostnames,
           std::size_t offset, std::uint64_t deadline_ns, ThreadResult* result) {
  std::string error;
  auto client = serve::Client::connect(opt.host, opt.port, &error);
  if (!client) {
    std::fprintf(stderr, "loadgen: connect: %s\n", error.c_str());
    result->io_failed = true;
    return;
  }
  result->latencies_ns.reserve(1 << 18);
  std::vector<std::string> batch(opt.pipeline);
  std::size_t cursor = offset % hostnames.size();
  double geo_acc = 0.0;  // deterministic geo_frac spacing, no rng needed
  while (now_ns() < deadline_ns) {
    for (std::string& slot : batch) {
      geo_acc += opt.geo_frac;
      if (geo_acc >= 1.0) {
        geo_acc -= 1.0;
        slot = "GEO " + hostnames[cursor];
      } else {
        slot = hostnames[cursor];
      }
      cursor = (cursor + 1) % hostnames.size();
    }
    const std::uint64_t t0 = now_ns();
    if (!client->send_lines(batch)) {
      result->io_failed = true;
      return;
    }
    result->sent += batch.size();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto line = client->read_line();
      if (!line) {
        result->io_failed = true;
        return;
      }
      switch (serve::classify_response(*line)) {
        case serve::ResponseKind::kHit: ++result->hits; break;
        case serve::ResponseKind::kMiss: ++result->misses; break;
        case serve::ResponseKind::kGeo:
          ++result->geo;
          if (*line == "GEO,miss") ++result->geo_miss;
          break;
        default: ++result->errors; break;
      }
      result->latencies_ns.push_back(now_ns() - t0);
    }
  }
}

std::uint64_t percentile(const std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) / 100.0 + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

GeobResult drive_geob(const Options& opt, const std::vector<std::string>& hostnames,
                      double duration_s) {
  GeobResult out;
  std::string error;
  auto client = serve::Client::connect(opt.host, opt.port, &error);
  if (!client) {
    std::fprintf(stderr, "loadgen: geob connect: %s\n", error.c_str());
    out.io_failed = true;
    return out;
  }
  std::vector<std::uint64_t> per_subject_ns;
  std::size_t cursor = 0;
  const std::uint64_t t_start = now_ns();
  const std::uint64_t deadline = t_start + static_cast<std::uint64_t>(duration_s * 1e9);
  while (now_ns() < deadline) {
    std::vector<std::string_view> subjects;
    subjects.reserve(opt.batch_size);
    for (std::size_t i = 0; i < opt.batch_size; ++i) {
      subjects.push_back(hostnames[cursor]);
      cursor = (cursor + 1) % hostnames.size();
    }
    const std::uint64_t t0 = now_ns();
    const auto block = client->geolocate_batch(subjects, &error);
    const std::uint64_t dt = now_ns() - t0;
    if (!block) {
      std::fprintf(stderr, "loadgen: geob: %s\n", error.c_str());
      out.io_failed = true;
      return out;
    }
    ++out.batches;
    out.subjects += block->size();
    per_subject_ns.push_back(dt / std::max<std::uint64_t>(opt.batch_size, 1));
    for (const std::string& line : *block) {
      if (serve::classify_response(line) != serve::ResponseKind::kGeo) {
        ++out.errors;
      } else {
        ++out.geo;
        if (line == "GEO,miss") ++out.geo_miss;
      }
    }
  }
  const double wall_s = static_cast<double>(now_ns() - t_start) / 1e9;
  std::sort(per_subject_ns.begin(), per_subject_ns.end());
  out.per_subject_us_p50 = static_cast<double>(percentile(per_subject_ns, 50)) / 1e3;
  out.per_subject_us_p99 = static_cast<double>(percentile(per_subject_ns, 99)) / 1e3;
  out.subjects_per_sec = wall_s > 0 ? static_cast<double>(out.subjects) / wall_s : 0;
  return out;
}

// Builds the spawn-mode model + hostname corpus: learn on a synthetic
// world, keep the usable conventions, and collect every hostname the model
// answers (plus a sprinkle of unanswerable ones so the MISS path is hot).
void build_corpus(std::size_t operators, std::vector<core::StoredConvention>* stored,
                  std::vector<std::string>* hostnames) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  sim::WorldConfig config;
  config.seed = 20260805;
  config.operators = operators;
  config.geohint_scheme_rate = 0.8;
  const sim::World world = sim::generate_world(dict, config);
  const measure::Measurements pings = sim::probe_pings(world, {});
  const core::Hoiho hoiho(dict);
  const core::HoihoResult result = hoiho.run(world.topology, pings);
  core::Geolocator check(dict);
  for (const core::SuffixResult& sr : result.suffixes) {
    if (!sr.usable()) continue;
    stored->push_back(core::StoredConvention{sr.nc, sr.cls});
    check.add(sr.nc);
  }
  std::size_t misses_kept = 0;
  for (const sim::HostnameTruth& truth : world.truths) {
    if (check.locate(truth.hostname)) {
      hostnames->push_back(truth.hostname);
    } else if (misses_kept < world.truths.size() / 20) {
      hostnames->push_back(truth.hostname);  // ~5% misses
      ++misses_kept;
    }
  }
}

std::vector<std::string> read_hosts(const std::string& path) {
  std::vector<std::string> out;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) out.push_back(line);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = value();
      if (v == nullptr) return 1;
      opt.port = static_cast<std::uint16_t>(std::atoi(v));
      opt.spawn = false;
    } else if (arg == "--host") {
      const char* v = value();
      if (v == nullptr) return 1;
      opt.host = v;
    } else if (arg == "--hosts") {
      const char* v = value();
      if (v == nullptr) return 1;
      opt.hosts_file = v;
    } else if (arg == "--json") {
      const char* v = value();
      if (v == nullptr) return 1;
      opt.json_path = v;
    } else if (arg == "--connections") {
      const char* v = value();
      if (v == nullptr) return 1;
      opt.connections = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--pipeline") {
      const char* v = value();
      if (v == nullptr) return 1;
      opt.pipeline = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--duration-s") {
      const char* v = value();
      if (v == nullptr) return 1;
      opt.duration_s = std::atof(v);
    } else if (arg == "--operators") {
      const char* v = value();
      if (v == nullptr) return 1;
      opt.operators = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--geo-frac") {
      const char* v = value();
      if (v == nullptr) return 1;
      opt.geo_frac = std::atof(v);
    } else if (arg == "--batch-size") {
      const char* v = value();
      if (v == nullptr) return 1;
      opt.batch_size = static_cast<std::size_t>(std::atoi(v));
      if (opt.batch_size == 0 || opt.batch_size > serve::kMaxGeobBatch) {
        std::fprintf(stderr, "loadgen: --batch-size takes 1..%zu\n", serve::kMaxGeobBatch);
        return 1;
      }
    } else if (arg == "--spawn") {
      opt.spawn = true;
    } else if (arg == "--no-reload") {
      opt.reload_mid_run = false;
    } else {
      std::fprintf(stderr, "loadgen: unknown flag '%s'\n", std::string(arg).c_str());
      return 1;
    }
  }

  // Assemble the corpus and (in spawn mode) the in-process server.
  std::vector<std::string> hostnames;
  std::unique_ptr<serve::ModelStore> store;
  std::unique_ptr<serve::Server> server;
  std::thread server_thread;
  // Model save/load wall time per format (spawn mode only): the reload cost
  // the daemon pays on every hot swap — text parse+compile vs ncb heap
  // build vs ncb mmap. -1 when not measured (external mode).
  double save_text_us = -1, save_ncb_us = -1;
  double load_text_us = -1, load_ncb_us = -1, load_ncb_mmap_us = -1;
  if (opt.spawn) {
    std::vector<core::StoredConvention> stored;
    build_corpus(opt.operators, &stored, &hostnames);
    // Serve from a real model file so the mid-run RELOAD verb exercises the
    // full disk -> nc_io -> snapshot-swap path, same as the daemon.
    const std::string model_path = opt.json_path + ".model.tmp";
    std::string save_error;
    std::uint64_t t0 = now_ns();
    if (!core::save_conventions_to_file(model_path, stored, geo::builtin_dictionary(),
                                        &save_error)) {
      std::fprintf(stderr, "loadgen: %s\n", save_error.c_str());
      return 2;
    }
    save_text_us = static_cast<double>(now_ns() - t0) / 1e3;

    // The same model as a binary image, loaded all three ways.
    const std::string ncb_path = model_path + ".ncb";
    t0 = now_ns();
    if (!core::save_model_to_file(ncb_path, stored, geo::builtin_dictionary(),
                                  &save_error)) {
      std::fprintf(stderr, "loadgen: %s\n", save_error.c_str());
      return 2;
    }
    save_ncb_us = static_cast<double>(now_ns() - t0) / 1e3;
    const auto time_reload = [](serve::ModelStore& s) -> double {
      const std::uint64_t r0 = now_ns();
      if (s.reload()) return -1;  // error
      return static_cast<double>(now_ns() - r0) / 1e3;
    };
    {
      serve::ModelStore text_store(geo::builtin_dictionary(), model_path);
      load_text_us = time_reload(text_store);
      serve::ModelStore heap_store(geo::builtin_dictionary(), ncb_path);
      heap_store.set_map_binary(false);
      load_ncb_us = time_reload(heap_store);
      serve::ModelStore mmap_store(geo::builtin_dictionary(), ncb_path);
      load_ncb_mmap_us = time_reload(mmap_store);
    }
    std::remove(ncb_path.c_str());
    std::printf("loadgen: model reload: text %.0fus, ncb %.0fus, ncb_mmap %.0fus\n",
                load_text_us, load_ncb_us, load_ncb_mmap_us);

    store = std::make_unique<serve::ModelStore>(geo::builtin_dictionary(), model_path);
    if (const auto err = store->reload()) {
      std::fprintf(stderr, "loadgen: %s\n", err->c_str());
      return 1;
    }
    serve::ServerConfig sc;
    sc.port = 0;
    server = std::make_unique<serve::Server>(*store, sc);
    std::string error;
    if (!server->start(&error)) {
      std::fprintf(stderr, "loadgen: server start: %s\n", error.c_str());
      return 1;
    }
    opt.port = server->port();
    server_thread = std::thread([&server] { server->run(); });
    std::printf("loadgen: spawned in-process server on 127.0.0.1:%u (%zu conventions, "
                "%zu hostnames)\n",
                static_cast<unsigned>(opt.port), store->current()->convention_count,
                hostnames.size());
  } else {
    if (opt.hosts_file.empty()) {
      std::fprintf(stderr, "loadgen: --port mode requires --hosts FILE\n");
      return 1;
    }
    hostnames = read_hosts(opt.hosts_file);
  }
  if (hostnames.empty()) {
    std::fprintf(stderr, "loadgen: no hostnames to send\n");
    return 1;
  }

  const std::uint64_t t_start = now_ns();
  const std::uint64_t deadline =
      t_start + static_cast<std::uint64_t>(opt.duration_s * 1e9);
  std::vector<ThreadResult> results(opt.connections);
  std::vector<std::thread> threads;
  threads.reserve(opt.connections);
  for (std::size_t i = 0; i < opt.connections; ++i)
    threads.emplace_back(drive, std::cref(opt), std::cref(hostnames),
                         i * hostnames.size() / opt.connections, deadline, &results[i]);

  // The hot-swap check: the RELOAD verb halfway through, on its own
  // connection, while every driver connection keeps hammering lookups.
  bool reload_attempted = false, reload_ok = false;
  if (opt.reload_mid_run) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<int>(opt.duration_s * 500)));
    reload_attempted = true;
    auto admin = serve::Client::connect(opt.host, opt.port);
    const auto resp = admin ? admin->request("RELOAD") : std::nullopt;
    reload_ok = resp && serve::classify_response(*resp) == serve::ResponseKind::kReload;
    std::printf("loadgen: mid-run RELOAD -> %s\n",
                resp ? resp->c_str() : "(connection failed)");
  }

  for (std::thread& t : threads) t.join();
  const double wall_s = static_cast<double>(now_ns() - t_start) / 1e9;

  // GEOB phase (after the main run so its counters sit on top of a settled
  // baseline): one connection, whole blocks of --batch-size subjects.
  GeobResult geob;
  if (opt.batch_size > 0) {
    geob = drive_geob(opt, hostnames, std::min(opt.duration_s, 1.0));
    std::printf("loadgen: GEOB x%zu: %llu batches (%llu subjects), per-subject "
                "p50 %.1fus p99 %.1fus, %.0f subjects/sec, errors %llu\n",
                opt.batch_size, static_cast<unsigned long long>(geob.batches),
                static_cast<unsigned long long>(geob.subjects), geob.per_subject_us_p50,
                geob.per_subject_us_p99, geob.subjects_per_sec,
                static_cast<unsigned long long>(geob.errors));
  }

  // Counter schema probe: read the serving counters CI's schema guard keys
  // on back over the wire. STATS2 works identically against the in-process
  // server and an external daemon, so both modes embed real values.
  bool probe_ok = false;
  std::uint64_t sc_rejected = 0, sc_rollbacks = 0, sc_stalled = 0;
  std::uint64_t sc_bytes_mapped = 0, sc_build_text = 0, sc_build_ncb = 0, sc_build_mmap = 0;
  std::uint64_t sc_geob_batches = 0, sc_geob_subjects = 0;
  std::uint64_t sc_delta_applies = 0, sc_delta_rejected = 0;
  {
    const auto counter = [](const std::string& s2, const std::string& name,
                            std::uint64_t* out) {
      const std::string needle = "," + name + ":c=";
      const std::size_t pos = s2.find(needle);
      if (pos == std::string::npos) return false;
      *out = std::strtoull(s2.c_str() + pos + needle.size(), nullptr, 10);
      return true;
    };
    auto admin = serve::Client::connect(opt.host, opt.port);
    const auto resp = admin ? admin->request("STATS2") : std::nullopt;
    if (resp && serve::classify_response(*resp) == serve::ResponseKind::kStats2)
      probe_ok = counter(*resp, "serve_reload_rejected", &sc_rejected) &&
                 counter(*resp, "serve_rollbacks", &sc_rollbacks) &&
                 counter(*resp, "serve_worker_stalled", &sc_stalled) &&
                 counter(*resp, "model_load_bytes_mapped", &sc_bytes_mapped) &&
                 counter(*resp, "model_load_build_us{format=\"text\"}", &sc_build_text) &&
                 counter(*resp, "model_load_build_us{format=\"ncb\"}", &sc_build_ncb) &&
                 counter(*resp, "model_load_build_us{format=\"ncb_mmap\"}", &sc_build_mmap) &&
                 counter(*resp, "serve_geob_batches", &sc_geob_batches) &&
                 counter(*resp, "serve_geob_subjects", &sc_geob_subjects) &&
                 counter(*resp, "serve_delta_applies", &sc_delta_applies) &&
                 counter(*resp, "serve_delta_rejected", &sc_delta_rejected) &&
                 resp->find(",serve_reload_us:h=") != std::string::npos;
    if (!probe_ok)
      std::fprintf(stderr, "loadgen: STATS2 counter probe failed (%s)\n",
                   resp ? resp->c_str() : "no response");
  }

  std::uint64_t sent = 0, hits = 0, misses = 0, errors = 0, geo = 0, geo_miss = 0;
  bool io_failed = false;
  std::vector<std::uint64_t> latencies;
  for (ThreadResult& r : results) {
    sent += r.sent;
    hits += r.hits;
    misses += r.misses;
    errors += r.errors;
    geo += r.geo;
    geo_miss += r.geo_miss;
    io_failed = io_failed || r.io_failed;
    latencies.insert(latencies.end(), r.latencies_ns.begin(), r.latencies_ns.end());
  }
  std::sort(latencies.begin(), latencies.end());
  const double rate = wall_s > 0 ? static_cast<double>(sent) / wall_s : 0;
  const double p50_ms = static_cast<double>(percentile(latencies, 50)) / 1e6;
  const double p99_ms = static_cast<double>(percentile(latencies, 99)) / 1e6;
  const double p999_ms = static_cast<double>(percentile(latencies, 99.9)) / 1e6;

  if (server) {
    server->stop();
    server_thread.join();
    std::remove((opt.json_path + ".model.tmp").c_str());
  }

  std::printf("loadgen: %llu lookups in %.2fs over %zu connections (pipeline %zu)\n",
              static_cast<unsigned long long>(sent), wall_s, opt.connections,
              opt.pipeline);
  std::printf("loadgen: %.0f lookups/sec, hits %llu, misses %llu, geo %llu "
              "(%llu miss), errors %llu\n",
              rate, static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses),
              static_cast<unsigned long long>(geo),
              static_cast<unsigned long long>(geo_miss),
              static_cast<unsigned long long>(errors));
  std::printf("loadgen: latency p50 %.3fms  p99 %.3fms  p99.9 %.3fms\n", p50_ms, p99_ms,
              p999_ms);

  std::ofstream json(opt.json_path);
  json << "{\n"
       << "  \"bench\": \"serve_loadgen\",\n"
       << "  \"mode\": \"" << (opt.spawn ? "spawn" : "external") << "\",\n"
       << "  \"connections\": " << opt.connections << ",\n"
       << "  \"pipeline\": " << opt.pipeline << ",\n"
       << "  \"duration_s\": " << util::fmt_double(wall_s, 3) << ",\n"
       << "  \"hostname_corpus\": " << hostnames.size() << ",\n"
       << "  \"lookups\": " << sent << ",\n"
       << "  \"lookups_per_sec\": " << util::fmt_double(rate, 1) << ",\n"
       << "  \"hits\": " << hits << ",\n"
       << "  \"misses\": " << misses << ",\n"
       << "  \"geo_frac\": " << util::fmt_double(opt.geo_frac, 3) << ",\n"
       << "  \"geo_answers\": " << geo << ",\n"
       << "  \"geo_misses\": " << geo_miss << ",\n"
       << "  \"errors\": " << errors << ",\n"
       << "  \"latency_ms\": {\"p50\": " << util::fmt_double(p50_ms, 3)
       << ", \"p99\": " << util::fmt_double(p99_ms, 3)
       << ", \"p999\": " << util::fmt_double(p999_ms, 3) << "},\n"
       << "  \"reload_mid_run\": {\"attempted\": " << (reload_attempted ? "true" : "false")
       << ", \"ok\": " << (reload_ok ? "true" : "false") << "},\n"
       << "  \"model_io_us\": {\"save_text\": " << util::fmt_double(save_text_us, 0)
       << ", \"save_ncb\": " << util::fmt_double(save_ncb_us, 0)
       << ", \"load_text\": " << util::fmt_double(load_text_us, 0)
       << ", \"load_ncb\": " << util::fmt_double(load_ncb_us, 0)
       << ", \"load_ncb_mmap\": " << util::fmt_double(load_ncb_mmap_us, 0) << "},\n"
       << "  \"geob\": {\"batch_size\": " << opt.batch_size
       << ", \"batches\": " << geob.batches << ", \"subjects\": " << geob.subjects
       << ", \"geo_answers\": " << geob.geo << ", \"geo_misses\": " << geob.geo_miss
       << ", \"errors\": " << geob.errors
       << ", \"per_subject_us\": {\"p50\": " << util::fmt_double(geob.per_subject_us_p50, 1)
       << ", \"p99\": " << util::fmt_double(geob.per_subject_us_p99, 1) << "}"
       << ", \"subjects_per_sec\": " << util::fmt_double(geob.subjects_per_sec, 1) << "},\n"
       << "  \"serve_counters\": {\"probe_ok\": " << (probe_ok ? "true" : "false")
       << ", \"serve_reload_rejected\": " << sc_rejected
       << ", \"serve_rollbacks\": " << sc_rollbacks
       << ", \"serve_worker_stalled\": " << sc_stalled
       << ", \"model_load_bytes_mapped\": " << sc_bytes_mapped
       << ", \"model_load_build_us_text\": " << sc_build_text
       << ", \"model_load_build_us_ncb\": " << sc_build_ncb
       << ", \"model_load_build_us_ncb_mmap\": " << sc_build_mmap
       << ", \"serve_geob_batches\": " << sc_geob_batches
       << ", \"serve_geob_subjects\": " << sc_geob_subjects
       << ", \"serve_delta_applies\": " << sc_delta_applies
       << ", \"serve_delta_rejected\": " << sc_delta_rejected << "}\n"
       << "}\n";
  std::printf("loadgen: wrote %s\n", opt.json_path.c_str());

  const bool pass = hits > 0 && errors == 0 && !io_failed && probe_ok &&
                    (!reload_attempted || reload_ok) &&
                    (opt.geo_frac <= 0.0 || geo > 0) &&
                    (opt.batch_size == 0 ||
                     (geob.batches > 0 && geob.errors == 0 && !geob.io_failed));
  if (!pass) std::fprintf(stderr, "loadgen: FAILED acceptance (see counters above)\n");
  return pass ? 0 : 1;
}
