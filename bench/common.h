// Shared utilities for the experiment benches: table printing, ground-truth
// scoring (the paper's 40 km rule), and method-driver glue.
#pragma once

#include <string>
#include <vector>

#include "core/hoiho.h"
#include "sim/scenario.h"

namespace hoiho::bench {

// Prints a fixed-width table: header row then rows, columns sized to fit.
void print_table(const std::vector<std::vector<std::string>>& rows);

// The paper's correctness criterion: an inferred location is a true
// positive if it is within 40 km of the true location.
inline constexpr double kCorrectKm = 40.0;

bool within_correct_distance(const geo::GeoDictionary& dict, geo::LocationId inferred,
                             geo::LocationId truth);

// Per-method tallies for figure 9: fractions are over hostnames that truly
// carry a geohint.
struct MethodScore {
  std::size_t with_geohint = 0;  // hostnames with a geohint (denominator)
  std::size_t tp = 0;            // located within 40 km of the router
  std::size_t fp = 0;            // located, but wrong
  // fn = with_geohint - tp - fp

  double tp_pct() const {
    return with_geohint == 0 ? 0 : 100.0 * static_cast<double>(tp) / static_cast<double>(with_geohint);
  }
  double fp_pct() const {
    return with_geohint == 0 ? 0 : 100.0 * static_cast<double>(fp) / static_cast<double>(with_geohint);
  }
  double ppv() const {
    return (tp + fp) == 0 ? 0 : 100.0 * static_cast<double>(tp) / static_cast<double>(tp + fp);
  }
};

// Runs the Hoiho pipeline over a scenario world.
core::HoihoResult run_hoiho(const sim::World& world, const measure::Measurements& pings,
                            const core::HoihoConfig& config = {});

// Scores one method's answer for a hostname against the router's true
// location. `inferred` may be kInvalidLocation (no answer).
void score_answer(MethodScore& score, const geo::GeoDictionary& dict, geo::LocationId inferred,
                  geo::LocationId router_truth);

// Percentile of a sorted vector (p in [0,100]).
double percentile(std::vector<double> values, double p);

}  // namespace hoiho::bench
