// End-to-end pipeline performance bench: runs the full five-stage method
// over a multi-operator world and reports wall time, hostname throughput,
// and consistency-cache hit rate for the uncached baseline, the cached
// sequential run, and cached runs at increasing thread counts.
//
// Every timed run carries a live obs::Registry (so the numbers include the
// steady-state instrumentation cost, which is what production pays), and
// the per-run stats in BENCH_PIPELINE.json are read back *from* the
// registry snapshot rather than summed off SuffixResult fields — the bench
// is also the compatibility check that the registry view agrees with the
// old one. Each run's snapshot is embedded under "registry"; CI guards
// that schema (a counter disappearing fails the perf-smoke job).
//
// Scale tiers (--scale={S,M,L,XL}, default S):
//
//   S   48-operator materialized world, the historical CI baseline corpus
//       (uncached/legacy/cached x thread-count matrix, BENCH_PIPELINE.json).
//   M   200-suffix / ~20k-hostname streaming world   (perf-smoke in CI)
//   L   1000-suffix / ~100k-hostname streaming world (the ISSUE target)
//   XL  10000-suffix / ~1M-hostname streaming world  (manual / nightly only)
//
// M/L/XL stream through Hoiho::run_stream (work-stealing pool, bounded RSS);
// their JSON lands in BENCH_PIPELINE_<tier>.json and includes the peak-RSS
// gauge and steal counters. Note VmHWM is a process-wide high-water mark:
// within one bench process later runs inherit earlier runs' peak, so the
// per-run value is an upper bound, and the ceiling CI asserts covers the
// whole bench.
//
// Emits BENCH_PIPELINE*.json (path overridable via argv) so the perf
// trajectory is tracked across PRs; the checked-in copy records the numbers
// from the machine that produced this revision.
#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <sstream>
#include <unordered_set>

#include "common.h"
#include "core/delta.h"
#include "core/nc_io.h"
#include "core/ncb.h"
#include "obs/metrics.h"
#include "serve/model_store.h"
#include "sim/streaming.h"
#include "util/thread_pool.h"

using namespace hoiho;

namespace {

struct RunResult {
  std::string label;
  std::size_t threads = 1;
  bool cache = true;
  bool compiled = true;
  double wall_ms = 0;
  double hostnames_per_sec = 0;
  obs::Snapshot snap;  // rep-0 registry snapshot (counters for one full run)
  std::size_t suffixes = 0, usable = 0;

  std::uint64_t cache_hits() const { return snap.value("consistency_cache_hits"); }
  std::uint64_t cache_misses() const { return snap.value("consistency_cache_misses"); }
  double hit_rate() const {
    const std::uint64_t total = cache_hits() + cache_misses();
    return total == 0 ? 0.0 : static_cast<double>(cache_hits()) / static_cast<double>(total);
  }
  double stage_ms(std::string_view stage) const {
    return static_cast<double>(
               snap.value("pipeline_stage_us{stage=\"" + std::string(stage) + "\"}")) /
           1e3;
  }
  std::int64_t gauge(std::string_view name) const {
    const obs::Snapshot::Entry* e = snap.find(name);
    return e == nullptr ? 0 : e->gauge;
  }
};

// One timed rep of one configuration; folds the wall time (min) and, on the
// first rep, the registry snapshot into `out`. Reps are interleaved across
// configurations by the caller — timing each label's reps back-to-back lets
// slow process drift (allocator state, thermal/cgroup throttling) bias the
// later labels, which on a small corpus is larger than the effect measured.
void time_one_rep(RunResult& out, const sim::World& world, const measure::Measurements& pings,
                  std::size_t hostnames) {
  core::HoihoConfig config;
  config.threads = out.threads;
  config.consistency_cache = out.cache;
  config.compiled_regex = out.compiled;
  // Fresh registry per rep: each snapshot covers exactly one run, and the
  // timing includes the armed-counter cost every rep.
  obs::Registry registry;
  config.registry = &registry;
  const auto t0 = std::chrono::steady_clock::now();
  const core::HoihoResult result = bench::run_hoiho(world, pings, config);
  const auto t1 = std::chrono::steady_clock::now();
  const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  if (out.wall_ms == 0 || ms < out.wall_ms) out.wall_ms = ms;
  if (out.snap.entries.empty()) {
    out.snap = registry.snapshot();
    out.suffixes = result.suffixes.size();
    for (const core::SuffixResult& sr : result.suffixes)
      if (sr.usable()) ++out.usable;
  }
  out.hostnames_per_sec =
      out.wall_ms <= 0 ? 0 : static_cast<double>(hostnames) / (out.wall_ms / 1e3);
}

// Times Hoiho::run_stream over a fresh StreamingWorld per rep (world
// rendering overlaps learning by design, so generation cost is part of the
// measured pipeline, exactly as it would be against a file-backed stream).
RunResult time_stream_run(const std::string& label, const sim::StreamingWorldConfig& swc,
                          std::size_t threads, int reps, std::size_t* hostnames_out,
                          const std::string& checkpoint_dir,
                          std::vector<core::StoredConvention>* stored_out = nullptr) {
  core::HoihoConfig config;
  config.threads = threads;

  RunResult out;
  out.label = label;
  out.threads = threads;
  out.wall_ms = 1e300;
  std::size_t hostnames = 0;
  for (int rep = 0; rep < reps; ++rep) {
    if (!checkpoint_dir.empty()) {
      // One WAL directory per (label, rep) so every rep pays the full
      // commit cost — resuming a finished checkpoint would time nothing.
      config.checkpoint_dir =
          checkpoint_dir + "/" + label + "-rep" + std::to_string(rep);
    }
    sim::StreamingWorld world(geo::builtin_dictionary(), swc);
    obs::Registry registry;
    config.registry = &registry;
    const auto t0 = std::chrono::steady_clock::now();
    const core::HoihoResult result =
        core::Hoiho(geo::builtin_dictionary(), config).run_stream(world);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (ms < out.wall_ms) out.wall_ms = ms;
    if (rep == 0) {
      out.snap = registry.snapshot();
      out.suffixes = result.suffixes.size();
      for (const core::SuffixResult& sr : result.suffixes)
        if (sr.usable()) ++out.usable;
      hostnames = world.report().records;
      if (stored_out != nullptr)
        for (const core::SuffixResult& sr : result.suffixes)
          if (sr.usable()) stored_out->push_back(core::StoredConvention{sr.nc, sr.cls});
    }
  }
  if (hostnames_out != nullptr) *hostnames_out = hostnames;
  out.hostnames_per_sec =
      out.wall_ms <= 0 ? 0 : static_cast<double>(hostnames) / (out.wall_ms / 1e3);
  return out;
}

std::string fmt3(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

// Wall time to save and reload the learned model per format — the cost a
// serving deployment pays to publish (save) and hot-swap (reload): text
// parse+compile vs ncb heap build vs ncb mmap views.
struct ModelIo {
  double save_text_us = -1, save_ncb_us = -1;
  double load_text_us = -1, load_ncb_us = -1, load_ncb_mmap_us = -1;
  std::size_t conventions = 0, text_bytes = 0, ncb_bytes = 0;
};

std::size_t file_bytes(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 ? static_cast<std::size_t>(st.st_size) : 0;
}

ModelIo time_model_io(const std::vector<core::StoredConvention>& stored,
                      const std::string& tmp_prefix) {
  ModelIo io;
  io.conventions = stored.size();
  const std::string text_path = tmp_prefix + ".model.nc";
  const std::string ncb_path = tmp_prefix + ".model.ncb";
  const auto us_since = [](std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  auto t0 = std::chrono::steady_clock::now();
  if (core::save_conventions_to_file(text_path, stored, geo::builtin_dictionary()))
    io.save_text_us = us_since(t0);
  t0 = std::chrono::steady_clock::now();
  if (core::save_model_to_file(ncb_path, stored, geo::builtin_dictionary()))
    io.save_ncb_us = us_since(t0);
  io.text_bytes = file_bytes(text_path);
  io.ncb_bytes = file_bytes(ncb_path);

  const auto time_reload = [&](const std::string& path, bool map) {
    serve::ModelStore store(geo::builtin_dictionary(), path);
    store.set_map_binary(map);
    const auto r0 = std::chrono::steady_clock::now();
    if (store.reload()) return -1.0;
    return us_since(r0);
  };
  io.load_text_us = time_reload(text_path, true);
  io.load_ncb_us = time_reload(ncb_path, false);
  io.load_ncb_mmap_us = time_reload(ncb_path, true);
  std::remove(text_path.c_str());
  std::remove(ncb_path.c_str());
  return io;
}

std::string model_io_json(const ModelIo& io) {
  return "{\"conventions\": " + std::to_string(io.conventions) +
         ", \"text_bytes\": " + std::to_string(io.text_bytes) +
         ", \"ncb_bytes\": " + std::to_string(io.ncb_bytes) +
         ", \"save_text_us\": " + fmt3(io.save_text_us) +
         ", \"save_ncb_us\": " + fmt3(io.save_ncb_us) +
         ", \"load_text_us\": " + fmt3(io.load_text_us) +
         ", \"load_ncb_us\": " + fmt3(io.load_ncb_us) +
         ", \"load_ncb_mmap_us\": " + fmt3(io.load_ncb_mmap_us) + "}";
}

// --- Incremental relearning (--delta-frac) --------------------------------
//
// Measures the whole delta pipeline against its from-scratch equivalent:
// base run → churn churn_frac of the suffixes → (a) full relearn of the
// churned world, (b) render only the churned suffixes + Hoiho::run_delta +
// ModelStore::apply_delta. Byte-identity of (a)'s and (b)'s serialized
// models is asserted (the DESIGN.md §16 contract), and the headline ratio
// delta_wall_ms / full_wall_ms is what CI gates (< 0.10 at 5% churn).
struct DeltaBench {
  double frac = 0;
  std::size_t churned = 0, dirty = 0, reused = 0, added = 0, removed = 0;
  std::size_t upserts = 0, removes = 0, delta_bytes = 0;
  double full_wall_ms = 0, delta_wall_ms = 0, relearn_wall_ms = 0, apply_us = 0;
  bool byte_identical = false, store_identical = false;
  std::string error;
};

std::string serialized_model(std::vector<core::StoredConvention> stored) {
  core::sort_conventions(stored);
  std::ostringstream out;
  core::save_conventions(out, stored, geo::builtin_dictionary());
  return out.str();
}

// Everything with a convention, kPoor included — the model-file contract
// (Hoiho::run_stream's model_out path and ModelSnapshot::stored both keep
// kPoor records; only the Geolocator skips them).
std::vector<core::StoredConvention> model_stored(const core::HoihoResult& result) {
  std::vector<core::StoredConvention> stored;
  for (const core::SuffixResult& sr : result.suffixes)
    if (sr.has_nc()) stored.push_back(core::StoredConvention{sr.nc, sr.cls});
  return stored;
}

DeltaBench run_delta_bench(const sim::StreamingWorldConfig& base_swc, double frac,
                           std::size_t threads, const std::string& tmp_prefix) {
  using Clock = std::chrono::steady_clock;
  const auto ms_since = [](Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  };
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  DeltaBench db;
  db.frac = frac;

  core::HoihoConfig config;
  config.threads = threads;
  const core::Hoiho hoiho(dict, config);

  // Base run over the unchurned world; its results become the PriorRun.
  sim::StreamingWorld base_world(dict, base_swc);
  core::HoihoResult base_result = hoiho.run_stream(base_world);
  const std::vector<core::StoredConvention> base_stored = model_stored(base_result);
  const core::PriorRun prior = core::PriorRun::capture(
      std::move(base_result), config, dict.size(), base_world.vps(), /*generation=*/1);

  sim::StreamingWorldConfig churned_swc = base_swc;
  churned_swc.churn_frac = frac;
  churned_swc.churn_seed = 4242;

  // (a) From-scratch relearn of the churned world — the cost a non-
  // incremental deployment pays for any churn at all.
  sim::StreamingWorld full_world(dict, churned_swc);
  const auto t_full = Clock::now();
  const core::HoihoResult full_result = hoiho.run_stream(full_world);
  db.full_wall_ms = ms_since(t_full);
  const std::string full_bytes = serialized_model(model_stored(full_result));

  // (b) Incremental: render only the churned suffixes, diff, relearn dirty.
  // The timed region covers rendering + diffing + relearning + merging —
  // everything a production incremental pass would do given a change feed.
  sim::StreamingWorld delta_world(dict, churned_swc);
  const std::vector<std::size_t> ks = delta_world.churned_suffixes();
  db.churned = ks.size();
  const auto t_delta = Clock::now();
  core::WorldDelta wd;
  wd.changed = delta_world.render_batch(ks);
  {
    // A churned operator that rendered no usable hostnames left the world.
    std::unordered_set<std::string_view> present;
    for (const topo::SuffixGroup& g : wd.changed.groups) present.insert(g.suffix);
    for (const std::size_t k : ks) {
      std::string name = delta_world.suffix_name(k);
      if (present.find(name) == present.end()) wd.removed.push_back(std::move(name));
    }
  }
  const core::DeltaRunReport rep = hoiho.run_delta(wd, prior);
  db.delta_wall_ms = ms_since(t_delta);
  if (!rep.ok()) {
    db.error = rep.error;
    return db;
  }
  db.dirty = rep.dirty;
  db.reused = rep.reused;
  db.added = rep.added;
  db.removed = rep.removed;
  db.relearn_wall_ms = rep.relearn_wall_ms;
  db.upserts = rep.delta.upserts.size();
  db.removes = rep.delta.removes.size();
  db.delta_bytes = core::serialize_model_delta(rep.delta, dict).size();
  db.byte_identical = serialized_model(model_stored(rep.result)) == full_bytes;

  // Serving half: publish the base model, apply the ModelDelta live, and
  // check the successor snapshot re-serializes to the from-scratch bytes.
  const std::string base_path = tmp_prefix + ".delta-base.nc";
  std::string save_error;
  if (!core::save_conventions_to_file(base_path, base_stored, dict, &save_error)) {
    db.error = "save base model: " + save_error;
    return db;
  }
  serve::ModelStore store(dict, base_path);
  if (const auto err = store.reload()) {
    db.error = "load base model: " + *err;
    std::remove(base_path.c_str());
    return db;
  }
  core::ModelDelta delta = rep.delta;
  delta.base_generation = store.generation();  // the reload's published number
  serve::ModelStore::DeltaApply applied;
  const auto t_apply = Clock::now();
  const auto apply_err = store.apply_delta(delta, &applied);
  db.apply_us = ms_since(t_apply) * 1e3;
  if (apply_err) {
    db.error = "apply_delta: " + *apply_err;
  } else {
    db.store_identical = serialized_model(store.current()->stored) == full_bytes;
  }
  std::remove(base_path.c_str());
  return db;
}

std::string delta_json(const DeltaBench& db) {
  const double ratio = db.full_wall_ms <= 0 ? 0 : db.delta_wall_ms / db.full_wall_ms;
  std::string out = "{\"frac\": " + fmt3(db.frac);
  out += ", \"churned\": " + std::to_string(db.churned);
  out += ", \"dirty\": " + std::to_string(db.dirty);
  out += ", \"reused\": " + std::to_string(db.reused);
  out += ", \"added\": " + std::to_string(db.added);
  out += ", \"removed\": " + std::to_string(db.removed);
  out += ", \"upserts\": " + std::to_string(db.upserts);
  out += ", \"removes\": " + std::to_string(db.removes);
  out += ", \"delta_bytes\": " + std::to_string(db.delta_bytes);
  out += ", \"full_wall_ms\": " + fmt3(db.full_wall_ms);
  out += ", \"delta_wall_ms\": " + fmt3(db.delta_wall_ms);
  out += ", \"relearn_wall_ms\": " + fmt3(db.relearn_wall_ms);
  out += ", \"apply_us\": " + fmt3(db.apply_us);
  out += ", \"delta_relearn_wall_over_full\": " + fmt3(ratio);
  out += ", \"byte_identical\": " + std::string(db.byte_identical ? "true" : "false");
  out += ", \"store_identical\": " + std::string(db.store_identical ? "true" : "false");
  out += "}";
  return out;
}

sim::StreamingWorldConfig tier_config(char scale) {
  sim::StreamingWorldConfig swc;
  swc.seed = 99;
  swc.traits.geohint_scheme_rate = 0.8;
  swc.traits.hostname_rate = 0.8;
  switch (scale) {
    case 'M':
      swc.suffixes = 200;
      swc.target_hostnames = 20000;
      swc.max_hostnames_per_suffix = 2048;
      swc.vp_count = 32;
      swc.batch_hostname_budget = 4096;
      break;
    case 'L':
      swc.suffixes = 1000;
      swc.target_hostnames = 100000;
      swc.max_hostnames_per_suffix = 8192;
      swc.vp_count = 64;
      swc.batch_hostname_budget = 8192;
      break;
    case 'X':  // XL
      swc.suffixes = 10000;
      swc.target_hostnames = 1000000;
      swc.max_hostnames_per_suffix = 16384;
      swc.vp_count = 64;
      swc.batch_hostname_budget = 16384;
      break;
  }
  return swc;
}

int run_stream_tier(const std::string& scale, const std::string& out_path, int reps,
                    const std::string& checkpoint_dir, double delta_frac) {
  const sim::StreamingWorldConfig swc = tier_config(scale[0]);
  const std::size_t hw = util::ThreadPool::resolve(0);
  std::printf("pipeline_e2e --scale=%s: %zu suffixes, ~%zu hostnames target, %zu VPs, "
              "batch budget %zu, %zu hardware threads, best of %d reps%s\n\n",
              scale.c_str(), swc.suffixes, swc.target_hostnames, swc.vp_count,
              swc.batch_hostname_budget, hw, reps,
              checkpoint_dir.empty() ? "" : " (checkpointed)");
  if (!checkpoint_dir.empty()) ::mkdir(checkpoint_dir.c_str(), 0755);

  std::size_t hostnames = 0;
  std::vector<core::StoredConvention> stored;
  std::vector<RunResult> runs;
  runs.push_back(
      time_stream_run("stream_1t", swc, 1, reps, &hostnames, checkpoint_dir, &stored));
  runs.push_back(time_stream_run("stream_4t", swc, 4, reps, nullptr, checkpoint_dir));
  if (hw > 4)
    runs.push_back(time_stream_run("stream_" + std::to_string(hw) + "t", swc, hw, reps,
                                   nullptr, checkpoint_dir));

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"run", "threads", "wall ms", "hostnames/s", "batches", "committed",
                  "stolen", "steal fails", "peak RSS MB", "usable NCs"});
  for (const RunResult& r : runs) {
    rows.push_back(
        {r.label, std::to_string(r.threads), fmt3(r.wall_ms), fmt3(r.hostnames_per_sec),
         std::to_string(r.snap.value("pipeline_stream_batches")),
         std::to_string(r.snap.value("checkpoint_batches_committed")),
         std::to_string(r.snap.value("pool_tasks_stolen")),
         std::to_string(r.snap.value("pool_steal_failures")),
         fmt3(static_cast<double>(r.gauge("pipeline_peak_rss_bytes")) / (1024.0 * 1024.0)),
         std::to_string(r.usable) + "/" + std::to_string(r.suffixes)});
  }
  bench::print_table(rows);

  const double scale4 = runs[1].wall_ms <= 0 ? 0 : runs[0].wall_ms / runs[1].wall_ms;
  std::int64_t peak_rss = 0;
  for (const RunResult& r : runs)
    peak_rss = std::max(peak_rss, r.gauge("pipeline_peak_rss_bytes"));
  std::printf("\n4-thread speedup over 1: %.2fx; peak RSS %.1f MB\n", scale4,
              static_cast<double>(peak_rss) / (1024.0 * 1024.0));

  const ModelIo io = time_model_io(stored, out_path);
  std::printf("model io (%zu NCs): save text %.0fus / ncb %.0fus; load text %.0fus / "
              "ncb %.0fus / mmap %.0fus\n",
              io.conventions, io.save_text_us, io.save_ncb_us, io.load_text_us,
              io.load_ncb_us, io.load_ncb_mmap_us);

  DeltaBench db;
  if (delta_frac > 0) {
    db = run_delta_bench(swc, delta_frac, hw, out_path);
    if (!db.error.empty()) {
      std::fprintf(stderr, "delta bench failed: %s\n", db.error.c_str());
      return 1;
    }
    std::printf("\ndelta relearn (%.0f%% churn): %zu churned (%zu dirty, %zu reused, "
                "%zu added, %zu removed); full %.1fms vs delta %.1fms (ratio %.3f); "
                "apply %.0fus; model bytes %s, store bytes %s\n",
                100.0 * delta_frac, db.churned, db.dirty, db.reused, db.added, db.removed,
                db.full_wall_ms, db.delta_wall_ms,
                db.full_wall_ms <= 0 ? 0.0 : db.delta_wall_ms / db.full_wall_ms,
                db.apply_us, db.byte_identical ? "identical" : "DIVERGED",
                db.store_identical ? "identical" : "DIVERGED");
    if (!db.byte_identical || !db.store_identical) {
      std::fprintf(stderr, "delta bench: merged model diverged from from-scratch run\n");
      return 1;
    }
  }

  std::ofstream out(out_path);
  out << "{\n";
  out << "  \"bench\": \"pipeline_e2e\",\n";
  out << "  \"scale\": \"" << scale << "\",\n";
  out << "  \"hardware_concurrency\": " << hw << ",\n";
  out << "  \"reps\": " << reps << ",\n";
  out << "  \"world\": {\"suffixes\": " << swc.suffixes << ", \"hostnames\": " << hostnames
      << ", \"vps\": " << swc.vp_count << ", \"batch_hostname_budget\": "
      << swc.batch_hostname_budget << "},\n";
  out << "  \"model_io_us\": " << model_io_json(io) << ",\n";
  out << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    out << "    {\"label\": \"" << r.label << "\", \"threads\": " << r.threads
        << ", \"wall_ms\": " << fmt3(r.wall_ms)
        << ", \"hostnames_per_sec\": " << fmt3(r.hostnames_per_sec)
        << ", \"stream_batches\": " << r.snap.value("pipeline_stream_batches")
        << ", \"checkpoint_batches_committed\": "
        << r.snap.value("checkpoint_batches_committed")
        << ", \"tasks_stolen\": " << r.snap.value("pool_tasks_stolen")
        << ", \"steal_failures\": " << r.snap.value("pool_steal_failures")
        << ", \"peak_rss_bytes\": " << r.gauge("pipeline_peak_rss_bytes")
        << ", \"cache_hit_rate\": " << fmt3(r.hit_rate())
        << ", \"suffixes\": " << r.suffixes << ", \"usable\": " << r.usable
        << ",\n     \"registry\": " << r.snap.to_json("     ") << "}"
        << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  if (delta_frac > 0) out << "  \"delta\": " << delta_json(db) << ",\n";
  out << "  \"derived\": {\"speedup_4t_vs_1t\": " << fmt3(scale4)
      << ", \"peak_rss_bytes\": " << peak_rss << "}\n";
  out << "}\n";
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scale = "S";
  std::string checkpoint_dir;
  double delta_frac = 0;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--checkpoint-dir=", 17) == 0) {
      checkpoint_dir = argv[i] + 17;
    } else if (std::strncmp(argv[i], "--delta-frac=", 13) == 0) {
      delta_frac = std::atof(argv[i] + 13);
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (scale != "S" && scale != "M" && scale != "L" && scale != "XL") {
    std::fprintf(stderr,
                 "usage: pipeline_e2e [--scale={S,M,L,XL}] [--checkpoint-dir=DIR] "
                 "[--delta-frac=F] [out.json] [reps]\n");
    return 2;
  }
  if (!checkpoint_dir.empty() && scale == "S") {
    std::fprintf(stderr, "pipeline_e2e: --checkpoint-dir applies to the streaming "
                         "tiers (M/L/XL) only\n");
    return 2;
  }
  if (delta_frac < 0 || delta_frac >= 1 || (delta_frac > 0 && scale == "S")) {
    std::fprintf(stderr, "pipeline_e2e: --delta-frac takes 0<F<1 and applies to the "
                         "streaming tiers (M/L/XL) only\n");
    return 2;
  }
  const std::string default_out =
      scale == "S" ? "BENCH_PIPELINE.json" : "BENCH_PIPELINE_" + scale + ".json";
  const std::string out_path = positional.size() > 0 ? positional[0] : default_out;
  const int default_reps = scale == "S" ? 3 : scale == "M" ? 2 : 1;
  const int reps =
      std::max(1, positional.size() > 1 ? std::atoi(positional[1].c_str()) : default_reps);

  if (scale != "S") return run_stream_tier(scale, out_path, reps, checkpoint_dir, delta_frac);

  // A multi-operator world heavy enough that per-suffix work dominates.
  sim::WorldConfig wc;
  wc.seed = 99;
  wc.operators = 48;
  wc.geohint_scheme_rate = 0.8;
  wc.hostname_rate = 0.8;
  const sim::World world = sim::generate_world(geo::builtin_dictionary(), wc);
  const measure::Measurements pings = sim::probe_pings(world, {});

  std::size_t hostnames = 0;
  const auto groups = world.topology.group_by_suffix();
  for (const topo::SuffixGroup& g : groups) hostnames += g.hostnames.size();

  const std::size_t hw = util::ThreadPool::resolve(0);
  std::printf("pipeline_e2e: %zu operators, %zu routers, %zu hostnames, %zu suffix groups, "
              "%zu hardware threads, best of %d reps\n\n",
              world.operators.size(), world.topology.size(), hostnames, groups.size(), hw, reps);

  std::vector<RunResult> runs;
  const auto spec = [](std::string label, std::size_t threads, bool cache, bool compiled) {
    RunResult r;
    r.label = std::move(label);
    r.threads = threads;
    r.cache = cache;
    r.compiled = compiled;
    return r;
  };
  runs.push_back(spec("uncached_1t", 1, false, true));
  runs.push_back(spec("legacy_1t", 1, true, false));
  runs.push_back(spec("cached_1t", 1, true, true));
  runs.push_back(spec("cached_2t", 2, true, true));
  runs.push_back(spec("cached_4t", 4, true, true));
  if (hw > 4) runs.push_back(spec("cached_" + std::to_string(hw) + "t", hw, true, true));
  // Interleave: rep r of every configuration before rep r+1 of any, so
  // process-wide drift spreads evenly across labels.
  for (int rep = 0; rep < reps; ++rep)
    for (RunResult& r : runs) time_one_rep(r, world, pings, hostnames);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"run", "threads", "cache", "engine", "wall ms", "hostnames/s", "hit rate",
                  "tag/regex/eval/learn ms", "usable NCs"});
  for (const RunResult& r : runs) {
    char hit[32];
    std::snprintf(hit, sizeof hit, "%.1f%%", 100.0 * r.hit_rate());
    rows.push_back({r.label, std::to_string(r.threads), r.cache ? "on" : "off",
                    r.compiled ? "compiled" : "ast",
                    fmt3(r.wall_ms),
                    fmt3(r.hostnames_per_sec), hit,
                    fmt3(r.stage_ms("tag")) + "/" + fmt3(r.stage_ms("regex_gen")) + "/" +
                        fmt3(r.stage_ms("eval")) + "/" + fmt3(r.stage_ms("learn")),
                    std::to_string(r.usable) + "/" + std::to_string(r.suffixes)});
  }
  bench::print_table(rows);

  const std::size_t i_cached = 2;  // "cached_1t"
  const double cache_speedup =
      runs[i_cached].wall_ms <= 0 ? 0 : runs[0].wall_ms / runs[i_cached].wall_ms;
  const double compiled_speedup =
      runs[i_cached].wall_ms <= 0 ? 0 : runs[1].wall_ms / runs[i_cached].wall_ms;
  const double scale4 =
      runs[i_cached + 2].wall_ms <= 0 ? 0 : runs[i_cached].wall_ms / runs[i_cached + 2].wall_ms;
  std::printf("\ncache speedup (1 thread): %.2fx; compiled-engine speedup over AST: %.2fx; "
              "4-thread speedup over 1: %.2fx\n",
              cache_speedup, compiled_speedup, scale4);

  // One untimed run to materialize the learned model, then the per-format
  // save/load costs (the numbers BENCH_MODEL.json tracks at larger scales).
  std::vector<core::StoredConvention> stored;
  {
    core::HoihoConfig config;
    config.threads = hw;
    const core::HoihoResult result = bench::run_hoiho(world, pings, config);
    for (const core::SuffixResult& sr : result.suffixes)
      if (sr.usable()) stored.push_back(core::StoredConvention{sr.nc, sr.cls});
  }
  const ModelIo io = time_model_io(stored, out_path);
  std::printf("model io (%zu NCs): save text %.0fus / ncb %.0fus; load text %.0fus / "
              "ncb %.0fus / mmap %.0fus\n",
              io.conventions, io.save_text_us, io.save_ncb_us, io.load_text_us,
              io.load_ncb_us, io.load_ncb_mmap_us);

  std::ofstream out(out_path);
  out << "{\n";
  out << "  \"bench\": \"pipeline_e2e\",\n";
  out << "  \"hardware_concurrency\": " << hw << ",\n";
  out << "  \"reps\": " << reps << ",\n";
  out << "  \"world\": {\"operators\": " << world.operators.size()
      << ", \"routers\": " << world.topology.size() << ", \"hostnames\": " << hostnames
      << ", \"suffix_groups\": " << groups.size() << "},\n";
  out << "  \"model_io_us\": " << model_io_json(io) << ",\n";
  out << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    out << "    {\"label\": \"" << r.label << "\", \"threads\": " << r.threads
        << ", \"consistency_cache\": " << (r.cache ? "true" : "false")
        << ", \"compiled_regex\": " << (r.compiled ? "true" : "false")
        << ", \"wall_ms\": " << fmt3(r.wall_ms)
        << ", \"hostnames_per_sec\": " << fmt3(r.hostnames_per_sec)
        << ", \"cache_hit_rate\": " << fmt3(r.hit_rate())
        << ", \"cache_hits\": " << r.cache_hits() << ", \"cache_misses\": " << r.cache_misses()
        << ", \"prefilter_rejects\": " << r.snap.value("consistency_cache_prefilter_rejects")
        << ", \"stage_ms\": {\"tag\": " << fmt3(r.stage_ms("tag"))
        << ", \"regex\": " << fmt3(r.stage_ms("regex_gen"))
        << ", \"eval\": " << fmt3(r.stage_ms("eval"))
        << ", \"learn\": " << fmt3(r.stage_ms("learn")) << "}"
        << ", \"suffixes\": " << r.suffixes << ", \"usable\": " << r.usable
        << ",\n     \"registry\": " << r.snap.to_json("     ") << "}"
        << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"derived\": {\"cache_speedup_1t\": " << fmt3(cache_speedup)
      << ", \"compiled_speedup_1t\": " << fmt3(compiled_speedup)
      << ", \"speedup_4t_vs_1t\": " << fmt3(scale4) << "}\n";
  out << "}\n";
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
