// End-to-end pipeline performance bench: runs the full five-stage method
// over a multi-operator world and reports wall time, hostname throughput,
// and consistency-cache hit rate for the uncached baseline, the cached
// sequential run, and cached runs at increasing thread counts.
//
// Every timed run carries a live obs::Registry (so the numbers include the
// steady-state instrumentation cost, which is what production pays), and
// the per-run stats in BENCH_PIPELINE.json are read back *from* the
// registry snapshot rather than summed off SuffixResult fields — the bench
// is also the compatibility check that the registry view agrees with the
// old one. Each run's snapshot is embedded under "registry"; CI guards
// that schema (a counter disappearing fails the perf-smoke job).
//
// Emits BENCH_PIPELINE.json (path overridable via argv) so the perf
// trajectory is tracked across PRs; the checked-in copy records the numbers
// from the machine that produced this revision.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

using namespace hoiho;

namespace {

struct RunResult {
  std::string label;
  std::size_t threads = 1;
  bool cache = true;
  bool compiled = true;
  double wall_ms = 0;
  double hostnames_per_sec = 0;
  obs::Snapshot snap;  // rep-0 registry snapshot (counters for one full run)
  std::size_t suffixes = 0, usable = 0;

  std::uint64_t cache_hits() const { return snap.value("consistency_cache_hits"); }
  std::uint64_t cache_misses() const { return snap.value("consistency_cache_misses"); }
  double hit_rate() const {
    const std::uint64_t total = cache_hits() + cache_misses();
    return total == 0 ? 0.0 : static_cast<double>(cache_hits()) / static_cast<double>(total);
  }
  double stage_ms(std::string_view stage) const {
    return static_cast<double>(
               snap.value("pipeline_stage_us{stage=\"" + std::string(stage) + "\"}")) /
           1e3;
  }
};

RunResult time_run(const std::string& label, const sim::World& world,
                   const measure::Measurements& pings, std::size_t threads, bool cache,
                   bool compiled, std::size_t hostnames, int reps) {
  core::HoihoConfig config;
  config.threads = threads;
  config.consistency_cache = cache;
  config.compiled_regex = compiled;

  RunResult out;
  out.label = label;
  out.threads = threads;
  out.cache = cache;
  out.compiled = compiled;
  out.wall_ms = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    // Fresh registry per rep: each snapshot covers exactly one run, and the
    // timing includes the armed-counter cost every rep.
    obs::Registry registry;
    config.registry = &registry;
    const auto t0 = std::chrono::steady_clock::now();
    const core::HoihoResult result = bench::run_hoiho(world, pings, config);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (ms < out.wall_ms) out.wall_ms = ms;
    if (rep == 0) {
      out.snap = registry.snapshot();
      out.suffixes = result.suffixes.size();
      for (const core::SuffixResult& sr : result.suffixes)
        if (sr.usable()) ++out.usable;
    }
  }
  out.hostnames_per_sec = out.wall_ms <= 0 ? 0 : static_cast<double>(hostnames) / (out.wall_ms / 1e3);
  return out;
}

std::string fmt3(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_PIPELINE.json";
  const int reps = std::max(1, argc > 2 ? std::atoi(argv[2]) : 3);

  // A multi-operator world heavy enough that per-suffix work dominates.
  sim::WorldConfig wc;
  wc.seed = 99;
  wc.operators = 48;
  wc.geohint_scheme_rate = 0.8;
  wc.hostname_rate = 0.8;
  const sim::World world = sim::generate_world(geo::builtin_dictionary(), wc);
  const measure::Measurements pings = sim::probe_pings(world, {});

  std::size_t hostnames = 0;
  const auto groups = world.topology.group_by_suffix();
  for (const topo::SuffixGroup& g : groups) hostnames += g.hostnames.size();

  const std::size_t hw = util::ThreadPool::resolve(0);
  std::printf("pipeline_e2e: %zu operators, %zu routers, %zu hostnames, %zu suffix groups, "
              "%zu hardware threads, best of %d reps\n\n",
              world.operators.size(), world.topology.size(), hostnames, groups.size(), hw, reps);

  std::vector<RunResult> runs;
  runs.push_back(time_run("uncached_1t", world, pings, 1, false, true, hostnames, reps));
  runs.push_back(time_run("legacy_1t", world, pings, 1, true, false, hostnames, reps));
  runs.push_back(time_run("cached_1t", world, pings, 1, true, true, hostnames, reps));
  for (std::size_t t : {std::size_t{2}, std::size_t{4}}) {
    runs.push_back(time_run("cached_" + std::to_string(t) + "t", world, pings, t, true, true,
                            hostnames, reps));
  }
  if (hw > 4)
    runs.push_back(time_run("cached_" + std::to_string(hw) + "t", world, pings, hw, true, true,
                            hostnames, reps));

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"run", "threads", "cache", "engine", "wall ms", "hostnames/s", "hit rate",
                  "tag/regex/eval/learn ms", "usable NCs"});
  for (const RunResult& r : runs) {
    char hit[32];
    std::snprintf(hit, sizeof hit, "%.1f%%", 100.0 * r.hit_rate());
    rows.push_back({r.label, std::to_string(r.threads), r.cache ? "on" : "off",
                    r.compiled ? "compiled" : "ast",
                    fmt3(r.wall_ms),
                    fmt3(r.hostnames_per_sec), hit,
                    fmt3(r.stage_ms("tag")) + "/" + fmt3(r.stage_ms("regex_gen")) + "/" +
                        fmt3(r.stage_ms("eval")) + "/" + fmt3(r.stage_ms("learn")),
                    std::to_string(r.usable) + "/" + std::to_string(r.suffixes)});
  }
  bench::print_table(rows);

  const std::size_t i_cached = 2;  // "cached_1t"
  const double cache_speedup =
      runs[i_cached].wall_ms <= 0 ? 0 : runs[0].wall_ms / runs[i_cached].wall_ms;
  const double compiled_speedup =
      runs[i_cached].wall_ms <= 0 ? 0 : runs[1].wall_ms / runs[i_cached].wall_ms;
  const double scale4 =
      runs[i_cached + 2].wall_ms <= 0 ? 0 : runs[i_cached].wall_ms / runs[i_cached + 2].wall_ms;
  std::printf("\ncache speedup (1 thread): %.2fx; compiled-engine speedup over AST: %.2fx; "
              "4-thread speedup over 1: %.2fx\n",
              cache_speedup, compiled_speedup, scale4);

  std::ofstream out(out_path);
  out << "{\n";
  out << "  \"bench\": \"pipeline_e2e\",\n";
  out << "  \"hardware_concurrency\": " << hw << ",\n";
  out << "  \"reps\": " << reps << ",\n";
  out << "  \"world\": {\"operators\": " << world.operators.size()
      << ", \"routers\": " << world.topology.size() << ", \"hostnames\": " << hostnames
      << ", \"suffix_groups\": " << groups.size() << "},\n";
  out << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    out << "    {\"label\": \"" << r.label << "\", \"threads\": " << r.threads
        << ", \"consistency_cache\": " << (r.cache ? "true" : "false")
        << ", \"compiled_regex\": " << (r.compiled ? "true" : "false")
        << ", \"wall_ms\": " << fmt3(r.wall_ms)
        << ", \"hostnames_per_sec\": " << fmt3(r.hostnames_per_sec)
        << ", \"cache_hit_rate\": " << fmt3(r.hit_rate())
        << ", \"cache_hits\": " << r.cache_hits() << ", \"cache_misses\": " << r.cache_misses()
        << ", \"prefilter_rejects\": " << r.snap.value("consistency_cache_prefilter_rejects")
        << ", \"stage_ms\": {\"tag\": " << fmt3(r.stage_ms("tag"))
        << ", \"regex\": " << fmt3(r.stage_ms("regex_gen"))
        << ", \"eval\": " << fmt3(r.stage_ms("eval"))
        << ", \"learn\": " << fmt3(r.stage_ms("learn")) << "}"
        << ", \"suffixes\": " << r.suffixes << ", \"usable\": " << r.usable
        << ",\n     \"registry\": " << r.snap.to_json("     ") << "}"
        << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"derived\": {\"cache_speedup_1t\": " << fmt3(cache_speedup)
      << ", \"compiled_speedup_1t\": " << fmt3(compiled_speedup)
      << ", \"speedup_4t_vs_1t\": " << fmt3(scale4) << "}\n";
  out << "}\n";
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
