// Reproduces paper Table 1: summary of the (synthetic) ITDKs — router
// counts, hostname coverage, RTT coverage, and vantage points.
//
// Paper values for reference: IPv4 2.56M/2.57M routers with ~55%/54%
// hostnames and ~82% RTT coverage from 106/100 VPs; IPv6 559K/525K routers
// with ~15%/16% hostnames and ~47%/45% RTT coverage from 46/39 VPs.
#include <cstdio>

#include "common.h"
#include "util/strings.h"

using namespace hoiho;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  std::printf("Table 1: Summary of ITDKs used in this work (synthetic, scale=%.2f)\n\n", scale);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Routers", "IPv4 Aug '20", "IPv4 Mar '21", "IPv6 Nov '20", "IPv6 Mar '21"});

  std::vector<std::string> total = {"total"}, hostnames = {"w/ hostnames"},
                           rtt = {"w/ RTT"}, vps = {"Vantage Points"};
  for (const sim::ItdkKind kind : {sim::ItdkKind::kIpv4Aug20, sim::ItdkKind::kIpv4Mar21,
                                   sim::ItdkKind::kIpv6Nov20, sim::ItdkKind::kIpv6Mar21}) {
    const sim::ItdkScenario sc = sim::make_itdk(kind, scale);
    const std::size_t n = sc.world.topology.size();
    const std::size_t with_host = sc.world.topology.count_with_hostname();
    const std::size_t with_rtt = sc.pings.pings.responsive_router_count();
    total.push_back(util::fmt_count(n));
    hostnames.push_back(util::fmt_count(with_host) + " (" +
                        util::fmt_pct(static_cast<double>(with_host), static_cast<double>(n)) +
                        ")");
    rtt.push_back(util::fmt_count(with_rtt) + " (" +
                  util::fmt_pct(static_cast<double>(with_rtt), static_cast<double>(n)) + ")");
    vps.push_back(std::to_string(sc.pings.vps.size()));
  }
  rows.push_back(total);
  rows.push_back(hostnames);
  rows.push_back(rtt);
  rows.push_back(vps);
  bench::print_table(rows);

  std::printf(
      "\nPaper: IPv4 hostname coverage ~55%%, RTT ~82%%; IPv6 hostname ~15-16%%, RTT ~45-47%%.\n");
  return 0;
}
