// Reproduces paper Figure 10: properties of learned geohints.
//
// (a) CDF of the shortest RTT from a VP to routers using each learned hint.
//     Paper: 48.6% of learned hints within 10 ms (1000 km) of a VP; 80%
//     within 22 ms.
// (b) CDF of the distance from the learned location to the airport whose
//     IATA code the hint collides with. Paper: 93.5% more than 1000 km
//     away; median >= 7600 km — i.e. learned meanings are usually far from
//     the dictionary meaning, which is why learning matters.
#include <cstdio>
#include <map>

#include "common.h"
#include "util/strings.h"

using namespace hoiho;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  sim::WorldConfig config;
  config.seed = 515151;  // same world as table5_learned_hints
  config.operators = static_cast<std::size_t>(220 * scale);
  config.geohint_scheme_rate = 0.6;
  config.custom_operator_rate = 0.65;
  config.size_xm = 8.0;   // transit-heavy operator mix
  config.vp_count = 40;   // paper-like VP sparsity relative to the atlas
  const sim::World world = sim::generate_world(geo::builtin_dictionary(), config);
  const auto meas = sim::probe_pings(world, {});
  const core::HoihoResult result = bench::run_hoiho(world, meas);
  const geo::GeoDictionary& dict = *world.dict;

  std::vector<double> closest_rtts, collision_distances;
  for (const core::SuffixResult& sr : result.suffixes) {
    if (!sr.usable()) continue;
    for (const auto& [key, loc] : sr.nc.learned) {
      // Shortest RTT from any VP to the routers that use this hint.
      double best = 1e18;
      for (std::size_t i = 0; i < sr.eval.per_hostname.size(); ++i) {
        if (sr.eval.per_hostname[i].code != key.second) continue;
        const auto closest = meas.pings.closest_vp(sr.tagged[i].ref.router);
        if (closest) best = std::min(best, closest->second);
      }
      if (best < 1e17) closest_rtts.push_back(best);

      // Distance to the dictionary meaning, when the code collides.
      for (const geo::LocationId dict_loc : dict.lookup(key.first, key.second)) {
        collision_distances.push_back(
            geo::distance_km(dict.location(loc).coord, dict.location(dict_loc).coord));
        break;
      }
    }
  }

  std::printf("Figure 10(a): shortest VP RTT to learned-hint routers (n=%zu)\n\n",
              closest_rtts.size());
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"percentile", "RTT (ms)"});
  for (const double p : {10.0, 25.0, 48.6, 50.0, 80.0, 90.0}) {
    rows.push_back({"p" + util::fmt_double(p, 1),
                    util::fmt_double(bench::percentile(closest_rtts, p), 1)});
  }
  bench::print_table(rows);
  std::size_t within10 = 0, within22 = 0;
  for (const double r : closest_rtts) {
    if (r <= 10) ++within10;
    if (r <= 22) ++within22;
  }
  std::printf("\nwithin 10 ms: %s (paper 48.6%%);  within 22 ms: %s (paper 80%%)\n",
              util::fmt_pct(static_cast<double>(within10),
                            static_cast<double>(closest_rtts.size()))
                  .c_str(),
              util::fmt_pct(static_cast<double>(within22),
                            static_cast<double>(closest_rtts.size()))
                  .c_str());

  std::printf("\nFigure 10(b): distance from learned location to same-code airport (n=%zu)\n\n",
              collision_distances.size());
  rows.clear();
  rows.push_back({"percentile", "km"});
  for (const double p : {10.0, 25.0, 50.0, 75.0, 90.0}) {
    rows.push_back({"p" + util::fmt_double(p, 0),
                    util::fmt_double(bench::percentile(collision_distances, p), 0)});
  }
  bench::print_table(rows);
  std::size_t over1000 = 0;
  for (const double d : collision_distances)
    if (d > 1000) ++over1000;
  std::printf("\nmore than 1000 km from the airport: %s (paper 93.5%%)\n",
              util::fmt_pct(static_cast<double>(over1000),
                            static_cast<double>(collision_distances.size()))
                  .c_str());
  return 0;
}
