// google-benchmark microbenchmarks for the restricted regex engine:
// parsing, matching, and capture extraction throughput on the paper's
// figure-7 patterns, plus compiled-engine (rx::Program) and candidate-set
// (rx::SetMatcher) subjects sized like real per-suffix candidate pools.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "regex/matcher.h"
#include "regex/parser.h"
#include "regex/program.h"
#include "regex/set_matcher.h"
#include "util/rng.h"

namespace {

using namespace hoiho;

constexpr const char* kZayo =
    "^.+\\.([a-z]{3})\\d+\\.([a-z]{2})\\.[a-z]{3}\\.zayo\\.com$";
constexpr const char* kNtt =
    "^.+\\.([a-z]{6})\\d+\\.([a-z]{2})\\.[a-z]{2}\\.gin\\.ntt\\.net$";
constexpr const char* kSubjectHit = "zayo-ntt.mpr1.lhr15.uk.zip.zayo.com";
constexpr const char* kSubjectMiss = "ae-5.r20.snjsca04.us.bb.gin.ntt.net";

void BM_Parse(benchmark::State& state) {
  for (auto _ : state) {
    auto rx = rx::parse(kZayo);
    benchmark::DoNotOptimize(rx);
  }
}
BENCHMARK(BM_Parse);

void BM_MatchHit(benchmark::State& state) {
  const auto rx = *rx::parse(kZayo);
  for (auto _ : state) {
    auto m = rx::match(rx, kSubjectHit);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_MatchHit);

void BM_MatchMiss(benchmark::State& state) {
  const auto rx = *rx::parse(kZayo);
  for (auto _ : state) {
    auto m = rx::match(rx, kSubjectMiss);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_MatchMiss);

void BM_CaptureStrings(benchmark::State& state) {
  const auto rx = *rx::parse(kNtt);
  for (auto _ : state) {
    auto caps = rx::capture_strings(rx, kSubjectMiss);
    benchmark::DoNotOptimize(caps);
  }
}
BENCHMARK(BM_CaptureStrings);

void BM_MatchWithSpans(benchmark::State& state) {
  const auto rx = *rx::parse(kNtt);
  std::vector<rx::Capture> spans;
  for (auto _ : state) {
    auto m = rx::match_with_spans(rx, kSubjectMiss, spans);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_MatchWithSpans);

// --- compiled engine ---------------------------------------------------------

void BM_ProgramMatchHit(benchmark::State& state) {
  const auto rx = *rx::parse(kZayo);
  const rx::Program program = rx::Program::compile(rx);
  rx::MatchScratch scratch;
  for (auto _ : state) {
    bool m = program.match(kSubjectHit, scratch);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_ProgramMatchHit);

void BM_ProgramMatchMiss(benchmark::State& state) {
  const auto rx = *rx::parse(kZayo);
  const rx::Program program = rx::Program::compile(rx);
  rx::MatchScratch scratch;
  for (auto _ : state) {
    bool m = program.match(kSubjectMiss, scratch);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_ProgramMatchMiss);

// --- set matching ------------------------------------------------------------

// Candidate pools the size a suffix run actually produces (dozens) up to a
// stress size (512). Patterns are dialect-shaped variations over distinct
// operator tails; one of them matches kSetHit, none match kSetMiss.
std::vector<rx::Regex> make_candidate_set(std::size_t n) {
  util::Rng rng(n * 2654435761u);
  static const char* mids[] = {"([a-z]{3})\\d+", "([a-z]{2})-\\d+", "([a-z]+)\\d*",
                               "(\\d+)-[a-z]+",  "([a-z]{4})\\d++"};
  static const char* tails[] = {"zayo\\.com", "gin\\.ntt\\.net", "he\\.net",
                                "cogentco\\.com", "telia\\.net"};
  std::vector<rx::Regex> out;
  out.reserve(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    std::string pattern = "^.+\\.";
    pattern += mids[rng.next_below(std::size(mids))];
    pattern += "\\.[a-z]{2}\\.";
    pattern += tails[rng.next_below(std::size(tails))];
    pattern += "$";
    out.push_back(*rx::parse(pattern));
  }
  // The one that matches kSetHit, somewhere in the middle of the set.
  out.insert(out.begin() + static_cast<long>(out.size() / 2), *rx::parse(kZayo));
  return out;
}

constexpr const char* kSetHit = kSubjectHit;
constexpr const char* kSetMiss = "ae-5.r20.snjsca04.us.bb.example.org";

void BM_SetMatchHit(benchmark::State& state) {
  const std::vector<rx::Regex> regexes = make_candidate_set(state.range(0));
  rx::SetMatcher set;
  for (const rx::Regex& r : regexes) set.add(r);
  set.finalize();
  rx::MatchScratch scratch;
  rx::SetMatches matches;
  for (auto _ : state) {
    set.match_all(kSetHit, scratch, matches);
    benchmark::DoNotOptimize(matches.indices.size());
  }
}
BENCHMARK(BM_SetMatchHit)->Arg(8)->Arg(64)->Arg(512)->Name("BM_SetMatch/hit");

void BM_SetMatchMiss(benchmark::State& state) {
  const std::vector<rx::Regex> regexes = make_candidate_set(state.range(0));
  rx::SetMatcher set;
  for (const rx::Regex& r : regexes) set.add(r);
  set.finalize();
  rx::MatchScratch scratch;
  rx::SetMatches matches;
  for (auto _ : state) {
    set.match_all(kSetMiss, scratch, matches);
    benchmark::DoNotOptimize(matches.indices.size());
  }
}
BENCHMARK(BM_SetMatchMiss)->Arg(8)->Arg(64)->Arg(512)->Name("BM_SetMatch/miss");

// Oracle comparison subject: the same pools matched one regex at a time on
// the AST backtracker — what candidate scoring cost before compilation.
void BM_SetMatchLegacyLoop(benchmark::State& state) {
  const std::vector<rx::Regex> regexes = make_candidate_set(state.range(0));
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const rx::Regex& r : regexes)
      if (rx::match(r, kSetHit).matched) ++hits;
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_SetMatchLegacyLoop)->Arg(8)->Arg(64)->Arg(512)->Name("BM_SetMatch/legacy");

}  // namespace

BENCHMARK_MAIN();
