// google-benchmark microbenchmarks for the restricted regex engine:
// parsing, matching, and capture extraction throughput on the paper's
// figure-7 patterns.
#include <benchmark/benchmark.h>

#include "regex/matcher.h"
#include "regex/parser.h"

namespace {

using namespace hoiho;

constexpr const char* kZayo =
    "^.+\\.([a-z]{3})\\d+\\.([a-z]{2})\\.[a-z]{3}\\.zayo\\.com$";
constexpr const char* kNtt =
    "^.+\\.([a-z]{6})\\d+\\.([a-z]{2})\\.[a-z]{2}\\.gin\\.ntt\\.net$";
constexpr const char* kSubjectHit = "zayo-ntt.mpr1.lhr15.uk.zip.zayo.com";
constexpr const char* kSubjectMiss = "ae-5.r20.snjsca04.us.bb.gin.ntt.net";

void BM_Parse(benchmark::State& state) {
  for (auto _ : state) {
    auto rx = rx::parse(kZayo);
    benchmark::DoNotOptimize(rx);
  }
}
BENCHMARK(BM_Parse);

void BM_MatchHit(benchmark::State& state) {
  const auto rx = *rx::parse(kZayo);
  for (auto _ : state) {
    auto m = rx::match(rx, kSubjectHit);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_MatchHit);

void BM_MatchMiss(benchmark::State& state) {
  const auto rx = *rx::parse(kZayo);
  for (auto _ : state) {
    auto m = rx::match(rx, kSubjectMiss);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_MatchMiss);

void BM_CaptureStrings(benchmark::State& state) {
  const auto rx = *rx::parse(kNtt);
  for (auto _ : state) {
    auto caps = rx::capture_strings(rx, kSubjectMiss);
    benchmark::DoNotOptimize(caps);
  }
}
BENCHMARK(BM_CaptureStrings);

void BM_MatchWithSpans(benchmark::State& state) {
  const auto rx = *rx::parse(kNtt);
  std::vector<rx::Capture> spans;
  for (auto _ : state) {
    auto m = rx::match_with_spans(rx, kSubjectMiss, spans);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_MatchWithSpans);

}  // namespace

BENCHMARK_MAIN();
