// Model format bench (DESIGN.md §15): save and reload wall time for the
// three model load paths — text parse+compile, ncb heap build, ncb mmap
// views — at two model scales, with a byte-identical answer sweep across
// all three on every run. Emits BENCH_MODEL.json; the committed copy is
// the baseline the perf-smoke CI job gates reload regressions against.
//
// Exit 0 iff every format answers byte-identically at every scale AND the
// mmap reload is >= 10x faster than the text reload at M (the acceptance
// number the binary format exists for).
//
// Run: ./build/bench/model_bench [out.json] [reps]

#include <cstdio>
#include <cstring>
#include <chrono>
#include <fstream>
#include <string>
#include <vector>

#include "core/geolocate.h"
#include "core/nc_io.h"
#include "core/ncb.h"
#include "regex/parser.h"
#include "serve/model_store.h"
#include "serve/protocol.h"
#include "util/rng.h"

using namespace hoiho;

namespace {

using core::GeoRegex;
using core::NcClass;
using core::Role;
using core::StoredConvention;

// Resolvable IATA codes, so the sweep exercises real hit answers (learned
// and dictionary-resolved), not just the miss path.
const char* kCodes[] = {"ash", "lhr", "lax", "jfk", "sea", "ord", "fra", "ams",
                        "sin", "syd", "nrt", "cdg", "mad", "mia", "den", "iad"};
constexpr std::size_t kCodeCount = sizeof(kCodes) / sizeof(kCodes[0]);

// A deterministic synthetic model of `suffixes` conventions, shaped like the
// learner's output (IATA extractors, some two-regex, some with a country
// qualifier, a third carrying learned overrides). The loader cost scales
// with conventions x regexes x hints, which is what this bench measures —
// the learning pipeline that would produce an equivalent model at M scale
// is benched separately (pipeline_e2e).
std::vector<StoredConvention> synth_model(const geo::GeoDictionary& dict,
                                          std::size_t suffixes) {
  std::vector<StoredConvention> out(suffixes);
  for (std::size_t i = 0; i < suffixes; ++i) {
    const std::string suffix = "op" + std::to_string(i) + ".net";
    const std::string esc = "op" + std::to_string(i) + "\\.net";
    out[i].nc.suffix = suffix;
    out[i].cls = i % 2 == 0 ? NcClass::kGood : NcClass::kPromising;
    GeoRegex a;
    a.regex = *rx::parse("^.+\\.([a-z]{3})\\d+\\." + esc + "$");
    a.plan.roles = {Role::kIata};
    out[i].nc.regexes.push_back(std::move(a));
    if (i % 2 == 0) {
      GeoRegex b;
      b.regex = *rx::parse("^([a-z]{3})\\d*\\." + esc + "$");
      b.plan.roles = {Role::kIata};
      out[i].nc.regexes.push_back(std::move(b));
    } else {
      GeoRegex b;
      b.regex = *rx::parse("^.+\\.([a-z]{3})\\d+\\.([a-z]{2})\\." + esc + "$");
      b.plan.roles = {Role::kIata, Role::kCountryCode};
      out[i].nc.regexes.push_back(std::move(b));
    }
    if (i % 3 == 0) {
      // Learned overrides on a few codes; resolution happens at load time in
      // every format, so these are part of what must stay byte-identical.
      for (std::size_t k = 0; k < 3; ++k) {
        const char* code = kCodes[(i + k) % kCodeCount];
        const auto ids = dict.lookup(geo::HintType::kIata, code);
        if (!ids.empty()) out[i].nc.learned[{geo::HintType::kIata, code}] = ids[0];
      }
    }
  }
  return out;
}

// Query corpus: structured hits across the suffix space, near-misses, and
// garbage — the mix a serving deployment actually sees.
std::vector<std::string> query_corpus(std::size_t suffixes, std::size_t n) {
  util::Rng rng(20260809);
  std::vector<std::string> out;
  out.reserve(n);
  const auto letters = [&rng](std::size_t len) {
    std::string s;
    for (std::size_t i = 0; i < len; ++i)
      s += static_cast<char>('a' + rng.next_u64() % 26);
    return s;
  };
  for (std::size_t i = 0; i < n; ++i) {
    const std::string suffix = "op" + std::to_string(rng.next_u64() % suffixes) + ".net";
    const std::string code = kCodes[rng.next_u64() % kCodeCount];
    switch (rng.next_u64() % 5) {
      case 0: out.push_back("core1." + code + "2." + suffix); break;
      case 1: out.push_back(code + "1." + suffix); break;
      case 2: out.push_back("te0." + code + "1.us." + suffix); break;
      case 3: out.push_back(letters(5) + "." + suffix); break;  // shape miss
      default: out.push_back(letters(4) + "." + letters(7) + ".example"); break;
    }
  }
  return out;
}

double us_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::size_t file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in.is_open() ? static_cast<std::size_t>(in.tellg()) : 0;
}

// Min-of-reps reload wall time through serve::ModelStore — the exact path
// the daemon's hot swap pays, snapshot build included.
double time_reload(const geo::GeoDictionary& dict, const std::string& path, bool map,
                   int reps) {
  double best = -1;
  for (int r = 0; r < reps; ++r) {
    serve::ModelStore store(dict, path);
    store.set_map_binary(map);
    const auto t0 = std::chrono::steady_clock::now();
    if (store.reload()) return -1;
    const double us = us_since(t0);
    if (best < 0 || us < best) best = us;
  }
  return best;
}

std::string fmt1(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

struct ScaleResult {
  std::string scale;
  std::size_t conventions = 0, queries = 0, hits = 0;
  std::size_t text_bytes = 0, ncb_bytes = 0;
  double save_text_us = -1, save_ncb_us = -1;
  double load_text_us = -1, load_ncb_us = -1, load_ncb_mmap_us = -1;
  bool identical = false;
  double speedup() const {
    return load_ncb_mmap_us <= 0 ? 0 : load_text_us / load_ncb_mmap_us;
  }
};

ScaleResult run_scale(const std::string& scale, std::size_t suffixes, int reps) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  ScaleResult res;
  res.scale = scale;
  const auto stored = synth_model(dict, suffixes);
  res.conventions = stored.size();

  const std::string text_path = "model_bench_" + scale + ".nc";
  const std::string ncb_path = "model_bench_" + scale + ".ncb";
  std::string error;
  auto t0 = std::chrono::steady_clock::now();
  if (!core::save_conventions_to_file(text_path, stored, dict, &error)) {
    std::fprintf(stderr, "model_bench: save text: %s\n", error.c_str());
    return res;
  }
  res.save_text_us = us_since(t0);
  t0 = std::chrono::steady_clock::now();
  if (!core::save_model_to_file(ncb_path, stored, dict, &error)) {
    std::fprintf(stderr, "model_bench: save ncb: %s\n", error.c_str());
    return res;
  }
  res.save_ncb_us = us_since(t0);
  res.text_bytes = file_bytes(text_path);
  res.ncb_bytes = file_bytes(ncb_path);

  res.load_text_us = time_reload(dict, text_path, true, reps);
  res.load_ncb_us = time_reload(dict, ncb_path, false, reps);
  res.load_ncb_mmap_us = time_reload(dict, ncb_path, true, reps);

  // Equivalence sweep: one store per format, every query compared on the
  // wire bytes the server would emit. Divergence is a hard failure.
  {
    serve::ModelStore text_store(dict, text_path);
    serve::ModelStore heap_store(dict, ncb_path);
    heap_store.set_map_binary(false);
    serve::ModelStore mmap_store(dict, ncb_path);
    if (text_store.reload() || heap_store.reload() || mmap_store.reload()) {
      std::fprintf(stderr, "model_bench: equivalence reload failed\n");
      return res;
    }
    const auto text_snap = text_store.current();
    const auto heap_snap = heap_store.current();
    const auto mmap_snap = mmap_store.current();
    const auto wire = [](const core::Geolocator& g, const std::string& host) {
      const auto loc = g.locate(host);
      return loc ? serve::format_hit(*loc) : serve::format_miss();
    };
    const auto queries = query_corpus(suffixes, scale == "M" ? 20000 : 5000);
    res.queries = queries.size();
    res.identical = true;
    for (const std::string& q : queries) {
      const std::string want = wire(text_snap->geolocator, q);
      if (wire(heap_snap->geolocator, q) != want ||
          wire(mmap_snap->geolocator, q) != want) {
        std::fprintf(stderr, "model_bench: ANSWER DIVERGED on '%s'\n", q.c_str());
        res.identical = false;
        break;
      }
      if (want != serve::format_miss()) ++res.hits;
    }
  }
  std::remove(text_path.c_str());
  std::remove(ncb_path.c_str());

  std::printf("%s: %zu NCs | text %zu B, ncb %zu B | save %s/%s us | "
              "load text %s, ncb %s, mmap %s us | mmap %sx | %zu/%zu hits %s\n",
              scale.c_str(), res.conventions, res.text_bytes, res.ncb_bytes,
              fmt1(res.save_text_us).c_str(), fmt1(res.save_ncb_us).c_str(),
              fmt1(res.load_text_us).c_str(), fmt1(res.load_ncb_us).c_str(),
              fmt1(res.load_ncb_mmap_us).c_str(), fmt1(res.speedup()).c_str(), res.hits,
              res.queries, res.identical ? "identical" : "DIVERGED");
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_MODEL.json";
  const int reps = argc > 2 ? std::max(1, std::atoi(argv[2])) : 5;

  std::vector<ScaleResult> scales;
  scales.push_back(run_scale("S", 50, reps));
  scales.push_back(run_scale("M", 2000, reps));

  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"model_bench\",\n  \"reps\": " << reps << ",\n  \"scales\": [\n";
  for (std::size_t i = 0; i < scales.size(); ++i) {
    const ScaleResult& r = scales[i];
    out << "    {\"scale\": \"" << r.scale << "\", \"conventions\": " << r.conventions
        << ", \"text_bytes\": " << r.text_bytes << ", \"ncb_bytes\": " << r.ncb_bytes
        << ",\n     \"save_text_us\": " << fmt1(r.save_text_us)
        << ", \"save_ncb_us\": " << fmt1(r.save_ncb_us)
        << ", \"load_text_us\": " << fmt1(r.load_text_us)
        << ", \"load_ncb_us\": " << fmt1(r.load_ncb_us)
        << ", \"load_ncb_mmap_us\": " << fmt1(r.load_ncb_mmap_us)
        << ",\n     \"speedup_mmap_vs_text\": " << fmt1(r.speedup())
        << ", \"queries\": " << r.queries << ", \"hits\": " << r.hits
        << ", \"answers_identical\": " << (r.identical ? "true" : "false") << "}"
        << (i + 1 < scales.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"derived\": {\"m_speedup_mmap_vs_text\": " << fmt1(scales[1].speedup())
      << "}\n}\n";
  if (!out) {
    std::fprintf(stderr, "model_bench: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  // Acceptance: identical answers everywhere; >= 10x mmap-vs-text at M.
  bool pass = true;
  for (const ScaleResult& r : scales)
    pass = pass && r.identical && r.hits > 0 && r.load_text_us > 0 &&
           r.load_ncb_us > 0 && r.load_ncb_mmap_us > 0;
  if (scales[1].speedup() < 10.0) {
    std::fprintf(stderr, "model_bench: M-scale mmap speedup %.1fx < 10x\n",
                 scales[1].speedup());
    pass = false;
  }
  if (!pass) std::fprintf(stderr, "model_bench: FAILED acceptance\n");
  return pass ? 0 : 1;
}
