// Reproduces paper Table 5: the most frequently learned three-letter
// geohints across suffixes, with the IATA "alternatives" operators could
// have used for those locations.
//
// Paper: ash (Ashburn, 12 suffixes), tor (Toronto, 10), wdc (Washington, 9),
// tok (Tokyo, 8), zur (Zurich, 8), ldn (London, 7); four of the six collide
// with real IATA codes.
#include <algorithm>
#include <cstdio>
#include <map>

#include "common.h"
#include "util/strings.h"

using namespace hoiho;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  sim::WorldConfig config;
  config.seed = 515151;
  config.operators = static_cast<std::size_t>(220 * scale);
  config.geohint_scheme_rate = 0.6;
  config.custom_operator_rate = 0.65;
  config.size_xm = 8.0;     // transit-heavy operator mix
  const sim::World world = sim::generate_world(geo::builtin_dictionary(), config);
  const auto meas = sim::probe_pings(world, {});
  const core::HoihoResult result = bench::run_hoiho(world, meas);
  const geo::GeoDictionary& dict = *world.dict;

  // Aggregate learned three-letter hints across suffixes.
  struct HintAgg {
    std::size_t suffixes = 0;
    std::map<geo::LocationId, std::size_t> locations;
  };
  std::map<std::string, HintAgg> agg;
  // Count of suffixes using each dictionary code at each location (for the
  // "alternatives" column).
  std::map<std::string, std::size_t> dict_code_suffixes;
  for (const core::SuffixResult& sr : result.suffixes) {
    if (!sr.usable()) continue;
    for (const auto& [key, loc] : sr.nc.learned) {
      if (key.first != geo::HintType::kIata) continue;
      HintAgg& a = agg[key.second];
      ++a.suffixes;
      ++a.locations[loc];
    }
    for (const std::string& code : sr.eval.unique_tp_codes) {
      if (code.size() == 3 && !dict.lookup(geo::HintType::kIata, code).empty())
        ++dict_code_suffixes[code];
    }
  }

  std::vector<std::pair<std::string, HintAgg>> sorted(agg.begin(), agg.end());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& a, const auto& b) { return a.second.suffixes > b.second.suffixes; });

  std::printf("Table 5: most frequently learned three-letter geohints (scale=%.2f)\n\n", scale);
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"collides", "hint", "#suffixes", "location", "alternatives"});
  std::size_t shown = 0;
  for (const auto& [code, a] : sorted) {
    if (shown++ >= 8) break;
    // Majority location.
    geo::LocationId major = a.locations.begin()->first;
    for (const auto& [loc, n] : a.locations)
      if (n > a.locations.at(major)) major = loc;
    const geo::Location& loc = dict.location(major);
    std::string where = loc.city;
    if (!loc.state.empty()) where += ", " + loc.state;
    where += ", " + loc.country;
    // Alternatives: dictionary IATA codes within 100 km of the location.
    std::string alternatives;
    for (geo::LocationId id = 0; id < dict.size(); ++id) {
      if (geo::distance_km(dict.location(id).coord, loc.coord) > 100) continue;
      for (const std::string& alt : dict.codes(id).iata) {
        if (!alternatives.empty()) alternatives += ", ";
        alternatives += alt + ":" + std::to_string(dict_code_suffixes[alt]);
      }
    }
    const bool collides = !dict.lookup(geo::HintType::kIata, code).empty();
    rows.push_back({collides ? "(x)" : "   ", code, std::to_string(a.suffixes), where,
                    alternatives});
  }
  bench::print_table(rows);

  std::printf("\nPaper: ash:12, tor:10, wdc:9, tok:8, zur:8, ldn:7; 4 of 6 collide with IATA.\n");

  // Headline §6.2 statistic: fraction of usable IATA NCs with >= 1 learned hint.
  std::size_t iata_ncs = 0, with_custom = 0;
  for (const core::SuffixResult& sr : result.suffixes) {
    if (!sr.usable()) continue;
    if (sr.nc.regexes.front().plan.primary() != core::Role::kIata) continue;
    ++iata_ncs;
    for (const auto& [key, loc] : sr.nc.learned)
      if (key.first == geo::HintType::kIata) {
        ++with_custom;
        break;
      }
  }
  std::printf("usable IATA NCs with >=1 learned hint: %s (paper: 147/461 = 38.2%%)\n",
              util::fmt_pct(static_cast<double>(with_custom), static_cast<double>(iata_ncs))
                  .c_str());
  return 0;
}
