// Reproduces paper Figure 5: why follow-up pings beat traceroute-observed
// RTTs as geolocation constraints.
//
// (a) CDF of the minimum RTT per router: ping campaign vs RTTs observed in
//     the traceroutes that built the ITDK. Paper: median 16 ms (ping) vs
//     68 ms (traceroute) — 4.25x, i.e. a ~180x larger feasible area (pi r^2).
// (b) Number of VPs with a sample per router: paper: 35.8% of routers seen
//     by one VP in traceroute; pings obtained samples from ~89% of VPs.
#include <cstdio>

#include "common.h"
#include "geo/coord.h"
#include "util/strings.h"

using namespace hoiho;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  const sim::ItdkScenario sc = sim::make_itdk(sim::ItdkKind::kIpv4Aug20, scale);

  std::vector<double> ping_min, trace_min, ping_frac, trace_single;
  std::size_t trace_one_vp = 0, trace_routers = 0;
  double vp_sample_fraction_sum = 0;
  std::size_t responsive = 0;
  for (const topo::Router& r : sc.world.topology.routers()) {
    const auto p = sc.pings.pings.closest_vp(r.id);
    if (p) {
      ping_min.push_back(p->second);
      ++responsive;
      vp_sample_fraction_sum += static_cast<double>(sc.pings.pings.sample_count(r.id)) /
                                static_cast<double>(sc.pings.vps.size());
    }
    const auto t = sc.traces.pings.closest_vp(r.id);
    if (t) {
      trace_min.push_back(t->second);
      ++trace_routers;
      if (sc.traces.pings.sample_count(r.id) == 1) ++trace_one_vp;
    }
  }

  std::printf("Figure 5(a): CDF of minimum RTT per router (ms)\n\n");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"percentile", "ping (ms)", "traceroute (ms)"});
  for (const double p : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0}) {
    rows.push_back({"p" + util::fmt_double(p, 0), util::fmt_double(bench::percentile(ping_min, p), 1),
                    util::fmt_double(bench::percentile(trace_min, p), 1)});
  }
  bench::print_table(rows);

  const double med_ping = bench::percentile(ping_min, 50);
  const double med_trace = bench::percentile(trace_min, 50);
  const double r_ping = geo::max_distance_km(med_ping);
  const double r_trace = geo::max_distance_km(med_trace);
  std::printf(
      "\nmedian ping %.1f ms vs traceroute %.1f ms: %.2fx RTT, %.0fx feasible area (pi r^2)\n",
      med_ping, med_trace, med_trace / med_ping,
      (r_trace * r_trace) / (r_ping * r_ping));
  std::printf("paper: 16 ms vs 68 ms: 4.25x RTT, 180x area\n");

  std::printf("\nFigure 5(b): vantage points with a sample, per router\n\n");
  std::printf("routers observed by exactly one VP in traceroute: %s (paper: 35.8%%)\n",
              util::fmt_pct(static_cast<double>(trace_one_vp),
                            static_cast<double>(trace_routers))
                  .c_str());
  std::printf("mean fraction of VPs with ping samples (responsive routers): %s (paper: 89.4%%)\n",
              util::fmt_pct(vp_sample_fraction_sum, static_cast<double>(responsive)).c_str());
  return 0;
}
