// Reproduces paper Figure 9: per-network comparison of Hoiho against HLOC,
// DRoP and undns on the 13 ground-truth validation networks.
//
// A method scores a true positive when it geolocates a hostname within
// 40 km of the router's true location; a false positive when it answers but
// is wrong; the remainder are false negatives.
//
// Paper: Hoiho correctly geolocates 94.0% of hostnames with a geohint on
// average, vs HLOC 73.1%, DRoP 56.6%; method PPVs 95.6% (Hoiho), 85.1%
// (HLOC), 87.2% (DRoP), 98.3% (undns, with many FNs).
#include <cstdio>
#include <map>

#include "baselines/drop.h"
#include "baselines/hloc.h"
#include "baselines/undns.h"
#include "common.h"
#include "core/geolocate.h"
#include "util/strings.h"

using namespace hoiho;

int main() {
  const sim::ValidationScenario sc = sim::make_validation();
  const geo::GeoDictionary& dict = *sc.world.dict;

  // --- train / prepare each method -------------------------------------------
  const core::HoihoResult hoiho_result = bench::run_hoiho(sc.world, sc.pings);
  core::Geolocator hoiho_geo(dict);
  for (const core::SuffixResult& sr : hoiho_result.suffixes)
    if (sr.usable()) hoiho_geo.add(sr.nc);

  baselines::DropConfig drop_config;
  drop_config.rule_retention = 0.8;  // the published ruleset predates the snapshot
  drop_config.retention_seed = 29;
  baselines::Drop drop(dict, drop_config);
  drop.train(sc.world.topology, sc.traces);  // DRoP only had traceroute RTTs

  const baselines::Hloc hloc(dict);
  const baselines::Undns undns = baselines::Undns::from_world(sc.world);

  // --- score ------------------------------------------------------------------
  const std::vector<std::string> methods = {"hoiho", "hloc", "drop", "undns"};
  std::map<std::string, std::map<std::string, bench::MethodScore>> scores;  // suffix -> method

  for (const sim::HostnameTruth& truth : sc.world.truths) {
    if (!truth.has_geohint) continue;
    std::string canonical;
    const auto host = dns::parse_hostname(truth.hostname, canonical);
    if (!host) continue;
    const std::string suffix(host->suffix());
    const geo::LocationId router_truth = sc.world.topology.router(truth.router).true_location;

    // Hoiho.
    geo::LocationId answer = geo::kInvalidLocation;
    if (const auto loc = hoiho_geo.locate(truth.hostname)) answer = loc->location;
    bench::score_answer(scores[suffix]["hoiho"], dict, answer, router_truth);

    // HLOC (run-time; cannot probe nysernet).
    answer = geo::kInvalidLocation;
    const bool reachable = !sc.hloc_unreachable.contains(suffix);
    if (const auto loc = hloc.locate(*host, truth.router, sc.pings, reachable))
      answer = *loc;
    bench::score_answer(scores[suffix]["hloc"], dict, answer, router_truth);

    // DRoP.
    answer = geo::kInvalidLocation;
    if (const auto loc = drop.locate(*host)) answer = *loc;
    bench::score_answer(scores[suffix]["drop"], dict, answer, router_truth);

    // undns.
    answer = geo::kInvalidLocation;
    if (const auto loc = undns.locate(*host)) answer = *loc;
    bench::score_answer(scores[suffix]["undns"], dict, answer, router_truth);
  }

  std::printf("Figure 9: router geolocation from hostnames, per validation network\n");
  std::printf("(TP%% / FP%% of hostnames with geohints; rest are FN)\n\n");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"suffix", "#hosts", "hoiho", "hloc", "drop", "undns"});
  std::map<std::string, double> tp_sum, fptotal, tpn, fpn;
  for (const std::string& suffix : sc.suffixes) {
    std::vector<std::string> row = {suffix,
                                    std::to_string(scores[suffix]["hoiho"].with_geohint)};
    for (const std::string& m : methods) {
      const bench::MethodScore& s = scores[suffix][m];
      row.push_back(util::fmt_double(s.tp_pct(), 1) + "/" + util::fmt_double(s.fp_pct(), 1));
      tp_sum[m] += s.tp_pct();
      tpn[m] += static_cast<double>(s.tp);
      fpn[m] += static_cast<double>(s.fp);
    }
    rows.push_back(row);
  }
  std::vector<std::string> avg = {"average TP%", ""};
  std::vector<std::string> ppv = {"PPV", ""};
  for (const std::string& m : methods) {
    avg.push_back(util::fmt_double(tp_sum[m] / static_cast<double>(sc.suffixes.size()), 1));
    ppv.push_back(util::fmt_pct(tpn[m], tpn[m] + fpn[m]));
  }
  rows.push_back(avg);
  rows.push_back(ppv);
  bench::print_table(rows);

  std::printf("\nPaper: average TP%% hoiho 94.0, hloc 73.1, drop 56.6;\n");
  std::printf("PPV hoiho 95.6%%, hloc 85.1%%, drop 87.2%%, undns 98.3%%.\n");
  return 0;
}
