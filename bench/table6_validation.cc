// Reproduces paper Table 6: validation of learned geohints per suffix.
//
// The simulator's ground truth plays the role of the operators' replies: a
// learned geohint is verified when it places the code within 40 km of the
// city the operator actually meant. Paper: 92/117 (78.6%) verified overall;
// tfbnw (small-town data centers, irregular codes) only 2/14.
#include <cstdio>
#include <map>

#include "common.h"
#include "util/strings.h"

using namespace hoiho;

int main() {
  const sim::ValidationScenario sc = sim::make_validation();
  const geo::GeoDictionary& dict = *sc.world.dict;
  const core::HoihoResult result = bench::run_hoiho(sc.world, sc.pings);

  // Operator ground truth: suffix -> code -> intended location.
  std::map<std::string, std::map<std::string, geo::LocationId>> truth;
  for (const sim::OperatorSpec& op : sc.world.operators)
    for (const auto& [loc, code] : op.scheme.custom_codes) truth[op.suffix][code] = loc;

  std::printf("Table 6: learned geohints verified against operator ground truth\n\n");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"suffix", "learned", "verified", "fraction"});
  std::size_t total_learned = 0, total_verified = 0;
  for (const core::SuffixResult& sr : result.suffixes) {
    if (sr.nc.learned.empty()) continue;
    std::size_t learned = 0, verified = 0;
    for (const auto& [key, loc] : sr.nc.learned) {
      ++learned;
      const auto op_truth = truth.find(sr.suffix);
      if (op_truth == truth.end()) continue;
      const auto code_truth = op_truth->second.find(key.second);
      if (code_truth == op_truth->second.end()) continue;
      if (bench::within_correct_distance(dict, loc, code_truth->second)) ++verified;
    }
    total_learned += learned;
    total_verified += verified;
    rows.push_back({sr.suffix, std::to_string(learned), std::to_string(verified),
                    util::fmt_pct(static_cast<double>(verified), static_cast<double>(learned))});
  }
  rows.push_back({"overall", std::to_string(total_learned), std::to_string(total_verified),
                  util::fmt_pct(static_cast<double>(total_verified),
                                static_cast<double>(total_learned))});
  bench::print_table(rows);

  std::printf("\nPaper: 92/117 (78.6%%) overall; tfbnw only 2/14 (small-town DCs).\n");
  return 0;
}
