// google-benchmark microbenchmarks for the learning pipeline stages on a
// fixed single-suffix workload: stage 2 tagging, phase-1 generation, NC
// evaluation, and the full per-suffix run.
#include <benchmark/benchmark.h>

#include "core/hoiho.h"
#include "sim/probing.h"

namespace {

using namespace hoiho;

struct Workload {
  sim::World world;
  measure::Measurements meas;
  topo::SuffixGroup group;
  std::vector<core::TaggedHostname> tagged;

  Workload() {
    const geo::GeoDictionary& dict = geo::builtin_dictionary();
    world.dict = &dict;
    world.vps = sim::make_vps(dict, 100);
    sim::OperatorSpec op;
    op.suffix = "bench.net";
    op.scheme.hint_role = core::Role::kIata;
    op.scheme.labels = {{sim::Part::iface(), sim::Part::dash(), sim::Part::num()},
                        {sim::Part::role(), sim::Part::num()},
                        {sim::Part::geo(), sim::Part::num()}};
    for (geo::LocationId id = 0; id < dict.size(); ++id)
      if (!dict.codes(id).iata.empty()) op.footprint.push_back(id);
    op.router_count = 120;
    util::Rng rng(42);
    sim::add_operator(world, op, 1.0, 0.0, rng);
    meas = sim::probe_pings(world, {});
    group = world.topology.group_by_suffix()[0];
    const core::ApparentTagger tagger(dict, meas, {});
    tagged = tagger.tag_all(group.hostnames);
  }
};

const Workload& workload() {
  static const Workload w;
  return w;
}

void BM_Stage2Tagging(benchmark::State& state) {
  const Workload& w = workload();
  const core::ApparentTagger tagger(*w.world.dict, w.meas, {});
  for (auto _ : state) {
    auto tagged = tagger.tag_all(w.group.hostnames);
    benchmark::DoNotOptimize(tagged);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.group.hostnames.size()));
}
BENCHMARK(BM_Stage2Tagging);

void BM_Phase1Generation(benchmark::State& state) {
  const Workload& w = workload();
  const core::RegexGenerator gen;
  for (auto _ : state) {
    auto regexes = gen.generate_base(std::span(w.tagged.data(), 48));
    benchmark::DoNotOptimize(regexes);
  }
}
BENCHMARK(BM_Phase1Generation);

void BM_NcEvaluation(benchmark::State& state) {
  const Workload& w = workload();
  const core::Evaluator evaluator(*w.world.dict, w.meas);
  const core::RegexGenerator gen;
  auto regexes = gen.generate_base(std::span(w.tagged.data(), 8));
  core::NamingConvention nc;
  nc.suffix = "bench.net";
  nc.regexes.push_back(regexes.front());
  for (auto _ : state) {
    auto eval = evaluator.evaluate(nc, w.tagged);
    benchmark::DoNotOptimize(eval);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(w.tagged.size()));
}
BENCHMARK(BM_NcEvaluation);

void BM_FullSuffixRun(benchmark::State& state) {
  const Workload& w = workload();
  const core::Hoiho hoiho(*w.world.dict);
  for (auto _ : state) {
    auto result = hoiho.run_suffix(w.group, w.meas);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FullSuffixRun);

void BM_FullSuffixRunUncached(benchmark::State& state) {
  const Workload& w = workload();
  core::HoihoConfig config;
  config.consistency_cache = false;
  const core::Hoiho hoiho(*w.world.dict, config);
  for (auto _ : state) {
    auto result = hoiho.run_suffix(w.group, w.meas);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FullSuffixRunUncached);

}  // namespace

BENCHMARK_MAIN();
