// Reproduces paper Table 2: coverage of usable naming conventions on each
// ITDK — routers with hostnames, with apparent geohints, and geolocated by
// usable (good/promising) NCs.
//
// Paper: ~8.8%/8.5% of IPv4 and ~5.3%/5.8% of IPv6 routers have apparent
// geohints; usable NCs extract 83.4-89.6% of them (7.6%/7.1%/4.7%/5.2% of
// all routers geolocated).
#include <cstdio>
#include <set>

#include "common.h"
#include "util/strings.h"

using namespace hoiho;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  std::printf("Table 2: Coverage of usable NCs (synthetic, scale=%.2f)\n\n", scale);

  std::vector<std::string> total = {"total"}, hostnames = {"with hostname"},
                           apparent = {"with apparent geohint"}, located = {"geolocated"},
                           extracted = {"(%% of apparent extracted)"};
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Routers", "IPv4 Aug '20", "IPv4 Mar '21", "IPv6 Nov '20", "IPv6 Mar '21"});

  for (const sim::ItdkKind kind : {sim::ItdkKind::kIpv4Aug20, sim::ItdkKind::kIpv4Mar21,
                                   sim::ItdkKind::kIpv6Nov20, sim::ItdkKind::kIpv6Mar21}) {
    const sim::ItdkScenario sc = sim::make_itdk(kind, scale);
    const core::HoihoResult result = bench::run_hoiho(sc.world, sc.pings);

    const std::size_t n = sc.world.topology.size();
    const std::size_t with_host = sc.world.topology.count_with_hostname();

    // Routers with >= 1 hostname carrying an apparent geohint; routers
    // geolocated (TP under a usable NC).
    std::set<topo::RouterId> tagged_routers, located_routers;
    std::size_t apparent_hostnames = 0, extracted_hostnames = 0;
    for (const core::SuffixResult& sr : result.suffixes) {
      for (std::size_t i = 0; i < sr.tagged.size(); ++i) {
        if (!sr.tagged[i].has_hint()) continue;
        ++apparent_hostnames;
        tagged_routers.insert(sr.tagged[i].ref.router);
        if (sr.usable() && i < sr.eval.per_hostname.size() &&
            sr.eval.per_hostname[i].outcome == core::Outcome::kTP) {
          ++extracted_hostnames;
          located_routers.insert(sr.tagged[i].ref.router);
        }
      }
    }

    total.push_back(util::fmt_count(n));
    hostnames.push_back(util::fmt_count(with_host) + " (" +
                        util::fmt_pct(static_cast<double>(with_host), static_cast<double>(n)) + ")");
    apparent.push_back(util::fmt_count(tagged_routers.size()) + " (" +
                       util::fmt_pct(static_cast<double>(tagged_routers.size()),
                                     static_cast<double>(n)) +
                       ")");
    located.push_back(util::fmt_count(located_routers.size()) + " (" +
                      util::fmt_pct(static_cast<double>(located_routers.size()),
                                    static_cast<double>(n)) +
                      ")");
    extracted.push_back(util::fmt_pct(static_cast<double>(extracted_hostnames),
                                      static_cast<double>(apparent_hostnames)));
  }
  rows.push_back(total);
  rows.push_back(hostnames);
  rows.push_back(apparent);
  rows.push_back(located);
  rows.push_back(extracted);
  bench::print_table(rows);

  std::printf("\nPaper: usable NCs extracted 83.4-89.6%% of apparent geohints.\n");
  return 0;
}
