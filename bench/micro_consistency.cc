// google-benchmark microbenchmarks for the RTT-consistency hot path: the
// raw O(#VPs) scan vs the memoized ConsistencyCache, and the closest-VP
// prefilter's effect on cold (first-touch) queries.
#include <benchmark/benchmark.h>

#include "measure/consistency_cache.h"
#include "sim/probing.h"

namespace {

using namespace hoiho;

constexpr std::size_t kRouters = 64;  // routers queried per pass

struct Workload {
  sim::World world;
  measure::Measurements meas;
  std::vector<geo::Coordinate> coords;  // per LocationId, the pipeline's input

  Workload() {
    const geo::GeoDictionary& dict = geo::builtin_dictionary();
    world.dict = &dict;
    world.vps = sim::make_vps(dict, 100);
    sim::OperatorSpec op;
    op.suffix = "bench.net";
    op.scheme.hint_role = core::Role::kIata;
    op.scheme.labels = {{sim::Part::geo(), sim::Part::num()}};
    for (geo::LocationId id = 0; id < dict.size(); ++id)
      if (!dict.codes(id).iata.empty()) op.footprint.push_back(id);
    op.router_count = kRouters;
    util::Rng rng(7);
    sim::add_operator(world, op, 1.0, 0.0, rng);
    meas = sim::probe_pings(world, {});
    coords.reserve(dict.size());
    for (geo::LocationId id = 0; id < dict.size(); ++id)
      coords.push_back(dict.location(id).coord);
  }

  // One pass over every (router, location) pair — the shape of a stage-2
  // tagging sweep. Returns a checksum so the work cannot be elided.
  template <typename Consistent>
  std::size_t pass(Consistent&& consistent) const {
    std::size_t ok = 0;
    for (topo::RouterId r = 0; r < kRouters; ++r)
      for (geo::LocationId id = 0; id < coords.size(); ++id)
        if (consistent(r, id)) ++ok;
    return ok;
  }

  std::int64_t pass_queries() const {
    return static_cast<std::int64_t>(kRouters) * static_cast<std::int64_t>(coords.size());
  }
};

const Workload& workload() {
  static const Workload w;
  return w;
}

// The uncached baseline: every query scans all VPs.
void BM_ConsistencyUncached(benchmark::State& state) {
  const Workload& w = workload();
  for (auto _ : state) {
    const std::size_t ok = w.pass([&](topo::RouterId r, geo::LocationId id) {
      return measure::rtt_consistent(w.meas.pings, w.meas.vps, r, w.coords[id], 0.0);
    });
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(state.iterations() * w.pass_queries());
}
BENCHMARK(BM_ConsistencyUncached);

// Cold cache: every query is a miss; measures memoization overhead plus the
// prefilter's ability to settle misses with one haversine.
void BM_ConsistencyCacheCold(benchmark::State& state) {
  const Workload& w = workload();
  const bool prefilter = state.range(0) != 0;
  for (auto _ : state) {
    measure::ConsistencyCache cache(w.meas, w.coords.size(), 0.0, prefilter);
    const std::size_t ok = w.pass([&](topo::RouterId r, geo::LocationId id) {
      return cache.consistent(r, id, w.coords[id]);
    });
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(state.iterations() * w.pass_queries());
  state.SetLabel(prefilter ? "prefilter" : "no_prefilter");
}
BENCHMARK(BM_ConsistencyCacheCold)->Arg(0)->Arg(1);

// Warm cache: the steady state of stage-3 evaluation, where the same
// (router, location) pairs are re-tested for every candidate NC.
void BM_ConsistencyCacheWarm(benchmark::State& state) {
  const Workload& w = workload();
  measure::ConsistencyCache cache(w.meas, w.coords.size(), 0.0);
  w.pass([&](topo::RouterId r, geo::LocationId id) {  // warm every cell
    return cache.consistent(r, id, w.coords[id]);
  });
  for (auto _ : state) {
    const std::size_t ok = w.pass([&](topo::RouterId r, geo::LocationId id) {
      return cache.consistent(r, id, w.coords[id]);
    });
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(state.iterations() * w.pass_queries());
}
BENCHMARK(BM_ConsistencyCacheWarm);

}  // namespace

BENCHMARK_MAIN();
