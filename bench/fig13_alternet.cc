// Reproduces paper Figure 13 (appendix A): inferring a naming convention
// for alter.net hostnames across the four generation phases — base regexes,
// merging, character-class embedding, and regex-set building — showing the
// per-phase regexes with their TP/FP/FN/UNK/ATP/PPV metrics.
#include <algorithm>
#include <cstdio>
#include <deque>

#include "common.h"
#include "core/apparent.h"
#include "core/regex_gen.h"
#include "core/regex_sets.h"
#include "util/strings.h"

using namespace hoiho;

namespace {

struct Fixture {
  measure::Measurements meas{{}, 32};
  util::Arena arena;  // backs hostnames (dns::Hostname is a view)
  std::deque<dns::Hostname> hostnames;
  std::vector<core::TaggedHostname> tagged;
  topo::RouterId next = 0;

  Fixture() {
    meas.vps = {
        measure::VantagePoint{"sjc", "us", {37.34, -121.89}},
        measure::VantagePoint{"jfk", "us", {40.71, -74.01}},
        measure::VantagePoint{"nrt", "jp", {35.68, 139.69}},
        measure::VantagePoint{"dca", "us", {38.91, -77.04}},
        measure::VantagePoint{"sea", "us", {47.61, -122.33}},
        measure::VantagePoint{"ams", "nl", {52.37, 4.90}},
        measure::VantagePoint{"mnz", "us", {38.75, -77.57}},
        measure::VantagePoint{"fdh", "de", {47.67, 9.51}},
    };
    meas.pings = measure::RttMatrix(32, meas.vps.size());
  }

  void add(std::string_view raw, measure::VpId vp, double rtt) {
    const topo::RouterId r = next++;
    for (measure::VpId v = 0; v < meas.vps.size(); ++v)
      meas.pings.record(r, v, v == vp ? rtt : 250.0);
    hostnames.push_back(*dns::parse_hostname(raw, arena));
    const core::ApparentTagger tagger(geo::builtin_dictionary(), meas, {});
    tagged.push_back(tagger.tag(topo::HostnameRef{r, &hostnames.back()}));
  }
};

void print_regexes(const char* phase, const core::Evaluator& ev,
                   std::span<const core::GeoRegex> regexes,
                   std::span<const core::TaggedHostname> tagged, std::size_t limit) {
  std::printf("\n%s\n", phase);
  struct Row {
    std::string regex, plan;
    core::EvalCounts counts;
  };
  std::vector<Row> out;
  for (const core::GeoRegex& gr : regexes) {
    core::NamingConvention nc;
    nc.suffix = "alter.net";
    nc.regexes.push_back(gr);
    const core::NcEvaluation e = ev.evaluate(nc, tagged);
    if (e.counts.tp == 0) continue;
    out.push_back(Row{gr.regex.to_string(), gr.plan.to_string(), e.counts});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Row& a, const Row& b) { return a.counts.atp() > b.counts.atp(); });
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"regex", "plan", "TP", "FP", "FN", "UNK", "ATP", "PPV"});
  for (std::size_t i = 0; i < out.size() && i < limit; ++i) {
    rows.push_back({out[i].regex, out[i].plan, std::to_string(out[i].counts.tp),
                    std::to_string(out[i].counts.fp), std::to_string(out[i].counts.fn),
                    std::to_string(out[i].counts.unk), std::to_string(out[i].counts.atp()),
                    util::fmt_pct(100.0 * out[i].counts.ppv(), 100.0, 0)});
  }
  bench::print_table(rows);
}

}  // namespace

int main() {
  Fixture fx;
  // Figure 13's hostname mix: IATA codes (a-f), 8-letter CLLI codes (g, h),
  // and German city names with a country code, with and without digits
  // (i-l).
  fx.add("0.xe-10-0-0.gw1.sfo16.alter.net", 0, 4.0);
  fx.add("0.ge-6-1-0.gw8.jfk1.alter.net", 1, 1.0);
  fx.add("0.so-0-1-3.xt1.nrt2.alter.net", 2, 3.0);
  fx.add("0.ae1.br2.iad8.alter.net", 3, 5.0);
  fx.add("0.ae1.gw3.sea7.alter.net", 4, 4.0);
  fx.add("0.ae1.br2.ams3.alter.net", 5, 2.0);
  fx.add("0.af0.asbnva83-mse01-a-ie1.alter.net", 3, 8.0);
  fx.add("0.csi1.nwrknjnb-mse01-b-ie1.alter.net", 6, 10.0);
  fx.add("dialup-ras-00008.munich.de.alter.net", 7, 16.0);
  fx.add("dialup-ras-00011.hamburg3.de.alter.net", 5, 9.0);
  fx.add("dialup-ras-00014.bremen7.de.alter.net", 5, 9.5);
  fx.add("static-dis-00019.stuttgart.de.alter.net", 5, 12.0);
  fx.add("0.ckh.dresden.de.alter.net", 5, 17.0);
  fx.add("0.disy-2.frankfurt.de.alter.net", 5, 11.0);

  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const core::Evaluator evaluator(dict, fx.meas);
  const core::RegexGenerator gen;

  std::printf("Figure 13: inferring a NC for alter.net across four phases\n");

  // Phase 1: base regexes.
  std::vector<core::GeoRegex> base = gen.generate_base(fx.tagged);
  print_regexes("Phase 1: Generate Base Regexes (top 6 of the candidates)", evaluator, base,
                fx.tagged, 6);

  // Phase 2: merge.
  const std::vector<core::GeoRegex> merged = gen.merge(base);
  print_regexes("Phase 2: Merge Regexes", evaluator, merged, fx.tagged, 4);

  // Phase 3: embed character classes.
  std::vector<core::GeoRegex> embedded;
  std::vector<core::GeoRegex> all = base;
  all.insert(all.end(), merged.begin(), merged.end());
  for (const core::GeoRegex& gr : all) {
    if (auto refined = gen.embed_classes(gr, fx.tagged)) embedded.push_back(std::move(*refined));
  }
  print_regexes("Phase 3: Embed Character Classes", evaluator, embedded, fx.tagged, 4);

  // Phase 4: build regex sets.
  all.insert(all.end(), embedded.begin(), embedded.end());
  core::dedup_regexes(all);
  const core::NcBuilder builder(evaluator);
  const auto candidates = builder.build("alter.net", all, fx.tagged);
  std::printf("\nPhase 4: Build Regex Sets — selected NC:\n");
  if (!candidates.empty()) {
    const auto& best = candidates.front();
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"regex", "plan"});
    for (const core::GeoRegex& gr : best.nc.regexes)
      rows.push_back({gr.regex.to_string(), gr.plan.to_string()});
    bench::print_table(rows);
    std::printf("\nNC metrics: TP=%zu FP=%zu FN=%zu UNK=%zu ATP=%ld PPV=%s (paper NC #7: ATP 8, PPV 83%%)\n",
                best.eval.counts.tp, best.eval.counts.fp, best.eval.counts.fn,
                best.eval.counts.unk, best.eval.counts.atp(),
                util::fmt_pct(100.0 * best.eval.counts.ppv(), 100.0, 0).c_str());
  }
  return 0;
}
