// Reproduces paper Figure 11: learned-geohint correctness vs the RTT from
// the closest vantage point.
//
// Paper: learned hints whose routers are close to a VP are more likely to
// be correct — <=7 ms: 90% correct; <=11 ms: 84%; <=16 ms: 80%. More VPs
// would mean better learned hints.
#include <algorithm>
#include <cstdio>
#include <map>

#include "common.h"
#include "util/strings.h"

using namespace hoiho;

int main() {
  // A thinner VP field than fig. 9's: correctness of learned hints as a
  // function of VP proximity only varies when some learned hints are far
  // from every VP.
  const sim::ValidationScenario sc = sim::make_validation(7, 40);
  const geo::GeoDictionary& dict = *sc.world.dict;
  const core::HoihoResult result = bench::run_hoiho(sc.world, sc.pings);

  std::map<std::string, std::map<std::string, geo::LocationId>> truth;
  for (const sim::OperatorSpec& op : sc.world.operators)
    for (const auto& [loc, code] : op.scheme.custom_codes) truth[op.suffix][code] = loc;

  struct LearnedPoint {
    double closest_rtt = 1e18;
    bool correct = false;
  };
  std::vector<LearnedPoint> points;
  for (const core::SuffixResult& sr : result.suffixes) {
    for (const auto& [key, loc] : sr.nc.learned) {
      LearnedPoint pt;
      for (std::size_t i = 0; i < sr.eval.per_hostname.size(); ++i) {
        if (sr.eval.per_hostname[i].code != key.second) continue;
        const auto closest = sc.pings.pings.closest_vp(sr.tagged[i].ref.router);
        if (closest) pt.closest_rtt = std::min(pt.closest_rtt, closest->second);
      }
      if (pt.closest_rtt > 1e17) continue;
      const auto op_truth = truth.find(sr.suffix);
      if (op_truth != truth.end()) {
        const auto code_truth = op_truth->second.find(key.second);
        if (code_truth != op_truth->second.end())
          pt.correct = bench::within_correct_distance(dict, loc, code_truth->second);
      }
      points.push_back(pt);
    }
  }

  std::printf("Figure 11: learned geohint correctness vs closest-VP RTT (n=%zu)\n\n",
              points.size());
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"closest VP RTT", "learned hints", "correct", "fraction"});
  for (const double cut : {7.0, 11.0, 16.0, 1e9}) {
    std::size_t n = 0, correct = 0;
    for (const LearnedPoint& pt : points) {
      if (pt.closest_rtt > cut) continue;
      ++n;
      if (pt.correct) ++correct;
    }
    const std::string label = cut > 1e8 ? "all" : "<= " + util::fmt_double(cut, 0) + " ms";
    rows.push_back({label, std::to_string(n), std::to_string(correct),
                    util::fmt_pct(static_cast<double>(correct), static_cast<double>(n))});
  }
  bench::print_table(rows);

  std::printf("\nPaper: <=7 ms 90%%, <=11 ms 84%%, <=16 ms 80%% correct.\n");
  return 0;
}
