// The paper's stage-4 ablation (§6.1): with learned geohints Hoiho
// correctly geolocates 94.0% of hostnames with a geohint (PPV 95.6%);
// without learning, 82.4% (PPV 94.5%).
#include <cstdio>

#include "common.h"
#include "core/geolocate.h"
#include "util/strings.h"

using namespace hoiho;

namespace {

bench::MethodScore score_run(const sim::ValidationScenario& sc, bool enable_learning) {
  core::HoihoConfig config;
  config.enable_learning = enable_learning;
  const core::HoihoResult result = bench::run_hoiho(sc.world, sc.pings, config);
  core::Geolocator geolocator(*sc.world.dict);
  for (const core::SuffixResult& sr : result.suffixes)
    if (sr.usable()) geolocator.add(sr.nc);

  bench::MethodScore score;
  for (const sim::HostnameTruth& truth : sc.world.truths) {
    if (!truth.has_geohint) continue;
    geo::LocationId answer = geo::kInvalidLocation;
    if (const auto loc = geolocator.locate(truth.hostname)) answer = loc->location;
    bench::score_answer(score, *sc.world.dict, answer,
                        sc.world.topology.router(truth.router).true_location);
  }
  return score;
}

}  // namespace

int main() {
  const sim::ValidationScenario sc = sim::make_validation();

  std::printf("Ablation: stage-4 geohint learning on/off (validation scenario)\n\n");
  const bench::MethodScore with = score_run(sc, true);
  const bench::MethodScore without = score_run(sc, false);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"configuration", "hostnames", "correct", "TP%", "PPV"});
  rows.push_back({"with learned geohints", std::to_string(with.with_geohint),
                  std::to_string(with.tp), util::fmt_double(with.tp_pct(), 1),
                  util::fmt_double(with.ppv(), 1)});
  rows.push_back({"without learned geohints", std::to_string(without.with_geohint),
                  std::to_string(without.tp), util::fmt_double(without.tp_pct(), 1),
                  util::fmt_double(without.ppv(), 1)});
  bench::print_table(rows);

  std::printf("\nPaper: 94.0%% / PPV 95.6%% with learning vs 82.4%% / PPV 94.5%% without.\n");
  return 0;
}
