// Reproduces paper Table 4: good/promising NCs by geohint type and whether
// the convention also embeds a state and/or country code.
//
// Paper (Aug '20 IPv4, good NCs): IATA 51.7%, city names 38.9%, CLLI 12.1%,
// LOCODE 1.3%, facility 0.3%; IATA conventions embed a country code far
// more often (23.6% incl. state) than city/CLLI conventions do.
#include <cstdio>
#include <map>

#include "common.h"
#include "util/strings.h"

using namespace hoiho;

namespace {

struct TypeCounts {
  std::size_t none = 0, state = 0, country = 0, both = 0;
  std::size_t total() const { return none + state + country + both; }
};

}  // namespace

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  std::printf("Table 4: NC geohint types and annotations (IPv4 Aug '20 style, scale=%.2f)\n\n",
              scale);

  const sim::ItdkScenario sc = sim::make_itdk(sim::ItdkKind::kIpv4Aug20, scale);
  const core::HoihoResult result = bench::run_hoiho(sc.world, sc.pings);

  std::map<core::Role, TypeCounts> good, promising;
  std::size_t n_good = 0, n_promising = 0;
  for (const core::SuffixResult& sr : result.suffixes) {
    if (!sr.usable()) continue;
    auto& table = sr.cls == core::NcClass::kGood ? good : promising;
    (sr.cls == core::NcClass::kGood ? n_good : n_promising)++;
    // Classify by the primary role of the NC's top regex; annotations by
    // what any regex in the NC extracts.
    const core::Role primary = sr.nc.regexes.front().plan.primary();
    const bool has_cc = sr.nc.regexes.front().plan.extracts(core::Role::kCountryCode);
    const bool has_st = sr.nc.regexes.front().plan.extracts(core::Role::kStateCode);
    TypeCounts& counts = table[primary];
    if (has_cc && has_st) ++counts.both;
    else if (has_cc) ++counts.country;
    else if (has_st) ++counts.state;
    else ++counts.none;
  }

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Geohint", "Annotation", "Good", "", "Promising", ""});
  const auto pct = [](std::size_t v, std::size_t total) {
    return total == 0 ? std::string("-")
                      : "(" + util::fmt_pct(static_cast<double>(v), static_cast<double>(total)) + ")";
  };
  for (const auto role : {core::Role::kIata, core::Role::kCityName, core::Role::kClli,
                          core::Role::kLocode, core::Role::kFacility}) {
    const TypeCounts g = good.count(role) ? good[role] : TypeCounts{};
    const TypeCounts p = promising.count(role) ? promising[role] : TypeCounts{};
    const std::string name(to_string(role));
    rows.push_back({name, "- none", std::to_string(g.none), pct(g.none, n_good),
                    std::to_string(p.none), pct(p.none, n_promising)});
    rows.push_back({"", "- state", std::to_string(g.state), pct(g.state, n_good),
                    std::to_string(p.state), pct(p.state, n_promising)});
    rows.push_back({"", "- country", std::to_string(g.country), pct(g.country, n_good),
                    std::to_string(p.country), pct(p.country, n_promising)});
    rows.push_back({"", "- both", std::to_string(g.both), pct(g.both, n_good),
                    std::to_string(p.both), pct(p.both, n_promising)});
    rows.push_back({"", "- total", std::to_string(g.total()), pct(g.total(), n_good),
                    std::to_string(p.total()), pct(p.total(), n_promising)});
  }
  rows.push_back({"Overall", "", std::to_string(n_good), "", std::to_string(n_promising), ""});
  bench::print_table(rows);

  std::printf(
      "\nPaper (good NCs): IATA 51.7%%, city 38.9%%, CLLI 12.1%%, LOCODE 1.3%%, facility 0.3%%.\n");
  return 0;
}
