#include "common.h"

#include <algorithm>
#include <cstdio>

namespace hoiho::bench {

void print_table(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return;
  std::vector<std::size_t> widths;
  for (const auto& row : rows) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::string line;
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      std::string cell = rows[r][c];
      cell.resize(widths[c], ' ');
      line += cell;
      if (c + 1 < rows[r].size()) line += "  ";
    }
    std::printf("%s\n", line.c_str());
    if (r == 0) {
      std::string rule;
      for (std::size_t c = 0; c < widths.size(); ++c) {
        rule += std::string(widths[c], '-');
        if (c + 1 < widths.size()) rule += "--";
      }
      std::printf("%s\n", rule.c_str());
    }
  }
}

bool within_correct_distance(const geo::GeoDictionary& dict, geo::LocationId inferred,
                             geo::LocationId truth) {
  if (inferred == geo::kInvalidLocation || truth == geo::kInvalidLocation) return false;
  return geo::distance_km(dict.location(inferred).coord, dict.location(truth).coord) <=
         kCorrectKm;
}

core::HoihoResult run_hoiho(const sim::World& world, const measure::Measurements& pings,
                            const core::HoihoConfig& config) {
  const core::Hoiho hoiho(*world.dict, config);
  return hoiho.run(world.topology, pings);
}

void score_answer(MethodScore& score, const geo::GeoDictionary& dict, geo::LocationId inferred,
                  geo::LocationId router_truth) {
  ++score.with_geohint;
  if (inferred == geo::kInvalidLocation) return;  // false negative
  if (within_correct_distance(dict, inferred, router_truth)) {
    ++score.tp;
  } else {
    ++score.fp;
  }
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const double idx = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1 - frac) + values[hi] * frac;
}

}  // namespace hoiho::bench
