// Fusion evaluation (DESIGN.md §13): does NC extraction x RTT feasibility x
// population prior beat extraction alone, and does the feed auditor catch
// injected-wrong rows?
//
// The world is deliberately adversarial for hostname-only geolocation:
//   * ambiguous_operator_rate deploys city-name operators at "loser"
//     namesakes (the melbourne-FL / melbourne-AU problem) so extraction
//     systematically resolves their routers to the famous sibling;
//   * anycast_rate garbles a sliver of the RTT campaign, so fusion must
//     tolerate measurements that describe the wrong city.
//
// Methods compared over the hostname-answerable truth rows (the paper's
// 40 km correctness rule): hostname-only (core::Geolocator), fused
// (fuse::Fuser), and the delay/rules baselines (shortest-ping, CBG, undns).
// Then a claimed-location feed with a known fraction of injected-wrong rows
// runs through fuse::Auditor.
//
// Emits BENCH_FUSION.json (registry snapshot embedded under "registry" —
// CI's schema guard keys on the fuse_* / audit_* counters). Exit code 0 iff
//   * fused top-1 accuracy strictly beats hostname-only, and
//   * the auditor refutes >= 90% of the injected-wrong rows, and
//   * the audit accounting is exact (rows == agree + refute + unknown,
//     and the registry counters match the summary).
//
// Run: ./build/bench/fusion_eval [--json PATH] [--operators N]
//      [--ambiguous-rate X] [--anycast-rate X] [--feed-rows N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "baselines/cbg.h"
#include "baselines/shortest_ping.h"
#include "baselines/undns.h"
#include "common.h"
#include "dns/hostname.h"
#include "fuse/audit.h"
#include "geo/coord.h"
#include "sim/probing.h"
#include "util/rng.h"
#include "util/strings.h"

using namespace hoiho;

namespace {

struct Tally {
  std::size_t answered = 0;
  std::size_t correct = 0;

  double accuracy(std::size_t denom) const {
    return denom == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(denom);
  }
};

void score(Tally& t, bool answered, bool correct) {
  if (answered) ++t.answered;
  if (correct) ++t.correct;
}

std::string tally_json(const Tally& t, std::size_t denom) {
  return "{\"answered\": " + std::to_string(t.answered) +
         ", \"correct\": " + std::to_string(t.correct) +
         ", \"accuracy\": " + util::fmt_double(t.accuracy(denom), 4) + "}";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_FUSION.json";
  std::size_t operators = 72;
  double ambiguous_rate = 0.55;
  double anycast_rate = 0.02;
  std::size_t feed_rows = 2000;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--json") {
      const char* v = value();
      if (v == nullptr) return 1;
      json_path = v;
    } else if (arg == "--operators") {
      const char* v = value();
      if (v == nullptr) return 1;
      operators = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--ambiguous-rate") {
      const char* v = value();
      if (v == nullptr) return 1;
      ambiguous_rate = std::atof(v);
    } else if (arg == "--anycast-rate") {
      const char* v = value();
      if (v == nullptr) return 1;
      anycast_rate = std::atof(v);
    } else if (arg == "--feed-rows") {
      const char* v = value();
      if (v == nullptr) return 1;
      feed_rows = static_cast<std::size_t>(std::atoi(v));
    } else {
      std::fprintf(stderr, "fusion_eval: unknown flag '%s'\n", std::string(arg).c_str());
      return 1;
    }
  }

  const geo::GeoDictionary& dict = geo::builtin_dictionary();

  // The adversarial world: geohint-dense, city-name-heavy (ambiguity needs
  // city names), with the misleading-namesake knob turned well up.
  sim::WorldConfig wc;
  wc.seed = 20260807;
  wc.operators = operators;
  wc.geohint_scheme_rate = 0.85;
  wc.w_iata = 0.25;
  wc.w_city = 0.60;
  wc.w_clli = 0.12;
  wc.w_locode = 0.02;
  wc.w_facility = 0.01;
  wc.ambiguous_operator_rate = ambiguous_rate;
  const sim::World world = sim::generate_world(dict, wc);

  sim::PingConfig pc;
  pc.anycast_rate = anycast_rate;
  measure::Measurements pings = sim::probe_pings(world, pc);

  // Learn conventions, then stand up the two sides of the comparison: the
  // hostname-only Geolocator and the fused context over the same model.
  const core::HoihoResult result = bench::run_hoiho(world, pings);
  core::Geolocator geolocator(dict);
  std::size_t usable = 0;
  for (const core::SuffixResult& sr : result.suffixes) {
    if (!sr.usable()) continue;
    geolocator.add(sr.nc, sr.cls);
    ++usable;
  }
  const baselines::Undns undns = baselines::Undns::from_world(world);
  const auto ctx = fuse::FuseContext::build(world.topology, std::move(pings), dict);
  const measure::Measurements& meas = ctx->measurements();

  obs::Registry registry;
  const fuse::Fuser fuser(geolocator, ctx.get(), {}, fuse::FuseMetrics(registry));

  // Method comparison over the hostname-answerable geohint rows.
  Tally hostname_only, fused, sping, cbg, undns_t;
  std::size_t denom = 0;
  std::vector<const sim::HostnameTruth*> answerable;
  for (const sim::HostnameTruth& truth : world.truths) {
    if (!truth.has_geohint) continue;
    const auto host_loc = geolocator.locate(truth.hostname);
    if (!host_loc) continue;  // same denominator for every method
    ++denom;
    answerable.push_back(&truth);
    const geo::LocationId true_loc = world.topology.router(truth.router).true_location;
    const geo::Coordinate& true_coord = dict.location(true_loc).coord;

    score(hostname_only, true,
          bench::within_correct_distance(dict, host_loc->location, true_loc));

    const fuse::FuseResult fr = fuser.fuse(truth.hostname);
    score(fused, fr.answered(),
          fr.answered() &&
              geo::distance_km(fr.best().coord, true_coord) <= bench::kCorrectKm);

    const auto sp = baselines::shortest_ping(meas, truth.router);
    score(sping, sp.has_value(),
          sp && geo::distance_km(sp->coord, true_coord) <= bench::kCorrectKm);

    const auto cb = baselines::cbg_locate(meas, truth.router);
    score(cbg, cb.has_value(),
          cb && geo::distance_km(cb->estimate, true_coord) <= bench::kCorrectKm);

    std::optional<geo::LocationId> ud;
    std::string canonical;
    if (const auto parsed = dns::parse_hostname(truth.hostname, canonical))
      ud = undns.locate(*parsed);
    score(undns_t, ud.has_value(),
          ud && bench::within_correct_distance(dict, *ud, true_loc));
  }

  // The audit feed: answerable subjects claiming their true coordinates,
  // except every tenth row, which claims a far-away city (>= 1000 km) — the
  // injected-wrong rows the auditor must refute.
  util::Rng feed_rng(20260809);
  std::vector<fuse::FeedRow> feed;
  std::vector<bool> injected_wrong;
  for (const sim::HostnameTruth* truth : answerable) {
    if (feed.size() >= feed_rows) break;
    const geo::LocationId true_loc = world.topology.router(truth->router).true_location;
    const geo::Coordinate& true_coord = dict.location(true_loc).coord;
    fuse::FeedRow row;
    row.subject = truth->hostname;
    const bool wrong = feed.size() % 10 == 9;
    if (wrong) {
      geo::Coordinate far = true_coord;
      for (int attempt = 0; attempt < 64; ++attempt) {
        const geo::LocationId pick =
            static_cast<geo::LocationId>(feed_rng.next_below(dict.size()));
        const geo::Coordinate& c = dict.location(pick).coord;
        if (geo::distance_km(c, true_coord) >= 1000.0) {
          far = c;
          break;
        }
      }
      row.claimed = far;
    } else {
      row.claimed = true_coord;
    }
    injected_wrong.push_back(wrong);
    feed.push_back(std::move(row));
  }
  const fuse::Auditor auditor(geolocator, ctx.get(), {}, &registry);
  std::vector<fuse::AuditRow> audited;
  const fuse::AuditSummary summary = auditor.audit_feed(feed, &audited);
  std::size_t wrong_total = 0, wrong_refuted = 0, right_refuted = 0;
  for (std::size_t i = 0; i < audited.size(); ++i) {
    if (injected_wrong[i]) {
      ++wrong_total;
      if (audited[i].outcome == fuse::AuditOutcome::kRefute) ++wrong_refuted;
    } else if (audited[i].outcome == fuse::AuditOutcome::kRefute) {
      ++right_refuted;
    }
  }
  const double refute_rate =
      wrong_total == 0 ? 0.0
                       : static_cast<double>(wrong_refuted) / static_cast<double>(wrong_total);

  // Exact accounting: the summary, the rows, and the registry counters must
  // all tell the same story.
  const obs::Snapshot snap = registry.snapshot();
  const bool accounting_exact =
      summary.rows == feed.size() &&
      summary.rows == summary.agree + summary.refute + summary.unknown &&
      snap.value("audit_agree") == summary.agree &&
      snap.value("audit_refute") == summary.refute &&
      snap.value("audit_unknown") == summary.unknown;

  bench::print_table({
      {"method", "answered", "correct", "accuracy"},
      {"hostname_only", std::to_string(hostname_only.answered),
       std::to_string(hostname_only.correct),
       util::fmt_double(100.0 * hostname_only.accuracy(denom), 1) + "%"},
      {"fused", std::to_string(fused.answered), std::to_string(fused.correct),
       util::fmt_double(100.0 * fused.accuracy(denom), 1) + "%"},
      {"shortest_ping", std::to_string(sping.answered), std::to_string(sping.correct),
       util::fmt_double(100.0 * sping.accuracy(denom), 1) + "%"},
      {"cbg", std::to_string(cbg.answered), std::to_string(cbg.correct),
       util::fmt_double(100.0 * cbg.accuracy(denom), 1) + "%"},
      {"undns", std::to_string(undns_t.answered), std::to_string(undns_t.correct),
       util::fmt_double(100.0 * undns_t.accuracy(denom), 1) + "%"},
  });
  std::printf("fusion_eval: %zu answerable rows (%zu usable conventions), "
              "fused margin %+0.2f pts\n",
              denom, usable,
              100.0 * (fused.accuracy(denom) - hostname_only.accuracy(denom)));
  std::printf("fusion_eval: audit %zu rows: agree %zu, refute %zu, unknown %zu; "
              "injected-wrong refuted %zu/%zu (%.1f%%), false refutes %zu\n",
              summary.rows, summary.agree, summary.refute, summary.unknown,
              wrong_refuted, wrong_total, 100.0 * refute_rate, right_refuted);

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"fusion_eval\",\n"
       << "  \"world\": {\"operators\": " << operators
       << ", \"ambiguous_operator_rate\": " << util::fmt_double(ambiguous_rate, 3)
       << ", \"anycast_rate\": " << util::fmt_double(anycast_rate, 3)
       << ", \"answerable\": " << denom << ", \"usable_conventions\": " << usable
       << "},\n"
       << "  \"methods\": {\n"
       << "    \"hostname_only\": " << tally_json(hostname_only, denom) << ",\n"
       << "    \"fused\": " << tally_json(fused, denom) << ",\n"
       << "    \"shortest_ping\": " << tally_json(sping, denom) << ",\n"
       << "    \"cbg\": " << tally_json(cbg, denom) << ",\n"
       << "    \"undns\": " << tally_json(undns_t, denom) << "\n"
       << "  },\n"
       << "  \"fused_margin\": "
       << util::fmt_double(fused.accuracy(denom) - hostname_only.accuracy(denom), 4) << ",\n"
       << "  \"audit\": {\"rows\": " << summary.rows << ", \"agree\": " << summary.agree
       << ", \"refute\": " << summary.refute << ", \"unknown\": " << summary.unknown
       << ", \"injected_wrong\": " << wrong_total
       << ", \"injected_refuted\": " << wrong_refuted
       << ", \"refute_rate\": " << util::fmt_double(refute_rate, 4)
       << ", \"false_refutes\": " << right_refuted
       << ", \"accounting_exact\": " << (accounting_exact ? "true" : "false") << "},\n"
       << "  \"registry\": " << snap.to_json("  ") << "\n"
       << "}\n";
  std::printf("fusion_eval: wrote %s\n", json_path.c_str());

  const bool fused_wins = fused.correct > hostname_only.correct;
  const bool audit_ok = wrong_total > 0 && refute_rate >= 0.90;
  if (!fused_wins)
    std::fprintf(stderr, "fusion_eval: FAILED: fused (%zu) does not beat hostname-only "
                         "(%zu)\n",
                 fused.correct, hostname_only.correct);
  if (!audit_ok)
    std::fprintf(stderr, "fusion_eval: FAILED: refute rate %.1f%% < 90%%\n",
                 100.0 * refute_rate);
  if (!accounting_exact)
    std::fprintf(stderr, "fusion_eval: FAILED: audit accounting mismatch\n");
  return fused_wins && audit_ok && accounting_exact ? 0 : 1;
}
