// Chaos harness for the hoihod serving subsystem (DESIGN.md §9).
//
// Spawns the real daemon binary and drives it through a scripted gauntlet
// of injected faults while verifying every response against precomputed
// expected answers:
//
//   1. learn a model in-process, save it with the crash-safe writer, and
//      record the exact response line each hostname must produce;
//   2. exec hoihod with HOIHO_FAILPOINTS arming short writes, EINTR, accept
//      failures, and worker latency;
//   3. drive a pipelined mixed workload — LOOKUP, GEO (plain, claimed, and
//      by interface address), STATS, and an unknown verb — from several
//      connections, every response verified against a precomputed exact
//      line (connect uses the client's jittered-backoff retry, so injected
//      accept failures are survived, not special-cased);
//   4. mid-run: two same-content atomic rewrites (watcher reloads), one
//      corrupt-model rewrite (reload must fail; old model keeps answering),
//      then restore;
//   5. SIGKILL the daemon, verify the model file survived (checksum), and
//      bring up a replacement that answers correctly;
//   6. SIGTERM the replacement and require a graceful drain: exit code 0.
//
// Durability drills (DESIGN.md §14) ride the same binary:
//
//   0. SIGKILL-during-learning: a checkpointed streaming learn in a child
//      process is killed mid-run (slowed commits guarantee the kill lands
//      between batches); a resume child must actually replay from the WAL
//      and the final saved model must be byte-identical to an
//      uninterrupted run's;
//   7. lineage gauntlet: a daemon with --keep-generations + --canary-file
//      under a mixed LOOKUP/GEO load: a diverging (but well-formed) model
//      rewrite must be canary-rejected without serving a single query, a
//      same-content rewrite bumps the generation, and an in-band ROLLBACK
//      mid-load republishes the archived generation — all with zero wrong
//      answers, GENS telling the true history, and worker stalls (injected
//      latency) surfacing in serve_worker_stalled;
//   8. torn model delta: a daemon with --delta-watch armed first sees a
//      truncated delta file (checksum footer missing) — it must be rejected
//      with the serving generation untouched and serve_delta_rejected
//      bumped — then the intact delta applies and bumps the generation, and
//      replaying the now-stale file through the DELTA verb must answer
//      DELTA,error in-band.
//
// Acceptance: zero wrong answers (ERR,busy / ERR,deadline count as shed,
// anything else mismatching is wrong), shed fraction bounded, faults
// actually fired, and both daemons leave with status 0 / SIGKILL as
// scripted. Exit code 0 iff all hold.
//
// Run: ./build/bench/chaos_serve [--quick] [--hoihod PATH] [--operators N]

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/delta.h"
#include "core/hoiho.h"
#include "core/nc_io.h"
#include "core/ncb.h"
#include "fuse/audit.h"
#include "measure/rtt_io.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "sim/probing.h"
#include "sim/streaming.h"
#include "util/failpoint.h"
#include "util/strings.h"

using namespace hoiho;

namespace {

struct DriveResult {
  std::uint64_t sent = 0, ok = 0, shed = 0, wrong = 0;
  bool io_failed = false;
  std::string first_wrong;  // diagnostic for the report
};

std::string self_dir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return ".";
  buf[n] = '\0';
  std::string path(buf);
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? "." : path.substr(0, slash);
}

// Expected responses are exact wire lines, except entries starting with
// '\x01': the rest is a required response *prefix* (used for STATS, whose
// counters change between requests).
constexpr char kPrefixSentinel = '\x01';

// Replicates the daemon's GEO handling (Server::process_batch) for one raw
// request line: parse it exactly as the wire parser will, fuse, classify the
// claim if one was sent, format. Fusion is deterministic, so this is the
// byte-exact line the daemon must produce.
std::string expected_geo(const fuse::Fuser& fuser, const std::string& line) {
  const serve::Request req = serve::parse_request(line);
  if (!req.error.empty()) return serve::format_error(req.error);
  std::optional<geo::Coordinate> claimed;
  if (req.has_claimed) claimed = req.claimed;
  const fuse::FuseResult fused = fuser.fuse(req.subject, claimed);
  std::optional<fuse::AuditOutcome> audit;
  if (req.has_claimed)
    audit = fuse::classify_claim(fused, req.claimed, fuse::AuditConfig{}.agree_km);
  return serve::format_geo(fused, audit);
}

// Learn a model, write the subjects + RTT files the daemon will arm GEO
// from, and precompute the exact wire response for a mixed
// LOOKUP/GEO/STATS/unknown-verb request stream. The in-process fuse context
// is built from the files' round-tripped contents — the same bytes the
// daemon loads — so the precomputed GEO lines match it exactly.
bool build_corpus(std::size_t operators, const std::string& subjects_path,
                  const std::string& rtt_path, std::vector<core::StoredConvention>* stored,
                  std::vector<std::string>* requests, std::vector<std::string>* expected) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  sim::WorldConfig config;
  config.seed = 20260805;
  config.operators = operators;
  config.geohint_scheme_rate = 0.8;
  const sim::World world = sim::generate_world(dict, config);
  measure::Measurements pings = sim::probe_pings(world, {});
  const core::Hoiho hoiho(dict);
  const core::HoihoResult result = hoiho.run(world.topology, pings);
  core::Geolocator check(dict);
  for (const core::SuffixResult& sr : result.suffixes) {
    if (!sr.usable()) continue;
    stored->push_back(core::StoredConvention{sr.nc, sr.cls});
    check.add(sr.nc, sr.cls);
  }

  // Subjects + RTT files, in the hoihod --subjects-out / --rtt-out format.
  {
    std::ofstream subj(subjects_path);
    for (const topo::Router& router : world.topology.routers()) {
      std::string first_hostname;
      for (const topo::Interface& ifc : router.interfaces)
        if (ifc.hostname) {
          first_hostname = ifc.hostname->full;
          break;
        }
      for (const topo::Interface& ifc : router.interfaces) {
        if (ifc.hostname) subj << ifc.hostname->full << ',' << router.id << '\n';
        if (!ifc.address.empty())
          subj << ifc.address << ',' << router.id << ',' << first_hostname << '\n';
      }
    }
    std::ofstream rtt(rtt_path);
    measure::save_measurements(rtt, pings);
    if (!subj || !rtt) {
      std::fprintf(stderr, "chaos: cannot write %s / %s\n", subjects_path.c_str(),
                   rtt_path.c_str());
      return false;
    }
  }
  // Round-trip through the files so the in-process context sees exactly what
  // the daemon will load (the RTT format is not double-lossless).
  std::ifstream sin(subjects_path), rin(rtt_path);
  const auto subjects = fuse::load_subjects(sin);
  const auto meas = measure::load_measurements(rin, world.topology.size(), {});
  if (!subjects || !meas) {
    std::fprintf(stderr, "chaos: subject/rtt round-trip failed\n");
    return false;
  }
  const auto ctx = fuse::FuseContext::build(*subjects, std::move(*meas), dict);
  const fuse::Fuser fuser(check, ctx.get());

  std::size_t misses_kept = 0, kept = 0;
  for (const sim::HostnameTruth& truth : world.truths) {
    const auto loc = check.locate(truth.hostname);
    if (!loc && misses_kept >= world.truths.size() / 20) continue;
    if (!loc) ++misses_kept;
    requests->push_back(truth.hostname);
    expected->push_back(loc ? serve::format_hit(*loc) : serve::format_miss());
    ++kept;

    // Interleave the rest of the verb mix, keyed off the kept-row ordinal so
    // the stream is deterministic: plain GEO, claimed GEO (the claim is the
    // hostname answer's own coordinate — formatted then re-parsed inside
    // expected_geo, so truncation matches the wire), GEO by interface
    // address, STATS, and an unknown verb.
    if (kept % 3 == 0) {
      requests->push_back("GEO " + truth.hostname);
      expected->push_back(expected_geo(fuser, requests->back()));
    }
    if (kept % 7 == 1 && loc) {
      requests->push_back("GEO " + truth.hostname + " " + util::fmt_double(loc->coord.lat, 4) +
                          "," + util::fmt_double(loc->coord.lon, 4));
      expected->push_back(expected_geo(fuser, requests->back()));
    }
    if (kept % 11 == 2) {
      const topo::Router& router = world.topology.router(truth.router);
      if (!router.interfaces.empty() && !router.interfaces.front().address.empty()) {
        requests->push_back("GEO " + router.interfaces.front().address);
        expected->push_back(expected_geo(fuser, requests->back()));
      }
    }
    if (kept % 23 == 3) {
      requests->push_back("STATS");
      expected->push_back(std::string(1, kPrefixSentinel) + "STATS,");
    }
    if (kept % 41 == 4) {
      requests->push_back("FROBNICATE " + truth.hostname);
      expected->push_back(serve::format_error("unknown_verb"));
    }
  }
  return true;
}

pid_t spawn_daemon(const std::string& binary, const std::vector<std::string>& args,
                   const std::string& failpoints) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  if (failpoints.empty())
    ::unsetenv("HOIHO_FAILPOINTS");
  else
    ::setenv("HOIHO_FAILPOINTS", failpoints.c_str(), 1);
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(binary.c_str()));
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  ::execv(binary.c_str(), argv.data());
  std::fprintf(stderr, "chaos: execv %s: %s\n", binary.c_str(), std::strerror(errno));
  ::_exit(127);
}

std::uint16_t wait_for_port(const std::string& port_file, pid_t pid) {
  for (int i = 0; i < 200; ++i) {
    std::ifstream in(port_file);
    int port = 0;
    if (in >> port && port > 0) return static_cast<std::uint16_t>(port);
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) return 0;  // died at startup
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return 0;
}

// Waits up to `timeout_ms`; returns the raw wait status, or -1 on timeout.
int wait_for_exit(pid_t pid, int timeout_ms) {
  for (int waited = 0; waited <= timeout_ms; waited += 50) {
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) return status;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return -1;
}

// True when `line` satisfies `want` (exact match, or prefix match for
// sentinel-tagged entries).
bool matches(const std::string& line, const std::string& want) {
  if (!want.empty() && want[0] == kPrefixSentinel)
    return line.compare(0, want.size() - 1, want, 1, want.size() - 1) == 0;
  return line == want;
}

void drive(const std::string& host, std::uint16_t port,
           const std::vector<std::string>& hostnames,
           const std::vector<std::string>& expected, std::size_t offset,
           std::size_t rounds, std::size_t pipeline, DriveResult* result) {
  serve::ClientOptions copts;
  copts.connect_timeout_ms = 2000;
  copts.io_timeout_ms = 10000;
  copts.max_attempts = 10;
  copts.backoff_initial_ms = 20;
  copts.backoff_seed = offset + 1;
  std::string error;
  auto client = serve::Client::connect_with_retry(host, port, copts, &error);
  if (!client) {
    std::fprintf(stderr, "chaos: connect: %s\n", error.c_str());
    result->io_failed = true;
    return;
  }
  std::size_t cursor = offset % hostnames.size();
  std::vector<std::string> batch(pipeline);
  std::vector<std::size_t> batch_idx(pipeline);
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t i = 0; i < pipeline; ++i) {
      batch[i] = hostnames[cursor];
      batch_idx[i] = cursor;
      cursor = (cursor + 1) % hostnames.size();
    }
    if (!client->send_lines(batch)) {
      result->io_failed = true;
      return;
    }
    result->sent += pipeline;
    for (std::size_t i = 0; i < pipeline; ++i) {
      const auto line = client->read_line();
      if (!line) {
        result->io_failed = true;
        return;
      }
      if (matches(*line, expected[batch_idx[i]])) {
        ++result->ok;
      } else if (*line == "ERR,busy" || *line == "ERR,deadline") {
        ++result->shed;  // load shedding is allowed, wrong answers are not
      } else {
        ++result->wrong;
        if (result->first_wrong.empty())
          result->first_wrong = batch[i] + " -> '" + *line + "' (want '" +
                                expected[batch_idx[i]] + "')";
      }
    }
    // Pace the rounds so the run overlaps the mid-run reload script instead
    // of finishing before the first rewrite lands.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

std::uint64_t stat_value(const std::string& stats, const std::string& key) {
  const std::string needle = "," + key + "=";
  const std::size_t pos = stats.find(needle);
  if (pos == std::string::npos) return 0;
  return std::strtoull(stats.c_str() + pos + needle.size(), nullptr, 10);
}

// Reads a counter out of a STATS2 response ("name:c=value").
std::uint64_t stats2_value(const std::string& stats2, const std::string& name) {
  const std::string needle = "," + name + ":c=";
  const std::size_t pos = stats2.find(needle);
  if (pos == std::string::npos) return 0;
  return std::strtoull(stats2.c_str() + pos + needle.size(), nullptr, 10);
}

std::string slurp_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- drill 0: SIGKILL during a checkpointed streaming learn ------------------

sim::StreamingWorldConfig chaos_stream_config(bool quick) {
  sim::StreamingWorldConfig swc;
  swc.seed = 20260809;
  swc.suffixes = quick ? 40 : 80;
  swc.target_hostnames = quick ? 1200 : 3000;
  swc.max_hostnames_per_suffix = 256;
  swc.vp_count = 16;
  swc.batch_hostname_budget = 200;
  swc.traits.geohint_scheme_rate = 0.8;
  swc.traits.hostname_rate = 0.85;
  return swc;
}

// One checkpointed streaming learn, run inside a forked child. mode 0 slows
// every commit (so the parent's SIGKILL reliably lands mid-run); mode 1 is
// the resume leg and exits 3 unless it actually replayed committed batches
// from the WAL. Exits 2 when the model cannot be saved.
int learn_leg(bool quick, const std::string& ckpt_dir, const std::string& model_out,
              int mode) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  if (mode == 0) util::failpoint::configure("checkpoint_write", "delay:40");
  obs::Registry registry;
  core::HoihoConfig hc;
  hc.threads = 2;
  hc.checkpoint_dir = ckpt_dir;
  hc.registry = &registry;
  sim::StreamingWorld world(dict, chaos_stream_config(quick));
  const core::HoihoResult result = core::Hoiho(dict, hc).run_stream(world);
  if (mode == 1 && registry.snapshot().value("checkpoint_batches_resumed") == 0) return 3;
  std::vector<core::StoredConvention> stored;
  for (const core::SuffixResult& sr : result.suffixes)
    if (sr.usable()) stored.push_back(core::StoredConvention{sr.nc, sr.cls});
  std::string error;
  // Extension-dispatched: the drill saves .ncb, so byte-identical resume is
  // asserted on the binary image the serving store actually mmaps.
  if (!core::save_model_to_file(model_out, stored, dict, &error)) {
    std::fprintf(stderr, "chaos: learn leg save: %s\n", error.c_str());
    return 2;
  }
  return 0;
}

// The committed-batch count in a checkpoint manifest (0 when unreadable).
std::uint64_t manifest_batches(const std::string& ckpt_dir) {
  std::ifstream in(ckpt_dir + "/MANIFEST");
  std::string line;
  while (std::getline(in, line))
    if (line.rfind("batches,", 0) == 0)
      return std::strtoull(line.c_str() + 8, nullptr, 10);
  return 0;
}

bool learning_crash_drill(bool quick) {
  const std::string ckpt_dir = "CHAOS_CKPT";
  const std::string ref_path = "CHAOS_STREAM_REF.ncb";
  const std::string out_path = "CHAOS_STREAM_MODEL.ncb";
  ::unlink((ckpt_dir + "/wal.log").c_str());
  ::unlink((ckpt_dir + "/MANIFEST").c_str());
  ::unlink(out_path.c_str());

  // Reference: the same learn, uninterrupted and uncheckpointed.
  if (learn_leg(quick, "", ref_path, 2) != 0) return false;
  const std::string ref_bytes = slurp_file(ref_path);
  if (ref_bytes.empty()) return false;

  // Crash leg: kill once at least two batches committed (slowed commits make
  // the window wide); if the child somehow finishes first, the checkpoint is
  // simply complete and the resume leg replays everything.
  pid_t pid = ::fork();
  if (pid == 0) ::_exit(learn_leg(quick, ckpt_dir, out_path, 0));
  bool killed = false;
  for (int i = 0; i < 600; ++i) {
    if (manifest_batches(ckpt_dir) >= 2) {
      ::kill(pid, SIGKILL);
      killed = true;
      break;
    }
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) {
      pid = -1;  // finished before the kill window
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (pid > 0) {
    const int status = wait_for_exit(pid, 10000);
    if (killed && (status < 0 || !WIFSIGNALED(status))) {
      std::fprintf(stderr, "chaos: learn leg did not die on SIGKILL\n");
      return false;
    }
  }
  const std::uint64_t committed = manifest_batches(ckpt_dir);
  std::printf("chaos: learn killed with %llu batches committed\n",
              static_cast<unsigned long long>(committed));
  if (committed == 0) {
    std::fprintf(stderr, "chaos: kill landed before any commit\n");
    return false;
  }

  // Resume leg: a fresh process must replay from the WAL (exit 3 if it did
  // not resume) and finish the run.
  const pid_t resume = ::fork();
  if (resume == 0) ::_exit(learn_leg(quick, ckpt_dir, out_path, 1));
  const int resume_status = wait_for_exit(resume, 60000);
  if (resume_status < 0 || !WIFEXITED(resume_status) || WEXITSTATUS(resume_status) != 0) {
    std::fprintf(stderr, "chaos: resume leg failed (status %d%s)\n", resume_status,
                 resume_status >= 0 && WIFEXITED(resume_status) &&
                         WEXITSTATUS(resume_status) == 3
                     ? ", did not resume"
                     : "");
    return false;
  }

  const bool identical = slurp_file(out_path) == ref_bytes;
  std::printf("chaos: drill0 (kill during learning) resumed model %s\n",
              identical ? "byte-identical" : "DIVERGED");
  return identical;
}

// --- drill 8: torn model delta ----------------------------------------------
//
// A daemon with --delta-watch armed. The script: a truncated (torn) delta
// file lands first — the loader requires the checksum footer, so it must be
// rejected (serve_delta_rejected bumps) with the serving generation
// untouched; then the intact delta (a same-content upsert, so lookup
// expectations stay valid) applies and bumps the generation; finally the
// DELTA verb replays the same file, which now targets a stale base
// generation and must answer DELTA,error in-band.
bool torn_delta_drill(const std::string& binary, const std::string& model_path,
                      const std::string& port_file,
                      const std::vector<core::StoredConvention>& stored,
                      const std::vector<std::string>& requests,
                      const std::vector<std::string>& expected) {
  const std::string delta_path = "CHAOS_DELTA.txt";
  ::unlink(delta_path.c_str());
  ::unlink(port_file.c_str());
  // No --subjects/--rtt: the boot publish is the only one, so the serving
  // generation starts at 1 and every move below is delta-driven.
  const std::vector<std::string> args = {"--model",    model_path, "--port",       "0",
                                         "--port-file", port_file,  "--watch-ms",   "50",
                                         "--delta-watch", delta_path};
  const pid_t pid = spawn_daemon(binary, args, "");
  const std::uint16_t port = wait_for_port(port_file, pid);
  if (port == 0) {
    std::fprintf(stderr, "chaos: delta daemon did not come up\n");
    return false;
  }

  bool ok = true;
  std::string error;
  serve::ClientOptions copts;
  copts.connect_timeout_ms = 2000;
  copts.io_timeout_ms = 5000;
  copts.max_attempts = 10;
  copts.backoff_initial_ms = 20;
  auto admin = serve::Client::connect_with_retry("127.0.0.1", port, copts, &error);
  if (!admin) {
    std::fprintf(stderr, "chaos: delta admin connect: %s\n", error.c_str());
    ::kill(pid, SIGKILL);
    return false;
  }
  const auto expect_line = [&](const std::string& verb, const std::string& want, bool poll) {
    if (!ok) return;
    for (int i = 0; i < 200; ++i) {
      const auto resp = admin->request(verb);
      if (resp && *resp == want) return;
      if (!poll || !resp) {
        std::fprintf(stderr, "chaos: %s -> '%s' (want '%s')\n", verb.c_str(),
                     resp ? resp->c_str() : "<io error>", want.c_str());
        ok = false;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::fprintf(stderr, "chaos: %s never settled on '%s'\n", verb.c_str(), want.c_str());
    ok = false;
  };
  const auto poll_counter = [&](const std::string& name) {
    std::uint64_t value = 0;
    for (int i = 0; i < 200 && ok; ++i) {
      const auto s2 = admin->request("STATS2");
      if (!s2) {
        ok = false;
        break;
      }
      value = stats2_value(*s2, name);
      if (value >= 1) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (value == 0) {
      std::fprintf(stderr, "chaos: %s never reached 1\n", name.c_str());
      ok = false;
    }
    return value;
  };

  expect_line("GENS", "GENS,serving=1,archived=-", false);

  // The delta: one upsert carrying a convention the model already serves
  // byte-identically, so applying it changes the generation but no answer.
  core::ModelDelta delta;
  delta.base_generation = 1;
  delta.upserts.push_back(stored.front());
  const std::string bytes = core::serialize_model_delta(delta, geo::builtin_dictionary());

  // Torn: half the serialized delta — the checksum footer is gone, so the
  // watcher must reject it without publishing.
  {
    std::ofstream out(delta_path, std::ios::trunc | std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  const std::uint64_t rejected = poll_counter("serve_delta_rejected");
  expect_line("GENS", "GENS,serving=1,archived=-", false);

  // Intact: the watcher applies it and the generation moves.
  {
    std::ofstream out(delta_path, std::ios::trunc | std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  expect_line("GENS", "GENS,serving=2,archived=-", true);

  // In-band replay: the same file now targets a stale base generation.
  if (ok) {
    const auto resp = admin->request("DELTA " + delta_path);
    if (!resp || serve::classify_response(*resp) != serve::ResponseKind::kDeltaError) {
      std::fprintf(stderr, "chaos: stale DELTA -> '%s' (want DELTA,error,...)\n",
                   resp ? resp->c_str() : "<io error>");
      ok = false;
    }
  }

  // Spot-check plain lookups against the precomputed answers (this daemon
  // has no fuse context, so only space-free lookup rows are comparable).
  std::size_t checked = 0;
  for (std::size_t i = 0; i < requests.size() && checked < 32 && ok; ++i) {
    if (requests[i].find(' ') != std::string::npos) continue;
    if (!expected[i].empty() && expected[i][0] == kPrefixSentinel) continue;
    const auto resp = admin->request(requests[i]);
    if (!resp || *resp != expected[i]) {
      std::fprintf(stderr, "chaos: post-delta lookup %s -> '%s' (want '%s')\n",
                   requests[i].c_str(), resp ? resp->c_str() : "<io error>",
                   expected[i].c_str());
      ok = false;
      break;
    }
    ++checked;
  }
  ok = ok && checked > 0;

  ::kill(pid, SIGTERM);
  const int status = wait_for_exit(pid, 10000);
  const bool clean = status >= 0 && WIFEXITED(status) && WEXITSTATUS(status) == 0;
  if (!clean) {
    std::fprintf(stderr, "chaos: delta daemon drain did not exit 0 (status %d)\n", status);
    ::kill(pid, SIGKILL);
  }
  ok = ok && clean;
  std::printf("chaos: drill8 (torn delta) rejected=%llu checked=%zu %s\n",
              static_cast<unsigned long long>(rejected), checked, ok ? "ok" : "FAILED");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string binary = self_dir() + "/../src/hoihod";
  std::size_t operators = 32;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--hoihod" && i + 1 < argc) {
      binary = argv[++i];
    } else if (arg == "--operators" && i + 1 < argc) {
      operators = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--hoihod PATH] [--operators N]\n", argv[0]);
      return 1;
    }
  }
  if (::access(binary.c_str(), X_OK) != 0) {
    std::fprintf(stderr, "chaos: hoihod binary not found at %s (use --hoihod)\n",
                 binary.c_str());
    return 1;
  }
  ::signal(SIGPIPE, SIG_IGN);

  // --- drill 0: SIGKILL during a checkpointed streaming learn --------------
  // Runs first, before any client-side failpoints are armed, so the
  // in-process reference learn is clean.
  const bool crash_drill_pass = learning_crash_drill(quick);

  const std::size_t connections = quick ? 2 : 4;
  const std::size_t pipeline = quick ? 16 : 32;
  const std::size_t rounds = quick ? 40 : 200;

  const std::string model_path = "CHAOS_MODEL.txt";
  const std::string port_file = "CHAOS_PORT.txt";
  const std::string subjects_path = "CHAOS_SUBJECTS.csv";
  const std::string rtt_path = "CHAOS_RTT.txt";
  ::unlink(port_file.c_str());

  std::vector<core::StoredConvention> stored;
  std::vector<std::string> hostnames, expected;
  if (!build_corpus(operators, subjects_path, rtt_path, &stored, &hostnames, &expected))
    return 1;
  if (hostnames.empty()) {
    std::fprintf(stderr, "chaos: corpus came up empty\n");
    return 1;
  }
  std::string error;
  if (!core::save_conventions_to_file(model_path, stored, geo::builtin_dictionary(),
                                      &error)) {
    std::fprintf(stderr, "chaos: %s\n", error.c_str());
    return 1;
  }
  std::printf("chaos: %zu conventions, %zu mixed requests\n", stored.size(),
              hostnames.size());

  // Daemon side: short writes fragment every flush, accept fails for the
  // first attempts, and worker latency makes shedding/deadlines reachable.
  // Client side (this process): EINTR injected into every util::write_all,
  // so the drivers' own send path retries through interrupts.
  const std::string failpoints =
      "serve.write=short,p=0.3;"
      "serve.accept=error:EMFILE,times=2;"
      "serve.process=delay:1,p=0.05";
  if (!util::failpoint::configure("net.write", "eintr,p=0.05", &error)) {
    std::fprintf(stderr, "chaos: failpoint: %s\n", error.c_str());
    return 1;
  }
  const std::vector<std::string> daemon_args = {
      "--model", model_path, "--subjects", subjects_path, "--rtt", rtt_path,
      "--port", "0", "--port-file", port_file,
      "--watch-ms", "50", "--deadline-ms", "2000", "--idle-timeout-ms", "30000",
      "--max-inflight", "65536", "--drain-timeout-ms", "3000", "--workers", "2"};

  pid_t pid = spawn_daemon(binary, daemon_args, failpoints);
  std::uint16_t port = wait_for_port(port_file, pid);
  if (port == 0) {
    std::fprintf(stderr, "chaos: daemon did not come up\n");
    return 1;
  }
  std::printf("chaos: daemon pid %d on port %u (faults armed)\n", pid,
              static_cast<unsigned>(port));

  // --- phase 1: drive under faults with mid-run reloads --------------------
  std::vector<DriveResult> results(connections);
  std::vector<std::thread> drivers;
  for (std::size_t i = 0; i < connections; ++i)
    drivers.emplace_back(drive, "127.0.0.1", port, std::cref(hostnames),
                         std::cref(expected), i * 37, rounds, pipeline, &results[i]);

  const auto settle = std::chrono::milliseconds(quick ? 200 : 400);
  // Two good reloads: same content, new mtime; the watcher must debounce
  // then pick each one up.
  for (int i = 0; i < 2; ++i) {
    std::this_thread::sleep_for(settle);
    if (!core::save_conventions_to_file(model_path, stored, geo::builtin_dictionary(),
                                        &error)) {
      std::fprintf(stderr, "chaos: rewrite: %s\n", error.c_str());
      return 1;
    }
  }
  // One corrupt reload: a torn/garbage model must fail to load while the old
  // snapshot keeps answering (the drivers are still verifying responses).
  std::this_thread::sleep_for(settle);
  {
    std::ofstream out(model_path, std::ios::trunc);
    out << "S,example.com,promising\nthis is not a convention file\n";
  }
  std::this_thread::sleep_for(settle);
  if (!core::save_conventions_to_file(model_path, stored, geo::builtin_dictionary(),
                                      &error)) {
    std::fprintf(stderr, "chaos: restore: %s\n", error.c_str());
    return 1;
  }

  for (std::thread& t : drivers) t.join();

  std::uint64_t sent = 0, ok = 0, shed = 0, wrong = 0;
  bool io_failed = false;
  for (const DriveResult& r : results) {
    sent += r.sent;
    ok += r.ok;
    shed += r.shed;
    wrong += r.wrong;
    io_failed = io_failed || r.io_failed;
    if (!r.first_wrong.empty())
      std::fprintf(stderr, "chaos: WRONG ANSWER: %s\n", r.first_wrong.c_str());
  }
  std::printf("chaos: phase1 sent=%llu ok=%llu shed=%llu wrong=%llu\n",
              static_cast<unsigned long long>(sent), static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(shed),
              static_cast<unsigned long long>(wrong));

  // STATS over a fresh connection: reloads landed, the corrupt one failed,
  // and the armed faults actually fired.
  std::uint64_t reloads = 0, reload_failures = 0, injected = 0;
  {
    serve::ClientOptions copts;
    copts.connect_timeout_ms = 2000;
    copts.io_timeout_ms = 5000;
    auto admin = serve::Client::connect("127.0.0.1", port, &error, copts);
    if (!admin) {
      std::fprintf(stderr, "chaos: admin connect: %s\n", error.c_str());
      return 1;
    }
    const auto stats = admin->request("STATS");
    if (!stats) {
      std::fprintf(stderr, "chaos: STATS failed\n");
      return 1;
    }
    reloads = stat_value(*stats, "reloads");
    reload_failures = stat_value(*stats, "reload_failures");
    injected = stat_value(*stats, "injected_faults");
    std::printf("chaos: reloads=%llu reload_failures=%llu injected_faults=%llu\n",
                static_cast<unsigned long long>(reloads),
                static_cast<unsigned long long>(reload_failures),
                static_cast<unsigned long long>(injected));
  }

  // --- phase 2: SIGKILL, model must survive, replacement must serve --------
  ::kill(pid, SIGKILL);
  const int kill_status = wait_for_exit(pid, 5000);
  if (kill_status < 0 || !WIFSIGNALED(kill_status)) {
    std::fprintf(stderr, "chaos: daemon did not die on SIGKILL\n");
    return 1;
  }
  {
    // The crash-safe writer means the file on disk is always a complete,
    // checksummed model — a kill can never leave a torn file behind.
    std::ifstream in(model_path);
    std::string load_error;
    if (!core::load_conventions(in, geo::builtin_dictionary(), &load_error)) {
      std::fprintf(stderr, "chaos: model corrupt after SIGKILL: %s\n", load_error.c_str());
      return 1;
    }
  }
  ::unlink(port_file.c_str());
  pid = spawn_daemon(binary, daemon_args, "");
  port = wait_for_port(port_file, pid);
  if (port == 0) {
    std::fprintf(stderr, "chaos: replacement daemon did not come up\n");
    return 1;
  }
  DriveResult after;
  drive("127.0.0.1", port, hostnames, expected, 0, quick ? 5 : 20, pipeline, &after);
  std::printf("chaos: phase2 (post-kill) sent=%llu ok=%llu shed=%llu wrong=%llu\n",
              static_cast<unsigned long long>(after.sent),
              static_cast<unsigned long long>(after.ok),
              static_cast<unsigned long long>(after.shed),
              static_cast<unsigned long long>(after.wrong));

  // --- phase 3: SIGTERM must drain gracefully and exit 0 -------------------
  ::kill(pid, SIGTERM);
  const int term_status = wait_for_exit(pid, 10000);
  const bool clean_exit =
      term_status >= 0 && WIFEXITED(term_status) && WEXITSTATUS(term_status) == 0;
  if (!clean_exit) {
    std::fprintf(stderr, "chaos: SIGTERM drain did not exit 0 (status %d)\n", term_status);
    ::kill(pid, SIGKILL);
  }

  // --- phase 7: lineage gauntlet — canary gate, generations, rollback ------
  // A fresh daemon with archiving + a canary armed, under live mixed load:
  // a diverging (empty but well-formed) rewrite must be canary-rejected
  // without ever serving, a same-content restore bumps the generation, an
  // in-band ROLLBACK republishes the archived model, and the injected
  // worker latency must surface as stall detections. Every generation in
  // play has identical content, so the drivers' precomputed expectations
  // stay valid across the whole script — zero wrong answers is a real
  // assertion, not vacuous.
  const std::string canary_path = "CHAOS_CANARY.txt";
  bool lineage_ok = false;
  DriveResult lineage_load;
  {
    std::size_t canary_rows = 0;
    {
      std::ofstream canary(canary_path, std::ios::trunc);
      canary << "# chaos canary: pinned lookups the next model must reproduce\n";
      for (std::size_t i = 0; i < hostnames.size() && canary_rows < 24; ++i) {
        if (hostnames[i].find(' ') != std::string::npos) continue;  // plain lookups only
        if (!expected[i].empty() && expected[i][0] == kPrefixSentinel) continue;
        if (expected[i] == serve::format_miss()) continue;
        canary << hostnames[i] << ',' << expected[i] << '\n';
        ++canary_rows;
      }
    }
    if (canary_rows == 0) {
      std::fprintf(stderr, "chaos: no hit lines available for the canary\n");
      return 1;
    }
    // The lineage gauntlet runs on the binary format: the same canary gate,
    // generation archive, and ROLLBACK path, but over .ncb images the store
    // mmaps (archives land as .gens/gen-<G>.ncb).
    const std::string lineage_model = "CHAOS_MODEL.ncb";
    if (!core::save_model_to_file(lineage_model, stored, geo::builtin_dictionary(), &error)) {
      std::fprintf(stderr, "chaos: lineage model write: %s\n", error.c_str());
      return 1;
    }
    // Fresh lineage: drop any archive left behind by an earlier run (either
    // extension — the archive keeps each generation in its source format).
    for (int g = 0; g < 64; ++g) {
      ::unlink((lineage_model + ".gens/gen-" + std::to_string(g) + ".nc").c_str());
      ::unlink((lineage_model + ".gens/gen-" + std::to_string(g) + ".ncb").c_str());
    }
    ::rmdir((lineage_model + ".gens").c_str());
    ::unlink(port_file.c_str());

    std::vector<std::string> lineage_args = daemon_args;
    for (std::size_t i = 0; i + 1 < lineage_args.size(); ++i)
      if (lineage_args[i] == "--model") lineage_args[i + 1] = lineage_model;
    lineage_args.insert(lineage_args.end(),
                        {"--keep-generations", "4", "--canary-file", canary_path,
                         "--worker-stall-ms", "100"});
    pid = spawn_daemon(binary, lineage_args, "serve.process=delay:300,times=3");
    port = wait_for_port(port_file, pid);
    if (port == 0) {
      std::fprintf(stderr, "chaos: lineage daemon did not come up\n");
      return 1;
    }
    std::thread loader(drive, "127.0.0.1", port, std::cref(hostnames), std::cref(expected),
                       0, quick ? 150 : 300, pipeline, &lineage_load);

    serve::ClientOptions copts;
    copts.connect_timeout_ms = 2000;
    copts.io_timeout_ms = 5000;
    copts.max_attempts = 10;
    copts.backoff_initial_ms = 20;
    auto admin = serve::Client::connect_with_retry("127.0.0.1", port, copts, &error);
    bool script_ok = admin.has_value();
    if (!script_ok) std::fprintf(stderr, "chaos: lineage admin connect: %s\n", error.c_str());

    auto expect_line = [&](const char* verb, const std::string& want, bool poll) {
      if (!script_ok) return;
      for (int i = 0; i < 200; ++i) {
        const auto resp = admin->request(verb);
        if (resp && *resp == want) return;
        if (!poll || !resp) {
          std::fprintf(stderr, "chaos: %s -> '%s' (want '%s')\n", verb,
                       resp ? resp->c_str() : "<io error>", want.c_str());
          script_ok = false;
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      std::fprintf(stderr, "chaos: %s never settled on '%s'\n", verb, want.c_str());
      script_ok = false;
    };
    auto poll_counter = [&](const std::string& name) {
      std::uint64_t value = 0;
      for (int i = 0; i < 200 && script_ok; ++i) {
        const auto s2 = admin->request("STATS2");
        if (!s2) {
          script_ok = false;
          break;
        }
        value = stats2_value(*s2, name);
        if (value >= 1) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      if (value == 0) {
        std::fprintf(stderr, "chaos: %s never reached 1\n", name.c_str());
        script_ok = false;
      }
      return value;
    };

    // Boot: the model file is archived as generation 1, then GEO arming
    // republishes the snapshot with the fuse context as generation 2
    // (set_fuse_context bumps the generation but archives nothing).
    expect_line("GENS", "GENS,serving=2,archived=1", false);
    // Diverging rewrite: well-formed but empty, so every canary lookup would
    // MISS. The watcher's reload must be rejected and gen 2 keeps serving.
    if (script_ok &&
        !core::save_model_to_file(lineage_model, {}, geo::builtin_dictionary(), &error)) {
      std::fprintf(stderr, "chaos: empty rewrite: %s\n", error.c_str());
      script_ok = false;
    }
    const std::uint64_t rejected = poll_counter("serve_reload_rejected");
    expect_line("GENS", "GENS,serving=2,archived=1", false);
    // Restore (same content): reload passes the canary, generation bumps.
    if (script_ok &&
        !core::save_model_to_file(lineage_model, stored, geo::builtin_dictionary(),
                                  &error)) {
      std::fprintf(stderr, "chaos: lineage restore: %s\n", error.c_str());
      script_ok = false;
    }
    expect_line("GENS", "GENS,serving=3,archived=1;3", true);
    // In-band rollback republishes archived gen 1 as a new generation.
    expect_line("ROLLBACK 1",
                "ROLLBACK,ok,generation=4,from=1,conventions=" + std::to_string(stored.size()),
                false);
    expect_line("GENS", "GENS,serving=4,archived=1;3;4", false);
    // The injected 300ms worker delays must have tripped the watchdog.
    const std::uint64_t stalled = poll_counter("serve_worker_stalled");

    loader.join();
    ::kill(pid, SIGTERM);
    const int lineage_status = wait_for_exit(pid, 10000);
    const bool lineage_exit =
        lineage_status >= 0 && WIFEXITED(lineage_status) && WEXITSTATUS(lineage_status) == 0;
    if (!lineage_exit) {
      std::fprintf(stderr, "chaos: lineage daemon drain did not exit 0 (status %d)\n",
                   lineage_status);
      ::kill(pid, SIGKILL);
    }
    if (!lineage_load.first_wrong.empty())
      std::fprintf(stderr, "chaos: WRONG ANSWER (lineage): %s\n",
                   lineage_load.first_wrong.c_str());
    lineage_ok = script_ok && lineage_exit && !lineage_load.io_failed &&
                 lineage_load.wrong == 0 && lineage_load.ok > 0;
    std::printf(
        "chaos: phase7 (lineage) sent=%llu ok=%llu shed=%llu wrong=%llu "
        "rejected=%llu stalled=%llu %s\n",
        static_cast<unsigned long long>(lineage_load.sent),
        static_cast<unsigned long long>(lineage_load.ok),
        static_cast<unsigned long long>(lineage_load.shed),
        static_cast<unsigned long long>(lineage_load.wrong),
        static_cast<unsigned long long>(rejected), static_cast<unsigned long long>(stalled),
        lineage_ok ? "ok" : "FAILED");
  }

  // --- drill 8: torn model delta -----------------------------------------
  const bool delta_drill_pass =
      torn_delta_drill(binary, model_path, port_file, stored, hostnames, expected);

  bool pass = clean_exit && !io_failed && wrong == 0 && after.wrong == 0 &&
              after.io_failed == false && ok > 0 && after.ok > 0;
  pass = pass && reloads >= 2 && reload_failures >= 1 && injected > 0;
  pass = pass && crash_drill_pass && lineage_ok && delta_drill_pass;
  // Shedding is allowed but must stay bounded: this load is far below the
  // configured ceilings, so more than 20% shed means something is broken.
  pass = pass && (sent == 0 || shed * 5 <= sent);
  std::printf("chaos: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
