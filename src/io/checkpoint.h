// Batch-granular checkpointing for streaming learning runs (DESIGN.md §14).
//
// An XL run_stream is tens of minutes of work; a SIGKILL at minute 40 used
// to lose all of it. A Checkpoint makes the per-batch results durable as
// the run goes: after each batch the learner appends the batch's
// SuffixResults to a write-ahead log and atomically rewrites a small
// manifest that commits the WAL prefix. A killed run re-opened on the same
// directory resumes with every committed batch's results already in hand
// and replays only the uncommitted tail — and because the stream and the
// learner are deterministic, the final saved model is byte-identical to an
// uninterrupted run (tests/test_checkpoint.cc holds it to that).
//
// Layout under the checkpoint directory:
//
//   wal.log    append-only, fsynced before every manifest rewrite
//   MANIFEST   rewritten atomically (tmp + fsync + rename) per batch
//
// The WAL is line-oriented in the nc_io dialect, one record block per
// committed batch:
//
//   B,<batch_index>,<result_count>          batch header
//   X,<suffix>,<class>,<hostname_count>,<tagged_count>,<tp>,<fp>,<fn>,
//     <unk>,<none>,<budget_exhausted>       one per SuffixResult
//   R,<plan>,<regex>                        the suffix's NC regexes
//   L,<dict-type>,<code>,<city>,<state>,<country>      NC learned geohints
//   H,<dict-type>,<code>,<tp>,<fp>,<existing_tp>,<city>,<state>,<country>
//                                           stage-4 LearnedHint evidence
//   U,<code>                                eval.unique_tp_codes entries
//   V,<regex_index>,<code>                  eval.regex_unique_tp entries
//   C,<batch_index>                         batch trailer
//
// Places are stored by name (like nc_io L records) and re-resolved against
// the load-time dictionary, so a checkpoint survives process restarts but
// is discarded if any place no longer resolves — a resume must reproduce
// the results exactly or not at all.
//
// The MANIFEST is the commit point: it records the committed batch count,
// the exact WAL byte length, and the FNV-1a of that prefix, and carries its
// own "# checksum,fnv1a" footer. A crash between the WAL append and the
// manifest rename leaves a tail beyond the committed length; open()
// truncates it away and that batch simply replays. Any corruption —
// manifest checksum, WAL prefix hash, a record that fails strict parsing,
// a signature mismatch against the current config — discards the whole
// checkpoint and the run starts from batch 0 (never a partial resume).
//
// Fault injection: commit_batch() consults the "checkpoint_write" failpoint
// (util/failpoint) before touching the WAL, so crash drills can kill or
// fail a run at an exact batch boundary.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/hoiho.h"

namespace hoiho::io {

class Checkpoint {
 public:
  // What open() recovered. `batches` committed batches worth of `results`
  // are returned in stream order; the caller pulls and discards that many
  // batches from its stream before learning resumes. `discarded` is true
  // when a prior checkpoint existed but was invalid (note says why).
  struct Resume {
    std::size_t batches = 0;
    std::vector<core::SuffixResult> results;
    bool discarded = false;
    std::string note;
  };

  // `signature` fingerprints everything that shapes the results (config
  // knobs, stream seed); a checkpoint written under a different signature
  // must not resume. `dict` spells out and re-resolves stored places and
  // must be the dictionary the run learns against.
  Checkpoint(std::string dir, std::uint64_t signature, const geo::GeoDictionary& dict);
  ~Checkpoint();

  Checkpoint(const Checkpoint&) = delete;
  Checkpoint& operator=(const Checkpoint&) = delete;

  // Loads committed state, creating the directory and files on first use.
  // Never fails the run: an unreadable or invalid checkpoint is discarded
  // and learning starts from batch 0. Call exactly once, before the loop.
  Resume open();

  // Appends one batch's results to the WAL (fsync), then atomically
  // commits them via the manifest. False with *error on any write failure
  // — the caller decides whether to stop (durability-first) or continue
  // uncheckpointed; this object refuses further commits either way.
  bool commit_batch(std::span<const core::SuffixResult> results,
                    std::string* error = nullptr);

  const std::string& dir() const { return dir_; }
  std::size_t committed_batches() const { return batches_; }

 private:
  bool load_existing(Resume* out, std::string* why);
  bool start_fresh(std::string* why);
  bool rewrite_manifest(std::string* why);

  std::string dir_;
  std::uint64_t sig_;
  const geo::GeoDictionary& dict_;

  int wal_fd_ = -1;
  bool ready_ = false;           // open() succeeded and commits are allowed
  std::size_t batches_ = 0;      // committed batch count
  std::size_t results_ = 0;      // committed SuffixResult count
  std::uint64_t wal_bytes_ = 0;  // committed WAL prefix length
  std::uint64_t wal_hash_ = 0;   // FNV-1a of that prefix
};

}  // namespace hoiho::io
