// Streaming suffix ingestion (DESIGN.md §12).
//
// The batch pipeline materializes an entire Topology + Measurements before
// Hoiho::run touches the first suffix — fine for the 48-operator bench
// corpus, fatal for ITDK-class inputs (~1.9M hostnames, ~2.8k suffixes, a
// dense router x VP RTT matrix). A SuffixStream inverts that: the source
// emits self-contained batches of whole suffix groups — each batch owns the
// topology slice and RTT rows for just its routers — and the consumer
// (Hoiho::run_stream) processes and frees one batch while the source
// renders the next. Memory is bounded by the batch hostname budget, never
// by the world size.
//
// Sources implement next_batch(); sim::StreamingWorld is the synthetic one,
// and a file-backed ITDK reader can implement the same interface. The
// accumulated io::LoadReport keeps the lenient-ingestion accounting
// contract (records accepted, categorized skips) identical to the batch
// loaders, so `report().publish(registry)` lands streaming ingest in the
// same `ingest_*` counters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "io/load_report.h"
#include "measure/rtt_matrix.h"
#include "topo/topology.h"

namespace hoiho::io {

// One self-contained unit of streamed work: whole suffix groups plus the
// topology and measurements scoped to their routers (RouterIds are local to
// `topology`; `pings` has one row per local router, all sharing the
// campaign-wide VP set). `groups` hold pointers into `topology`, which stay
// valid when the batch is moved; order follows the stream's global suffix
// order, with `first_suffix_index` giving the offset.
struct SuffixBatch {
  std::size_t first_suffix_index = 0;
  std::vector<topo::SuffixGroup> groups;
  topo::Topology topology;
  measure::Measurements pings;

  std::size_t hostname_count() const {
    std::size_t n = 0;
    for (const topo::SuffixGroup& g : groups) n += g.hostnames.size();
    return n;
  }
};

// Helper for implementing SuffixStream::signature(): order-dependent
// FNV-1a mixing of scalar knobs. Mix every knob that shapes the emitted
// batches — seeds, sizes, rates, and the batch budget (batch boundaries ARE
// part of the identity: checkpoints commit whole batches).
class StreamSignature {
 public:
  StreamSignature& mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 1099511628211ULL;  // FNV-1a 64 prime
    }
    return *this;
  }
  StreamSignature& mix(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    return mix(bits);
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 1469598103934665603ULL;  // FNV-1a 64 offset basis
};

// Pull iterator over suffix batches. Implementations decide batch sizing
// (typically a hostname budget: accumulate whole suffixes until the budget
// is met, at least one suffix per batch).
class SuffixStream {
 public:
  virtual ~SuffixStream();

  // The next batch, or nullopt at end of stream. Batches arrive in global
  // suffix order; each suffix appears in exactly one batch.
  virtual std::optional<SuffixBatch> next_batch() = 0;

  // Cumulative ingest accounting across every batch emitted so far:
  // `records` counts accepted hostnames, `lines` rendered candidates, and
  // skips are categorized like the file loaders'. publish() it into a
  // registry for the unified `ingest_*` counters.
  virtual const LoadReport& report() const = 0;

  // Stable fingerprint of the stream's content AND batching: two streams
  // with equal signatures emit identical batch sequences. Keys streaming
  // checkpoints (io/checkpoint) so a resume never replays against a
  // different world. The default 0 means "unidentified" — checkpointing
  // still works but only the learner config guards the resume.
  virtual std::uint64_t signature() const { return 0; }
};

}  // namespace hoiho::io
