// Streaming suffix ingestion (DESIGN.md §12).
//
// The batch pipeline materializes an entire Topology + Measurements before
// Hoiho::run touches the first suffix — fine for the 48-operator bench
// corpus, fatal for ITDK-class inputs (~1.9M hostnames, ~2.8k suffixes, a
// dense router x VP RTT matrix). A SuffixStream inverts that: the source
// emits self-contained batches of whole suffix groups — each batch owns the
// topology slice and RTT rows for just its routers — and the consumer
// (Hoiho::run_stream) processes and frees one batch while the source
// renders the next. Memory is bounded by the batch hostname budget, never
// by the world size.
//
// Sources implement next_batch(); sim::StreamingWorld is the synthetic one,
// and a file-backed ITDK reader can implement the same interface. The
// accumulated io::LoadReport keeps the lenient-ingestion accounting
// contract (records accepted, categorized skips) identical to the batch
// loaders, so `report().publish(registry)` lands streaming ingest in the
// same `ingest_*` counters.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "io/load_report.h"
#include "measure/rtt_matrix.h"
#include "topo/topology.h"

namespace hoiho::io {

// One self-contained unit of streamed work: whole suffix groups plus the
// topology and measurements scoped to their routers (RouterIds are local to
// `topology`; `pings` has one row per local router, all sharing the
// campaign-wide VP set). `groups` hold pointers into `topology`, which stay
// valid when the batch is moved; order follows the stream's global suffix
// order, with `first_suffix_index` giving the offset.
struct SuffixBatch {
  std::size_t first_suffix_index = 0;
  std::vector<topo::SuffixGroup> groups;
  topo::Topology topology;
  measure::Measurements pings;

  std::size_t hostname_count() const {
    std::size_t n = 0;
    for (const topo::SuffixGroup& g : groups) n += g.hostnames.size();
    return n;
  }
};

// Pull iterator over suffix batches. Implementations decide batch sizing
// (typically a hostname budget: accumulate whole suffixes until the budget
// is met, at least one suffix per batch).
class SuffixStream {
 public:
  virtual ~SuffixStream();

  // The next batch, or nullopt at end of stream. Batches arrive in global
  // suffix order; each suffix appears in exactly one batch.
  virtual std::optional<SuffixBatch> next_batch() = 0;

  // Cumulative ingest accounting across every batch emitted so far:
  // `records` counts accepted hostnames, `lines` rendered candidates, and
  // skips are categorized like the file loaders'. publish() it into a
  // registry for the unified `ingest_*` counters.
  virtual const LoadReport& report() const = 0;
};

}  // namespace hoiho::io
