#include "io/suffix_stream.h"

namespace hoiho::io {

// Key function: anchors the vtable so every consumer doesn't emit its own.
SuffixStream::~SuffixStream() = default;

}  // namespace hoiho::io
