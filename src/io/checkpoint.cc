#include "io/checkpoint.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/nc_io.h"
#include "regex/parser.h"
#include "util/csv.h"
#include "util/failpoint.h"
#include "util/strings.h"

namespace hoiho::io {

namespace {

constexpr std::string_view kWalHeader = "# hoiho-geo checkpoint wal v1";
constexpr std::string_view kManifestHeader = "# hoiho-geo checkpoint manifest v1";

std::string hex16(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

bool parse_u64(std::string_view s, std::uint64_t* out) {
  if (s.empty() || s.size() > 20) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

bool parse_hex16(std::string_view s, std::uint64_t* out) {
  if (s.size() != 16) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else return false;
    v = v * 16 + static_cast<std::uint64_t>(d);
  }
  *out = v;
  return true;
}

bool fd_write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

// Atomic small-file rewrite: tmp + fsync + rename + best-effort dir fsync —
// the same discipline as core::save_conventions_to_file, so a crash leaves
// either the old manifest or the new one, never a torn in-between.
bool atomic_write(const std::string& path, std::string_view data, std::string* why) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  auto fail = [&](const std::string& what, bool unlink_tmp) {
    if (why != nullptr) *why = what + ": " + std::strerror(errno);
    if (unlink_tmp) ::unlink(tmp.c_str());
    return false;
  };
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return fail("open '" + tmp + "'", false);
  if (!fd_write_all(fd, data)) {
    ::close(fd);
    return fail("write '" + tmp + "'", true);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return fail("fsync '" + tmp + "'", true);
  }
  if (::close(fd) != 0) return fail("close '" + tmp + "'", true);
  if (::rename(tmp.c_str(), path.c_str()) != 0)
    return fail("rename to '" + path + "'", true);
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

// Serializes one committed batch as a B / X-blocks / C record block (the
// grammar in checkpoint.h). Places are spelled out by name, like nc_io's
// L records, so the WAL survives process restarts.
void append_batch(std::ostream& out, std::size_t batch_index,
                  std::span<const core::SuffixResult> results,
                  const geo::GeoDictionary& dict) {
  util::write_csv_row(out, {"B", std::to_string(batch_index), std::to_string(results.size())});
  for (const core::SuffixResult& r : results) {
    const core::EvalCounts& c = r.eval.counts;
    util::write_csv_row(
        out, {"X", r.suffix, std::string(core::to_string(r.cls)),
              std::to_string(r.hostname_count), std::to_string(r.tagged_count),
              std::to_string(r.eval.regex_unique_tp.size()), std::to_string(c.tp),
              std::to_string(c.fp), std::to_string(c.fn), std::to_string(c.unk),
              std::to_string(c.none), std::to_string(c.budget_exhausted),
              // Trailing content fingerprint (hex16): lets run_delta trust a
              // resumed result's dirtiness without re-reading the world.
              // Absent (12-field X record) in pre-delta WALs; 0 = unknown.
              hex16(r.fingerprint)});
    for (const core::GeoRegex& gr : r.nc.regexes)
      util::write_csv_row(out, {"R", core::plan_to_token(gr.plan), gr.regex.to_string()});
    for (const auto& [key, loc] : r.nc.learned) {
      const geo::Location& l = dict.location(loc);
      util::write_csv_row(out, {"L", std::string(to_string(key.first)), key.second, l.city,
                                l.state, l.country});
    }
    for (const core::LearnedHint& h : r.learned) {
      const geo::Location& l = dict.location(h.location);
      util::write_csv_row(out, {"H", std::string(to_string(h.type)), h.code,
                                std::to_string(h.tp), std::to_string(h.fp),
                                std::to_string(h.existing_tp), l.city, l.state, l.country});
    }
    for (const std::string& code : r.eval.unique_tp_codes)
      util::write_csv_row(out, {"U", code});
    for (std::size_t i = 0; i < r.eval.regex_unique_tp.size(); ++i)
      for (const std::string& code : r.eval.regex_unique_tp[i])
        util::write_csv_row(out, {"V", std::to_string(i), code});
  }
  util::write_csv_row(out, {"C", std::to_string(batch_index)});
}

// Strict parser over the committed WAL prefix. Any deviation — unknown
// record, out-of-order batch index, a place that no longer resolves, counts
// that don't add up — fails the whole load (the caller then discards the
// checkpoint and relearns; a resume must be exact or not happen).
class WalParser {
 public:
  WalParser(const geo::GeoDictionary& dict, std::uint64_t sig) : dict_(dict), sig_(sig) {}

  bool parse(std::string_view wal, std::size_t* batches,
             std::vector<core::SuffixResult>* results, std::string* why) {
    std::size_t pos = 0, lineno = 0;
    bool saw_header = false, saw_sig = false;
    while (pos < wal.size()) {
      const std::size_t eol = wal.find('\n', pos);
      if (eol == std::string_view::npos) return fail(why, "unterminated final line");
      const std::string_view line = wal.substr(pos, eol - pos);
      pos = eol + 1;
      ++lineno;
      if (line.empty()) return fail(why, "blank line " + std::to_string(lineno));
      if (line[0] == '#') {
        if (lineno == 1) {
          if (line != kWalHeader) return fail(why, "bad WAL header");
          saw_header = true;
        } else if (util::starts_with(line, "# sig,")) {
          std::uint64_t sig = 0;
          if (!parse_hex16(line.substr(6), &sig) || sig != sig_)
            return fail(why, "signature mismatch (config or stream changed)");
          saw_sig = true;
        }
        continue;
      }
      if (!saw_header || !saw_sig) return fail(why, "records before WAL header");
      if (!record(util::parse_csv_line(line), lineno, why)) return false;
    }
    if (in_batch_) return fail(why, "uncommitted trailing batch");
    *batches = batches_;
    *results = std::move(results_);
    return true;
  }

 private:
  static bool fail(std::string* why, const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  }

  bool record(const util::CsvRow& row, std::size_t lineno, std::string* why) {
    const std::string where = "wal line " + std::to_string(lineno);
    if (row.empty()) return fail(why, where + ": empty record");
    const std::string& kind = row[0];
    if (kind == "B") {
      std::uint64_t index = 0, count = 0;
      if (in_batch_ || row.size() != 3 || !parse_u64(row[1], &index) ||
          !parse_u64(row[2], &count) || index != batches_)
        return fail(why, where + ": bad batch header");
      in_batch_ = true;
      expected_ = count;
      in_batch_results_ = 0;
      return true;
    }
    if (kind == "C") {
      std::uint64_t index = 0;
      if (!in_batch_ || row.size() != 2 || !parse_u64(row[1], &index) || index != batches_ ||
          in_batch_results_ != expected_)
        return fail(why, where + ": bad commit marker");
      if (!finish_result(why, where)) return false;
      in_batch_ = false;
      ++batches_;
      return true;
    }
    if (!in_batch_) return fail(why, where + ": record outside a batch");
    if (kind == "X") {
      // 12 fields is the pre-delta layout; 13 appends the hex16 content
      // fingerprint. Both load — an old WAL resumes with fingerprint 0
      // (always-dirty for run_delta, which is the safe direction).
      if (row.size() != 12 && row.size() != 13)
        return fail(why, where + ": X record needs 12 or 13 fields");
      if (!finish_result(why, where)) return false;
      core::SuffixResult r;
      r.suffix = row[1];
      const auto cls = core::nc_class_from_token(row[2]);
      std::uint64_t hosts = 0, tagged = 0, sets = 0;
      core::EvalCounts& c = r.eval.counts;
      std::uint64_t tp = 0, fp = 0, fn = 0, unk = 0, none = 0, budget = 0;
      std::uint64_t fingerprint = 0;
      if (!cls || !parse_u64(row[3], &hosts) || !parse_u64(row[4], &tagged) ||
          !parse_u64(row[5], &sets) || !parse_u64(row[6], &tp) || !parse_u64(row[7], &fp) ||
          !parse_u64(row[8], &fn) || !parse_u64(row[9], &unk) || !parse_u64(row[10], &none) ||
          !parse_u64(row[11], &budget) || hosts == 0 || r.suffix.empty() ||
          (row.size() == 13 && !parse_hex16(row[12], &fingerprint)))
        return fail(why, where + ": bad X record");
      r.fingerprint = fingerprint;
      r.cls = *cls;
      r.hostname_count = hosts;
      r.tagged_count = tagged;
      c.tp = tp;
      c.fp = fp;
      c.fn = fn;
      c.unk = unk;
      c.none = none;
      c.budget_exhausted = budget;
      cur_ = std::move(r);
      cur_sets_ = sets;
      have_cur_ = true;
      ++in_batch_results_;
      return true;
    }
    if (!have_cur_) return fail(why, where + ": record before any X record");
    if (kind == "R") {
      if (row.size() != 3) return fail(why, where + ": R record needs 3 fields");
      const auto plan = core::plan_from_token(row[1]);
      if (!plan) return fail(why, where + ": bad plan");
      std::string rx_error;
      const auto regex = rx::parse(row[2], &rx_error);
      if (!regex || regex->capture_count() != plan->roles.size())
        return fail(why, where + ": bad regex: " + rx_error);
      core::GeoRegex gr;
      gr.regex = *regex;
      gr.plan = *plan;
      // The NC's suffix is set iff it has regexes (run_suffix_impl only
      // assigns result.nc once an NC was actually built).
      cur_.nc.suffix = cur_.suffix;
      cur_.nc.regexes.push_back(std::move(gr));
      return true;
    }
    if (kind == "L" || kind == "H") {
      const bool is_hint = kind == "H";
      if (row.size() != (is_hint ? 9u : 6u))
        return fail(why, where + ": " + kind + " record has wrong arity");
      const auto type = core::hint_type_from_token(row[1]);
      if (!type || row[2].empty()) return fail(why, where + ": bad " + kind + " record");
      const std::size_t place = is_hint ? 6 : 3;
      const geo::LocationId loc =
          core::resolve_stored_place(dict_, row[place], row[place + 1], row[place + 2]);
      if (loc == geo::kInvalidLocation)
        return fail(why, where + ": place '" + row[place] + "' no longer resolves");
      if (is_hint) {
        core::LearnedHint h;
        h.type = *type;
        h.code = row[2];
        h.location = loc;
        std::uint64_t tp = 0, fp = 0, existing = 0;
        if (!parse_u64(row[3], &tp) || !parse_u64(row[4], &fp) || !parse_u64(row[5], &existing))
          return fail(why, where + ": bad H counts");
        h.tp = tp;
        h.fp = fp;
        h.existing_tp = existing;
        cur_.learned.push_back(std::move(h));
      } else {
        cur_.nc.learned[core::LearnedKey{*type, row[2]}] = loc;
      }
      return true;
    }
    if (kind == "U") {
      if (row.size() != 2) return fail(why, where + ": U record needs 2 fields");
      cur_.eval.unique_tp_codes.insert(row[1]);
      return true;
    }
    if (kind == "V") {
      std::uint64_t index = 0;
      if (row.size() != 3 || !parse_u64(row[1], &index) || index >= cur_sets_)
        return fail(why, where + ": bad V record");
      cur_.eval.regex_unique_tp.resize(cur_sets_);
      cur_.eval.regex_unique_tp[index].insert(row[2]);
      return true;
    }
    return fail(why, where + ": unknown record type '" + kind + "'");
  }

  // Seals the in-flight X block (called on the next X or the C marker).
  bool finish_result(std::string*, const std::string&) {
    if (!have_cur_) return true;
    cur_.eval.regex_unique_tp.resize(cur_sets_);
    results_.push_back(std::move(cur_));
    cur_ = core::SuffixResult{};
    have_cur_ = false;
    return true;
  }

  const geo::GeoDictionary& dict_;
  std::uint64_t sig_;
  std::size_t batches_ = 0;
  bool in_batch_ = false;
  std::size_t expected_ = 0, in_batch_results_ = 0;
  core::SuffixResult cur_;
  std::uint64_t cur_sets_ = 0;
  bool have_cur_ = false;
  std::vector<core::SuffixResult> results_;
};

}  // namespace

Checkpoint::Checkpoint(std::string dir, std::uint64_t signature, const geo::GeoDictionary& dict)
    : dir_(std::move(dir)), sig_(signature), dict_(dict) {}

Checkpoint::~Checkpoint() {
  if (wal_fd_ >= 0) ::close(wal_fd_);
}

bool Checkpoint::load_existing(Resume* out, std::string* why) {
  // Manifest first: it is the commit point.
  std::string manifest;
  {
    std::ifstream in(dir_ + "/MANIFEST", std::ios::binary);
    if (!in.is_open()) {
      *why = "manifest unreadable";
      return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad()) {
      *why = "manifest read error";
      return false;
    }
    manifest = buf.str();
  }
  std::uint64_t batches = 0, results = 0, wal_bytes = 0, wal_fnv = 0, sig = 0;
  bool have_sig = false, have_batches = false, have_results = false, have_bytes = false,
       have_fnv = false, footer_ok = false;
  {
    std::uint64_t hash = core::kFnvSeed;
    std::size_t pos = 0;
    while (pos < manifest.size()) {
      const std::size_t eol = manifest.find('\n', pos);
      if (eol == std::string::npos) break;  // unterminated tail: not hashed
      const std::string_view line = std::string_view(manifest).substr(pos, eol - pos);
      pos = eol + 1;
      if (const auto stored = core::parse_checksum_footer(line)) {
        footer_ok = *stored == hash && pos == manifest.size();
        break;
      }
      hash = core::fnv1a_hash(line, hash);
      hash = core::fnv1a_hash("\n", hash);
      if (line.empty() || line[0] == '#') continue;
      const util::CsvRow row = util::parse_csv_line(line);
      if (row.size() != 2) continue;
      if (row[0] == "sig") have_sig = parse_hex16(row[1], &sig);
      else if (row[0] == "batches") have_batches = parse_u64(row[1], &batches);
      else if (row[0] == "results") have_results = parse_u64(row[1], &results);
      else if (row[0] == "wal_bytes") have_bytes = parse_u64(row[1], &wal_bytes);
      else if (row[0] == "wal_fnv") have_fnv = parse_hex16(row[1], &wal_fnv);
    }
  }
  if (!footer_ok || !have_sig || !have_batches || !have_results || !have_bytes || !have_fnv) {
    *why = "manifest corrupt (checksum or missing fields)";
    return false;
  }
  if (sig != sig_) {
    *why = "signature mismatch (config or stream changed)";
    return false;
  }

  // Read exactly the committed WAL prefix; a tail beyond it is a torn
  // append from a crash mid-commit and is truncated away below.
  const int fd = ::open((dir_ + "/wal.log").c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) {
    *why = std::string("wal unreadable: ") + std::strerror(errno);
    return false;
  }
  std::string wal(wal_bytes, '\0');
  std::size_t got = 0;
  while (got < wal_bytes) {
    const ssize_t n = ::read(fd, wal.data() + got, wal_bytes - got);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    got += static_cast<std::size_t>(n);
  }
  if (got != wal_bytes) {
    ::close(fd);
    *why = "wal shorter than manifest commit point";
    return false;
  }
  if (core::fnv1a_hash(wal) != wal_fnv) {
    ::close(fd);
    *why = "wal prefix hash mismatch (corrupt log)";
    return false;
  }
  std::size_t parsed_batches = 0;
  std::vector<core::SuffixResult> parsed;
  WalParser parser(dict_, sig_);
  if (!parser.parse(wal, &parsed_batches, &parsed, why)) {
    ::close(fd);
    return false;
  }
  if (parsed_batches != batches || parsed.size() != results) {
    ::close(fd);
    *why = "wal record counts disagree with manifest";
    return false;
  }
  if (::ftruncate(fd, static_cast<off_t>(wal_bytes)) != 0 ||
      ::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    *why = std::string("wal truncate failed: ") + std::strerror(errno);
    return false;
  }

  wal_fd_ = fd;
  batches_ = batches;
  results_ = results;
  wal_bytes_ = wal_bytes;
  wal_hash_ = wal_fnv;
  out->batches = batches;
  out->results = std::move(parsed);
  return true;
}

bool Checkpoint::start_fresh(std::string* why) {
  ::unlink((dir_ + "/wal.log").c_str());
  ::unlink((dir_ + "/MANIFEST").c_str());
  std::string header;
  header += kWalHeader;
  header += "\n# sig,";
  header += hex16(sig_);
  header += '\n';
  const int fd =
      ::open((dir_ + "/wal.log").c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    *why = std::string("cannot create wal: ") + std::strerror(errno);
    return false;
  }
  if (!fd_write_all(fd, header) || ::fsync(fd) != 0) {
    *why = std::string("cannot write wal header: ") + std::strerror(errno);
    ::close(fd);
    return false;
  }
  wal_fd_ = fd;
  batches_ = 0;
  results_ = 0;
  wal_bytes_ = header.size();
  wal_hash_ = core::fnv1a_hash(header);
  return rewrite_manifest(why);
}

bool Checkpoint::rewrite_manifest(std::string* why) {
  std::string body;
  body += kManifestHeader;
  body += '\n';
  body += "sig," + hex16(sig_) + '\n';
  body += "batches," + std::to_string(batches_) + '\n';
  body += "results," + std::to_string(results_) + '\n';
  body += "wal_bytes," + std::to_string(wal_bytes_) + '\n';
  body += "wal_fnv," + hex16(wal_hash_) + '\n';
  body += core::checksum_footer_line(core::fnv1a_hash(body));
  body += '\n';
  return atomic_write(dir_ + "/MANIFEST", body, why);
}

Checkpoint::Resume Checkpoint::open() {
  Resume out;
  ::mkdir(dir_.c_str(), 0755);  // EEXIST is the common case
  const bool existed = ::access((dir_ + "/MANIFEST").c_str(), F_OK) == 0;
  std::string why;
  if (existed) {
    if (load_existing(&out, &why)) {
      ready_ = true;
      return out;
    }
    out = Resume{};
    out.discarded = true;
    out.note = why;
  }
  if (start_fresh(&why)) {
    ready_ = true;
  } else {
    ready_ = false;
    out.note = out.note.empty() ? why : out.note + "; " + why;
  }
  return out;
}

bool Checkpoint::commit_batch(std::span<const core::SuffixResult> results,
                              std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    ready_ = false;  // one failed commit poisons the checkpoint for this run
    return false;
  };
  if (!ready_ || wal_fd_ < 0) return fail("checkpoint not ready");
  if (const auto f = util::failpoint::hit("checkpoint_write")) {
    errno = f.err;
    return fail(std::string("checkpoint write (injected): ") + std::strerror(errno));
  }
  std::ostringstream buf;
  append_batch(buf, batches_, results, dict_);
  const std::string block = buf.str();
  // WAL append is fsynced BEFORE the manifest rename: the manifest must
  // never commit bytes that could still be lost.
  if (!fd_write_all(wal_fd_, block))
    return fail(std::string("wal append: ") + std::strerror(errno));
  if (::fsync(wal_fd_) != 0) return fail(std::string("wal fsync: ") + std::strerror(errno));
  const std::uint64_t new_hash = core::fnv1a_hash(block, wal_hash_);
  const std::uint64_t new_bytes = wal_bytes_ + block.size();
  const std::size_t new_results = results_ + results.size();
  const std::size_t new_batches = batches_ + 1;

  wal_hash_ = new_hash;
  wal_bytes_ = new_bytes;
  results_ = new_results;
  batches_ = new_batches;
  std::string why;
  if (!rewrite_manifest(&why)) {
    // The WAL bytes are on disk but uncommitted; a resume truncates them.
    return fail("manifest rewrite: " + why);
  }
  return true;
}

}  // namespace hoiho::io
