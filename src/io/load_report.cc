#include "io/load_report.h"

namespace hoiho::io {

std::size_t LoadReport::skipped_total() const {
  std::size_t total = 0;
  for (const auto& [category, count] : skipped) total += count;
  return total;
}

std::size_t LoadReport::skipped_count(std::string_view category) const {
  for (const auto& [name, count] : skipped)
    if (name == category) return count;
  return 0;
}

bool LoadReport::skip(const LoadOptions& opt, std::string_view category, std::size_t lineno,
                      std::string detail) {
  if (!opt.lenient) {
    error = "line " + std::to_string(lineno) + ": " + detail;
    return false;
  }
  bool counted = false;
  for (auto& [name, count] : skipped) {
    if (name == category) {
      ++count;
      counted = true;
      break;
    }
  }
  if (!counted) skipped.emplace_back(std::string(category), 1);
  if (diagnostics.size() < opt.max_diagnostics)
    diagnostics.push_back("line " + std::to_string(lineno) + ": " + detail + " [" +
                          std::string(category) + "]");
  return true;
}

void LoadReport::fail(std::string detail) { error = std::move(detail); }

void LoadReport::publish(obs::Registry& registry, std::string_view source) const {
  // Labels are part of the metric name (obs/metrics.h); build them once.
  const std::string src_label =
      source.empty() ? std::string() : ",source=\"" + std::string(source) + "\"";
  const auto name = [&](std::string_view base, std::string_view category) {
    std::string n(base);
    if (category.empty() && src_label.empty()) return n;
    n += '{';
    if (!category.empty()) n += "category=\"" + std::string(category) + "\"";
    if (!src_label.empty()) n += category.empty() ? src_label.substr(1) : src_label;
    n += '}';
    return n;
  };
  registry.counter(name("ingest_lines", {})).add(lines);
  registry.counter(name("ingest_records", {})).add(records);
  for (const auto& [category, count] : skipped)
    registry.counter(name("ingest_skipped", category)).add(count);
  if (!ok()) registry.counter(name("ingest_failures", {})).inc();
}

std::string LoadReport::summary() const {
  if (!ok()) return "failed: " + error;
  std::string out = std::to_string(records) + " records";
  if (skipped.empty()) return out + ", no lines skipped";
  out += ", skipped " + std::to_string(skipped_total()) + " lines (";
  for (std::size_t i = 0; i < skipped.size(); ++i) {
    if (i) out += ", ";
    out += skipped[i].first + "=" + std::to_string(skipped[i].second);
  }
  return out + ")";
}

}  // namespace hoiho::io
