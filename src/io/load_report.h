// Shared lenient-ingestion plumbing for the file loaders.
//
// The pipeline ingests large, messy real-world inputs (ITDK node/name
// files, RTT matrices, geo dictionaries). Historically one malformed line
// aborted the whole load; a LoadReport lets a loader run in lenient mode
// instead — skip the bad record, count it under a category, keep the first
// few diagnostics verbatim — so 5% corruption costs 5% of records, not the
// dataset. Strict mode (the default everywhere) preserves the old
// first-error-fatal contract with the same named errors.
//
//   io::LoadOptions opt;
//   opt.lenient = true;
//   io::LoadReport report;
//   auto topo = topo::read_itdk(nodes, &names, opt, &report);
//   // report.records, report.skipped_total(), report.summary() ...
//
// Caps (max_line_bytes, max_records) are hard limits for untrusted inputs
// and abort the load in both modes — an attacker-sized line or record flood
// should never be "skipped" into an OOM.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace hoiho::io {

struct LoadOptions {
  bool lenient = false;  // false = first bad record is a named, fatal error

  // Hard caps, enforced in both modes (0 = unlimited records).
  std::size_t max_line_bytes = 1 << 20;
  std::size_t max_records = 0;

  // Diagnostics kept verbatim in the report; later skips only count.
  std::size_t max_diagnostics = 8;
};

struct LoadReport {
  std::size_t lines = 0;    // physical lines scanned (incl. blanks/comments)
  std::size_t records = 0;  // records accepted
  // category -> skipped-line count, in first-seen order.
  std::vector<std::pair<std::string, std::size_t>> skipped;
  std::vector<std::string> diagnostics;  // first-N "line L: why [category]"
  std::string error;                     // non-empty = load failed

  bool ok() const { return error.empty(); }
  std::size_t skipped_total() const;
  std::size_t skipped_count(std::string_view category) const;

  // Records one bad line under `category`. Lenient: counts it, keeps the
  // diagnostic if under the cap, returns true (caller skips the record).
  // Strict: sets `error` to "line L: detail" and returns false (caller
  // aborts the load).
  bool skip(const LoadOptions& opt, std::string_view category, std::size_t lineno,
            std::string detail);

  // Unconditionally fatal (caps, stream failure). Sets `error`.
  void fail(std::string detail);

  // One-line human summary: "1900 records, skipped 100 lines
  // (bad_fields=60, bad_number=40)" or "ok, N records".
  std::string summary() const;

  // Folds this report into `registry` as the unified ingest counters
  // (DESIGN.md §11): ingest_lines / ingest_records plus one
  // ingest_skipped{category="..."} counter per skip category — the registry
  // rendering of the `skipped` table, so ingest quality lands in the same
  // snapshot as pipeline and serving metrics. `source`, if non-empty, is
  // added as a source="..." label on every counter. Call once per completed
  // load; counters are cumulative across loads into the same registry.
  void publish(obs::Registry& registry, std::string_view source = {}) const;
};

}  // namespace hoiho::io
