#include "geo/location.h"

#include <algorithm>
#include <cctype>

namespace hoiho::geo {

std::string squash_place_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    unsigned char u = static_cast<unsigned char>(c);
    if (std::isalpha(u)) out.push_back(static_cast<char>(std::tolower(u)));
  }
  return out;
}

std::vector<std::string> place_words(std::string_view name) {
  std::vector<std::string> words;
  std::string cur;
  for (char c : name) {
    unsigned char u = static_cast<unsigned char>(c);
    if (std::isalpha(u)) {
      cur.push_back(static_cast<char>(std::tolower(u)));
    } else if (!cur.empty()) {
      words.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) words.push_back(std::move(cur));
  return words;
}

bool same_country(std::string_view a, std::string_view b) {
  // Case-insensitive compare with the uk==gb mapping, no allocation (this
  // runs once per candidate location in annotation narrowing).
  const auto eq_nocase = [](std::string_view x, std::string_view y) {
    if (x.size() != y.size()) return false;
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(x[i])) !=
          std::tolower(static_cast<unsigned char>(y[i])))
        return false;
    }
    return true;
  };
  const auto canon = [&](std::string_view cc) {
    return eq_nocase(cc, "uk") ? std::string_view("gb") : cc;
  };
  return eq_nocase(canon(a), canon(b));
}

namespace {

// Recursive subsequence match implementing the word-initial rule (§5.4).
// i: next abbrev char; w: current word; j: next candidate position in word w;
// initial: whether word w's first character has been matched.
bool abbrev_rec(std::string_view abbrev, std::size_t i,
                const std::vector<std::string>& words, std::size_t w, std::size_t j,
                bool initial) {
  if (i == abbrev.size()) return true;
  if (w == words.size()) return false;
  // Option 1: abandon the current word and move to the next.
  if (w + 1 < words.size() && abbrev_rec(abbrev, i, words, w + 1, 0, false)) return true;
  // Option 2: match abbrev[i] at some position >= j within the current word.
  const std::string& word = words[w];
  for (std::size_t k = j; k < word.size(); ++k) {
    if (word[k] != abbrev[i]) continue;
    if (k > 0 && !initial) continue;  // word-initial rule
    if (abbrev_rec(abbrev, i + 1, words, w, k + 1, initial || k == 0)) return true;
  }
  return false;
}

// Length of the longest common substring of a and b.
std::size_t longest_common_substring(std::string_view a, std::string_view b) {
  std::size_t best = 0;
  std::vector<std::size_t> prev(b.size() + 1, 0), cur(b.size() + 1, 0);
  for (std::size_t i = 1; i <= a.size(); ++i) {
    for (std::size_t j = 1; j <= b.size(); ++j) {
      cur[j] = (a[i - 1] == b[j - 1]) ? prev[j - 1] + 1 : 0;
      best = std::max(best, cur[j]);
    }
    std::swap(prev, cur);
  }
  return best;
}

}  // namespace

bool is_location_abbrev(std::string_view abbrev, const Location& loc,
                        const AbbrevOptions& opts) {
  if (is_place_abbrev(abbrev, loc.city, opts)) return true;
  if (!loc.state.empty() && is_place_abbrev(abbrev, loc.city + " " + loc.state, opts))
    return true;
  if (!loc.country.empty() && is_place_abbrev(abbrev, loc.city + " " + loc.country, opts))
    return true;
  return false;
}

PlaceAbbrevIndex build_abbrev_index(const Location& loc) {
  PlaceAbbrevIndex idx;
  const auto add_variant = [&](const std::string& name) {
    idx.variant_words.push_back(place_words(name));
    idx.variant_squashed.push_back(squash_place_name(name));
  };
  add_variant(loc.city);
  if (!loc.state.empty()) add_variant(loc.city + " " + loc.state);
  if (!loc.country.empty()) add_variant(loc.city + " " + loc.country);
  return idx;
}

bool is_location_abbrev(std::string_view abbrev, const PlaceAbbrevIndex& idx,
                        const AbbrevOptions& opts) {
  for (std::size_t v = 0; v < idx.variant_words.size(); ++v) {
    if (is_place_abbrev_words(abbrev, idx.variant_words[v], idx.variant_squashed[v], opts))
      return true;
  }
  return false;
}

bool is_place_abbrev_words(std::string_view abbrev, const std::vector<std::string>& words,
                           std::string_view squashed, const AbbrevOptions& opts) {
  if (abbrev.empty() || words.empty()) return false;
  // The first character of the abbreviation must match the first character
  // of the place name.
  if (abbrev[0] != words[0][0]) return false;
  if (!abbrev_rec(abbrev, 0, words, 0, 0, false)) return false;
  if (opts.require_contiguous4) {
    const std::size_t need = std::min<std::size_t>(4, squashed.size());
    if (longest_common_substring(abbrev, squashed) < need) return false;
  }
  return true;
}

bool is_place_abbrev(std::string_view abbrev, std::string_view name,
                     const AbbrevOptions& opts) {
  if (abbrev.empty()) return false;
  const std::vector<std::string> words = place_words(name);
  if (words.empty()) return false;
  const std::string squashed =
      opts.require_contiguous4 ? squash_place_name(name) : std::string();
  return is_place_abbrev_words(abbrev, words, squashed, opts);
}

}  // namespace hoiho::geo
