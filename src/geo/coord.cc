#include "geo/coord.h"

#include <cmath>

namespace hoiho::geo {

namespace {
constexpr double kPi = 3.14159265358979323846;
double deg2rad(double d) { return d * kPi / 180.0; }
}  // namespace

double distance_km(const Coordinate& a, const Coordinate& b) {
  if (!a.valid() || !b.valid()) return 1e9;  // unconstrained
  const double lat1 = deg2rad(a.lat), lat2 = deg2rad(b.lat);
  const double dlat = lat2 - lat1;
  const double dlon = deg2rad(b.lon - a.lon);
  const double s1 = std::sin(dlat / 2), s2 = std::sin(dlon / 2);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(std::min(1.0, h)));
}

double min_rtt_ms(double km) { return 2.0 * km / kFiberSpeedKmPerMs; }

double min_rtt_ms(const Coordinate& a, const Coordinate& b) {
  return min_rtt_ms(distance_km(a, b));
}

double max_distance_km(double rtt_ms) { return rtt_ms * kFiberSpeedKmPerMs / 2.0; }

}  // namespace hoiho::geo
