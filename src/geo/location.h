// Location records and place-name matching.
//
// A Location is the unit of geolocation in this library: a city or town
// (the granularity of the paper's CLLI license) annotated with ISO-3166
// country/state codes, a coordinate, a population, and whether a colocation
// facility is known there (PeeringDB in the paper). Dictionaries (geo/
// dictionary.h) map geohint codes to LocationIds.
//
// This header also implements the abbreviation heuristics of paper §5.4 used
// to learn operator geohints: "ash" ~ "Ashburn", "mlan" ~ "Milan",
// "nyk" ~ "New York" (but not "nwk"), and the >=4-contiguous-characters rule
// for conventions that extract whole city names ("ftcollins" ~ "Fort
// Collins").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "geo/coord.h"

namespace hoiho::geo {

using LocationId = std::uint32_t;
inline constexpr LocationId kInvalidLocation = 0xffffffffu;

struct Location {
  std::string city;            // display name, e.g. "Ashburn" or "New York"
  std::string state;           // ISO-3166-2 subdivision code, lowercase ("va"); may be empty
  std::string country;         // ISO-3166 alpha-2, lowercase ("us")
  Coordinate coord;            // lat/long; may be invalid for unannotated entries
  std::uint64_t population = 0;
  bool has_facility = false;   // a colocation facility is known at this location
};

// Lower-cases and strips non-alphabetic characters: "New York" -> "newyork".
// City-name dictionary keys and hostname city tokens use this form.
std::string squash_place_name(std::string_view name);

// Splits a place name into lower-cased words: "New York" -> {"new","york"}.
std::vector<std::string> place_words(std::string_view name);

// True if country codes refer to the same country. Handles the UK/GB
// equivalence the paper calls out (ISO says GB; operators write uk).
bool same_country(std::string_view a, std::string_view b);

// Options for abbreviation matching (paper §5.4).
struct AbbrevOptions {
  // When the regex plan extracts whole city names, require the abbreviation
  // to share >=4 contiguous characters with the place name.
  bool require_contiguous4 = false;
};

// True if `abbrev` plausibly abbreviates the place `loc` refers to: its
// city name, or the city name followed by the state or country code (the
// community code "wdc" abbreviates "Washington DC", not "Washington").
bool is_location_abbrev(std::string_view abbrev, const Location& loc,
                        const AbbrevOptions& opts = {});

// True if `abbrev` is a plausible abbreviation of place name `name` under
// the paper's heuristics:
//   * every character of `abbrev` appears in `name` in order;
//   * the first character of `abbrev` matches the first character of `name`;
//   * in multi-word names, a word's first letter must be matched before any
//     of its other letters ("nyk" ok for "New York", "nwk" not);
//   * with require_contiguous4, at least one run of 4 contiguous characters
//     of `name` appears contiguously in `abbrev`.
bool is_place_abbrev(std::string_view abbrev, std::string_view name,
                     const AbbrevOptions& opts = {});

// Precomputed form of the name variants is_location_abbrev(Location) tests:
// word splits plus squashed names for the contiguous-4 rule. The learner
// scans the whole atlas once per candidate code, so these are built once per
// location (GeoDictionary does this on add_location) instead of re-splitting
// the place name on every test.
struct PlaceAbbrevIndex {
  std::vector<std::vector<std::string>> variant_words;  // city, city+state, city+country
  std::vector<std::string> variant_squashed;            // parallel to variant_words
};
PlaceAbbrevIndex build_abbrev_index(const Location& loc);

// Equivalent to is_location_abbrev(abbrev, loc, opts) with idx built from
// `loc`, without re-deriving the word splits.
bool is_location_abbrev(std::string_view abbrev, const PlaceAbbrevIndex& idx,
                        const AbbrevOptions& opts = {});

// Core of is_place_abbrev over a precomputed word split; `squashed` is the
// squash_place_name() form of the same name (used only when
// opts.require_contiguous4 is set).
bool is_place_abbrev_words(std::string_view abbrev, const std::vector<std::string>& words,
                           std::string_view squashed, const AbbrevOptions& opts = {});

}  // namespace hoiho::geo
