// Geodesic primitives: coordinates, great-circle distance, and the
// speed-of-light-in-fiber RTT lower bound that the whole method relies on
// (paper §5.2: a geohint is "RTT-consistent" iff for every vantage point
// the theoretical best-case RTT is <= the measured RTT).
#pragma once

namespace hoiho::geo {

// Degrees latitude/longitude. Invalid coordinates are represented by
// Coordinate::invalid() (lat = 999), used for dictionary entries lacking a
// lat/long annotation.
struct Coordinate {
  double lat = 999.0;
  double lon = 999.0;

  static Coordinate invalid() { return Coordinate{}; }
  bool valid() const { return lat >= -90.0 && lat <= 90.0; }

  friend bool operator==(const Coordinate& a, const Coordinate& b) {
    return a.lat == b.lat && a.lon == b.lon;
  }
};

// Mean Earth radius, km.
inline constexpr double kEarthRadiusKm = 6371.0;

// Speed of light in vacuum, km/s.
inline constexpr double kSpeedOfLightKmPerSec = 299792.458;

// Propagation speed in fiber is ~2/3 c (refractive index ~1.5), the constant
// used by CBG and by the paper. In these units light covers ~200 km per
// millisecond one-way, i.e. ~100 km per RTT-millisecond.
inline constexpr double kFiberSpeedKmPerMs = kSpeedOfLightKmPerSec * (2.0 / 3.0) / 1000.0;

// Great-circle distance between two points, km (haversine formula).
double distance_km(const Coordinate& a, const Coordinate& b);

// Theoretical best-case round-trip time in milliseconds over `km` of fiber.
double min_rtt_ms(double km);

// Theoretical best-case RTT between two coordinates, ms.
double min_rtt_ms(const Coordinate& a, const Coordinate& b);

// Maximum distance in km a target can be from a vantage point given a
// measured RTT in ms (the CBG constraint radius).
double max_distance_km(double rtt_ms);

}  // namespace hoiho::geo
