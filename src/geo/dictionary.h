// GeoDictionary: the reference location dictionary of paper §5.1.1.
//
// Maps geohint codes of each type (IATA, ICAO, UN/LOCODE, CLLI prefix, city
// name, facility street address) to Locations annotated with lat/longs,
// ISO-3166 codes, population and facility presence. The paper assembled this
// from OurAirports, GeoNames, UN/LOCODE, a licensed iconectiv CLLI feed, and
// PeeringDB; this library ships an embedded world atlas with the same schema
// (geo/builtin_data.cc) and can load the real feeds from CSV
// (geo/dictionary_io.h).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "geo/location.h"
#include "util/strings.h"

namespace hoiho::geo {

// The dictionary a geohint code is interpreted against. kCountryCode and
// kStateCode are annotation hints that accompany a primary geohint (paper
// figure 6a: "lhr, uk"), or stand alone for operators with a limited
// footprint.
enum class HintType : std::uint8_t {
  kIata,         // 3-letter airport code
  kIcao,         // 4-letter airport code
  kLocode,       // 5-letter UN/LOCODE (2-letter country + 3-letter place)
  kClli,         // 6-letter CLLI prefix (4-letter city + 2-letter state/country)
  kCityName,     // squashed city/town name ("ashburn", "newyork")
  kFacility,     // squashed facility street address ("1118thave", "529bryant")
  kCountryCode,  // ISO-3166 alpha-2 ("us", with uk==gb)
  kStateCode,    // ISO-3166-2 subdivision ("va")
};

// Short stable name for a hint type ("iata", "clli", ...).
std::string_view to_string(HintType t);

// Expected code length for fixed-width hint types; 0 for variable width.
std::size_t code_length(HintType t);

// Codes of every fixed-width type attached to one location, used by the
// synthetic Internet generator and the benches (reverse lookups).
struct LocationCodes {
  std::vector<std::string> iata;
  std::vector<std::string> icao;
  std::vector<std::string> locode;
  std::vector<std::string> clli;
};

class GeoDictionary {
 public:
  GeoDictionary() = default;

  // --- construction -------------------------------------------------------

  // Adds a location record; returns its id. City-name and country/state
  // indexes are updated automatically.
  LocationId add_location(Location loc);

  // Registers `code` (lower-case) of the given fixed-width type for `id`.
  // Ignores codes whose length does not match the type.
  void add_code(HintType type, std::string_view code, LocationId id);

  // Registers a facility street address for `id`; the address is squashed to
  // its alphanumeric characters for lookup ("111 8th Ave" -> "1118thave").
  void add_facility_address(std::string_view address, LocationId id);

  // Registers an extra name for a location (e.g. a local-language name).
  void add_city_alias(std::string_view name, LocationId id);

  // --- lookup -------------------------------------------------------------

  const Location& location(LocationId id) const { return locations_[id]; }
  std::size_t size() const { return locations_.size(); }
  std::span<const Location> all_locations() const { return locations_; }

  // Locations a code maps to under one dictionary; empty if none.
  // For kCityName the code must be in squashed form; for kFacility in
  // squashed-address form. kCountryCode/kStateCode return no locations (use
  // country_known / state_known / matches_country / matches_state).
  std::span<const LocationId> lookup(HintType type, std::string_view code) const;

  // True if `cc` is a known ISO-3166 country code (uk accepted for gb).
  bool country_known(std::string_view cc) const;

  // True if `st` is a known subdivision code of country `cc`.
  bool state_known(std::string_view cc, std::string_view st) const;

  // True if `st` is a known subdivision code of any country.
  bool any_state_known(std::string_view st) const;

  // True if token `cc` names the country of `id` (uk==gb).
  bool matches_country(std::string_view cc, LocationId id) const;

  // True if token `st` names the state of `id`.
  bool matches_state(std::string_view st, LocationId id) const;

  // Reverse lookup: codes registered for a location.
  const LocationCodes& codes(LocationId id) const { return codes_[id]; }

  // Squashed facility addresses registered for a location.
  std::span<const std::string> facility_addresses(LocationId id) const;

  // All locations whose place name `abbrev` plausibly abbreviates (§5.4).
  // Only locations whose name starts with abbrev[0] are tested (the
  // first-char rule), against word splits precomputed at add_location time.
  std::vector<LocationId> abbreviation_candidates(std::string_view abbrev,
                                                  const AbbrevOptions& opts = {}) const;

 private:
  // String maps are probed with string_view keys (transparent hash) so hot
  // lookups don't allocate a canonical copy.
  using CodeMap = std::unordered_map<std::string, std::vector<LocationId>,
                                     util::TransparentStringHash, std::equal_to<>>;
  using CodeSet =
      std::unordered_set<std::string, util::TransparentStringHash, std::equal_to<>>;

  std::vector<Location> locations_;
  std::vector<LocationCodes> codes_;
  std::vector<std::vector<std::string>> facility_addrs_;  // per location
  std::vector<PlaceAbbrevIndex> abbrev_index_;            // per location
  std::array<std::vector<LocationId>, 26> abbrev_first_;  // ids by name first letter

  CodeMap iata_;
  CodeMap icao_;
  CodeMap locode_;
  CodeMap clli_;
  CodeMap city_;
  CodeMap facility_;
  CodeSet countries_;
  CodeSet states_;            // "cc/st"
  CodeSet states_any_;        // "st"

  const CodeMap* map_for(HintType t) const;
  CodeMap* map_for(HintType t);
};

// Returns the dictionary built from the embedded world atlas (~320 real
// cities; see geo/builtin_data.cc). Built once, then shared.
const GeoDictionary& builtin_dictionary();

}  // namespace hoiho::geo
