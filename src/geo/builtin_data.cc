// Embedded world atlas: the library's stand-in for the paper's licensed /
// online dictionary feeds (OurAirports, GeoNames, UN/LOCODE, iconectiv CLLI,
// PeeringDB). See DESIGN.md §2 for the substitution rationale.
//
// Rows are real cities with approximate coordinates and populations, and
// real IATA codes (including metropolitan-area codes such as "lon", "nyc",
// "chi", and the collision examples the paper relies on: "ash" = Nashua NH,
// "gig" = Rio de Janeiro Galeão, "eth" = Eilat, "cpe" = Campeche).
//
// CLLI prefixes and LOCODEs are supplied explicitly where widely known
// (e.g. asbnva, nycmny, londen) and otherwise derived with the documented
// rules below, which mirror how the real code systems are constructed:
//   CLLI   = first four letters of the squashed city name + state code
//            (US/CA) or ISO country code (elsewhere);
//   LOCODE = ISO country code + (IATA code if any, else first three letters
//            of the squashed city name);
//   ICAO   = continent/region letter (K=US, C=CA, E=Europe, ...) + IATA.
// The learning method never depends on which specific string a code is; it
// depends on code *shape* and on code->location->lat/long joins, which these
// rules preserve.

#include "geo/dictionary.h"

#include <cstring>
#include <string>

#include "util/strings.h"

namespace hoiho::geo {

namespace {

struct CityRow {
  const char* city;
  const char* state;    // ISO-3166-2 subdivision (lowercase) or ""
  const char* country;  // ISO-3166 alpha-2 lowercase
  double lat;
  double lon;
  unsigned pop_k;       // approximate population, thousands
  const char* iata;     // comma-separated IATA codes (airport + metro), or ""
  const char* clli;     // explicit 6-letter CLLI prefix, or "" to derive
  bool facility;        // colocation facility known here (PeeringDB stand-in)
};

// clang-format off
constexpr CityRow kCities[] = {
  // --- United States ------------------------------------------------------
  {"New York", "ny", "us", 40.71, -74.01, 8336, "jfk,lga,nyc", "nycmny", true},
  {"Newark", "nj", "us", 40.74, -74.17, 282, "ewr", "nwrknj", true},
  {"Los Angeles", "ca", "us", 34.05, -118.24, 3980, "lax", "lsanca", true},
  {"Chicago", "il", "us", 41.88, -87.63, 2746, "ord,mdw,chi", "chcgil", true},
  {"Houston", "tx", "us", 29.76, -95.37, 2320, "iah,hou", "hstntx", true},
  {"Phoenix", "az", "us", 33.45, -112.07, 1680, "phx", "phnxaz", true},
  {"Philadelphia", "pa", "us", 39.95, -75.17, 1584, "phl", "phlapa", true},
  {"San Antonio", "tx", "us", 29.42, -98.49, 1547, "sat", "snantx", false},
  {"San Diego", "ca", "us", 32.72, -117.16, 1423, "san", "sndgca", true},
  {"Dallas", "tx", "us", 32.78, -96.80, 1343, "dfw,dal", "dllstx", true},
  {"San Jose", "ca", "us", 37.34, -121.89, 1021, "sjc", "snjsca", true},
  {"Austin", "tx", "us", 30.27, -97.74, 978, "aus", "astntx", true},
  {"Jacksonville", "fl", "us", 30.33, -81.66, 911, "jax", "jcvlfl", false},
  {"Fort Worth", "tx", "us", 32.76, -97.33, 909, "ftw", "frwotx", false},
  {"Columbus", "oh", "us", 39.96, -83.00, 898, "cmh", "clmboh", true},
  {"San Francisco", "ca", "us", 37.77, -122.42, 881, "sfo", "snfcca", true},
  {"Charlotte", "nc", "us", 35.23, -80.84, 885, "clt", "chrlnc", false},
  {"Indianapolis", "in", "us", 39.77, -86.16, 876, "ind", "ipslin", false},
  {"Seattle", "wa", "us", 47.61, -122.33, 744, "sea", "sttlwa", true},
  {"Denver", "co", "us", 39.74, -104.99, 727, "den", "dnvrco", true},
  {"Washington", "dc", "us", 38.91, -77.04, 705, "dca,iad,was", "washdc", true},
  {"Boston", "ma", "us", 42.36, -71.06, 692, "bos", "bstnma", true},
  {"Nashville", "tn", "us", 36.16, -86.78, 670, "bna", "nsvltn", false},
  {"El Paso", "tx", "us", 31.76, -106.49, 682, "elp", "elpstx", false},
  {"Detroit", "mi", "us", 42.33, -83.05, 670, "dtw,dtt", "dtrtmi", true},
  {"Oklahoma City", "ok", "us", 35.47, -97.52, 655, "okc", "okcyok", false},
  {"Portland", "or", "us", 45.52, -122.68, 654, "pdx", "ptldor", true},
  {"Las Vegas", "nv", "us", 36.17, -115.14, 651, "las", "lsvgnv", true},
  {"Memphis", "tn", "us", 35.15, -90.05, 651, "mem", "mmphtn", false},
  {"Louisville", "ky", "us", 38.25, -85.76, 620, "sdf", "lsvlky", false},
  {"Baltimore", "md", "us", 39.29, -76.61, 593, "bwi", "bltmmd", false},
  {"Milwaukee", "wi", "us", 43.04, -87.91, 590, "mke", "mlwkwi", false},
  {"Albuquerque", "nm", "us", 35.08, -106.65, 561, "abq", "albqnm", false},
  {"Tucson", "az", "us", 32.22, -110.97, 548, "tus", "tcsnaz", false},
  {"Fresno", "ca", "us", 36.74, -119.79, 531, "fat", "frsnca", false},
  {"Sacramento", "ca", "us", 38.58, -121.49, 513, "smf", "scrmca", true},
  {"Kansas City", "mo", "us", 39.10, -94.58, 495, "mci,mkc", "kscymo", true},
  {"Mesa", "az", "us", 33.42, -111.83, 518, "", "mesaaz", false},
  {"Atlanta", "ga", "us", 33.75, -84.39, 506, "atl", "atlnga", true},
  {"Omaha", "ne", "us", 41.26, -95.94, 478, "oma", "omahne", false},
  {"Colorado Springs", "co", "us", 38.83, -104.82, 478, "cos", "clspco", false},
  {"Raleigh", "nc", "us", 35.78, -78.64, 474, "rdu", "ralgnc", false},
  {"Miami", "fl", "us", 25.76, -80.19, 467, "mia", "miamfl", true},
  {"Long Beach", "ca", "us", 33.77, -118.19, 462, "lgb", "lnbhca", false},
  {"Virginia Beach", "va", "us", 36.85, -75.98, 450, "orf", "vabhva", false},
  {"Oakland", "ca", "us", 37.80, -122.27, 433, "oak", "oklnca", false},
  {"Minneapolis", "mn", "us", 44.98, -93.27, 429, "msp", "mplsmn", true},
  {"Tulsa", "ok", "us", 36.15, -95.99, 401, "tul", "tulsok", false},
  {"Tampa", "fl", "us", 27.95, -82.46, 399, "tpa", "tampfl", true},
  {"Arlington", "tx", "us", 32.74, -97.11, 398, "", "arlntx", false},
  {"New Orleans", "la", "us", 29.95, -90.07, 390, "msy", "nworla", false},
  {"Wichita", "ks", "us", 37.69, -97.34, 390, "ict", "wchtks", false},
  {"Cleveland", "oh", "us", 41.50, -81.69, 381, "cle", "clevoh", true},
  {"Bakersfield", "ca", "us", 35.37, -119.02, 380, "bfl", "bkfdca", false},
  {"Aurora", "co", "us", 39.73, -104.83, 379, "", "aurrco", false},
  {"Anaheim", "ca", "us", 33.84, -117.91, 352, "", "anhmca", false},
  {"Honolulu", "hi", "us", 21.31, -157.86, 345, "hnl", "hnluhi", false},
  {"Santa Ana", "ca", "us", 33.75, -117.87, 332, "sna", "snanca", false},
  {"Riverside", "ca", "us", 33.95, -117.40, 331, "ral", "rvsdca", false},
  {"Corpus Christi", "tx", "us", 27.80, -97.40, 326, "crp", "crchtx", false},
  {"Lexington", "ky", "us", 38.04, -84.50, 323, "lex", "lxtnky", false},
  {"Stockton", "ca", "us", 37.96, -121.29, 312, "sck", "stknca", false},
  {"Pittsburgh", "pa", "us", 40.44, -80.00, 300, "pit", "ptbgpa", true},
  {"Saint Louis", "mo", "us", 38.63, -90.20, 300, "stl", "stlsmo", true},
  {"Cincinnati", "oh", "us", 39.10, -84.51, 303, "cvg", "cnctoh", false},
  {"Anchorage", "ak", "us", 61.22, -149.90, 291, "anc", "anchak", false},
  {"Henderson", "nv", "us", 36.04, -114.98, 310, "hnd", "hndsnv", false},
  {"Greensboro", "nc", "us", 36.07, -79.79, 296, "gso", "grbonc", false},
  {"Plano", "tx", "us", 33.02, -96.70, 285, "", "plnotx", false},
  {"Lincoln", "ne", "us", 40.81, -96.70, 289, "lnk", "lncnne", false},
  {"Orlando", "fl", "us", 28.54, -81.38, 287, "mco,orl", "orldfl", true},
  {"Irvine", "ca", "us", 33.68, -117.83, 287, "", "irvnca", false},
  {"Toledo", "oh", "us", 41.65, -83.54, 275, "tol", "tldooh", false},
  {"Jersey City", "nj", "us", 40.73, -74.08, 262, "", "jrcynj", false},
  {"Chula Vista", "ca", "us", 32.64, -117.08, 271, "", "chvsca", false},
  {"Durham", "nc", "us", 35.99, -78.90, 278, "", "drhmnc", false},
  {"Fort Wayne", "in", "us", 41.08, -85.14, 270, "fwa", "frwain", false},
  {"Buffalo", "ny", "us", 42.89, -78.88, 255, "buf", "bflony", false},
  {"Chandler", "az", "us", 33.31, -111.84, 261, "", "chndaz", false},
  {"Madison", "wi", "us", 43.07, -89.40, 259, "msn", "mdsnwi", false},
  {"Laredo", "tx", "us", 27.51, -99.51, 262, "lrd", "lrdotx", false},
  {"Lubbock", "tx", "us", 33.58, -101.86, 258, "lbb", "lbbktx", false},
  {"Scottsdale", "az", "us", 33.49, -111.93, 258, "sdl", "sctdaz", false},
  {"Reno", "nv", "us", 39.53, -119.81, 255, "rno", "renonv", true},
  {"Glendale", "az", "us", 33.54, -112.19, 252, "", "glndaz", false},
  {"Boise", "id", "us", 43.62, -116.20, 228, "boi", "boisid", false},
  {"Richmond", "va", "us", 37.54, -77.44, 230, "ric", "rchmva", true},
  {"Spokane", "wa", "us", 47.66, -117.43, 222, "geg", "spknwa", false},
  {"Rochester", "ny", "us", 43.16, -77.61, 206, "roc", "rchsny", false},
  {"Salt Lake City", "ut", "us", 40.76, -111.89, 200, "slc", "slkcut", true},
  {"Tacoma", "wa", "us", 47.25, -122.44, 217, "", "tacmwa", false},
  {"Fremont", "ca", "us", 37.55, -121.99, 241, "", "frmtca", true},
  {"Santa Clara", "ca", "us", 37.35, -121.96, 130, "", "snclca", true},
  {"Palo Alto", "ca", "us", 37.44, -122.14, 66, "pao", "plalca", true},
  {"Eugene", "or", "us", 44.05, -123.09, 172, "eug", "eugnor", false},
  {"Des Moines", "ia", "us", 41.59, -93.62, 215, "dsm", "dsmnia", false},
  {"Montgomery", "al", "us", 32.38, -86.31, 199, "mgm", "mngmal", false},
  {"Birmingham", "al", "us", 33.52, -86.81, 209, "bhm", "brhmal", false},
  {"Little Rock", "ar", "us", 34.75, -92.29, 198, "lit", "ltrkar", false},
  {"Albany", "ny", "us", 42.65, -73.75, 97, "alb", "albyny", false},
  {"Syracuse", "ny", "us", 43.05, -76.15, 143, "syr", "srcsny", false},
  {"Hartford", "ct", "us", 41.77, -72.67, 122, "bdl,hfd", "hrfdct", false},
  {"Providence", "ri", "us", 41.82, -71.41, 179, "pvd", "prvdri", false},
  {"Manchester", "nh", "us", 42.99, -71.45, 112, "mht", "mncsnh", false},
  {"Nashua", "nh", "us", 42.77, -71.47, 89, "ash", "nashnh", false},
  {"Ashburn", "va", "us", 39.04, -77.49, 43, "", "asbnva", true},
  {"Ashburn", "ga", "us", 31.71, -83.65, 4, "", "asbnga", false},
  {"Ashland", "va", "us", 37.76, -77.48, 7, "", "ashlva", false},
  {"Ashland", "or", "us", 42.19, -122.71, 21, "", "ashlor", false},
  {"Reston", "va", "us", 38.96, -77.36, 62, "", "rstnva", true},
  {"Vienna", "va", "us", 38.90, -77.27, 16, "", "vinnva", true},
  {"McLean", "va", "us", 38.93, -77.18, 50, "", "mclnva", false},
  {"College Park", "md", "us", 38.99, -76.94, 32, "cgs", "clpkmd", false},
  {"Chico", "ca", "us", 39.73, -121.84, 103, "cic", "chicca", false},
  {"Santa Rosa", "ca", "us", 38.44, -122.71, 178, "sts", "snrsca", false},
  {"Billings", "mt", "us", 45.78, -108.50, 110, "bil", "blngmt", false},
  {"Fargo", "nd", "us", 46.88, -96.79, 125, "far", "fargnd", false},
  {"Sioux Falls", "sd", "us", 43.55, -96.73, 192, "fsd", "sxflsd", false},
  {"Charleston", "sc", "us", 32.78, -79.93, 150, "chs", "chtnsc", false},
  {"Charleston", "wv", "us", 38.35, -81.63, 46, "crw", "chtnwv", false},
  {"Savannah", "ga", "us", 32.08, -81.09, 147, "sav", "svnhga", false},
  {"Knoxville", "tn", "us", 35.96, -83.92, 190, "tys", "knvltn", false},
  {"Chattanooga", "tn", "us", 35.05, -85.31, 182, "cha", "chtntn", false},
  {"Jackson", "ms", "us", 32.30, -90.18, 154, "jan", "jcsnms", false},
  {"Baton Rouge", "la", "us", 30.45, -91.19, 222, "btr", "btrgla", false},
  {"Shreveport", "la", "us", 32.52, -93.75, 188, "shv", "shptla", false},
  {"Mobile", "al", "us", 30.69, -88.04, 188, "mob", "mobial", false},
  {"Huntsville", "al", "us", 34.73, -86.59, 215, "hsv", "hnvlal", false},
  {"Columbia", "sc", "us", 34.00, -81.03, 137, "cae", "clmbsc", false},
  {"Augusta", "ga", "us", 33.47, -81.97, 202, "ags", "agstga", false},
  {"Gainesville", "fl", "us", 29.65, -82.32, 141, "gnv", "gnvlfl", false},
  {"Tallahassee", "fl", "us", 30.44, -84.28, 196, "tlh", "tlhsfl", false},
  {"Pensacola", "fl", "us", 30.42, -87.22, 54, "pns", "pnscfl", false},
  {"Fort Lauderdale", "fl", "us", 26.12, -80.14, 182, "fll", "frldfl", false},
  {"West Palm Beach", "fl", "us", 26.71, -80.05, 117, "pbi", "wpbhfl", false},
  {"Sarasota", "fl", "us", 27.34, -82.53, 58, "srq", "srstfl", false},
  {"Daytona Beach", "fl", "us", 29.21, -81.02, 72, "dab", "dybhfl", false},
  {"Melbourne", "fl", "us", 28.08, -80.61, 84, "mlb", "mlbnfl", false},
  {"Ocala", "fl", "us", 29.19, -82.14, 63, "ocf", "ocalfl", false},
  {"Richardson", "tx", "us", 32.95, -96.73, 121, "", "rchdtx", true},
  {"Brecksville", "oh", "us", 41.32, -81.63, 13, "", "brkvoh", false},
  {"Herndon", "va", "us", 38.97, -77.39, 24, "", "hrndva", true},
  {"Secaucus", "nj", "us", 40.79, -74.06, 22, "", "sccsnj", true},
  {"Piscataway", "nj", "us", 40.55, -74.46, 60, "", "psctnj", false},
  {"Pennsauken", "nj", "us", 39.96, -75.06, 37, "", "pnsknj", false},
  {"Cheyenne", "wy", "us", 41.14, -104.82, 65, "cys", "chynwy", false},
  {"Prineville", "or", "us", 44.30, -120.83, 11, "", "prnvor", false},
  {"Forest City", "nc", "us", 35.33, -81.87, 7, "", "frcync", false},
  {"Altoona", "ia", "us", 41.65, -93.46, 21, "", "altnia", false},
  {"Papillion", "ne", "us", 41.15, -96.04, 24, "", "pplnne", false},
  {"New Albany", "oh", "us", 40.08, -82.81, 11, "", "nwaboh", false},
  {"Eemshaven", "", "nl", 53.45, 6.83, 1, "", "", false},
  {"Clonee", "", "ie", 53.41, -6.44, 10, "", "", false},
  {"Lulea", "", "se", 65.58, 22.15, 78, "lla", "", false},
  {"Odense", "", "dk", 55.40, 10.40, 180, "ode", "", false},
  // --- Canada ---------------------------------------------------------------
  {"Toronto", "on", "ca", 43.65, -79.38, 2930, "yyz,ytz,yto", "toroon", true},
  {"Montreal", "qc", "ca", 45.50, -73.57, 1780, "yul,ymq", "mtrlpq", true},
  {"Vancouver", "bc", "ca", 49.28, -123.12, 675, "yvr", "vancbc", true},
  {"Calgary", "ab", "ca", 51.05, -114.07, 1336, "yyc", "clgrab", true},
  {"Edmonton", "ab", "ca", 53.55, -113.49, 1010, "yeg", "edmtab", false},
  {"Ottawa", "on", "ca", 45.42, -75.70, 1017, "yow", "ottwon", false},
  {"Winnipeg", "mb", "ca", 49.90, -97.14, 749, "ywg", "wnpgmb", false},
  {"Quebec City", "qc", "ca", 46.81, -71.21, 549, "yqb", "qbecpq", false},
  {"Halifax", "ns", "ca", 44.65, -63.58, 439, "yhz", "hlfxns", false},
  {"Saskatoon", "sk", "ca", 52.13, -106.67, 273, "yxe", "ssktsk", false},
  {"London", "on", "ca", 42.98, -81.25, 404, "yxu", "london", false},
  // --- Europe ---------------------------------------------------------------
  {"London", "", "gb", 51.51, -0.13, 8982, "lhr,lgw,stn,ltn,lcy,lon", "londen", true},
  {"Manchester", "", "gb", 53.48, -2.24, 553, "man", "mnchen", true},
  {"Birmingham", "", "gb", 52.49, -1.89, 1141, "bhx", "brhmen", false},
  {"Leeds", "", "gb", 53.80, -1.55, 793, "lba", "leeden", false},
  {"Glasgow", "", "gb", 55.86, -4.25, 633, "gla", "glgwsc", false},
  {"Edinburgh", "", "gb", 55.95, -3.19, 524, "edi", "ednbsc", false},
  {"Bristol", "", "gb", 51.45, -2.59, 463, "brs", "brsten", false},
  {"Liverpool", "", "gb", 53.41, -2.99, 498, "lpl", "lvplen", false},
  {"Newcastle", "", "gb", 54.98, -1.61, 300, "ncl", "ncsten", false},
  {"Cambridge", "", "gb", 52.21, 0.12, 124, "cbg", "cmbren", false},
  {"Slough", "", "gb", 51.51, -0.59, 164, "", "slghen", true},
  {"Dublin", "", "ie", 53.35, -6.26, 554, "dub", "dblnir", true},
  {"Cork", "", "ie", 51.90, -8.47, 210, "ork", "corkir", false},
  {"Paris", "", "fr", 48.86, 2.35, 2161, "cdg,ory,par", "parsfr", true},
  {"Marseille", "", "fr", 43.30, 5.37, 870, "mrs", "mrslfr", true},
  {"Lyon", "", "fr", 45.76, 4.84, 516, "lys", "lyonfr", false},
  {"Toulouse", "", "fr", 43.60, 1.44, 493, "tls", "tlsefr", false},
  {"Nice", "", "fr", 43.70, 7.27, 342, "nce", "nicefr", false},
  {"Bordeaux", "", "fr", 44.84, -0.58, 257, "bod", "brdxfr", false},
  {"Nantes", "", "fr", 47.22, -1.55, 314, "nte", "nntsfr", false},
  {"Strasbourg", "", "fr", 48.57, 7.75, 280, "sxb", "strsfr", false},
  {"Lille", "", "fr", 50.63, 3.07, 233, "lil", "lillfr", false},
  {"Frankfurt", "", "de", 50.11, 8.68, 753, "fra", "frntge", true},
  {"Berlin", "", "de", 52.52, 13.41, 3645, "ber,txl,sxf", "brlnge", true},
  {"Munich", "", "de", 48.14, 11.58, 1472, "muc", "mnchge", true},
  {"Hamburg", "", "de", 53.55, 9.99, 1841, "ham", "hmbgge", true},
  {"Cologne", "", "de", 50.94, 6.96, 1086, "cgn", "clgnge", false},
  {"Dusseldorf", "", "de", 51.23, 6.77, 619, "dus", "dsslge", true},
  {"Stuttgart", "", "de", 48.78, 9.18, 634, "str", "sttgge", false},
  {"Dresden", "", "de", 51.05, 13.74, 554, "drs", "drsdge", false},
  {"Leipzig", "", "de", 51.34, 12.37, 587, "lej", "lpzgge", false},
  {"Nuremberg", "", "de", 49.45, 11.08, 518, "nue", "nrmbge", false},
  {"Hanover", "", "de", 52.38, 9.73, 538, "haj", "hnvrge", false},
  {"Dortmund", "", "de", 51.51, 7.47, 587, "dtm", "drtmge", false},
  {"Essen", "", "de", 51.46, 7.01, 583, "ess", "essnge", false},
  {"Bremen", "", "de", 53.08, 8.80, 569, "bre", "brmnge", false},
  {"Amsterdam", "", "nl", 52.37, 4.90, 872, "ams", "amstnl", true},
  {"Rotterdam", "", "nl", 51.92, 4.48, 651, "rtm", "rttdnl", false},
  {"The Hague", "", "nl", 52.08, 4.30, 545, "hag", "thgenl", false},
  {"Eindhoven", "", "nl", 51.44, 5.47, 235, "ein", "endhnl", false},
  {"Utrecht", "", "nl", 52.09, 5.12, 357, "utc", "utrcnl", false},
  {"Groningen", "", "nl", 53.22, 6.57, 233, "grq", "grngnl", false},
  {"Haarlem", "", "nl", 52.38, 4.64, 161, "", "hrlmnl", false},
  {"Helmond", "", "nl", 51.48, 5.66, 92, "", "hlmdnl", false},
  {"Hilversum", "", "nl", 52.22, 5.17, 90, "", "hlvsnl", false},
  {"Brussels", "", "be", 50.85, 4.35, 1209, "bru", "brssbe", true},
  {"Antwerp", "", "be", 51.22, 4.40, 523, "anr", "antwbe", false},
  {"Ghent", "", "be", 51.05, 3.72, 263, "", "ghntbe", false},
  {"Luxembourg", "", "lu", 49.61, 6.13, 125, "lux", "lxmblu", false},
  {"Zurich", "", "ch", 47.37, 8.54, 415, "zrh", "zrchsz", true},
  {"Geneva", "", "ch", 46.20, 6.14, 201, "gva", "gnvasz", true},
  {"Basel", "", "ch", 47.56, 7.59, 178, "bsl", "bslesz", false},
  {"Bern", "", "ch", 46.95, 7.45, 134, "brn", "bernsz", false},
  {"Vienna", "", "at", 48.21, 16.37, 1897, "vie", "vinnau", true},
  {"Graz", "", "at", 47.07, 15.44, 291, "grz", "grazau", false},
  {"Prague", "", "cz", 50.08, 14.44, 1309, "prg", "prgucz", true},
  {"Brno", "", "cz", 49.20, 16.61, 381, "brq", "brnocz", false},
  {"Bratislava", "", "sk", 48.15, 17.11, 433, "bts", "brtssk", false},
  {"Warsaw", "", "pl", 52.23, 21.01, 1790, "waw", "wrswpl", true},
  {"Krakow", "", "pl", 50.06, 19.94, 780, "krk", "krkwpl", false},
  {"Wroclaw", "", "pl", 51.11, 17.03, 643, "wro", "wrclpl", false},
  {"Poznan", "", "pl", 52.41, 16.93, 534, "poz", "pznnpl", false},
  {"Gdansk", "", "pl", 54.35, 18.65, 470, "gdn", "gdnkpl", false},
  {"Budapest", "", "hu", 47.50, 19.04, 1752, "bud", "bdpshu", true},
  {"Bucharest", "", "ro", 44.43, 26.10, 1883, "otp,buh", "bchrro", true},
  {"Sofia", "", "bg", 42.70, 23.32, 1236, "sof", "sofibu", true},
  {"Zagreb", "", "hr", 45.81, 15.98, 806, "zag", "zgrbhr", false},
  {"Belgrade", "", "rs", 44.79, 20.45, 1166, "beg", "blgdrs", false},
  {"Ljubljana", "", "si", 46.06, 14.51, 295, "lju", "ljblsi", false},
  {"Athens", "", "gr", 37.98, 23.73, 664, "ath", "athngr", true},
  {"Thessaloniki", "", "gr", 40.64, 22.94, 315, "skg", "thslgr", false},
  {"Istanbul", "", "tr", 41.01, 28.98, 15460, "ist,saw", "istntu", true},
  {"Ankara", "", "tr", 39.93, 32.86, 5445, "esb", "ankrtu", false},
  {"Rome", "", "it", 41.90, 12.50, 2873, "fco,cia,rom", "romeit", true},
  {"Milan", "", "it", 45.46, 9.19, 1372, "mxp,lin,mil", "milnit", true},
  {"Naples", "", "it", 40.85, 14.27, 967, "nap", "nplsit", false},
  {"Turin", "", "it", 45.07, 7.69, 886, "trn", "turnit", false},
  {"Palermo", "", "it", 38.12, 13.36, 674, "pmo", "plrmit", false},
  {"Bologna", "", "it", 44.49, 11.34, 389, "blq", "blgnit", false},
  {"Florence", "", "it", 43.77, 11.26, 383, "flr", "flrnit", false},
  {"Venice", "", "it", 45.44, 12.32, 261, "vce", "vencit", false},
  {"Montesilvano Marina", "", "it", 42.51, 14.15, 46, "", "mntsit", false},
  {"Madrid", "", "es", 40.42, -3.70, 3223, "mad", "mdrdsp", true},
  {"Barcelona", "", "es", 41.39, 2.17, 1620, "bcn", "brclsp", true},
  {"Valencia", "", "es", 39.47, -0.38, 791, "vlc", "vlncsp", false},
  {"Seville", "", "es", 37.39, -5.98, 688, "svq", "svllsp", false},
  {"Bilbao", "", "es", 43.26, -2.93, 345, "bio", "blbosp", false},
  {"Lisbon", "", "pt", 38.72, -9.14, 505, "lis", "lsbnpo", true},
  {"Porto", "", "pt", 41.15, -8.61, 237, "opo", "portpo", false},
  {"Stockholm", "", "se", 59.33, 18.07, 975, "arn,bma,sto", "stkhsw", true},
  {"Gothenburg", "", "se", 57.71, 11.97, 583, "got", "gthbsw", false},
  {"Malmo", "", "se", 55.60, 13.00, 344, "mmx", "mlmosw", false},
  {"Oslo", "", "no", 59.91, 10.75, 693, "osl", "oslono", true},
  {"Bergen", "", "no", 60.39, 5.32, 284, "bgo", "brgnno", false},
  {"Copenhagen", "", "dk", 55.68, 12.57, 794, "cph", "cpnhdk", true},
  {"Helsinki", "", "fi", 60.17, 24.94, 656, "hel", "hlsnfi", true},
  {"Reykjavik", "", "is", 64.15, -21.94, 131, "kef,rek", "rkjvic", false},
  {"Riga", "", "lv", 56.95, 24.11, 632, "rix", "rigalv", false},
  {"Vilnius", "", "lt", 54.69, 25.28, 588, "vno", "vlnslt", false},
  {"Tallinn", "", "ee", 59.44, 24.75, 437, "tll", "tllnee", false},
  {"Kyiv", "", "ua", 50.45, 30.52, 2962, "kbp,iev", "kyivua", false},
  {"Moscow", "", "ru", 55.76, 37.62, 12506, "svo,dme,mow", "mscwru", true},
  {"Saint Petersburg", "", "ru", 59.93, 30.34, 5384, "led", "stptru", false},
  // --- Asia-Pacific ----------------------------------------------------------
  {"Tokyo", "", "jp", 35.68, 139.69, 13960, "nrt,hnd,tyo", "tokyjp", true},
  {"Osaka", "", "jp", 34.69, 135.50, 2691, "kix,itm,osa", "osakjp", true},
  {"Nagoya", "", "jp", 35.18, 136.91, 2296, "ngo", "ngoyjp", false},
  {"Fukuoka", "", "jp", 33.59, 130.40, 1539, "fuk", "fkokjp", false},
  {"Sapporo", "", "jp", 43.06, 141.35, 1953, "cts,spk", "spprjp", false},
  {"Sendai", "", "jp", 38.27, 140.87, 1089, "sdj", "sendjp", false},
  {"Hiroshima", "", "jp", 34.39, 132.46, 1194, "hij", "hrsmjp", false},
  {"Tokuyama", "", "jp", 34.05, 131.81, 140, "", "tkymjp", false},
  {"Seoul", "", "kr", 37.57, 126.98, 9776, "icn,gmp,sel", "seolko", true},
  {"Busan", "", "kr", 35.18, 129.08, 3449, "pus", "busnko", false},
  {"Beijing", "", "cn", 39.90, 116.41, 21540, "pek,pkx,bjs", "bjngch", true},
  {"Shanghai", "", "cn", 31.23, 121.47, 24280, "pvg,sha", "shngch", true},
  {"Guangzhou", "", "cn", 23.13, 113.26, 14900, "can", "gngzch", false},
  {"Shenzhen", "", "cn", 22.54, 114.06, 12530, "szx", "shzhch", false},
  {"Chengdu", "", "cn", 30.57, 104.07, 16330, "ctu", "chngch", false},
  {"Hong Kong", "", "hk", 22.32, 114.17, 7482, "hkg", "hknghk", true},
  {"Taipei", "", "tw", 25.03, 121.57, 2646, "tpe,tsa", "tapetw", true},
  {"Singapore", "", "sg", 1.35, 103.82, 5686, "sin", "sngpsi", true},
  {"Kuala Lumpur", "", "my", 3.14, 101.69, 1808, "kul", "klmpmy", true},
  {"Kuala Selangor", "", "my", 3.34, 101.25, 221, "", "kslrmy", false},
  {"Bangkok", "", "th", 13.76, 100.50, 10539, "bkk,dmk", "bngkth", true},
  {"Jakarta", "", "id", -6.21, 106.85, 10562, "cgk,hlp,jkt", "jkrtid", true},
  {"Manila", "", "ph", 14.60, 120.98, 1780, "mnl", "mnilph", true},
  {"Ho Chi Minh City", "", "vn", 10.82, 106.63, 8993, "sgn", "hchmvn", false},
  {"Hanoi", "", "vn", 21.03, 105.85, 8054, "han", "hanovn", false},
  {"Delhi", "", "in", 28.70, 77.10, 16788, "del", "delhin", true},
  {"Mumbai", "", "in", 19.08, 72.88, 12442, "bom", "mmbain", true},
  {"Chennai", "", "in", 13.08, 80.27, 7088, "maa", "chnnin", true},
  {"Bangalore", "", "in", 12.97, 77.59, 8443, "blr", "bnglin", false},
  {"Hyderabad", "", "in", 17.39, 78.49, 6810, "hyd", "hydrin", false},
  {"Kolkata", "", "in", 22.57, 88.36, 4497, "ccu", "klktin", false},
  {"Karachi", "", "pk", 24.86, 67.00, 14910, "khi", "krchpk", false},
  {"Dhaka", "", "bd", 23.81, 90.41, 8906, "dac", "dhakbd", false},
  {"Colombo", "", "lk", 6.93, 79.85, 753, "cmb", "clmblk", false},
  {"Sydney", "nsw", "au", -33.87, 151.21, 5312, "syd", "sydnau", true},
  {"Melbourne", "vic", "au", -37.81, 144.96, 5078, "mel", "mlbnau", true},
  {"Brisbane", "qld", "au", -27.47, 153.03, 2514, "bne", "brsbau", true},
  {"Perth", "wa", "au", -31.95, 115.86, 2059, "per", "pertau", true},
  {"Adelaide", "sa", "au", -34.93, 138.60, 1345, "adl", "adldau", false},
  {"Canberra", "act", "au", -35.28, 149.13, 426, "cbr", "cnbrau", false},
  {"Hobart", "tas", "au", -42.88, 147.33, 240, "hba", "hbrtau", false},
  {"Darwin", "nt", "au", -12.46, 130.84, 147, "drw", "drwnau", false},
  {"Auckland", "", "nz", -36.85, 174.76, 1571, "akl", "aklnnz", true},
  {"Wellington", "", "nz", -41.29, 174.78, 212, "wlg", "wlgtnz", false},
  {"Christchurch", "", "nz", -43.53, 172.64, 381, "chc", "chchnz", false},
  {"Hamilton", "", "nz", -37.79, 175.28, 176, "hlz", "hmltnz", false},
  // --- Latin America ---------------------------------------------------------
  {"Sao Paulo", "", "br", -23.55, -46.63, 12330, "gru,cgh,sao", "soplbr", true},
  {"Rio de Janeiro", "", "br", -22.91, -43.17, 6748, "gig,sdu,rio", "riodbr", true},
  {"Brasilia", "", "br", -15.83, -47.86, 3055, "bsb", "brslbr", false},
  {"Fortaleza", "", "br", -3.72, -38.54, 2669, "for", "frtlbr", true},
  {"Salvador", "", "br", -12.97, -38.50, 2886, "ssa", "slvdbr", false},
  {"Curitiba", "", "br", -25.43, -49.27, 1948, "cwb", "crtbbr", false},
  {"Porto Alegre", "", "br", -30.03, -51.23, 1484, "poa", "prtabr", false},
  {"Buenos Aires", "", "ar", -34.60, -58.38, 2891, "eze,aep,bue", "bnsrar", true},
  {"Cordoba", "", "ar", -31.42, -64.18, 1391, "cor", "crdbar", false},
  {"Santiago", "", "cl", -33.45, -70.67, 5614, "scl", "sntgcl", true},
  {"Lima", "", "pe", -12.05, -77.04, 8852, "lim", "limape", true},
  {"Chiclayo", "", "pe", -6.77, -79.84, 552, "cix", "chclpe", false},
  {"Bogota", "", "co", 4.71, -74.07, 7413, "bog", "bgtaco", true},
  {"Medellin", "", "co", 6.25, -75.56, 2533, "mde", "mdllco", false},
  {"Quito", "", "ec", -0.18, -78.47, 1978, "uio", "quitec", false},
  {"Caracas", "", "ve", 10.48, -66.90, 1943, "ccs", "crcsve", false},
  {"Panama City", "", "pa", 8.98, -79.52, 880, "pty", "pnmcpa", true},
  {"San Jose", "", "cr", 9.93, -84.08, 342, "sjo", "snjscr", false},
  {"Guatemala City", "", "gt", 14.63, -90.51, 995, "gua", "gtmcgt", false},
  {"Mexico City", "", "mx", 19.43, -99.13, 9209, "mex", "mxcymx", true},
  {"Guadalajara", "", "mx", 20.66, -103.35, 1495, "gdl", "gdljmx", false},
  {"Monterrey", "", "mx", 25.69, -100.32, 1142, "mty", "mtrymx", false},
  {"Campeche", "", "mx", 19.85, -90.53, 249, "cpe", "cmpcmx", false},
  {"Queretaro", "", "mx", 20.59, -100.39, 878, "qro", "qrtrmx", true},
  // --- Africa & Middle East --------------------------------------------------
  {"Johannesburg", "", "za", -26.20, 28.05, 957, "jnb", "jhnbza", true},
  {"Cape Town", "", "za", -33.92, 18.42, 433, "cpt", "cptnza", true},
  {"Durban", "", "za", -29.86, 31.02, 595, "dur", "drbnza", false},
  {"Nairobi", "", "ke", -1.29, 36.82, 4397, "nbo", "nrbike", true},
  {"Mombasa", "", "ke", -4.04, 39.67, 1208, "mba", "mmbske", false},
  {"Lagos", "", "ng", 6.52, 3.38, 14862, "los", "lagsng", true},
  {"Abuja", "", "ng", 9.06, 7.49, 3564, "abv", "abjang", false},
  {"Accra", "", "gh", 5.60, -0.19, 2291, "acc", "accrgh", false},
  {"Cairo", "", "eg", 30.04, 31.24, 9540, "cai", "caireg", false},
  {"Casablanca", "", "ma", 33.57, -7.59, 3359, "cmn", "csblma", false},
  {"Tunis", "", "tn", 36.81, 10.18, 1056, "tun", "tunstn", false},
  {"Algiers", "", "dz", 36.74, 3.09, 2988, "alg", "algrdz", false},
  {"Dubai", "", "ae", 25.20, 55.27, 3331, "dxb", "dubaae", true},
  {"Abu Dhabi", "", "ae", 24.45, 54.38, 1483, "auh", "abdhae", false},
  {"Doha", "", "qa", 25.29, 51.53, 1450, "doh", "dohaqa", false},
  {"Riyadh", "", "sa", 24.71, 46.68, 7676, "ruh", "riydsa", false},
  {"Jeddah", "", "sa", 21.49, 39.18, 4697, "jed", "jddhsa", false},
  {"Kuwait City", "", "kw", 29.38, 47.99, 637, "kwi", "kwctkw", false},
  {"Manama", "", "bh", 26.23, 50.59, 158, "bah", "mnmabh", false},
  {"Muscat", "", "om", 23.59, 58.38, 1421, "mct", "msctom", false},
  {"Tel Aviv", "", "il", 32.09, 34.78, 460, "tlv", "tlavil", true},
  {"Eilat", "", "il", 29.56, 34.95, 52, "eth,vda", "eiltil", false},
  {"Amman", "", "jo", 31.96, 35.95, 4008, "amm", "ammnjo", false},
  {"Beirut", "", "lb", 33.89, 35.50, 361, "bey", "bertlb", false},
};
// clang-format on

// Facility street addresses attached to well-known colocation metros
// (PeeringDB-style records; paper figure 6f).
struct FacilityRow {
  const char* address;
  const char* city;
  const char* country;
};

constexpr FacilityRow kFacilities[] = {
    {"111 8th Ave", "New York", "us"},
    {"60 Hudson", "New York", "us"},
    {"32 Avenue of the Americas", "New York", "us"},
    {"165 Halsey", "Newark", "us"},
    {"529 Bryant", "Palo Alto", "us"},
    {"1 Wilshire", "Los Angeles", "us"},
    {"600 West 7th", "Los Angeles", "us"},
    {"350 East Cermak", "Chicago", "us"},
    {"56 Marietta", "Atlanta", "us"},
    {"1950 N Stemmons", "Dallas", "us"},
    {"2001 Sixth Ave", "Seattle", "us"},
    {"910 15th St", "Denver", "us"},
    {"365 Main", "San Francisco", "us"},
    {"11 Great Oaks", "San Jose", "us"},
    {"21715 Filigree Ct", "Ashburn", "us"},
    {"44470 Chilum Pl", "Ashburn", "us"},
    {"151 Front St", "Toronto", "ca"},
    {"Telehouse North", "London", "gb"},
    {"8 Buckingham Ave", "Slough", "gb"},
    {"Science Park 120", "Amsterdam", "nl"},
    {"Kleyerstrasse 90", "Frankfurt", "de"},
    {"137 Boulevard Voltaire", "Paris", "fr"},
    {"Otemachi 1-8-1", "Tokyo", "jp"},
    {"9 Temasek Blvd", "Singapore", "sg"},
    {"17 Bourke Rd", "Sydney", "au"},
};

// Continent letter used when deriving ICAO codes from IATA codes.
char icao_region_letter(std::string_view country) {
  static const struct { const char* cc; char letter; } kRegions[] = {
      {"us", 'k'}, {"ca", 'c'}, {"mx", 'm'}, {"gt", 'm'}, {"pa", 'm'}, {"cr", 'm'},
      {"br", 's'}, {"ar", 's'}, {"cl", 's'}, {"pe", 's'}, {"co", 's'}, {"ec", 's'},
      {"ve", 's'},
      {"jp", 'r'}, {"kr", 'r'}, {"ph", 'r'},
      {"cn", 'z'}, {"hk", 'v'}, {"tw", 'r'}, {"sg", 'w'}, {"my", 'w'}, {"th", 'v'},
      {"id", 'w'}, {"vn", 'v'}, {"in", 'v'}, {"pk", 'o'}, {"bd", 'v'}, {"lk", 'v'},
      {"au", 'y'}, {"nz", 'n'},
      {"za", 'f'}, {"ke", 'h'}, {"ng", 'd'}, {"gh", 'd'}, {"eg", 'h'}, {"ma", 'g'},
      {"tn", 'd'}, {"dz", 'd'},
      {"ae", 'o'}, {"qa", 'o'}, {"sa", 'o'}, {"kw", 'o'}, {"bh", 'o'}, {"om", 'o'},
      {"il", 'l'}, {"jo", 'o'}, {"lb", 'o'}, {"tr", 'l'}, {"ru", 'u'}, {"ua", 'u'},
  };
  for (const auto& r : kRegions)
    if (country == r.cc) return r.letter;
  return 'e';  // Europe default
}

// Derives a 6-letter CLLI prefix when the table does not supply one.
std::string derive_clli(const CityRow& row) {
  std::string city4 = squash_place_name(row.city);
  if (city4.size() > 4) city4.resize(4);
  while (city4.size() < 4) city4.push_back('x');
  std::string tail = row.state[0] != '\0' ? std::string(row.state) : std::string(row.country);
  if (tail.size() > 2) tail.resize(2);
  while (tail.size() < 2) tail.push_back('x');
  return city4 + tail;
}

GeoDictionary build_builtin() {
  GeoDictionary dict;
  for (const CityRow& row : kCities) {
    Location loc;
    loc.city = row.city;
    loc.state = row.state;
    loc.country = row.country;
    loc.coord = Coordinate{row.lat, row.lon};
    loc.population = static_cast<std::uint64_t>(row.pop_k) * 1000;
    const LocationId id = dict.add_location(std::move(loc));

    // IATA codes (and derived ICAO / LOCODE codes).
    std::string first_iata;
    if (row.iata[0] != '\0') {
      for (std::string_view code : util::split(row.iata, ",")) {
        dict.add_code(HintType::kIata, code, id);
        if (first_iata.empty()) first_iata = std::string(code);
        if (code.size() == 3) {
          std::string icao;
          icao.push_back(icao_region_letter(row.country));
          icao.append(code);
          dict.add_code(HintType::kIcao, icao, id);
        }
      }
    }

    // LOCODE: country + iata, else country + first three letters of the name.
    std::string place3 = first_iata;
    if (place3.empty()) {
      place3 = squash_place_name(row.city);
      if (place3.size() > 3) place3.resize(3);
    }
    if (place3.size() == 3) {
      dict.add_code(HintType::kLocode, std::string(row.country) + place3, id);
    }

    // CLLI prefix.
    std::string clli = row.clli[0] != '\0' ? std::string(row.clli) : derive_clli(row);
    if (clli.size() == 6) dict.add_code(HintType::kClli, clli, id);
  }

  // Facility street addresses.
  for (const FacilityRow& f : kFacilities) {
    const std::string key = squash_place_name(f.city);
    for (LocationId id : dict.lookup(HintType::kCityName, key)) {
      if (same_country(dict.location(id).country, f.country)) {
        dict.add_facility_address(f.address, id);
        break;
      }
    }
  }
  return dict;
}

}  // namespace

const GeoDictionary& builtin_dictionary() {
  static const GeoDictionary dict = build_builtin();
  return dict;
}

}  // namespace hoiho::geo
