#include "geo/dictionary_io.h"

#include <cstdlib>
#include <istream>
#include <ostream>

#include "util/csv.h"
#include "util/strings.h"

namespace hoiho::geo {

namespace {

std::optional<HintType> hint_type_from(std::string_view s) {
  if (s == "iata") return HintType::kIata;
  if (s == "icao") return HintType::kIcao;
  if (s == "locode") return HintType::kLocode;
  if (s == "clli") return HintType::kClli;
  return std::nullopt;
}

bool parse_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

bool parse_index(const std::string& s, std::size_t* out) {
  if (s.empty()) return false;
  for (const char c : s)
    if (c < '0' || c > '9') return false;
  char* end = nullptr;
  *out = static_cast<std::size_t>(std::strtoull(s.c_str(), &end, 10));
  return end == s.c_str() + s.size();
}

}  // namespace

void save_dictionary(std::ostream& out, const GeoDictionary& dict) {
  out << "# hoiho-geo dictionary v1\n";
  for (LocationId id = 0; id < dict.size(); ++id) {
    const Location& loc = dict.location(id);
    util::write_csv_row(out, {"L", loc.city, loc.state, loc.country,
                              util::fmt_double(loc.coord.lat, 4),
                              util::fmt_double(loc.coord.lon, 4),
                              std::to_string(loc.population)});
  }
  for (LocationId id = 0; id < dict.size(); ++id) {
    const LocationCodes& codes = dict.codes(id);
    for (const auto& c : codes.iata)
      util::write_csv_row(out, {"C", "iata", c, std::to_string(id)});
    for (const auto& c : codes.icao)
      util::write_csv_row(out, {"C", "icao", c, std::to_string(id)});
    for (const auto& c : codes.locode)
      util::write_csv_row(out, {"C", "locode", c, std::to_string(id)});
    for (const auto& c : codes.clli)
      util::write_csv_row(out, {"C", "clli", c, std::to_string(id)});
    for (const auto& addr : dict.facility_addresses(id))
      util::write_csv_row(out, {"F", addr, std::to_string(id)});
  }
}

std::optional<GeoDictionary> load_dictionary(std::istream& in, const io::LoadOptions& opt,
                                             io::LoadReport* report) {
  io::LoadReport local;
  io::LoadReport& rep = report != nullptr ? *report : local;
  GeoDictionary dict;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    ++rep.lines;
    if (line.size() > opt.max_line_bytes) {
      if (!rep.skip(opt, "oversized_line", lineno,
                    "line exceeds " + std::to_string(opt.max_line_bytes) + " bytes"))
        return std::nullopt;
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    const util::CsvRow row = util::parse_csv_line(line);
    if (row.empty()) continue;
    if (row[0] == "L") {
      if (row.size() < 7) {
        if (!rep.skip(opt, "bad_fields", lineno, "L record needs 7 fields")) return std::nullopt;
        continue;
      }
      if (opt.max_records > 0 && dict.size() >= opt.max_records) {
        rep.fail("line " + std::to_string(lineno) + ": more than " +
                 std::to_string(opt.max_records) + " locations (record cap)");
        return std::nullopt;
      }
      Location loc;
      loc.city = row[1];
      loc.state = util::to_lower(row[2]);
      loc.country = util::to_lower(row[3]);
      std::size_t population = 0;
      if (!parse_double(row[4], &loc.coord.lat) || !parse_double(row[5], &loc.coord.lon) ||
          !parse_index(row[6], &population)) {
        if (!rep.skip(opt, "bad_number", lineno, "non-numeric coordinate or population"))
          return std::nullopt;
        continue;
      }
      loc.population = population;
      dict.add_location(std::move(loc));
      ++rep.records;
    } else if (row[0] == "C") {
      if (row.size() < 4) {
        if (!rep.skip(opt, "bad_fields", lineno, "C record needs 4 fields")) return std::nullopt;
        continue;
      }
      const auto type = hint_type_from(row[1]);
      if (!type) {
        if (!rep.skip(opt, "unknown_code_type", lineno, "unknown code type '" + row[1] + "'"))
          return std::nullopt;
        continue;
      }
      std::size_t idx = 0;
      if (!parse_index(row[3], &idx) || idx >= dict.size()) {
        if (!rep.skip(opt, "index_out_of_range", lineno, "location index out of range"))
          return std::nullopt;
        continue;
      }
      dict.add_code(*type, row[2], static_cast<LocationId>(idx));
      ++rep.records;
    } else if (row[0] == "A") {
      if (row.size() < 3) {
        if (!rep.skip(opt, "bad_fields", lineno, "A record needs 3 fields")) return std::nullopt;
        continue;
      }
      std::size_t idx = 0;
      if (!parse_index(row[2], &idx) || idx >= dict.size()) {
        if (!rep.skip(opt, "index_out_of_range", lineno, "location index out of range"))
          return std::nullopt;
        continue;
      }
      dict.add_city_alias(row[1], static_cast<LocationId>(idx));
      ++rep.records;
    } else if (row[0] == "F") {
      if (row.size() < 3) {
        if (!rep.skip(opt, "bad_fields", lineno, "F record needs 3 fields")) return std::nullopt;
        continue;
      }
      std::size_t idx = 0;
      if (!parse_index(row[2], &idx) || idx >= dict.size()) {
        if (!rep.skip(opt, "index_out_of_range", lineno, "location index out of range"))
          return std::nullopt;
        continue;
      }
      dict.add_facility_address(row[1], static_cast<LocationId>(idx));
      ++rep.records;
    } else {
      if (!rep.skip(opt, "unknown_record", lineno, "unknown record type '" + row[0] + "'"))
        return std::nullopt;
      continue;
    }
  }
  if (in.bad()) {
    rep.fail("read error after line " + std::to_string(lineno));
    return std::nullopt;
  }
  return dict;
}

std::optional<GeoDictionary> load_dictionary(std::istream& in, std::string* error) {
  io::LoadReport report;
  auto dict = load_dictionary(in, io::LoadOptions{}, &report);
  if (!dict && error != nullptr) *error = report.error;
  return dict;
}

}  // namespace hoiho::geo
