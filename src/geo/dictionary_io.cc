#include "geo/dictionary_io.h"

#include <istream>
#include <ostream>

#include "util/csv.h"
#include "util/strings.h"

namespace hoiho::geo {

namespace {

std::optional<HintType> hint_type_from(std::string_view s) {
  if (s == "iata") return HintType::kIata;
  if (s == "icao") return HintType::kIcao;
  if (s == "locode") return HintType::kLocode;
  if (s == "clli") return HintType::kClli;
  return std::nullopt;
}

}  // namespace

void save_dictionary(std::ostream& out, const GeoDictionary& dict) {
  out << "# hoiho-geo dictionary v1\n";
  for (LocationId id = 0; id < dict.size(); ++id) {
    const Location& loc = dict.location(id);
    util::write_csv_row(out, {"L", loc.city, loc.state, loc.country,
                              util::fmt_double(loc.coord.lat, 4),
                              util::fmt_double(loc.coord.lon, 4),
                              std::to_string(loc.population)});
  }
  for (LocationId id = 0; id < dict.size(); ++id) {
    const LocationCodes& codes = dict.codes(id);
    for (const auto& c : codes.iata)
      util::write_csv_row(out, {"C", "iata", c, std::to_string(id)});
    for (const auto& c : codes.icao)
      util::write_csv_row(out, {"C", "icao", c, std::to_string(id)});
    for (const auto& c : codes.locode)
      util::write_csv_row(out, {"C", "locode", c, std::to_string(id)});
    for (const auto& c : codes.clli)
      util::write_csv_row(out, {"C", "clli", c, std::to_string(id)});
    for (const auto& addr : dict.facility_addresses(id))
      util::write_csv_row(out, {"F", addr, std::to_string(id)});
  }
}

std::optional<GeoDictionary> load_dictionary(std::istream& in, std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<GeoDictionary> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };
  GeoDictionary dict;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    const util::CsvRow row = util::parse_csv_line(line);
    const std::string where = "line " + std::to_string(lineno);
    if (row.empty()) continue;
    if (row[0] == "L") {
      if (row.size() < 7) return fail(where + ": L record needs 7 fields");
      Location loc;
      loc.city = row[1];
      loc.state = util::to_lower(row[2]);
      loc.country = util::to_lower(row[3]);
      char* end = nullptr;
      loc.coord.lat = std::strtod(row[4].c_str(), &end);
      loc.coord.lon = std::strtod(row[5].c_str(), &end);
      loc.population = std::strtoull(row[6].c_str(), &end, 10);
      dict.add_location(std::move(loc));
    } else if (row[0] == "C") {
      if (row.size() < 4) return fail(where + ": C record needs 4 fields");
      const auto type = hint_type_from(row[1]);
      if (!type) return fail(where + ": unknown code type '" + row[1] + "'");
      const std::size_t idx = std::strtoull(row[3].c_str(), nullptr, 10);
      if (idx >= dict.size()) return fail(where + ": location index out of range");
      dict.add_code(*type, row[2], static_cast<LocationId>(idx));
    } else if (row[0] == "A") {
      if (row.size() < 3) return fail(where + ": A record needs 3 fields");
      const std::size_t idx = std::strtoull(row[2].c_str(), nullptr, 10);
      if (idx >= dict.size()) return fail(where + ": location index out of range");
      dict.add_city_alias(row[1], static_cast<LocationId>(idx));
    } else if (row[0] == "F") {
      if (row.size() < 3) return fail(where + ": F record needs 3 fields");
      const std::size_t idx = std::strtoull(row[2].c_str(), nullptr, 10);
      if (idx >= dict.size()) return fail(where + ": location index out of range");
      dict.add_facility_address(row[1], static_cast<LocationId>(idx));
    } else {
      return fail(where + ": unknown record type '" + row[0] + "'");
    }
  }
  return dict;
}

}  // namespace hoiho::geo
