#include "geo/dictionary.h"

#include <cctype>

#include "util/strings.h"

namespace hoiho::geo {

std::string_view to_string(HintType t) {
  switch (t) {
    case HintType::kIata: return "iata";
    case HintType::kIcao: return "icao";
    case HintType::kLocode: return "locode";
    case HintType::kClli: return "clli";
    case HintType::kCityName: return "city";
    case HintType::kFacility: return "facility";
    case HintType::kCountryCode: return "country";
    case HintType::kStateCode: return "state";
  }
  return "?";
}

std::size_t code_length(HintType t) {
  switch (t) {
    case HintType::kIata: return 3;
    case HintType::kIcao: return 4;
    case HintType::kLocode: return 5;
    case HintType::kClli: return 6;
    case HintType::kCountryCode: return 2;
    case HintType::kStateCode: return 2;
    default: return 0;
  }
}

namespace {

std::string squash_alnum(std::string_view s) {
  std::string out;
  for (char c : s) {
    unsigned char u = static_cast<unsigned char>(c);
    if (std::isalnum(u)) out.push_back(static_cast<char>(std::tolower(u)));
  }
  return out;
}

}  // namespace

LocationId GeoDictionary::add_location(Location loc) {
  const LocationId id = static_cast<LocationId>(locations_.size());
  // Index the squashed city name.
  const std::string key = squash_place_name(loc.city);
  if (!key.empty()) city_[key].push_back(id);
  if (!loc.country.empty()) {
    std::string cc = util::to_lower(loc.country);
    if (cc == "uk") cc = "gb";
    countries_.insert(cc);
    if (!loc.state.empty()) {
      const std::string st = util::to_lower(loc.state);
      states_.insert(cc + "/" + st);
      states_any_.insert(st);
    }
  }
  // Precompute the abbreviation word splits and bucket the location by the
  // first letter of each name variant (the first-char rule lets
  // abbreviation_candidates skip every other bucket).
  abbrev_index_.push_back(build_abbrev_index(loc));
  bool bucketed[26] = {};
  for (const auto& words : abbrev_index_.back().variant_words) {
    if (words.empty()) continue;
    const char c = words[0][0];
    if (c < 'a' || c > 'z' || bucketed[c - 'a']) continue;
    bucketed[c - 'a'] = true;
    abbrev_first_[static_cast<std::size_t>(c - 'a')].push_back(id);
  }
  locations_.push_back(std::move(loc));
  codes_.emplace_back();
  facility_addrs_.emplace_back();
  return id;
}

const GeoDictionary::CodeMap* GeoDictionary::map_for(HintType t) const {
  switch (t) {
    case HintType::kIata: return &iata_;
    case HintType::kIcao: return &icao_;
    case HintType::kLocode: return &locode_;
    case HintType::kClli: return &clli_;
    case HintType::kCityName: return &city_;
    case HintType::kFacility: return &facility_;
    default: return nullptr;
  }
}

GeoDictionary::CodeMap* GeoDictionary::map_for(HintType t) {
  return const_cast<CodeMap*>(static_cast<const GeoDictionary*>(this)->map_for(t));
}

void GeoDictionary::add_code(HintType type, std::string_view code, LocationId id) {
  auto* map = map_for(type);
  if (map == nullptr) return;
  const std::size_t want = code_length(type);
  if (want != 0 && code.size() != want) return;
  const std::string key = util::to_lower(code);
  auto& v = (*map)[key];
  for (LocationId existing : v)
    if (existing == id) return;
  v.push_back(id);
  // Maintain the reverse index for fixed-width code types.
  switch (type) {
    case HintType::kIata: codes_[id].iata.push_back(key); break;
    case HintType::kIcao: codes_[id].icao.push_back(key); break;
    case HintType::kLocode: codes_[id].locode.push_back(key); break;
    case HintType::kClli: codes_[id].clli.push_back(key); break;
    default: break;
  }
}

void GeoDictionary::add_facility_address(std::string_view address, LocationId id) {
  const std::string key = squash_alnum(address);
  if (key.empty()) return;
  auto& v = facility_[key];
  for (LocationId existing : v)
    if (existing == id) return;
  v.push_back(id);
  facility_addrs_[id].push_back(key);
  locations_[id].has_facility = true;
}

void GeoDictionary::add_city_alias(std::string_view name, LocationId id) {
  const std::string key = squash_place_name(name);
  if (key.empty()) return;
  auto& v = city_[key];
  for (LocationId existing : v)
    if (existing == id) return;
  v.push_back(id);
}

std::span<const LocationId> GeoDictionary::lookup(HintType type, std::string_view code) const {
  const auto* map = map_for(type);
  if (map == nullptr) return {};
  // Extracted codes are already lower-case; only allocate the canonical
  // form when a caller passes mixed case.
  const auto it = util::is_lower(code) ? map->find(code) : map->find(util::to_lower(code));
  if (it == map->end()) return {};
  return it->second;
}

bool GeoDictionary::country_known(std::string_view cc) const {
  std::string c = util::to_lower(cc);
  if (c == "uk") c = "gb";
  return countries_.contains(c);
}

bool GeoDictionary::state_known(std::string_view cc, std::string_view st) const {
  std::string c = util::to_lower(cc);
  if (c == "uk") c = "gb";
  return states_.contains(c + "/" + util::to_lower(st));
}

bool GeoDictionary::any_state_known(std::string_view st) const {
  if (util::is_lower(st)) return states_any_.contains(st);
  return states_any_.contains(util::to_lower(st));
}

bool GeoDictionary::matches_country(std::string_view cc, LocationId id) const {
  return same_country(cc, locations_[id].country);
}

bool GeoDictionary::matches_state(std::string_view st, LocationId id) const {
  const std::string& s = locations_[id].state;
  if (s.empty() || st.size() != s.size()) return false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(st[i])) != s[i]) return false;
  }
  return true;
}

std::span<const std::string> GeoDictionary::facility_addresses(LocationId id) const {
  return facility_addrs_[id];
}

std::vector<LocationId> GeoDictionary::abbreviation_candidates(
    std::string_view abbrev, const AbbrevOptions& opts) const {
  std::vector<LocationId> out;
  // Every accepted abbreviation starts with the first letter of the place
  // name, so only that bucket can match; buckets are in add order, keeping
  // the output ascending like the full scan it replaces.
  if (abbrev.empty() || abbrev[0] < 'a' || abbrev[0] > 'z') return out;
  for (LocationId id : abbrev_first_[static_cast<std::size_t>(abbrev[0] - 'a')]) {
    if (is_location_abbrev(abbrev, abbrev_index_[id], opts)) out.push_back(id);
  }
  return out;
}

}  // namespace hoiho::geo
