// CSV serialization for GeoDictionary.
//
// Users with access to the real feeds the paper used (OurAirports, GeoNames,
// UN/LOCODE, a CLLI license, PeeringDB) can join them into this one-file
// format and load it in place of the embedded atlas.
//
// Format (one record per line, '#' comments allowed):
//   L,<city>,<state>,<country>,<lat>,<lon>,<population>
//   C,<type>,<code>,<location-index>        type in {iata,icao,locode,clli}
//   A,<alias-name>,<location-index>         extra city name
//   F,<street-address>,<location-index>     facility record
// Location indexes refer to the 0-based order of preceding L records.
//
// Joined feeds inherit each source's dirt (truncated exports, stray
// encodings). The io::LoadOptions overload supports lenient loading (skip +
// count per category in the io::LoadReport). Skip categories:
// oversized_line, bad_fields, bad_number, unknown_code_type,
// index_out_of_range, unknown_record.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "geo/dictionary.h"
#include "io/load_report.h"

namespace hoiho::geo {

// Writes `dict` in the format above.
void save_dictionary(std::ostream& out, const GeoDictionary& dict);

// Parses a dictionary. Strict mode fails with a named error in
// report->error on the first malformed record; lenient mode skips and
// counts it (a skipped L record also voids later C/A/F records that point
// at indexes never created — those count as index_out_of_range).
// opt.max_records caps accepted locations.
std::optional<GeoDictionary> load_dictionary(std::istream& in, const io::LoadOptions& opt,
                                             io::LoadReport* report = nullptr);

// Strict-mode convenience wrapper (the original first-error-fatal API).
std::optional<GeoDictionary> load_dictionary(std::istream& in, std::string* error = nullptr);

}  // namespace hoiho::geo
