// CSV serialization for GeoDictionary.
//
// Users with access to the real feeds the paper used (OurAirports, GeoNames,
// UN/LOCODE, a CLLI license, PeeringDB) can join them into this one-file
// format and load it in place of the embedded atlas.
//
// Format (one record per line, '#' comments allowed):
//   L,<city>,<state>,<country>,<lat>,<lon>,<population>
//   C,<type>,<code>,<location-index>        type in {iata,icao,locode,clli}
//   A,<alias-name>,<location-index>         extra city name
//   F,<street-address>,<location-index>     facility record
// Location indexes refer to the 0-based order of preceding L records.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "geo/dictionary.h"

namespace hoiho::geo {

// Writes `dict` in the format above.
void save_dictionary(std::ostream& out, const GeoDictionary& dict);

// Parses a dictionary; returns std::nullopt (with a message in *error if
// non-null) on malformed input.
std::optional<GeoDictionary> load_dictionary(std::istream& in, std::string* error = nullptr);

}  // namespace hoiho::geo
