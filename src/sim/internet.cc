#include "sim/internet.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "geo/coord.h"
#include "util/strings.h"

namespace hoiho::sim {

namespace {

// Synthetic operator name material.
const std::vector<std::string> kSyllables = {
    "tel", "net", "ver", "lum", "glo", "pac", "atla", "nor", "sur", "col",
    "era", "via", "zen", "arc", "omni", "uni", "den", "fib", "lin", "kor",
    "mira", "sol", "vex", "qui", "bel", "tra", "san", "pol", "gri", "hex",
};

const std::vector<std::string> kTlds = {
    "net", "net", "net", "com", "com", "org", "eu", "io", "net.au", "co.uk", "de", "jp",
};

std::string make_suffix(util::Rng& rng, std::set<std::string>& used) {
  for (int attempt = 0; attempt < 100; ++attempt) {
    std::string name = kSyllables[rng.next_below(kSyllables.size())] +
                       kSyllables[rng.next_below(kSyllables.size())];
    if (rng.next_bool(0.3)) name += kSyllables[rng.next_below(kSyllables.size())];
    if (rng.next_bool(0.2)) name += std::to_string(rng.next_int(1, 9));
    const std::string suffix = name + "." + kTlds[rng.next_below(kTlds.size())];
    if (used.insert(suffix).second) return suffix;
  }
  // Fall back to a counter-based unique name.
  std::string suffix = "op" + std::to_string(used.size()) + ".net";
  used.insert(suffix);
  return suffix;
}

std::string make_address(bool ipv6, std::size_t n) {
  if (ipv6) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "2001:db8:%zx:%zx::%zx", (n >> 24) & 0xffff,
                  (n >> 12) & 0xfff, n & 0xfff);
    return buf;
  }
  char buf[20];
  std::snprintf(buf, sizeof(buf), "10.%zu.%zu.%zu", (n >> 16) & 255, (n >> 8) & 255, n & 255);
  return buf;
}

}  // namespace

std::vector<measure::VantagePoint> make_vps(const geo::GeoDictionary& dict, std::size_t count) {
  std::vector<geo::LocationId> ids(dict.size());
  for (geo::LocationId i = 0; i < dict.size(); ++i) ids[i] = i;
  std::stable_sort(ids.begin(), ids.end(), [&](geo::LocationId a, geo::LocationId b) {
    const geo::Location& la = dict.location(a);
    const geo::Location& lb = dict.location(b);
    if (la.has_facility != lb.has_facility) return la.has_facility;
    return la.population > lb.population;
  });
  std::vector<measure::VantagePoint> vps;
  for (geo::LocationId id : ids) {
    if (vps.size() >= count) break;
    const geo::Location& loc = dict.location(id);
    measure::VantagePoint vp;
    const geo::LocationCodes& codes = dict.codes(id);
    vp.name = !codes.iata.empty() ? codes.iata.front()
                                  : geo::squash_place_name(loc.city).substr(0, 4);
    vp.country = loc.country;
    vp.coord = loc.coord;
    vps.push_back(std::move(vp));
  }
  return vps;
}

LocationPools build_location_pools(const geo::GeoDictionary& dict) {
  LocationPools pools;
  for (geo::LocationId id = 0; id < dict.size(); ++id) {
    pools.all.push_back(id);
    const geo::LocationCodes& codes = dict.codes(id);
    if (!codes.iata.empty()) pools.with_iata.push_back(id);
    if (!codes.clli.empty()) pools.with_clli.push_back(id);
    if (!codes.locode.empty()) pools.with_locode.push_back(id);
    if (!dict.facility_addresses(id).empty()) pools.with_facility.push_back(id);
    if (!dict.location(id).state.empty()) pools.with_state.push_back(id);
  }
  // Ambiguous-name losers: a squashed city name shared with a sibling,
  // where the sibling wins the Geolocator's facility-then-population
  // tiebreak (core/geolocate.cc) — hostname-only extraction resolves the
  // name to the winner, so a router actually at a loser is mislocated.
  for (geo::LocationId id = 0; id < dict.size(); ++id) {
    const auto siblings =
        dict.lookup(geo::HintType::kCityName, geo::squash_place_name(dict.location(id).city));
    if (siblings.size() < 2) continue;
    geo::LocationId winner = siblings.front();
    for (geo::LocationId s : siblings) {
      const geo::Location& a = dict.location(s);
      const geo::Location& w = dict.location(winner);
      const bool better = a.has_facility != w.has_facility ? a.has_facility
                                                           : a.population > w.population;
      if (better) winner = s;
    }
    if (id != winner) pools.ambiguous_losers.push_back(id);
  }
  // Well-known custom-hint locations (paper table 5): looked up once.
  for (const char* name : {"Ashburn", "Toronto", "Washington", "Tokyo", "Zurich", "London"}) {
    const auto ids = dict.lookup(geo::HintType::kCityName, geo::squash_place_name(name));
    for (geo::LocationId id : ids) {
      const geo::Location& loc = dict.location(id);
      // Disambiguate to the famous instance (facility-bearing).
      if (loc.has_facility) {
        pools.well_known.push_back(id);
        break;
      }
    }
  }
  return pools;
}

topo::RouterId render_operator(const OperatorSpec& spec, const geo::GeoDictionary& dict,
                               bool ipv6, double hostname_rate, double stale_rate,
                               std::size_t& addr_counter, util::Rng& rng,
                               topo::Topology& topology, std::vector<HostnameTruth>& truths) {
  const topo::RouterId first = static_cast<topo::RouterId>(topology.size());

  // Population weights (dampened) over the footprint for router placement:
  // router deployment correlates with population density (Lakhina et al.)
  // but operators deploy several routers even at their smaller sites.
  std::vector<double> weights;
  weights.reserve(spec.footprint.size());
  for (geo::LocationId id : spec.footprint)
    weights.push_back(std::sqrt(1.0 + static_cast<double>(dict.location(id).population)));

  // A PoP is typically a handful of routers: place up to four per footprint
  // site round-robin, then spread the remainder by population.
  const std::size_t guaranteed =
      std::min(spec.router_count, 4 * std::max<std::size_t>(1, spec.footprint.size()));
  for (std::size_t i = 0; i < spec.router_count; ++i) {
    const geo::LocationId loc = i < guaranteed
                                    ? spec.footprint[i % spec.footprint.size()]
                                    : spec.footprint[rng.next_weighted(weights)];
    const topo::RouterId rid = topology.add_router(loc);
    const bool named = rng.next_bool(hostname_rate);
    const std::size_t n_ifaces = 1 + rng.next_below(3);
    for (std::size_t k = 0; k < n_ifaces; ++k) {
      const std::string addr = make_address(ipv6, ++addr_counter);
      if (!named) {
        topology.add_interface(rid, addr, {});
        continue;
      }
      // Stale hostname: the name encodes a different footprint city.
      geo::LocationId intended = loc;
      bool stale = false;
      if (spec.footprint.size() > 1 && rng.next_bool(stale_rate)) {
        for (int attempt = 0; attempt < 4; ++attempt) {
          const geo::LocationId other = spec.footprint[rng.next_weighted(weights)];
          if (other != loc) {
            intended = other;
            stale = true;
            break;
          }
        }
      }
      const auto rendered = render_hostname(spec.scheme, dict, intended, spec.suffix, rng);
      if (!rendered) {
        topology.add_interface(rid, addr, {});
        continue;
      }
      topology.add_interface(rid, addr, rendered->hostname);
      HostnameTruth truth;
      truth.router = rid;
      truth.hostname = rendered->hostname;
      truth.has_geohint = rendered->has_geohint;
      truth.intended = rendered->has_geohint ? intended : geo::kInvalidLocation;
      truth.stale = stale && rendered->has_geohint;
      truths.push_back(std::move(truth));
    }
  }
  return first;
}

void add_operator(World& world, OperatorSpec spec, double hostname_rate, double stale_rate,
                  util::Rng& rng) {
  const std::size_t first_truth = world.truths.size();
  render_operator(spec, *world.dict, world.ipv6, hostname_rate, stale_rate, world.addr_counter,
                  rng, world.topology, world.truths);
  for (std::size_t i = first_truth; i < world.truths.size(); ++i)
    world.truth_index.emplace(world.truths[i].hostname, i);
  world.operators.push_back(std::move(spec));
}

SampledOperator sample_operator(const geo::GeoDictionary& dict, const LocationPools& pools,
                                const WorldConfig& config, std::string suffix, util::Rng& rng,
                                std::size_t forced_router_count) {
  SampledOperator out;
  OperatorSpec& spec = out.spec;
  spec.suffix = std::move(suffix);
  spec.router_count =
      forced_router_count != 0
          ? forced_router_count
          : std::min<std::size_t>(
                config.max_routers_per_operator,
                2 + static_cast<std::size_t>(rng.next_pareto(config.size_xm, config.size_alpha)));

  // Large operators (consumer access networks) contribute most hostnames
  // but rarely embed geohints; transit/backbone operators (smaller router
  // counts) usually do. This reproduces the paper's aggregate: ~55% of
  // routers have hostnames but only ~9% have apparent geohints.
  double p_geo = config.geohint_scheme_rate;
  if (spec.router_count > 60) p_geo *= 0.25;       // consumer access networks
  else if (spec.router_count < 6) p_geo *= 0.5;    // too small to bother
  else p_geo *= 1.5;                               // transit/backbone operators
  const bool has_geo = rng.next_bool(std::min(1.0, p_geo));
  core::Role role = core::Role::kIata;
  bool cc = false, st = false;
  if (has_geo) {
    const std::size_t pick = rng.next_weighted(
        {config.w_iata, config.w_city, config.w_clli, config.w_locode, config.w_facility});
    switch (pick) {
      case 0:
        role = core::Role::kIata;
        cc = rng.next_bool(config.p_country_iata);
        st = !cc && rng.next_bool(config.p_state_iata);
        break;
      case 1:
        role = core::Role::kCityName;
        cc = rng.next_bool(config.p_country_city);
        st = rng.next_bool(config.p_state_city);
        break;
      case 2:
        role = core::Role::kClli;
        cc = rng.next_bool(config.p_country_clli);
        break;
      case 3: role = core::Role::kLocode; break;
      default: role = core::Role::kFacility; break;
    }
  }
  spec.scheme = sample_scheme(role, cc, st, rng);
  spec.scheme.has_geohint = has_geo;
  if (!has_geo) {
    // Strip geohint parts: the operator names routers without locations.
    for (LabelTemplate& label : spec.scheme.labels) {
      std::erase_if(label, [](const Part& p) { return p.kind == PartKind::kGeo; });
    }
    std::erase_if(spec.scheme.labels, [](const LabelTemplate& l) { return l.empty(); });
    if (spec.scheme.labels.empty())
      spec.scheme.labels = {{Part::role(), Part::num()}};
    // Customer / vanity labels (paper challenge 5 noise).
    if (rng.next_bool(0.55))
      spec.scheme.labels.insert(spec.scheme.labels.begin(), {Part::word(), Part::num()});
  } else if (rng.next_bool(0.15)) {
    spec.scheme.labels.insert(spec.scheme.labels.begin(), {Part::word(), Part::dash(),
                                                           Part::num()});
  }
  if (role == core::Role::kClli && rng.next_bool(config.p_split_clli))
    spec.scheme.split_clli = true;
  if (rng.next_bool(config.inconsistent_rate)) spec.scheme.inconsistency = 0.35;
  if (rng.next_bool(0.35)) spec.scheme.extra_label_rate = 0.4;

  // Footprint: population-weighted sample from the pool the scheme can
  // name; state-annotated schemes stay in countries with subdivisions.
  const std::vector<geo::LocationId>* pool = &pools.all;
  if (has_geo) {
    switch (role) {
      case core::Role::kIata: pool = &pools.with_iata; break;
      case core::Role::kClli: pool = &pools.with_clli; break;
      case core::Role::kLocode: pool = &pools.with_locode; break;
      case core::Role::kFacility: pool = &pools.with_facility; break;
      default: pool = &pools.all; break;
    }
    if (st) pool = &pools.with_state;
  }
  std::vector<geo::LocationId> candidates = *pool;
  std::vector<double> weights;
  weights.reserve(candidates.size());
  for (geo::LocationId id : candidates)
    weights.push_back(1.0 + static_cast<double>(dict.location(id).population));
  // Several routers per site: typical sites host 4-6 routers.
  const std::size_t footprint_size = std::min(
      candidates.size(), std::max<std::size_t>(4, spec.router_count / 5));
  if (config.spatial_footprint && !candidates.empty()) {
    // Spatially-embedded deployment: a home site, its nearest code-bearing
    // neighbours, plus the occasional far satellite (an IXP presence or an
    // acquired PoP on another continent).
    const geo::LocationId home = candidates[rng.next_weighted(weights)];
    const geo::Coordinate& at = dict.location(home).coord;
    std::vector<geo::LocationId> by_distance = candidates;
    std::stable_sort(by_distance.begin(), by_distance.end(),
                     [&](geo::LocationId a, geo::LocationId b) {
                       return geo::distance_km(at, dict.location(a).coord) <
                              geo::distance_km(at, dict.location(b).coord);
                     });
    std::set<geo::LocationId> chosen;
    std::size_t next_near = 0;
    while (chosen.size() < footprint_size && next_near < by_distance.size()) {
      if (rng.next_bool(config.satellite_site_rate)) {
        chosen.insert(by_distance[rng.next_below(by_distance.size())]);
      } else {
        chosen.insert(by_distance[next_near++]);
      }
    }
    spec.footprint.assign(chosen.begin(), chosen.end());
  } else {
    std::set<geo::LocationId> chosen;
    for (int attempt = 0; chosen.size() < footprint_size && attempt < 2000; ++attempt)
      chosen.insert(candidates[rng.next_weighted(weights)]);
    spec.footprint.assign(chosen.begin(), chosen.end());
  }

  // Misleading geohints (ambiguous_operator_rate): an affected city-name
  // operator concentrates its whole deployment at loser namesakes, so
  // extraction alone sends every one of its routers to the famous sibling.
  // The rate check comes first so the default (0) takes no rng draw and
  // seeded worlds stay byte-identical.
  if (config.ambiguous_operator_rate > 0 && has_geo && role == core::Role::kCityName &&
      !pools.ambiguous_losers.empty() && rng.next_bool(config.ambiguous_operator_rate)) {
    std::set<geo::LocationId> chosen;
    const std::size_t want =
        std::min(pools.ambiguous_losers.size(), std::max<std::size_t>(2, footprint_size));
    for (int attempt = 0; chosen.size() < want && attempt < 2000; ++attempt)
      chosen.insert(
          pools.ambiguous_losers[rng.next_below(pools.ambiguous_losers.size())]);
    spec.footprint.assign(chosen.begin(), chosen.end());
  }

  // Custom geohints. Only operators with enough routers per site can
  // anchor a learnable custom code (three congruent routers, §5.4).
  const bool custom_capable = has_geo && spec.router_count >= 12 &&
                              (role == core::Role::kIata ||
                               role == core::Role::kLocode ||
                               role == core::Role::kClli);
  if (custom_capable && rng.next_bool(config.custom_operator_rate)) {
    // Bias IATA operators toward the community custom locations (paper
    // table 5: many suffixes independently converge on ash/tor/wdc/...).
    if (role == core::Role::kIata) {
      for (int k = 0; k < 2; ++k) {
        if (pools.well_known.empty() || !rng.next_bool(0.55)) continue;
        const geo::LocationId id = pools.well_known[rng.next_below(pools.well_known.size())];
        if (std::find(spec.footprint.begin(), spec.footprint.end(), id) ==
            spec.footprint.end())
          spec.footprint.push_back(id);
      }
    }
    std::size_t n_custom = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(spec.footprint.size()) *
                                    config.custom_loc_frac));
    std::vector<geo::LocationId> shuffled = spec.footprint;
    rng.shuffle(shuffled);
    // Prefer well-known custom locations, then the biggest sites (which
    // host the most routers, so the codes are learnable).
    std::stable_sort(shuffled.begin(), shuffled.end(), [&](geo::LocationId a, geo::LocationId b) {
      const bool wa =
          std::find(pools.well_known.begin(), pools.well_known.end(), a) != pools.well_known.end();
      const bool wb =
          std::find(pools.well_known.begin(), pools.well_known.end(), b) != pools.well_known.end();
      if (wa != wb) return wa;
      return dict.location(a).population > dict.location(b).population;
    });
    for (geo::LocationId id : shuffled) {
      if (spec.scheme.custom_codes.size() >= n_custom) break;
      const auto code = make_custom_code(role, dict, id, rng);
      if (code) spec.scheme.custom_codes[id] = *code;
    }
  }

  out.stale_rate = config.stale_rate;
  if (rng.next_bool(config.mislabel_operator_rate)) out.stale_rate += config.mislabel_rate;
  // Backbone/transit operators name nearly all their routers; consumer
  // networks name far fewer (tuned so the aggregate matches the
  // configured hostname rate).
  out.hostname_rate = has_geo ? std::min(0.92, config.hostname_rate * 1.35)
                              : config.hostname_rate * 0.85;
  return out;
}

World generate_world(const geo::GeoDictionary& dict, const WorldConfig& config) {
  util::Rng rng(config.seed);
  World world;
  world.dict = &dict;
  world.ipv6 = config.ipv6;
  world.vps = make_vps(dict, config.vp_count);

  const LocationPools pools = build_location_pools(dict);

  std::set<std::string> used_suffixes;
  for (std::size_t op = 0; op < config.operators; ++op) {
    SampledOperator sampled =
        sample_operator(dict, pools, config, make_suffix(rng, used_suffixes), rng);
    add_operator(world, std::move(sampled.spec), sampled.hostname_rate, sampled.stale_rate,
                 rng);
  }
  return world;
}

}  // namespace hoiho::sim
