// Operator naming schemes: how a synthetic operator renders router
// hostnames, including where it embeds geohints (paper §2) and how it
// deviates from the public dictionaries (paper §5.4, §6.2).
//
// A scheme is a sequence of label templates; each label is a sequence of
// parts (role token, interface token, geohint, country/state code, number,
// constant). The generator samples schemes matching the observed mix of
// conventions (paper table 4) and renders each router's hostnames from them.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/geohint.h"
#include "geo/dictionary.h"
#include "util/rng.h"

namespace hoiho::sim {

// One element of a hostname label.
enum class PartKind : std::uint8_t {
  kRole,     // router role token: core, br, gw, bcr, mse, ...
  kIface,    // interface token: xe, ae, ge, hundredgige, eth, gig, ...
  kGeo,      // the geohint (rendered per the scheme's hint role)
  kCountry,  // ISO country code of the router's location
  kState,    // state code of the router's location
  kNum,      // small decimal number
  kConst,    // fixed text
  kDash,     // literal '-'
  kWord,     // free-form word (customer names, vanity labels); sometimes
             // collides with a geo code by chance (paper challenge 5)
};

struct Part {
  PartKind kind = PartKind::kConst;
  std::string text;  // kConst only

  static Part role() { return {PartKind::kRole, ""}; }
  static Part iface() { return {PartKind::kIface, ""}; }
  static Part geo() { return {PartKind::kGeo, ""}; }
  static Part country() { return {PartKind::kCountry, ""}; }
  static Part state() { return {PartKind::kState, ""}; }
  static Part num() { return {PartKind::kNum, ""}; }
  static Part konst(std::string s) { return {PartKind::kConst, std::move(s)}; }
  static Part dash() { return {PartKind::kDash, ""}; }
  static Part word() { return {PartKind::kWord, ""}; }
};

// A label is a sequence of parts; a template is a sequence of labels
// (joined with dots, then followed by the operator's suffix).
using LabelTemplate = std::vector<Part>;

struct NamingScheme {
  // Primary geohint type; kCityName/kIata/kClli/kLocode/kFacility. If
  // has_geohint is false, hostnames carry no location information.
  core::Role hint_role = core::Role::kIata;
  bool has_geohint = true;
  bool split_clli = false;   // render CLLI as "xxxx<digits>-yy"
  bool embed_country = false;
  bool embed_state = false;

  std::vector<LabelTemplate> labels;

  // Per-location custom codes overriding the dictionary (stage-4 material).
  std::map<geo::LocationId, std::string> custom_codes;

  // Probability a rendered hostname ignores the template entirely (an
  // operator that is sloppy about its own convention).
  double inconsistency = 0.0;

  // Probability a rendered hostname gains an extra leading label ("0." /
  // "xe-1."), varying the label count within the suffix — harmless for
  // structural learners, fatal for DRoP's fixed-position rules (fig. 2).
  double extra_label_rate = 0.0;
};

// Vocabularies used when rendering role/interface parts. kIfaceDecoys are
// interface tokens that collide with IATA codes (paper challenge 5: gig,
// eth, cpe).
extern const std::vector<std::string> kRoleTokens;
extern const std::vector<std::string> kIfaceTokens;
extern const std::vector<std::string> kIfaceDecoys;

// Renders the code for `loc` under `scheme` (custom code if present, else
// the dictionary code of the scheme's hint role). Returns nullopt if the
// location has no code of that type (caller should pick another location).
std::optional<std::string> geo_code_for(const NamingScheme& scheme,
                                        const geo::GeoDictionary& dict, geo::LocationId loc);

// One rendered hostname plus whether a geohint actually went into it (an
// inconsistent render drops the convention, paper fig. 9 above.net /
// aorta.net).
struct Rendered {
  std::string hostname;
  bool has_geohint = false;
};

// Renders one hostname (prefix + "." + suffix) for a router at `loc`.
// Returns nullopt if the location lacks a code of the scheme's hint type.
std::optional<Rendered> render_hostname(const NamingScheme& scheme,
                                        const geo::GeoDictionary& dict, geo::LocationId loc,
                                        std::string_view suffix, util::Rng& rng);

// Builds a custom code for `loc` of the kind `role` implies that (a) obeys
// the abbreviation heuristics of §5.4 so it is learnable, and (b) differs
// from every dictionary code of that type for the location. Returns nullopt
// if no such code can be built. `well_known` biases toward the community
// codes of paper table 5 (ash, tor, wdc, tok, zur, ldn) when applicable.
std::optional<std::string> make_custom_code(core::Role role, const geo::GeoDictionary& dict,
                                            geo::LocationId loc, util::Rng& rng,
                                            bool well_known = true);

// Builds an intentionally unlearnable custom code (random letters violating
// the abbreviation rules) — the paper's tfbnw case (§6.2).
std::string make_irregular_code(core::Role role, util::Rng& rng);

// Samples a random scheme template structure for the given hint role /
// annotation flags (used by the world generator).
NamingScheme sample_scheme(core::Role hint_role, bool embed_country, bool embed_state,
                           util::Rng& rng);

}  // namespace hoiho::sim
