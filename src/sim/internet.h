// Synthetic Internet generator — the stand-in for CAIDA's ITDK (DESIGN.md
// §2).
//
// A World is a set of operators (suffixes), each with a naming scheme and a
// footprint of cities, a router-level topology whose routers carry ground-
// truth locations, the vantage points that will probe it, and a per-hostname
// truth record (does this hostname embed a geohint, and for which intended
// location). Ground truth lets the benches score inferences exactly — the
// luxury the paper could only obtain from 13 cooperating operators.
//
// The building blocks (location pools, operator sampling, operator
// rendering) are exposed separately so sim::StreamingWorld can generate
// ITDK-scale worlds suffix-by-suffix without materializing a World.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "measure/rtt_matrix.h"
#include "sim/naming.h"
#include "topo/topology.h"

namespace hoiho::sim {

struct OperatorSpec {
  std::string suffix;
  NamingScheme scheme;
  std::vector<geo::LocationId> footprint;
  std::size_t router_count = 0;
};

// Ground truth for one rendered hostname.
struct HostnameTruth {
  topo::RouterId router = topo::kInvalidRouter;
  std::string hostname;
  bool has_geohint = false;
  geo::LocationId intended = geo::kInvalidLocation;  // location the name encodes
  bool stale = false;  // intended != the router's true location
};

struct World {
  const geo::GeoDictionary* dict = nullptr;
  bool ipv6 = false;
  std::size_t addr_counter = 0;  // next interface address ordinal
  std::vector<OperatorSpec> operators;
  topo::Topology topology;
  std::vector<measure::VantagePoint> vps;
  std::vector<HostnameTruth> truths;
  std::unordered_map<std::string, std::size_t> truth_index;  // hostname -> truths idx

  const HostnameTruth* truth_for(std::string_view hostname) const {
    const auto it = truth_index.find(std::string(hostname));
    return it == truth_index.end() ? nullptr : &truths[it->second];
  }
};

struct WorldConfig {
  std::uint64_t seed = 1;
  bool ipv6 = false;            // address style only
  std::size_t operators = 120;

  // Operator size: 2 + Pareto(alpha, xm), clamped.
  double size_alpha = 1.1;
  double size_xm = 4.0;
  std::size_t max_routers_per_operator = 320;

  std::size_t vp_count = 100;

  double hostname_rate = 0.55;        // routers that get PTR records
  double geohint_scheme_rate = 0.35;  // operators whose scheme embeds geohints
  double inconsistent_rate = 0.08;    // sloppy operators (inconsistency 0.35)
  double stale_rate = 0.005;          // stale hostnames (paper §4 challenge 3)

  // Some operators hand out interconnect addresses whose hostnames encode
  // the *provider's* router location (paper fig. 3b) or keep many stale
  // names; their conventions evaluate with a depressed PPV (the paper's
  // "promising" band).
  double mislabel_operator_rate = 0.10;
  double mislabel_rate = 0.12;

  // Custom geohints (paper §6.2: 38.2% of IATA NCs had at least one).
  double custom_operator_rate = 0.38;
  double custom_loc_frac = 0.30;      // fraction of footprint renamed

  // Convention mix among geohint operators (paper table 4).
  double w_iata = 0.517, w_city = 0.389, w_clli = 0.121, w_locode = 0.013,
         w_facility = 0.003;
  double p_split_clli = 0.25;         // CLLI operators that split 4+2
  // Annotation probabilities (paper table 4: IATA operators embed a country
  // code far more often than city/CLLI operators do).
  double p_country_iata = 0.22, p_state_iata = 0.02;
  double p_country_city = 0.015, p_state_city = 0.05;
  double p_country_clli = 0.05;

  // Spatially-embedded footprints ("Evidence of spatial embedding",
  // PAPERS.md): pick a population-weighted home site, then deploy to its
  // nearest code-bearing neighbours, with an occasional far satellite site.
  // Off by default — the batch generator keeps its historical
  // global-population sampling so seeded worlds are unchanged; the
  // streaming generator turns it on.
  bool spatial_footprint = false;
  double satellite_site_rate = 0.12;  // footprint slots drawn far from home

  // Misleading-geohint stress (src/fuse/ evaluation): this fraction of
  // city-name operators deploy exclusively at "loser" namesakes — cities
  // that share a squashed name with a more famous sibling and lose the
  // facility-then-population tiebreak — so hostname-only geolocation
  // systematically resolves their routers to the wrong sibling. RTT
  // evidence is what corrects them. 0 (the default) leaves seeded worlds
  // byte-identical: no rng draw is taken when the knob is off.
  double ambiguous_operator_rate = 0.0;
};

// Location id pools per geohint code type, plus the community custom-hint
// cities of paper table 5. Built once per dictionary and shared across
// operator samples.
struct LocationPools {
  std::vector<geo::LocationId> all, with_iata, with_clli, with_locode, with_facility,
      with_state;
  std::vector<geo::LocationId> well_known;
  // Locations that share a squashed city name with a sibling and lose the
  // Geolocator's facility-then-population tiebreak (ambiguous_operator_rate).
  std::vector<geo::LocationId> ambiguous_losers;
};

LocationPools build_location_pools(const geo::GeoDictionary& dict);

// One sampled operator plus the render-time rates derived with it.
struct SampledOperator {
  OperatorSpec spec;
  double stale_rate = 0;
  double hostname_rate = 0;
};

// Samples an operator's size, naming scheme, footprint, and custom codes
// from `rng` — the per-operator half of generate_world, reusable by the
// streaming generator. `forced_router_count`, when nonzero, replaces the
// Pareto size draw (the streaming generator plans sizes from a Zipf
// schedule instead).
SampledOperator sample_operator(const geo::GeoDictionary& dict, const LocationPools& pools,
                                const WorldConfig& config, std::string suffix, util::Rng& rng,
                                std::size_t forced_router_count = 0);

// Renders one operator's routers, interfaces, and hostnames into
// `topology`, appending ground truth to `truths`. `addr_counter` is the
// interface-address ordinal (a World uses one global counter; the streaming
// generator uses a per-suffix base). Returns the id of the first router
// added.
topo::RouterId render_operator(const OperatorSpec& spec, const geo::GeoDictionary& dict,
                               bool ipv6, double hostname_rate, double stale_rate,
                               std::size_t& addr_counter, util::Rng& rng,
                               topo::Topology& topology, std::vector<HostnameTruth>& truths);

// Builds the vantage-point set: the `count` highest-ranked locations
// (facility first, then population), one VP each, named by IATA code.
std::vector<measure::VantagePoint> make_vps(const geo::GeoDictionary& dict, std::size_t count);

// Generates a full world.
World generate_world(const geo::GeoDictionary& dict, const WorldConfig& config);

// Adds one hand-specified operator to `world` (used by the validation
// scenario); renders its routers/hostnames and truth records.
// `stale_rate` and `custom` behaviour come from `spec.scheme` /
// pre-populated custom_codes.
void add_operator(World& world, OperatorSpec spec, double hostname_rate, double stale_rate,
                  util::Rng& rng);

}  // namespace hoiho::sim
