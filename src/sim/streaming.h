// Streaming ITDK-scale world generation (DESIGN.md §12).
//
// generate_world() materializes everything — topology, hostnames, truth
// records, and (via probe_pings) a dense router x VP matrix — before the
// learner sees the first suffix. That caps practical world size around 10^4
// hostnames. StreamingWorld is the scale path: it implements
// io::SuffixStream, emitting operators/routers/hostnames/RTT samples
// suffix-by-suffix in self-contained batches, so a 1M-hostname / 10k-suffix
// world is never resident at once — peak memory is the batch hostname
// budget, not the world.
//
// Three properties the batch generator doesn't have:
//
//   * Per-suffix determinism: every suffix k is generated from its own
//     Rng(mix(seed, k)), so the emitted stream is byte-identical no matter
//     how suffixes are grouped into batches (tests/test_scale_world.cc).
//   * Zipf-skewed suffix sizes: suffix k gets ~1/(k+1)^zipf_s of the
//     hostname mass (clamped), reproducing the ITDK's regime where a few
//     consumer ISPs dwarf thousands of small operators — the skew that
//     motivates work-stealing in Hoiho::run_stream.
//   * Spatially-embedded footprints: operators deploy around a home site
//     ("Evidence of spatial embedding", PAPERS.md) instead of sampling the
//     whole globe.
#pragma once

#include <cstdint>
#include <vector>

#include "io/suffix_stream.h"
#include "sim/internet.h"
#include "sim/probing.h"

namespace hoiho::sim {

struct StreamingWorldConfig {
  std::uint64_t seed = 1;

  std::size_t suffixes = 1000;             // operators (= suffix groups) in the world
  std::size_t target_hostnames = 100000;   // approximate total across all suffixes
  double zipf_s = 0.9;                     // suffix-size skew exponent
  std::size_t max_hostnames_per_suffix = 8192;  // clamp on the Zipf head
  std::size_t min_routers_per_suffix = 2;

  std::size_t vp_count = 64;
  std::size_t batch_hostname_budget = 8192;  // whole suffixes per batch up to this

  // Churn (incremental-relearn simulation): when churn_frac > 0, that
  // fraction of suffixes — selected deterministically from churn_seed — is
  // re-rendered from a churned rng stream. A churned suffix keeps its name
  // (the operator persists; its routers/hostnames turn over), so against an
  // unchurned world with the same seed it reads as content change on the
  // same suffix — exactly what Hoiho::run_delta re-learns.
  std::uint64_t churn_seed = 0;
  double churn_frac = 0.0;

  // Operator character (scheme mix, rates). spatial_footprint is forced on.
  WorldConfig traits;
  PingConfig ping;
};

class StreamingWorld final : public io::SuffixStream {
 public:
  StreamingWorld(const geo::GeoDictionary& dict, StreamingWorldConfig config);

  // Emits the next batch of whole suffixes (at least one; more until the
  // batch hostname budget is met), or nullopt once all suffixes streamed.
  std::optional<io::SuffixBatch> next_batch() override;

  const io::LoadReport& report() const override { return report_; }

  // Fingerprints every config knob that shapes the emitted batches (world
  // traits, ping model, sizing, batch budget), so checkpoints written
  // against one world never resume against another.
  std::uint64_t signature() const override;

  // Rewinds to suffix 0 and clears accounting; the regenerated stream is
  // identical (per-suffix rngs carry no cross-suffix state).
  void reset();

  const std::vector<measure::VantagePoint>& vps() const { return vps_; }
  std::size_t suffix_count() const { return config_.suffixes; }
  std::size_t next_suffix_index() const { return next_suffix_; }

  // The Zipf router plan for suffix k (set at construction; tests assert
  // skew and totals against it).
  std::size_t planned_routers(std::size_t k) const { return router_plan_[k]; }

  // True when suffix k re-renders from the churned rng stream under the
  // current churn knobs (always false at churn_frac = 0).
  bool is_churned(std::size_t k) const;

  // Indices of every churned suffix, ascending.
  std::vector<std::size_t> churned_suffixes() const;

  // The stable name of suffix k — identical whether or not k is churned
  // (the name is drawn before the churn reseed).
  std::string suffix_name(std::size_t k) const;

  // Renders exactly the given suffixes (churn applied) into one batch —
  // the WorldDelta.changed payload for an incremental relearn. Suffixes
  // whose operator renders no usable hostnames are omitted (the caller
  // turns those into WorldDelta.removed entries via suffix_name()).
  // Independent of streaming position; adds to report() like next_batch.
  io::SuffixBatch render_batch(const std::vector<std::size_t>& ks);

 private:
  // Renders suffix k (operator sample + routers + hostnames) into the
  // batch and returns the hostname refs for its group.
  std::vector<topo::HostnameRef> render_suffix(std::size_t k, io::SuffixBatch& batch,
                                               topo::RouterId* first_router);

  const geo::GeoDictionary& dict_;
  StreamingWorldConfig config_;
  LocationPools pools_;
  std::vector<measure::VantagePoint> vps_;
  std::vector<std::uint32_t> router_plan_;  // per-suffix router counts (Zipf)
  std::size_t next_suffix_ = 0;
  io::LoadReport report_;
};

}  // namespace hoiho::sim
