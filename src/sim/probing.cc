#include "sim/probing.h"

#include <algorithm>

#include "geo/coord.h"
#include "util/rng.h"

namespace hoiho::sim {

namespace {

double sample_rtt(util::Rng& rng, double base_ms, double inflation_min, double inflation_max,
                  double noise_min, double noise_max) {
  const double inflation = rng.next_range(inflation_min, inflation_max);
  const double noise = rng.next_range(noise_min, noise_max);
  return base_ms * inflation + noise;
}

}  // namespace

void probe_pings_range(const geo::GeoDictionary& dict, const topo::Topology& topology,
                       topo::RouterId begin, topo::RouterId end, const PingConfig& config,
                       util::Rng& rng, measure::Measurements& meas) {
  for (topo::RouterId r = begin; r < end; ++r) {
    const topo::Router& router = topology.router(r);
    if (!rng.next_bool(config.router_response_rate)) continue;
    geo::Coordinate at = dict.location(router.true_location).coord;
    // Anycast contamination: the RTTs describe a random VP's city instead
    // of the router's true location. Guarded so the default (0) takes no
    // rng draw and existing seeded campaigns are unchanged.
    if (config.anycast_rate > 0 && !meas.vps.empty() &&
        rng.next_bool(config.anycast_rate))
      at = meas.vps[rng.next_below(meas.vps.size())].coord;
    for (measure::VpId v = 0; v < meas.vps.size(); ++v) {
      if (!rng.next_bool(config.vp_sample_rate)) continue;
      const double base = geo::min_rtt_ms(at, meas.vps[v].coord);
      meas.pings.record(router.id, v, sample_rtt(rng, base, config.inflation_min,
                                                 config.inflation_max, config.noise_min_ms,
                                                 config.noise_max_ms));
    }
  }
}

measure::Measurements probe_pings(const World& world, const PingConfig& config) {
  util::Rng rng(config.seed);
  measure::Measurements meas(world.vps, world.topology.size());
  probe_pings_range(*world.dict, world.topology, 0,
                    static_cast<topo::RouterId>(world.topology.size()), config, rng, meas);
  return meas;
}

measure::Measurements probe_traceroutes(const World& world, const TraceConfig& config) {
  util::Rng rng(config.seed);
  measure::Measurements meas(world.vps, world.topology.size());
  const geo::GeoDictionary& dict = *world.dict;
  if (meas.vps.empty()) return meas;
  // The pool of observer VPs per router: the nearest fraction, minus the
  // single closest VP (which rarely happens to traceroute through it).
  const std::size_t pool_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(meas.vps.size()) *
                                  config.nearest_fraction));
  std::vector<std::pair<double, measure::VpId>> by_distance(meas.vps.size());
  for (const topo::Router& router : world.topology.routers()) {
    if (!rng.next_bool(config.router_seen_rate)) continue;
    const geo::Coordinate& at = dict.location(router.true_location).coord;
    for (measure::VpId v = 0; v < meas.vps.size(); ++v)
      by_distance[v] = {geo::distance_km(at, meas.vps[v].coord), v};
    std::sort(by_distance.begin(), by_distance.end());
    std::size_t n_vps = 1;
    if (!rng.next_bool(config.p_single_vp) && config.max_vps > 1) {
      n_vps = 2 + rng.next_below(config.max_vps - 1);
    }
    for (std::size_t k = 0; k < n_vps; ++k) {
      // Skip the closest VP when the pool allows it.
      const std::size_t lo = pool_size > 2 ? 1 : 0;
      const std::size_t pick = lo + rng.next_below(pool_size - lo);
      const measure::VpId v = by_distance[pick].second;
      const double base = geo::min_rtt_ms(at, meas.vps[v].coord);
      meas.pings.record(router.id, v, sample_rtt(rng, base, config.inflation_min,
                                                 config.inflation_max, config.noise_min_ms,
                                                 config.noise_max_ms));
    }
  }
  return meas;
}

}  // namespace hoiho::sim
