// Canned experiment scenarios used by the benches and integration tests.
//
// make_itdk() builds laptop-scale analogues of the paper's four ITDKs
// (table 1): two IPv4 snapshots with ~55% hostname coverage and ~82% ping
// responsiveness probed from ~100 VPs, and two IPv6 snapshots with ~16%
// hostname coverage, ~46% responsiveness and ~40 VPs.
//
// make_validation() builds the 13-network ground-truth scenario of paper
// §6.1 (fig. 9, tables 5/6, figs 10/11): named operators with the
// conventions, custom-geohint volumes, and failure modes the paper reports
// (he.net's "ash", NTT's home-made CLLI codes and the Kuala Selangor
// confusion, tfbnw's irregularly-named small-town data centers, above.net /
// aorta.net inconsistency, nysernet's unreachability from HLOC's VPs).
#pragma once

#include <set>
#include <string>

#include "sim/internet.h"
#include "sim/probing.h"

namespace hoiho::sim {

enum class ItdkKind { kIpv4Aug20, kIpv4Mar21, kIpv6Nov20, kIpv6Mar21 };

std::string_view to_string(ItdkKind k);

struct ItdkScenario {
  std::string name;  // "IPv4 Aug '20"
  World world;
  measure::Measurements pings;
  measure::Measurements traces;
};

// `scale` multiplies the default operator count (1.0 ~ a few thousand
// routers; keep <= 1 for quick runs).
ItdkScenario make_itdk(ItdkKind kind, double scale = 1.0);

struct ValidationScenario {
  World world;
  measure::Measurements pings;
  measure::Measurements traces;
  std::vector<std::string> suffixes;        // validation networks, display order
  std::set<std::string> hloc_unreachable;   // suffixes HLOC's VPs cannot probe
};

// `vp_count` thins the vantage-point field; the paper's fig. 11 gradient
// (learned hints far from all VPs are less often correct) only appears when
// parts of the world are weakly covered.
ValidationScenario make_validation(std::uint64_t seed = 7, std::size_t vp_count = 100);

}  // namespace hoiho::sim
