#include "sim/scenario.h"

#include <algorithm>

#include "util/strings.h"

namespace hoiho::sim {

std::string_view to_string(ItdkKind k) {
  switch (k) {
    case ItdkKind::kIpv4Aug20: return "IPv4 Aug '20";
    case ItdkKind::kIpv4Mar21: return "IPv4 Mar '21";
    case ItdkKind::kIpv6Nov20: return "IPv6 Nov '20";
    case ItdkKind::kIpv6Mar21: return "IPv6 Mar '21";
  }
  return "?";
}

ItdkScenario make_itdk(ItdkKind kind, double scale) {
  WorldConfig wc;
  PingConfig pc;
  TraceConfig tc;
  switch (kind) {
    case ItdkKind::kIpv4Aug20:
      wc.seed = 0x41a820;
      wc.operators = static_cast<std::size_t>(260 * scale);
      wc.vp_count = 106;
      wc.hostname_rate = 0.55;
      pc.router_response_rate = 0.82;
      break;
    case ItdkKind::kIpv4Mar21:
      wc.seed = 0x41a321;
      wc.operators = static_cast<std::size_t>(260 * scale);
      wc.vp_count = 100;
      wc.hostname_rate = 0.54;
      pc.router_response_rate = 0.82;
      break;
    case ItdkKind::kIpv6Nov20:
      wc.seed = 0x6b1120;
      wc.operators = static_cast<std::size_t>(52 * scale);
      wc.ipv6 = true;
      wc.vp_count = 46;
      wc.hostname_rate = 0.151;
      // IPv6 deployment concentrates in larger transit networks whose
      // hostnames are more likely to carry geohints (paper §6).
      wc.size_xm = 9.0;
      wc.geohint_scheme_rate = 0.62;
      pc.router_response_rate = 0.473;
      break;
    case ItdkKind::kIpv6Mar21:
      wc.seed = 0x6b0321;
      wc.operators = static_cast<std::size_t>(52 * scale);
      wc.ipv6 = true;
      wc.vp_count = 39;
      wc.hostname_rate = 0.16;
      wc.size_xm = 9.0;
      wc.geohint_scheme_rate = 0.62;
      pc.router_response_rate = 0.452;
      break;
  }
  pc.seed = wc.seed ^ 0x9999;
  tc.seed = wc.seed ^ 0x7777;

  ItdkScenario sc;
  sc.name = std::string(to_string(kind));
  sc.world = generate_world(geo::builtin_dictionary(), wc);
  sc.pings = probe_pings(sc.world, pc);
  sc.traces = probe_traceroutes(sc.world, tc);
  return sc;
}

namespace {

// Reference to an atlas city (state disambiguates the two Ashburns etc.).
struct CityRef {
  const char* city;
  const char* state;    // "" = any
  const char* country;
};

geo::LocationId find_loc(const geo::GeoDictionary& dict, const CityRef& ref) {
  for (geo::LocationId id : dict.lookup(geo::HintType::kCityName,
                                        geo::squash_place_name(ref.city))) {
    const geo::Location& loc = dict.location(id);
    if (!geo::same_country(loc.country, ref.country)) continue;
    if (ref.state[0] != '\0' && loc.state != ref.state) continue;
    return id;
  }
  return geo::kInvalidLocation;
}

// One validation operator: the conventions and custom-hint volumes the
// paper reports for that network.
struct ValSpec {
  const char* suffix;
  core::Role role;
  std::size_t routers;
  bool cc, st;
  double inconsistency;
  std::size_t footprint_extra;            // extra sampled code-bearing cities
  std::vector<CityRef> customs;           // learnable custom geohints (truth)
  std::vector<std::pair<CityRef, CityRef>> shadows;  // (truth town, shadowing metro)
  bool split_clli = false;
};

const std::vector<ValSpec>& validation_specs() {
  static const std::vector<ValSpec> specs = {
      // above.net: IATA, sloppy convention -> visible FNs, no custom codes.
      {"above.net", core::Role::kIata, 90, false, false, 0.18, 14, {}, {}, false},
      // aorta.net: city names + country codes, somewhat sloppy, few customs.
      {"aorta.net", core::Role::kIata, 70, true, false, 0.12, 10,
       {{"Vienna", "", "at"}, {"Budapest", "", "hu"}, {"Zurich", "", "ch"}},
       {{{"Ashland", "va", "us"}, {"Ashburn", "va", "us"}}}, false},
      // as8218.eu: IATA, three clean customs.
      {"as8218.eu", core::Role::kIata, 60, false, false, 0.0, 8,
       {{"Paris", "", "fr"}, {"Lyon", "", "fr"}, {"Brussels", "", "be"}}, {}, false},
      // geant.net: IATA with eight learnable customs across Europe.
      {"geant.net", core::Role::kIata, 130, false, false, 0.0, 24,
       {{"London", "", "gb"}, {"Amsterdam", "", "nl"}, {"Frankfurt", "", "de"},
        {"Geneva", "", "ch"}, {"Vienna", "", "at"}, {"Prague", "", "cz"},
        {"Budapest", "", "hu"}, {"Madrid", "", "es"}},
       {}, false},
      // gtt.net: IATA, twelve customs, a few shadowed by nearby metros.
      {"gtt.net", core::Role::kIata, 170, false, false, 0.0, 30,
       {{"Washington", "dc", "us"}, {"Toronto", "on", "ca"}, {"Tokyo", "", "jp"},
        {"Zurich", "", "ch"}, {"London", "", "gb"}, {"Milan", "", "it"},
        {"Stockholm", "", "se"}, {"Warsaw", "", "pl"}, {"Dublin", "", "ie"}},
       {{{"Ashland", "va", "us"}, {"Ashburn", "va", "us"}},
        {{"Prineville", "or", "us"}, {"Portland", "or", "us"}},
        {{"Santa Rosa", "ca", "us"}, {"San Francisco", "ca", "us"}}}, false},
      // he.net: IATA, four clean customs including the canonical "ash".
      {"he.net", core::Role::kIata, 120, false, false, 0.0, 16,
       {{"Ashburn", "va", "us"}, {"Toronto", "on", "ca"}, {"Tokyo", "", "jp"},
        {"London", "", "gb"}}, {}, false},
      // ntt.net: home-made CLLI codes + country codes; the Kuala Selangor /
      // Kuala Lumpur confusion (the paper's one undns error, §6.1).
      {"ntt.net", core::Role::kClli, 170, true, false, 0.0, 18,
       {{"Milan", "", "it"}, {"Tokyo", "", "jp"}, {"Osaka", "", "jp"},
        {"Singapore", "", "sg"}, {"Hong Kong", "", "hk"}, {"Taipei", "", "tw"},
        {"Sydney", "nsw", "au"}, {"Frankfurt", "", "de"}, {"Amsterdam", "", "nl"},
        {"London", "", "gb"}, {"Madrid", "", "es"}, {"Seattle", "wa", "us"},
        {"Dallas", "tx", "us"}, {"Chicago", "il", "us"}, {"Boston", "ma", "us"},
        {"Ashburn", "va", "us"}, {"Denver", "co", "us"}},
       {{{"Kuala Selangor", "", "my"}, {"Kuala Lumpur", "", "my"}}}, false},
      // nysernet.net: regional IATA; unreachable from HLOC's VPs.
      {"nysernet.net", core::Role::kIata, 45, false, false, 0.0, 0,
       {}, {}, false},
      // peak.org: small regional operator (paper fig. 3b).
      {"peak.org", core::Role::kIata, 35, false, false, 0.0, 6, {}, {}, false},
      // retn.net: IATA + cc, many customs, several shadowed.
      {"retn.net", core::Role::kIata, 200, true, false, 0.05, 38,
       {{"Riga", "", "lv"}, {"Vilnius", "", "lt"}, {"Tallinn", "", "ee"},
        {"Kyiv", "", "ua"}, {"Moscow", "", "ru"}, {"Warsaw", "", "pl"},
        {"Prague", "", "cz"}, {"Bucharest", "", "ro"}, {"Sofia", "", "bg"},
        {"Belgrade", "", "rs"}, {"Zagreb", "", "hr"}, {"Istanbul", "", "tr"},
        {"Helsinki", "", "fi"}, {"Stockholm", "", "se"}, {"Oslo", "", "no"},
        {"Copenhagen", "", "dk"}, {"Hamburg", "", "de"}, {"Dresden", "", "de"},
        {"Milan", "", "it"}, {"Madrid", "", "es"}, {"Lisbon", "", "pt"},
        {"London", "", "gb"}, {"Dublin", "", "ie"}, {"Ashburn", "va", "us"},
        {"Tokyo", "", "jp"}},
       {{{"Haarlem", "", "nl"}, {"Amsterdam", "", "nl"}},
        {{"Helmond", "", "nl"}, {"Eindhoven", "", "nl"}},
        {{"Tokuyama", "", "jp"}, {"Hiroshima", "", "jp"}},
        {{"Ashland", "or", "us"}, {"Portland", "or", "us"}}}, false},
      // seabone.net: IATA-style three-letter customs (Sparkle).
      {"seabone.net", core::Role::kIata, 150, false, false, 0.0, 32,
       {{"Athens", "", "gr"}, {"Istanbul", "", "tr"}, {"Milan", "", "it"},
        {"Rome", "", "it"}, {"Naples", "", "it"}, {"Turin", "", "it"},
        {"Palermo", "", "it"}, {"Barcelona", "", "es"}, {"Marseille", "", "fr"},
        {"Lisbon", "", "pt"}, {"Miami", "fl", "us"}, {"Sao Paulo", "", "br"},
        {"Buenos Aires", "", "ar"}, {"Singapore", "", "sg"}},
       {{{"Montesilvano Marina", "", "it"}, {"Milan", "", "it"}}}, false},
      // tfbnw.net: IATA backbone plus small-town data centers whose codes
      // point at the nearest metro (paper §6.2: 2/14 correct).
      {"tfbnw.net", core::Role::kIata, 160, false, false, 0.0, 40,
       {{"Ashburn", "va", "us"}, {"Toronto", "on", "ca"}},
       {{{"Prineville", "or", "us"}, {"Portland", "or", "us"}},
        {{"Forest City", "nc", "us"}, {"Charlotte", "nc", "us"}},
        {{"Altoona", "ia", "us"}, {"Des Moines", "ia", "us"}},
        {{"Papillion", "ne", "us"}, {"Omaha", "ne", "us"}},
        {{"New Albany", "oh", "us"}, {"Columbus", "oh", "us"}},
        {{"Lulea", "", "se"}, {"Stockholm", "", "se"}},
        {{"Clonee", "", "ie"}, {"Dublin", "", "ie"}},
        {{"Odense", "", "dk"}, {"Copenhagen", "", "dk"}},
        {{"Eemshaven", "", "nl"}, {"Amsterdam", "", "nl"}},
        {{"Ashland", "va", "us"}, {"Ashburn", "va", "us"}},
        {{"Santa Rosa", "ca", "us"}, {"San Francisco", "ca", "us"}},
        {{"Ashburn", "ga", "us"}, {"Atlanta", "ga", "us"}}}, false},
      // zayo.com: IATA + cc, clean customs.
      {"zayo.com", core::Role::kIata, 130, true, false, 0.0, 18,
       {{"Washington", "dc", "us"}, {"Toronto", "on", "ca"},
        {"Ashburn", "va", "us"}, {"Denver", "co", "us"}}, {}, false},
  };
  return specs;
}

}  // namespace

ValidationScenario make_validation(std::uint64_t seed, std::size_t vp_count) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  util::Rng rng(seed);

  ValidationScenario sc;
  sc.world.dict = &dict;
  sc.world.vps = make_vps(dict, vp_count);
  sc.hloc_unreachable = {"nysernet.net"};

  // Code-bearing city pool for footprint sampling.
  std::vector<geo::LocationId> iata_pool, clli_pool;
  std::vector<double> iata_w, clli_w;
  for (geo::LocationId id = 0; id < dict.size(); ++id) {
    const geo::LocationCodes& codes = dict.codes(id);
    const double w = 1.0 + static_cast<double>(dict.location(id).population);
    if (!codes.iata.empty()) {
      iata_pool.push_back(id);
      iata_w.push_back(w);
    }
    if (!codes.clli.empty()) {
      clli_pool.push_back(id);
      clli_w.push_back(w);
    }
  }

  // nysernet's footprint is upstate New York.
  const std::vector<CityRef> nysernet_cities = {
      {"New York", "ny", "us"}, {"Buffalo", "ny", "us"},  {"Rochester", "ny", "us"},
      {"Syracuse", "ny", "us"}, {"Albany", "ny", "us"}},
      peak_cities = {{"Eugene", "or", "us"}, {"Portland", "or", "us"}, {"Seattle", "wa", "us"}};

  for (const ValSpec& vs : validation_specs()) {
    OperatorSpec spec;
    spec.suffix = vs.suffix;
    spec.router_count = vs.routers;
    spec.scheme = sample_scheme(vs.role, vs.cc, vs.st, rng);
    spec.scheme.split_clli = vs.split_clli;
    spec.scheme.inconsistency = vs.inconsistency;
    // Several networks vary their hostname shapes (extra leading labels) and
    // carry customer/vanity words — harmless to structural learning, fatal
    // to fixed-position rules and run-time dictionary matching.
    if (spec.suffix == "gtt.net" || spec.suffix == "retn.net" ||
        spec.suffix == "seabone.net" || spec.suffix == "above.net" ||
        spec.suffix == "ntt.net") {
      spec.scheme.extra_label_rate = 0.45;
    }
    if (spec.suffix == "gtt.net" || spec.suffix == "retn.net" ||
        spec.suffix == "tfbnw.net" || spec.suffix == "aorta.net") {
      spec.scheme.labels.insert(spec.scheme.labels.begin(),
                                {Part::word(), Part::dash(), Part::num()});
    }

    std::set<geo::LocationId> footprint;
    const auto add_city = [&](const CityRef& ref) -> geo::LocationId {
      const geo::LocationId id = find_loc(dict, ref);
      if (id != geo::kInvalidLocation) footprint.insert(id);
      return id;
    };

    if (spec.suffix == "nysernet.net") {
      for (const CityRef& c : nysernet_cities) add_city(c);
    } else if (spec.suffix == "peak.org") {
      for (const CityRef& c : peak_cities) add_city(c);
    }

    // Learnable custom codes at their true locations.
    for (const CityRef& c : vs.customs) {
      const geo::LocationId id = add_city(c);
      if (id == geo::kInvalidLocation) continue;
      const auto code = make_custom_code(vs.role, dict, id, rng);
      if (code) spec.scheme.custom_codes[id] = *code;
    }
    // Shadowed customs: the operator deploys in a small town but names it
    // with a code that reads as the nearby metro.
    for (const auto& [small_ref, big_ref] : vs.shadows) {
      const geo::LocationId small = add_city(small_ref);
      const geo::LocationId big = find_loc(dict, big_ref);
      if (small == geo::kInvalidLocation || big == geo::kInvalidLocation) continue;
      const auto code = make_custom_code(vs.role, dict, big, rng, /*well_known=*/false);
      if (code) spec.scheme.custom_codes[small] = *code;
    }
    // Extra sampled footprint.
    const std::vector<geo::LocationId>& pool =
        vs.role == core::Role::kClli ? clli_pool : iata_pool;
    const std::vector<double>& weights = vs.role == core::Role::kClli ? clli_w : iata_w;
    for (int attempt = 0; footprint.size() < vs.customs.size() + vs.shadows.size() +
                                                  vs.footprint_extra &&
                          attempt < 2000;
         ++attempt) {
      footprint.insert(pool[rng.next_weighted(weights)]);
    }
    spec.footprint.assign(footprint.begin(), footprint.end());

    sc.suffixes.push_back(spec.suffix);
    add_operator(sc.world, std::move(spec), /*hostname_rate=*/0.95, /*stale_rate=*/0.01, rng);
  }

  PingConfig pc;
  pc.seed = seed ^ 0x5151;
  pc.router_response_rate = 0.9;
  sc.pings = probe_pings(sc.world, pc);
  TraceConfig tc;
  tc.seed = seed ^ 0x2323;
  sc.traces = probe_traceroutes(sc.world, tc);
  return sc;
}

}  // namespace hoiho::sim
