#include "sim/streaming.h"

#include <algorithm>
#include <cmath>

namespace hoiho::sim {

namespace {

// SplitMix64 finalizer: decorrelates (seed, index) into a per-suffix seed so
// each suffix's rng stream is independent of every other's — the property
// that makes the emitted stream invariant under batch-size changes.
std::uint64_t mix(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Suffix-name material (same flavour as the batch generator's, but the name
// embeds the suffix index in base36 so names are unique and derivable from
// (seed, k) alone — no cross-suffix uniqueness set).
const char* const kSyllables[] = {
    "tel", "net", "ver", "lum", "glo", "pac", "atla", "nor", "sur", "col",
    "era", "via", "zen", "arc", "omni", "uni", "den", "fib", "lin", "kor",
    "mira", "sol", "vex", "qui", "bel", "tra", "san", "pol", "gri", "hex",
};
const char* const kTlds[] = {"net", "net", "net", "com", "com", "org", "eu", "io", "de", "jp"};

std::string base36(std::size_t n) {
  static const char digits[] = "0123456789abcdefghijklmnopqrstuvwxyz";
  std::string out;
  do {
    out.insert(out.begin(), digits[n % 36]);
    n /= 36;
  } while (n != 0);
  return out;
}

std::string make_streaming_suffix(std::size_t k, util::Rng& rng) {
  std::string name = kSyllables[rng.next_below(std::size(kSyllables))];
  name += kSyllables[rng.next_below(std::size(kSyllables))];
  name += base36(k);
  name += ".";
  name += kTlds[rng.next_below(std::size(kTlds))];
  return name;
}

}  // namespace

StreamingWorld::StreamingWorld(const geo::GeoDictionary& dict, StreamingWorldConfig config)
    : dict_(dict), config_(std::move(config)) {
  config_.traits.spatial_footprint = true;
  pools_ = build_location_pools(dict_);
  vps_ = make_vps(dict_, config_.vp_count);

  // Zipf router plan: suffix k draws ~1/(k+1)^s of the hostname mass,
  // clamped per suffix; the expected hostnames-per-router factor converts
  // mass to router counts. Clamping the head loses mass, so one rebalance
  // pass spreads the remainder over unclamped suffixes.
  const std::size_t n = std::max<std::size_t>(1, config_.suffixes);
  router_plan_.assign(n, 0);
  std::vector<double> weight(n);
  for (std::size_t k = 0; k < n; ++k)
    weight[k] = 1.0 / std::pow(static_cast<double>(k + 1), config_.zipf_s);
  // ~2 interfaces per router at the configured hostname rate.
  const double hosts_per_router = std::max(0.1, 2.0 * config_.traits.hostname_rate);
  const auto plan_pass = [&](double hostname_mass, bool clamped_only_unset) {
    double w_avail = 0;
    for (std::size_t k = 0; k < n; ++k)
      if (!clamped_only_unset || router_plan_[k] == 0) w_avail += weight[k];
    if (w_avail <= 0) return;
    for (std::size_t k = 0; k < n; ++k) {
      if (clamped_only_unset && router_plan_[k] != 0) continue;
      const double hosts = hostname_mass * weight[k] / w_avail;
      const double capped = std::min(hosts, static_cast<double>(config_.max_hostnames_per_suffix));
      router_plan_[k] = static_cast<std::uint32_t>(std::max(
          static_cast<double>(config_.min_routers_per_suffix), capped / hosts_per_router));
    }
  };
  plan_pass(static_cast<double>(config_.target_hostnames), false);
  // Rebalance: mass lost to the per-suffix clamp gets spread over the tail.
  double planned_hosts = 0;
  for (std::size_t k = 0; k < n; ++k)
    planned_hosts += static_cast<double>(router_plan_[k]) * hosts_per_router;
  const double missing = static_cast<double>(config_.target_hostnames) - planned_hosts;
  if (missing > hosts_per_router) {
    std::vector<std::uint32_t> base = router_plan_;
    for (std::size_t k = 0; k < n; ++k)
      if (static_cast<double>(base[k]) * hosts_per_router + 1 <
          static_cast<double>(config_.max_hostnames_per_suffix))
        router_plan_[k] = 0;  // mark as redistribution target
    plan_pass(missing, true);
    for (std::size_t k = 0; k < n; ++k) {
      if (base[k] != 0 && router_plan_[k] != base[k]) {
        const std::uint64_t sum = base[k] + router_plan_[k];
        const double cap = static_cast<double>(config_.max_hostnames_per_suffix) / hosts_per_router;
        router_plan_[k] = static_cast<std::uint32_t>(
            std::min(static_cast<double>(sum), cap));
      }
      if (router_plan_[k] == 0) router_plan_[k] = base[k];
    }
  }
}

void StreamingWorld::reset() {
  next_suffix_ = 0;
  report_ = io::LoadReport{};
}

std::uint64_t StreamingWorld::signature() const {
  const StreamingWorldConfig& c = config_;
  const WorldConfig& t = c.traits;
  const PingConfig& p = c.ping;
  io::StreamSignature sig;
  sig.mix(std::uint64_t{1})  // signature format version
      .mix(c.seed)
      .mix(std::uint64_t{c.suffixes})
      .mix(std::uint64_t{c.target_hostnames})
      .mix(c.zipf_s)
      .mix(std::uint64_t{c.max_hostnames_per_suffix})
      .mix(std::uint64_t{c.min_routers_per_suffix})
      .mix(std::uint64_t{c.vp_count})
      .mix(std::uint64_t{c.batch_hostname_budget});
  sig.mix(t.seed)
      .mix(std::uint64_t{t.ipv6})
      .mix(std::uint64_t{t.operators})
      .mix(t.size_alpha)
      .mix(t.size_xm)
      .mix(std::uint64_t{t.max_routers_per_operator})
      .mix(std::uint64_t{t.vp_count})
      .mix(t.hostname_rate)
      .mix(t.geohint_scheme_rate)
      .mix(t.inconsistent_rate)
      .mix(t.stale_rate)
      .mix(t.mislabel_operator_rate)
      .mix(t.mislabel_rate)
      .mix(t.custom_operator_rate)
      .mix(t.custom_loc_frac)
      .mix(t.w_iata)
      .mix(t.w_city)
      .mix(t.w_clli)
      .mix(t.w_locode)
      .mix(t.w_facility)
      .mix(t.p_split_clli)
      .mix(t.p_country_iata)
      .mix(t.p_state_iata)
      .mix(t.p_country_city)
      .mix(t.p_state_city)
      .mix(t.p_country_clli)
      .mix(std::uint64_t{t.spatial_footprint})
      .mix(t.satellite_site_rate)
      .mix(t.ambiguous_operator_rate);
  sig.mix(p.seed)
      .mix(p.router_response_rate)
      .mix(p.vp_sample_rate)
      .mix(p.inflation_min)
      .mix(p.inflation_max)
      .mix(p.noise_min_ms)
      .mix(p.noise_max_ms)
      .mix(p.anycast_rate);
  // Mixed only when active so churn-free worlds keep their pre-churn
  // signatures (checkpoints from older builds still resume).
  if (c.churn_frac > 0) sig.mix(std::uint64_t{2}).mix(c.churn_seed).mix(c.churn_frac);
  return sig.value();
}

bool StreamingWorld::is_churned(std::size_t k) const {
  if (config_.churn_frac <= 0) return false;
  if (config_.churn_frac >= 1) return true;
  // mix() gives 64 uniform bits per (churn_seed, k); take the top 53 as a
  // uniform double in [0, 1) so the selection matches churn_frac in
  // expectation and is stable across batch groupings.
  const double u = static_cast<double>(mix(config_.churn_seed ^ 0xc0ffee, k) >> 11) *
                   0x1.0p-53;
  return u < config_.churn_frac;
}

std::vector<std::size_t> StreamingWorld::churned_suffixes() const {
  std::vector<std::size_t> out;
  for (std::size_t k = 0; k < config_.suffixes; ++k)
    if (is_churned(k)) out.push_back(k);
  return out;
}

std::string StreamingWorld::suffix_name(std::size_t k) const {
  util::Rng rng(mix(config_.seed, k));
  return make_streaming_suffix(k, rng);
}

std::vector<topo::HostnameRef> StreamingWorld::render_suffix(std::size_t k,
                                                             io::SuffixBatch& batch,
                                                             topo::RouterId* first_router) {
  util::Rng rng(mix(config_.seed, k));
  // The name is drawn before any churn reseed: a churned operator keeps its
  // suffix and turns over everything behind it.
  std::string name = make_streaming_suffix(k, rng);
  if (is_churned(k)) rng = util::Rng(mix(mix(config_.seed, config_.churn_seed | 1), k));
  WorldConfig traits = config_.traits;
  const SampledOperator op =
      sample_operator(dict_, pools_, traits, std::move(name), rng, router_plan_[k]);

  // Per-suffix address base: unique within a suffix, stable across batch
  // groupings. (Cross-suffix textual collisions are possible in the 24-bit
  // IPv4 rendering and harmless — addresses are decoration.)
  std::size_t addr_counter = (k + 1) * 16384;
  std::vector<HostnameTruth> truths;  // discarded: scale worlds are unscored
  const topo::RouterId first =
      render_operator(op.spec, dict_, traits.ipv6, op.hostname_rate, op.stale_rate, addr_counter,
                      rng, batch.topology, truths);
  *first_router = first;

  std::vector<topo::HostnameRef> refs;
  for (topo::RouterId r = first; r < batch.topology.size(); ++r) {
    for (const topo::Interface& ifc : batch.topology.router(r).interfaces) {
      ++report_.lines;
      if (!ifc.hostname) {
        // Unnamed interfaces are part of the world model, not an ingest
        // failure; only rendered-but-unparseable names would be skips.
        continue;
      }
      ++report_.records;
      refs.push_back(topo::HostnameRef{r, &*ifc.hostname});
    }
  }
  return refs;
}

std::optional<io::SuffixBatch> StreamingWorld::next_batch() {
  if (next_suffix_ >= config_.suffixes) return std::nullopt;

  io::SuffixBatch batch;
  batch.first_suffix_index = next_suffix_;

  // Phase 1: render whole suffixes until the hostname budget is met.
  struct Pending {
    std::size_t suffix_index;
    topo::RouterId first_router;
    topo::RouterId end_router;  // one past this suffix's last router
    std::vector<topo::HostnameRef> refs;
    std::string suffix;
  };
  std::vector<Pending> pending;
  std::size_t batch_hostnames = 0;
  while (next_suffix_ < config_.suffixes &&
         (pending.empty() || batch_hostnames < config_.batch_hostname_budget)) {
    const std::size_t k = next_suffix_++;
    Pending p;
    p.suffix_index = k;
    p.refs = render_suffix(k, batch, &p.first_router);
    p.end_router = static_cast<topo::RouterId>(batch.topology.size());
    if (p.refs.empty()) continue;  // operator rendered no usable hostnames
    p.suffix = std::string(p.refs.front().hostname->suffix());
    batch_hostnames += p.refs.size();
    pending.push_back(std::move(p));
  }

  // Phase 2: probe RTTs. The matrix spans the whole batch topology; each
  // suffix's routers are probed from a per-suffix rng so samples don't
  // depend on batch grouping.
  batch.pings = measure::Measurements(vps_, batch.topology.size());
  for (const Pending& p : pending) {
    util::Rng ping_rng(mix(config_.seed ^ config_.ping.seed, p.suffix_index));
    probe_pings_range(dict_, batch.topology, p.first_router, p.end_router, config_.ping,
                      ping_rng, batch.pings);
  }

  // Phase 3: assemble groups in stream order.
  batch.groups.reserve(pending.size());
  for (Pending& p : pending)
    batch.groups.push_back(topo::SuffixGroup{std::move(p.suffix), std::move(p.refs)});

  if (batch.groups.empty()) return next_batch();  // every suffix was empty; advance
  return batch;
}

io::SuffixBatch StreamingWorld::render_batch(const std::vector<std::size_t>& ks) {
  io::SuffixBatch batch;
  batch.first_suffix_index = ks.empty() ? 0 : ks.front();

  struct Pending {
    std::size_t suffix_index;
    topo::RouterId first_router;
    topo::RouterId end_router;
    std::vector<topo::HostnameRef> refs;
    std::string suffix;
  };
  std::vector<Pending> pending;
  for (const std::size_t k : ks) {
    Pending p;
    p.suffix_index = k;
    p.refs = render_suffix(k, batch, &p.first_router);
    p.end_router = static_cast<topo::RouterId>(batch.topology.size());
    if (p.refs.empty()) continue;  // caller maps the omission to a removal
    p.suffix = std::string(p.refs.front().hostname->suffix());
    pending.push_back(std::move(p));
  }

  batch.pings = measure::Measurements(vps_, batch.topology.size());
  for (const Pending& p : pending) {
    util::Rng ping_rng(mix(config_.seed ^ config_.ping.seed, p.suffix_index));
    probe_pings_range(dict_, batch.topology, p.first_router, p.end_router, config_.ping,
                      ping_rng, batch.pings);
  }

  batch.groups.reserve(pending.size());
  for (Pending& p : pending)
    batch.groups.push_back(topo::SuffixGroup{std::move(p.suffix), std::move(p.refs)});
  return batch;
}

}  // namespace hoiho::sim
