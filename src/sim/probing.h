// Probing simulator: generates the RTT measurements a real campaign would
// (paper §5.1.4 and fig. 5).
//
// Two models:
//   * probe_pings — the paper's follow-up ping campaign: every VP probes
//     every responsive router; RTT = best-case(great-circle) x inflation +
//     noise, inflation >= inflation_min so the physical invariant
//     (measured >= speed-of-light bound) always holds.
//   * probe_traceroutes — the RTTs that happen to be observed in the
//     traceroutes that built the ITDK (DRoP's only input): each router is
//     seen from only a few VPs, with larger path inflation. This reproduces
//     the fig. 5 gap (median traceroute RTT ~4x the ping RTT; ~36% of
//     routers seen from a single VP).
#pragma once

#include "measure/rtt_matrix.h"
#include "sim/internet.h"

namespace hoiho::sim {

struct PingConfig {
  std::uint64_t seed = 2;
  double router_response_rate = 0.82;  // routers answering any probe
  double vp_sample_rate = 0.95;        // per-VP success, given responsive
  double inflation_min = 1.15;         // path stretch over great-circle
  double inflation_max = 2.2;
  double noise_min_ms = 0.5;           // access networks, queueing, processing
  double noise_max_ms = 4.0;

  // Anycast-style contamination (src/fuse/ robustness stress): an affected
  // router's RTTs are sampled as if it sat at a random VP's city — every
  // vantage point then sees latency consistent with somewhere other than
  // the router's true location, the signature of an anycast or
  // tunnel-terminated address. 0 (the default) takes no rng draw, keeping
  // seeded campaigns byte-identical.
  double anycast_rate = 0.0;
};

measure::Measurements probe_pings(const World& world, const PingConfig& config = {});

// Range form of probe_pings, for streaming generation: probes routers
// [begin, end) of `topology` (which must carry true locations) from
// `meas.vps`, recording into `meas.pings`. Drawing from one rng across the
// whole range reproduces probe_pings exactly; the streaming generator
// instead calls this once per suffix with a per-suffix rng so the samples
// are independent of batch boundaries.
void probe_pings_range(const geo::GeoDictionary& dict, const topo::Topology& topology,
                       topo::RouterId begin, topo::RouterId end, const PingConfig& config,
                       util::Rng& rng, measure::Measurements& meas);

struct TraceConfig {
  std::uint64_t seed = 3;
  double router_seen_rate = 1.0;   // routers appearing in any traceroute
  double p_single_vp = 0.36;       // routers observed by exactly one VP
  std::size_t max_vps = 6;         // otherwise 2..max_vps observers
  // Observing VPs are drawn from the nearest `nearest_fraction` of VPs —
  // paths that traverse a router tend to start in its region, but the
  // observing VP is rarely the *closest* one (paper §5.1.4).
  double nearest_fraction = 0.35;
  double inflation_min = 1.3;      // indirect forward paths
  double inflation_max = 3.0;
  double noise_min_ms = 2.0;
  double noise_max_ms = 12.0;
};

measure::Measurements probe_traceroutes(const World& world, const TraceConfig& config = {});

}  // namespace hoiho::sim
