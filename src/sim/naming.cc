#include "sim/naming.h"

#include <algorithm>

#include "util/strings.h"

namespace hoiho::sim {

const std::vector<std::string> kRoleTokens = {
    "core", "cr", "br", "bcr", "gw", "edge", "er", "agg", "mse", "rtr", "bb", "pe", "p",
};

const std::vector<std::string> kIfaceTokens = {
    "xe", "ge", "ae", "et", "so", "te", "hu", "po", "vl", "hundredgige", "tengige", "be",
};

const std::vector<std::string> kIfaceDecoys = {
    "gig", "eth", "cpe",  // all are real IATA codes (paper challenge 5)
};

namespace {
// Material for free-form kWord parts (customer names, vanity labels).
const std::vector<std::string> kWordSyllables = {
    "fer", "dun", "mak", "tob", "ras", "wil", "hes", "pod", "gan", "lor",
    "ving", "ser", "dat", "hol", "bran", "mor", "tek", "sys", "web", "max",
};
}  // namespace

namespace {

// The community custom codes of paper table 5.
struct WellKnown {
  const char* city;
  const char* country;
  const char* code;
};
constexpr WellKnown kWellKnownCustom[] = {
    {"Ashburn", "us", "ash"}, {"Toronto", "ca", "tor"},  {"Washington", "us", "wdc"},
    {"Tokyo", "jp", "tok"},   {"Zurich", "ch", "zur"},   {"London", "gb", "ldn"},
};

std::string render_country(const geo::Location& loc) {
  // Operators conventionally write "uk", not ISO's "gb" (paper §5.2).
  return loc.country == "gb" ? "uk" : loc.country;
}

// True if `code` equals any dictionary code of the given type for `loc`.
bool clashes_with_dictionary(const geo::GeoDictionary& dict, geo::LocationId loc,
                             core::Role role, std::string_view code) {
  const geo::LocationCodes& codes = dict.codes(loc);
  const std::vector<std::string>* list = nullptr;
  switch (role) {
    case core::Role::kIata: list = &codes.iata; break;
    case core::Role::kLocode: list = &codes.locode; break;
    case core::Role::kClli: list = &codes.clli; break;
    default: return false;
  }
  return std::find(list->begin(), list->end(), std::string(code)) != list->end();
}

// A subsequence abbreviation of the place name that starts with its first
// character and has exactly `len` characters, or nullopt.
std::optional<std::string> place_abbrev(const geo::Location& loc, std::size_t len,
                                        std::size_t variant) {
  const std::vector<std::string> words = geo::place_words(loc.city);
  if (words.empty()) return std::nullopt;
  std::string out;
  if (words.size() == 1 || variant == 0) {
    const std::string& w = words[0];
    if (w.size() < len) {
      // Pad from the following words' initials ("nyk" style).
      out = w;
      for (std::size_t i = 1; i < words.size() && out.size() < len; ++i) out += words[i][0];
      if (out.size() > len) out.resize(len);
      if (out.size() < len) return std::nullopt;
    } else if (variant == 0) {
      out = w.substr(0, len);
    } else {
      // Keep the first char, then every (variant)th-offset subsequence.
      out.push_back(w[0]);
      for (std::size_t i = 1 + variant; i < w.size() && out.size() < len; ++i) {
        out.push_back(w[i]);
      }
      if (out.size() < len) return std::nullopt;
    }
  } else {
    // Multi-word: word initials, then fill from the last word.
    for (const std::string& w : words) out.push_back(w[0]);
    const std::string& lastw = words.back();
    for (std::size_t i = 1; i < lastw.size() && out.size() < len; ++i) out.push_back(lastw[i]);
    if (out.size() < len) return std::nullopt;
    out.resize(len);
  }
  if (!geo::is_place_abbrev(out, loc.city)) return std::nullopt;
  return out;
}

}  // namespace

std::optional<std::string> make_custom_code(core::Role role, const geo::GeoDictionary& dict,
                                            geo::LocationId loc, util::Rng& rng,
                                            bool well_known) {
  const geo::Location& location = dict.location(loc);
  if (role == core::Role::kIata && well_known) {
    for (const WellKnown& wk : kWellKnownCustom) {
      if (location.city == wk.city && geo::same_country(location.country, wk.country)) {
        return std::string(wk.code);
      }
    }
  }
  const std::size_t first_variant = rng.next_below(3);
  switch (role) {
    case core::Role::kIata: {
      for (std::size_t v = 0; v < 3; ++v) {
        const auto code = place_abbrev(location, 3, (first_variant + v) % 3);
        if (code && !clashes_with_dictionary(dict, loc, role, *code)) return code;
      }
      return std::nullopt;
    }
    case core::Role::kLocode: {
      for (std::size_t v = 0; v < 3; ++v) {
        const auto part = place_abbrev(location, 3, (first_variant + v) % 3);
        if (!part) continue;
        const std::string code = location.country + *part;
        if (!clashes_with_dictionary(dict, loc, role, code)) return code;
      }
      return std::nullopt;
    }
    case core::Role::kClli: {
      std::string tail = !location.state.empty() ? location.state : location.country;
      if (tail.size() > 2) tail.resize(2);  // CLLI area codes are two letters
      for (std::size_t v = 0; v < 3; ++v) {
        const auto part = place_abbrev(location, 4, (first_variant + v) % 3);
        if (!part) continue;
        const std::string code = *part + tail;
        if (!clashes_with_dictionary(dict, loc, role, code)) return code;
      }
      return std::nullopt;
    }
    default:
      return std::nullopt;
  }
}

std::string make_irregular_code(core::Role role, util::Rng& rng) {
  std::size_t len = 3;
  if (role == core::Role::kLocode) len = 5;
  if (role == core::Role::kClli) len = 6;
  std::string out;
  for (std::size_t i = 0; i < len; ++i)
    out.push_back(static_cast<char>('a' + rng.next_below(26)));
  return out;
}

std::optional<std::string> geo_code_for(const NamingScheme& scheme,
                                        const geo::GeoDictionary& dict, geo::LocationId loc) {
  const auto it = scheme.custom_codes.find(loc);
  if (it != scheme.custom_codes.end()) return it->second;
  const geo::LocationCodes& codes = dict.codes(loc);
  switch (scheme.hint_role) {
    case core::Role::kIata:
      if (codes.iata.empty()) return std::nullopt;
      return codes.iata.front();
    case core::Role::kLocode:
      if (codes.locode.empty()) return std::nullopt;
      return codes.locode.front();
    case core::Role::kClli:
      if (codes.clli.empty()) return std::nullopt;
      return codes.clli.front();
    case core::Role::kCityName:
      return geo::squash_place_name(dict.location(loc).city);
    case core::Role::kFacility: {
      const auto addrs = dict.facility_addresses(loc);
      if (addrs.empty()) return std::nullopt;
      return addrs.front();
    }
    default:
      return std::nullopt;
  }
}

std::optional<Rendered> render_hostname(const NamingScheme& scheme,
                                        const geo::GeoDictionary& dict, geo::LocationId loc,
                                        std::string_view suffix, util::Rng& rng) {
  const geo::Location& location = dict.location(loc);
  std::optional<std::string> code;
  if (scheme.has_geohint) {
    code = geo_code_for(scheme, dict, loc);
    if (!code) return std::nullopt;
  }

  // Inconsistent rendering: drop the convention for this hostname.
  if (scheme.inconsistency > 0 && rng.next_bool(scheme.inconsistency)) {
    return Rendered{std::string(kRoleTokens[rng.next_below(kRoleTokens.size())]) +
                        std::to_string(rng.next_int(1, 29)) + "." + std::string(suffix),
                    false};
  }

  std::string out;
  if (scheme.extra_label_rate > 0 && rng.next_bool(scheme.extra_label_rate)) {
    out += std::to_string(rng.next_below(2));
    out.push_back('.');
  }
  for (std::size_t li = 0; li < scheme.labels.size(); ++li) {
    if (!out.empty() && out.back() != '.') out.push_back('.');
    for (const Part& part : scheme.labels[li]) {
      switch (part.kind) {
        case PartKind::kRole:
          out += kRoleTokens[rng.next_below(kRoleTokens.size())];
          break;
        case PartKind::kIface:
          if (rng.next_bool(0.10)) {
            out += kIfaceDecoys[rng.next_below(kIfaceDecoys.size())];
          } else {
            out += kIfaceTokens[rng.next_below(kIfaceTokens.size())];
          }
          break;
        case PartKind::kGeo:
          if (scheme.split_clli && code->size() == 6) {
            out += code->substr(0, 4);
            out += std::to_string(rng.next_int(1, 9));
            out.push_back('-');
            out += code->substr(4, 2);
          } else {
            out += *code;
          }
          break;
        case PartKind::kCountry:
          out += render_country(location);
          break;
        case PartKind::kState:
          out += !location.state.empty() ? location.state : render_country(location);
          break;
        case PartKind::kNum:
          out += std::to_string(rng.next_int(1, 29));
          break;
        case PartKind::kConst:
          out += part.text;
          break;
        case PartKind::kDash:
          out.push_back('-');
          break;
        case PartKind::kWord: {
          // A fifth of free-form words happen to collide with a geo code —
          // an IATA code or a city name of some unrelated location (paper
          // challenge 5: "gig", "eth", "cpe", "francetelecom"...).
          if (rng.next_bool(0.2) && dict.size() > 0) {
            const auto id = static_cast<geo::LocationId>(rng.next_below(dict.size()));
            const geo::LocationCodes& codes = dict.codes(id);
            if (!codes.iata.empty() && rng.next_bool(0.5)) {
              out += codes.iata.front();
            } else {
              out += geo::squash_place_name(dict.location(id).city);
            }
          } else {
            out += kWordSyllables[rng.next_below(kWordSyllables.size())];
            out += kWordSyllables[rng.next_below(kWordSyllables.size())];
          }
          break;
        }
      }
    }
  }
  out.push_back('.');
  out += std::string(suffix);
  return Rendered{std::move(out), scheme.has_geohint};
}

NamingScheme sample_scheme(core::Role hint_role, bool embed_country, bool embed_state,
                           util::Rng& rng) {
  NamingScheme scheme;
  scheme.hint_role = hint_role;
  scheme.embed_country = embed_country;
  scheme.embed_state = embed_state;

  using P = Part;
  const std::size_t style = rng.next_below(5);
  switch (style) {
    case 0:
      // core1.ash1.<suffix>  (he.net style)
      scheme.labels = {{P::role(), P::num()}, {P::geo(), P::num()}};
      break;
    case 1:
      // xe-0-0-ash1-bcr1.bb.<suffix>  (ebay style)
      scheme.labels = {{P::iface(), P::dash(), P::num(), P::dash(), P::num(), P::dash(),
                        P::geo(), P::num(), P::dash(), P::role(), P::num()},
                       {P::konst("bb")}};
      break;
    case 2:
      // ae-1.r02.lhr15.<suffix>  (ntt/alter style)
      scheme.labels = {{P::iface(), P::dash(), P::num()},
                       {P::role(), P::num()},
                       {P::geo(), P::num()}};
      break;
    case 3:
      // ash-core-r1.<suffix>  (peak style)
      scheme.labels = {{P::geo(), P::dash(), P::role(), P::dash(), P::konst("r"), P::num()}};
      break;
    default:
      // xe-1-2-0.cr1.lhr2.zip.<suffix>  (zayo style, trailing constant label)
      scheme.labels = {{P::iface(), P::dash(), P::num(), P::dash(), P::num(), P::dash(), P::num()},
                       {P::role(), P::num()},
                       {P::geo(), P::num()},
                       {P::konst(rng.next_bool(0.5) ? "zip" : "net")}};
      break;
  }

  // Facility codes are long and live in their own label.
  if (hint_role == core::Role::kFacility) {
    scheme.labels = {{P::iface(), P::dash(), P::num()}, {P::geo()}, {P::role(), P::num()}};
  }

  // Annotation labels directly after the geohint label (xo.net / ntt style).
  std::size_t geo_label = 0;
  for (std::size_t i = 0; i < scheme.labels.size(); ++i)
    for (const Part& p : scheme.labels[i])
      if (p.kind == PartKind::kGeo) geo_label = i;
  if (embed_state)
    scheme.labels.insert(scheme.labels.begin() + static_cast<long>(geo_label) + 1, {P::state()});
  if (embed_country) {
    const std::size_t at = geo_label + (embed_state ? 2 : 1);
    scheme.labels.insert(scheme.labels.begin() + static_cast<long>(at), {P::country()});
  }
  return scheme;
}

}  // namespace hoiho::sim
