// Lightweight stage-span tracing for the learning pipeline.
//
// A Span is an RAII stopwatch: construct it when a pipeline stage begins,
// let it destruct when the stage ends, and one SpanRecord (name, detail,
// start, duration, work count, thread ordinal, nesting depth) lands in the
// owning Tracer's ring buffer. The tracer is bounded — when the ring is
// full, the oldest record is overwritten and `dropped()` counts the loss —
// so tracing a million-suffix run costs fixed memory.
//
// Spans are cheap but not free (two steady_clock reads plus one mutex'd
// ring push on completion), so they wrap *stages* — tag / regex-gen / eval
// / learn, a few per suffix — never per-hostname work. A null tracer makes
// Span a no-op, which is how uninstrumented runs pay nothing.
//
// Nesting depth is tracked per thread: a span opened while another span on
// the same thread is live records depth parent+1. Records are pushed on
// completion, so a parent appears after its children; order by start_ns to
// reconstruct the tree.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace hoiho::obs {

struct SpanRecord {
  std::string name;    // stage name, e.g. "tag", "eval"
  std::string detail;  // instance, e.g. the suffix
  std::uint64_t start_ns = 0;  // relative to the tracer's epoch
  std::uint64_t dur_ns = 0;
  std::uint64_t work = 0;  // caller-defined unit count (hostnames, candidates)
  std::uint32_t thread = 0;
  std::uint32_t depth = 0;
};

// JSON array of span objects (shared by RunReport and the bench output).
std::string to_json(std::span<const SpanRecord> spans, std::string_view indent = "");

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 4096);

  // Monotonic nanoseconds since an arbitrary process epoch.
  static std::uint64_t now_ns();

  void record(SpanRecord rec);

  // Completed spans, oldest first. Copies under the lock; call off the hot
  // path (end of run, export time).
  std::vector<SpanRecord> spans() const;

  std::uint64_t dropped() const;
  std::uint64_t epoch_ns() const { return epoch_ns_; }

 private:
  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;
  std::size_t capacity_;
  std::size_t head_ = 0;  // next write position once the ring has wrapped
  bool wrapped_ = false;
  std::uint64_t dropped_ = 0;
  std::uint64_t epoch_ns_;
};

class Span {
 public:
  // A null tracer produces a no-op span (no clock reads).
  Span(Tracer* tracer, std::string_view name, std::string_view detail = {});
  ~Span() { finish(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void set_work(std::uint64_t w) { rec_.work = w; }
  void add_work(std::uint64_t w) { rec_.work += w; }

  // Records the span now (idempotent; the destructor calls it).
  void finish();

 private:
  Tracer* tracer_;
  SpanRecord rec_;
};

}  // namespace hoiho::obs
