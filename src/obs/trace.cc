#include "obs/trace.h"

#include <chrono>

#include "obs/metrics.h"

namespace hoiho::obs {

namespace {

thread_local std::uint32_t t_span_depth = 0;

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

std::string to_json(std::span<const SpanRecord> spans, std::string_view indent) {
  const std::string pad(indent);
  std::string out = "[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    out += i == 0 ? "\n" : ",\n";
    out += pad + "  {\"name\": ";
    append_json_string(out, s.name);
    out += ", \"detail\": ";
    append_json_string(out, s.detail);
    out += ", \"start_ns\": " + std::to_string(s.start_ns);
    out += ", \"dur_ns\": " + std::to_string(s.dur_ns);
    out += ", \"work\": " + std::to_string(s.work);
    out += ", \"thread\": " + std::to_string(s.thread);
    out += ", \"depth\": " + std::to_string(s.depth) + "}";
  }
  if (!spans.empty()) out += "\n" + pad;
  out += "]";
  return out;
}

std::uint64_t Tracer::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), epoch_ns_(now_ns()) {
  ring_.reserve(capacity_);
}

void Tracer::record(SpanRecord rec) {
  const std::scoped_lock lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(rec));
    return;
  }
  wrapped_ = true;
  ring_[head_] = std::move(rec);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<SpanRecord> Tracer::spans() const {
  const std::scoped_lock lock(mu_);
  if (!wrapped_) return ring_;
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(head_ + i) % capacity_]);
  return out;
}

std::uint64_t Tracer::dropped() const {
  const std::scoped_lock lock(mu_);
  return dropped_;
}

Span::Span(Tracer* tracer, std::string_view name, std::string_view detail) : tracer_(tracer) {
  if (tracer_ == nullptr) return;
  rec_.name = name;
  rec_.detail = detail;
  rec_.thread = thread_ordinal();
  rec_.depth = t_span_depth++;
  rec_.start_ns = Tracer::now_ns() - tracer_->epoch_ns();
}

void Span::finish() {
  if (tracer_ == nullptr) return;
  rec_.dur_ns = Tracer::now_ns() - tracer_->epoch_ns() - rec_.start_ns;
  --t_span_depth;
  Tracer* t = tracer_;
  tracer_ = nullptr;
  t->record(std::move(rec_));
}

}  // namespace hoiho::obs
