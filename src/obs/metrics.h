// Process-wide metrics registry: the one instrumentation substrate shared
// by the learner pipeline, the hoihod serving daemon, the lenient loaders,
// and the bench harnesses (DESIGN.md §11).
//
// Three metric kinds:
//   * Counter   — monotone u64, sharded across cache-line-padded slots so
//                 concurrent writers never contend on one line; inc() is a
//                 single relaxed fetch_add.
//   * Gauge     — one i64 cell, set/add semantics (queue depths, sizes).
//   * Histogram — fixed bucket bounds, per-shard bucket counts + sum;
//                 snapshot aggregates and interpolates percentiles.
//
// Handles (Counter/Gauge/Histogram) are trivially copyable pointers into
// registry-owned stable storage; a default-constructed handle is a no-op,
// so instrumentation can be threaded through code paths that sometimes run
// without a registry at zero cost beyond a null check. Registering the same
// name twice returns the same metric (idempotent), which is what lets many
// subsystems share one registry without coordination.
//
// snapshot() is the only read path. It materializes every metric in
// registration order behind an acquire fence; registering an "effect"
// counter before its "cause" (e.g. serve hits/misses before requests) makes
// the snapshot respect the cause>=effect invariant on TSO hardware, because
// the effect is read first — see serve/metrics.h for the worked example.
//
// Naming: Prometheus-style, lower_snake base name plus optional {k="v"}
// labels, e.g. `ingest_skipped{category="bad_fields"}`. The full string is
// the identity; label sets are not parsed or merged.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace hoiho::obs {

// Small fixed shard count: enough to spread a handful of hot writer threads,
// cheap enough that every counter can afford the padding.
inline constexpr std::size_t kShards = 8;

// Stable per-thread shard assignment (round-robin at first use). Also used
// by the tracer as a compact thread ordinal for span records.
std::uint32_t thread_ordinal();
inline std::size_t shard_index() { return thread_ordinal() % kShards; }

namespace detail {

struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> v{0};
};

struct CounterCells {
  PaddedU64 shards[kShards];
};

struct GaugeCell {
  std::atomic<std::int64_t> v{0};
};

struct HistogramCells {
  std::vector<double> bounds;  // ascending upper bounds; +inf bucket implied
  // Per shard: bounds.size()+1 bucket counts, then the running sum (as
  // atomic<double> via CAS add).
  struct Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<double> sum{0.0};
  };
  Shard shards[kShards];
};

}  // namespace detail

class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) const {
    if (cells_ != nullptr)
      cells_->shards[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void add(std::uint64_t n) const { inc(n); }
  std::uint64_t load() const;  // sum over shards (acquire)
  explicit operator bool() const { return cells_ != nullptr; }

 private:
  friend class Registry;
  explicit Counter(detail::CounterCells* c) : cells_(c) {}
  detail::CounterCells* cells_ = nullptr;
};

class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t v) const {
    if (cell_ != nullptr) cell_->v.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) const {
    if (cell_ != nullptr) cell_->v.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t load() const {
    return cell_ == nullptr ? 0 : cell_->v.load(std::memory_order_acquire);
  }
  explicit operator bool() const { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Gauge(detail::GaugeCell* c) : cell_(c) {}
  detail::GaugeCell* cell_ = nullptr;
};

class Histogram {
 public:
  Histogram() = default;
  void observe(double value) const;
  explicit operator bool() const { return cells_ != nullptr; }

 private:
  friend class Registry;
  explicit Histogram(detail::HistogramCells* c) : cells_(c) {}
  detail::HistogramCells* cells_ = nullptr;
};

enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
std::string_view to_string(Kind k);

// Aggregated histogram state in a snapshot.
struct HistogramData {
  std::vector<double> bounds;          // upper bounds; final +inf bucket implied
  std::vector<std::uint64_t> buckets;  // bounds.size()+1 counts
  std::uint64_t count = 0;
  double sum = 0.0;

  // Percentile estimate by linear interpolation inside the containing
  // bucket; values in the overflow bucket clamp to the last bound.
  double percentile(double p) const;
};

// One consistent materialization of a registry. Entries appear in
// registration order; `value`/`find` look metrics up by full name.
struct Snapshot {
  struct Entry {
    std::string name;
    Kind kind = Kind::kCounter;
    std::uint64_t value = 0;  // counter
    std::int64_t gauge = 0;   // gauge
    HistogramData hist;       // histogram
  };
  std::vector<Entry> entries;

  const Entry* find(std::string_view name) const;
  std::uint64_t value(std::string_view name) const;  // 0 if absent
  bool has(std::string_view name) const { return find(name) != nullptr; }

  // {"counters": {...}, "gauges": {...}, "histograms": {...}} — the shared
  // export format (RunReport, BENCH_PIPELINE.json, the obs tests).
  std::string to_json(std::string_view indent = "") const;

  // Prometheus text exposition (the hoihod METRICS verb / --metrics-port).
  std::string to_prometheus() const;
};

// Default latency bucket bounds: 1us .. 10s in decades, in nanoseconds.
std::span<const double> default_latency_bounds_ns();

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Registration is idempotent by full name: a second call with the same
  // name returns a handle to the same metric (the kind must match; a
  // mismatched kind returns a null handle rather than corrupting storage).
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name, std::span<const double> bounds = {});

  // Reads every metric, in registration order, behind an acquire fence.
  Snapshot snapshot() const;

  std::size_t size() const;

  // The process-wide default registry, for callers with no better scope.
  // Library code (Hoiho, Server) takes an explicit registry instead.
  static Registry& process();

 private:
  struct MetricInfo {
    std::string name;
    Kind kind;
    detail::CounterCells* counter = nullptr;
    detail::GaugeCell* gauge = nullptr;
    detail::HistogramCells* histogram = nullptr;
  };

  MetricInfo* find_locked(std::string_view name);

  mutable std::mutex mu_;
  // Deques: stable addresses so handles survive later registrations.
  std::deque<detail::CounterCells> counters_;
  std::deque<detail::GaugeCell> gauges_;
  std::deque<detail::HistogramCells> histograms_;
  std::vector<MetricInfo> metrics_;  // registration order
};

}  // namespace hoiho::obs
