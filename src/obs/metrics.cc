#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace hoiho::obs {

std::uint32_t thread_ordinal() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

std::string_view to_string(Kind k) {
  switch (k) {
    case Kind::kCounter: return "counter";
    case Kind::kGauge: return "gauge";
    case Kind::kHistogram: return "histogram";
  }
  return "unknown";
}

std::uint64_t Counter::load() const {
  if (cells_ == nullptr) return 0;
  std::uint64_t total = 0;
  for (const detail::PaddedU64& s : cells_->shards)
    total += s.v.load(std::memory_order_acquire);
  return total;
}

void Histogram::observe(double value) const {
  if (cells_ == nullptr) return;
  const std::vector<double>& bounds = cells_->bounds;
  std::size_t b = 0;
  while (b < bounds.size() && value > bounds[b]) ++b;
  detail::HistogramCells::Shard& shard = cells_->shards[shard_index()];
  shard.buckets[b].fetch_add(1, std::memory_order_relaxed);
  double cur = shard.sum.load(std::memory_order_relaxed);
  while (!shard.sum.compare_exchange_weak(cur, cur + value, std::memory_order_relaxed)) {
  }
}

double HistogramData::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const std::uint64_t in_bucket = buckets[b];
    if (static_cast<double>(seen + in_bucket) < target || in_bucket == 0) {
      seen += in_bucket;
      continue;
    }
    if (b >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();  // overflow bucket
    const double lo = b == 0 ? 0.0 : bounds[b - 1];
    const double hi = bounds[b];
    const double frac = (target - static_cast<double>(seen)) / static_cast<double>(in_bucket);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

const Snapshot::Entry* Snapshot::find(std::string_view name) const {
  for (const Entry& e : entries)
    if (e.name == name) return &e;
  return nullptr;
}

std::uint64_t Snapshot::value(std::string_view name) const {
  const Entry* e = find(name);
  if (e == nullptr) return 0;
  return e->kind == Kind::kGauge ? static_cast<std::uint64_t>(e->gauge) : e->value;
}

namespace {

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

std::string fmt_num(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15)
    return std::to_string(static_cast<long long>(v));
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

std::string Snapshot::to_json(std::string_view indent) const {
  const std::string pad(indent);
  const auto emit_kind = [&](std::string& out, Kind kind, std::string_view key) {
    out += pad;
    out += "  \"";
    out += key;
    out += "\": {";
    bool first = true;
    for (const Entry& e : entries) {
      if (e.kind != kind) continue;
      if (!first) out += ", ";
      first = false;
      append_json_string(out, e.name);
      out += ": ";
      if (kind == Kind::kCounter) {
        out += std::to_string(e.value);
      } else if (kind == Kind::kGauge) {
        out += std::to_string(e.gauge);
      } else {
        out += "{\"count\": " + std::to_string(e.hist.count);
        out += ", \"sum\": " + fmt_num(e.hist.sum);
        out += ", \"p50\": " + fmt_num(e.hist.percentile(0.50));
        out += ", \"p90\": " + fmt_num(e.hist.percentile(0.90));
        out += ", \"p99\": " + fmt_num(e.hist.percentile(0.99));
        out += ", \"buckets\": [";
        for (std::size_t b = 0; b < e.hist.buckets.size(); ++b) {
          if (b != 0) out += ", ";
          out += "{\"le\": ";
          out += b < e.hist.bounds.size() ? fmt_num(e.hist.bounds[b]) : std::string("\"+Inf\"");
          out += ", \"count\": " + std::to_string(e.hist.buckets[b]) + "}";
        }
        out += "]}";
      }
    }
    out += "}";
  };
  std::string out = "{\n";
  emit_kind(out, Kind::kCounter, "counters");
  out += ",\n";
  emit_kind(out, Kind::kGauge, "gauges");
  out += ",\n";
  emit_kind(out, Kind::kHistogram, "histograms");
  out += "\n" + pad + "}";
  return out;
}

std::string Snapshot::to_prometheus() const {
  std::string out = "# hoiho metrics\n";
  std::vector<std::string> typed;  // bases already given a # TYPE line
  for (const Entry& e : entries) {
    const std::size_t brace = e.name.find('{');
    const std::string base = e.name.substr(0, brace);
    if (std::find(typed.begin(), typed.end(), base) == typed.end()) {
      typed.push_back(base);
      out += "# TYPE " + base + " " + std::string(to_string(e.kind)) + "\n";
    }
    if (e.kind == Kind::kCounter) {
      out += e.name + " " + std::to_string(e.value) + "\n";
    } else if (e.kind == Kind::kGauge) {
      out += e.name + " " + std::to_string(e.gauge) + "\n";
    } else {
      std::uint64_t cum = 0;
      for (std::size_t b = 0; b < e.hist.buckets.size(); ++b) {
        cum += e.hist.buckets[b];
        const std::string le =
            b < e.hist.bounds.size() ? fmt_num(e.hist.bounds[b]) : std::string("+Inf");
        out += base + "_bucket{le=\"" + le + "\"} " + std::to_string(cum) + "\n";
      }
      out += base + "_sum " + fmt_num(e.hist.sum) + "\n";
      out += base + "_count " + std::to_string(e.hist.count) + "\n";
    }
  }
  return out;
}

std::span<const double> default_latency_bounds_ns() {
  static const double kBounds[] = {1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10};
  return kBounds;
}

Registry::MetricInfo* Registry::find_locked(std::string_view name) {
  for (MetricInfo& m : metrics_)
    if (m.name == name) return &m;
  return nullptr;
}

Counter Registry::counter(std::string_view name) {
  const std::scoped_lock lock(mu_);
  if (MetricInfo* m = find_locked(name))
    return m->kind == Kind::kCounter ? Counter(m->counter) : Counter();
  detail::CounterCells& cells = counters_.emplace_back();
  metrics_.push_back(MetricInfo{std::string(name), Kind::kCounter, &cells, nullptr, nullptr});
  return Counter(&cells);
}

Gauge Registry::gauge(std::string_view name) {
  const std::scoped_lock lock(mu_);
  if (MetricInfo* m = find_locked(name))
    return m->kind == Kind::kGauge ? Gauge(m->gauge) : Gauge();
  detail::GaugeCell& cell = gauges_.emplace_back();
  metrics_.push_back(MetricInfo{std::string(name), Kind::kGauge, nullptr, &cell, nullptr});
  return Gauge(&cell);
}

Histogram Registry::histogram(std::string_view name, std::span<const double> bounds) {
  const std::scoped_lock lock(mu_);
  if (MetricInfo* m = find_locked(name))
    return m->kind == Kind::kHistogram ? Histogram(m->histogram) : Histogram();
  if (bounds.empty()) bounds = default_latency_bounds_ns();
  detail::HistogramCells& cells = histograms_.emplace_back();
  cells.bounds.assign(bounds.begin(), bounds.end());
  std::sort(cells.bounds.begin(), cells.bounds.end());
  for (detail::HistogramCells::Shard& s : cells.shards)
    s.buckets = std::make_unique<std::atomic<std::uint64_t>[]>(cells.bounds.size() + 1);
  metrics_.push_back(MetricInfo{std::string(name), Kind::kHistogram, nullptr, nullptr, &cells});
  return Histogram(&cells);
}

std::size_t Registry::size() const {
  const std::scoped_lock lock(mu_);
  return metrics_.size();
}

Snapshot Registry::snapshot() const {
  const std::scoped_lock lock(mu_);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  Snapshot snap;
  snap.entries.reserve(metrics_.size());
  for (const MetricInfo& m : metrics_) {
    Snapshot::Entry e;
    e.name = m.name;
    e.kind = m.kind;
    switch (m.kind) {
      case Kind::kCounter:
        for (const detail::PaddedU64& s : m.counter->shards)
          e.value += s.v.load(std::memory_order_acquire);
        break;
      case Kind::kGauge:
        e.gauge = m.gauge->v.load(std::memory_order_acquire);
        break;
      case Kind::kHistogram: {
        e.hist.bounds = m.histogram->bounds;
        e.hist.buckets.assign(e.hist.bounds.size() + 1, 0);
        for (const detail::HistogramCells::Shard& s : m.histogram->shards) {
          for (std::size_t b = 0; b < e.hist.buckets.size(); ++b)
            e.hist.buckets[b] += s.buckets[b].load(std::memory_order_acquire);
          e.hist.sum += s.sum.load(std::memory_order_acquire);
        }
        for (const std::uint64_t c : e.hist.buckets) e.hist.count += c;
        break;
      }
    }
    snap.entries.push_back(std::move(e));
  }
  return snap;
}

Registry& Registry::process() {
  static Registry instance;
  return instance;
}

}  // namespace hoiho::obs
