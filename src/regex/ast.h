// AST for the restricted regex dialect Hoiho generates (paper appendix A).
//
// The dialect is deliberately small — everything the learner emits is a
// full-string-anchored sequence of:
//   * literal strings                         zayo\.com
//   * character classes with a quantifier     [a-z]{3}  [a-z]+  \d+  \d*
//                                             [^\.]+  [^-]++  [a-z\d]+  .+
//   * capture groups over a run of elements   ([a-z]{3})  (\d+[a-z]+)
// Quantifiers: {n}, +, *, and possessive ++ / {n}+ (no backtracking into the
// repeat). Groups never nest. Matching is always anchored (^...$).
//
// Regex objects are built either programmatically (core/regex_gen) or by
// parsing the printed form (regex/parser.h); to_string() round-trips.
#pragma once

#include <bitset>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hoiho::rx {

// A set of characters plus its canonical printed representation.
struct CharClass {
  std::bitset<128> set;
  std::string repr;  // "[a-z]", "\\d", "[a-z\\d]", "[^\\.]", "[^-]", "."

  bool matches(char c) const {
    const auto u = static_cast<unsigned char>(c);
    return u < 128 && set[u];
  }

  // Factories for the dialect's standard classes.
  static CharClass alpha();               // [a-z]
  static CharClass digit();               // \d
  static CharClass alnum();               // [a-z\d]
  static CharClass any();                 // . (any char)
  static CharClass not_chars(std::string_view excluded);  // [^...]

  friend bool operator==(const CharClass& a, const CharClass& b) { return a.repr == b.repr; }
};

// Repetition counts; max < 0 means unbounded.
struct Quant {
  int min = 1;
  int max = 1;
  bool possessive = false;

  bool is_single() const { return min == 1 && max == 1 && !possessive; }
  std::string to_string() const;

  static Quant one() { return {1, 1, false}; }
  static Quant exactly(int n) { return {n, n, false}; }
  static Quant plus(bool possessive = false) { return {1, -1, possessive}; }
  static Quant star(bool possessive = false) { return {0, -1, possessive}; }

  friend bool operator==(const Quant& a, const Quant& b) {
    return a.min == b.min && a.max == b.max && a.possessive == b.possessive;
  }
};

// One element of the sequence: a literal string or a quantified class.
struct Node {
  enum class Kind : std::uint8_t { kLiteral, kClass };

  Kind kind = Kind::kLiteral;
  std::string literal;  // kLiteral only (raw characters; escaping on print)
  CharClass cls;        // kClass only
  Quant quant;          // kClass only (literals repeat exactly once)

  static Node lit(std::string_view s);
  static Node cls_node(CharClass c, Quant q);

  std::string to_string() const;
  friend bool operator==(const Node& a, const Node& b);
};

// A capture group covering nodes [first, last] inclusive.
struct Group {
  std::size_t first = 0;
  std::size_t last = 0;
  friend bool operator==(const Group&, const Group&) = default;
};

// A full regex: anchored sequence of nodes with non-nested groups.
struct Regex {
  std::vector<Node> nodes;
  std::vector<Group> groups;  // ordered by position; non-overlapping

  std::size_t capture_count() const { return groups.size(); }

  // Canonical printed form, e.g. "^.+\\.([a-z]{3})\\d+\\.alter\\.net$".
  std::string to_string() const;

  friend bool operator==(const Regex& a, const Regex& b) {
    return a.nodes == b.nodes && a.groups == b.groups;
  }
};

// Convenience builder so generation code reads naturally:
//   RegexBuilder b;
//   b.any_plus().lit(".").begin_group().cls(CharClass::alpha(), Quant::exactly(3))
//    .end_group().cls(CharClass::digit(), Quant::plus()).lit(".alter.net");
class RegexBuilder {
 public:
  RegexBuilder& lit(std::string_view s);
  RegexBuilder& cls(CharClass c, Quant q);
  RegexBuilder& any_plus();  // ".+"
  RegexBuilder& begin_group();
  RegexBuilder& end_group();
  Regex build() &&;

 private:
  Regex rx_;
  std::size_t group_start_ = static_cast<std::size_t>(-1);
};

}  // namespace hoiho::rx
