#include "regex/program.h"

#include <algorithm>

namespace hoiho::rx {

unsigned ClassBits::count() const {
  unsigned n = 0;
  for (const std::uint64_t word : w) {
    std::uint64_t v = word;
    while (v) {
      v &= v - 1;
      ++n;
    }
  }
  return n;
}

ClassBits to_class_bits(const std::bitset<128>& set) {
  ClassBits out;
  for (unsigned b = 0; b < 128; ++b) {
    if (set[b]) out.set(b);
  }
  return out;
}

Program Program::compile(const Regex& rx) {
  auto st = std::make_shared<Storage>();
  Program p;
  st->code.reserve(rx.nodes.size());
  st->groups.reserve(rx.groups.size());
  for (const Group& g : rx.groups)
    st->groups.push_back(GroupRef{static_cast<std::uint32_t>(g.first),
                                  static_cast<std::uint32_t>(g.last)});

  for (const Node& node : rx.nodes) {
    Instr in;
    if (node.kind == Node::Kind::kLiteral) {
      in.op = Instr::Op::kLiteral;
      in.arg = static_cast<std::uint32_t>(st->pool.size());
      in.len = static_cast<std::uint32_t>(node.literal.size());
      st->pool += node.literal;
      p.min_len_ += node.literal.size();
      if (p.max_len_ >= 0) p.max_len_ += static_cast<long>(node.literal.size());
      for (const char c : node.literal) {
        const auto u = static_cast<unsigned char>(c);
        if (u < 128) p.required_.set(u);
      }
    } else {
      // {n} quantifiers take exactly one repeat count, so they execute on the
      // no-backtrack path just like possessive repeats.
      const bool no_backtrack = node.quant.possessive || node.quant.min == node.quant.max;
      in.op = no_backtrack ? Instr::Op::kClassPossessive : Instr::Op::kClassGreedy;
      in.min = node.quant.min;
      in.max = node.quant.max;
      // Deduplicate classes: candidate sets reuse a handful of them.
      const ClassBits bits = to_class_bits(node.cls.set);
      const auto it = std::find(st->classes.begin(), st->classes.end(), bits);
      in.arg = static_cast<std::uint32_t>(it - st->classes.begin());
      if (it == st->classes.end()) st->classes.push_back(bits);
      p.min_len_ += static_cast<std::size_t>(node.quant.min);
      if (node.quant.max < 0) {
        p.max_len_ = -1;
      } else if (p.max_len_ >= 0) {
        p.max_len_ += node.quant.max;
      }
      if (node.quant.min >= 1 && bits.count() == 1) {
        for (unsigned b = 0; b < 128; ++b) {
          if (bits.test(b)) p.required_.set(b);
        }
      }
    }
    st->code.push_back(in);
  }

  // Literal texts land in the pool in node order, so the leading and
  // trailing literal runs are contiguous pool ranges.
  std::size_t head = 0;
  for (const Node& node : rx.nodes) {
    if (node.kind != Node::Kind::kLiteral) break;
    head += node.literal.size();
  }
  p.head_len_ = static_cast<std::uint32_t>(head);
  std::size_t tail = 0;
  for (std::size_t i = rx.nodes.size(); i-- > 0;) {
    if (rx.nodes[i].kind != Node::Kind::kLiteral) break;
    tail += rx.nodes[i].literal.size();
  }
  p.tail_len_ = static_cast<std::uint32_t>(tail);
  p.tail_off_ = static_cast<std::uint32_t>(st->pool.size() - tail);

  p.code_ = st->code;
  p.classes_ = st->classes;
  p.pool_ = st->pool;
  p.groups_ = st->groups;
  p.backing_ = std::move(st);
  return p;
}

bool Program::run(std::string_view s, MatchScratch& scratch) const {
  const std::size_t n = code_.size();
  scratch.budget_exhausted = false;
  if (scratch.pos.size() < n + 1) scratch.pos.resize(n + 1);
  if (scratch.take.size() < n) scratch.take.resize(n, 0);
  std::size_t* const pos = scratch.pos.data();
  std::size_t* const take = scratch.take.data();
  pos[0] = 0;
  std::uint64_t steps = 0;
  std::size_t i = 0;
  for (;;) {
    // Arrival at node i is one unit of work — the same accounting as the
    // backtracker's match_from entries, so both engines exhaust the work
    // bound on the same inputs.
    if (++steps > kMaxMatchSteps) {
      scratch.budget_exhausted = true;
      return false;
    }
    if (i == n) {
      if (pos[n] == s.size()) return true;
    } else {
      const Instr& in = code_[i];
      const std::size_t p = pos[i];
      if (in.op == Instr::Op::kLiteral) {
        if (s.compare(p, in.len, pool_.data() + in.arg, in.len) == 0) {
          pos[i + 1] = p + in.len;
          ++i;
          continue;
        }
      } else {
        const ClassBits& cls = classes_[in.arg];
        const std::size_t remaining = s.size() - p;
        const std::size_t cap =
            in.max < 0 ? remaining
                       : std::min<std::size_t>(remaining, static_cast<std::size_t>(in.max));
        std::size_t avail = 0;
        while (avail < cap) {
          const auto u = static_cast<unsigned char>(s[p + avail]);
          if (u >= 128 || !cls.test(u)) break;
          ++avail;
        }
        if (avail >= static_cast<std::size_t>(in.min)) {
          take[i] = avail;
          pos[i + 1] = p + avail;
          ++i;
          continue;
        }
      }
    }
    // Backtrack: give one repeat back at the nearest greedy class with slack.
    for (;;) {
      if (i == 0) return false;
      --i;
      const Instr& in = code_[i];
      if (in.op == Instr::Op::kClassGreedy && take[i] > static_cast<std::size_t>(in.min)) {
        --take[i];
        pos[i + 1] = pos[i] + take[i];
        ++i;
        break;
      }
    }
  }
}

}  // namespace hoiho::rx
