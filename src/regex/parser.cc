#include "regex/parser.h"

#include <cctype>

namespace hoiho::rx {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view src) : src_(src) {}

  std::optional<Regex> run(std::string* error) {
    if (!consume('^')) return fail("expected '^' anchor", error);
    Regex rx;
    while (pos_ < src_.size() && src_[pos_] != '$') {
      const char c = src_[pos_];
      if (c == '(') {
        if (in_group_) return fail("nested groups are not in the dialect", error);
        ++pos_;
        in_group_ = true;
        group_first_ = rx.nodes.size();
        continue;
      }
      if (c == ')') {
        if (!in_group_) return fail("unbalanced ')'", error);
        if (rx.nodes.size() == group_first_) return fail("empty group", error);
        ++pos_;
        in_group_ = false;
        rx.groups.push_back(Group{group_first_, rx.nodes.size() - 1});
        continue;
      }
      if (!parse_piece(rx, error)) return std::nullopt;
    }
    if (in_group_) return fail("unterminated group", error);
    if (!consume('$')) return fail("expected '$' anchor", error);
    if (pos_ != src_.size()) return fail("trailing characters after '$'", error);
    return rx;
  }

 private:
  std::string_view src_;
  std::size_t pos_ = 0;
  bool in_group_ = false;
  std::size_t group_first_ = 0;

  bool consume(char c) {
    if (pos_ < src_.size() && src_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<Regex> fail(std::string_view msg, std::string* error) {
    if (error != nullptr)
      *error = std::string(msg) + " at offset " + std::to_string(pos_);
    return std::nullopt;
  }

  // Parses one atom (+ optional quantifier) and appends node(s) to rx.
  bool parse_piece(Regex& rx, std::string* error) {
    const std::size_t start = pos_;
    CharClass cls;
    bool is_class = false;
    std::string lit;

    const char c = src_[pos_];
    if (c == '.') {
      cls = CharClass::any();
      is_class = true;
      ++pos_;
    } else if (c == '[') {
      if (!parse_class(cls, error)) return false;
      is_class = true;
    } else if (c == '\\') {
      if (pos_ + 1 >= src_.size()) {
        fail("dangling backslash", error);
        return false;
      }
      const char e = src_[pos_ + 1];
      if (e == 'd') {
        cls = CharClass::digit();
        is_class = true;
        pos_ += 2;
      } else {
        lit.push_back(e);  // escaped literal char: \. \- \\ etc.
        pos_ += 2;
      }
    } else if (c == '*' || c == '+' || c == '{' || c == '?' || c == '|') {
      fail("quantifier without atom (or unsupported operator)", error);
      return false;
    } else {
      lit.push_back(c);
      ++pos_;
    }

    // Optional quantifier.
    Quant q = Quant::one();
    bool has_quant = false;
    if (pos_ < src_.size()) {
      const char qc = src_[pos_];
      if (qc == '+') {
        q = Quant::plus();
        has_quant = true;
        ++pos_;
      } else if (qc == '*') {
        q = Quant::star();
        has_quant = true;
        ++pos_;
      } else if (qc == '{') {
        std::size_t close = src_.find('}', pos_);
        if (close == std::string_view::npos) {
          fail("unterminated '{'", error);
          return false;
        }
        int n = 0;
        for (std::size_t i = pos_ + 1; i < close; ++i) {
          if (!std::isdigit(static_cast<unsigned char>(src_[i]))) {
            pos_ = i;
            fail("only {n} repetition is in the dialect", error);
            return false;
          }
          n = n * 10 + (src_[i] - '0');
        }
        if (close == pos_ + 1) {
          fail("empty '{}'", error);
          return false;
        }
        q = Quant::exactly(n);
        has_quant = true;
        pos_ = close + 1;
      }
      // Possessive modifier: a second '+'.
      if (has_quant && pos_ < src_.size() && src_[pos_] == '+') {
        q.possessive = true;
        ++pos_;
      }
    }

    if (is_class) {
      rx.nodes.push_back(Node::cls_node(std::move(cls), q));
      return true;
    }
    if (has_quant) {
      // Quantified literal char: model as a single-char class.
      CharClass single;
      single.set.set(static_cast<unsigned char>(lit[0]));
      const std::size_t atom_len = (src_[start] == '\\') ? 2 : 1;
      single.repr = std::string(src_.substr(start, atom_len));
      rx.nodes.push_back(Node::cls_node(std::move(single), q));
      return true;
    }
    // Plain literal: merge with a preceding literal node when legal — not
    // across a group boundary in either direction (the previous node closing
    // a group, or the current group opening right here).
    const bool prev_closes_group =
        !rx.groups.empty() && rx.groups.back().last + 1 == rx.nodes.size();
    const bool group_opens_here = in_group_ && rx.nodes.size() == group_first_;
    if (!rx.nodes.empty() && rx.nodes.back().kind == Node::Kind::kLiteral &&
        !prev_closes_group && !group_opens_here) {
      rx.nodes.back().literal += lit;
    } else {
      rx.nodes.push_back(Node::lit(lit));
    }
    return true;
  }

  // Parses "[...]" starting at '['.
  bool parse_class(CharClass& out, std::string* error) {
    ++pos_;  // '['
    bool negated = false;
    if (pos_ < src_.size() && src_[pos_] == '^') {
      negated = true;
      ++pos_;
    }
    std::bitset<128> bits;
    std::string repr = negated ? "[^" : "[";
    bool closed = false;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == ']') {
        ++pos_;
        closed = true;
        break;
      }
      if (c == '\\') {
        if (pos_ + 1 >= src_.size()) {
          fail("dangling backslash in class", error);
          return false;
        }
        const char e = src_[pos_ + 1];
        if (e == 'd') {
          for (char d = '0'; d <= '9'; ++d) bits.set(static_cast<unsigned char>(d));
          repr += "\\d";
        } else {
          bits.set(static_cast<unsigned char>(e));
          repr += '\\';
          repr += e;
        }
        pos_ += 2;
        continue;
      }
      // Range "a-z" (only when '-' is between two chars; trailing '-' is a
      // literal dash).
      if (pos_ + 2 < src_.size() && src_[pos_ + 1] == '-' && src_[pos_ + 2] != ']') {
        const char lo = c, hi = src_[pos_ + 2];
        if (lo > hi) {
          fail("inverted range in class", error);
          return false;
        }
        for (char d = lo; d <= hi; ++d) bits.set(static_cast<unsigned char>(d));
        repr += lo;
        repr += '-';
        repr += hi;
        pos_ += 3;
        continue;
      }
      bits.set(static_cast<unsigned char>(c));
      repr += c;
      ++pos_;
    }
    if (!closed) {
      fail("unterminated class", error);
      return false;
    }
    repr += ']';
    if (negated) bits.flip();
    out.set = bits;
    out.repr = repr;
    return true;
  }
};

}  // namespace

std::optional<Regex> parse(std::string_view pattern, std::string* error) {
  return Parser(pattern).run(error);
}

}  // namespace hoiho::rx
