#include "regex/serialize.h"

namespace hoiho::rx {

// Friend shims: the only code with access to Program/SetMatcher internals
// besides compile()/finalize() themselves.
struct ProgramIO {
  static ProgramHeader append(const Program& p, ProgramPools& pools) {
    ProgramHeader h;
    h.code_off = static_cast<std::uint32_t>(pools.instrs.size());
    h.code_count = static_cast<std::uint32_t>(p.code_.size());
    h.class_off = static_cast<std::uint32_t>(pools.classes.size());
    h.class_count = static_cast<std::uint32_t>(p.classes_.size());
    h.pool_off = static_cast<std::uint32_t>(pools.pool.size());
    h.pool_len = static_cast<std::uint32_t>(p.pool_.size());
    h.group_off = static_cast<std::uint32_t>(pools.groups.size());
    h.group_count = static_cast<std::uint32_t>(p.groups_.size());
    h.min_len = static_cast<std::uint32_t>(p.min_len_);
    h.max_len = static_cast<std::int32_t>(p.max_len_);
    h.head_len = p.head_len_;
    h.tail_off = p.tail_off_;
    h.tail_len = p.tail_len_;
    h.required = p.required_;
    pools.instrs.insert(pools.instrs.end(), p.code_.begin(), p.code_.end());
    pools.classes.insert(pools.classes.end(), p.classes_.begin(), p.classes_.end());
    pools.pool.append(p.pool_);
    pools.groups.insert(pools.groups.end(), p.groups_.begin(), p.groups_.end());
    return h;
  }

  static Program view(const ProgramPoolsView& v, const ProgramHeader& h,
                      std::shared_ptr<const void> keepalive) {
    Program p;
    p.code_ = v.instrs.subspan(h.code_off, h.code_count);
    p.classes_ = v.classes.subspan(h.class_off, h.class_count);
    p.pool_ = v.pool.substr(h.pool_off, h.pool_len);
    p.groups_ = v.groups.subspan(h.group_off, h.group_count);
    p.min_len_ = h.min_len;
    p.max_len_ = h.max_len;
    p.head_len_ = h.head_len;
    p.tail_off_ = h.tail_off;
    p.tail_len_ = h.tail_len;
    p.required_ = h.required;
    p.backing_ = std::move(keepalive);
    return p;
  }
};

struct SetMatcherIO {
  static MatcherHeader append(const SetMatcher& m, ProgramPools& pools) {
    MatcherHeader h;
    h.program_off = static_cast<std::uint32_t>(pools.programs.size());
    h.program_count = static_cast<std::uint32_t>(m.programs_.size());
    for (const Program& p : m.programs_) pools.programs.push_back(ProgramIO::append(p, pools));
    h.node_off = static_cast<std::uint32_t>(pools.nodes.size());
    h.node_count = static_cast<std::uint32_t>(m.nodes_.size());
    h.edge_off = static_cast<std::uint32_t>(pools.edges.size());
    h.edge_count = static_cast<std::uint32_t>(m.edges_.size());
    h.term_off = static_cast<std::uint32_t>(pools.terms.size());
    h.term_count = static_cast<std::uint32_t>(m.terminals_.size());
    pools.nodes.insert(pools.nodes.end(), m.nodes_.begin(), m.nodes_.end());
    pools.edges.insert(pools.edges.end(), m.edges_.begin(), m.edges_.end());
    pools.terms.insert(pools.terms.end(), m.terminals_.begin(), m.terminals_.end());
    return h;
  }

  static SetMatcher view(const ProgramPoolsView& v, const MatcherHeader& h,
                         const std::shared_ptr<const void>& keepalive) {
    SetMatcher m;
    m.programs_.reserve(h.program_count);
    for (std::uint32_t k = 0; k < h.program_count; ++k)
      m.programs_.push_back(ProgramIO::view(v, v.programs[h.program_off + k], keepalive));
    m.nodes_ = v.nodes.subspan(h.node_off, h.node_count);
    m.edges_ = v.edges.subspan(h.edge_off, h.edge_count);
    m.terminals_ = v.terms.subspan(h.term_off, h.term_count);
    m.trie_backing_ = keepalive;
    return m;
  }
};

std::uint32_t ProgramPools::add(const Program& p) {
  const auto index = static_cast<std::uint32_t>(programs.size());
  programs.push_back(ProgramIO::append(p, *this));
  return index;
}

std::uint32_t ProgramPools::add(const SetMatcher& m) {
  const auto index = static_cast<std::uint32_t>(matchers.size());
  matchers.push_back(SetMatcherIO::append(m, *this));
  return index;
}

namespace {

// 32-bit offsets + counts are checked in 64-bit so `off + count` can't wrap.
bool range_ok(std::uint32_t off, std::uint32_t count, std::size_t limit) {
  return std::uint64_t{off} + std::uint64_t{count} <= limit;
}

std::optional<std::string> validate_program(const ProgramPoolsView& v, const ProgramHeader& h,
                                            std::size_t index) {
  // Error context is formatted only on the failing path: this runs for every
  // program of every loaded model, and success must not allocate.
  const auto where = [index](const char* msg) {
    return "program " + std::to_string(index) + msg;
  };
  const auto at = [index](std::uint32_t k, const char* msg) {
    return "program " + std::to_string(index) + " instr " + std::to_string(k) + msg;
  };
  if (!range_ok(h.code_off, h.code_count, v.instrs.size()))
    return where(": code range out of bounds");
  if (!range_ok(h.class_off, h.class_count, v.classes.size()))
    return where(": class range out of bounds");
  if (!range_ok(h.pool_off, h.pool_len, v.pool.size()))
    return where(": pool range out of bounds");
  if (!range_ok(h.group_off, h.group_count, v.groups.size()))
    return where(": group range out of bounds");
  if (h.head_len > h.pool_len) return where(": literal head past pool slice");
  if (!range_ok(h.tail_off, h.tail_len, h.pool_len))
    return where(": literal tail past pool slice");
  for (std::uint32_t k = 0; k < h.code_count; ++k) {
    const Instr& in = v.instrs[h.code_off + k];
    switch (in.op) {
      case Instr::Op::kLiteral:
        if (!range_ok(in.arg, in.len, h.pool_len))
          return at(k, ": literal ref past pool slice");
        break;
      case Instr::Op::kClassGreedy:
      case Instr::Op::kClassPossessive:
        if (in.arg >= h.class_count) return at(k, ": class index out of range");
        if (in.min < 0) return at(k, ": negative quantifier min");
        if (in.max >= 0 && in.max < in.min) return at(k, ": quantifier max below min");
        break;
      default:
        return at(k, ": unknown opcode");
    }
  }
  for (std::uint32_t g = 0; g < h.group_count; ++g) {
    const GroupRef& gr = v.groups[h.group_off + g];
    if (gr.first > gr.last || gr.last >= h.code_count)
      return "program " + std::to_string(index) + " group " + std::to_string(g) +
             ": node range out of bounds";
  }
  return std::nullopt;
}

std::optional<std::string> validate_matcher(const ProgramPoolsView& v, const MatcherHeader& h,
                                            std::size_t index) {
  // Same as validate_program: context strings only materialize on failure.
  const auto where = [index](const char* msg) {
    return "matcher " + std::to_string(index) + msg;
  };
  const auto sub = [index](const char* kind, std::uint32_t k, const char* msg) {
    return "matcher " + std::to_string(index) + " " + kind + " " + std::to_string(k) + msg;
  };
  if (!range_ok(h.program_off, h.program_count, v.programs.size()))
    return where(": program range out of bounds");
  if (!range_ok(h.node_off, h.node_count, v.nodes.size()))
    return where(": node range out of bounds");
  if (!range_ok(h.edge_off, h.edge_count, v.edges.size()))
    return where(": edge range out of bounds");
  if (!range_ok(h.term_off, h.term_count, v.terms.size()))
    return where(": terminal range out of bounds");
  if (h.program_count > 0 && h.node_count == 0)
    return where(": non-empty matcher without a trie root");
  for (std::uint32_t n = 0; n < h.node_count; ++n) {
    const TrieNodeRec& rec = v.nodes[h.node_off + n];
    if (!range_ok(rec.edge_off, rec.edge_count, h.edge_count))
      return sub("node", n, ": edge slice out of bounds");
    if (!range_ok(rec.term_off, rec.term_count, h.term_count))
      return sub("node", n, ": terminal slice out of bounds");
  }
  for (std::uint32_t e = 0; e < h.edge_count; ++e) {
    if (v.edges[h.edge_off + e].node >= h.node_count)
      return sub("edge", e, ": target node out of range");
  }
  for (std::uint32_t t = 0; t < h.term_count; ++t) {
    if (v.terms[h.term_off + t] >= h.program_count)
      return sub("terminal", t, ": program index out of range");
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> validate(const ProgramPoolsView& v) {
  for (std::size_t i = 0; i < v.programs.size(); ++i) {
    if (auto err = validate_program(v, v.programs[i], i)) return err;
  }
  for (std::size_t i = 0; i < v.matchers.size(); ++i) {
    if (auto err = validate_matcher(v, v.matchers[i], i)) return err;
  }
  return std::nullopt;
}

Program view_program(const ProgramPoolsView& v, std::uint32_t index,
                     std::shared_ptr<const void> keepalive) {
  return ProgramIO::view(v, v.programs[index], std::move(keepalive));
}

SetMatcher view_matcher(const ProgramPoolsView& v, std::uint32_t index,
                        const std::shared_ptr<const void>& keepalive) {
  return SetMatcherIO::view(v, v.matchers[index], keepalive);
}

}  // namespace hoiho::rx
