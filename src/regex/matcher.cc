#include "regex/matcher.h"

namespace hoiho::rx {

namespace {

class Engine {
 public:
  Engine(const Regex& rx, std::string_view subject)
      : rx_(rx), s_(subject), open_(rx.nodes.size(), -1), close_(rx.nodes.size(), -1) {
    for (std::size_t g = 0; g < rx.groups.size(); ++g) {
      open_[rx.groups[g].first] = static_cast<int>(g);
      close_[rx.groups[g].last] = static_cast<int>(g);
    }
    caps_.resize(rx.groups.size());
  }

  bool run(std::vector<Capture>& out) {
    if (!match_from(0, 0)) return false;
    out = caps_;
    return true;
  }

  bool budget_exhausted() const { return exhausted_; }

  // Enables per-node span recording; must be called before run().
  void record_spans(std::vector<Capture>* spans) {
    spans_ = spans;
    if (spans_ != nullptr) spans_->assign(rx_.nodes.size(), Capture{});
  }

 private:
  const Regex& rx_;
  std::string_view s_;
  std::vector<int> open_, close_;
  std::vector<Capture> caps_;
  std::vector<Capture>* spans_ = nullptr;
  std::uint64_t steps_ = 0;
  bool exhausted_ = false;

  // Records the span consumed by `node` once the suffix match succeeded —
  // spans on failed branches are unwound for free by never being recorded.
  void note_span(std::size_t node, std::size_t begin, std::size_t end) {
    if (spans_ != nullptr) (*spans_)[node] = Capture{begin, end};
  }

  // How many consecutive chars starting at `pos` the class matches, capped
  // at `limit`.
  std::size_t run_length(const CharClass& cls, std::size_t pos, std::size_t limit) const {
    std::size_t n = 0;
    while (n < limit && pos + n < s_.size() && cls.matches(s_[pos + n])) ++n;
    return n;
  }

  bool match_from(std::size_t node, std::size_t pos) {
    if (++steps_ > kMaxMatchSteps) {
      exhausted_ = true;
      return false;
    }
    if (node == rx_.nodes.size()) return pos == s_.size();

    if (open_[node] >= 0) caps_[static_cast<std::size_t>(open_[node])].begin = pos;

    const Node& n = rx_.nodes[node];
    if (n.kind == Node::Kind::kLiteral) {
      const std::string& lit = n.literal;
      if (s_.compare(pos, lit.size(), lit) != 0) return false;
      const std::size_t next = pos + lit.size();
      if (close_[node] >= 0) caps_[static_cast<std::size_t>(close_[node])].end = next;
      if (!match_from(node + 1, next)) return false;
      note_span(node, pos, next);
      return true;
    }

    // Class node with quantifier.
    const std::size_t remaining = s_.size() - pos;
    const std::size_t max_take =
        n.quant.max < 0 ? remaining : std::min<std::size_t>(remaining, static_cast<std::size_t>(n.quant.max));
    const std::size_t avail = run_length(n.cls, pos, max_take);
    const std::size_t min_take = static_cast<std::size_t>(n.quant.min);
    if (avail < min_take) return false;

    if (n.quant.possessive) {
      const std::size_t next = pos + avail;
      if (close_[node] >= 0) caps_[static_cast<std::size_t>(close_[node])].end = next;
      if (!match_from(node + 1, next)) return false;
      note_span(node, pos, next);
      return true;
    }
    // Greedy with backtracking: longest first.
    for (std::size_t take = avail + 1; take-- > min_take;) {
      const std::size_t next = pos + take;
      if (close_[node] >= 0) caps_[static_cast<std::size_t>(close_[node])].end = next;
      if (match_from(node + 1, next)) {
        note_span(node, pos, next);
        return true;
      }
    }
    return false;
  }
};

}  // namespace

MatchResult match(const Regex& rx, std::string_view subject) {
  MatchResult result;
  Engine engine(rx, subject);
  result.matched = engine.run(result.captures);
  result.budget_exhausted = engine.budget_exhausted();
  return result;
}

MatchResult match_with_spans(const Regex& rx, std::string_view subject,
                             std::vector<Capture>& node_spans) {
  MatchResult result;
  Engine engine(rx, subject);
  engine.record_spans(&node_spans);
  result.matched = engine.run(result.captures);
  result.budget_exhausted = engine.budget_exhausted();
  if (!result.matched) node_spans.clear();
  return result;
}

std::vector<std::string> capture_strings(const Regex& rx, std::string_view subject) {
  std::vector<std::string> out;
  const MatchResult m = match(rx, subject);
  if (!m.matched) return out;
  out.reserve(m.captures.size());
  for (const Capture& c : m.captures) out.emplace_back(c.view(subject));
  return out;
}

}  // namespace hoiho::rx
