// Serialization of compiled rx::Program / rx::SetMatcher as flat pools.
//
// A model file carries many matchers; rather than one blob per matcher,
// every compiled artifact is appended into nine shared pools (instructions,
// class bitmaps, literal-pool characters, capture groups, program headers,
// trie nodes/edges/terminals, matcher headers). Offsets INSIDE records stay
// local — a ProgramHeader's instruction args index its own code/class/pool
// slices, a TrieNodeRec's edge_off indexes its matcher's edge slice — so
// loading never rewrites anything: view_program()/view_matcher() hand back
// objects whose spans are subspans of the pools, pinned by a caller-provided
// keepalive (the model mapping). Assembling an M-scale model's matchers this
// way touches only header bytes; instruction pages fault in on first match.
//
// validate() bounds-checks every record against malicious or truncated input
// (out-of-range offsets, group indices past code, trie edges past nodes)
// before any view is constructed — the core of the "never UB" loader
// contract (core/ncb.cc layers file-level section checks on top).
//
// All record types are padding-free little-endian PODs; core/ncb.cc defines
// the file container (sections, checksums) around these pools.
#pragma once

#include <optional>
#include <string>

#include "regex/set_matcher.h"

namespace hoiho::rx {

// Fixed-width descriptor of one compiled Program. Offsets are element
// indices into the shared pools; the instruction args inside the code slice
// are local to this program's class/pool slices.
struct ProgramHeader {
  std::uint32_t code_off = 0, code_count = 0;    // -> pools.instrs
  std::uint32_t class_off = 0, class_count = 0;  // -> pools.classes
  std::uint32_t pool_off = 0, pool_len = 0;      // -> pools.pool (bytes)
  std::uint32_t group_off = 0, group_count = 0;  // -> pools.groups
  std::uint32_t min_len = 0;
  std::int32_t max_len = 0;  // -1 = unbounded
  std::uint32_t head_len = 0;
  std::uint32_t tail_off = 0, tail_len = 0;  // local to this program's pool slice
  std::uint32_t reserved = 0;
  ClassBits required;
};
static_assert(sizeof(ProgramHeader) == 72);

// Fixed-width descriptor of one finalized SetMatcher. Programs are appended
// contiguously, so program k of the matcher is pools.programs[program_off+k]
// — trie terminals index that local range.
struct MatcherHeader {
  std::uint32_t program_off = 0, program_count = 0;  // -> pools.programs
  std::uint32_t node_off = 0, node_count = 0;        // -> pools.nodes
  std::uint32_t edge_off = 0, edge_count = 0;        // -> pools.edges
  std::uint32_t term_off = 0, term_count = 0;        // -> pools.terms
};
static_assert(sizeof(MatcherHeader) == 32);

// Builder-side owned pools: add() compiled artifacts, then write each
// vector's bytes out as one file section.
struct ProgramPools {
  std::vector<Instr> instrs;
  std::vector<ClassBits> classes;
  std::string pool;
  std::vector<GroupRef> groups;
  std::vector<ProgramHeader> programs;
  std::vector<TrieNodeRec> nodes;
  std::vector<TrieEdgeRec> edges;
  std::vector<std::uint32_t> terms;
  std::vector<MatcherHeader> matchers;

  std::uint32_t add(const Program& p);      // returns index into `programs`
  std::uint32_t add(const SetMatcher& m);   // returns index into `matchers`
};

// Load-side read-only views over the same nine pools (typically
// reinterpreted from mapped file sections).
struct ProgramPoolsView {
  std::span<const Instr> instrs;
  std::span<const ClassBits> classes;
  std::string_view pool;
  std::span<const GroupRef> groups;
  std::span<const ProgramHeader> programs;
  std::span<const TrieNodeRec> nodes;
  std::span<const TrieEdgeRec> edges;
  std::span<const std::uint32_t> terms;
  std::span<const MatcherHeader> matchers;
};

// Full structural validation of every program and matcher record. Returns a
// named error on the first violation, nullopt when every offset, index, and
// quantifier is in range. view_program()/view_matcher() assume this passed.
std::optional<std::string> validate(const ProgramPoolsView& v);

// Assemble a Program / SetMatcher as views over validated pools. `keepalive`
// must own (or pin) the memory the view spans point into.
Program view_program(const ProgramPoolsView& v, std::uint32_t index,
                     std::shared_ptr<const void> keepalive);
SetMatcher view_matcher(const ProgramPoolsView& v, std::uint32_t index,
                        const std::shared_ptr<const void>& keepalive);

}  // namespace hoiho::rx
