// Compiled form of a dialect Regex: a flat instruction array executed by a
// non-recursive matcher with caller-provided scratch.
//
// The AST interpreter in matcher.cc re-walks the tree and allocates capture
// state for every (regex, subject) pair; compiling once per regex moves all
// of that to setup time. A Program carries:
//   * a flat instruction array (literal runs merged into one shared pool,
//     character classes deduplicated into a table);
//   * precomputed min/max subject length;
//   * the anchored literal head and tail (leading/trailing literal runs);
//   * a required-byte table: every byte that must appear in any matching
//     subject (literal bytes and single-byte classes with min >= 1).
// The prefilters reject most non-matching subjects in a few comparisons
// without touching the instruction array; SetMatcher (set_matcher.h) shares
// them across a whole candidate set.
//
// Storage layout (the zero-copy refactor behind the ncb model format): a
// Program does not own vectors directly — it holds spans over either
//   * a shared immutable Storage block built by compile(), or
//   * an external read-only mapping (an ncb model file), assembled by
//     rx::view_program (serialize.h) with no per-instruction work.
// Every record type below (Instr, ClassBits, GroupRef) is a padding-free
// trivially-copyable POD whose bytes ARE the on-disk representation, so an
// mmap'ed model runs the exact matcher the compiler produced. A copied
// Program shares its backing block (programs are immutable once built).
//
// Execution is an explicit-stack rendering of the same greedy-longest-first
// search the backtracker performs, so results — including capture spans,
// per-node spans, and the work-bound behaviour — are byte-identical to
// rx::match (tests/test_regex_differential.cc holds the two engines to that).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "regex/ast.h"
#include "regex/matcher.h"

namespace hoiho::rx {

// 16-byte character-class bitmap (bit b set = byte b matches). The
// mmap-viewable replacement for std::bitset<128> inside compiled programs;
// also used for the per-subject byte-presence table in SetMatcher.
struct ClassBits {
  std::uint64_t w[2] = {0, 0};

  bool test(unsigned b) const { return (w[b >> 6] >> (b & 63)) & 1u; }
  void set(unsigned b) { w[b >> 6] |= std::uint64_t{1} << (b & 63); }

  // True if this mask has a bit the other lacks (required-byte prefilter:
  // "some required byte is absent from the subject").
  bool any_not_in(const ClassBits& o) const {
    return ((w[0] & ~o.w[0]) | (w[1] & ~o.w[1])) != 0;
  }
  unsigned count() const;

  friend bool operator==(const ClassBits&, const ClassBits&) = default;
};
static_assert(sizeof(ClassBits) == 16 && alignof(ClassBits) == 8);

ClassBits to_class_bits(const std::bitset<128>& set);

// One compiled instruction. Op is 32-bit so the struct has no padding —
// its bytes are written to (and mapped back from) ncb model files verbatim.
struct Instr {
  enum class Op : std::uint32_t {
    kLiteral,          // pool[arg, arg+len)
    kClassGreedy,      // classes[arg], quant [min, max], backtracks
    kClassPossessive,  // classes[arg], takes the longest run, no backtrack
  };
  Op op = Op::kLiteral;
  std::uint32_t arg = 0;
  std::uint32_t len = 0;
  std::int32_t min = 1;
  std::int32_t max = 1;  // < 0 = unbounded
};
static_assert(sizeof(Instr) == 20);

// A capture group as node indices [first, last] — the fixed-width form of
// rx::Group used by compiled programs and the on-disk format.
struct GroupRef {
  std::uint32_t first = 0;
  std::uint32_t last = 0;
};
static_assert(sizeof(GroupRef) == 8);

// Set-matching work accounting, accumulated on the per-thread scratch so
// counting costs a plain (non-atomic) increment. Consumers fold the totals
// into an obs::Registry at a coarser granularity (per suffix run, per
// batch); the scratch itself never synchronizes.
struct MatchStats {
  std::uint64_t subjects = 0;      // match_all() calls
  std::uint64_t candidates = 0;    // programs surviving the tail trie
  std::uint64_t programs_run = 0;  // programs that passed every prefilter
  std::uint64_t hits = 0;          // programs that matched

  MatchStats& operator+=(const MatchStats& o) {
    subjects += o.subjects;
    candidates += o.candidates;
    programs_run += o.programs_run;
    hits += o.hits;
    return *this;
  }
};

// Reusable per-thread match state. One scratch serves any number of
// programs; capacity warms up to the largest program seen, after which
// matching allocates nothing.
struct MatchScratch {
  // Path state for the current/last run: node i consumed subject range
  // [pos[i], pos[i+1]) on the successful path.
  std::vector<std::size_t> pos;
  std::vector<std::size_t> take;  // current repeat count per greedy class node

  // True when the last run gave up because it exceeded the backtracking
  // work bound (reported as a non-match, never a false match).
  bool budget_exhausted = false;

  // SetMatcher working storage (candidate indices from the tail trie).
  std::vector<std::uint32_t> candidates;

  // Set-matching work counters (see MatchStats).
  MatchStats set_stats;
};

class Program {
 public:
  Program() = default;

  static Program compile(const Regex& rx);

  // Anchored match. On success, scratch.pos holds the per-node spans of the
  // matching path. Runs the cheap prefilters first; zero allocation once
  // `scratch` has warmed capacity.
  bool match(std::string_view subject, MatchScratch& scratch) const {
    // Reset even when the prefilter short-circuits, so callers never read a
    // stale exhaustion flag from an earlier program's run.
    scratch.budget_exhausted = false;
    return prefilter(subject) && run(subject, scratch);
  }

  // The engine proper, without prefilters (SetMatcher applies its own).
  bool run(std::string_view subject, MatchScratch& scratch) const;

  std::size_t node_count() const { return code_.size(); }
  std::size_t capture_count() const { return groups_.size(); }

  // Capture/span extraction from the successful path left in `scratch`.
  // `out` must have room for capture_count() entries.
  void captures(const MatchScratch& scratch, Capture* out) const {
    for (std::size_t g = 0; g < groups_.size(); ++g)
      out[g] = Capture{scratch.pos[groups_[g].first], scratch.pos[groups_[g].last + 1]};
  }
  Capture node_span(const MatchScratch& scratch, std::size_t i) const {
    return Capture{scratch.pos[i], scratch.pos[i + 1]};
  }

  // --- prefilter facts (shared with SetMatcher) ------------------------------
  std::size_t min_len() const { return min_len_; }
  long max_len() const { return max_len_; }  // -1 = unbounded
  std::string_view literal_head() const { return pool_.substr(0, head_len_); }
  std::string_view literal_tail() const { return pool_.substr(tail_off_, tail_len_); }
  const ClassBits& required_bytes() const { return required_; }

  // Length + anchored head/tail checks (everything except byte presence,
  // which needs a per-subject table the caller may want to share).
  bool prefilter(std::string_view subject) const {
    if (subject.size() < min_len_) return false;
    if (max_len_ >= 0 && subject.size() > static_cast<std::size_t>(max_len_)) return false;
    if (head_len_ != 0 && subject.compare(0, head_len_, literal_head()) != 0) return false;
    if (tail_len_ != 0 &&
        (subject.size() < tail_len_ ||
         subject.compare(subject.size() - tail_len_, tail_len_, literal_tail()) != 0))
      return false;
    return true;
  }

 private:
  friend struct ProgramIO;  // serialize.h: pool extraction + view assembly

  // Owned backing for compiled programs; view programs pin the mapping via
  // the same type-erased shared_ptr instead.
  struct Storage {
    std::vector<Instr> code;
    std::vector<ClassBits> classes;
    std::string pool;
    std::vector<GroupRef> groups;
  };

  std::span<const Instr> code_;
  std::span<const ClassBits> classes_;
  std::string_view pool_;
  std::span<const GroupRef> groups_;
  std::size_t min_len_ = 0;
  long max_len_ = 0;
  std::uint32_t head_len_ = 0;
  std::uint32_t tail_off_ = 0, tail_len_ = 0;
  ClassBits required_;
  std::shared_ptr<const void> backing_;  // Storage block or model mapping
};

}  // namespace hoiho::rx
