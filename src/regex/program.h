// Compiled form of a dialect Regex: a flat instruction array executed by a
// non-recursive matcher with caller-provided scratch.
//
// The AST interpreter in matcher.cc re-walks the tree and allocates capture
// state for every (regex, subject) pair; compiling once per regex moves all
// of that to setup time. A Program carries:
//   * a flat instruction array (literal runs merged into one shared pool,
//     character classes deduplicated into a table);
//   * precomputed min/max subject length;
//   * the anchored literal head and tail (leading/trailing literal runs);
//   * a required-byte table: every byte that must appear in any matching
//     subject (literal bytes and single-byte classes with min >= 1).
// The prefilters reject most non-matching subjects in a few comparisons
// without touching the instruction array; SetMatcher (set_matcher.h) shares
// them across a whole candidate set.
//
// Execution is an explicit-stack rendering of the same greedy-longest-first
// search the backtracker performs, so results — including capture spans,
// per-node spans, and the work-bound behaviour — are byte-identical to
// rx::match (tests/test_regex_differential.cc holds the two engines to that).
#pragma once

#include <bitset>
#include <cstdint>
#include <string_view>
#include <vector>

#include "regex/ast.h"
#include "regex/matcher.h"

namespace hoiho::rx {

// Set-matching work accounting, accumulated on the per-thread scratch so
// counting costs a plain (non-atomic) increment. Consumers fold the totals
// into an obs::Registry at a coarser granularity (per suffix run, per
// batch); the scratch itself never synchronizes.
struct MatchStats {
  std::uint64_t subjects = 0;      // match_all() calls
  std::uint64_t candidates = 0;    // programs surviving the tail trie
  std::uint64_t programs_run = 0;  // programs that passed every prefilter
  std::uint64_t hits = 0;          // programs that matched

  MatchStats& operator+=(const MatchStats& o) {
    subjects += o.subjects;
    candidates += o.candidates;
    programs_run += o.programs_run;
    hits += o.hits;
    return *this;
  }
};

// Reusable per-thread match state. One scratch serves any number of
// programs; capacity warms up to the largest program seen, after which
// matching allocates nothing.
struct MatchScratch {
  // Path state for the current/last run: node i consumed subject range
  // [pos[i], pos[i+1]) on the successful path.
  std::vector<std::size_t> pos;
  std::vector<std::size_t> take;  // current repeat count per greedy class node

  // True when the last run gave up because it exceeded the backtracking
  // work bound (reported as a non-match, never a false match).
  bool budget_exhausted = false;

  // SetMatcher working storage (candidate indices from the tail trie).
  std::vector<std::uint32_t> candidates;

  // Set-matching work counters (see MatchStats).
  MatchStats set_stats;
};

class Program {
 public:
  Program() = default;

  static Program compile(const Regex& rx);

  // Anchored match. On success, scratch.pos holds the per-node spans of the
  // matching path. Runs the cheap prefilters first; zero allocation once
  // `scratch` has warmed capacity.
  bool match(std::string_view subject, MatchScratch& scratch) const {
    // Reset even when the prefilter short-circuits, so callers never read a
    // stale exhaustion flag from an earlier program's run.
    scratch.budget_exhausted = false;
    return prefilter(subject) && run(subject, scratch);
  }

  // The engine proper, without prefilters (SetMatcher applies its own).
  bool run(std::string_view subject, MatchScratch& scratch) const;

  std::size_t node_count() const { return code_.size(); }
  std::size_t capture_count() const { return groups_.size(); }

  // Capture/span extraction from the successful path left in `scratch`.
  // `out` must have room for capture_count() entries.
  void captures(const MatchScratch& scratch, Capture* out) const {
    for (std::size_t g = 0; g < groups_.size(); ++g)
      out[g] = Capture{scratch.pos[groups_[g].first], scratch.pos[groups_[g].last + 1]};
  }
  Capture node_span(const MatchScratch& scratch, std::size_t i) const {
    return Capture{scratch.pos[i], scratch.pos[i + 1]};
  }

  // --- prefilter facts (shared with SetMatcher) ------------------------------
  std::size_t min_len() const { return min_len_; }
  long max_len() const { return max_len_; }  // -1 = unbounded
  std::string_view literal_head() const { return {pool_.data(), head_len_}; }
  std::string_view literal_tail() const { return {pool_.data() + tail_off_, tail_len_}; }
  const std::bitset<128>& required_bytes() const { return required_; }

  // Length + anchored head/tail checks (everything except byte presence,
  // which needs a per-subject table the caller may want to share).
  bool prefilter(std::string_view subject) const {
    if (subject.size() < min_len_) return false;
    if (max_len_ >= 0 && subject.size() > static_cast<std::size_t>(max_len_)) return false;
    if (head_len_ != 0 && subject.compare(0, head_len_, literal_head()) != 0) return false;
    if (tail_len_ != 0 &&
        (subject.size() < tail_len_ ||
         subject.compare(subject.size() - tail_len_, tail_len_, literal_tail()) != 0))
      return false;
    return true;
  }

 private:
  struct Instr {
    enum class Op : std::uint8_t {
      kLiteral,          // pool_[arg, arg+len)
      kClassGreedy,      // classes_[arg], quant [min, max], backtracks
      kClassPossessive,  // classes_[arg], takes the longest run, no backtrack
    };
    Op op = Op::kLiteral;
    std::uint32_t arg = 0;
    std::uint32_t len = 0;
    std::int32_t min = 1;
    std::int32_t max = 1;  // < 0 = unbounded
  };

  std::vector<Instr> code_;
  std::vector<std::bitset<128>> classes_;
  std::string pool_;
  std::vector<Group> groups_;
  std::size_t min_len_ = 0;
  long max_len_ = 0;
  std::uint32_t head_len_ = 0;
  std::uint32_t tail_off_ = 0, tail_len_ = 0;
  std::bitset<128> required_;
};

}  // namespace hoiho::rx
