#include "regex/ast.h"

#include "util/strings.h"

namespace hoiho::rx {

namespace {

std::bitset<128> range_bits(char lo, char hi) {
  std::bitset<128> b;
  for (int c = lo; c <= hi; ++c) b.set(static_cast<std::size_t>(c));
  return b;
}

}  // namespace

CharClass CharClass::alpha() {
  return CharClass{range_bits('a', 'z'), "[a-z]"};
}

CharClass CharClass::digit() {
  return CharClass{range_bits('0', '9'), "\\d"};
}

CharClass CharClass::alnum() {
  return CharClass{range_bits('a', 'z') | range_bits('0', '9'), "[a-z\\d]"};
}

CharClass CharClass::any() {
  std::bitset<128> b;
  b.set();
  return CharClass{b, "."};
}

CharClass CharClass::not_chars(std::string_view excluded) {
  std::bitset<128> b;
  b.set();
  std::string repr = "[^";
  for (char c : excluded) {
    b.reset(static_cast<std::size_t>(static_cast<unsigned char>(c)));
    repr += util::regex_escape(std::string_view(&c, 1));
  }
  repr += "]";
  return CharClass{b, repr};
}

std::string Quant::to_string() const {
  std::string out;
  if (min == 1 && max == 1) {
    out = "";
  } else if (min == 1 && max < 0) {
    out = "+";
  } else if (min == 0 && max < 0) {
    out = "*";
  } else if (min == max) {
    out = "{" + std::to_string(min) + "}";
  } else {
    out = "{" + std::to_string(min) + "," + (max < 0 ? "" : std::to_string(max)) + "}";
  }
  if (possessive) out += "+";
  return out;
}

Node Node::lit(std::string_view s) {
  Node n;
  n.kind = Kind::kLiteral;
  n.literal = std::string(s);
  return n;
}

Node Node::cls_node(CharClass c, Quant q) {
  Node n;
  n.kind = Kind::kClass;
  n.cls = std::move(c);
  n.quant = q;
  return n;
}

std::string Node::to_string() const {
  if (kind == Kind::kLiteral) return util::regex_escape(literal);
  return cls.repr + quant.to_string();
}

bool operator==(const Node& a, const Node& b) {
  if (a.kind != b.kind) return false;
  if (a.kind == Node::Kind::kLiteral) return a.literal == b.literal;
  return a.cls == b.cls && a.quant == b.quant;
}

std::string Regex::to_string() const {
  std::string out = "^";
  std::size_t g = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (g < groups.size() && groups[g].first == i) out += "(";
    out += nodes[i].to_string();
    if (g < groups.size() && groups[g].last == i) {
      out += ")";
      ++g;
    }
  }
  out += "$";
  return out;
}

RegexBuilder& RegexBuilder::lit(std::string_view s) {
  if (s.empty()) return *this;
  if (rx_.nodes.capacity() == 0) rx_.nodes.reserve(8);
  // Merge adjacent literals unless doing so would cross a group boundary:
  // a group opening at the node about to be added, or the previous node
  // closing an already-built group.
  const bool group_opens_here = group_start_ == rx_.nodes.size();
  const bool prev_closes_group =
      !rx_.groups.empty() && rx_.groups.back().last + 1 == rx_.nodes.size();
  if (!rx_.nodes.empty() && rx_.nodes.back().kind == Node::Kind::kLiteral &&
      !group_opens_here && !prev_closes_group) {
    rx_.nodes.back().literal += std::string(s);
  } else {
    rx_.nodes.push_back(Node::lit(s));
  }
  return *this;
}

RegexBuilder& RegexBuilder::cls(CharClass c, Quant q) {
  if (rx_.nodes.capacity() == 0) rx_.nodes.reserve(8);
  rx_.nodes.push_back(Node::cls_node(std::move(c), q));
  return *this;
}

RegexBuilder& RegexBuilder::any_plus() {
  return cls(CharClass::any(), Quant::plus());
}

RegexBuilder& RegexBuilder::begin_group() {
  group_start_ = rx_.nodes.size();
  return *this;
}

RegexBuilder& RegexBuilder::end_group() {
  rx_.groups.push_back(Group{group_start_, rx_.nodes.size() - 1});
  group_start_ = static_cast<std::size_t>(-1);
  return *this;
}

Regex RegexBuilder::build() && {
  return std::move(rx_);
}

}  // namespace hoiho::rx
