// Parser for the restricted regex dialect (see regex/ast.h).
//
// Accepts exactly the forms the learner prints: full-string anchors ^...$,
// literals with backslash escapes, the standard character classes, {n} / + /
// * / possessive + quantifiers, and non-nested capture groups. Returns
// std::nullopt with a diagnostic for anything outside the dialect (e.g.
// alternation, nested groups), since such patterns cannot have come from
// this library.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "regex/ast.h"

namespace hoiho::rx {

// Parses `pattern`; on failure returns std::nullopt and, if `error` is
// non-null, stores a human-readable message with the offset.
std::optional<Regex> parse(std::string_view pattern, std::string* error = nullptr);

}  // namespace hoiho::rx
