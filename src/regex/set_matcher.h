// SetMatcher: one compiled structure over a whole candidate set of regexes,
// answering "which of these N regexes match this subject, with captures" in
// one pass.
//
// The pipeline evaluates hundreds of candidate regexes per suffix against
// every hostname of that suffix; almost all pairs are non-matches. Every
// regex the generator emits is anchored and ends in a literal tail (at
// minimum ".<suffix>", usually more), so the set is organised as a trie over
// the *reversed* anchored literal tails: walking the subject backwards
// through the trie yields exactly the programs whose tail the subject
// carries, skipping the rest without touching them. Surviving candidates
// then pass per-program prefilters — length bounds, the anchored literal
// head, and a required-byte check against a byte-presence table computed
// once per subject — before the compiled program runs.
//
// Results are deterministic: hits are reported in ascending regex index, so
// "first matching regex wins" (naming-convention semantics) is hits[0].
#pragma once

#include <span>

#include "regex/program.h"

namespace hoiho::rx {

// Reusable result buffer: indices of the matching programs plus a shared
// capture arena (no per-hit allocation once capacity has warmed).
struct SetMatches {
  std::vector<std::uint32_t> indices;      // matching program indices, ascending
  std::vector<std::uint32_t> cap_offsets;  // indices.size()+1 offsets into caps
  std::vector<Capture> caps;               // capture arena
  std::vector<std::uint32_t> exhausted;    // programs whose run hit the work bound

  std::size_t size() const { return indices.size(); }
  std::span<const Capture> captures(std::size_t k) const {
    return {caps.data() + cap_offsets[k], cap_offsets[k + 1] - cap_offsets[k]};
  }
  void clear() {
    indices.clear();
    cap_offsets.assign(1, 0);
    caps.clear();
    exhausted.clear();
  }
};

class SetMatcher {
 public:
  SetMatcher() = default;
  explicit SetMatcher(std::span<const Regex> regexes) {
    for (const Regex& rx : regexes) add(rx);
    finalize();
  }

  // Incremental build: add() compiles one program; finalize() builds the
  // tail trie. match_all() may only be called after finalize().
  void add(const Regex& rx) { programs_.push_back(Program::compile(rx)); }
  void finalize();

  std::size_t size() const { return programs_.size(); }
  const Program& program(std::size_t i) const { return programs_[i]; }

  // Fills `out` with every matching program (ascending index) and its
  // captures. `scratch` provides the execution stack and candidate buffer.
  void match_all(std::string_view subject, MatchScratch& scratch, SetMatches& out) const;

 private:
  struct TrieNode {
    std::vector<std::pair<char, std::uint32_t>> next;  // small fan-out: linear scan
    std::vector<std::uint32_t> terminal;  // programs whose whole tail ends here
  };

  std::vector<Program> programs_;
  std::vector<TrieNode> trie_;  // trie_[0] = root (programs with no literal tail)
};

}  // namespace hoiho::rx
