// SetMatcher: one compiled structure over a whole candidate set of regexes,
// answering "which of these N regexes match this subject, with captures" in
// one pass.
//
// The pipeline evaluates hundreds of candidate regexes per suffix against
// every hostname of that suffix; almost all pairs are non-matches. Every
// regex the generator emits is anchored and ends in a literal tail (at
// minimum ".<suffix>", usually more), so the set is organised as a trie over
// the *reversed* anchored literal tails: walking the subject backwards
// through the trie yields exactly the programs whose tail the subject
// carries, skipping the rest without touching them. Surviving candidates
// then pass per-program prefilters — length bounds, the anchored literal
// head, and a required-byte check against a byte-presence table computed
// once per subject — before the compiled program runs.
//
// The trie is stored flat (SoA: node records + edge records + terminal
// indices in three arrays) rather than as per-node vectors. That makes
// finalize()'d matchers both cache-friendlier to walk and directly
// serializable: an ncb model file stores the three arrays verbatim and
// rx::view_matcher (serialize.h) reassembles a matcher as spans over the
// mapping, sharing this exact match_all() path.
//
// Results are deterministic: hits are reported in ascending regex index, so
// "first matching regex wins" (naming-convention semantics) is hits[0].
#pragma once

#include <span>

#include "regex/program.h"

namespace hoiho::rx {

// Flat-trie records (on-disk representation — keep padding-free and pinned).
struct TrieNodeRec {
  std::uint32_t edge_off = 0;   // first edge in the edge array
  std::uint32_t edge_count = 0;
  std::uint32_t term_off = 0;   // first terminal program index
  std::uint32_t term_count = 0;
};
static_assert(sizeof(TrieNodeRec) == 16);

struct TrieEdgeRec {
  std::uint32_t node = 0;  // child node index
  std::uint8_t c = 0;      // edge label
  std::uint8_t pad[3] = {0, 0, 0};
};
static_assert(sizeof(TrieEdgeRec) == 8);

// Reusable result buffer: indices of the matching programs plus a shared
// capture arena (no per-hit allocation once capacity has warmed).
struct SetMatches {
  std::vector<std::uint32_t> indices;      // matching program indices, ascending
  std::vector<std::uint32_t> cap_offsets;  // indices.size()+1 offsets into caps
  std::vector<Capture> caps;               // capture arena
  std::vector<std::uint32_t> exhausted;    // programs whose run hit the work bound

  std::size_t size() const { return indices.size(); }
  std::span<const Capture> captures(std::size_t k) const {
    return {caps.data() + cap_offsets[k], cap_offsets[k + 1] - cap_offsets[k]};
  }
  void clear() {
    indices.clear();
    cap_offsets.assign(1, 0);
    caps.clear();
    exhausted.clear();
  }
};

class SetMatcher {
 public:
  SetMatcher() = default;
  explicit SetMatcher(std::span<const Regex> regexes) {
    for (const Regex& rx : regexes) add(rx);
    finalize();
  }

  // Incremental build: add() compiles one program; finalize() builds the
  // tail trie. match_all() may only be called after finalize().
  void add(const Regex& rx) { programs_.push_back(Program::compile(rx)); }
  void finalize();

  std::size_t size() const { return programs_.size(); }
  const Program& program(std::size_t i) const { return programs_[i]; }

  // Fills `out` with every matching program (ascending index) and its
  // captures. `scratch` provides the execution stack and candidate buffer.
  void match_all(std::string_view subject, MatchScratch& scratch, SetMatches& out) const;

 private:
  friend struct SetMatcherIO;  // serialize.h: trie extraction + view assembly

  // Owned flat-trie backing for finalize()'d matchers; view matchers pin
  // the model mapping instead (programs then share that same keepalive).
  struct TrieStorage {
    std::vector<TrieNodeRec> nodes;
    std::vector<TrieEdgeRec> edges;
    std::vector<std::uint32_t> terminals;
  };

  std::vector<Program> programs_;
  std::span<const TrieNodeRec> nodes_;  // nodes_[0] = root (no-literal-tail programs)
  std::span<const TrieEdgeRec> edges_;
  std::span<const std::uint32_t> terminals_;
  std::shared_ptr<const void> trie_backing_;
};

}  // namespace hoiho::rx
