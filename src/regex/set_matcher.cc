#include "regex/set_matcher.h"

#include <algorithm>

namespace hoiho::rx {

void SetMatcher::finalize() {
  trie_.assign(1, TrieNode{});
  for (std::uint32_t idx = 0; idx < programs_.size(); ++idx) {
    const std::string_view tail = programs_[idx].literal_tail();
    std::uint32_t node = 0;
    for (std::size_t d = 0; d < tail.size(); ++d) {
      const char c = tail[tail.size() - 1 - d];
      std::uint32_t child = 0;
      for (const auto& [ec, en] : trie_[node].next) {
        if (ec == c) {
          child = en;
          break;
        }
      }
      if (child == 0) {
        child = static_cast<std::uint32_t>(trie_.size());
        trie_[node].next.emplace_back(c, child);
        trie_.emplace_back();
      }
      node = child;
    }
    trie_[node].terminal.push_back(idx);
  }
}

void SetMatcher::match_all(std::string_view subject, MatchScratch& scratch,
                           SetMatches& out) const {
  out.clear();
  if (programs_.empty()) return;
  ++scratch.set_stats.subjects;

  // Byte-presence table, computed once and shared by every candidate's
  // required-byte check.
  std::bitset<128> present;
  for (const char c : subject) {
    const auto u = static_cast<unsigned char>(c);
    if (u < 128) present.set(u);
  }

  // Walk the subject backwards through the tail trie; every terminal passed
  // is a program whose anchored literal tail the subject ends with.
  std::vector<std::uint32_t>& cand = scratch.candidates;
  cand.clear();
  const TrieNode* node = &trie_[0];
  cand.insert(cand.end(), node->terminal.begin(), node->terminal.end());
  for (std::size_t d = 0; d < subject.size(); ++d) {
    const char c = subject[subject.size() - 1 - d];
    std::uint32_t child = 0;
    for (const auto& [ec, en] : node->next) {
      if (ec == c) {
        child = en;
        break;
      }
    }
    if (child == 0) break;
    node = &trie_[child];
    cand.insert(cand.end(), node->terminal.begin(), node->terminal.end());
  }
  std::sort(cand.begin(), cand.end());
  scratch.set_stats.candidates += cand.size();

  for (const std::uint32_t idx : cand) {
    const Program& p = programs_[idx];
    if ((p.required_bytes() & ~present).any()) continue;
    if (!p.prefilter(subject)) continue;
    ++scratch.set_stats.programs_run;
    if (!p.run(subject, scratch)) {
      if (scratch.budget_exhausted) out.exhausted.push_back(idx);
      continue;
    }
    ++scratch.set_stats.hits;
    out.indices.push_back(idx);
    const std::size_t base = out.caps.size();
    out.caps.resize(base + p.capture_count());
    p.captures(scratch, out.caps.data() + base);
    out.cap_offsets.push_back(static_cast<std::uint32_t>(out.caps.size()));
  }
}

}  // namespace hoiho::rx
