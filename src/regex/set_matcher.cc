#include "regex/set_matcher.h"

#include <algorithm>

namespace hoiho::rx {

void SetMatcher::finalize() {
  // Build a temporary pointer trie (cheap to grow), then flatten it into
  // the SoA arrays in node-index order. Edge order within a node is
  // insertion order; terminal order is program-add order — neither affects
  // results because candidates are sorted ascending before execution.
  struct BuildNode {
    std::vector<std::pair<char, std::uint32_t>> next;
    std::vector<std::uint32_t> terminal;
  };
  std::vector<BuildNode> build(1);
  for (std::uint32_t idx = 0; idx < programs_.size(); ++idx) {
    const std::string_view tail = programs_[idx].literal_tail();
    std::uint32_t node = 0;
    for (std::size_t d = 0; d < tail.size(); ++d) {
      const char c = tail[tail.size() - 1 - d];
      std::uint32_t child = 0;
      for (const auto& [ec, en] : build[node].next) {
        if (ec == c) {
          child = en;
          break;
        }
      }
      if (child == 0) {
        child = static_cast<std::uint32_t>(build.size());
        build[node].next.emplace_back(c, child);
        build.emplace_back();
      }
      node = child;
    }
    build[node].terminal.push_back(idx);
  }

  auto st = std::make_shared<TrieStorage>();
  st->nodes.reserve(build.size());
  for (const BuildNode& bn : build) {
    TrieNodeRec rec;
    rec.edge_off = static_cast<std::uint32_t>(st->edges.size());
    rec.edge_count = static_cast<std::uint32_t>(bn.next.size());
    rec.term_off = static_cast<std::uint32_t>(st->terminals.size());
    rec.term_count = static_cast<std::uint32_t>(bn.terminal.size());
    for (const auto& [c, child] : bn.next) {
      TrieEdgeRec e;
      e.node = child;
      e.c = static_cast<std::uint8_t>(c);
      st->edges.push_back(e);
    }
    st->terminals.insert(st->terminals.end(), bn.terminal.begin(), bn.terminal.end());
    st->nodes.push_back(rec);
  }
  nodes_ = st->nodes;
  edges_ = st->edges;
  terminals_ = st->terminals;
  trie_backing_ = std::move(st);
}

void SetMatcher::match_all(std::string_view subject, MatchScratch& scratch,
                           SetMatches& out) const {
  out.clear();
  if (programs_.empty()) return;
  ++scratch.set_stats.subjects;

  // Byte-presence table, computed once and shared by every candidate's
  // required-byte check.
  ClassBits present;
  for (const char c : subject) {
    const auto u = static_cast<unsigned char>(c);
    if (u < 128) present.set(u);
  }

  // Walk the subject backwards through the tail trie; every terminal passed
  // is a program whose anchored literal tail the subject ends with.
  std::vector<std::uint32_t>& cand = scratch.candidates;
  cand.clear();
  const TrieNodeRec* node = &nodes_[0];
  cand.insert(cand.end(), terminals_.data() + node->term_off,
              terminals_.data() + node->term_off + node->term_count);
  for (std::size_t d = 0; d < subject.size(); ++d) {
    const auto c = static_cast<std::uint8_t>(subject[subject.size() - 1 - d]);
    std::uint32_t child = 0;
    const TrieEdgeRec* const edges = edges_.data() + node->edge_off;
    for (std::uint32_t e = 0; e < node->edge_count; ++e) {
      if (edges[e].c == c) {
        child = edges[e].node;
        break;
      }
    }
    if (child == 0) break;
    node = &nodes_[child];
    cand.insert(cand.end(), terminals_.data() + node->term_off,
                terminals_.data() + node->term_off + node->term_count);
  }
  std::sort(cand.begin(), cand.end());
  scratch.set_stats.candidates += cand.size();

  for (const std::uint32_t idx : cand) {
    const Program& p = programs_[idx];
    if (p.required_bytes().any_not_in(present)) continue;
    if (!p.prefilter(subject)) continue;
    ++scratch.set_stats.programs_run;
    if (!p.run(subject, scratch)) {
      if (scratch.budget_exhausted) out.exhausted.push_back(idx);
      continue;
    }
    ++scratch.set_stats.hits;
    out.indices.push_back(idx);
    const std::size_t base = out.caps.size();
    out.caps.resize(base + p.capture_count());
    p.captures(scratch, out.caps.data() + base);
    out.cap_offsets.push_back(static_cast<std::uint32_t>(out.caps.size()));
  }
}

}  // namespace hoiho::rx
