// Backtracking matcher with capture extraction for the restricted dialect.
//
// Matching is always anchored at both ends. The matcher is a classic
// recursive backtracker; because the dialect has no alternation or nesting
// and generated patterns have few unbounded repeats, worst-case behaviour is
// tame (a depth guard turns pathological inputs into a non-match rather
// than a stack overflow).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "regex/ast.h"

namespace hoiho::rx {

// Bounds total backtracking work per match across both engines (the AST
// backtracker here and the compiled rx::Program); hitting the bound reports
// a non-match with budget_exhausted set instead of hanging.
inline constexpr std::uint64_t kMaxMatchSteps = 1'000'000;

// Capture positions into the subject string.
struct Capture {
  std::size_t begin = 0;
  std::size_t end = 0;  // one past the last char

  std::string_view view(std::string_view subject) const {
    return subject.substr(begin, end - begin);
  }
};

struct MatchResult {
  bool matched = false;
  std::vector<Capture> captures;  // one per group, in group order

  // True when the match was abandoned because it exceeded the backtracking
  // work bound: the non-match verdict is then inconclusive, and evaluation
  // counts the event rather than silently treating it as a clean miss.
  bool budget_exhausted = false;

  explicit operator bool() const { return matched; }
};

// Matches `subject` against `rx` (full-string). On success, captures hold
// one entry per group.
MatchResult match(const Regex& rx, std::string_view subject);

// Like match(), but additionally reports the span of subject text each node
// consumed on the successful path (used by the learner's character-class
// embedding phase). `node_spans` is resized to rx.nodes.size() on success.
MatchResult match_with_spans(const Regex& rx, std::string_view subject,
                             std::vector<Capture>& node_spans);

// Convenience: captured strings on success, empty vector on failure.
std::vector<std::string> capture_strings(const Regex& rx, std::string_view subject);

}  // namespace hoiho::rx
