#include "core/learn.h"

#include <algorithm>
#include <map>
#include <set>

#include "measure/consistency.h"

namespace hoiho::core {

namespace {

// Everything known about one candidate code to be learned.
struct CodeGroup {
  Role role = Role::kIata;
  std::string code, cc, st;               // extraction + annotations
  std::set<topo::RouterId> routers;       // routers the code was extracted for
};

}  // namespace

std::vector<LearnedHint> GeohintLearner::learn(NamingConvention& nc,
                                               std::span<const TaggedHostname> tagged,
                                               const NcEvaluation& evaluation) const {
  std::vector<LearnedHint> out;
  if (evaluation.unique_count() < config_.min_unique_seed) return out;
  if (evaluation.counts.ppv() <= config_.seed_ppv) return out;

  const geo::GeoDictionary& dict = eval_.dictionary();

  // Group FP/UNK extractions by (code, annotations).
  std::map<std::string, CodeGroup> groups;
  for (std::size_t i = 0; i < evaluation.per_hostname.size(); ++i) {
    const HostnameEval& ev = evaluation.per_hostname[i];
    if (ev.outcome != Outcome::kFP && ev.outcome != Outcome::kUNK) continue;
    if (ev.regex_index < 0 || ev.code.empty()) continue;
    const Role role = nc.regexes[static_cast<std::size_t>(ev.regex_index)].plan.primary();
    if (role == Role::kFacility) continue;  // street addresses are not abbreviations
    const std::string key = ev.code + "|" + ev.cc + "|" + ev.st;
    CodeGroup& g = groups[key];
    g.role = role;
    g.code = ev.code;
    g.cc = ev.cc;
    g.st = ev.st;
    g.routers.insert(tagged[i].ref.router);
  }

  for (auto& [key, g] : groups) {
    const geo::HintType dt = dictionary_for(g.role);
    if (nc.learned.contains(LearnedKey{dt, g.code})) continue;

    // Find the place names this code could abbreviate (paper §5.4 rules per
    // geohint type).
    std::vector<geo::LocationId> candidates;
    geo::AbbrevOptions opts;
    switch (g.role) {
      case Role::kCityName: {
        opts.require_contiguous4 = true;
        candidates = dict.abbreviation_candidates(g.code, opts);
        break;
      }
      case Role::kClli: {
        // 4-letter city part + 2-letter state/country part.
        if (g.code.size() != 6) continue;
        const std::string abbrev = g.code.substr(0, 4);
        const std::string tail = g.code.substr(4, 2);
        for (geo::LocationId id : dict.abbreviation_candidates(abbrev)) {
          const geo::Location& loc = dict.location(id);
          // The two-letter tail must name the state (three-letter codes such
          // as "nsw" are written with their first two letters) or country.
          const bool state_match = !loc.state.empty() && loc.state.substr(0, 2) == tail;
          if (state_match || geo::same_country(tail, loc.country)) candidates.push_back(id);
        }
        break;
      }
      case Role::kLocode: {
        // 2-letter country + 3-letter place part.
        if (g.code.size() != 5) continue;
        const std::string cc2 = g.code.substr(0, 2);
        const std::string abbrev = g.code.substr(2, 3);
        for (geo::LocationId id : dict.abbreviation_candidates(abbrev)) {
          if (geo::same_country(cc2, dict.location(id).country)) candidates.push_back(id);
        }
        break;
      }
      default:
        candidates = dict.abbreviation_candidates(g.code);
        break;
    }

    // Extracted annotations must agree with the candidate.
    if (!g.cc.empty()) {
      std::erase_if(candidates,
                    [&](geo::LocationId id) { return !dict.matches_country(g.cc, id); });
    }
    if (!g.st.empty()) {
      std::erase_if(candidates, [&](geo::LocationId id) { return !dict.matches_state(g.st, id); });
    }
    if (candidates.empty()) continue;

    // Score each candidate by router RTT-consistency.
    struct Scored {
      geo::LocationId id;
      std::size_t tp = 0, fp = 0;
    };
    std::vector<Scored> scored;
    scored.reserve(candidates.size());
    for (geo::LocationId id : candidates) {
      Scored s{id, 0, 0};
      for (topo::RouterId r : g.routers) {
        if (eval_.rtt_consistent_for(r, id))
          ++s.tp;
        else
          ++s.fp;
      }
      if (s.tp > 0) scored.push_back(s);
    }
    if (scored.empty()) continue;

    // Rank: facility first, then population, then TPs (paper fig. 8a).
    std::stable_sort(scored.begin(), scored.end(), [&](const Scored& a, const Scored& b) {
      const geo::Location& la = dict.location(a.id);
      const geo::Location& lb = dict.location(b.id);
      if (la.has_facility != lb.has_facility) return la.has_facility;
      if (la.population != lb.population) return la.population > lb.population;
      return a.tp > b.tp;
    });
    const Scored& best = scored.front();

    // Support for the existing dictionary meaning of the code, if any.
    const std::span<const geo::LocationId> existing_ids = dict.lookup(dt, g.code);
    const bool exists_in_dict = !existing_ids.empty();
    std::size_t existing_tp = 0;
    for (topo::RouterId r : g.routers) {
      for (geo::LocationId id : existing_ids) {
        if (eval_.rtt_consistent_for(r, id)) {
          ++existing_tp;
          break;
        }
      }
    }

    // Acceptance tests (paper §5.4). The "beat the existing meaning by more
    // than one TP" rule only applies when the code has an existing meaning
    // to beat (FP collisions like "ash"); unknown codes (UNKs like
    // "mlanit") are gated by the congruence rule below instead.
    const double ppv = static_cast<double>(best.tp) / static_cast<double>(best.tp + best.fp);
    if (ppv + 1e-12 < config_.accept_ppv) continue;
    if (exists_in_dict && best.tp <= existing_tp + config_.tp_improvement) continue;
    const bool annotated = !g.cc.empty() || !g.st.empty();
    const std::size_t need = annotated ? config_.congruent_annotated : config_.congruent_plain;
    if (best.tp < need) continue;

    nc.learned[LearnedKey{dt, g.code}] = best.id;
    out.push_back(LearnedHint{dt, g.code, best.id, best.tp, best.fp, existing_tp});
  }
  return out;
}

}  // namespace hoiho::core
