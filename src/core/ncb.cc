#include "core/ncb.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <unordered_map>

#include "core/geolocate.h"
#include "geo/dictionary.h"
#include "io/load_report.h"
#include "regex/parser.h"
#include "util/strings.h"

namespace hoiho::core {

// The format stores multi-byte integers in native little-endian order and
// is only read back on little-endian hosts (DESIGN.md §15 versioning rules:
// a big-endian port would bump the version, not byte-swap on load).
static_assert(std::endian::native == std::endian::little,
              "ncb serialization assumes a little-endian host");

namespace {

constexpr std::size_t kSectionAlign = 16;

std::size_t align_up(std::size_t n) {
  return (n + kSectionAlign - 1) & ~(kSectionAlign - 1);
}

void append_bytes(std::string& out, const void* p, std::size_t n) {
  out.append(reinterpret_cast<const char*>(p), n);
}

template <typename T>
void append_vec(std::string& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  append_bytes(out, v.data(), v.size() * sizeof(T));
}

// Dedup string interner for the single pool (SNIPPETS.md snippet 2 idiom,
// offset-based so references survive serialization).
class StringInterner {
 public:
  ncb::StrRef intern(std::string_view s) {
    const auto it = index_.find(std::string(s));
    if (it != index_.end()) return it->second;
    ncb::StrRef ref;
    ref.off = static_cast<std::uint32_t>(pool_.size());
    ref.len = static_cast<std::uint32_t>(s.size());
    pool_.append(s);
    index_.emplace(std::string(s), ref);
    return ref;
  }
  const std::string& pool() const { return pool_; }

 private:
  std::string pool_;
  std::unordered_map<std::string, ncb::StrRef> index_;
};

}  // namespace

ModelFormat detect_model_format(std::string_view head) {
  if (head.size() >= sizeof(ncb::kMagic) &&
      std::memcmp(head.data(), ncb::kMagic, sizeof(ncb::kMagic)) == 0)
    return ModelFormat::kNcb;
  return ModelFormat::kText;
}

std::string_view to_string(ModelFormat f) {
  return f == ModelFormat::kNcb ? "ncb" : "text";
}

std::string serialize_conventions_ncb(const std::vector<StoredConvention>& conventions,
                                      const geo::GeoDictionary& dict) {
  StringInterner strings;
  std::vector<ncb::SuffixEntry> suffixes;
  std::vector<ncb::RegexEntry> regexes;
  std::vector<std::uint32_t> plan_roles;
  std::vector<ncb::LearnedEntry> learned;
  rx::ProgramPools pools;

  suffixes.reserve(conventions.size());
  for (const StoredConvention& sc : conventions) {
    ncb::SuffixEntry se;
    se.suffix = strings.intern(sc.nc.suffix);
    se.cls = static_cast<std::uint32_t>(sc.cls);
    se.regex_off = static_cast<std::uint32_t>(regexes.size());
    se.regex_count = static_cast<std::uint32_t>(sc.nc.regexes.size());
    rx::SetMatcher matcher;
    for (const GeoRegex& gr : sc.nc.regexes) {
      ncb::RegexEntry re;
      re.source = strings.intern(gr.regex.to_string());
      re.plan_off = static_cast<std::uint32_t>(plan_roles.size());
      re.plan_count = static_cast<std::uint32_t>(gr.plan.roles.size());
      for (const Role r : gr.plan.roles) plan_roles.push_back(static_cast<std::uint32_t>(r));
      regexes.push_back(re);
      matcher.add(gr.regex);
    }
    matcher.finalize();
    se.matcher = pools.add(matcher);
    se.learned_off = static_cast<std::uint32_t>(learned.size());
    se.learned_count = static_cast<std::uint32_t>(sc.nc.learned.size());
    // Stored by place triple, exactly like the text L record, so the binary
    // file survives dictionary rebuilds the same way.
    for (const auto& [key, loc] : sc.nc.learned) {
      const geo::Location& l = dict.location(loc);
      ncb::LearnedEntry le;
      le.hint_type = static_cast<std::uint32_t>(key.first);
      le.code = strings.intern(key.second);
      le.city = strings.intern(l.city);
      le.state = strings.intern(l.state);
      le.country = strings.intern(l.country);
      learned.push_back(le);
    }
    suffixes.push_back(se);
  }

  // Section payloads in SectionKind order.
  std::string bodies[ncb::kSectionCount];
  bodies[0] = strings.pool();
  append_vec(bodies[1], suffixes);
  append_vec(bodies[2], regexes);
  append_vec(bodies[3], plan_roles);
  append_vec(bodies[4], learned);
  append_vec(bodies[5], pools.programs);
  append_vec(bodies[6], pools.instrs);
  append_vec(bodies[7], pools.classes);
  bodies[8] = pools.pool;
  append_vec(bodies[9], pools.groups);
  append_vec(bodies[10], pools.matchers);
  append_vec(bodies[11], pools.nodes);
  append_vec(bodies[12], pools.edges);
  append_vec(bodies[13], pools.terms);

  const std::size_t table_end =
      sizeof(ncb::FileHeader) + ncb::kSectionCount * sizeof(ncb::Section);
  const std::size_t payload_off = align_up(table_end);

  ncb::Section sections[ncb::kSectionCount];
  std::string payload;
  for (std::uint32_t k = 0; k < ncb::kSectionCount; ++k) {
    payload.resize(align_up(payload.size()), '\0');
    sections[k].kind = k;
    sections[k].offset = payload_off + payload.size();
    sections[k].size = bodies[k].size();
    payload += bodies[k];
  }

  ncb::FileHeader hdr;
  std::memcpy(hdr.magic, ncb::kMagic, sizeof(hdr.magic));
  hdr.version = ncb::kVersion;
  hdr.section_count = ncb::kSectionCount;
  hdr.file_size = payload_off + payload.size();
  hdr.payload_hash = fnv1a_hash(payload);
  // header_hash covers the header (with this field zeroed) + section table.
  std::uint64_t h = kFnvSeed;
  h = fnv1a_hash({reinterpret_cast<const char*>(&hdr), sizeof(hdr)}, h);
  h = fnv1a_hash({reinterpret_cast<const char*>(sections), sizeof(sections)}, h);
  hdr.header_hash = h;

  std::string out;
  out.reserve(hdr.file_size);
  append_bytes(out, &hdr, sizeof(hdr));
  append_bytes(out, sections, sizeof(sections));
  out.resize(payload_off, '\0');
  out += payload;
  return out;
}

bool save_conventions_ncb_to_file(const std::string& path,
                                  const std::vector<StoredConvention>& conventions,
                                  const geo::GeoDictionary& dict, std::string* error) {
  return write_model_file_atomic(path, serialize_conventions_ncb(conventions, dict), error);
}

bool save_model_to_file(const std::string& path,
                        const std::vector<StoredConvention>& conventions,
                        const geo::GeoDictionary& dict, std::string* error) {
  const bool binary = path.size() >= 4 && path.compare(path.size() - 4, 4, ".ncb") == 0;
  return binary ? save_conventions_ncb_to_file(path, conventions, dict, error)
                : save_conventions_to_file(path, conventions, dict, error);
}

// ---------------------------------------------------------------------------
// Loading

struct NcbModel::Mapping {
  void* addr = nullptr;
  std::size_t len = 0;
  ~Mapping() {
    if (addr != nullptr) ::munmap(addr, len);
  }
};

NcbModel::~NcbModel() = default;

namespace {

// Casts a validated section to a typed span. Returns false (caller emits a
// named error) when the size is not a whole number of records or the base
// pointer is misaligned for the record type (can only happen with a
// hand-corrupted offset — section offsets are 16-byte aligned).
template <typename T>
bool section_span(std::string_view bytes, const ncb::Section& s, std::span<const T>& out) {
  if (s.size % sizeof(T) != 0) return false;
  const char* base = bytes.data() + s.offset;
  if (reinterpret_cast<std::uintptr_t>(base) % alignof(T) != 0) return false;
  out = {reinterpret_cast<const T*>(base), static_cast<std::size_t>(s.size / sizeof(T))};
  return true;
}

bool str_ref_ok(const ncb::StrRef& r, std::string_view pool) {
  return std::uint64_t{r.off} + std::uint64_t{r.len} <= pool.size();
}

bool range_ok(std::uint32_t off, std::uint32_t count, std::size_t limit) {
  return std::uint64_t{off} + std::uint64_t{count} <= limit;
}

}  // namespace

std::shared_ptr<const NcbModel> NcbModel::validate_and_adopt(std::shared_ptr<NcbModel> m,
                                                             std::string* error,
                                                             io::LoadReport* report,
                                                             const OpenOptions& opt) {
  auto fail = [&](const std::string& msg) -> std::shared_ptr<const NcbModel> {
    const std::string full = "ncb: " + msg;
    if (error != nullptr) *error = full;
    if (report != nullptr) report->fail(full);
    return nullptr;
  };
  const std::string_view bytes = m->bytes_;
  if (bytes.size() < sizeof(ncb::FileHeader)) return fail("file too small for header");
  ncb::FileHeader hdr;
  std::memcpy(&hdr, bytes.data(), sizeof(hdr));
  if (std::memcmp(hdr.magic, ncb::kMagic, sizeof(hdr.magic)) != 0) return fail("bad magic");
  if (hdr.version != ncb::kVersion)
    return fail("unsupported version " + std::to_string(hdr.version));
  if (hdr.section_count < ncb::kSectionCount || hdr.section_count > 64)
    return fail("implausible section count " + std::to_string(hdr.section_count));
  const std::size_t table_end =
      sizeof(ncb::FileHeader) + hdr.section_count * sizeof(ncb::Section);
  if (bytes.size() < table_end) return fail("truncated section table");
  if (hdr.file_size != bytes.size())
    return fail("file size mismatch (header says " + std::to_string(hdr.file_size) +
                ", file has " + std::to_string(bytes.size()) + " bytes)");

  // Header integrity first: cheap, and everything below trusts these fields.
  ncb::FileHeader zeroed = hdr;
  zeroed.header_hash = 0;
  std::uint64_t h = kFnvSeed;
  h = fnv1a_hash({reinterpret_cast<const char*>(&zeroed), sizeof(zeroed)}, h);
  h = fnv1a_hash(bytes.substr(sizeof(ncb::FileHeader), table_end - sizeof(ncb::FileHeader)),
                 h);
  if (h != hdr.header_hash) return fail("header checksum mismatch (corrupt or torn file)");

  std::vector<ncb::Section> sections(hdr.section_count);
  std::memcpy(sections.data(), bytes.data() + sizeof(ncb::FileHeader),
              hdr.section_count * sizeof(ncb::Section));

  const std::size_t payload_off = align_up(table_end);
  if (opt.verify_payload) {
    if (fnv1a_hash(bytes.substr(payload_off)) != hdr.payload_hash)
      return fail("payload checksum mismatch (corrupt or torn file)");
  }

  // Section table: aligned, in-bounds, non-overlapping, each known kind
  // exactly once (unknown kinds from newer minor writers are ignored).
  const ncb::Section* by_kind[ncb::kSectionCount] = {};
  std::vector<std::pair<std::uint64_t, std::uint64_t>> extents;
  for (const ncb::Section& s : sections) {
    if (s.offset % kSectionAlign != 0)
      return fail("misaligned section at offset " + std::to_string(s.offset));
    if (s.offset < payload_off || s.offset > bytes.size() ||
        s.size > bytes.size() - s.offset)
      return fail("section out of bounds (offset " + std::to_string(s.offset) + ", size " +
                  std::to_string(s.size) + ")");
    if (s.kind < ncb::kSectionCount) {
      if (by_kind[s.kind] != nullptr)
        return fail("duplicate section kind " + std::to_string(s.kind));
      by_kind[s.kind] = &s;
    }
    extents.emplace_back(s.offset, s.size);
  }
  for (std::uint32_t k = 0; k < ncb::kSectionCount; ++k)
    if (by_kind[k] == nullptr) return fail("missing section kind " + std::to_string(k));
  std::sort(extents.begin(), extents.end());
  for (std::size_t i = 1; i < extents.size(); ++i) {
    if (extents[i].first < extents[i - 1].first + extents[i - 1].second)
      return fail("overlapping sections at offset " + std::to_string(extents[i].first));
  }

  // Typed views.
  auto sec = [&](ncb::SectionKind k) -> const ncb::Section& {
    return *by_kind[static_cast<std::uint32_t>(k)];
  };
  const ncb::Section& sp = sec(ncb::SectionKind::kStringPool);
  m->pool_ = bytes.substr(sp.offset, sp.size);
  const ncb::Section& pp = sec(ncb::SectionKind::kProgPool);
  m->rx_.pool = bytes.substr(pp.offset, pp.size);
  if (!section_span(bytes, sec(ncb::SectionKind::kSuffixes), m->suffixes_) ||
      !section_span(bytes, sec(ncb::SectionKind::kRegexes), m->regexes_) ||
      !section_span(bytes, sec(ncb::SectionKind::kPlanRoles), m->plan_roles_) ||
      !section_span(bytes, sec(ncb::SectionKind::kLearned), m->learned_) ||
      !section_span(bytes, sec(ncb::SectionKind::kPrograms), m->rx_.programs) ||
      !section_span(bytes, sec(ncb::SectionKind::kInstr), m->rx_.instrs) ||
      !section_span(bytes, sec(ncb::SectionKind::kClasses), m->rx_.classes) ||
      !section_span(bytes, sec(ncb::SectionKind::kGroups), m->rx_.groups) ||
      !section_span(bytes, sec(ncb::SectionKind::kMatchers), m->rx_.matchers) ||
      !section_span(bytes, sec(ncb::SectionKind::kTrieNodes), m->rx_.nodes) ||
      !section_span(bytes, sec(ncb::SectionKind::kTrieEdges), m->rx_.edges) ||
      !section_span(bytes, sec(ncb::SectionKind::kTrieTerms), m->rx_.terms))
    return fail("section size not a whole number of records (or misaligned base)");

  // Model-level references: every index and string ref in range before any
  // of them is dereferenced. Error context is formatted only on the failing
  // path — these loops run for every record of every load, and the success
  // path must not allocate (it is most of what a mmap open() costs).
  const auto at = [](const char* kind, std::size_t i, const char* msg) {
    return std::string(kind) + " " + std::to_string(i) + msg;
  };
  for (std::size_t i = 0; i < m->suffixes_.size(); ++i) {
    const ncb::SuffixEntry& se = m->suffixes_[i];
    if (!str_ref_ok(se.suffix, m->pool_) || se.suffix.len == 0)
      return fail(at("convention", i, ": suffix string ref out of range"));
    if (se.cls > static_cast<std::uint32_t>(NcClass::kPoor))
      return fail(at("convention", i, ": unknown convention class ") + std::to_string(se.cls));
    if (!range_ok(se.regex_off, se.regex_count, m->regexes_.size()))
      return fail(at("convention", i, ": regex range out of bounds"));
    if (!range_ok(se.learned_off, se.learned_count, m->learned_.size()))
      return fail(at("convention", i, ": learned range out of bounds"));
    if (se.matcher >= m->rx_.matchers.size())
      return fail(at("convention", i, ": matcher index out of range"));
    if (m->rx_.matchers[se.matcher].program_count != se.regex_count)
      return fail(at("convention", i, ": regex/program count mismatch"));
  }
  for (std::size_t i = 0; i < m->regexes_.size(); ++i) {
    const ncb::RegexEntry& re = m->regexes_[i];
    if (!str_ref_ok(re.source, m->pool_))
      return fail(at("regex", i, ": source string ref out of range"));
    if (!range_ok(re.plan_off, re.plan_count, m->plan_roles_.size()))
      return fail(at("regex", i, ": plan range out of bounds"));
    for (std::uint32_t k = 0; k < re.plan_count; ++k) {
      if (m->plan_roles_[re.plan_off + k] > static_cast<std::uint32_t>(Role::kStateCode))
        return fail(at("regex", i, ": unknown plan role"));
    }
  }
  for (std::size_t i = 0; i < m->learned_.size(); ++i) {
    const ncb::LearnedEntry& le = m->learned_[i];
    if (le.hint_type > static_cast<std::uint32_t>(geo::HintType::kFacility))
      return fail(at("learned hint", i, ": unknown dictionary type ") +
                  std::to_string(le.hint_type));
    if (!str_ref_ok(le.code, m->pool_) || !str_ref_ok(le.city, m->pool_) ||
        !str_ref_ok(le.state, m->pool_) || !str_ref_ok(le.country, m->pool_))
      return fail(at("learned hint", i, ": string ref out of range"));
    if (le.code.len == 0) return fail(at("learned hint", i, ": empty learned code"));
  }
  if (auto err = rx::validate(m->rx_)) return fail(*err);

  if (report != nullptr) report->records = m->suffixes_.size();
  return m;
}

std::shared_ptr<const NcbModel> NcbModel::open(const std::string& path, std::string* error,
                                               io::LoadReport* report,
                                               const OpenOptions& opt) {
  auto fail = [&](const std::string& msg) -> std::shared_ptr<const NcbModel> {
    const std::string full = "ncb: " + msg + ": " + std::strerror(errno);
    if (error != nullptr) *error = full;
    if (report != nullptr) report->fail(full);
    return nullptr;
  };
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return fail("open '" + path + "'");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return fail("stat '" + path + "'");
  }
  const auto len = static_cast<std::size_t>(st.st_size);
  if (len == 0) {
    ::close(fd);
    errno = EINVAL;
    return fail("empty file '" + path + "'");
  }
  void* addr = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) return fail("mmap '" + path + "'");

  auto m = std::shared_ptr<NcbModel>(new NcbModel());
  m->mapping_ = std::make_shared<Mapping>();
  m->mapping_->addr = addr;
  m->mapping_->len = len;
  m->bytes_ = {static_cast<const char*>(addr), len};
  return validate_and_adopt(std::move(m), error, report, opt);
}

std::shared_ptr<const NcbModel> NcbModel::from_bytes(std::string_view bytes,
                                                     std::string* error,
                                                     io::LoadReport* report,
                                                     const OpenOptions& opt) {
  // Copy into a u64-aligned buffer: std::string storage has no alignment
  // guarantee, and the typed section views need 8-byte alignment.
  auto m = std::shared_ptr<NcbModel>(new NcbModel());
  const std::size_t words = (bytes.size() + 7) / 8;
  std::shared_ptr<std::uint64_t[]> buf(new std::uint64_t[words]());
  std::memcpy(buf.get(), bytes.data(), bytes.size());
  m->owned_ = std::move(buf);
  m->bytes_ = {reinterpret_cast<const char*>(m->owned_.get()), bytes.size()};
  return validate_and_adopt(std::move(m), error, report, opt);
}

// ---------------------------------------------------------------------------
// Consumers

void NcbModel::build_geolocator(Geolocator& out, std::vector<std::string>* warnings,
                                bool include_poor) const {
  const geo::GeoDictionary& dict = out.dictionary();
  auto keepalive = shared_from_this();
  out.reserve(out.convention_count() + suffixes_.size());
  auto str = [&](const ncb::StrRef& r) { return pool_.substr(r.off, r.len); };
  for (const ncb::SuffixEntry& se : suffixes_) {
    const auto cls = static_cast<NcClass>(se.cls);
    if (cls == NcClass::kPoor && !include_poor) continue;
    NamingConvention nc;
    nc.suffix = std::string(str(se.suffix));
    nc.regexes.reserve(se.regex_count);
    for (std::uint32_t k = 0; k < se.regex_count; ++k) {
      const ncb::RegexEntry& re = regexes_[se.regex_off + k];
      // The AST stays empty: locate() decodes matches from plan + compiled
      // captures only; the source text is for conversion tooling.
      GeoRegex gr;
      gr.plan.roles.reserve(re.plan_count);
      for (std::uint32_t r = 0; r < re.plan_count; ++r)
        gr.plan.roles.push_back(static_cast<Role>(plan_roles_[re.plan_off + r]));
      nc.regexes.push_back(std::move(gr));
    }
    for (std::uint32_t k = 0; k < se.learned_count; ++k) {
      const ncb::LearnedEntry& le = learned_[se.learned_off + k];
      // Same resolution rule as the text loader: by place triple against
      // the load-time dictionary, drop (with a note) when absent.
      const geo::LocationId resolved =
          resolve_stored_place(dict, str(le.city), str(le.state), str(le.country));
      if (resolved == geo::kInvalidLocation) {
        if (warnings != nullptr)
          warnings->push_back("suffix '" + nc.suffix + "': dropped learned hint '" +
                              std::string(str(le.code)) + "' -> " + std::string(str(le.city)) +
                              " (place not in dictionary)");
        continue;
      }
      nc.learned[LearnedKey{static_cast<geo::HintType>(le.hint_type),
                            util::to_lower(str(le.code))}] = resolved;
    }
    out.add_compiled(std::move(nc), rx::view_matcher(rx_, se.matcher, keepalive), cls);
  }
}

std::optional<std::vector<StoredConvention>> NcbModel::to_stored(
    const geo::GeoDictionary& dict, std::string* error,
    std::vector<std::string>* warnings) const {
  auto fail = [&](const std::string& msg) -> std::optional<std::vector<StoredConvention>> {
    if (error != nullptr) *error = "ncb: " + msg;
    return std::nullopt;
  };
  auto str = [&](const ncb::StrRef& r) { return pool_.substr(r.off, r.len); };
  std::vector<StoredConvention> out;
  out.reserve(suffixes_.size());
  for (const ncb::SuffixEntry& se : suffixes_) {
    StoredConvention sc;
    sc.nc.suffix = std::string(str(se.suffix));
    sc.cls = static_cast<NcClass>(se.cls);
    for (std::uint32_t k = 0; k < se.regex_count; ++k) {
      const ncb::RegexEntry& re = regexes_[se.regex_off + k];
      std::string rx_error;
      const auto regex = rx::parse(str(re.source), &rx_error);
      if (!regex)
        return fail("suffix '" + sc.nc.suffix + "': stored regex does not parse: " + rx_error);
      GeoRegex gr;
      gr.regex = *regex;
      for (std::uint32_t r = 0; r < re.plan_count; ++r)
        gr.plan.roles.push_back(static_cast<Role>(plan_roles_[re.plan_off + r]));
      if (gr.regex.capture_count() != gr.plan.roles.size())
        return fail("suffix '" + sc.nc.suffix + "': plan/capture count mismatch");
      sc.nc.regexes.push_back(std::move(gr));
    }
    for (std::uint32_t k = 0; k < se.learned_count; ++k) {
      const ncb::LearnedEntry& le = learned_[se.learned_off + k];
      const geo::LocationId resolved =
          resolve_stored_place(dict, str(le.city), str(le.state), str(le.country));
      if (resolved == geo::kInvalidLocation) {
        if (warnings != nullptr)
          warnings->push_back("suffix '" + sc.nc.suffix + "': dropped learned hint '" +
                              std::string(str(le.code)) + "' (place not in dictionary)");
        continue;
      }
      sc.nc.learned[LearnedKey{static_cast<geo::HintType>(le.hint_type),
                               util::to_lower(str(le.code))}] = resolved;
    }
    out.push_back(std::move(sc));
  }
  return out;
}

}  // namespace hoiho::core
