// Stage 2: identify apparent geohints in hostnames (paper §5.2).
//
// For each hostname, the tagger scans the alphabetic tokens of the prefix
// (everything left of the registered-domain suffix) against every
// dictionary, keeps hits whose locations are RTT-consistent for the router,
// handles CLLI prefixes embedded in longer strings and CLLI prefixes split
// into adjacent 4- and 2-letter tokens, matches facility street addresses,
// and attaches adjacent state/country codes that corroborate a hit.
#pragma once

#include <span>

#include "core/geohint.h"
#include "geo/dictionary.h"
#include "measure/consistency.h"
#include "measure/consistency_cache.h"

namespace hoiho::core {

struct ApparentConfig {
  double slack_ms = 0.0;        // extra allowance on each RTT constraint
  bool consider_icao = true;    // look up 4-letter tokens in the ICAO table
  bool consider_facility = true;
  std::size_t min_city_len = 4;  // shortest token checked against city names
};

class ApparentTagger {
 public:
  // `cache`, if non-null, memoizes RTT-consistency verdicts; it must be
  // built over the same measurements and slack and outlive the tagger.
  ApparentTagger(const geo::GeoDictionary& dict, const measure::Measurements& meas,
                 ApparentConfig config = {}, measure::ConsistencyCache* cache = nullptr);

  // Tags one hostname with its apparent geohints.
  TaggedHostname tag(const topo::HostnameRef& ref) const;

  // Tags every hostname in a suffix group.
  std::vector<TaggedHostname> tag_all(std::span<const topo::HostnameRef> refs) const;

 private:
  const geo::GeoDictionary& dict_;
  const measure::Measurements& meas_;
  ApparentConfig config_;
  measure::ConsistencyCache* cache_;

  // Keeps only RTT-consistent locations for this router; empty result means
  // the hit is not an apparent geohint.
  std::vector<geo::LocationId> consistent_locations(topo::RouterId router,
                                                    std::span<const geo::LocationId> ids) const;

  void attach_annotations(const dns::Hostname& host, ApparentHint& hint) const;
};

}  // namespace hoiho::core
