#include "core/regex_sets.h"

#include <algorithm>
#include <string_view>
#include <unordered_set>

namespace hoiho::core {

std::vector<NcBuilder::Candidate> NcBuilder::build(std::string_view suffix,
                                                   std::vector<GeoRegex> regexes,
                                                   std::span<const TaggedHostname> tagged,
                                                   std::vector<NcEvaluation> prefix_evals) const {
  // Score every candidate not already scored by the caller in one
  // set-matcher pass per hostname.
  std::vector<NcEvaluation> evals = std::move(prefix_evals);
  if (evals.size() > regexes.size()) evals.resize(regexes.size());
  {
    std::vector<NcEvaluation> rest = eval_.evaluate_candidates(
        std::span<const GeoRegex>(regexes).subspan(evals.size()), tagged);
    for (NcEvaluation& e : rest) evals.push_back(std::move(e));
  }
  std::vector<Candidate> singles;
  singles.reserve(regexes.size());
  for (std::size_t i = 0; i < regexes.size(); ++i) {
    if (evals[i].counts.tp == 0) continue;  // never correct: discard outright
    Candidate c;
    c.nc.suffix = std::string(suffix);
    c.nc.regexes.push_back(std::move(regexes[i]));
    c.eval = std::move(evals[i]);
    singles.push_back(std::move(c));
  }
  std::stable_sort(singles.begin(), singles.end(), [](const Candidate& a, const Candidate& b) {
    return a.eval.counts.atp() > b.eval.counts.atp();
  });
  if (singles.size() > config_.max_singles) singles.resize(config_.max_singles);
  if (singles.empty()) return singles;

  // Combination phase, seeded with the top-ranked regex.
  //
  // A trial NC extracts with "first member regex whose decode is non-empty",
  // and trial NCs carry no learned geohints — exactly the conditions under
  // which the per-single evaluations above are composable: for each
  // hostname the trial's outcome is the outcome of its first member whose
  // single-regex evaluation extracted (regex_index >= 0), or FN/none when
  // no member extracted. Trials are therefore scored by table lookup over
  // the singles' per_hostname records — no regex is re-executed and no
  // hostname re-scored — and only the accepted combination is evaluated in
  // full at the end (the learner and final results read per_hostname).
  struct TrialScore {
    EvalCounts counts;
    std::vector<std::size_t> unique_tp;  // distinct TP codes per member
  };
  const auto score_members = [&](std::span<const std::size_t> members) {
    TrialScore ts;
    ts.unique_tp.resize(members.size());
    std::vector<std::set<std::string_view>> uniq(members.size());
    for (std::size_t h = 0; h < tagged.size(); ++h) {
      const HostnameEval* win = nullptr;
      std::size_t win_at = 0;
      for (std::size_t k = 0; k < members.size(); ++k) {
        const HostnameEval& ev = singles[members[k]].eval.per_hostname[h];
        if (ev.regex_index >= 0) {
          win = &ev;
          win_at = k;
          break;
        }
      }
      if (win == nullptr) {
        if (tagged[h].has_hint())
          ++ts.counts.fn;
        else
          ++ts.counts.none;
        continue;
      }
      switch (win->outcome) {
        case Outcome::kTP:
          ++ts.counts.tp;
          uniq[win_at].insert(win->code);
          break;
        case Outcome::kFP: ++ts.counts.fp; break;
        case Outcome::kFN: ++ts.counts.fn; break;
        case Outcome::kUNK: ++ts.counts.unk; break;
        case Outcome::kNone: ++ts.counts.none; break;
      }
    }
    for (std::size_t k = 0; k < members.size(); ++k) ts.unique_tp[k] = uniq[k].size();
    return ts;
  };

  std::vector<std::size_t> members{0};
  TrialScore working_score = score_members(members);
  const double start_ppv = working_score.counts.ppv();
  std::vector<std::string> keys(singles.size());
  for (std::size_t i = 0; i < singles.size(); ++i)
    keys[i] = singles[i].nc.regexes[0].regex.to_string();
  std::unordered_set<std::string_view> in_working;
  in_working.insert(keys[0]);
  bool grew = true;
  std::size_t passes = 0;
  while (grew && ++passes <= config_.max_passes) {
    grew = false;
    for (std::size_t i = 1; i < singles.size(); ++i) {
      // Skip regexes already in the working NC.
      if (in_working.contains(keys[i])) continue;

      members.push_back(i);
      const TrialScore trial = score_members(members);
      bool accept = trial.counts.atp() > working_score.counts.atp() &&
                    trial.counts.ppv() + 1e-12 >= start_ppv - config_.ppv_tolerance;
      if (accept) {
        for (const std::size_t u : trial.unique_tp)
          if (u < config_.min_unique_per_regex) accept = false;
      }
      if (!accept) {
        members.pop_back();
        continue;
      }
      working_score = trial;
      in_working.insert(keys[i]);
      grew = true;
    }
  }

  std::vector<Candidate> out;
  if (members.size() > 1) {
    Candidate working;
    working.nc.suffix = std::string(suffix);
    for (const std::size_t m : members) working.nc.regexes.push_back(singles[m].nc.regexes[0]);
    working.eval = eval_.evaluate(working.nc, tagged);
    out.push_back(std::move(working));
  }
  for (Candidate& c : singles) out.push_back(std::move(c));
  std::stable_sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    return a.eval.counts.atp() > b.eval.counts.atp();
  });
  return out;
}

}  // namespace hoiho::core
