#include "core/regex_sets.h"

#include <algorithm>

namespace hoiho::core {

std::vector<NcBuilder::Candidate> NcBuilder::build(std::string_view suffix,
                                                   std::vector<GeoRegex> regexes,
                                                   std::span<const TaggedHostname> tagged) const {
  std::vector<Candidate> singles;
  singles.reserve(regexes.size());
  for (GeoRegex& gr : regexes) {
    Candidate c;
    c.nc.suffix = std::string(suffix);
    c.nc.regexes.push_back(std::move(gr));
    c.eval = eval_.evaluate(c.nc, tagged);
    if (c.eval.counts.tp == 0) continue;  // never correct: discard outright
    singles.push_back(std::move(c));
  }
  std::stable_sort(singles.begin(), singles.end(), [](const Candidate& a, const Candidate& b) {
    return a.eval.counts.atp() > b.eval.counts.atp();
  });
  if (singles.size() > config_.max_singles) singles.resize(config_.max_singles);
  if (singles.empty()) return singles;

  // Combination phase, seeded with the top-ranked regex.
  Candidate working = singles.front();
  const double start_ppv = working.eval.counts.ppv();
  bool grew = true;
  std::size_t passes = 0;
  while (grew && ++passes <= config_.max_passes) {
    grew = false;
    for (std::size_t i = 1; i < singles.size(); ++i) {
      // Skip regexes already in the working NC.
      const std::string key = singles[i].nc.regexes[0].regex.to_string();
      bool present = false;
      for (const GeoRegex& gr : working.nc.regexes)
        if (gr.regex.to_string() == key) present = true;
      if (present) continue;

      Candidate trial;
      trial.nc.suffix = working.nc.suffix;
      trial.nc.regexes = working.nc.regexes;
      trial.nc.regexes.push_back(singles[i].nc.regexes[0]);
      trial.eval = eval_.evaluate(trial.nc, tagged);

      if (trial.eval.counts.atp() <= working.eval.counts.atp()) continue;
      if (trial.eval.counts.ppv() + 1e-12 < start_ppv - config_.ppv_tolerance) continue;
      bool all_unique = true;
      for (const auto& codes : trial.eval.regex_unique_tp)
        if (codes.size() < config_.min_unique_per_regex) all_unique = false;
      if (!all_unique) continue;

      working = std::move(trial);
      grew = true;
    }
  }

  std::vector<Candidate> out;
  if (working.nc.regexes.size() > 1) out.push_back(std::move(working));
  for (Candidate& c : singles) out.push_back(std::move(c));
  std::stable_sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    return a.eval.counts.atp() > b.eval.counts.atp();
  });
  return out;
}

}  // namespace hoiho::core
