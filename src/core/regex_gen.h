// Stage 3 (generation half): build candidate geo-regexes from tagged
// hostnames (paper appendix A, phases 1-3).
//
// Phase 1 (generate base regexes): for every (hostname, apparent-hint) pair,
// emit anchored regexes that capture the hint with the class its role
// implies ([a-z]{3} for IATA, [a-z]+ for city names, ...), render the rest
// of the hint's label at character-kind granularity, and cover other labels
// coarsely ([^\.]+ per label, or one .+ for everything left of the hint).
// Variants with and without captures for adjacent state/country codes are
// both produced; evaluation decides.
//
// Phase 2 (merge): two regexes with the same plan that differ only in one
// having an extra \d+ component merge into one with \d* at that position.
//
// Phase 3 (embed character classes): coarse components are replaced by the
// character-kind sequence they actually matched across all matching
// hostnames ([^\.]+ -> \d+, [a-z]+\d+, [a-z]{2}, ...), when that sequence is
// uniform.
#pragma once

#include <span>

#include "core/geohint.h"

namespace hoiho::core {

struct GenConfig {
  // Also emit variants that do not capture apparent annotations (they lose
  // on FNs but can win when annotation tagging was spurious).
  bool annotation_free_variants = true;

  // Run phase-3 matching on the compiled engine (rx::Program); off uses the
  // AST backtracker. Identical output either way (differential-tested).
  bool compiled_matcher = true;
};

class RegexGenerator {
 public:
  explicit RegexGenerator(GenConfig config = {}) : config_(config) {}

  // Phase 1 over a whole suffix group; result is deduplicated.
  std::vector<GeoRegex> generate_base(std::span<const TaggedHostname> tagged) const;

  // Phase 1 for a single hostname/hint pair (exposed for tests).
  std::vector<GeoRegex> generate_for_hint(const dns::Hostname& host,
                                          const ApparentHint& hint) const;

  // Phase 2: all merge products over `regexes` (not including the inputs).
  std::vector<GeoRegex> merge(std::span<const GeoRegex> regexes) const;

  // Phase 3: refined version of `gr`, or nullopt if nothing could be
  // refined (fewer than two matching hostnames, or non-uniform classes).
  std::optional<GeoRegex> embed_classes(const GeoRegex& gr,
                                        std::span<const TaggedHostname> tagged) const;

 private:
  GenConfig config_;
};

// Removes duplicates (same printed regex + same plan), preserving order.
void dedup_regexes(std::vector<GeoRegex>& regexes);

}  // namespace hoiho::core
