// Geolocator: the apply-side API.
//
// Once conventions are learned (or loaded), geolocating a hostname needs no
// measurement infrastructure — one of the paper's key arguments for regexes
// over run-time delay probing. The Geolocator indexes naming conventions by
// suffix and decodes any hostname they cover.
//
// Thread safety: after the last add(), a Geolocator is immutable and every
// const method (locate, convention, convention_count) is safe to call from
// any number of threads concurrently — the serving subsystem (src/serve/)
// relies on this, hammering one snapshot from all workers while a reload
// builds the next one aside.
#pragma once

#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/geohint.h"
#include "dns/hostname.h"
#include "regex/set_matcher.h"

namespace hoiho::core {

struct Geolocation {
  geo::LocationId location = geo::kInvalidLocation;
  geo::Coordinate coord;
  std::string code;        // the geohint that produced the location
  Role role = Role::kIata; // how the code was interpreted
  bool via_learned = false;
  std::string suffix;      // convention that matched
};

// The full account of one locate(): the winning location plus every
// dictionary sibling that survived cc/st narrowing, in dictionary order.
// The fusion subsystem (src/fuse/) consumes the candidate list — ambiguity
// the hostname alone cannot resolve (e.g. "melbourne" FL vs AU) is exactly
// what RTT feasibility disambiguates.
struct LocateDetail {
  Geolocation best;                          // identical to locate()'s answer
  std::vector<geo::LocationId> candidates;   // all narrowed siblings, best included
  geo::HintType hint = geo::HintType::kIata; // dictionary the code was looked up in
  NcClass cls = NcClass::kGood;              // stage-5 class of the convention
};

class Geolocator {
 public:
  explicit Geolocator(const geo::GeoDictionary& dict) : dict_(dict) {}

  // Registers a convention; replaces any previous one for the same suffix.
  // The convention's regexes are compiled into an rx::SetMatcher here, once,
  // so every locate() runs prebuilt programs (a ModelSnapshot in src/serve/
  // therefore carries its matchers ready-made across hot reloads).
  // `cls` is the stage-5 classification, carried through to LocateDetail so
  // downstream ranking (src/fuse/) can weight by convention quality.
  void add(NamingConvention nc, NcClass cls = NcClass::kGood);

  // Registers a convention whose SetMatcher is already built — the binary
  // model loader (core/ncb.*) hands in matchers assembled as views over a
  // read-only mapping, skipping recompilation entirely. The convention's
  // GeoRegex entries may carry empty ASTs: locate() decodes matches from
  // the plan plus compiled captures only (decode_extraction), never the AST.
  void add_compiled(NamingConvention nc, rx::SetMatcher matcher, NcClass cls = NcClass::kGood);

  // Drops the convention registered for `suffix` (false if none was). The
  // delta-apply path (serve::ModelStore) retires suffixes whose convention
  // an incremental relearn removed; everything else keeps the Geolocator
  // immutable after its last mutation, per the thread-safety note above.
  bool remove(std::string_view suffix);

  std::size_t convention_count() const { return by_suffix_.size(); }

  // Pre-sizes the suffix table for a known-cardinality install (a model
  // loader adding every convention at once) so the build doesn't rehash.
  void reserve(std::size_t conventions) { by_suffix_.reserve(conventions); }

  const geo::GeoDictionary& dictionary() const { return dict_; }

  // Total compiled regex programs across all conventions (serving metrics).
  std::size_t program_count() const {
    std::size_t n = 0;
    for (const auto& [suffix, cc] : by_suffix_) n += cc.matcher.size();
    return n;
  }

  // Suffix-match fast path: heterogeneous lookup, so the per-request
  // suffix string_view never materializes a std::string.
  const NamingConvention* convention(std::string_view suffix) const;

  // Geolocates one hostname: applies the suffix's convention, interprets the
  // extraction via the learned then the reference dictionary, narrows by any
  // extracted state/country code, and breaks ambiguity by facility presence
  // then population. nullopt if no convention matches or the code is
  // unknown.
  std::optional<Geolocation> locate(std::string_view hostname) const;

  // locate() plus the evidence it was derived from: the full candidate list
  // before tiebreaking and the convention's classification. Same miss
  // conditions as locate(); when both return, locate_detailed().best is
  // byte-identical to locate()'s result (locate() is a thin wrapper).
  std::optional<LocateDetail> locate_detailed(std::string_view hostname) const;

 private:
  // Transparent hash so find(string_view) needs no temporary std::string
  // (locate() runs once per served request; see src/serve/).
  struct SuffixHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
    std::size_t operator()(const std::string& s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  // A convention plus its regexes compiled for the serving hot path.
  struct CompiledConvention {
    NamingConvention nc;
    rx::SetMatcher matcher;
    NcClass cls = NcClass::kGood;
  };

  const geo::GeoDictionary& dict_;
  std::unordered_map<std::string, CompiledConvention, SuffixHash, std::equal_to<>> by_suffix_;
};

}  // namespace hoiho::core
