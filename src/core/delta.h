// Incremental relearning (DESIGN.md §16).
//
// Production hostname sets churn daily: PTR records are re-resolved, POPs
// come and go, RTT campaigns refresh. The batch pipeline would relearn
// every suffix from scratch; the incremental path relearns only what
// changed. Three artifacts make that sound:
//
//   - Every SuffixResult carries a content fingerprint — an FNV-1a hash of
//     the suffix's hostnames and its routers' RTT rows (suffix_fingerprint).
//     Because the method is per-suffix (paper §5), an unchanged fingerprint
//     means the suffix's learned convention is unchanged byte-for-byte.
//   - A PriorRun is the previous run's fingerprinted results plus the
//     learner-config and VP-set signatures they were produced under.
//     Hoiho::run_delta diffs an incoming WorldDelta (the changed suffixes,
//     rendered as one self-contained batch, plus removals) against it and
//     re-runs only the dirty suffixes.
//   - The output is a ModelDelta: base-generation id + per-suffix
//     add/replace/remove records, serialized with the same FNV checksum
//     footer as model files, that serve::ModelStore::apply_delta applies
//     without a full reload (structurally sharing unchanged matchers).
//
// Byte-identity contract: model files are written in canonical order
// (sort_conventions — sorted by suffix), so a delta applied to the base
// model reproduces, byte for byte, the file a from-scratch run over the
// churned world would save. Ordering by key is what makes "insert" well
// defined without the store knowing stream positions.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/hoiho.h"
#include "core/nc_io.h"
#include "io/suffix_stream.h"

namespace hoiho::io {
struct LoadReport;
}

namespace hoiho::core {

// Content fingerprint of one suffix: FNV-1a over the suffix, its hostnames
// (in group order), the VP count, and each distinct router's RTT row.
// Equal fingerprints ⇒ the learner would produce an identical SuffixResult
// (per-suffix independence), so the prior result can be reused verbatim.
// Never returns 0 (0 is the "unknown, always dirty" sentinel stored by
// pre-fingerprint checkpoints).
std::uint64_t suffix_fingerprint(const topo::SuffixGroup& group,
                                 const measure::Measurements& meas);

// Fingerprint of the measurement campaign's VP set (names, countries,
// coordinates, order). A changed VP set invalidates every suffix — the
// expected-RTT geometry moved — so run_delta rejects rather than reuses.
std::uint64_t vp_set_hash(const std::vector<measure::VantagePoint>& vps);

// Fingerprint of every HoihoConfig knob that shapes learned output (the
// config half of the checkpoint signature; stream identity excluded).
// Output-invariant knobs — threads, caches, compiled_regex, observability
// sinks — are excluded, so a prior run taken at threads=8 serves a delta
// run at threads=1.
std::uint64_t learn_signature(const HoihoConfig& config, std::size_t dict_size);

// Canonical model order: sorted by suffix (duplicates keep input order).
// save paths apply this before serializing so that merge-by-suffix delta
// application reproduces from-scratch bytes exactly.
void sort_conventions(std::vector<StoredConvention>& conventions);

// The previous run, packaged for diffing: fingerprinted per-suffix results
// plus the signatures they are only valid under.
struct PriorRun {
  std::uint64_t learn_sig = 0;   // learn_signature at capture time
  std::uint64_t vp_hash = 0;     // vp_set_hash of the campaign
  std::uint64_t generation = 0;  // serving generation the run published (0 = none)
  std::vector<SuffixResult> results;  // stream order, compacted

  // Takes ownership of `result` and indexes it. `generation` ties the
  // eventual ModelDelta to the serving lineage.
  static PriorRun capture(HoihoResult result, const HoihoConfig& config,
                          std::size_t dict_size,
                          const std::vector<measure::VantagePoint>& vps,
                          std::uint64_t generation = 0);

  // The prior result for `suffix`, or nullptr. O(1).
  const SuffixResult* find(std::string_view suffix) const;

  // Rebuilds the suffix index after direct edits to `results`.
  void reindex();

 private:
  struct SvHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, std::size_t, SvHash, std::equal_to<>> index_;
};

// An incoming change-set: the changed/added suffixes rendered as one
// self-contained batch (the same shape a SuffixStream emits — topology and
// RTT rows scoped to those routers, campaign-wide VP set), plus the
// suffixes that left the world entirely. Cost of building and diffing one
// is proportional to the churn, never to the world.
struct WorldDelta {
  io::SuffixBatch changed;
  std::vector<std::string> removed;
};

// A versioned model change-set: what ModelStore::apply_delta consumes.
// `upserts` add or replace whole conventions (all classes, matching model
// files' coverage); `removes` drop suffixes from the model. Only valid
// against the generation it was diffed from.
struct ModelDelta {
  std::uint64_t base_generation = 0;
  std::vector<std::string> removes;       // canonical (sorted) order
  std::vector<StoredConvention> upserts;  // canonical (sorted) order

  bool empty() const { return removes.empty() && upserts.empty(); }
};

// What Hoiho::run_delta returns: the merged result set (reused + relearned,
// equal to what a from-scratch run over the churned world would produce,
// modulo compaction) plus the ModelDelta and the diff accounting.
struct DeltaRunReport {
  HoihoResult result;
  ModelDelta delta;
  std::size_t dirty = 0;    // suffixes relearned (fingerprint changed)
  std::size_t reused = 0;   // suffixes whose prior result was reused
  std::size_t added = 0;    // suffixes not present in the prior run
  std::size_t removed = 0;  // suffixes dropped from the world
  double relearn_wall_ms = 0;  // wall time spent re-running dirty suffixes
  std::string error;           // non-empty: prior incompatible, nothing ran

  bool ok() const { return error.empty(); }
};

// --- ModelDelta serialization -------------------------------------------
//
//   # hoiho-geo model delta v1
//   D,<base_generation>,<upsert_count>,<remove_count>
//   -,<suffix>                         one per remove
//   S,<suffix>,<class>                 upsert blocks, exactly the model
//   R,<plan>,<regex>                   file records (nc_io.h)
//   L,<type>,<code>,<city>,<state>,<country>
//   # checksum,fnv1a,<hex16>
//
// Unlike model files (where the footer is optional for hand-written
// interop), a delta REQUIRES the footer: a torn delta must never publish,
// and the chaos drill depends on truncation being detected.

inline constexpr std::string_view kModelDeltaMagic = "# hoiho-geo model delta v1";

// Format sniff: true iff `head` begins with the delta magic line.
bool is_model_delta(std::string_view head);

std::string serialize_model_delta(const ModelDelta& delta, const geo::GeoDictionary& dict);

// serialize + crash-safe publish (write_model_file_atomic).
bool save_model_delta_to_file(const std::string& path, const ModelDelta& delta,
                              const geo::GeoDictionary& dict, std::string* error = nullptr);

// Strict load with the same limits/accounting contract as load_conventions;
// any structural violation (bad record, checksum mismatch, missing footer,
// count mismatch against the D header) fails with a named error, mirrored
// into *report.
std::optional<ModelDelta> load_model_delta(std::istream& in, const geo::GeoDictionary& dict,
                                           std::string* error,
                                           std::vector<std::string>* warnings = nullptr,
                                           const LoadLimits& limits = {},
                                           io::LoadReport* report = nullptr);

}  // namespace hoiho::core
