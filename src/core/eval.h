// Stage 3 (evaluation half): score a naming convention against the tagged
// hostnames of a suffix (paper §5.3).
//
// Per-hostname outcomes:
//   TP  — extracted geohint is RTT-consistent AND the regex also extracted
//         any state/country code that was part of the apparent geohint;
//   FP  — extracted geohint is in the dictionary but not RTT-consistent;
//   FN  — no extraction although the hostname has an apparent geohint, or a
//         required state/country code was not extracted;
//   UNK — extracted string is not in the dictionary (the raw material of
//         stage 4 learning);
//   none — no extraction and no apparent geohint (not counted).
// Scores: ATP = TP - (FP + FN + UNK); PPV = TP / (TP + FP).
#pragma once

#include <set>
#include <span>
#include <unordered_map>

#include "core/geohint.h"
#include "measure/consistency.h"
#include "measure/consistency_cache.h"
#include "regex/set_matcher.h"

namespace hoiho::core {

enum class Outcome : std::uint8_t { kNone, kTP, kFP, kFN, kUNK };
std::string_view to_string(Outcome o);

// How one hostname fared under a naming convention.
struct HostnameEval {
  Outcome outcome = Outcome::kNone;
  int regex_index = -1;         // which regex in the NC matched; -1 if none
  std::string code;             // primary extraction (lower-case), if matched
  std::string cc, st;           // extracted country/state codes, if any
  std::vector<geo::LocationId> locations;  // candidates after narrowing
  geo::LocationId best_location = geo::kInvalidLocation;  // TP only
  bool via_learned = false;     // code resolved through NC.learned
  bool budget_exhausted = false;  // a regex abandoned its match on the work bound
};

struct EvalCounts {
  std::size_t tp = 0, fp = 0, fn = 0, unk = 0, none = 0;
  // Hostnames where at least one regex hit the backtracking work bound; the
  // outcome recorded for them is inconclusive. Not part of scored().
  std::size_t budget_exhausted = 0;

  long atp() const {
    return static_cast<long>(tp) - static_cast<long>(fp + fn + unk);
  }
  double ppv() const {
    return (tp + fp) == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(tp + fp);
  }
  std::size_t scored() const { return tp + fp + fn + unk; }
};

// Full evaluation of a naming convention over a suffix group.
struct NcEvaluation {
  EvalCounts counts;
  std::vector<HostnameEval> per_hostname;          // parallel to input
  std::set<std::string> unique_tp_codes;           // distinct TP geohints
  std::vector<std::set<std::string>> regex_unique_tp;  // per regex in the NC

  std::size_t unique_count() const { return unique_tp_codes.size(); }
};

// Scores naming conventions against tagged hostnames.
//
// Thread safety: an Evaluator memoizes compiled regex programs and reuses
// match scratch across calls (the pipeline builds one per suffix run, like
// the ConsistencyCache), so a single instance must not be shared across
// threads. Cross-suffix parallelism gives each worker its own evaluator.
class Evaluator {
 public:
  // `cache`, if non-null, memoizes RTT-consistency verdicts; it must be
  // built over the same measurements and slack and outlive the evaluator.
  Evaluator(const geo::GeoDictionary& dict, const measure::Measurements& meas,
            double slack_ms = 0.0, measure::ConsistencyCache* cache = nullptr);

  NcEvaluation evaluate(const NamingConvention& nc,
                        std::span<const TaggedHostname> tagged) const;

  // Like evaluate(), but skips the per-hostname detail (per_hostname stays
  // empty and TP location lists are not materialized). Counts, unique-TP
  // sets, and therefore ATP/PPV are identical to evaluate() — this is the
  // cheap form for trial NCs that are scored and discarded.
  NcEvaluation evaluate_counts(const NamingConvention& nc,
                               std::span<const TaggedHostname> tagged) const;

  // Batch path for candidate scoring: evaluates every candidate as its own
  // single-regex NC, equivalent to (but much faster than) calling
  // evaluate() per candidate — the whole set is compiled into one
  // rx::SetMatcher and each hostname is matched against it in one pass.
  std::vector<NcEvaluation> evaluate_candidates(std::span<const GeoRegex> candidates,
                                                std::span<const TaggedHostname> tagged) const;

  HostnameEval evaluate_one(const NamingConvention& nc, const TaggedHostname& tagged) const;

  // Engine selection: compiled rx::Program execution (default) or the AST
  // backtracker. Both produce byte-identical results (the differential test
  // holds them to it); the knob exists for that test and for A/B benches.
  void set_use_compiled(bool on) { use_compiled_ = on; }
  bool use_compiled() const { return use_compiled_; }

  // Ranks candidate locations the way stage 4 does (facility, then
  // population, then id for determinism) and returns the best.
  geo::LocationId choose_location(std::span<const geo::LocationId> ids) const;

  // RTT-consistency of dictionary location `id` for router `r` at the
  // evaluator's slack, through the cache when one is attached. Shared by
  // evaluation and stage-4 learning so both hit the same cache.
  bool rtt_consistent_for(topo::RouterId r, geo::LocationId id) const;

  const geo::GeoDictionary& dictionary() const { return dict_; }
  const measure::Measurements& measurements() const { return meas_; }
  double slack_ms() const { return slack_ms_; }

  // Observability taps (DESIGN.md §11): set-matching work accumulated on
  // this evaluator's scratch over its lifetime, and the size of the
  // compiled-program memo. The pipeline folds these into the metrics
  // registry once per suffix run — these replace the older pattern of
  // bolting ad-hoc stat fields onto evaluation results.
  const rx::MatchStats& match_stats() const { return scratch_.set_stats; }
  std::size_t compiled_program_count() const { return programs_.size(); }

 private:
  // The shared scoring core: everything after extraction (dictionary
  // lookup through `learned` then the reference dictionary, annotation
  // narrowing, RTT consistency, completeness). Both engines funnel here.
  // `details` false skips materializing ev.locations / ev.best_location
  // (counts and outcome are unaffected).
  HostnameEval evaluate_extraction(const std::map<LearnedKey, geo::LocationId>& learned,
                                   const TaggedHostname& tagged,
                                   const std::optional<Extraction>& ex, bool details) const;

  NcEvaluation evaluate_impl(const NamingConvention& nc, std::span<const TaggedHostname> tagged,
                             bool details) const;

  // Compiled program for `gr`, memoized by printed pattern (candidate sets
  // and NC-combination trials reuse the same regexes heavily). The printed
  // key is computed here once per resolution — callers must hoist the
  // resolution out of per-hostname loops.
  const rx::Program& program_for(const GeoRegex& gr) const;

  // extract() over programs pre-resolved for one NC; first regex with a
  // primary code wins. `progs` is parallel to nc.regexes.
  std::optional<Extraction> extract_compiled(const NamingConvention& nc,
                                             std::span<const rx::Program* const> progs,
                                             const dns::Hostname& host,
                                             bool* budget_exhausted) const;

  const geo::GeoDictionary& dict_;
  const measure::Measurements& meas_;
  double slack_ms_;
  measure::ConsistencyCache* cache_;
  bool use_compiled_ = true;
  mutable std::unordered_map<std::string, rx::Program> programs_;
  mutable rx::MatchScratch scratch_;
  mutable std::vector<rx::Capture> caps_;
  // Per-call scratch (cleared on entry), so per-hostname scoring does not
  // allocate: resolved programs for the NC under evaluation, and the
  // candidate/consistent location lists.
  mutable std::vector<const rx::Program*> progs_tmp_;
  mutable std::vector<geo::LocationId> cand_tmp_, cons_tmp_;
};

}  // namespace hoiho::core
