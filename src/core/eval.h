// Stage 3 (evaluation half): score a naming convention against the tagged
// hostnames of a suffix (paper §5.3).
//
// Per-hostname outcomes:
//   TP  — extracted geohint is RTT-consistent AND the regex also extracted
//         any state/country code that was part of the apparent geohint;
//   FP  — extracted geohint is in the dictionary but not RTT-consistent;
//   FN  — no extraction although the hostname has an apparent geohint, or a
//         required state/country code was not extracted;
//   UNK — extracted string is not in the dictionary (the raw material of
//         stage 4 learning);
//   none — no extraction and no apparent geohint (not counted).
// Scores: ATP = TP - (FP + FN + UNK); PPV = TP / (TP + FP).
#pragma once

#include <set>
#include <span>

#include "core/geohint.h"
#include "measure/consistency.h"
#include "measure/consistency_cache.h"

namespace hoiho::core {

enum class Outcome : std::uint8_t { kNone, kTP, kFP, kFN, kUNK };
std::string_view to_string(Outcome o);

// How one hostname fared under a naming convention.
struct HostnameEval {
  Outcome outcome = Outcome::kNone;
  int regex_index = -1;         // which regex in the NC matched; -1 if none
  std::string code;             // primary extraction (lower-case), if matched
  std::string cc, st;           // extracted country/state codes, if any
  std::vector<geo::LocationId> locations;  // candidates after narrowing
  geo::LocationId best_location = geo::kInvalidLocation;  // TP only
  bool via_learned = false;     // code resolved through NC.learned
};

struct EvalCounts {
  std::size_t tp = 0, fp = 0, fn = 0, unk = 0, none = 0;

  long atp() const {
    return static_cast<long>(tp) - static_cast<long>(fp + fn + unk);
  }
  double ppv() const {
    return (tp + fp) == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(tp + fp);
  }
  std::size_t scored() const { return tp + fp + fn + unk; }
};

// Full evaluation of a naming convention over a suffix group.
struct NcEvaluation {
  EvalCounts counts;
  std::vector<HostnameEval> per_hostname;          // parallel to input
  std::set<std::string> unique_tp_codes;           // distinct TP geohints
  std::vector<std::set<std::string>> regex_unique_tp;  // per regex in the NC

  std::size_t unique_count() const { return unique_tp_codes.size(); }
};

class Evaluator {
 public:
  // `cache`, if non-null, memoizes RTT-consistency verdicts; it must be
  // built over the same measurements and slack and outlive the evaluator.
  Evaluator(const geo::GeoDictionary& dict, const measure::Measurements& meas,
            double slack_ms = 0.0, measure::ConsistencyCache* cache = nullptr);

  NcEvaluation evaluate(const NamingConvention& nc,
                        std::span<const TaggedHostname> tagged) const;

  HostnameEval evaluate_one(const NamingConvention& nc, const TaggedHostname& tagged) const;

  // Ranks candidate locations the way stage 4 does (facility, then
  // population, then id for determinism) and returns the best.
  geo::LocationId choose_location(std::span<const geo::LocationId> ids) const;

  // RTT-consistency of dictionary location `id` for router `r` at the
  // evaluator's slack, through the cache when one is attached. Shared by
  // evaluation and stage-4 learning so both hit the same cache.
  bool rtt_consistent_for(topo::RouterId r, geo::LocationId id) const;

  const geo::GeoDictionary& dictionary() const { return dict_; }
  const measure::Measurements& measurements() const { return meas_; }
  double slack_ms() const { return slack_ms_; }

 private:
  const geo::GeoDictionary& dict_;
  const measure::Measurements& meas_;
  double slack_ms_;
  measure::ConsistencyCache* cache_;
};

}  // namespace hoiho::core
