// Core types shared by the five stages of the Hoiho-geo method:
// apparent geohints (stage 2), geo-regexes with interpretation plans and
// naming conventions (stage 3), learned per-suffix geohints (stage 4), and
// convention classifications (stage 5).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "geo/dictionary.h"
#include "regex/ast.h"
#include "regex/matcher.h"
#include "topo/topology.h"

namespace hoiho::core {

// The role a capture group plays in a regex's interpretation plan.
// kClli4/kClli2 are the two halves of a split CLLI prefix (paper fig. 6e);
// their captures are concatenated before dictionary lookup.
enum class Role : std::uint8_t {
  kIata,
  kIcao,
  kLocode,
  kClli,
  kClli4,
  kClli2,
  kCityName,
  kFacility,
  kCountryCode,
  kStateCode,
};

std::string_view to_string(Role r);

// True for roles that annotate a primary geohint rather than carry one.
inline bool is_annotation(Role r) {
  return r == Role::kCountryCode || r == Role::kStateCode;
}

// The dictionary used to interpret a primary role's capture.
geo::HintType dictionary_for(Role r);

// --- Stage 2: apparent geohints ---------------------------------------------

// A state/country code adjacent to an apparent geohint that matches one of
// its candidate locations ("lhr, uk" in paper fig. 6a).
struct HintAnnotation {
  Role role = Role::kCountryCode;  // kCountryCode or kStateCode
  std::string code;                // as it appears, e.g. "uk"
  std::size_t begin = 0, end = 0;  // char range in the full hostname
};

// An apparent geohint: a dictionary hit in the hostname whose location(s)
// are RTT-consistent for the router.
struct ApparentHint {
  Role role = Role::kIata;              // dictionary the code hit
  std::string code;                     // geohint string (lower-case)
  std::size_t begin = 0, end = 0;       // char range in the full hostname
  std::vector<geo::LocationId> locations;  // RTT-consistent candidates
  std::vector<HintAnnotation> annotations;
  bool split_clli = false;              // assembled from adjacent 4+2 tokens
};

// Stage-2 result for one hostname.
struct TaggedHostname {
  topo::HostnameRef ref;
  std::vector<ApparentHint> hints;  // empty if no apparent geohint

  bool has_hint() const { return !hints.empty(); }
};

// --- Stage 3: regexes, plans, conventions ------------------------------------

// Interpretation plan: the role of each capture group, in group order.
struct Plan {
  std::vector<Role> roles;

  // The plan's primary (non-annotation) role; plans always have exactly one
  // primary geohint (kClli4+kClli2 count as one, reported as kClli).
  Role primary() const;

  bool extracts(Role r) const;
  std::string to_string() const;  // e.g. "iata" or "city,cc"

  friend bool operator==(const Plan&, const Plan&) = default;
};

// A regex plus the plan to decode what it extracts.
struct GeoRegex {
  rx::Regex regex;
  Plan plan;

  std::string to_string() const { return regex.to_string(); }
};

// Key for a learned (suffix-specific) geohint: dictionary type + code.
using LearnedKey = std::pair<geo::HintType, std::string>;

// Stage-5 classification of a naming convention (paper §5.5).
enum class NcClass : std::uint8_t { kGood, kPromising, kPoor };
std::string_view to_string(NcClass c);

// A naming convention: one or more regexes that extract geohints for one
// suffix, plus the per-suffix geohints learned in stage 4. Regexes are
// applied in order; the first that matches a hostname interprets it.
struct NamingConvention {
  std::string suffix;
  std::vector<GeoRegex> regexes;
  std::map<LearnedKey, geo::LocationId> learned;

  bool empty() const { return regexes.empty(); }

  // True if any regex's plan extracts a country or state code.
  bool extracts_annotation() const;
};

// The decoded output of applying a naming convention to one hostname:
// which regex matched and the code / annotations its captures carried.
// Facility codes are already squashed to their alphanumeric form; split
// CLLI captures are already concatenated.
struct Extraction {
  int regex_index = -1;
  Role primary = Role::kIata;
  std::string code;
  std::string cc, st;
};

// Applies `nc` to `host` (first matching regex wins); nullopt if no regex
// matches or the match yields no primary code. When `budget_exhausted` is
// non-null it is set to true if any regex abandoned its match on the
// backtracking work bound (the nullopt is then inconclusive).
std::optional<Extraction> extract(const NamingConvention& nc, const dns::Hostname& host,
                                  bool* budget_exhausted = nullptr);

// Decodes the capture spans of `gr` (regex number `index` within its NC) on
// `subject` into an Extraction; nullopt when the plan yields no primary
// code. Shared by the interpreted path (extract) and the compiled engine
// paths (Evaluator, Geolocator), so all of them agree byte-for-byte.
std::optional<Extraction> decode_extraction(const GeoRegex& gr, int index,
                                            std::string_view subject,
                                            std::span<const rx::Capture> caps);

}  // namespace hoiho::core
