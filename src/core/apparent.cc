#include "core/apparent.h"

#include <algorithm>

#include "util/strings.h"

namespace hoiho::core {

ApparentTagger::ApparentTagger(const geo::GeoDictionary& dict, const measure::Measurements& meas,
                               ApparentConfig config, measure::ConsistencyCache* cache)
    : dict_(dict), meas_(meas), config_(config), cache_(cache) {}

std::vector<geo::LocationId> ApparentTagger::consistent_locations(
    topo::RouterId router, std::span<const geo::LocationId> ids) const {
  std::vector<geo::LocationId> out;
  for (geo::LocationId id : ids) {
    const geo::Coordinate& coord = dict_.location(id).coord;
    const bool ok = cache_ != nullptr
                        ? cache_->consistent(router, id, coord, config_.slack_ms)
                        : measure::rtt_consistent(meas_.pings, meas_.vps, router, coord,
                                                  config_.slack_ms);
    if (ok) out.push_back(id);
  }
  return out;
}

void ApparentTagger::attach_annotations(const dns::Hostname& host, ApparentHint& hint) const {
  const std::string_view prefix = host.prefix();
  for (const util::Token& t : util::alpha_runs(prefix)) {
    if (t.size() != 2 && t.size() != 3) continue;  // "va", "uk", "nsw", "qld"
    if (t.begin < hint.end && hint.begin < t.end) continue;  // overlaps the hint itself
    const std::string code = util::to_lower(t.text);

    // Country code: keep candidate locations in that country, if any match.
    std::vector<geo::LocationId> narrowed;
    if (t.size() == 2) {
      for (geo::LocationId id : hint.locations)
        if (dict_.matches_country(code, id)) narrowed.push_back(id);
      if (!narrowed.empty()) {
        hint.locations = std::move(narrowed);
        hint.annotations.push_back(HintAnnotation{Role::kCountryCode, code, t.begin, t.end});
        continue;
      }
    }

    // State code.
    narrowed.clear();
    for (geo::LocationId id : hint.locations)
      if (dict_.matches_state(code, id)) narrowed.push_back(id);
    if (!narrowed.empty()) {
      hint.locations = std::move(narrowed);
      hint.annotations.push_back(HintAnnotation{Role::kStateCode, code, t.begin, t.end});
    }
  }
}

TaggedHostname ApparentTagger::tag(const topo::HostnameRef& ref) const {
  TaggedHostname out;
  out.ref = ref;
  const dns::Hostname& host = *ref.hostname;
  const std::string_view prefix = host.prefix();
  if (prefix.empty()) return out;

  const auto try_hint = [&](Role role, std::string_view code, std::size_t begin, std::size_t end,
                            bool split = false) {
    const auto ids = dict_.lookup(dictionary_for(role), code);
    if (ids.empty()) return;
    auto consistent = consistent_locations(ref.router, ids);
    if (consistent.empty()) return;
    // Dedupe on (role, code, begin).
    for (const ApparentHint& h : out.hints)
      if (h.role == role && h.code == code && h.begin == begin) return;
    ApparentHint hint;
    hint.role = role;
    hint.code = std::string(code);
    hint.begin = begin;
    hint.end = end;
    hint.locations = std::move(consistent);
    hint.split_clli = split;
    out.hints.push_back(std::move(hint));
  };

  const std::vector<util::Token> tokens = util::alpha_runs(prefix);
  for (const util::Token& t : tokens) {
    const std::string code = util::to_lower(t.text);
    switch (t.size()) {
      case 3:
        try_hint(Role::kIata, code, t.begin, t.end);
        break;
      case 4:
        if (config_.consider_icao) try_hint(Role::kIcao, code, t.begin, t.end);
        break;
      case 5:
        try_hint(Role::kLocode, code, t.begin, t.end);
        break;
      case 6:
        try_hint(Role::kClli, code, t.begin, t.end);
        break;
      default:
        break;
    }
    // CLLI prefix embedded in a longer code (paper fig. 6d).
    if (t.size() > 6) {
      try_hint(Role::kClli, std::string_view(code).substr(0, 6), t.begin, t.begin + 6);
    }
    // City names.
    if (t.size() >= config_.min_city_len) {
      try_hint(Role::kCityName, code, t.begin, t.end);
    }
  }

  // Split CLLI prefixes: a 4-letter token followed closely by a 2-letter
  // token within the same dot-label (paper fig. 6e).
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    const util::Token& a = tokens[i];
    const util::Token& b = tokens[i + 1];
    if (a.size() != 4 || b.size() != 2) continue;
    if (b.begin - a.end > 4) continue;
    // The gap must not contain a dot (same label).
    const std::string_view gap = prefix.substr(a.end, b.begin - a.end);
    if (gap.find('.') != std::string_view::npos) continue;
    const std::string code = util::to_lower(a.text) + util::to_lower(b.text);
    try_hint(Role::kClli, code, a.begin, b.end, /*split=*/true);
  }

  // Facility street addresses: whole dot-labels, squashed (paper fig. 6f).
  if (config_.consider_facility) {
    for (const util::Token& label : util::split_tokens(prefix, '.')) {
      std::string squashed;
      for (char c : label.text)
        if (std::isalnum(static_cast<unsigned char>(c)))
          squashed.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
      if (squashed.size() < 4) continue;
      try_hint(Role::kFacility, squashed, label.begin, label.end);
    }
  }

  for (ApparentHint& hint : out.hints) attach_annotations(host, hint);
  return out;
}

std::vector<TaggedHostname> ApparentTagger::tag_all(
    std::span<const topo::HostnameRef> refs) const {
  std::vector<TaggedHostname> out;
  out.reserve(refs.size());
  for (const topo::HostnameRef& ref : refs) out.push_back(tag(ref));
  return out;
}

}  // namespace hoiho::core
