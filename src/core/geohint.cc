#include "core/geohint.h"

#include "regex/matcher.h"
#include "util/strings.h"

namespace hoiho::core {

std::string_view to_string(Role r) {
  switch (r) {
    case Role::kIata: return "iata";
    case Role::kIcao: return "icao";
    case Role::kLocode: return "locode";
    case Role::kClli: return "clli";
    case Role::kClli4: return "clli4";
    case Role::kClli2: return "clli2";
    case Role::kCityName: return "city";
    case Role::kFacility: return "facility";
    case Role::kCountryCode: return "cc";
    case Role::kStateCode: return "st";
  }
  return "?";
}

geo::HintType dictionary_for(Role r) {
  switch (r) {
    case Role::kIata: return geo::HintType::kIata;
    case Role::kIcao: return geo::HintType::kIcao;
    case Role::kLocode: return geo::HintType::kLocode;
    case Role::kClli:
    case Role::kClli4:
    case Role::kClli2: return geo::HintType::kClli;
    case Role::kCityName: return geo::HintType::kCityName;
    case Role::kFacility: return geo::HintType::kFacility;
    case Role::kCountryCode: return geo::HintType::kCountryCode;
    case Role::kStateCode: return geo::HintType::kStateCode;
  }
  return geo::HintType::kCityName;
}

Role Plan::primary() const {
  for (Role r : roles) {
    if (is_annotation(r)) continue;
    if (r == Role::kClli4 || r == Role::kClli2) return Role::kClli;
    return r;
  }
  return Role::kCityName;
}

bool Plan::extracts(Role r) const {
  for (Role x : roles)
    if (x == r) return true;
  return false;
}

std::string Plan::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < roles.size(); ++i) {
    if (i) out += ",";
    out += std::string(core::to_string(roles[i]));
  }
  return out;
}

std::string_view to_string(NcClass c) {
  switch (c) {
    case NcClass::kGood: return "good";
    case NcClass::kPromising: return "promising";
    case NcClass::kPoor: return "poor";
  }
  return "?";
}

bool NamingConvention::extracts_annotation() const {
  for (const GeoRegex& gr : regexes)
    if (gr.plan.extracts(Role::kCountryCode) || gr.plan.extracts(Role::kStateCode)) return true;
  return false;
}

std::optional<Extraction> decode_extraction(const GeoRegex& gr, int index,
                                            std::string_view subject,
                                            std::span<const rx::Capture> caps) {
  if (caps.empty()) return std::nullopt;
  Extraction ex;
  ex.regex_index = index;
  std::string clli4, clli2;
  for (std::size_t c = 0; c < gr.plan.roles.size() && c < caps.size(); ++c) {
    const std::string cap = util::to_lower(caps[c].view(subject));
    switch (gr.plan.roles[c]) {
      case Role::kCountryCode: ex.cc = cap; break;
      case Role::kStateCode: ex.st = cap; break;
      case Role::kClli4: clli4 = cap; break;
      case Role::kClli2: clli2 = cap; break;
      default: ex.code = cap; break;
    }
  }
  if (!clli4.empty() || !clli2.empty()) ex.code = clli4 + clli2;
  if (ex.code.empty()) return std::nullopt;
  ex.primary = gr.plan.primary();
  if (ex.primary == Role::kFacility) ex.code = util::squash_alnum(ex.code);
  return ex;
}

std::optional<Extraction> extract(const NamingConvention& nc, const dns::Hostname& host,
                                  bool* budget_exhausted) {
  for (std::size_t i = 0; i < nc.regexes.size(); ++i) {
    const GeoRegex& gr = nc.regexes[i];
    const rx::MatchResult m = rx::match(gr.regex, host.full);
    if (budget_exhausted != nullptr && m.budget_exhausted) *budget_exhausted = true;
    if (!m.matched) continue;
    if (auto ex = decode_extraction(gr, static_cast<int>(i), host.full, m.captures)) return ex;
  }
  return std::nullopt;
}

}  // namespace hoiho::core
