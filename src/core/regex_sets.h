// Stage 3 phase 4: build naming conventions — sets of regexes — to cover
// suffixes whose operators use multiple hostname formats (paper appendix A,
// "Build Regex Sets", and fig. 13 #7).
//
// Candidate regexes are ranked by descending ATP. Starting from the top
// regex, the builder repeatedly tries to append each lower-ranked regex,
// keeping an expansion when (1) the combined ATP improves, (2) every regex
// in the expanded NC still extracts at least `min_unique_per_regex` unique
// geohints, and (3) the PPV is no more than `ppv_tolerance` below the PPV of
// the NC the pass started with.
#pragma once

#include <span>

#include "core/eval.h"

namespace hoiho::core {

struct SetConfig {
  std::size_t min_unique_per_regex = 3;
  double ppv_tolerance = 0.10;
  std::size_t max_singles = 40;  // rank cutoff before combination
  std::size_t max_passes = 8;    // safety bound on combination passes
};

class NcBuilder {
 public:
  struct Candidate {
    NamingConvention nc;
    NcEvaluation eval;
  };

  NcBuilder(const Evaluator& evaluator, SetConfig config = {})
      : eval_(evaluator), config_(config) {}

  // Returns all candidate NCs: each surviving single regex as a singleton
  // NC, plus any multi-regex NCs the combination phase built. Sorted by
  // descending ATP. `prefix_evals`, when non-empty, holds the
  // evaluate_candidates() results for the first prefix_evals.size() entries
  // of `regexes` (the caller already scored them while ranking); only the
  // remainder is evaluated here. Per-regex evaluations are independent of
  // the surrounding set, so reuse is exact.
  std::vector<Candidate> build(std::string_view suffix, std::vector<GeoRegex> regexes,
                               std::span<const TaggedHostname> tagged,
                               std::vector<NcEvaluation> prefix_evals = {}) const;

 private:
  const Evaluator& eval_;
  SetConfig config_;
};

}  // namespace hoiho::core
