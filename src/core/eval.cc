#include "core/eval.h"

#include <algorithm>

#include "regex/matcher.h"
#include "util/strings.h"

namespace hoiho::core {

std::string_view to_string(Outcome o) {
  switch (o) {
    case Outcome::kNone: return "none";
    case Outcome::kTP: return "tp";
    case Outcome::kFP: return "fp";
    case Outcome::kFN: return "fn";
    case Outcome::kUNK: return "unk";
  }
  return "?";
}

Evaluator::Evaluator(const geo::GeoDictionary& dict, const measure::Measurements& meas,
                     double slack_ms, measure::ConsistencyCache* cache)
    : dict_(dict), meas_(meas), slack_ms_(slack_ms), cache_(cache) {}

bool Evaluator::rtt_consistent_for(topo::RouterId r, geo::LocationId id) const {
  const geo::Coordinate& coord = dict_.location(id).coord;
  if (cache_ != nullptr) return cache_->consistent(r, id, coord, slack_ms_);
  return measure::rtt_consistent(meas_.pings, meas_.vps, r, coord, slack_ms_);
}

geo::LocationId Evaluator::choose_location(std::span<const geo::LocationId> ids) const {
  geo::LocationId best = geo::kInvalidLocation;
  for (geo::LocationId id : ids) {
    if (best == geo::kInvalidLocation) {
      best = id;
      continue;
    }
    const geo::Location& a = dict_.location(id);
    const geo::Location& b = dict_.location(best);
    if (a.has_facility != b.has_facility) {
      if (a.has_facility) best = id;
    } else if (a.population != b.population) {
      if (a.population > b.population) best = id;
    }
  }
  return best;
}

const rx::Program& Evaluator::program_for(const GeoRegex& gr) const {
  const std::string key = gr.regex.to_string();
  const auto it = programs_.find(key);
  if (it != programs_.end()) return it->second;
  return programs_.emplace(key, rx::Program::compile(gr.regex)).first->second;
}

std::optional<Extraction> Evaluator::extract_compiled(const NamingConvention& nc,
                                                      std::span<const rx::Program* const> progs,
                                                      const dns::Hostname& host,
                                                      bool* budget_exhausted) const {
  // Byte-presence table for this subject, shared across the NC's programs:
  // a program whose required bytes are not all present cannot match (the
  // same screen SetMatcher::match_all applies to its candidates).
  rx::ClassBits present;
  for (const char c : host.full) {
    const auto u = static_cast<unsigned char>(c);
    if (u < 128) present.set(u);
  }
  for (std::size_t i = 0; i < progs.size(); ++i) {
    const rx::Program& p = *progs[i];
    if (p.required_bytes().any_not_in(present)) continue;
    if (!p.match(host.full, scratch_)) {
      if (scratch_.budget_exhausted && budget_exhausted != nullptr) *budget_exhausted = true;
      continue;
    }
    caps_.resize(p.capture_count());
    p.captures(scratch_, caps_.data());
    if (auto ex = decode_extraction(nc.regexes[i], static_cast<int>(i), host.full, caps_))
      return ex;
  }
  return std::nullopt;
}

HostnameEval Evaluator::evaluate_one(const NamingConvention& nc,
                                     const TaggedHostname& tagged) const {
  // Apply regexes in order; first match interprets the hostname.
  bool exhausted = false;
  const dns::Hostname& host = *tagged.ref.hostname;
  std::optional<Extraction> ex;
  if (use_compiled_) {
    progs_tmp_.clear();
    for (const GeoRegex& gr : nc.regexes) progs_tmp_.push_back(&program_for(gr));
    ex = extract_compiled(nc, progs_tmp_, host, &exhausted);
  } else {
    ex = extract(nc, host, &exhausted);
  }
  HostnameEval ev = evaluate_extraction(nc.learned, tagged, ex, /*details=*/true);
  ev.budget_exhausted = exhausted;
  return ev;
}

HostnameEval Evaluator::evaluate_extraction(const std::map<LearnedKey, geo::LocationId>& learned,
                                            const TaggedHostname& tagged,
                                            const std::optional<Extraction>& ex,
                                            bool details) const {
  HostnameEval ev;
  if (!ex) {
    ev.outcome = tagged.has_hint() ? Outcome::kFN : Outcome::kNone;
    return ev;
  }
  ev.regex_index = ex->regex_index;
  ev.code = ex->code;
  ev.cc = ex->cc;
  ev.st = ex->st;
  const geo::HintType dt = dictionary_for(ex->primary);

  // Dictionary lookup: learned per-suffix geohints first, then reference.
  // The location lists live in member scratch so per-hostname scoring does
  // not allocate; `details` decides whether they are copied into ev.
  std::vector<geo::LocationId>& candidates = cand_tmp_;
  candidates.clear();
  const auto learned_it =
      learned.empty() ? learned.end() : learned.find(LearnedKey{dt, ev.code});
  if (learned_it != learned.end()) {
    candidates.push_back(learned_it->second);
    ev.via_learned = true;
  } else {
    const auto ids = dict_.lookup(dt, ev.code);
    candidates.assign(ids.begin(), ids.end());
  }

  // Narrow by extracted annotations.
  if (!ev.cc.empty()) {
    std::erase_if(candidates,
                  [&](geo::LocationId id) { return !dict_.matches_country(ev.cc, id); });
  }
  if (!ev.st.empty()) {
    std::erase_if(candidates, [&](geo::LocationId id) { return !dict_.matches_state(ev.st, id); });
  }
  if (candidates.empty()) {
    ev.outcome = Outcome::kUNK;
    return ev;
  }

  // RTT consistency.
  std::vector<geo::LocationId>& consistent = cons_tmp_;
  consistent.clear();
  for (geo::LocationId id : candidates) {
    if (rtt_consistent_for(tagged.ref.router, id)) consistent.push_back(id);
  }
  if (details) ev.locations.assign(candidates.begin(), candidates.end());
  if (consistent.empty()) {
    ev.outcome = Outcome::kFP;
    return ev;
  }

  // Completeness: if the apparent geohint carried state/country annotations,
  // the regex must have extracted them (paper: extracting "lhr" without "uk"
  // from fig. 6a is a FN).
  for (const ApparentHint& hint : tagged.hints) {
    if (hint.code != ev.code || dictionary_for(hint.role) != dt) continue;
    for (const HintAnnotation& ann : hint.annotations) {
      if (ann.role == Role::kCountryCode && ev.cc.empty()) {
        ev.outcome = Outcome::kFN;
        return ev;
      }
      if (ann.role == Role::kStateCode && ev.st.empty()) {
        ev.outcome = Outcome::kFN;
        return ev;
      }
    }
    break;
  }

  ev.outcome = Outcome::kTP;
  if (details) {
    ev.locations.assign(consistent.begin(), consistent.end());
    ev.best_location = choose_location(consistent);
  }
  return ev;
}

namespace {

// Folds one hostname's result into the running evaluation. `keep` false
// drops the per-hostname record after counting (counts-only evaluation).
void accumulate(NcEvaluation& out, HostnameEval&& ev, bool keep = true) {
  switch (ev.outcome) {
    case Outcome::kTP:
      ++out.counts.tp;
      out.unique_tp_codes.insert(ev.code);
      if (ev.regex_index >= 0)
        out.regex_unique_tp[static_cast<std::size_t>(ev.regex_index)].insert(ev.code);
      break;
    case Outcome::kFP: ++out.counts.fp; break;
    case Outcome::kFN: ++out.counts.fn; break;
    case Outcome::kUNK: ++out.counts.unk; break;
    case Outcome::kNone: ++out.counts.none; break;
  }
  if (ev.budget_exhausted) ++out.counts.budget_exhausted;
  if (keep) out.per_hostname.push_back(std::move(ev));
}

}  // namespace

NcEvaluation Evaluator::evaluate_impl(const NamingConvention& nc,
                                      std::span<const TaggedHostname> tagged,
                                      bool details) const {
  NcEvaluation out;
  if (details) out.per_hostname.reserve(tagged.size());
  out.regex_unique_tp.resize(nc.regexes.size());
  // Resolve the NC's programs once per call — memo lookup keys by the
  // printed pattern, far too expensive to recompute per hostname. Pointers
  // stay valid across inserts (node-based map).
  if (use_compiled_) {
    progs_tmp_.clear();
    for (const GeoRegex& gr : nc.regexes) progs_tmp_.push_back(&program_for(gr));
  }
  for (const TaggedHostname& th : tagged) {
    bool exhausted = false;
    const dns::Hostname& host = *th.ref.hostname;
    const std::optional<Extraction> ex = use_compiled_
                                             ? extract_compiled(nc, progs_tmp_, host, &exhausted)
                                             : extract(nc, host, &exhausted);
    HostnameEval ev = evaluate_extraction(nc.learned, th, ex, details);
    ev.budget_exhausted = exhausted;
    accumulate(out, std::move(ev), details);
  }
  return out;
}

NcEvaluation Evaluator::evaluate(const NamingConvention& nc,
                                 std::span<const TaggedHostname> tagged) const {
  return evaluate_impl(nc, tagged, /*details=*/true);
}

NcEvaluation Evaluator::evaluate_counts(const NamingConvention& nc,
                                        std::span<const TaggedHostname> tagged) const {
  return evaluate_impl(nc, tagged, /*details=*/false);
}

std::vector<NcEvaluation> Evaluator::evaluate_candidates(
    std::span<const GeoRegex> candidates, std::span<const TaggedHostname> tagged) const {
  static const std::map<LearnedKey, geo::LocationId> kNoLearned;

  std::vector<NcEvaluation> out(candidates.size());
  if (candidates.empty()) return out;
  if (!use_compiled_) {
    // Oracle path: score each candidate as its own single-regex NC.
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      NamingConvention nc;
      nc.regexes.push_back(candidates[i]);
      out[i] = evaluate(nc, tagged);
    }
    return out;
  }

  for (NcEvaluation& ev : out) {
    ev.per_hostname.reserve(tagged.size());
    ev.regex_unique_tp.resize(1);
  }

  rx::SetMatcher matcher;
  for (const GeoRegex& gr : candidates) matcher.add(gr.regex);
  matcher.finalize();

  rx::SetMatches matches;
  for (const TaggedHostname& th : tagged) {
    const std::string_view full = th.ref.hostname->full;
    matcher.match_all(full, scratch_, matches);
    // One merged walk over candidates and the ascending hit list: matched
    // candidates decode their captures, the rest score as no-extraction.
    std::size_t hit = 0, exh = 0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      std::optional<Extraction> ex;
      if (hit < matches.size() && matches.indices[hit] == i) {
        ex = decode_extraction(candidates[i], 0, full, matches.captures(hit));
        ++hit;
      }
      HostnameEval ev = evaluate_extraction(kNoLearned, th, ex, /*details=*/true);
      while (exh < matches.exhausted.size() && matches.exhausted[exh] < i) ++exh;
      ev.budget_exhausted = exh < matches.exhausted.size() && matches.exhausted[exh] == i;
      accumulate(out[i], std::move(ev));
    }
  }
  return out;
}

}  // namespace hoiho::core
