#include "core/eval.h"

#include <algorithm>

#include "regex/matcher.h"
#include "util/strings.h"

namespace hoiho::core {

std::string_view to_string(Outcome o) {
  switch (o) {
    case Outcome::kNone: return "none";
    case Outcome::kTP: return "tp";
    case Outcome::kFP: return "fp";
    case Outcome::kFN: return "fn";
    case Outcome::kUNK: return "unk";
  }
  return "?";
}

Evaluator::Evaluator(const geo::GeoDictionary& dict, const measure::Measurements& meas,
                     double slack_ms, measure::ConsistencyCache* cache)
    : dict_(dict), meas_(meas), slack_ms_(slack_ms), cache_(cache) {}

bool Evaluator::rtt_consistent_for(topo::RouterId r, geo::LocationId id) const {
  const geo::Coordinate& coord = dict_.location(id).coord;
  if (cache_ != nullptr) return cache_->consistent(r, id, coord, slack_ms_);
  return measure::rtt_consistent(meas_.pings, meas_.vps, r, coord, slack_ms_);
}

geo::LocationId Evaluator::choose_location(std::span<const geo::LocationId> ids) const {
  geo::LocationId best = geo::kInvalidLocation;
  for (geo::LocationId id : ids) {
    if (best == geo::kInvalidLocation) {
      best = id;
      continue;
    }
    const geo::Location& a = dict_.location(id);
    const geo::Location& b = dict_.location(best);
    if (a.has_facility != b.has_facility) {
      if (a.has_facility) best = id;
    } else if (a.population != b.population) {
      if (a.population > b.population) best = id;
    }
  }
  return best;
}

HostnameEval Evaluator::evaluate_one(const NamingConvention& nc,
                                     const TaggedHostname& tagged) const {
  HostnameEval ev;
  const dns::Hostname& host = *tagged.ref.hostname;

  // Apply regexes in order; first match interprets the hostname.
  const std::optional<Extraction> ex = extract(nc, host);
  if (!ex) {
    ev.outcome = tagged.has_hint() ? Outcome::kFN : Outcome::kNone;
    return ev;
  }
  ev.regex_index = ex->regex_index;
  ev.code = ex->code;
  ev.cc = ex->cc;
  ev.st = ex->st;
  const geo::HintType dt = dictionary_for(ex->primary);

  // Dictionary lookup: learned per-suffix geohints first, then reference.
  std::vector<geo::LocationId> candidates;
  const auto learned_it = nc.learned.find(LearnedKey{dt, ev.code});
  if (learned_it != nc.learned.end()) {
    candidates.push_back(learned_it->second);
    ev.via_learned = true;
  } else {
    const auto ids = dict_.lookup(dt, ev.code);
    candidates.assign(ids.begin(), ids.end());
  }

  // Narrow by extracted annotations.
  if (!ev.cc.empty()) {
    std::erase_if(candidates,
                  [&](geo::LocationId id) { return !dict_.matches_country(ev.cc, id); });
  }
  if (!ev.st.empty()) {
    std::erase_if(candidates, [&](geo::LocationId id) { return !dict_.matches_state(ev.st, id); });
  }
  if (candidates.empty()) {
    ev.outcome = Outcome::kUNK;
    return ev;
  }

  // RTT consistency.
  std::vector<geo::LocationId> consistent;
  for (geo::LocationId id : candidates) {
    if (rtt_consistent_for(tagged.ref.router, id)) consistent.push_back(id);
  }
  ev.locations = candidates;
  if (consistent.empty()) {
    ev.outcome = Outcome::kFP;
    return ev;
  }

  // Completeness: if the apparent geohint carried state/country annotations,
  // the regex must have extracted them (paper: extracting "lhr" without "uk"
  // from fig. 6a is a FN).
  for (const ApparentHint& hint : tagged.hints) {
    if (hint.code != ev.code || dictionary_for(hint.role) != dt) continue;
    for (const HintAnnotation& ann : hint.annotations) {
      if (ann.role == Role::kCountryCode && ev.cc.empty()) {
        ev.outcome = Outcome::kFN;
        return ev;
      }
      if (ann.role == Role::kStateCode && ev.st.empty()) {
        ev.outcome = Outcome::kFN;
        return ev;
      }
    }
    break;
  }

  ev.outcome = Outcome::kTP;
  ev.locations = consistent;
  ev.best_location = choose_location(consistent);
  return ev;
}

NcEvaluation Evaluator::evaluate(const NamingConvention& nc,
                                 std::span<const TaggedHostname> tagged) const {
  NcEvaluation out;
  out.per_hostname.reserve(tagged.size());
  out.regex_unique_tp.resize(nc.regexes.size());
  for (const TaggedHostname& th : tagged) {
    HostnameEval ev = evaluate_one(nc, th);
    switch (ev.outcome) {
      case Outcome::kTP:
        ++out.counts.tp;
        out.unique_tp_codes.insert(ev.code);
        if (ev.regex_index >= 0)
          out.regex_unique_tp[static_cast<std::size_t>(ev.regex_index)].insert(ev.code);
        break;
      case Outcome::kFP: ++out.counts.fp; break;
      case Outcome::kFN: ++out.counts.fn; break;
      case Outcome::kUNK: ++out.counts.unk; break;
      case Outcome::kNone: ++out.counts.none; break;
    }
    out.per_hostname.push_back(std::move(ev));
  }
  return out;
}

}  // namespace hoiho::core
