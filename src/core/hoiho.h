// The Hoiho-geo driver: runs the five-stage method end-to-end over a
// topology + measurement campaign, producing one result per suffix
// (paper §5, fig. 4).
//
// This is the main entry point of the library:
//
//   hoiho::core::Hoiho hoiho(geo::builtin_dictionary());
//   hoiho::core::HoihoResult result = hoiho.run(topology, measurements);
//
// Each SuffixResult carries the chosen naming convention, its evaluation,
// the geohints learned in stage 4, and the stage-5 classification.
#pragma once

#include <memory>
#include <mutex>

#include "core/apparent.h"
#include "core/eval.h"
#include "core/learn.h"
#include "core/rank.h"
#include "core/regex_gen.h"
#include "core/regex_sets.h"
#include "io/suffix_stream.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hoiho::core {

struct HoihoConfig {
  ApparentConfig apparent;
  GenConfig gen;
  SetConfig sets;
  LearnConfig learn;
  RankConfig rank;

  // Suffixes with fewer tagged hostnames than this are skipped outright
  // (too little signal to learn a convention).
  std::size_t min_tagged_hostnames = 3;

  // Generation is seeded from at most this many tagged hostnames per suffix
  // (deterministic prefix); conventions are still *evaluated* on all.
  std::size_t max_seed_hostnames = 64;

  // At most this many base regexes survive per suffix (ranked by ATP)
  // before merging / class embedding / set building.
  std::size_t max_candidates = 48;

  // Stage 4 is applied to at most this many top-ranked candidate NCs.
  std::size_t learn_top_n = 4;

  // Stage 4 on/off — the paper's own ablation (§6.1: 94.0% vs 82.4%).
  bool enable_learning = true;

  // Worker threads for run(): suffix groups are independent (the method is
  // per-suffix, paper §5) and are processed in parallel. 0 = one worker per
  // hardware thread; 1 = sequential. Output is deterministic regardless:
  // results are collected by group index, identical to the sequential order.
  std::size_t threads = 0;

  // Memoize RTT-consistency verdicts in a per-suffix-run cache shared by
  // stages 2-4 (off reproduces the uncached hot path, for benchmarking).
  bool consistency_cache = true;

  // Precompute the (location, VP) speed-of-light RTT grid once per VP set
  // and share it read-only across suffix runs, instead of each suffix cache
  // memoizing haversines lazily. Same doubles, same verdicts; skipped for
  // dictionaries/VP sets whose product exceeds `max_grid_cells`. Only
  // meaningful with `consistency_cache` on.
  bool expected_rtt_grid = true;

  // Cells (locations x VPs) above which the eager grid build is skipped and
  // suffix caches fall back to lazy per-location memoization — a
  // 10k-location CSV dictionary against 1k VPs would be 10M haversines and
  // 80 MB up front, which the lazy path handles fine. Exposed so the
  // fallback is testable (tests/test_consistency_cache.cc).
  std::size_t max_grid_cells = 4u << 20;

  // Run regexes on the compiled engine (rx::Program / rx::SetMatcher); off
  // falls back to the AST backtracker. Results are byte-identical either
  // way (tests/test_regex_differential.cc); the knob exists for that test
  // and for before/after benchmarking.
  bool compiled_regex = true;

  // Durable streaming runs (DESIGN.md §14). Non-empty: run_stream commits
  // each batch's results to a WAL + manifest under this directory
  // (io/checkpoint.h) and, when the directory already holds a checkpoint
  // whose signature matches this config and the stream, resumes after the
  // last committed batch instead of relearning from suffix 0. The resumed
  // final model is byte-identical to an uninterrupted run's. Ignored by
  // run() (batch mode has no incremental commit points).
  std::string checkpoint_dir;

  // Stall watchdog for the streaming learner's pool (0 = off): while
  // waiting for a batch to finish, workers busy on one task longer than
  // this are counted in `pool_worker_stalled` (one episode per task).
  int worker_stall_ms = 0;

  // Non-empty: run_stream writes the final learned model here when the
  // stream completes, dispatched by extension (".ncb" → binary, else text)
  // — the learner emits the serving format directly, no convert step. A
  // checkpoint-truncated run (commit failure mid-stream) does not write;
  // failures bump `pipeline_model_save_failures`. Ignored by run().
  std::string model_out;

  // Observability (DESIGN.md §11). A non-null registry/tracer receives the
  // pipeline's counters, cache hit rates, and stage spans — pass a shared
  // registry to land learner metrics in the same snapshot as serving or
  // ingestion metrics. Null (the default) means run() carries no
  // instrumentation cost beyond untaken null checks; run_report() supplies
  // private instances when these are null, so callers wanting a report
  // don't have to manage them.
  obs::Registry* registry = nullptr;
  obs::Tracer* tracer = nullptr;
};

// Wall time per pipeline stage of one suffix run; benches aggregate these
// into the per-stage breakdown in BENCH_PIPELINE.json.
struct StageTimes {
  double tag_ms = 0;    // stage 2: apparent-geohint tagging
  double regex_ms = 0;  // stage 3 generation: base + merge + class embedding
  double eval_ms = 0;   // stage 3 scoring: candidate ranking + NC building
  double learn_ms = 0;  // stage 4: geohint learning + re-evaluation

  StageTimes& operator+=(const StageTimes& o) {
    tag_ms += o.tag_ms;
    regex_ms += o.regex_ms;
    eval_ms += o.eval_ms;
    learn_ms += o.learn_ms;
    return *this;
  }
  double total_ms() const { return tag_ms + regex_ms + eval_ms + learn_ms; }
};

// Result for one suffix.
struct SuffixResult {
  std::string suffix;
  std::size_t hostname_count = 0;      // hostnames under this suffix
  std::size_t tagged_count = 0;        // hostnames with an apparent geohint
  std::vector<TaggedHostname> tagged;  // stage-2 output (all hostnames)

  NamingConvention nc;                 // chosen NC (empty if none learned)
  NcEvaluation eval;                   // final evaluation of `nc`
  NcClass cls = NcClass::kPoor;
  std::vector<LearnedHint> learned;    // stage-4 output

  // Content fingerprint of the suffix's inputs (hostnames + RTT rows;
  // core/delta.h). Because the method is per-suffix, an equal fingerprint
  // on a later run means this exact result would be reproduced — the basis
  // for incremental relearning. 0 = unknown (pre-fingerprint checkpoints),
  // treated as always dirty.
  std::uint64_t fingerprint = 0;

  bool has_nc() const { return !nc.empty(); }
  bool usable() const { return has_nc() && is_usable(cls); }
};

struct HoihoResult {
  std::vector<SuffixResult> suffixes;

  // Routers geolocated by usable NCs (distinct router ids).
  std::size_t geolocated_router_count() const;

  // Suffix counts by class.
  std::size_t count(NcClass c) const;
};

// The full account of one run: per-suffix outcomes plus everything the
// observability layer captured while producing them — pipeline counters,
// cache hit rates, set-matching work, and per-stage spans. This is the one
// struct consumers (benches, the daemon's demo path, tests) read instead of
// aggregating SuffixResult stat fields by hand.
struct RunReport {
  HoihoResult result;
  obs::Snapshot metrics;               // registry snapshot taken after the run
  std::vector<obs::SpanRecord> spans;  // stage spans, oldest first
  std::uint64_t dropped_spans = 0;     // ring overflow (0 unless the run is huge)

  // {"metrics": {...}, "spans": [...], "dropped_spans": N} — the metrics
  // half is obs::Snapshot::to_json, so one schema serves every consumer.
  std::string to_json(std::string_view indent = "") const;
};

// Incremental-relearning types (core/delta.h).
struct WorldDelta;
struct PriorRun;
struct DeltaRunReport;

class Hoiho {
 public:
  explicit Hoiho(const geo::GeoDictionary& dict, HoihoConfig config = {})
      : dict_(dict), config_(config) {}

  // Runs the full pipeline over every suffix group in `topo`.
  //
  // Kept as the compact form of run_report() for callers that only want the
  // results: instrumentation still lands in config.registry / config.tracer
  // when those are set, but nothing is snapshotted. Per-suffix stage times
  // and cache counters are reported exclusively through the registry
  // (pipeline_stage_us, consistency_cache_*) — RunReport is the one
  // reporting API.
  HoihoResult run(const topo::Topology& topo, const measure::Measurements& meas) const;

  // run() plus the observability report. Uses config.registry/tracer when
  // set (snapshotting whatever else the shared registry holds), otherwise
  // instruments into private instances scoped to this call.
  RunReport run_report(const topo::Topology& topo, const measure::Measurements& meas) const;

  // Streaming run (DESIGN.md §12): pulls suffix batches from `stream`,
  // learns each batch's suffixes (work-stealing across workers, exactly
  // like run()), frees the batch, and pulls the next — peak memory is one
  // or two batches, never the world. While the workers chew on batch k the
  // main thread renders batch k+1 (double buffering), so generation and
  // learning overlap.
  //
  // Results arrive in stream order, byte-identical for threads=1 and
  // threads=N. To keep memory bounded, the per-hostname payloads
  // (SuffixResult::tagged, eval.per_hostname) are cleared after each batch
  // — they point into batch-owned hostnames — so streamed results carry the
  // learned NC, hints, class, and aggregate counts, but not per-hostname
  // outcomes (HoihoResult::geolocated_router_count() reports 0).
  HoihoResult run_stream(io::SuffixStream& stream) const;

  // run_stream() plus the observability report; also publishes the
  // stream's ingest accounting (ingest_* counters, source="stream").
  RunReport run_stream_report(io::SuffixStream& stream) const;

  // Incremental relearning (DESIGN.md §16): diffs `world` — the changed
  // suffixes rendered as one self-contained batch, plus removals — against
  // the prior run's per-suffix fingerprints, re-runs only the dirty
  // suffixes (same work-stealing pool and cost-descending seeding as
  // run()), and reuses the prior SuffixResult verbatim for untouched ones
  // (their ConsistencyCache/eval work is never repeated; the shared
  // expected-RTT grid is reused across the dirty reruns). The report
  // carries the merged result set — equal to a from-scratch run over the
  // churned world, modulo streaming compaction — and a ModelDelta against
  // prior.generation. Fails (report.error) without running anything when
  // the prior's learner-config or VP-set signature doesn't match; a
  // changed campaign invalidates every suffix, so the caller must fall
  // back to a full run.
  DeltaRunReport run_delta(const WorldDelta& world, const PriorRun& prior) const;

  // Runs the pipeline for one suffix group.
  SuffixResult run_suffix(const topo::SuffixGroup& group,
                          const measure::Measurements& meas) const;

  const HoihoConfig& config() const { return config_; }
  const geo::GeoDictionary& dictionary() const { return dict_; }

 private:
  struct PipelineMetrics;  // registry handles, built once per run (hoiho.cc)

  // Expected-RTT grid memo, keyed by the VP coordinates it was built for
  // (the dictionary half of the key is fixed per Hoiho). Held behind a
  // shared_ptr so Hoiho stays copyable and worker threads can share one
  // build under the mutex.
  struct GridCache {
    std::mutex mu;
    std::vector<geo::Coordinate> vp_coords;
    std::shared_ptr<const measure::ExpectedRttGrid> grid;
  };

  // Returns the grid for `meas` (building it on first use), or null when
  // disabled or over the size cap. The returned pointer keeps it alive.
  std::shared_ptr<const measure::ExpectedRttGrid> expected_rtt_grid(
      const measure::Measurements& meas) const;

  // run() with explicit instrumentation sinks (either may be null).
  HoihoResult run_instrumented(const topo::Topology& topo, const measure::Measurements& meas,
                               obs::Registry* registry, obs::Tracer* tracer) const;

  HoihoResult run_stream_instrumented(io::SuffixStream& stream, obs::Registry* registry,
                                      obs::Tracer* tracer) const;

  SuffixResult run_suffix_instrumented(const topo::SuffixGroup& group,
                                       const measure::Measurements& meas, PipelineMetrics* pm,
                                       obs::Tracer* tracer) const;

  // `stages` receives the per-stage wall time of this run (fed into the
  // pipeline_stage_us counters by run_suffix_instrumented).
  SuffixResult run_suffix_impl(const topo::SuffixGroup& group, const measure::Measurements& meas,
                               measure::ConsistencyCache* cache, PipelineMetrics* pm,
                               obs::Tracer* tracer, StageTimes& stages) const;

  const geo::GeoDictionary& dict_;
  HoihoConfig config_;
  std::shared_ptr<GridCache> grid_cache_ = std::make_shared<GridCache>();
};

}  // namespace hoiho::core
