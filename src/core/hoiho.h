// The Hoiho-geo driver: runs the five-stage method end-to-end over a
// topology + measurement campaign, producing one result per suffix
// (paper §5, fig. 4).
//
// This is the main entry point of the library:
//
//   hoiho::core::Hoiho hoiho(geo::builtin_dictionary());
//   hoiho::core::HoihoResult result = hoiho.run(topology, measurements);
//
// Each SuffixResult carries the chosen naming convention, its evaluation,
// the geohints learned in stage 4, and the stage-5 classification.
#pragma once

#include <memory>
#include <mutex>

#include "core/apparent.h"
#include "core/eval.h"
#include "core/learn.h"
#include "core/rank.h"
#include "core/regex_gen.h"
#include "core/regex_sets.h"

namespace hoiho::core {

struct HoihoConfig {
  ApparentConfig apparent;
  GenConfig gen;
  SetConfig sets;
  LearnConfig learn;
  RankConfig rank;

  // Suffixes with fewer tagged hostnames than this are skipped outright
  // (too little signal to learn a convention).
  std::size_t min_tagged_hostnames = 3;

  // Generation is seeded from at most this many tagged hostnames per suffix
  // (deterministic prefix); conventions are still *evaluated* on all.
  std::size_t max_seed_hostnames = 64;

  // At most this many base regexes survive per suffix (ranked by ATP)
  // before merging / class embedding / set building.
  std::size_t max_candidates = 48;

  // Stage 4 is applied to at most this many top-ranked candidate NCs.
  std::size_t learn_top_n = 4;

  // Stage 4 on/off — the paper's own ablation (§6.1: 94.0% vs 82.4%).
  bool enable_learning = true;

  // Worker threads for run(): suffix groups are independent (the method is
  // per-suffix, paper §5) and are processed in parallel. 0 = one worker per
  // hardware thread; 1 = sequential. Output is deterministic regardless:
  // results are collected by group index, identical to the sequential order.
  std::size_t threads = 0;

  // Memoize RTT-consistency verdicts in a per-suffix-run cache shared by
  // stages 2-4 (off reproduces the uncached hot path, for benchmarking).
  bool consistency_cache = true;

  // Precompute the (location, VP) speed-of-light RTT grid once per VP set
  // and share it read-only across suffix runs, instead of each suffix cache
  // memoizing haversines lazily. Same doubles, same verdicts; skipped for
  // dictionaries/VP sets whose product exceeds an internal size cap. Only
  // meaningful with `consistency_cache` on.
  bool expected_rtt_grid = true;

  // Run regexes on the compiled engine (rx::Program / rx::SetMatcher); off
  // falls back to the AST backtracker. Results are byte-identical either
  // way (tests/test_regex_differential.cc); the knob exists for that test
  // and for before/after benchmarking.
  bool compiled_regex = true;
};

// Wall time per pipeline stage of one suffix run; benches aggregate these
// into the per-stage breakdown in BENCH_PIPELINE.json.
struct StageTimes {
  double tag_ms = 0;    // stage 2: apparent-geohint tagging
  double regex_ms = 0;  // stage 3 generation: base + merge + class embedding
  double eval_ms = 0;   // stage 3 scoring: candidate ranking + NC building
  double learn_ms = 0;  // stage 4: geohint learning + re-evaluation

  StageTimes& operator+=(const StageTimes& o) {
    tag_ms += o.tag_ms;
    regex_ms += o.regex_ms;
    eval_ms += o.eval_ms;
    learn_ms += o.learn_ms;
    return *this;
  }
  double total_ms() const { return tag_ms + regex_ms + eval_ms + learn_ms; }
};

// Result for one suffix.
struct SuffixResult {
  std::string suffix;
  std::size_t hostname_count = 0;      // hostnames under this suffix
  std::size_t tagged_count = 0;        // hostnames with an apparent geohint
  std::vector<TaggedHostname> tagged;  // stage-2 output (all hostnames)

  NamingConvention nc;                 // chosen NC (empty if none learned)
  NcEvaluation eval;                   // final evaluation of `nc`
  NcClass cls = NcClass::kPoor;
  std::vector<LearnedHint> learned;    // stage-4 output

  // Consistency-cache counters for this suffix run (all zero when the
  // cache is disabled); benches aggregate these into pipeline hit rates.
  measure::ConsistencyCache::Stats cache_stats;

  // Per-stage wall time of this suffix run.
  StageTimes stage_ms;

  bool has_nc() const { return !nc.empty(); }
  bool usable() const { return has_nc() && is_usable(cls); }
};

struct HoihoResult {
  std::vector<SuffixResult> suffixes;

  // Routers geolocated by usable NCs (distinct router ids).
  std::size_t geolocated_router_count() const;

  // Suffix counts by class.
  std::size_t count(NcClass c) const;
};

class Hoiho {
 public:
  explicit Hoiho(const geo::GeoDictionary& dict, HoihoConfig config = {})
      : dict_(dict), config_(config) {}

  // Runs the full pipeline over every suffix group in `topo`.
  HoihoResult run(const topo::Topology& topo, const measure::Measurements& meas) const;

  // Runs the pipeline for one suffix group.
  SuffixResult run_suffix(const topo::SuffixGroup& group,
                          const measure::Measurements& meas) const;

  const HoihoConfig& config() const { return config_; }
  const geo::GeoDictionary& dictionary() const { return dict_; }

 private:
  // Expected-RTT grid memo, keyed by the VP coordinates it was built for
  // (the dictionary half of the key is fixed per Hoiho). Held behind a
  // shared_ptr so Hoiho stays copyable and worker threads can share one
  // build under the mutex.
  struct GridCache {
    std::mutex mu;
    std::vector<geo::Coordinate> vp_coords;
    std::shared_ptr<const measure::ExpectedRttGrid> grid;
  };

  // Returns the grid for `meas` (building it on first use), or null when
  // disabled or over the size cap. The returned pointer keeps it alive.
  std::shared_ptr<const measure::ExpectedRttGrid> expected_rtt_grid(
      const measure::Measurements& meas) const;

  SuffixResult run_suffix_impl(const topo::SuffixGroup& group, const measure::Measurements& meas,
                               measure::ConsistencyCache* cache) const;

  const geo::GeoDictionary& dict_;
  HoihoConfig config_;
  std::shared_ptr<GridCache> grid_cache_ = std::make_shared<GridCache>();
};

}  // namespace hoiho::core
