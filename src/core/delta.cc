#include "core/delta.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <sstream>

#include "io/load_report.h"
#include "util/csv.h"
#include "util/strings.h"

namespace hoiho::core {

namespace {

// Order-dependent FNV-1a over the 8 bytes of v — the same byte-wise mixing
// StreamSignature uses, so every fingerprint in the system shares one
// construction.
std::uint64_t mix_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ULL;  // FNV-1a 64 prime
  }
  return h;
}

std::uint64_t mix_double(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return mix_u64(h, bits);
}

std::uint64_t never_zero(std::uint64_t h) { return h == 0 ? 1 : h; }

}  // namespace

std::uint64_t suffix_fingerprint(const topo::SuffixGroup& group,
                                 const measure::Measurements& meas) {
  std::uint64_t h = fnv1a_hash(group.suffix);
  h = fnv1a_hash("\n", h);

  // Hostnames in group order, and the suffix's routers in first-appearance
  // order. Router ids are deliberately NOT mixed: they are local to the
  // owning batch/topology, so the same suffix rendered standalone (a
  // WorldDelta) must fingerprint equal to the same suffix rendered inside a
  // full-world batch. Only content — names and RTT rows — participates.
  std::vector<topo::RouterId> routers;
  routers.reserve(group.hostnames.size());
  for (const topo::HostnameRef& ref : group.hostnames) {
    if (ref.hostname != nullptr) {
      h = fnv1a_hash(ref.hostname->full, h);
      h = fnv1a_hash("\n", h);
    }
    if (std::find(routers.begin(), routers.end(), ref.router) == routers.end())
      routers.push_back(ref.router);
  }

  const std::size_t vps = meas.pings.vp_count();
  h = mix_u64(h, vps);
  for (const topo::RouterId r : routers) {
    if (r >= meas.pings.router_count()) {
      h = mix_u64(h, 0xdeadULL);  // unmeasured router: distinct from all-miss rows
      continue;
    }
    for (measure::VpId v = 0; v < vps; ++v) {
      if (const auto rtt = meas.pings.rtt(r, v)) {
        h = mix_u64(h, 1);
        h = mix_double(h, *rtt);
      } else {
        h = mix_u64(h, 0);
      }
    }
  }
  return never_zero(h);
}

std::uint64_t vp_set_hash(const std::vector<measure::VantagePoint>& vps) {
  std::uint64_t h = kFnvSeed;
  for (const measure::VantagePoint& vp : vps) {
    h = fnv1a_hash(vp.name, h);
    h = fnv1a_hash("\n", h);
    h = fnv1a_hash(vp.country, h);
    h = fnv1a_hash("\n", h);
    h = mix_double(h, vp.coord.lat);
    h = mix_double(h, vp.coord.lon);
  }
  return never_zero(h);
}

std::uint64_t learn_signature(const HoihoConfig& c, std::size_t dict_size) {
  io::StreamSignature sig;
  sig.mix(std::uint64_t{2})  // signature format version
      .mix(c.apparent.slack_ms)
      .mix(std::uint64_t{c.apparent.consider_icao})
      .mix(std::uint64_t{c.apparent.consider_facility})
      .mix(std::uint64_t{c.apparent.min_city_len})
      .mix(std::uint64_t{c.gen.annotation_free_variants})
      .mix(std::uint64_t{c.sets.min_unique_per_regex})
      .mix(c.sets.ppv_tolerance)
      .mix(std::uint64_t{c.sets.max_singles})
      .mix(std::uint64_t{c.sets.max_passes})
      .mix(std::uint64_t{c.learn.min_unique_seed})
      .mix(c.learn.seed_ppv)
      .mix(c.learn.accept_ppv)
      .mix(std::uint64_t{c.learn.tp_improvement})
      .mix(std::uint64_t{c.learn.congruent_plain})
      .mix(std::uint64_t{c.learn.congruent_annotated})
      .mix(std::uint64_t{c.rank.min_unique})
      .mix(c.rank.good_ppv)
      .mix(c.rank.promising_ppv)
      .mix(std::uint64_t{c.rank.tp_margin})
      .mix(std::uint64_t{c.min_tagged_hostnames})
      .mix(std::uint64_t{c.max_seed_hostnames})
      .mix(std::uint64_t{c.max_candidates})
      .mix(std::uint64_t{c.learn_top_n})
      .mix(std::uint64_t{c.enable_learning})
      .mix(std::uint64_t{dict_size});
  return sig.value();
}

void sort_conventions(std::vector<StoredConvention>& conventions) {
  std::stable_sort(conventions.begin(), conventions.end(),
                   [](const StoredConvention& a, const StoredConvention& b) {
                     return a.nc.suffix < b.nc.suffix;
                   });
}

PriorRun PriorRun::capture(HoihoResult result, const HoihoConfig& config,
                           std::size_t dict_size,
                           const std::vector<measure::VantagePoint>& vps,
                           std::uint64_t generation) {
  PriorRun prior;
  prior.learn_sig = learn_signature(config, dict_size);
  prior.vp_hash = vp_set_hash(vps);
  prior.generation = generation;
  prior.results = std::move(result.suffixes);
  prior.reindex();
  return prior;
}

const SuffixResult* PriorRun::find(std::string_view suffix) const {
  const auto it = index_.find(suffix);
  return it == index_.end() ? nullptr : &results[it->second];
}

void PriorRun::reindex() {
  index_.clear();
  index_.reserve(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) index_[results[i].suffix] = i;
}

bool is_model_delta(std::string_view head) {
  return head.substr(0, kModelDeltaMagic.size()) == kModelDeltaMagic;
}

std::string serialize_model_delta(const ModelDelta& delta, const geo::GeoDictionary& dict) {
  std::ostringstream out;
  out << kModelDeltaMagic << "\n";
  util::write_csv_row(out, {"D", std::to_string(delta.base_generation),
                            std::to_string(delta.upserts.size()),
                            std::to_string(delta.removes.size())});
  for (const std::string& s : delta.removes) util::write_csv_row(out, {"-", s});
  for (const StoredConvention& sc : delta.upserts) save_convention_block(out, sc, dict);
  std::string data = out.str();
  data += checksum_footer_line(fnv1a_hash(data));
  data += '\n';
  return data;
}

bool save_model_delta_to_file(const std::string& path, const ModelDelta& delta,
                              const geo::GeoDictionary& dict, std::string* error) {
  return write_model_file_atomic(path, serialize_model_delta(delta, dict), error);
}

namespace {

std::optional<std::uint64_t> parse_u64_field(const std::string& s) {
  if (s.empty() || s.size() > 20) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

}  // namespace

std::optional<ModelDelta> load_model_delta(std::istream& in, const geo::GeoDictionary& dict,
                                           std::string* error,
                                           std::vector<std::string>* warnings,
                                           const LoadLimits& limits, io::LoadReport* report) {
  auto fail = [&](const std::string& msg) -> std::optional<ModelDelta> {
    if (error != nullptr) *error = msg;
    if (report != nullptr) report->fail(msg);
    return std::nullopt;
  };
  ModelDelta out;
  ConventionReader reader(dict, limits, warnings);
  std::string line;
  std::size_t lineno = 0;
  std::uint64_t hash = kFnvSeed;
  bool saw_magic = false, saw_header = false, footer_seen = false;
  std::uint64_t want_upserts = 0, want_removes = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (report != nullptr) ++report->lines;
    const std::string where = "line " + std::to_string(lineno);
    if (line.size() > limits.max_line)
      return fail(where + ": line exceeds " + std::to_string(limits.max_line) + " bytes");
    if (const auto stored = parse_checksum_footer(line)) {
      if (footer_seen) return fail(where + ": duplicate checksum footer");
      if (*stored != hash)
        return fail(where + ": checksum mismatch (file corrupt or torn write)");
      footer_seen = true;
      continue;
    }
    if (footer_seen) {
      if (report != nullptr) {
        io::LoadOptions count_only;
        count_only.lenient = true;
        report->skip(count_only, "trailing_garbage", lineno, "bytes after checksum footer");
      }
      return fail(where + ": bytes after checksum footer");
    }
    hash = fnv1a_hash(line, hash);
    hash = fnv1a_hash("\n", hash);
    if (!saw_magic) {
      if (line != kModelDeltaMagic)
        return fail(where + ": not a model delta (missing magic line)");
      saw_magic = true;
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    const util::CsvRow row = util::parse_csv_line(line);
    if (row.empty() || (row.size() == 1 && row[0].empty())) continue;
    for (const std::string& field : row)
      if (has_control_bytes(field)) return fail(where + ": control bytes in field");
    if (row[0] == "D") {
      if (saw_header) return fail(where + ": duplicate D header");
      if (row.size() != 4)
        return fail(where + ": D record needs 4 fields, got " + std::to_string(row.size()));
      const auto gen = parse_u64_field(row[1]);
      const auto ups = parse_u64_field(row[2]);
      const auto rms = parse_u64_field(row[3]);
      if (!gen || !ups || !rms) return fail(where + ": bad D header field");
      out.base_generation = *gen;
      want_upserts = *ups;
      want_removes = *rms;
      saw_header = true;
      continue;
    }
    if (!saw_header) return fail(where + ": record before D header");
    if (row[0] == "-") {
      if (row.size() != 2)
        return fail(where + ": remove record needs 2 fields, got " +
                    std::to_string(row.size()));
      if (row[1].size() > limits.max_suffix || !plausible_suffix(row[1]))
        return fail(where + ": bad suffix '" + row[1] + "'");
      out.removes.push_back(row[1]);
      continue;
    }
    std::string msg;
    if (!reader.feed(row, where, &msg)) return fail(where + ": " + msg);
  }
  if (in.bad()) return fail("read error after line " + std::to_string(lineno));
  if (!saw_magic) return fail("empty input (missing delta magic line)");
  if (!saw_header) return fail("missing D header");
  // Unlike model files, a delta without its footer is rejected outright: a
  // torn delta must never publish.
  if (!footer_seen) return fail("missing checksum footer (torn delta?)");
  out.upserts = reader.take();
  if (out.upserts.size() != want_upserts || out.removes.size() != want_removes)
    return fail("record counts disagree with D header (" +
                std::to_string(out.upserts.size()) + " upserts vs " +
                std::to_string(want_upserts) + ", " + std::to_string(out.removes.size()) +
                " removes vs " + std::to_string(want_removes) + ")");
  for (const std::string& s : out.removes)
    for (const StoredConvention& sc : out.upserts)
      if (sc.nc.suffix == s)
        return fail("suffix '" + s + "' both removed and upserted");
  if (report != nullptr) report->records = out.upserts.size() + out.removes.size();
  return out;
}

}  // namespace hoiho::core
