// Stage 4: learn operator geohints that deviate from the reference
// dictionary (paper §5.4, fig. 8).
//
// Starting from a naming convention that credibly extracts geohints (at
// least `min_unique_seed` unique RTT-consistent hints, PPV > `seed_ppv`),
// the learner examines the FP extractions (dictionary hits that are not
// RTT-consistent — "ash" used for Ashburn) and UNK extractions (strings not
// in the dictionary — NTT's home-made CLLI "mlanit"). For each such code it
// finds place names the code could abbreviate, scores candidate locations by
// how many of the code's routers are RTT-consistent with them, ranks by
// facility presence, then population, then TPs, and accepts the winner when
// its PPV is at least `accept_ppv`, it beats the existing dictionary meaning
// by more than `tp_improvement` TPs, and enough congruent routers support it
// (three without a corroborating state/country extraction, one with).
#pragma once

#include <span>

#include "core/eval.h"

namespace hoiho::core {

struct LearnConfig {
  std::size_t min_unique_seed = 3;
  double seed_ppv = 0.40;
  double accept_ppv = 0.80;
  std::size_t tp_improvement = 1;  // must beat existing by MORE than this
  std::size_t congruent_plain = 3;
  std::size_t congruent_annotated = 1;
};

// One learned per-suffix geohint, with its supporting evidence.
struct LearnedHint {
  geo::HintType type = geo::HintType::kIata;
  std::string code;
  geo::LocationId location = geo::kInvalidLocation;
  std::size_t tp = 0, fp = 0;        // routers consistent / inconsistent
  std::size_t existing_tp = 0;       // support for the dictionary meaning
};

class GeohintLearner {
 public:
  GeohintLearner(const Evaluator& evaluator, LearnConfig config = {})
      : eval_(evaluator), config_(config) {}

  // Learns geohints for `nc` given its evaluation; inserts accepted hints
  // into nc.learned and returns them. The caller re-evaluates afterwards.
  std::vector<LearnedHint> learn(NamingConvention& nc, std::span<const TaggedHostname> tagged,
                                 const NcEvaluation& evaluation) const;

  const LearnConfig& config() const { return config_; }

 private:
  const Evaluator& eval_;
  LearnConfig config_;
};

}  // namespace hoiho::core
