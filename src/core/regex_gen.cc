#include "core/regex_gen.h"

#include <algorithm>
#include <unordered_set>

#include "regex/matcher.h"
#include "regex/program.h"
#include "util/strings.h"

namespace hoiho::core {

namespace {

using rx::CharClass;
using rx::Quant;
using rx::RegexBuilder;

// A capture to be emitted at a specific position of the hostname.
struct CaptureSpec {
  std::size_t begin = 0, end = 0;
  Role role = Role::kIata;
};

// Emits the group nodes for one capture spec.
void emit_capture(RegexBuilder& b, std::string_view full, const CaptureSpec& spec) {
  b.begin_group();
  const std::size_t len = spec.end - spec.begin;
  switch (spec.role) {
    case Role::kCityName:
      b.cls(CharClass::alpha(), Quant::plus());
      break;
    case Role::kFacility: {
      // Render the captured range at kind granularity (it may mix digits,
      // letters and punctuation: "529bryant", "111-8th-ave").
      const std::string_view text = full.substr(spec.begin, len);
      for (const util::Token& run : util::kind_runs(text)) {
        switch (util::char_kind(run.text[0])) {
          case util::CharKind::kAlpha: b.cls(CharClass::alpha(), Quant::plus()); break;
          case util::CharKind::kDigit: b.cls(CharClass::digit(), Quant::plus()); break;
          case util::CharKind::kPunct: b.lit(run.text); break;
        }
      }
      break;
    }
    default:
      // Fixed-width codes: IATA {3}, ICAO {4}, LOCODE {5}, CLLI {6},
      // CLLI4 {4}, CLLI2 {2}, country/state {2}.
      b.cls(CharClass::alpha(), Quant::exactly(static_cast<int>(len)));
      break;
  }
  b.end_group();
}

// Renders label [lbegin, lend) of `full` at character-kind granularity,
// emitting capture groups where specs fall. Appends the roles of emitted
// captures to `roles`.
void render_label_fine(RegexBuilder& b, std::string_view full, std::size_t lbegin,
                       std::size_t lend, std::span<const CaptureSpec> specs,
                       std::vector<Role>& roles) {
  std::size_t pos = lbegin;
  while (pos < lend) {
    // Is there a capture starting at or after pos within this label?
    const CaptureSpec* next_cap = nullptr;
    for (const CaptureSpec& s : specs) {
      if (s.begin >= pos && s.begin < lend && (next_cap == nullptr || s.begin < next_cap->begin))
        next_cap = &s;
    }
    const std::size_t stop = next_cap != nullptr ? next_cap->begin : lend;
    // Render non-captured runs in [pos, stop).
    std::string_view gap = full.substr(pos, stop - pos);
    for (const util::Token& run : util::kind_runs(gap)) {
      const bool truncated_by_cap = next_cap != nullptr && pos + run.end == stop &&
                                    util::char_kind(run.text[0]) ==
                                        util::char_kind(full[stop]);
      switch (util::char_kind(run.text[0])) {
        case util::CharKind::kAlpha:
          // An alpha run truncated by a following capture of the same kind
          // cannot be rendered [a-z]+ (it would steal the capture's
          // characters) — render it with an exact width.
          b.cls(CharClass::alpha(), truncated_by_cap
                                        ? Quant::exactly(static_cast<int>(run.size()))
                                        : Quant::plus());
          break;
        case util::CharKind::kDigit:
          b.cls(CharClass::digit(), truncated_by_cap
                                        ? Quant::exactly(static_cast<int>(run.size()))
                                        : Quant::plus());
          break;
        case util::CharKind::kPunct:
          b.lit(run.text);
          break;
      }
    }
    if (next_cap == nullptr) break;
    emit_capture(b, full, *next_cap);
    roles.push_back(next_cap->role);
    pos = next_cap->end;
    // Alpha residue directly after a capture (CLLI prefix of a longer code,
    // paper fig. 6d): consume the rest of the run possessively so the
    // regex stays unambiguous.
    if (pos < lend && util::char_kind(full[pos]) == util::CharKind::kAlpha &&
        util::char_kind(full[pos - 1]) == util::CharKind::kAlpha) {
      std::size_t run_end = pos;
      while (run_end < lend && util::char_kind(full[run_end]) == util::CharKind::kAlpha)
        ++run_end;
      b.cls(CharClass::alpha(), Quant::plus(/*possessive=*/true));
      pos = run_end;
    }
  }
}

}  // namespace

std::vector<GeoRegex> RegexGenerator::generate_for_hint(const dns::Hostname& host,
                                                        const ApparentHint& hint) const {
  std::vector<GeoRegex> out;
  const std::string_view full = host.full;
  const std::string_view prefix = host.prefix();
  if (prefix.empty()) return out;
  const std::vector<util::Token> labels = util::split_tokens(prefix, '.');
  if (labels.empty()) return out;

  // Build the capture-spec variants: with and without annotations.
  std::vector<std::vector<CaptureSpec>> spec_sets;
  {
    std::vector<CaptureSpec> base;
    if (hint.split_clli) {
      base.push_back(CaptureSpec{hint.begin, hint.begin + 4, Role::kClli4});
      base.push_back(CaptureSpec{hint.end - 2, hint.end, Role::kClli2});
    } else {
      base.push_back(CaptureSpec{hint.begin, hint.end, hint.role});
    }
    if (!hint.annotations.empty()) {
      std::vector<CaptureSpec> with_ann = base;
      for (const HintAnnotation& a : hint.annotations)
        with_ann.push_back(CaptureSpec{a.begin, a.end, a.role});
      std::sort(with_ann.begin(), with_ann.end(),
                [](const CaptureSpec& x, const CaptureSpec& y) { return x.begin < y.begin; });
      spec_sets.push_back(std::move(with_ann));
    }
    if (hint.annotations.empty() || config_.annotation_free_variants)
      spec_sets.push_back(std::move(base));
  }

  for (const std::vector<CaptureSpec>& specs : spec_sets) {
    // Index of the first label containing a capture.
    std::size_t first_cap_label = labels.size();
    for (std::size_t i = 0; i < labels.size(); ++i) {
      for (const CaptureSpec& s : specs) {
        if (s.begin >= labels[i].begin && s.begin < labels[i].end) {
          first_cap_label = std::min(first_cap_label, i);
        }
      }
    }
    if (first_cap_label == labels.size()) continue;

    for (const bool fold_leading : {true, false}) {
      if (fold_leading && first_cap_label == 0) continue;  // identical to unfolded
      RegexBuilder b;
      std::vector<Role> roles;
      std::size_t start_label = 0;
      if (fold_leading) {
        b.any_plus();
        b.lit(".");
        start_label = first_cap_label;
      }
      for (std::size_t i = start_label; i < labels.size(); ++i) {
        if (i > start_label) b.lit(".");
        const util::Token& label = labels[i];
        bool has_cap = false;
        for (const CaptureSpec& s : specs)
          if (s.begin >= label.begin && s.begin < label.end) has_cap = true;
        if (has_cap) {
          render_label_fine(b, full, label.begin, label.end, specs, roles);
        } else {
          b.cls(CharClass::not_chars("."), Quant::plus());
        }
      }
      b.lit(".");
      b.lit(host.suffix());
      GeoRegex gr;
      gr.regex = std::move(b).build();
      gr.plan.roles = roles;
      out.push_back(std::move(gr));
    }
  }
  return out;
}

void dedup_regexes(std::vector<GeoRegex>& regexes) {
  std::unordered_set<std::string> seen;
  std::vector<GeoRegex> unique;
  unique.reserve(regexes.size());
  for (GeoRegex& gr : regexes) {
    std::string key = gr.regex.to_string() + "|" + gr.plan.to_string();
    if (seen.insert(std::move(key)).second) unique.push_back(std::move(gr));
  }
  regexes = std::move(unique);
}

std::vector<GeoRegex> RegexGenerator::generate_base(
    std::span<const TaggedHostname> tagged) const {
  std::vector<GeoRegex> out;
  for (const TaggedHostname& th : tagged) {
    for (const ApparentHint& hint : th.hints) {
      std::vector<GeoRegex> gen = generate_for_hint(*th.ref.hostname, hint);
      for (GeoRegex& gr : gen) out.push_back(std::move(gr));
    }
  }
  dedup_regexes(out);
  return out;
}

namespace {

// True if node `i` of `r` lies inside any capture group.
bool in_group(const rx::Regex& r, std::size_t i) {
  for (const rx::Group& g : r.groups)
    if (i >= g.first && i <= g.last) return true;
  return false;
}

bool is_digit_plus(const rx::Node& n) {
  return n.kind == rx::Node::Kind::kClass && n.cls == CharClass::digit() &&
         n.quant == Quant::plus();
}

}  // namespace

std::vector<GeoRegex> RegexGenerator::merge(std::span<const GeoRegex> regexes) const {
  std::vector<GeoRegex> out;
  for (std::size_t i = 0; i < regexes.size(); ++i) {
    for (std::size_t j = 0; j < regexes.size(); ++j) {
      if (i == j) continue;
      const GeoRegex& big = regexes[i];
      const GeoRegex& small = regexes[j];
      if (!(big.plan == small.plan)) continue;
      if (big.regex.nodes.size() != small.regex.nodes.size() + 1) continue;
      // Find the lone \d+ node of `big` (outside groups) whose removal
      // yields `small`.
      for (std::size_t k = 0; k < big.regex.nodes.size(); ++k) {
        if (!is_digit_plus(big.regex.nodes[k]) || in_group(big.regex, k)) continue;
        // Compare node lists with k removed.
        bool equal = true;
        for (std::size_t m = 0; m + 1 < big.regex.nodes.size() && equal; ++m) {
          const std::size_t bm = m < k ? m : m + 1;
          if (!(big.regex.nodes[bm] == small.regex.nodes[m])) equal = false;
        }
        if (!equal) continue;
        // Compare groups after shifting indexes above k down by one.
        if (big.regex.groups.size() != small.regex.groups.size()) continue;
        bool groups_equal = true;
        for (std::size_t g = 0; g < big.regex.groups.size(); ++g) {
          rx::Group shifted = big.regex.groups[g];
          if (shifted.first > k) --shifted.first;
          if (shifted.last > k) --shifted.last;
          if (!(shifted == small.regex.groups[g])) groups_equal = false;
        }
        if (!groups_equal) continue;
        GeoRegex merged = big;
        merged.regex.nodes[k].quant = Quant::star();
        out.push_back(std::move(merged));
        break;
      }
    }
  }
  dedup_regexes(out);
  return out;
}

std::optional<GeoRegex> RegexGenerator::embed_classes(
    const GeoRegex& gr, std::span<const TaggedHostname> tagged) const {
  const std::size_t n_nodes = gr.regex.nodes.size();
  // Views, not copies: the spans point into hostname storage (the batch
  // arena), which outlives this call — no per-(node, hostname) allocation.
  std::vector<std::vector<std::string_view>> texts(n_nodes);
  std::size_t matched = 0;
  if (config_.compiled_matcher) {
    // Compile once, then one prefiltered run per hostname; the successful
    // path in the scratch is exactly the per-node span list.
    const rx::Program program = rx::Program::compile(gr.regex);
    rx::MatchScratch scratch;
    for (const TaggedHostname& th : tagged) {
      const std::string_view full = th.ref.hostname->full;
      if (!program.match(full, scratch)) continue;
      ++matched;
      for (std::size_t i = 0; i < n_nodes; ++i)
        texts[i].emplace_back(program.node_span(scratch, i).view(full));
    }
  } else {
    std::vector<rx::Capture> spans;
    for (const TaggedHostname& th : tagged) {
      if (!rx::match_with_spans(gr.regex, th.ref.hostname->full, spans)) continue;
      ++matched;
      for (std::size_t i = 0; i < n_nodes; ++i)
        texts[i].emplace_back(spans[i].view(th.ref.hostname->full));
    }
  }
  if (matched < 2) return std::nullopt;

  rx::Regex refined;
  refined.nodes.reserve(n_nodes + 4);
  std::vector<std::size_t> new_index(n_nodes + 1, 0);
  bool changed = false;
  for (std::size_t i = 0; i < n_nodes; ++i) {
    new_index[i] = refined.nodes.size();
    const rx::Node& node = gr.regex.nodes[i];
    const bool coarse = node.kind == rx::Node::Kind::kClass && node.cls.repr.size() >= 2 &&
                        node.cls.repr[0] == '[' && node.cls.repr[1] == '^';
    if (!coarse || in_group(gr.regex, i)) {
      refined.nodes.push_back(node);
      continue;
    }
    // Compute the common character-kind sequence of everything this node
    // matched; bail to the coarse node if not uniform.
    std::vector<std::vector<util::Token>> runs;
    runs.reserve(texts[i].size());
    bool uniform = true;
    for (const std::string_view t : texts[i]) {
      runs.push_back(util::kind_runs(t));
      if (runs.back().empty()) uniform = false;
    }
    const std::size_t n_runs = uniform ? runs[0].size() : 0;
    for (const auto& r : runs)
      if (r.size() != n_runs) uniform = false;
    if (uniform) {
      for (std::size_t p = 0; p < n_runs && uniform; ++p) {
        const util::CharKind kind = util::char_kind(runs[0][p].text[0]);
        for (const auto& r : runs)
          if (util::char_kind(r[p].text[0]) != kind) uniform = false;
        if (uniform && kind == util::CharKind::kPunct) {
          for (const auto& r : runs)
            if (r[p].text != runs[0][p].text) uniform = false;
        }
      }
    }
    if (!uniform) {
      refined.nodes.push_back(node);
      continue;
    }
    // Emit the refined sequence.
    const bool single_run = n_runs == 1;
    for (std::size_t p = 0; p < n_runs; ++p) {
      const util::CharKind kind = util::char_kind(runs[0][p].text[0]);
      if (kind == util::CharKind::kPunct) {
        refined.nodes.push_back(rx::Node::lit(runs[0][p].text));
        continue;
      }
      bool same_len = true;
      const std::size_t len0 = runs[0][p].size();
      for (const auto& r : runs)
        if (r[p].size() != len0) same_len = false;
      Quant q = same_len ? Quant::exactly(static_cast<int>(len0)) : Quant::plus();
      if (single_run && node.quant.possessive && !same_len) q.possessive = true;
      refined.nodes.push_back(rx::Node::cls_node(
          kind == util::CharKind::kAlpha ? CharClass::alpha() : CharClass::digit(), q));
    }
    changed = true;
  }
  new_index[n_nodes] = refined.nodes.size();
  if (!changed) return std::nullopt;
  for (const rx::Group& g : gr.regex.groups)
    refined.groups.push_back(rx::Group{new_index[g.first], new_index[g.last + 1] - 1});
  GeoRegex out;
  out.regex = std::move(refined);
  out.plan = gr.plan;
  return out;
}

}  // namespace hoiho::core
