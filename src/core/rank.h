// Stage 5: select the best naming convention per suffix and classify it
// (paper §5.5).
//
// NCs are ranked by ATP. The top NC wins unless a lower-ranked NC uses fewer
// regexes while matching nearly as well (no more than `tp_margin` TPs
// fewer). The chosen NC is classified:
//   good       >= min_unique unique hints and PPV >= good_ppv  (90%)
//   promising  >= min_unique unique hints and PPV >= promising_ppv (80%)
//   poor       otherwise
// Good and promising NCs are "usable".
#pragma once

#include <span>

#include "core/regex_sets.h"

namespace hoiho::core {

struct RankConfig {
  std::size_t min_unique = 3;
  double good_ppv = 0.90;
  double promising_ppv = 0.80;
  std::size_t tp_margin = 3;
};

NcClass classify(const NcEvaluation& evaluation, const RankConfig& config = {});

inline bool is_usable(NcClass c) { return c != NcClass::kPoor; }

// Picks the winning candidate (see header comment); nullptr if `candidates`
// is empty. The pointer refers into `candidates`.
const NcBuilder::Candidate* select_best(std::span<const NcBuilder::Candidate> candidates,
                                        const RankConfig& config = {});

}  // namespace hoiho::core
