#include "core/nc_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "geo/dictionary.h"
#include "io/load_report.h"
#include "regex/parser.h"
#include "util/csv.h"
#include "util/failpoint.h"
#include "util/strings.h"

namespace hoiho::core {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
constexpr std::string_view kChecksumPrefix = "# checksum,fnv1a,";

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

std::optional<Role> role_from_token(std::string_view s) {
  for (const Role r : {Role::kIata, Role::kIcao, Role::kLocode, Role::kClli, Role::kClli4,
                       Role::kClli2, Role::kCityName, Role::kFacility, Role::kCountryCode,
                       Role::kStateCode}) {
    if (s == to_string(r)) return r;
  }
  return std::nullopt;
}

}  // namespace

std::optional<geo::HintType> hint_type_from_token(std::string_view s) {
  for (const geo::HintType t :
       {geo::HintType::kIata, geo::HintType::kIcao, geo::HintType::kLocode,
        geo::HintType::kClli, geo::HintType::kCityName, geo::HintType::kFacility}) {
    if (s == to_string(t)) return t;
  }
  return std::nullopt;
}

std::optional<NcClass> nc_class_from_token(std::string_view s) {
  for (const NcClass c : {NcClass::kGood, NcClass::kPromising, NcClass::kPoor})
    if (s == to_string(c)) return c;
  return std::nullopt;
}

std::uint64_t fnv1a_hash(std::string_view bytes, std::uint64_t h) {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::string checksum_footer_line(std::uint64_t hash) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "# checksum,fnv1a,%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

std::optional<std::uint64_t> parse_checksum_footer(std::string_view line) {
  if (!util::starts_with(line, kChecksumPrefix)) return std::nullopt;
  const std::string_view hex = line.substr(kChecksumPrefix.size());
  if (hex.size() != 16) return std::nullopt;
  std::uint64_t stored = 0;
  for (const char c : hex) {
    const int v = hex_digit(c);
    if (v < 0) return std::nullopt;
    stored = stored * 16 + static_cast<std::uint64_t>(v);
  }
  return stored;
}

geo::LocationId resolve_stored_place(const geo::GeoDictionary& dict, std::string_view city,
                                     std::string_view state, std::string_view country) {
  for (geo::LocationId id :
       dict.lookup(geo::HintType::kCityName, geo::squash_place_name(city))) {
    const geo::Location& loc = dict.location(id);
    if (!geo::same_country(loc.country, country)) continue;
    if (!state.empty() && loc.state != util::to_lower(state)) continue;
    return id;
  }
  return geo::kInvalidLocation;
}

std::string plan_to_token(const Plan& plan) {
  std::string out;
  for (std::size_t i = 0; i < plan.roles.size(); ++i) {
    if (i) out += "+";
    out += std::string(to_string(plan.roles[i]));
  }
  return out;
}

std::optional<Plan> plan_from_token(std::string_view token) {
  Plan plan;
  for (const std::string_view part : util::split(token, "+")) {
    const auto role = role_from_token(part);
    if (!role) return std::nullopt;
    plan.roles.push_back(*role);
  }
  if (plan.roles.empty()) return std::nullopt;
  return plan;
}

void save_convention_block(std::ostream& out, const StoredConvention& sc,
                           const geo::GeoDictionary& dict) {
  util::write_csv_row(out, {"S", sc.nc.suffix, std::string(to_string(sc.cls))});
  for (const GeoRegex& gr : sc.nc.regexes)
    util::write_csv_row(out, {"R", plan_to_token(gr.plan), gr.regex.to_string()});
  // Learned geohints are stored by place name so the file survives
  // dictionary rebuilds.
  for (const auto& [key, loc] : sc.nc.learned) {
    const geo::Location& l = dict.location(loc);
    util::write_csv_row(out, {"L", std::string(to_string(key.first)), key.second, l.city,
                              l.state, l.country});
  }
}

void save_conventions(std::ostream& out, const std::vector<StoredConvention>& conventions,
                      const geo::GeoDictionary& dict) {
  out << "# hoiho-geo naming conventions v1\n";
  for (const StoredConvention& sc : conventions) save_convention_block(out, sc, dict);
}

bool has_control_bytes(std::string_view s) {
  for (const char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x20 || u >= 0x7f) return true;
  }
  return false;
}

bool plausible_suffix(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '.' ||
                    c == '-' || c == '_';
    if (!ok) return false;
  }
  return s.front() != '.' && s.back() != '.';
}

ConventionReader::ConventionReader(const geo::GeoDictionary& dict, const LoadLimits& limits,
                                   std::vector<std::string>* warnings)
    : dict_(dict), limits_(limits), warnings_(warnings) {}

bool ConventionReader::feed(const std::vector<std::string>& row, const std::string& where,
                            std::string* error) {
  auto fail = [&](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };
  auto note = [&](std::string msg) {
    if (warnings_ != nullptr) warnings_->push_back(std::move(msg));
  };
  if (row[0] == "S") {
    if (row.size() != 3)
      return fail("S record needs 3 fields, got " + std::to_string(row.size()));
    if (out_.size() >= limits_.max_conventions)
      return fail("more than " + std::to_string(limits_.max_conventions) + " conventions");
    if (row[1].size() > limits_.max_suffix || !plausible_suffix(row[1]))
      return fail("bad suffix '" + row[1] + "'");
    const auto cls = nc_class_from_token(row[2]);
    if (!cls) return fail("unknown class '" + row[2] + "'");
    if (!out_.empty() && out_.back().nc.regexes.empty())
      note(where + ": suffix '" + out_.back().nc.suffix +
           "' has no regexes (truncated block?)");
    for (const StoredConvention& sc : out_)
      if (sc.nc.suffix == row[1]) {
        note(where + ": duplicate suffix '" + row[1] +
             "' (last block wins when applied)");
        break;
      }
    StoredConvention sc;
    sc.nc.suffix = row[1];
    sc.cls = *cls;
    out_.push_back(std::move(sc));
  } else if (row[0] == "R") {
    if (out_.empty()) return fail("R record before any S record");
    if (row.size() != 3)
      return fail("R record needs 3 fields, got " + std::to_string(row.size()));
    if (row[1].size() > limits_.max_plan)
      return fail("plan token exceeds " + std::to_string(limits_.max_plan) + " bytes");
    if (row[2].size() > limits_.max_regex)
      return fail("regex exceeds " + std::to_string(limits_.max_regex) + " bytes");
    const auto plan = plan_from_token(row[1]);
    if (!plan) return fail("bad plan '" + row[1] + "'");
    std::string rx_error;
    const auto regex = rx::parse(row[2], &rx_error);
    if (!regex) return fail("bad regex: " + rx_error);
    if (regex->capture_count() != plan->roles.size())
      return fail("plan has " + std::to_string(plan->roles.size()) +
                  " roles but regex has " + std::to_string(regex->capture_count()) +
                  " captures");
    GeoRegex gr;
    gr.regex = *regex;
    gr.plan = *plan;
    out_.back().nc.regexes.push_back(std::move(gr));
  } else if (row[0] == "L") {
    if (out_.empty()) return fail("L record before any S record");
    if (row.size() != 6)
      return fail("L record needs 6 fields, got " + std::to_string(row.size()));
    if (row[2].size() > limits_.max_code)
      return fail("code exceeds " + std::to_string(limits_.max_code) + " bytes");
    if (row[3].size() > limits_.max_place || row[4].size() > limits_.max_place ||
        row[5].size() > limits_.max_place)
      return fail("place field exceeds " + std::to_string(limits_.max_place) + " bytes");
    if (row[2].empty()) return fail("empty learned code");
    const auto type = hint_type_from_token(row[1]);
    if (!type) return fail("unknown dictionary type '" + row[1] + "'");
    // Resolve the stored place against the load-time dictionary.
    const geo::LocationId resolved = resolve_stored_place(dict_, row[3], row[4], row[5]);
    if (resolved == geo::kInvalidLocation) {
      note(where + ": dropped learned hint '" + row[2] + "' -> " + row[3] +
           " (place not in dictionary)");
      return true;
    }
    out_.back().nc.learned[LearnedKey{*type, util::to_lower(row[2])}] = resolved;
  } else {
    return fail("unknown record type '" + row[0] + "'");
  }
  return true;
}

std::vector<StoredConvention> ConventionReader::take() {
  if (!out_.empty() && out_.back().nc.regexes.empty() && warnings_ != nullptr)
    warnings_->push_back("suffix '" + out_.back().nc.suffix +
                         "' has no regexes (truncated file?)");
  return std::move(out_);
}

std::optional<std::vector<StoredConvention>> load_conventions(
    std::istream& in, const geo::GeoDictionary& dict, std::string* error,
    std::vector<std::string>* warnings, const LoadLimits& limits, io::LoadReport* report) {
  auto fail = [&](const std::string& msg) -> std::optional<std::vector<StoredConvention>> {
    if (error != nullptr) *error = msg;
    if (report != nullptr) report->fail(msg);
    return std::nullopt;
  };
  ConventionReader reader(dict, limits, warnings);
  std::string line;
  std::size_t lineno = 0;
  std::uint64_t hash = kFnvSeed;
  bool footer_seen = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (report != nullptr) ++report->lines;
    const std::string where = "line " + std::to_string(lineno);
    if (line.size() > limits.max_line)
      return fail(where + ": line exceeds " + std::to_string(limits.max_line) + " bytes");
    if (util::starts_with(line, kChecksumPrefix)) {
      // Integrity footer (save_conventions_to_file): the FNV-1a of every
      // byte above it. Verify, and require the file to end here.
      if (footer_seen) return fail(where + ": duplicate checksum footer");
      const auto stored = parse_checksum_footer(line);
      if (!stored) return fail(where + ": malformed checksum footer");
      if (*stored != hash)
        return fail(where + ": checksum mismatch (file corrupt or torn write)");
      footer_seen = true;
      continue;
    }
    if (footer_seen) {
      // The checksum covers everything above the footer, so ANY trailing
      // line — blank ones included — is unverified input: either a torn
      // append or bytes smuggled past the integrity check. Named error.
      if (report != nullptr) {
        io::LoadOptions count_only;  // lenient so the skip table records it
        count_only.lenient = true;
        report->skip(count_only, "trailing_garbage", lineno,
                     "bytes after checksum footer");
      }
      return fail(where + ": bytes after checksum footer");
    }
    hash = fnv1a_hash(line, hash);
    hash = fnv1a_hash("\n", hash);
    if (line.empty() || line[0] == '#') continue;
    const util::CsvRow row = util::parse_csv_line(line);
    if (row.empty() || (row.size() == 1 && row[0].empty())) continue;
    for (const std::string& field : row)
      if (has_control_bytes(field))
        return fail(where + ": control bytes in field");
    std::string msg;
    if (!reader.feed(row, where, &msg)) return fail(where + ": " + msg);
  }
  if (in.bad()) return fail("read error after line " + std::to_string(lineno));
  std::vector<StoredConvention> out = reader.take();
  if (report != nullptr) report->records = out.size();
  return out;
}

namespace {

bool fd_write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace

bool write_model_file_atomic(const std::string& path, std::string_view data,
                             std::string* error) {
  auto fail = [&](const std::string& what, const std::string& tmp) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (!tmp.empty()) ::unlink(tmp.c_str());
    return false;
  };
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  if (const auto f = util::failpoint::hit("nc.save")) {
    errno = f.err;
    return fail("save '" + path + "' (injected)", "");
  }
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return fail("open '" + tmp + "'", "");
  if (!fd_write_all(fd, data)) {
    ::close(fd);
    return fail("write '" + tmp + "'", tmp);
  }
  // fsync before rename: the rename must never become visible ahead of the
  // data it points at, or a crash could publish an empty/torn model.
  if (::fsync(fd) != 0) {
    ::close(fd);
    return fail("fsync '" + tmp + "'", tmp);
  }
  if (::close(fd) != 0) return fail("close '" + tmp + "'", tmp);
  if (::rename(tmp.c_str(), path.c_str()) != 0) return fail("rename to '" + path + "'", tmp);

  // Best-effort directory fsync so the rename itself is durable; some
  // filesystems reject O_DIRECTORY fsync, which is fine to ignore.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

bool save_conventions_to_file(const std::string& path,
                              const std::vector<StoredConvention>& conventions,
                              const geo::GeoDictionary& dict, std::string* error) {
  std::ostringstream buf;
  save_conventions(buf, conventions, dict);
  std::string data = buf.str();
  data += checksum_footer_line(fnv1a_hash(data));
  data += '\n';
  return write_model_file_atomic(path, data, error);
}

}  // namespace hoiho::core
