// Serialization for learned naming conventions.
//
// The paper's authors published their inferred regexes on a public website
// so that researchers without measurement infrastructure can geolocate
// hostnames. This module is that artifact: save_conventions() writes every
// usable convention (regexes, plans, classifications, learned geohints) in
// a line-oriented text format, and load_conventions() reconstructs a set of
// NamingConventions ready to drop into a Geolocator.
//
// Format ('#' comments allowed):
//   S,<suffix>,<class>                  starts a convention block
//   R,<plan>,<regex>                    plan is comma-free: "iata" or "city+cc"
//   L,<dict-type>,<code>,<city>,<state>,<country>   learned geohint
// Learned geohints are stored by place so files survive dictionary rebuilds;
// load resolves them against the dictionary given at load time.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/geohint.h"
#include "geo/dictionary.h"

namespace hoiho::io {
struct LoadReport;
}

namespace hoiho::core {

// FNV-1a 64 over raw bytes — the integrity hash behind the
// "# checksum,fnv1a,<16 hex>" footer. Shared by model files
// (save_conventions_to_file), the streaming-checkpoint WAL and manifest
// (io/checkpoint), and the serving generation archive (serve::ModelStore),
// so every durable artifact carries the same torn-write detector.
inline constexpr std::uint64_t kFnvSeed = 1469598103934665603ULL;
std::uint64_t fnv1a_hash(std::string_view bytes, std::uint64_t h = kFnvSeed);

// Renders / parses the footer line itself (no trailing newline). The hash
// covers every byte above the footer, each line hashed with its '\n'.
std::string checksum_footer_line(std::uint64_t hash);
std::optional<std::uint64_t> parse_checksum_footer(std::string_view line);

// Resolves a stored (city, state, country) place triple against the
// load-time dictionary — the shared rule for L records and checkpointed
// learned hints: city-name lookup on the squashed name, filtered by
// country and (when stored) lowercased state. Returns kInvalidLocation
// when the place is not in `dict`.
geo::LocationId resolve_stored_place(const geo::GeoDictionary& dict, std::string_view city,
                                     std::string_view state, std::string_view country);

// One serialized convention with its stage-5 classification.
struct StoredConvention {
  NamingConvention nc;
  NcClass cls = NcClass::kPoor;
};

// Writes `conventions` in the format above. `dict` is the dictionary the
// conventions were learned against (needed to spell out learned places).
void save_conventions(std::ostream& out, const std::vector<StoredConvention>& conventions,
                      const geo::GeoDictionary& dict);

// Crash-safe raw-byte publish shared by the text and binary model savers:
// writes to `path + ".tmp.<pid>"`, fsyncs, rename()s over `path`, and
// best-effort fsyncs the directory, so a reader never observes a
// half-written model. Honors the "nc.save" failpoint (chaos coverage for
// every model-publish path). False with *error on any I/O failure (the tmp
// file is removed).
bool write_model_file_atomic(const std::string& path, std::string_view data,
                             std::string* error = nullptr);

// Crash-safe save for files the daemon hot-reloads, via
// write_model_file_atomic. Appends a "# checksum,fnv1a,<hex>" footer over
// everything above it, which load_conventions verifies when present — a
// torn or bit-flipped file is rejected as a named error instead of silently
// loading a prefix. False with *error on any I/O failure.
bool save_conventions_to_file(const std::string& path,
                              const std::vector<StoredConvention>& conventions,
                              const geo::GeoDictionary& dict, std::string* error = nullptr);

// Hard limits the loader enforces. Model files are untrusted input (the
// daemon hot-reloads whatever is on disk), so every field is bounded and
// every violation is a named error, never a silent mis-parse.
struct LoadLimits {
  std::size_t max_line = 64 * 1024;   // bytes per physical line
  std::size_t max_suffix = 255;       // DNS limit
  std::size_t max_regex = 4096;
  std::size_t max_plan = 256;
  std::size_t max_code = 64;          // learned geohint code
  std::size_t max_place = 256;        // city/state/country fields
  std::size_t max_conventions = 1u << 20;
};

// Parses conventions, resolving learned geohints against `dict`. Learned
// entries whose place is not in `dict` are dropped (with a note appended to
// *warnings if non-null); duplicate suffix blocks and conventions without
// regexes also produce warnings. Returns std::nullopt with a message in
// *error on malformed input: wrong field counts, unknown record/class/plan
// tokens, regexes outside the dialect, plan/capture mismatches, oversized
// fields (see LoadLimits), control bytes, a stream read failure, a
// checksum-footer mismatch (files written by save_conventions_to_file;
// files without a footer are accepted unverified for compatibility), or any
// bytes after the footer — the checksum covers everything above it, so a
// trailing line (even a blank one) is unverified input and is rejected as
// "bytes after checksum footer" rather than silently accepted.
//
// `report`, if non-null, is filled in either way: lines scanned, records
// accepted, the failure message (LoadReport::error), and a
// "trailing_garbage" skip entry counting post-footer lines.
std::optional<std::vector<StoredConvention>> load_conventions(
    std::istream& in, const geo::GeoDictionary& dict, std::string* error = nullptr,
    std::vector<std::string>* warnings = nullptr, const LoadLimits& limits = {},
    io::LoadReport* report = nullptr);

// Writes one convention block (the S record plus its R/L records) — the
// unit save_conventions emits per convention and the model-delta format
// reuses for upsert records.
void save_convention_block(std::ostream& out, const StoredConvention& sc,
                           const geo::GeoDictionary& dict);

// Structural validity of a stored suffix field: dot-separated labels of
// hostname-legal characters, no leading/trailing dot. The file stores what
// save wrote, which came from parsed hostnames — anything else is
// corruption.
bool plausible_suffix(std::string_view s);

// True if any byte falls outside printable ASCII. The model formats are
// ASCII-only; control characters or high bytes can only come from
// corruption, and the regex engine's 128-wide character classes must never
// see them.
bool has_control_bytes(std::string_view s);

// Record-level parser for S/R/L convention rows, shared by
// load_conventions and the model-delta loader (core/delta.h) so both
// formats validate blocks under exactly the same rules — field counts,
// limits, plan/capture agreement, place resolution, duplicate-suffix and
// truncated-block warnings. Feed parsed CSV rows in file order; the
// accumulated conventions come out of take().
class ConventionReader {
 public:
  // All three references/pointers must outlive the reader; `warnings` may
  // be null.
  ConventionReader(const geo::GeoDictionary& dict, const LoadLimits& limits,
                   std::vector<std::string>* warnings);

  // Handles one "S"/"R"/"L" row (any other record type is an error).
  // `where` ("line N") prefixes warnings; errors are returned bare in
  // *error for the caller to contextualize. False on malformed records.
  bool feed(const std::vector<std::string>& row, const std::string& where,
            std::string* error);

  // Runs the end-of-input check (trailing regex-less block note) and
  // returns the accumulated conventions.
  std::vector<StoredConvention> take();

  std::size_t count() const { return out_.size(); }

 private:
  const geo::GeoDictionary& dict_;
  const LoadLimits& limits_;
  std::vector<std::string>* warnings_;
  std::vector<StoredConvention> out_;
};

// Plan <-> string helpers ("iata", "city+cc+st").
std::string plan_to_token(const Plan& plan);
std::optional<Plan> plan_from_token(std::string_view token);

// Token -> enum parsers for the shared record dialect (L/H record dict
// types, S/X record classes); nullopt on unknown tokens. The inverse is
// to_string() on the enum.
std::optional<geo::HintType> hint_type_from_token(std::string_view token);
std::optional<NcClass> nc_class_from_token(std::string_view token);

}  // namespace hoiho::core
