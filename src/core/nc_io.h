// Serialization for learned naming conventions.
//
// The paper's authors published their inferred regexes on a public website
// so that researchers without measurement infrastructure can geolocate
// hostnames. This module is that artifact: save_conventions() writes every
// usable convention (regexes, plans, classifications, learned geohints) in
// a line-oriented text format, and load_conventions() reconstructs a set of
// NamingConventions ready to drop into a Geolocator.
//
// Format ('#' comments allowed):
//   S,<suffix>,<class>                  starts a convention block
//   R,<plan>,<regex>                    plan is comma-free: "iata" or "city+cc"
//   L,<dict-type>,<code>,<city>,<state>,<country>   learned geohint
// Learned geohints are stored by place so files survive dictionary rebuilds;
// load resolves them against the dictionary given at load time.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/geohint.h"
#include "geo/dictionary.h"

namespace hoiho::core {

// One serialized convention with its stage-5 classification.
struct StoredConvention {
  NamingConvention nc;
  NcClass cls = NcClass::kPoor;
};

// Writes `conventions` in the format above. `dict` is the dictionary the
// conventions were learned against (needed to spell out learned places).
void save_conventions(std::ostream& out, const std::vector<StoredConvention>& conventions,
                      const geo::GeoDictionary& dict);

// Parses conventions, resolving learned geohints against `dict`. Learned
// entries whose place is not in `dict` are dropped (with a note appended to
// *warnings if non-null). Returns std::nullopt with a message in *error on
// malformed input.
std::optional<std::vector<StoredConvention>> load_conventions(
    std::istream& in, const geo::GeoDictionary& dict, std::string* error = nullptr,
    std::vector<std::string>* warnings = nullptr);

// Plan <-> string helpers ("iata", "city+cc+st").
std::string plan_to_token(const Plan& plan);
std::optional<Plan> plan_from_token(std::string_view token);

}  // namespace hoiho::core
