#include "core/geolocate.h"

#include <vector>

namespace hoiho::core {

void Geolocator::add(NamingConvention nc, NcClass cls) {
  rx::SetMatcher matcher;
  for (const GeoRegex& gr : nc.regexes) matcher.add(gr.regex);
  matcher.finalize();
  add_compiled(std::move(nc), std::move(matcher), cls);
}

void Geolocator::add_compiled(NamingConvention nc, rx::SetMatcher matcher, NcClass cls) {
  if (nc.suffix.empty()) return;
  CompiledConvention cc;
  cc.nc = std::move(nc);
  cc.matcher = std::move(matcher);
  cc.cls = cls;
  std::string key = cc.nc.suffix;
  by_suffix_[std::move(key)] = std::move(cc);
}

bool Geolocator::remove(std::string_view suffix) {
  const auto it = by_suffix_.find(suffix);
  if (it == by_suffix_.end()) return false;
  by_suffix_.erase(it);
  return true;
}

const NamingConvention* Geolocator::convention(std::string_view suffix) const {
  const auto it = by_suffix_.find(suffix);
  return it == by_suffix_.end() ? nullptr : &it->second.nc;
}

std::optional<Geolocation> Geolocator::locate(std::string_view hostname) const {
  auto detail = locate_detailed(hostname);
  if (!detail) return std::nullopt;
  return std::move(detail->best);
}

std::optional<LocateDetail> Geolocator::locate_detailed(std::string_view hostname) const {
  // Reused per thread so the hot lookup path canonicalizes without a fresh
  // allocation per call (the capacity sticks across queries).
  static thread_local std::string canonical;
  const auto host = dns::parse_hostname(hostname, canonical);
  if (!host) return std::nullopt;
  const auto it = by_suffix_.find(host->suffix());
  if (it == by_suffix_.end()) return std::nullopt;
  const CompiledConvention& cc = it->second;
  const NamingConvention* nc = &cc.nc;

  // Concurrent locate() calls (serve workers) share the immutable matcher
  // but need their own mutable match state.
  static thread_local rx::MatchScratch scratch;
  static thread_local rx::SetMatches matches;
  cc.matcher.match_all(host->full, scratch, matches);

  // Same semantics as extract(): first regex (in convention order) whose
  // match decodes to a non-empty code wins.
  std::optional<Extraction> ex;
  for (std::size_t k = 0; k < matches.indices.size() && !ex; ++k) {
    const std::size_t idx = matches.indices[k];
    ex = decode_extraction(nc->regexes[idx], static_cast<int>(idx), host->full,
                           matches.captures(k));
  }
  if (!ex) return std::nullopt;

  const geo::HintType dt = dictionary_for(ex->primary);
  std::vector<geo::LocationId> candidates;
  bool via_learned = false;
  const auto learned_it = nc->learned.find(LearnedKey{dt, ex->code});
  if (learned_it != nc->learned.end()) {
    candidates.push_back(learned_it->second);
    via_learned = true;
  } else {
    const auto ids = dict_.lookup(dt, ex->code);
    candidates.assign(ids.begin(), ids.end());
  }
  if (!ex->cc.empty()) {
    std::erase_if(candidates,
                  [&](geo::LocationId id) { return !dict_.matches_country(ex->cc, id); });
  }
  if (!ex->st.empty()) {
    std::erase_if(candidates,
                  [&](geo::LocationId id) { return !dict_.matches_state(ex->st, id); });
  }
  if (candidates.empty()) return std::nullopt;

  // Break ambiguity: facility presence, then population (stage-4 ranking).
  geo::LocationId best = candidates[0];
  for (geo::LocationId id : candidates) {
    const geo::Location& a = dict_.location(id);
    const geo::Location& b = dict_.location(best);
    if (a.has_facility != b.has_facility) {
      if (a.has_facility) best = id;
    } else if (a.population > b.population) {
      best = id;
    }
  }

  LocateDetail out;
  out.best.location = best;
  out.best.coord = dict_.location(best).coord;
  out.best.code = ex->code;
  out.best.role = ex->primary;
  out.best.via_learned = via_learned;
  out.best.suffix = nc->suffix;
  out.candidates = std::move(candidates);
  out.hint = dt;
  out.cls = cc.cls;
  return out;
}

}  // namespace hoiho::core
