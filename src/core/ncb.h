// ncb: the mmap-able binary model format.
//
// The text format (nc_io.h) is the interop artifact — the paper's published
// regex dictionary as human-readable CSV. Loading it re-parses every regex
// and recompiles every matcher, so a ModelStore hot reload is O(model) even
// when nothing changed. ncb is the serving-side twin: the same conventions
// laid out so a Geolocator can be assembled as views over a read-only
// mapping — one interned string pool, flat offset tables for suffixes →
// regexes → learned geohints, and the compiled rx::Program / rx::SetMatcher
// pools (regex/serialize.h) verbatim. Reload cost becomes O(pages touched):
// header + tables fault in, instruction pages fault lazily on first match.
//
// File layout (all little-endian, sections 16-byte aligned, zero padding):
//
//   FileHeader            magic "hoihoNCB", version, counts, hashes
//   Section[section_count]  kind + byte offset/size, ascending offsets
//   ---- payload (covered by payload_hash) ----
//   kStringPool   raw bytes; every StrRef{off,len} points here
//   kSuffixes     SuffixEntry[] — one per convention, file order = save order
//   kRegexes      RegexEntry[]  — source text + plan slice per regex
//   kPlanRoles    u32[]         — Role values, concatenated plan slices
//   kLearned      LearnedEntry[] — learned geohints stored by place triple
//   kPrograms..kTrieTerms  the nine rx pools (regex/serialize.h)
//
// Integrity: header_hash (FNV-1a over header+section table with the field
// zeroed) is always verified — it is cheap and catches torn/foreign files.
// payload_hash covers the full payload region; from_bytes() verifies it by
// default, open() (mmap) skips it by default because touching every page
// would defeat O(pages) reload — the atomic rename publish plus structural
// validation already rule out torn writes, and callers that want the full
// check (e.g. archive restore) can opt in.
//
// Equivalence contract: answers are byte-identical to the text path. The
// loader re-resolves learned places against the load-time dictionary with
// resolve_stored_place — the exact rule load_conventions applies — rather
// than trusting serialized LocationIds, so a model file survives dictionary
// rebuilds the same way the text format does.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/nc_io.h"
#include "regex/serialize.h"

namespace hoiho::io {
struct LoadReport;
}

namespace hoiho::core {

class Geolocator;

namespace ncb {

inline constexpr char kMagic[8] = {'h', 'o', 'i', 'h', 'o', 'N', 'C', 'B'};
inline constexpr std::uint32_t kVersion = 1;

struct FileHeader {
  char magic[8] = {};
  std::uint32_t version = 0;
  std::uint32_t section_count = 0;
  std::uint64_t file_size = 0;     // total bytes, must equal the real size
  std::uint64_t payload_hash = 0;  // FNV-1a over [payload_off, file_size)
  std::uint64_t header_hash = 0;   // FNV-1a over header+sections, this field 0
  std::uint64_t reserved[2] = {0, 0};
};
static_assert(sizeof(FileHeader) == 56);

enum class SectionKind : std::uint32_t {
  kStringPool = 0,
  kSuffixes = 1,
  kRegexes = 2,
  kPlanRoles = 3,
  kLearned = 4,
  // The nine compiled-regex pools, in regex/serialize.h order.
  kPrograms = 5,
  kInstr = 6,
  kClasses = 7,
  kProgPool = 8,
  kGroups = 9,
  kMatchers = 10,
  kTrieNodes = 11,
  kTrieEdges = 12,
  kTrieTerms = 13,
};
inline constexpr std::uint32_t kSectionCount = 14;

struct Section {
  std::uint32_t kind = 0;
  std::uint32_t reserved = 0;
  std::uint64_t offset = 0;  // from file start, 16-byte aligned
  std::uint64_t size = 0;    // bytes (zero padding up to the next section)
};
static_assert(sizeof(Section) == 24);

// Reference into the interned string pool.
struct StrRef {
  std::uint32_t off = 0;
  std::uint32_t len = 0;
};
static_assert(sizeof(StrRef) == 8);

// One convention: suffix + class + its regex / learned slices + the index
// of its serialized SetMatcher (regex k of the convention is program k of
// that matcher — the loader validates the counts agree).
struct SuffixEntry {
  StrRef suffix;
  std::uint32_t cls = 0;  // NcClass
  std::uint32_t regex_off = 0, regex_count = 0;      // -> kRegexes
  std::uint32_t learned_off = 0, learned_count = 0;  // -> kLearned
  std::uint32_t matcher = 0;                         // -> kMatchers
};
static_assert(sizeof(SuffixEntry) == 32);

// One regex: dialect source text (for conversion back to text / relearn
// tooling) + its interpretation plan as a slice of kPlanRoles.
struct RegexEntry {
  StrRef source;
  std::uint32_t plan_off = 0, plan_count = 0;  // -> kPlanRoles
};
static_assert(sizeof(RegexEntry) == 16);

// One learned geohint, stored by place triple exactly like the text L
// record so the file survives dictionary rebuilds.
struct LearnedEntry {
  std::uint32_t hint_type = 0;  // geo::HintType
  StrRef code, city, state, country;
};
static_assert(sizeof(LearnedEntry) == 36);

}  // namespace ncb

// Format sniff for model files/buffers: binary iff the bytes start with the
// ncb magic. Everything else is treated as the text format.
enum class ModelFormat { kText, kNcb };
ModelFormat detect_model_format(std::string_view head);
std::string_view to_string(ModelFormat f);

// Serializes `conventions` (all of them, classes included — same coverage
// as save_conventions) into an ncb image.
std::string serialize_conventions_ncb(const std::vector<StoredConvention>& conventions,
                                      const geo::GeoDictionary& dict);

// serialize + crash-safe publish (write_model_file_atomic).
bool save_conventions_ncb_to_file(const std::string& path,
                                  const std::vector<StoredConvention>& conventions,
                                  const geo::GeoDictionary& dict, std::string* error = nullptr);

// Extension-dispatched save: ".ncb" → binary, anything else → text. The
// learner and daemon demo-model paths use this so one flag value picks the
// format.
bool save_model_to_file(const std::string& path,
                        const std::vector<StoredConvention>& conventions,
                        const geo::GeoDictionary& dict, std::string* error = nullptr);

// Load knobs (namespace scope so `{}` defaults below stay well-formed —
// a nested class's member initializers are not complete-class-parsed until
// the enclosing class closes).
struct NcbOpenOptions {
  // Verify payload_hash over the whole payload. Defaults preserve the
  // O(pages) property: off for mmap, on for heap loads.
  bool verify_payload = false;
};

// A validated, immutable binary model: typed views over either a read-only
// mmap or an owned aligned buffer. The shared_ptr<const NcbModel> is the
// keepalive every derived view (Geolocator matchers) pins — the mapping
// outlives any snapshot built from it.
class NcbModel : public std::enable_shared_from_this<NcbModel> {
 public:
  using OpenOptions = NcbOpenOptions;

  // mmap `path` read-only and validate. nullptr with a named *error (also
  // mirrored into *report) on any structural violation — bad magic,
  // truncated or overlapping sections, out-of-range offsets, misaligned
  // refs — never UB.
  static std::shared_ptr<const NcbModel> open(const std::string& path,
                                              std::string* error = nullptr,
                                              io::LoadReport* report = nullptr,
                                              const OpenOptions& opt = {});

  // Validate an in-memory image (copied into an aligned owned buffer).
  // Payload hash is verified by default on this path.
  static std::shared_ptr<const NcbModel> from_bytes(std::string_view bytes,
                                                    std::string* error = nullptr,
                                                    io::LoadReport* report = nullptr,
                                                    const OpenOptions& opt = {
                                                        .verify_payload = true});

  ~NcbModel();
  NcbModel(const NcbModel&) = delete;
  NcbModel& operator=(const NcbModel&) = delete;

  // Populates `out` with every convention (skipping NcClass::kPoor unless
  // `include_poor` — the daemon's build path skips them), assembling each
  // SetMatcher as views over this model. Learned hints are re-resolved
  // against out.dictionary(); unresolvable places are dropped with a note
  // in *warnings, exactly like the text loader.
  void build_geolocator(Geolocator& out, std::vector<std::string>* warnings = nullptr,
                        bool include_poor = false) const;

  // Back-converts to StoredConvention records (re-parsing regex source
  // text; O(model) — conversion tooling, not the serving path). nullopt
  // with *error if a stored regex fails to parse or mismatches its plan.
  std::optional<std::vector<StoredConvention>> to_stored(
      const geo::GeoDictionary& dict, std::string* error = nullptr,
      std::vector<std::string>* warnings = nullptr) const;

  std::size_t convention_count() const { return suffixes_.size(); }
  std::size_t program_count() const { return rx_.programs.size(); }
  std::size_t bytes_mapped() const { return bytes_.size(); }
  bool mapped() const { return mapping_ != nullptr; }

  // The whole validated file image (for the serving generation archive;
  // reading it faults every page in, so it is off the reload fast path).
  std::string_view raw_bytes() const { return bytes_; }

 private:
  NcbModel() = default;

  struct Mapping;  // munmap RAII

  static std::shared_ptr<const NcbModel> validate_and_adopt(
      std::shared_ptr<NcbModel> m, std::string* error, io::LoadReport* report,
      const OpenOptions& opt);

  std::string_view bytes_;  // whole file image
  std::shared_ptr<Mapping> mapping_;              // mmap path
  std::shared_ptr<const std::uint64_t[]> owned_;  // heap path (aligned copy)

  // Typed section views, set during validation.
  std::string_view pool_;
  std::span<const ncb::SuffixEntry> suffixes_;
  std::span<const ncb::RegexEntry> regexes_;
  std::span<const std::uint32_t> plan_roles_;
  std::span<const ncb::LearnedEntry> learned_;
  rx::ProgramPoolsView rx_;
};

}  // namespace hoiho::core
