#include "core/hoiho.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <span>
#include <unordered_set>

#include "core/delta.h"
#include "core/ncb.h"
#include "io/checkpoint.h"
#include "util/sysinfo.h"
#include "util/thread_pool.h"

namespace hoiho::core {

std::size_t HoihoResult::geolocated_router_count() const {
  std::vector<topo::RouterId> routers;
  for (const SuffixResult& sr : suffixes) {
    if (!sr.usable()) continue;
    for (std::size_t i = 0; i < sr.eval.per_hostname.size(); ++i) {
      if (sr.eval.per_hostname[i].outcome == Outcome::kTP)
        routers.push_back(sr.tagged[i].ref.router);
    }
  }
  std::sort(routers.begin(), routers.end());
  routers.erase(std::unique(routers.begin(), routers.end()), routers.end());
  return routers.size();
}

std::size_t HoihoResult::count(NcClass c) const {
  std::size_t n = 0;
  for (const SuffixResult& sr : suffixes)
    if (sr.has_nc() && sr.cls == c) ++n;
  return n;
}

std::string RunReport::to_json(std::string_view indent) const {
  const std::string pad(indent);
  std::string out = "{\n";
  out += pad + "  \"metrics\": " + metrics.to_json(pad + "  ") + ",\n";
  out += pad + "  \"spans\": " + obs::to_json(spans, pad + "  ") + ",\n";
  out += pad + "  \"dropped_spans\": " + std::to_string(dropped_spans) + "\n";
  out += pad + "}";
  return out;
}

// Registry handles for the pipeline counters, resolved once per run so the
// per-suffix hot path only pays relaxed adds. All handles live in the
// registry passed to run_instrumented and stay valid for its lifetime.
struct Hoiho::PipelineMetrics {
  obs::Registry* registry;  // for per-worker gauges resolved at fold time
  obs::Counter suffixes, suffixes_skipped, suffixes_usable;
  obs::Counter hostnames, tagged_hostnames;
  obs::Counter candidates_generated, ncs_built, learned_hints;
  obs::Counter stage_us_tag, stage_us_regex, stage_us_eval, stage_us_learn;
  obs::Counter cache_hits, cache_misses, cache_prefilter_rejects, cache_bypasses;
  obs::Counter rx_subjects, rx_candidates, rx_programs_run, rx_hits, rx_programs_compiled;
  obs::Counter budget_exhausted;
  obs::Counter pool_tasks_stolen, pool_steal_failures, pool_worker_stalled;
  obs::Counter stream_batches;
  obs::Counter checkpoint_batches_committed, checkpoint_batches_resumed;
  obs::Counter checkpoint_results_resumed, checkpoint_commit_failures, checkpoint_discarded;
  obs::Counter model_save_failures;
  obs::Counter delta_dirty, delta_reused, delta_added, delta_removed, delta_relearn_us;
  obs::Gauge grid_cells;
  obs::Gauge pool_tasks_submitted, pool_tasks_executed;
  obs::Gauge peak_rss_bytes;
  obs::Histogram suffix_ns, pool_queue_wait_ns;

  explicit PipelineMetrics(obs::Registry& r)
      : registry(&r),
        suffixes(r.counter("pipeline_suffixes")),
        suffixes_skipped(r.counter("pipeline_suffixes_skipped")),
        suffixes_usable(r.counter("pipeline_suffixes_usable")),
        hostnames(r.counter("pipeline_hostnames")),
        tagged_hostnames(r.counter("pipeline_tagged_hostnames")),
        candidates_generated(r.counter("pipeline_candidates_generated")),
        ncs_built(r.counter("pipeline_ncs_built")),
        learned_hints(r.counter("pipeline_learned_hints")),
        stage_us_tag(r.counter("pipeline_stage_us{stage=\"tag\"}")),
        stage_us_regex(r.counter("pipeline_stage_us{stage=\"regex_gen\"}")),
        stage_us_eval(r.counter("pipeline_stage_us{stage=\"eval\"}")),
        stage_us_learn(r.counter("pipeline_stage_us{stage=\"learn\"}")),
        cache_hits(r.counter("consistency_cache_hits")),
        cache_misses(r.counter("consistency_cache_misses")),
        cache_prefilter_rejects(r.counter("consistency_cache_prefilter_rejects")),
        cache_bypasses(r.counter("consistency_cache_bypasses")),
        rx_subjects(r.counter("rx_set_subjects")),
        rx_candidates(r.counter("rx_set_candidates")),
        rx_programs_run(r.counter("rx_set_programs_run")),
        rx_hits(r.counter("rx_set_hits")),
        rx_programs_compiled(r.counter("rx_programs_compiled")),
        budget_exhausted(r.counter("pipeline_budget_exhausted")),
        pool_tasks_stolen(r.counter("pool_tasks_stolen")),
        pool_steal_failures(r.counter("pool_steal_failures")),
        pool_worker_stalled(r.counter("pool_worker_stalled")),
        stream_batches(r.counter("pipeline_stream_batches")),
        checkpoint_batches_committed(r.counter("checkpoint_batches_committed")),
        checkpoint_batches_resumed(r.counter("checkpoint_batches_resumed")),
        checkpoint_results_resumed(r.counter("checkpoint_results_resumed")),
        checkpoint_commit_failures(r.counter("checkpoint_commit_failures")),
        checkpoint_discarded(r.counter("checkpoint_discarded")),
        model_save_failures(r.counter("pipeline_model_save_failures")),
        delta_dirty(r.counter("delta_suffixes_dirty")),
        delta_reused(r.counter("delta_suffixes_reused")),
        delta_added(r.counter("delta_suffixes_added")),
        delta_removed(r.counter("delta_suffixes_removed")),
        delta_relearn_us(r.counter("delta_relearn_us")),
        grid_cells(r.gauge("pipeline_expected_rtt_grid_cells")),
        pool_tasks_submitted(r.gauge("pipeline_pool_tasks_submitted")),
        pool_tasks_executed(r.gauge("pipeline_pool_tasks_executed")),
        peak_rss_bytes(r.gauge("pipeline_peak_rss_bytes")),
        suffix_ns(r.histogram("pipeline_suffix_ns")),
        pool_queue_wait_ns(r.histogram("pool_queue_wait_ns")) {}

  // Folds one pool's stats into the registry: the aggregate counters plus a
  // per-worker depth/executed gauge pair, labelled by worker index. The
  // labelled gauges replace the old single pipeline_pool_max_queue_depth
  // gauge — a shared high-water mark hid which deque actually backed up.
  void fold_pool(const util::WorkStealingPool::Stats& ps) {
    pool_tasks_submitted.add(static_cast<std::int64_t>(ps.submitted));
    pool_tasks_executed.add(static_cast<std::int64_t>(ps.executed));
    pool_tasks_stolen.add(ps.tasks_stolen);
    pool_steal_failures.add(ps.steal_failures);
    for (std::size_t w = 0; w < ps.workers.size(); ++w) {
      const std::string label = "{worker=\"" + std::to_string(w) + "\"}";
      obs::Gauge depth = registry->gauge("pipeline_pool_max_queue_depth" + label);
      depth.set(std::max(depth.load(), static_cast<std::int64_t>(ps.workers[w].max_queue_depth)));
      registry->gauge("pipeline_pool_worker_executed" + label)
          .add(static_cast<std::int64_t>(ps.workers[w].executed));
    }
  }
};

std::shared_ptr<const measure::ExpectedRttGrid> Hoiho::expected_rtt_grid(
    const measure::Measurements& meas) const {
  if (!config_.expected_rtt_grid || meas.vps.empty() ||
      dict_.size() * meas.vps.size() > config_.max_grid_cells) {
    return nullptr;
  }
  GridCache& gc = *grid_cache_;
  const std::scoped_lock lock(gc.mu);
  const auto same_vps = [&] {
    if (gc.vp_coords.size() != meas.vps.size()) return false;
    for (std::size_t i = 0; i < gc.vp_coords.size(); ++i)
      if (!(gc.vp_coords[i] == meas.vps[i].coord)) return false;
    return true;
  };
  if (gc.grid == nullptr || !same_vps()) {
    std::vector<geo::Coordinate> coords(dict_.size());
    for (std::size_t id = 0; id < coords.size(); ++id)
      coords[id] = dict_.location(static_cast<geo::LocationId>(id)).coord;
    gc.grid = std::make_shared<measure::ExpectedRttGrid>(coords, meas.vps);
    gc.vp_coords.clear();
    for (const measure::VantagePoint& vp : meas.vps) gc.vp_coords.push_back(vp.coord);
  }
  return gc.grid;
}

SuffixResult Hoiho::run_suffix(const topo::SuffixGroup& group,
                               const measure::Measurements& meas) const {
  return run_suffix_instrumented(group, meas, nullptr, nullptr);
}

SuffixResult Hoiho::run_suffix_instrumented(const topo::SuffixGroup& group,
                                            const measure::Measurements& meas,
                                            PipelineMetrics* pm, obs::Tracer* tracer) const {
  const std::uint64_t t0 = obs::Tracer::now_ns();
  obs::Span span(tracer, "suffix", group.suffix);
  span.set_work(group.hostnames.size());

  SuffixResult result;
  StageTimes stages;
  measure::ConsistencyCache::Stats cache_stats;
  if (!config_.consistency_cache) {
    result = run_suffix_impl(group, meas, nullptr, pm, tracer, stages);
  } else {
    // One cache per suffix run, shared by stages 2-4. The cache is used from
    // this thread only; cross-suffix parallelism in run() gives each worker
    // its own cache. The expected-RTT grid behind it IS shared across
    // workers (immutable once built).
    const std::shared_ptr<const measure::ExpectedRttGrid> grid = expected_rtt_grid(meas);
    measure::ConsistencyCache cache(meas, dict_.size(), config_.apparent.slack_ms,
                                    /*prefilter=*/true, grid.get());
    result = run_suffix_impl(group, meas, &cache, pm, tracer, stages);
    cache_stats = cache.stats();
  }
  // Stamp the content fingerprint on every path (skipped suffixes too):
  // incremental runs diff against it, and a prior entry without one would
  // read as always-dirty.
  result.fingerprint = suffix_fingerprint(group, meas);

  if (pm != nullptr) {
    pm->suffixes.inc();
    pm->hostnames.add(result.hostname_count);
    pm->tagged_hostnames.add(result.tagged_count);
    if (result.usable()) pm->suffixes_usable.inc();
    pm->learned_hints.add(result.learned.size());
    pm->budget_exhausted.add(result.eval.counts.budget_exhausted);
    pm->stage_us_tag.add(static_cast<std::uint64_t>(stages.tag_ms * 1e3));
    pm->stage_us_regex.add(static_cast<std::uint64_t>(stages.regex_ms * 1e3));
    pm->stage_us_eval.add(static_cast<std::uint64_t>(stages.eval_ms * 1e3));
    pm->stage_us_learn.add(static_cast<std::uint64_t>(stages.learn_ms * 1e3));
    pm->cache_hits.add(cache_stats.hits);
    pm->cache_misses.add(cache_stats.misses);
    pm->cache_prefilter_rejects.add(cache_stats.prefilter_rejects);
    pm->cache_bypasses.add(cache_stats.bypasses);
    pm->suffix_ns.observe(static_cast<double>(obs::Tracer::now_ns() - t0));
  }
  return result;
}

namespace {

// Accumulates wall time into a StageTimes field across interleaved stages.
class Stopwatch {
 public:
  explicit Stopwatch(double& sink) : sink_(sink), t0_(std::chrono::steady_clock::now()) {}
  ~Stopwatch() {
    sink_ += std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0_)
                 .count();
  }

 private:
  double& sink_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace

SuffixResult Hoiho::run_suffix_impl(const topo::SuffixGroup& group,
                                    const measure::Measurements& meas,
                                    measure::ConsistencyCache* cache, PipelineMetrics* pm,
                                    obs::Tracer* tracer, StageTimes& stages) const {
  SuffixResult result;
  result.suffix = group.suffix;
  result.hostname_count = group.hostnames.size();

  // Stage 2: tag apparent geohints.
  {
    const Stopwatch sw(stages.tag_ms);
    obs::Span span(tracer, "tag", group.suffix);
    span.set_work(group.hostnames.size());
    const ApparentTagger tagger(dict_, meas, config_.apparent, cache);
    result.tagged = tagger.tag_all(group.hostnames);
  }
  for (const TaggedHostname& th : result.tagged)
    if (th.has_hint()) ++result.tagged_count;
  if (result.tagged_count < config_.min_tagged_hostnames) {
    if (pm != nullptr) pm->suffixes_skipped.inc();
    return result;
  }

  Evaluator evaluator(dict_, meas, config_.apparent.slack_ms, cache);
  evaluator.set_use_compiled(config_.compiled_regex);
  // Fold the evaluator's set-matching work into the registry on every exit
  // path (the evaluator dies with this frame).
  struct EvalObsFold {
    PipelineMetrics* pm;
    const Evaluator& ev;
    ~EvalObsFold() {
      if (pm == nullptr) return;
      const rx::MatchStats& ms = ev.match_stats();
      pm->rx_subjects.add(ms.subjects);
      pm->rx_candidates.add(ms.candidates);
      pm->rx_programs_run.add(ms.programs_run);
      pm->rx_hits.add(ms.hits);
      pm->rx_programs_compiled.add(ev.compiled_program_count());
    }
  } eval_fold{pm, evaluator};

  // Stage 3 phase 1: base regexes, seeded from a bounded prefix of the
  // tagged hostnames.
  GenConfig gen_config = config_.gen;
  gen_config.compiled_matcher = config_.compiled_regex;
  const RegexGenerator generator(gen_config);
  std::vector<GeoRegex> candidates;
  {
    const Stopwatch sw(stages.regex_ms);
    obs::Span span(tracer, "regex_gen", group.suffix);
    std::vector<TaggedHostname> seeds;
    for (const TaggedHostname& th : result.tagged) {
      if (!th.has_hint()) continue;
      seeds.push_back(th);
      if (seeds.size() >= config_.max_seed_hostnames) break;
    }
    candidates = generator.generate_base(seeds);
    span.set_work(candidates.size());
    if (pm != nullptr) pm->candidates_generated.add(candidates.size());
  }
  if (candidates.empty()) return result;

  // Rank base candidates by ATP and prune — the whole set is scored in one
  // SetMatcher pass per hostname. The survivors' evaluations are kept and
  // handed to the NC builder, which then only scores the regexes that
  // merge/embed add below them.
  std::vector<NcEvaluation> base_evals;
  {
    const Stopwatch sw(stages.eval_ms);
    obs::Span span(tracer, "eval", group.suffix);
    span.set_work(candidates.size());
    std::vector<NcEvaluation> evals = evaluator.evaluate_candidates(candidates, result.tagged);
    struct Ranked {
      GeoRegex gr;
      NcEvaluation eval;
    };
    std::vector<Ranked> ranked;
    ranked.reserve(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (evals[i].counts.tp == 0) continue;
      ranked.push_back(Ranked{std::move(candidates[i]), std::move(evals[i])});
    }
    std::stable_sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
      return a.eval.counts.atp() > b.eval.counts.atp();
    });
    if (ranked.size() > config_.max_candidates) ranked.resize(config_.max_candidates);
    candidates.clear();
    base_evals.reserve(ranked.size());
    for (Ranked& r : ranked) {
      candidates.push_back(std::move(r.gr));
      base_evals.push_back(std::move(r.eval));
    }
  }
  if (candidates.empty()) return result;

  {
    const Stopwatch sw(stages.regex_ms);
    obs::Span span(tracer, "regex_gen", group.suffix);
    // Stage 3 phase 2: merge similar regexes.
    {
      const std::vector<GeoRegex> merged = generator.merge(candidates);
      candidates.insert(candidates.end(), merged.begin(), merged.end());
    }
    // Stage 3 phase 3: embed character classes.
    {
      std::vector<GeoRegex> refined;
      for (const GeoRegex& gr : candidates) {
        if (auto r = generator.embed_classes(gr, result.tagged)) refined.push_back(std::move(*r));
      }
      candidates.insert(candidates.end(), refined.begin(), refined.end());
    }
    dedup_regexes(candidates);
  }

  // Stage 3 phase 4: build candidate NCs.
  const NcBuilder builder(evaluator, config_.sets);
  std::vector<NcBuilder::Candidate> ncs;
  {
    const Stopwatch sw(stages.eval_ms);
    obs::Span span(tracer, "eval", group.suffix);
    // The pruned base regexes sit (deduplicated, in rank order) at the front
    // of `candidates`: merge/embed only append, and dedup keeps first
    // occurrences, so base_evals still lines up with the prefix.
    ncs = builder.build(group.suffix, std::move(candidates), result.tagged,
                        std::move(base_evals));
    span.set_work(ncs.size());
    if (pm != nullptr) pm->ncs_built.add(ncs.size());
  }
  if (ncs.empty()) return result;

  // Stage 4: learn operator geohints for the top candidates, then
  // re-evaluate them (learning can reorder the ranking).
  std::vector<std::vector<LearnedHint>> learned_per(ncs.size());
  if (config_.enable_learning) {
    const Stopwatch sw(stages.learn_ms);
    obs::Span span(tracer, "learn", group.suffix);
    const GeohintLearner learner(evaluator, config_.learn);
    const std::size_t n = std::min(ncs.size(), config_.learn_top_n);
    for (std::size_t i = 0; i < n; ++i) {
      learned_per[i] = learner.learn(ncs[i].nc, result.tagged, ncs[i].eval);
      span.add_work(learned_per[i].size());
      if (!learned_per[i].empty()) ncs[i].eval = evaluator.evaluate(ncs[i].nc, result.tagged);
    }
    std::vector<std::size_t> order(ncs.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return ncs[a].eval.counts.atp() > ncs[b].eval.counts.atp();
    });
    std::vector<NcBuilder::Candidate> ncs2;
    std::vector<std::vector<LearnedHint>> learned2;
    for (std::size_t idx : order) {
      ncs2.push_back(std::move(ncs[idx]));
      learned2.push_back(std::move(learned_per[idx]));
    }
    ncs = std::move(ncs2);
    learned_per = std::move(learned2);
  }

  // Stage 5: select and classify.
  const NcBuilder::Candidate* best = select_best(ncs, config_.rank);
  if (best == nullptr) return result;
  const std::size_t best_idx = static_cast<std::size_t>(best - ncs.data());
  result.nc = best->nc;
  result.eval = best->eval;
  result.learned = learned_per[best_idx];
  result.cls = classify(result.eval, config_.rank);
  return result;
}

HoihoResult Hoiho::run_instrumented(const topo::Topology& topo,
                                    const measure::Measurements& meas, obs::Registry* registry,
                                    obs::Tracer* tracer) const {
  std::optional<PipelineMetrics> metrics;
  if (registry != nullptr) metrics.emplace(*registry);
  PipelineMetrics* pm = metrics ? &*metrics : nullptr;

  obs::Span run_span(tracer, "run");
  const std::vector<topo::SuffixGroup> groups = topo.group_by_suffix();
  run_span.set_work(groups.size());
  std::vector<SuffixResult> slots(groups.size());

  if (pm != nullptr && config_.consistency_cache) {
    // Build the shared grid up front (the workers would race to the same
    // build anyway) so its size is on record even for an empty topology.
    if (const auto grid = expected_rtt_grid(meas))
      pm->grid_cells.set(static_cast<std::int64_t>(grid->location_count() * grid->vp_count()));
  }

  std::size_t threads = util::ThreadPool::resolve(config_.threads);
  if (!groups.empty()) threads = std::min(threads, groups.size());
  // Never oversubscribe: suffix learning is CPU-bound, so workers beyond the
  // core count only add preemption (measurably pessimizing small corpora —
  // the seed bench's cached_4t used to lose to cached_1t on 1-core hosts).
  // Output is threads-invariant, so the clamp is unobservable in results.
  threads = std::min(threads, util::ThreadPool::resolve(0));
  if (threads <= 1) {
    for (std::size_t i = 0; i < groups.size(); ++i)
      slots[i] = run_suffix_instrumented(groups[i], meas, pm, tracer);
  } else {
    // Suffix runs are independent: each reads only the shared const inputs
    // (dictionary, topology, measurements) and writes its own slot. Results
    // land by group index, so output order matches the sequential path.
    //
    // Suffix sizes are heavily skewed (one consumer ISP next to dozens of
    // small operators), so the batch is seeded cost-descending into a
    // work-stealing pool: every worker starts on one of the k largest
    // suffixes, and whoever drains first steals the smallest remaining task
    // from a neighbour instead of idling.
    util::WorkStealingPool pool(threads);
    if (pm != nullptr) pool.set_queue_wait_histogram(pm->pool_queue_wait_ns);
    std::vector<std::size_t> order(groups.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return groups[a].hostnames.size() > groups[b].hostnames.size();
    });
    std::vector<std::function<void()>> tasks;
    tasks.reserve(order.size());
    for (std::size_t idx : order)
      tasks.push_back([this, &slots, &groups, &meas, pm, tracer, idx] {
        slots[idx] = run_suffix_instrumented(groups[idx], meas, pm, tracer);
      });
    pool.seed(std::move(tasks));
    pool.wait_idle();
    if (pm != nullptr) pm->fold_pool(pool.stats());
  }
  if (pm != nullptr) {
    pm->peak_rss_bytes.set(
        std::max(pm->peak_rss_bytes.load(), static_cast<std::int64_t>(util::peak_rss_bytes())));
  }

  HoihoResult result;
  for (SuffixResult& sr : slots)
    if (sr.hostname_count > 0) result.suffixes.push_back(std::move(sr));
  return result;
}

namespace {

// Fingerprints every config knob that changes learned output
// (learn_signature, shared with incremental relearning) plus the stream
// identity, so a checkpoint written under one config/world never resumes
// under another. Output-invariant knobs (threads, caches, compiled_regex,
// observability pointers) are excluded by learn_signature.
std::uint64_t checkpoint_signature(const HoihoConfig& c, const io::SuffixStream& stream,
                                   std::size_t dict_size) {
  io::StreamSignature sig;
  sig.mix(learn_signature(c, dict_size)).mix(stream.signature());
  return sig.value();
}

}  // namespace

HoihoResult Hoiho::run_stream_instrumented(io::SuffixStream& stream, obs::Registry* registry,
                                           obs::Tracer* tracer) const {
  std::optional<PipelineMetrics> metrics;
  if (registry != nullptr) metrics.emplace(*registry);
  PipelineMetrics* pm = metrics ? &*metrics : nullptr;

  obs::Span run_span(tracer, "run_stream");

  // Per-hostname payloads point into the batch that owns the hostnames;
  // strip them before the batch dies so streamed results are both safe and
  // small (aggregate counts, the NC, learned hints, and the class survive).
  const auto compact = [](SuffixResult& sr) {
    std::vector<TaggedHostname>().swap(sr.tagged);
    std::vector<HostnameEval>().swap(sr.eval.per_hostname);
  };

  // Same no-oversubscription clamp as run_instrumented.
  const std::size_t threads =
      std::min(util::ThreadPool::resolve(config_.threads), util::ThreadPool::resolve(0));
  std::optional<util::WorkStealingPool> pool;
  if (threads > 1) {
    pool.emplace(threads);
    if (pm != nullptr) pool->set_queue_wait_histogram(pm->pool_queue_wait_ns);
  }

  HoihoResult result;

  // Durability (DESIGN.md §14): commit every batch's compacted results to a
  // WAL + manifest, and resume after the last committed batch when the
  // directory already holds a checkpoint for this exact config and stream.
  std::optional<io::Checkpoint> ckpt;
  std::size_t skip_batches = 0;
  if (!config_.checkpoint_dir.empty()) {
    ckpt.emplace(config_.checkpoint_dir, checkpoint_signature(config_, stream, dict_.size()),
                 dict_);
    io::Checkpoint::Resume resume = ckpt->open();
    if (pm != nullptr) {
      if (resume.discarded) pm->checkpoint_discarded.inc();
      pm->checkpoint_batches_resumed.add(resume.batches);
      pm->checkpoint_results_resumed.add(resume.results.size());
    }
    skip_batches = resume.batches;
    result.suffixes = std::move(resume.results);
  }

  std::size_t total_suffixes = 0;
  bool truncated = false;  // a commit failure cut the run short mid-stream
  std::optional<io::SuffixBatch> batch = stream.next_batch();
  // Replay the stream past already-committed batches: the stream is
  // deterministic (signature-checked), so batch k regenerated now is the
  // batch k whose results the WAL already holds.
  while (skip_batches > 0 && batch) {
    --skip_batches;
    batch = stream.next_batch();
  }
  while (batch) {
    const std::vector<topo::SuffixGroup>& groups = batch->groups;
    const measure::Measurements& meas = batch->pings;
    total_suffixes += groups.size();
    std::vector<SuffixResult> slots(groups.size());

    if (pm != nullptr && config_.consistency_cache) {
      // Every batch shares the campaign VP set, so this builds once and the
      // grid cache serves every later batch.
      if (const auto grid = expected_rtt_grid(meas))
        pm->grid_cells.set(static_cast<std::int64_t>(grid->location_count() * grid->vp_count()));
    }

    std::optional<io::SuffixBatch> next;
    if (!pool) {
      for (std::size_t i = 0; i < groups.size(); ++i)
        slots[i] = run_suffix_instrumented(groups[i], meas, pm, tracer);
      next = stream.next_batch();
    } else {
      // Same cost-descending seeding as run(); results land by slot index,
      // so stream order (and threads=1 equivalence) is preserved.
      std::vector<std::size_t> order(groups.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return groups[a].hostnames.size() > groups[b].hostnames.size();
      });
      std::vector<std::function<void()>> tasks;
      tasks.reserve(order.size());
      for (std::size_t idx : order)
        tasks.push_back([this, &slots, &groups, &meas, pm, tracer, idx] {
          slots[idx] = run_suffix_instrumented(groups[idx], meas, pm, tracer);
        });
      pool->seed(std::move(tasks));
      // Double buffering: the main thread renders batch k+1 while the
      // workers learn batch k. The stream is only ever touched from this
      // thread; the workers only touch the current batch.
      next = stream.next_batch();
      if (config_.worker_stall_ms > 0) {
        // Watchdog: surface workers stuck on one suffix (one episode per
        // task) instead of blocking silently.
        while (!pool->wait_idle_for(std::chrono::milliseconds(config_.worker_stall_ms))) {
          const std::size_t stalled =
              pool->scan_stalled(static_cast<std::uint64_t>(config_.worker_stall_ms));
          if (pm != nullptr) pm->pool_worker_stalled.add(stalled);
        }
      } else {
        pool->wait_idle();
      }
    }

    const std::size_t batch_begin = result.suffixes.size();
    for (SuffixResult& sr : slots) {
      if (sr.hostname_count == 0) continue;
      compact(sr);
      result.suffixes.push_back(std::move(sr));
    }
    if (ckpt) {
      std::string err;
      if (ckpt->commit_batch(
              std::span<const SuffixResult>(result.suffixes).subspan(batch_begin), &err)) {
        if (pm != nullptr) pm->checkpoint_batches_committed.inc();
      } else {
        // Durability-first: drop the uncommitted batch and stop — exactly
        // the state a crash at this boundary leaves, so a rerun resumes
        // here and relearns only this batch.
        if (pm != nullptr) pm->checkpoint_commit_failures.inc();
        result.suffixes.resize(batch_begin);
        truncated = true;
        break;
      }
    }
    if (pm != nullptr) {
      pm->stream_batches.inc();
      pm->peak_rss_bytes.set(
          std::max(pm->peak_rss_bytes.load(), static_cast<std::int64_t>(util::peak_rss_bytes())));
    }
    batch = std::move(next);
  }
  run_span.set_work(total_suffixes);

  // Emit the serving model straight from the learner (extension picks the
  // format, ".ncb" → binary) — no convert step between learning and
  // serving. A truncated run holds a prefix of the stream, not the model
  // the caller asked for, so it does not overwrite a previous good file.
  if (!config_.model_out.empty() && !truncated) {
    std::vector<StoredConvention> stored;
    stored.reserve(result.suffixes.size());
    for (const SuffixResult& sr : result.suffixes)
      if (sr.has_nc()) stored.push_back(StoredConvention{sr.nc, sr.cls});
    // Canonical (suffix-sorted) order: what makes delta application
    // byte-identical to a from-scratch save (core/delta.h).
    sort_conventions(stored);
    std::string err;
    if (!save_model_to_file(config_.model_out, stored, dict_, &err)) {
      if (pm != nullptr) pm->model_save_failures.inc();
    }
  }

  if (pool && pm != nullptr) pm->fold_pool(pool->stats());
  if (registry != nullptr) stream.report().publish(*registry, "stream");
  return result;
}

DeltaRunReport Hoiho::run_delta(const WorldDelta& world, const PriorRun& prior) const {
  DeltaRunReport report;
  std::optional<PipelineMetrics> metrics;
  if (config_.registry != nullptr) metrics.emplace(*config_.registry);
  PipelineMetrics* pm = metrics ? &*metrics : nullptr;
  obs::Tracer* tracer = config_.tracer;

  obs::Span run_span(tracer, "run_delta");
  const std::vector<topo::SuffixGroup>& groups = world.changed.groups;
  const measure::Measurements& meas = world.changed.pings;
  run_span.set_work(groups.size());

  // Compatibility gates: a prior run under a different learner config or a
  // different VP campaign cannot seed reuse — the expected-RTT geometry
  // moved under every suffix, so the caller must fall back to a full run.
  const std::uint64_t sig = learn_signature(config_, dict_.size());
  if (prior.learn_sig != 0 && prior.learn_sig != sig) {
    report.error = "prior run learner-config signature mismatch (full relearn required)";
    return report;
  }
  if (!groups.empty() && prior.vp_hash != 0 &&
      vp_set_hash(meas.vps) != prior.vp_hash) {
    report.error = "vantage-point set changed since the prior run (full relearn required)";
    return report;
  }
  {
    std::unordered_set<std::string_view> removed(world.removed.begin(), world.removed.end());
    for (const topo::SuffixGroup& g : groups)
      if (removed.contains(g.suffix)) {
        report.error = "suffix '" + g.suffix + "' both changed and removed";
        return report;
      }
  }

  // Diff: fingerprint every incoming group; an unchanged fingerprint means
  // the prior result (and all its ConsistencyCache/eval work) is reused
  // verbatim. A prior fingerprint of 0 (pre-fingerprint checkpoint) never
  // matches — unknown content is always dirty.
  std::vector<std::size_t> dirty_idx;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const std::uint64_t fp = suffix_fingerprint(groups[i], meas);
    const SuffixResult* prev = prior.find(groups[i].suffix);
    if (prev != nullptr && prev->fingerprint != 0 && prev->fingerprint == fp)
      ++report.reused;
    else
      dirty_idx.push_back(i);
  }

  // Relearn only the dirty suffixes — same clamp and cost-descending
  // work-stealing seeding as run(); the shared expected-RTT grid memo
  // serves every rerun.
  const auto t_relearn = std::chrono::steady_clock::now();
  std::vector<SuffixResult> fresh(dirty_idx.size());
  if (!dirty_idx.empty()) {
    if (pm != nullptr && config_.consistency_cache) {
      if (const auto grid = expected_rtt_grid(meas))
        pm->grid_cells.set(static_cast<std::int64_t>(grid->location_count() * grid->vp_count()));
    }
    std::size_t threads = util::ThreadPool::resolve(config_.threads);
    threads = std::min(threads, dirty_idx.size());
    threads = std::min(threads, util::ThreadPool::resolve(0));
    if (threads <= 1) {
      for (std::size_t k = 0; k < dirty_idx.size(); ++k)
        fresh[k] = run_suffix_instrumented(groups[dirty_idx[k]], meas, pm, tracer);
    } else {
      util::WorkStealingPool pool(threads);
      if (pm != nullptr) pool.set_queue_wait_histogram(pm->pool_queue_wait_ns);
      std::vector<std::size_t> order(dirty_idx.size());
      for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
      std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return groups[dirty_idx[a]].hostnames.size() > groups[dirty_idx[b]].hostnames.size();
      });
      std::vector<std::function<void()>> tasks;
      tasks.reserve(order.size());
      for (std::size_t k : order)
        tasks.push_back([this, &fresh, &groups, &dirty_idx, &meas, pm, tracer, k] {
          fresh[k] = run_suffix_instrumented(groups[dirty_idx[k]], meas, pm, tracer);
        });
      pool.seed(std::move(tasks));
      pool.wait_idle();
      if (pm != nullptr) pm->fold_pool(pool.stats());
    }
  }
  report.dirty = dirty_idx.size();
  report.relearn_wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t_relearn)
          .count();

  // Merge: prior order with dirty results swapped in and removals dropped;
  // brand-new suffixes append in group order. Fresh results are compacted
  // like run_stream's so chained PriorRuns stay bounded.
  const auto compact = [](SuffixResult& sr) {
    std::vector<TaggedHostname>().swap(sr.tagged);
    std::vector<HostnameEval>().swap(sr.eval.per_hostname);
  };
  std::unordered_set<std::string_view> removed_set(world.removed.begin(), world.removed.end());
  std::unordered_map<std::string_view, std::size_t> fresh_by_suffix;
  fresh_by_suffix.reserve(fresh.size());
  for (std::size_t k = 0; k < fresh.size(); ++k)
    fresh_by_suffix[groups[dirty_idx[k]].suffix] = k;

  report.delta.base_generation = prior.generation;
  std::vector<char> fresh_used(fresh.size(), 0);
  report.result.suffixes.reserve(prior.results.size() + groups.size());
  for (const SuffixResult& prev : prior.results) {
    if (removed_set.contains(prev.suffix)) {
      ++report.removed;
      if (prev.has_nc()) report.delta.removes.push_back(prev.suffix);
      continue;
    }
    const auto fit = fresh_by_suffix.find(prev.suffix);
    if (fit != fresh_by_suffix.end()) {
      SuffixResult& nr = fresh[fit->second];
      fresh_used[fit->second] = 1;
      if (nr.hostname_count == 0) {  // run() drops empty groups; so does the merge
        ++report.removed;
        if (prev.has_nc()) report.delta.removes.push_back(prev.suffix);
        continue;
      }
      if (nr.has_nc())
        report.delta.upserts.push_back(StoredConvention{nr.nc, nr.cls});
      else if (prev.has_nc())
        report.delta.removes.push_back(prev.suffix);  // lost its convention
      compact(nr);
      report.result.suffixes.push_back(std::move(nr));
      continue;
    }
    report.result.suffixes.push_back(prev);  // untouched or fingerprint-reused
  }
  for (std::size_t k = 0; k < fresh.size(); ++k) {
    if (fresh_used[k]) continue;
    SuffixResult& nr = fresh[k];
    if (nr.hostname_count == 0) continue;
    ++report.added;
    if (nr.has_nc()) report.delta.upserts.push_back(StoredConvention{nr.nc, nr.cls});
    compact(nr);
    report.result.suffixes.push_back(std::move(nr));
  }
  // Canonical order (core/delta.h): merge-by-suffix application stays
  // byte-identical to a from-scratch save.
  sort_conventions(report.delta.upserts);
  std::sort(report.delta.removes.begin(), report.delta.removes.end());

  if (pm != nullptr) {
    pm->delta_dirty.add(report.dirty);
    pm->delta_reused.add(report.reused);
    pm->delta_added.add(report.added);
    pm->delta_removed.add(report.removed);
    pm->delta_relearn_us.add(static_cast<std::uint64_t>(report.relearn_wall_ms * 1e3));
    pm->peak_rss_bytes.set(
        std::max(pm->peak_rss_bytes.load(), static_cast<std::int64_t>(util::peak_rss_bytes())));
  }
  return report;
}

HoihoResult Hoiho::run(const topo::Topology& topo, const measure::Measurements& meas) const {
  return run_instrumented(topo, meas, config_.registry, config_.tracer);
}

HoihoResult Hoiho::run_stream(io::SuffixStream& stream) const {
  return run_stream_instrumented(stream, config_.registry, config_.tracer);
}

RunReport Hoiho::run_stream_report(io::SuffixStream& stream) const {
  std::optional<obs::Registry> own_registry;
  std::optional<obs::Tracer> own_tracer;
  obs::Registry* registry = config_.registry;
  obs::Tracer* tracer = config_.tracer;
  if (registry == nullptr) registry = &own_registry.emplace();
  if (tracer == nullptr) tracer = &own_tracer.emplace();

  RunReport report;
  report.result = run_stream_instrumented(stream, registry, tracer);
  report.metrics = registry->snapshot();
  report.spans = tracer->spans();
  report.dropped_spans = tracer->dropped();
  return report;
}

RunReport Hoiho::run_report(const topo::Topology& topo,
                            const measure::Measurements& meas) const {
  // Private sinks when the config doesn't supply shared ones, so the report
  // is self-contained either way.
  std::optional<obs::Registry> own_registry;
  std::optional<obs::Tracer> own_tracer;
  obs::Registry* registry = config_.registry;
  obs::Tracer* tracer = config_.tracer;
  if (registry == nullptr) registry = &own_registry.emplace();
  if (tracer == nullptr) tracer = &own_tracer.emplace();

  RunReport report;
  report.result = run_instrumented(topo, meas, registry, tracer);
  report.metrics = registry->snapshot();
  report.spans = tracer->spans();
  report.dropped_spans = tracer->dropped();
  return report;
}

}  // namespace hoiho::core
