#include "core/hoiho.h"

#include <algorithm>

#include "util/thread_pool.h"

namespace hoiho::core {

std::size_t HoihoResult::geolocated_router_count() const {
  std::vector<topo::RouterId> routers;
  for (const SuffixResult& sr : suffixes) {
    if (!sr.usable()) continue;
    for (std::size_t i = 0; i < sr.eval.per_hostname.size(); ++i) {
      if (sr.eval.per_hostname[i].outcome == Outcome::kTP)
        routers.push_back(sr.tagged[i].ref.router);
    }
  }
  std::sort(routers.begin(), routers.end());
  routers.erase(std::unique(routers.begin(), routers.end()), routers.end());
  return routers.size();
}

std::size_t HoihoResult::count(NcClass c) const {
  std::size_t n = 0;
  for (const SuffixResult& sr : suffixes)
    if (sr.has_nc() && sr.cls == c) ++n;
  return n;
}

SuffixResult Hoiho::run_suffix(const topo::SuffixGroup& group,
                               const measure::Measurements& meas) const {
  if (!config_.consistency_cache) return run_suffix_impl(group, meas, nullptr);
  // One cache per suffix run, shared by stages 2-4. The cache is used from
  // this thread only; cross-suffix parallelism in run() gives each worker
  // its own cache.
  measure::ConsistencyCache cache(meas, dict_.size(), config_.apparent.slack_ms);
  SuffixResult result = run_suffix_impl(group, meas, &cache);
  result.cache_stats = cache.stats();
  return result;
}

SuffixResult Hoiho::run_suffix_impl(const topo::SuffixGroup& group,
                                    const measure::Measurements& meas,
                                    measure::ConsistencyCache* cache) const {
  SuffixResult result;
  result.suffix = group.suffix;
  result.hostname_count = group.hostnames.size();

  // Stage 2: tag apparent geohints.
  const ApparentTagger tagger(dict_, meas, config_.apparent, cache);
  result.tagged = tagger.tag_all(group.hostnames);
  for (const TaggedHostname& th : result.tagged)
    if (th.has_hint()) ++result.tagged_count;
  if (result.tagged_count < config_.min_tagged_hostnames) return result;

  const Evaluator evaluator(dict_, meas, config_.apparent.slack_ms, cache);

  // Stage 3 phase 1: base regexes, seeded from a bounded prefix of the
  // tagged hostnames.
  const RegexGenerator generator(config_.gen);
  std::vector<TaggedHostname> seeds;
  for (const TaggedHostname& th : result.tagged) {
    if (!th.has_hint()) continue;
    seeds.push_back(th);
    if (seeds.size() >= config_.max_seed_hostnames) break;
  }
  std::vector<GeoRegex> candidates = generator.generate_base(seeds);
  if (candidates.empty()) return result;

  // Rank base candidates by ATP and prune.
  {
    struct Ranked {
      GeoRegex gr;
      long atp;
    };
    std::vector<Ranked> ranked;
    ranked.reserve(candidates.size());
    for (GeoRegex& gr : candidates) {
      NamingConvention nc;
      nc.suffix = group.suffix;
      nc.regexes.push_back(gr);
      const NcEvaluation ev = evaluator.evaluate(nc, result.tagged);
      if (ev.counts.tp == 0) continue;
      ranked.push_back(Ranked{std::move(gr), ev.counts.atp()});
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const Ranked& a, const Ranked& b) { return a.atp > b.atp; });
    if (ranked.size() > config_.max_candidates) ranked.resize(config_.max_candidates);
    candidates.clear();
    for (Ranked& r : ranked) candidates.push_back(std::move(r.gr));
  }
  if (candidates.empty()) return result;

  // Stage 3 phase 2: merge similar regexes.
  {
    const std::vector<GeoRegex> merged = generator.merge(candidates);
    candidates.insert(candidates.end(), merged.begin(), merged.end());
  }
  // Stage 3 phase 3: embed character classes.
  {
    std::vector<GeoRegex> refined;
    for (const GeoRegex& gr : candidates) {
      if (auto r = generator.embed_classes(gr, result.tagged)) refined.push_back(std::move(*r));
    }
    candidates.insert(candidates.end(), refined.begin(), refined.end());
  }
  dedup_regexes(candidates);

  // Stage 3 phase 4: build candidate NCs.
  const NcBuilder builder(evaluator, config_.sets);
  std::vector<NcBuilder::Candidate> ncs = builder.build(group.suffix, std::move(candidates),
                                                        result.tagged);
  if (ncs.empty()) return result;

  // Stage 4: learn operator geohints for the top candidates, then
  // re-evaluate them (learning can reorder the ranking).
  std::vector<std::vector<LearnedHint>> learned_per(ncs.size());
  if (config_.enable_learning) {
    const GeohintLearner learner(evaluator, config_.learn);
    const std::size_t n = std::min(ncs.size(), config_.learn_top_n);
    for (std::size_t i = 0; i < n; ++i) {
      learned_per[i] = learner.learn(ncs[i].nc, result.tagged, ncs[i].eval);
      if (!learned_per[i].empty()) ncs[i].eval = evaluator.evaluate(ncs[i].nc, result.tagged);
    }
    std::vector<std::size_t> order(ncs.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return ncs[a].eval.counts.atp() > ncs[b].eval.counts.atp();
    });
    std::vector<NcBuilder::Candidate> ncs2;
    std::vector<std::vector<LearnedHint>> learned2;
    for (std::size_t idx : order) {
      ncs2.push_back(std::move(ncs[idx]));
      learned2.push_back(std::move(learned_per[idx]));
    }
    ncs = std::move(ncs2);
    learned_per = std::move(learned2);
  }

  // Stage 5: select and classify.
  const NcBuilder::Candidate* best = select_best(ncs, config_.rank);
  if (best == nullptr) return result;
  const std::size_t best_idx = static_cast<std::size_t>(best - ncs.data());
  result.nc = best->nc;
  result.eval = best->eval;
  result.learned = learned_per[best_idx];
  result.cls = classify(result.eval, config_.rank);
  return result;
}

HoihoResult Hoiho::run(const topo::Topology& topo, const measure::Measurements& meas) const {
  const std::vector<topo::SuffixGroup> groups = topo.group_by_suffix();
  std::vector<SuffixResult> slots(groups.size());

  std::size_t threads = util::ThreadPool::resolve(config_.threads);
  if (!groups.empty()) threads = std::min(threads, groups.size());
  if (threads <= 1) {
    for (std::size_t i = 0; i < groups.size(); ++i) slots[i] = run_suffix(groups[i], meas);
  } else {
    // Suffix runs are independent: each reads only the shared const inputs
    // (dictionary, topology, measurements) and writes its own slot. Results
    // land by group index, so output order matches the sequential path.
    util::ThreadPool pool(threads);
    for (std::size_t i = 0; i < groups.size(); ++i)
      pool.submit([this, &slots, &groups, &meas, i] { slots[i] = run_suffix(groups[i], meas); });
    pool.wait_idle();
  }

  HoihoResult result;
  for (SuffixResult& sr : slots)
    if (sr.hostname_count > 0) result.suffixes.push_back(std::move(sr));
  return result;
}

}  // namespace hoiho::core
