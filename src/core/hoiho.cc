#include "core/hoiho.h"

#include <algorithm>
#include <chrono>

#include "util/thread_pool.h"

namespace hoiho::core {

std::size_t HoihoResult::geolocated_router_count() const {
  std::vector<topo::RouterId> routers;
  for (const SuffixResult& sr : suffixes) {
    if (!sr.usable()) continue;
    for (std::size_t i = 0; i < sr.eval.per_hostname.size(); ++i) {
      if (sr.eval.per_hostname[i].outcome == Outcome::kTP)
        routers.push_back(sr.tagged[i].ref.router);
    }
  }
  std::sort(routers.begin(), routers.end());
  routers.erase(std::unique(routers.begin(), routers.end()), routers.end());
  return routers.size();
}

std::size_t HoihoResult::count(NcClass c) const {
  std::size_t n = 0;
  for (const SuffixResult& sr : suffixes)
    if (sr.has_nc() && sr.cls == c) ++n;
  return n;
}

std::shared_ptr<const measure::ExpectedRttGrid> Hoiho::expected_rtt_grid(
    const measure::Measurements& meas) const {
  // Cap the eager build: a 10k-location CSV dictionary against 1k VPs would
  // be 10M haversines and 80 MB up front; the lazy per-cache memo handles
  // that regime fine.
  constexpr std::size_t kMaxGridCells = 4u << 20;
  if (!config_.expected_rtt_grid || meas.vps.empty() ||
      dict_.size() * meas.vps.size() > kMaxGridCells) {
    return nullptr;
  }
  GridCache& gc = *grid_cache_;
  const std::scoped_lock lock(gc.mu);
  const auto same_vps = [&] {
    if (gc.vp_coords.size() != meas.vps.size()) return false;
    for (std::size_t i = 0; i < gc.vp_coords.size(); ++i)
      if (!(gc.vp_coords[i] == meas.vps[i].coord)) return false;
    return true;
  };
  if (gc.grid == nullptr || !same_vps()) {
    std::vector<geo::Coordinate> coords(dict_.size());
    for (std::size_t id = 0; id < coords.size(); ++id)
      coords[id] = dict_.location(static_cast<geo::LocationId>(id)).coord;
    gc.grid = std::make_shared<measure::ExpectedRttGrid>(coords, meas.vps);
    gc.vp_coords.clear();
    for (const measure::VantagePoint& vp : meas.vps) gc.vp_coords.push_back(vp.coord);
  }
  return gc.grid;
}

SuffixResult Hoiho::run_suffix(const topo::SuffixGroup& group,
                               const measure::Measurements& meas) const {
  if (!config_.consistency_cache) return run_suffix_impl(group, meas, nullptr);
  // One cache per suffix run, shared by stages 2-4. The cache is used from
  // this thread only; cross-suffix parallelism in run() gives each worker
  // its own cache. The expected-RTT grid behind it IS shared across workers
  // (immutable once built).
  const std::shared_ptr<const measure::ExpectedRttGrid> grid = expected_rtt_grid(meas);
  measure::ConsistencyCache cache(meas, dict_.size(), config_.apparent.slack_ms,
                                  /*prefilter=*/true, grid.get());
  SuffixResult result = run_suffix_impl(group, meas, &cache);
  result.cache_stats = cache.stats();
  return result;
}

namespace {

// Accumulates wall time into a StageTimes field across interleaved stages.
class Stopwatch {
 public:
  explicit Stopwatch(double& sink) : sink_(sink), t0_(std::chrono::steady_clock::now()) {}
  ~Stopwatch() {
    sink_ += std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0_)
                 .count();
  }

 private:
  double& sink_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace

SuffixResult Hoiho::run_suffix_impl(const topo::SuffixGroup& group,
                                    const measure::Measurements& meas,
                                    measure::ConsistencyCache* cache) const {
  SuffixResult result;
  result.suffix = group.suffix;
  result.hostname_count = group.hostnames.size();

  // Stage 2: tag apparent geohints.
  {
    const Stopwatch sw(result.stage_ms.tag_ms);
    const ApparentTagger tagger(dict_, meas, config_.apparent, cache);
    result.tagged = tagger.tag_all(group.hostnames);
  }
  for (const TaggedHostname& th : result.tagged)
    if (th.has_hint()) ++result.tagged_count;
  if (result.tagged_count < config_.min_tagged_hostnames) return result;

  Evaluator evaluator(dict_, meas, config_.apparent.slack_ms, cache);
  evaluator.set_use_compiled(config_.compiled_regex);

  // Stage 3 phase 1: base regexes, seeded from a bounded prefix of the
  // tagged hostnames.
  GenConfig gen_config = config_.gen;
  gen_config.compiled_matcher = config_.compiled_regex;
  const RegexGenerator generator(gen_config);
  std::vector<GeoRegex> candidates;
  {
    const Stopwatch sw(result.stage_ms.regex_ms);
    std::vector<TaggedHostname> seeds;
    for (const TaggedHostname& th : result.tagged) {
      if (!th.has_hint()) continue;
      seeds.push_back(th);
      if (seeds.size() >= config_.max_seed_hostnames) break;
    }
    candidates = generator.generate_base(seeds);
  }
  if (candidates.empty()) return result;

  // Rank base candidates by ATP and prune — the whole set is scored in one
  // SetMatcher pass per hostname. The survivors' evaluations are kept and
  // handed to the NC builder, which then only scores the regexes that
  // merge/embed add below them.
  std::vector<NcEvaluation> base_evals;
  {
    const Stopwatch sw(result.stage_ms.eval_ms);
    std::vector<NcEvaluation> evals = evaluator.evaluate_candidates(candidates, result.tagged);
    struct Ranked {
      GeoRegex gr;
      NcEvaluation eval;
    };
    std::vector<Ranked> ranked;
    ranked.reserve(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (evals[i].counts.tp == 0) continue;
      ranked.push_back(Ranked{std::move(candidates[i]), std::move(evals[i])});
    }
    std::stable_sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
      return a.eval.counts.atp() > b.eval.counts.atp();
    });
    if (ranked.size() > config_.max_candidates) ranked.resize(config_.max_candidates);
    candidates.clear();
    base_evals.reserve(ranked.size());
    for (Ranked& r : ranked) {
      candidates.push_back(std::move(r.gr));
      base_evals.push_back(std::move(r.eval));
    }
  }
  if (candidates.empty()) return result;

  {
    const Stopwatch sw(result.stage_ms.regex_ms);
    // Stage 3 phase 2: merge similar regexes.
    {
      const std::vector<GeoRegex> merged = generator.merge(candidates);
      candidates.insert(candidates.end(), merged.begin(), merged.end());
    }
    // Stage 3 phase 3: embed character classes.
    {
      std::vector<GeoRegex> refined;
      for (const GeoRegex& gr : candidates) {
        if (auto r = generator.embed_classes(gr, result.tagged)) refined.push_back(std::move(*r));
      }
      candidates.insert(candidates.end(), refined.begin(), refined.end());
    }
    dedup_regexes(candidates);
  }

  // Stage 3 phase 4: build candidate NCs.
  const NcBuilder builder(evaluator, config_.sets);
  std::vector<NcBuilder::Candidate> ncs;
  {
    const Stopwatch sw(result.stage_ms.eval_ms);
    // The pruned base regexes sit (deduplicated, in rank order) at the front
    // of `candidates`: merge/embed only append, and dedup keeps first
    // occurrences, so base_evals still lines up with the prefix.
    ncs = builder.build(group.suffix, std::move(candidates), result.tagged,
                        std::move(base_evals));
  }
  if (ncs.empty()) return result;

  // Stage 4: learn operator geohints for the top candidates, then
  // re-evaluate them (learning can reorder the ranking).
  std::vector<std::vector<LearnedHint>> learned_per(ncs.size());
  if (config_.enable_learning) {
    const Stopwatch sw(result.stage_ms.learn_ms);
    const GeohintLearner learner(evaluator, config_.learn);
    const std::size_t n = std::min(ncs.size(), config_.learn_top_n);
    for (std::size_t i = 0; i < n; ++i) {
      learned_per[i] = learner.learn(ncs[i].nc, result.tagged, ncs[i].eval);
      if (!learned_per[i].empty()) ncs[i].eval = evaluator.evaluate(ncs[i].nc, result.tagged);
    }
    std::vector<std::size_t> order(ncs.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return ncs[a].eval.counts.atp() > ncs[b].eval.counts.atp();
    });
    std::vector<NcBuilder::Candidate> ncs2;
    std::vector<std::vector<LearnedHint>> learned2;
    for (std::size_t idx : order) {
      ncs2.push_back(std::move(ncs[idx]));
      learned2.push_back(std::move(learned_per[idx]));
    }
    ncs = std::move(ncs2);
    learned_per = std::move(learned2);
  }

  // Stage 5: select and classify.
  const NcBuilder::Candidate* best = select_best(ncs, config_.rank);
  if (best == nullptr) return result;
  const std::size_t best_idx = static_cast<std::size_t>(best - ncs.data());
  result.nc = best->nc;
  result.eval = best->eval;
  result.learned = learned_per[best_idx];
  result.cls = classify(result.eval, config_.rank);
  return result;
}

HoihoResult Hoiho::run(const topo::Topology& topo, const measure::Measurements& meas) const {
  const std::vector<topo::SuffixGroup> groups = topo.group_by_suffix();
  std::vector<SuffixResult> slots(groups.size());

  std::size_t threads = util::ThreadPool::resolve(config_.threads);
  if (!groups.empty()) threads = std::min(threads, groups.size());
  if (threads <= 1) {
    for (std::size_t i = 0; i < groups.size(); ++i) slots[i] = run_suffix(groups[i], meas);
  } else {
    // Suffix runs are independent: each reads only the shared const inputs
    // (dictionary, topology, measurements) and writes its own slot. Results
    // land by group index, so output order matches the sequential path.
    util::ThreadPool pool(threads);
    for (std::size_t i = 0; i < groups.size(); ++i)
      pool.submit([this, &slots, &groups, &meas, i] { slots[i] = run_suffix(groups[i], meas); });
    pool.wait_idle();
  }

  HoihoResult result;
  for (SuffixResult& sr : slots)
    if (sr.hostname_count > 0) result.suffixes.push_back(std::move(sr));
  return result;
}

}  // namespace hoiho::core
