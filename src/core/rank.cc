#include "core/rank.h"

namespace hoiho::core {

NcClass classify(const NcEvaluation& evaluation, const RankConfig& config) {
  if (evaluation.unique_count() >= config.min_unique) {
    const double ppv = evaluation.counts.ppv();
    if (ppv + 1e-12 >= config.good_ppv) return NcClass::kGood;
    if (ppv + 1e-12 >= config.promising_ppv) return NcClass::kPromising;
  }
  return NcClass::kPoor;
}

const NcBuilder::Candidate* select_best(std::span<const NcBuilder::Candidate> candidates,
                                        const RankConfig& config) {
  if (candidates.empty()) return nullptr;
  const NcBuilder::Candidate* chosen = &candidates[0];
  for (const NcBuilder::Candidate& c : candidates.subspan(1)) {
    // Prefer a simpler NC that matches nearly as well as the current choice.
    if (c.nc.regexes.size() < chosen->nc.regexes.size() &&
        chosen->eval.counts.tp <= c.eval.counts.tp + config.tp_margin) {
      chosen = &c;
    }
  }
  return chosen;
}

}  // namespace hoiho::core
