#include "measure/consistency.h"

namespace hoiho::measure {

bool rtt_consistent(const RttMatrix& m, std::span<const VantagePoint> vps, topo::RouterId r,
                    const geo::Coordinate& loc, double slack_ms) {
  if (!loc.valid()) return false;
  for (VpId v = 0; v < vps.size(); ++v) {
    const auto measured = m.rtt(r, v);
    if (!measured) continue;
    if (geo::min_rtt_ms(loc, vps[v].coord) > *measured + slack_ms) return false;
  }
  return true;
}

std::optional<Violation> worst_violation(const RttMatrix& m, std::span<const VantagePoint> vps,
                                         topo::RouterId r, const geo::Coordinate& loc) {
  std::optional<Violation> worst;
  for (VpId v = 0; v < vps.size(); ++v) {
    const auto measured = m.rtt(r, v);
    if (!measured) continue;
    const double deficit = geo::min_rtt_ms(loc, vps[v].coord) - *measured;
    if (deficit > 0 && (!worst || deficit > worst->deficit_ms)) worst = Violation{v, deficit};
  }
  return worst;
}

}  // namespace hoiho::measure
