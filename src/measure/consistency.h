// RTT-consistency: the feasibility test at the heart of the method
// (paper §5.2).
//
// A candidate location for a router is RTT-consistent iff, for every vantage
// point with a measured RTT to that router, the theoretical best-case RTT
// from the candidate location to the VP (speed of light in fiber) does not
// exceed the measurement. A router with no samples is vacuously consistent —
// there is no constraint to violate.
#pragma once

#include <span>

#include "measure/rtt_matrix.h"

namespace hoiho::measure {

// True if `loc` is RTT-consistent for router `r` under `m`. `slack_ms`
// loosens each constraint (useful for sensitivity analyses; 0 in the paper).
bool rtt_consistent(const RttMatrix& m, std::span<const VantagePoint> vps, topo::RouterId r,
                    const geo::Coordinate& loc, double slack_ms = 0.0);

// Identifies the VP (if any) whose constraint `loc` violates the most, and
// by how many ms — diagnostic companion to rtt_consistent.
struct Violation {
  VpId vp = 0;
  double deficit_ms = 0;  // best_case - measured (positive = violated)
};
std::optional<Violation> worst_violation(const RttMatrix& m, std::span<const VantagePoint> vps,
                                         topo::RouterId r, const geo::Coordinate& loc);

}  // namespace hoiho::measure
