// File I/O for measurement campaigns, so real VP/RTT data can be fed to
// the learner without writing code (see examples/itdk_pipeline.cpp and the
// README's "Using real data" section).
//
// Format ('#' comments allowed):
//   V,<name>,<country>,<lat>,<lon>          one vantage point, in VP order
//   R,<router-id>,<vp-name>,<rtt-ms>        one minimum-RTT sample
// Router ids are the dense 0-based ids of the topology the samples belong
// to (the order of `node` lines in the ITDK nodes file).
//
// Measurement archives come off live probing infrastructure and routinely
// contain truncated or garbled rows. The io::LoadOptions overload supports
// lenient loading (skip + count per category in the io::LoadReport) so a
// handful of corrupt samples does not discard the campaign. Skip
// categories: oversized_line, bad_fields, bad_number, bad_coords,
// duplicate_vp, router_out_of_range, negative_rtt, unknown_vp,
// unknown_record.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "io/load_report.h"
#include "measure/rtt_matrix.h"

namespace hoiho::measure {

// Writes the VPs and every sample of `meas`.
void save_measurements(std::ostream& out, const Measurements& meas);

// Parses a measurement file for a topology with `router_count` routers.
// Strict mode fails with a named error in report->error on the first bad
// record; lenient mode skips and counts it. Repeated samples keep the
// minimum (RttMatrix semantics). opt.max_records caps accepted samples.
std::optional<Measurements> load_measurements(std::istream& in, std::size_t router_count,
                                              const io::LoadOptions& opt,
                                              io::LoadReport* report = nullptr);

// Strict-mode convenience wrapper (the original first-error-fatal API).
std::optional<Measurements> load_measurements(std::istream& in, std::size_t router_count,
                                              std::string* error = nullptr);

}  // namespace hoiho::measure
