// File I/O for measurement campaigns, so real VP/RTT data can be fed to
// the learner without writing code (see examples/itdk_pipeline.cpp and the
// README's "Using real data" section).
//
// Format ('#' comments allowed):
//   V,<name>,<country>,<lat>,<lon>          one vantage point, in VP order
//   R,<router-id>,<vp-name>,<rtt-ms>        one minimum-RTT sample
// Router ids are the dense 0-based ids of the topology the samples belong
// to (the order of `node` lines in the ITDK nodes file).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "measure/rtt_matrix.h"

namespace hoiho::measure {

// Writes the VPs and every sample of `meas`.
void save_measurements(std::ostream& out, const Measurements& meas);

// Parses a measurement file for a topology with `router_count` routers.
// Samples for unknown VPs or out-of-range routers are errors. Repeated
// samples keep the minimum (RttMatrix semantics).
std::optional<Measurements> load_measurements(std::istream& in, std::size_t router_count,
                                              std::string* error = nullptr);

}  // namespace hoiho::measure
