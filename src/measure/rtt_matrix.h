// RTT measurement substrate (paper §5.1.4).
//
// VantagePoints are probes with known locations (Ark monitors in the
// paper). The RttMatrix stores the minimum observed RTT for each
// (router, VP) pair; the learner only ever consumes these minima as
// speed-of-light distance constraints.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "geo/coord.h"
#include "geo/location.h"
#include "topo/topology.h"

namespace hoiho::measure {

using VpId = std::uint32_t;

struct VantagePoint {
  std::string name;       // conventionally an IATA-style code, e.g. "sjc"
  std::string country;    // ISO country code, for display ("sjc, us")
  geo::Coordinate coord;  // known location
};

// Dense router x VP matrix of minimum RTTs in milliseconds. Missing samples
// are encoded as a negative sentinel. Memory: 4 bytes per cell.
//
// Per-router summaries are SoA — parallel closest_rtt_ / closest_vp_ /
// sample_count_ arrays rather than a vector of structs — because the hot
// consumers stride over exactly one field at a time: the learner's
// consistency pass reads only minima, responsive_router_count() reads only
// counts. Packing them as pairs made every such sweep pull the unused field
// through cache (and padded the row to 8 bytes anyway).
class RttMatrix {
 public:
  RttMatrix(std::size_t routers, std::size_t vps)
      : vps_(vps),
        cells_(routers * vps, kNoSample),
        closest_rtt_(routers, kNoSample),
        closest_vp_(routers, 0),
        sample_count_(routers, 0) {}

  std::size_t router_count() const { return vps_ == 0 ? 0 : cells_.size() / vps_; }
  std::size_t vp_count() const { return vps_; }

  // Records a sample, keeping the minimum across calls.
  void record(topo::RouterId r, VpId v, double rtt_ms);

  // The minimum RTT for (r, v); nullopt if never measured.
  std::optional<double> rtt(topo::RouterId r, VpId v) const {
    const float x = cells_[index(r, v)];
    if (x < 0) return std::nullopt;
    return x;
  }

  // True if any VP has a sample for r. O(1).
  bool responsive(topo::RouterId r) const { return sample_count_[r] > 0; }

  // Number of VPs with a sample for r. O(1): maintained by record().
  std::size_t sample_count(topo::RouterId r) const { return sample_count_[r]; }

  // The VP with the smallest RTT to r, with that RTT; nullopt if none.
  // O(1): maintained incrementally by record() (ties keep the lowest VpId,
  // matching what a lowest-index-first scan would pick).
  std::optional<std::pair<VpId, double>> closest_vp(topo::RouterId r) const;

  // Number of routers with at least one sample.
  std::size_t responsive_router_count() const;

 private:
  static constexpr float kNoSample = -1.0f;

  std::size_t index(topo::RouterId r, VpId v) const {
    return static_cast<std::size_t>(r) * vps_ + v;
  }

  std::size_t vps_;
  std::vector<float> cells_;
  // Per-router SoA summaries (see class comment).
  std::vector<float> closest_rtt_;          // min RTT, kNoSample if unmeasured
  std::vector<VpId> closest_vp_;            // the VP behind closest_rtt_
  std::vector<std::uint32_t> sample_count_; // VPs with a sample
};

// A full measurement campaign: the VPs plus the matrix they produced.
struct Measurements {
  std::vector<VantagePoint> vps;
  RttMatrix pings;

  Measurements() : pings(0, 0) {}
  Measurements(std::vector<VantagePoint> v, std::size_t routers)
      : vps(std::move(v)), pings(routers, vps.size()) {}
};

}  // namespace hoiho::measure
