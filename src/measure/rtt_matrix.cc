#include "measure/rtt_matrix.h"

namespace hoiho::measure {

void RttMatrix::record(topo::RouterId r, VpId v, double rtt_ms) {
  float& cell = cells_[index(r, v)];
  const float x = static_cast<float>(rtt_ms);
  if (cell < 0) {
    ++sample_count_[r];
    cell = x;
  } else if (x < cell) {
    cell = x;
  }
  float& best = closest_rtt_[r];
  VpId& best_vp = closest_vp_[r];
  if (best < 0 || x < best || (x == best && v < best_vp)) {
    best = x;
    best_vp = v;
  }
}

std::optional<std::pair<VpId, double>> RttMatrix::closest_vp(topo::RouterId r) const {
  std::optional<std::pair<VpId, double>> best;
  if (closest_rtt_[r] >= 0) best = {closest_vp_[r], closest_rtt_[r]};
  return best;
}

std::size_t RttMatrix::responsive_router_count() const {
  std::size_t n = 0;
  for (const std::uint32_t c : sample_count_)
    if (c > 0) ++n;
  return n;
}

}  // namespace hoiho::measure
