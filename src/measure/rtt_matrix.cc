#include "measure/rtt_matrix.h"

namespace hoiho::measure {

void RttMatrix::record(topo::RouterId r, VpId v, double rtt_ms) {
  float& cell = cells_[index(r, v)];
  const float x = static_cast<float>(rtt_ms);
  if (cell < 0 || x < cell) cell = x;
  auto& [best, best_vp] = closest_[r];
  if (best < 0 || x < best || (x == best && v < best_vp)) {
    best = x;
    best_vp = v;
  }
}

bool RttMatrix::responsive(topo::RouterId r) const {
  for (VpId v = 0; v < vps_; ++v)
    if (cells_[index(r, v)] >= 0) return true;
  return false;
}

std::size_t RttMatrix::sample_count(topo::RouterId r) const {
  std::size_t n = 0;
  for (VpId v = 0; v < vps_; ++v)
    if (cells_[index(r, v)] >= 0) ++n;
  return n;
}

std::optional<std::pair<VpId, double>> RttMatrix::closest_vp(topo::RouterId r) const {
  std::optional<std::pair<VpId, double>> best;
  const auto& [min_rtt, min_vp] = closest_[r];
  if (min_rtt >= 0) best = {min_vp, min_rtt};
  return best;
}

std::size_t RttMatrix::responsive_router_count() const {
  std::size_t n = 0;
  for (topo::RouterId r = 0; r < router_count(); ++r)
    if (responsive(r)) ++n;
  return n;
}

}  // namespace hoiho::measure
