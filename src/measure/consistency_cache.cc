#include "measure/consistency_cache.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hoiho::measure {

ExpectedRttGrid::ExpectedRttGrid(std::span<const geo::Coordinate> coords,
                                 std::span<const VantagePoint> vps)
    : vp_count_(vps.size()) {
  rtts_.resize(coords.size() * vps.size(), std::numeric_limits<double>::quiet_NaN());
  double* out = rtts_.data();
  for (const geo::Coordinate& c : coords) {
    if (c.valid())
      for (const VantagePoint& vp : vps) *out++ = geo::min_rtt_ms(c, vp.coord);
    else
      out += vps.size();
  }
}

ConsistencyCache::ConsistencyCache(const Measurements& meas, std::size_t location_count,
                                   double slack_ms, bool prefilter, const ExpectedRttGrid* grid)
    : meas_(meas),
      slack_ms_(slack_ms),
      prefilter_(prefilter),
      location_count_(location_count),
      grid_(grid && grid->location_count() == location_count &&
                    grid->vp_count() == meas.vps.size()
                ? grid
                : nullptr),
      rows_(meas.pings.router_count()),
      bounds_(meas.pings.router_count()),
      loc_rtts_(grid_ ? 0 : location_count) {}

double ConsistencyCache::expected_rtt(geo::LocationId loc, const geo::Coordinate& coord,
                                      VpId v) {
  if (grid_) return grid_->at(loc, v);
  // Filled lazily, one cell at a time: a location rejected at its first
  // scanned VP pays exactly one haversine.
  std::vector<double>& rtts = loc_rtts_[loc];
  if (rtts.empty()) rtts.assign(meas_.vps.size(), std::numeric_limits<double>::quiet_NaN());
  double& x = rtts[v];
  if (std::isnan(x)) x = geo::min_rtt_ms(coord, meas_.vps[v].coord);
  return x;
}

ConsistencyCache::Verdict ConsistencyCache::cell(topo::RouterId r, geo::LocationId loc) const {
  const std::vector<std::uint8_t>& row = rows_[r];
  if (row.empty()) return kUnknown;
  return static_cast<Verdict>((row[loc / 4] >> ((loc % 4) * 2)) & 0x3u);
}

void ConsistencyCache::set_cell(topo::RouterId r, geo::LocationId loc, bool verdict) {
  std::vector<std::uint8_t>& row = rows_[r];
  if (row.empty()) row.resize((location_count_ + 3) / 4, 0);
  const std::uint8_t v = verdict ? kTrue : kFalse;
  std::uint8_t& byte = row[loc / 4];
  const unsigned shift = (loc % 4) * 2;
  byte = static_cast<std::uint8_t>((byte & ~(0x3u << shift)) | (v << shift));
}

const ConsistencyCache::RouterBound& ConsistencyCache::bound(topo::RouterId r) {
  RouterBound& b = bounds_[r];
  if (!b.computed) {
    b.computed = true;
    if (const auto closest = meas_.pings.closest_vp(r)) {
      b.constrained = true;
      b.vp = closest->first;
      b.budget_ms = closest->second + slack_ms_;
    }
  }
  return b;
}

bool ConsistencyCache::consistent(topo::RouterId r, geo::LocationId loc,
                                  const geo::Coordinate& coord, double slack_ms) {
  // A different slack, an out-of-range router (not covered by the matrix),
  // or an out-of-range location cannot use the table.
  if (slack_ms != slack_ms_ || r >= rows_.size() || loc >= location_count_) {
    ++stats_.bypasses;
    return rtt_consistent(meas_.pings, meas_.vps, r, coord, slack_ms);
  }

  const Verdict v = cell(r, loc);
  if (v != kUnknown) {
    ++stats_.hits;
    return v == kTrue;
  }

  ++stats_.misses;
  bool verdict;
  const RouterBound& b = prefilter_ ? bound(r) : bounds_[r];
  if (prefilter_ && b.constrained && coord.valid() &&
      expected_rtt(loc, coord, b.vp) > b.budget_ms) {
    // Same test rtt_consistent() would apply for the closest VP: reject on
    // one haversine instead of scanning every VP.
    verdict = false;
    ++stats_.prefilter_rejects;
  } else if (!coord.valid()) {
    verdict = false;
  } else {
    // rtt_consistent() with the per-location expected RTTs memoized: same
    // conjunction, same arithmetic, each (VP, location) haversine computed
    // at most once per cache lifetime.
    verdict = true;
    for (VpId v = 0; v < meas_.vps.size(); ++v) {
      const auto measured = meas_.pings.rtt(r, v);
      if (!measured) continue;
      if (expected_rtt(loc, coord, v) > *measured + slack_ms_) {
        verdict = false;
        break;
      }
    }
  }
  set_cell(r, loc, verdict);
  return verdict;
}

}  // namespace hoiho::measure
