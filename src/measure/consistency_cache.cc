#include "measure/consistency_cache.h"

namespace hoiho::measure {

ConsistencyCache::ConsistencyCache(const Measurements& meas, std::size_t location_count,
                                   double slack_ms, bool prefilter)
    : meas_(meas),
      slack_ms_(slack_ms),
      prefilter_(prefilter),
      location_count_(location_count),
      rows_(meas.pings.router_count()),
      bounds_(meas.pings.router_count()) {}

ConsistencyCache::Verdict ConsistencyCache::cell(topo::RouterId r, geo::LocationId loc) const {
  const std::vector<std::uint8_t>& row = rows_[r];
  if (row.empty()) return kUnknown;
  return static_cast<Verdict>((row[loc / 4] >> ((loc % 4) * 2)) & 0x3u);
}

void ConsistencyCache::set_cell(topo::RouterId r, geo::LocationId loc, bool verdict) {
  std::vector<std::uint8_t>& row = rows_[r];
  if (row.empty()) row.resize((location_count_ + 3) / 4, 0);
  const std::uint8_t v = verdict ? kTrue : kFalse;
  std::uint8_t& byte = row[loc / 4];
  const unsigned shift = (loc % 4) * 2;
  byte = static_cast<std::uint8_t>((byte & ~(0x3u << shift)) | (v << shift));
}

const ConsistencyCache::RouterBound& ConsistencyCache::bound(topo::RouterId r) {
  RouterBound& b = bounds_[r];
  if (!b.computed) {
    b.computed = true;
    if (const auto closest = meas_.pings.closest_vp(r)) {
      b.constrained = true;
      b.vp_coord = meas_.vps[closest->first].coord;
      b.budget_ms = closest->second + slack_ms_;
    }
  }
  return b;
}

bool ConsistencyCache::consistent(topo::RouterId r, geo::LocationId loc,
                                  const geo::Coordinate& coord, double slack_ms) {
  // A different slack, an out-of-range router (not covered by the matrix),
  // or an out-of-range location cannot use the table.
  if (slack_ms != slack_ms_ || r >= rows_.size() || loc >= location_count_) {
    ++stats_.bypasses;
    return rtt_consistent(meas_.pings, meas_.vps, r, coord, slack_ms);
  }

  const Verdict v = cell(r, loc);
  if (v != kUnknown) {
    ++stats_.hits;
    return v == kTrue;
  }

  ++stats_.misses;
  bool verdict;
  const RouterBound& b = prefilter_ ? bound(r) : bounds_[r];
  if (prefilter_ && b.constrained && coord.valid() &&
      geo::min_rtt_ms(coord, b.vp_coord) > b.budget_ms) {
    // Same test rtt_consistent() would apply for the closest VP: reject on
    // one haversine instead of scanning every VP.
    verdict = false;
    ++stats_.prefilter_rejects;
  } else {
    verdict = rtt_consistent(meas_.pings, meas_.vps, r, coord, slack_ms_);
  }
  set_cell(r, loc, verdict);
  return verdict;
}

}  // namespace hoiho::measure
