#include "measure/rtt_io.h"

#include <istream>
#include <ostream>
#include <unordered_map>

#include "util/csv.h"
#include "util/strings.h"

namespace hoiho::measure {

void save_measurements(std::ostream& out, const Measurements& meas) {
  out << "# hoiho-geo measurements v1\n";
  for (const VantagePoint& vp : meas.vps) {
    util::write_csv_row(out, {"V", vp.name, vp.country, util::fmt_double(vp.coord.lat, 4),
                              util::fmt_double(vp.coord.lon, 4)});
  }
  for (topo::RouterId r = 0; r < meas.pings.router_count(); ++r) {
    for (VpId v = 0; v < meas.pings.vp_count(); ++v) {
      const auto rtt = meas.pings.rtt(r, v);
      if (!rtt) continue;
      util::write_csv_row(out, {"R", std::to_string(r), meas.vps[v].name,
                                util::fmt_double(*rtt, 3)});
    }
  }
}

std::optional<Measurements> load_measurements(std::istream& in, std::size_t router_count,
                                              std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<Measurements> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };

  // Two passes over the stream are awkward for pipes, so buffer sample rows
  // until all VPs are known (VP rows conventionally come first, but the
  // format does not require it).
  std::vector<VantagePoint> vps;
  std::unordered_map<std::string, VpId> vp_index;
  struct Sample {
    topo::RouterId router;
    std::string vp;
    double rtt;
    std::size_t lineno;
  };
  std::vector<Sample> samples;

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    const util::CsvRow row = util::parse_csv_line(line);
    const std::string where = "line " + std::to_string(lineno);
    if (row.empty()) continue;
    if (row[0] == "V") {
      if (row.size() < 5) return fail(where + ": V record needs 5 fields");
      VantagePoint vp;
      vp.name = row[1];
      vp.country = row[2];
      vp.coord.lat = std::strtod(row[3].c_str(), nullptr);
      vp.coord.lon = std::strtod(row[4].c_str(), nullptr);
      if (!vp.coord.valid()) return fail(where + ": invalid coordinates");
      if (!vp_index.emplace(vp.name, static_cast<VpId>(vps.size())).second)
        return fail(where + ": duplicate VP name '" + vp.name + "'");
      vps.push_back(std::move(vp));
    } else if (row[0] == "R") {
      if (row.size() < 4) return fail(where + ": R record needs 4 fields");
      Sample s;
      s.router = static_cast<topo::RouterId>(std::strtoul(row[1].c_str(), nullptr, 10));
      s.vp = row[2];
      s.rtt = std::strtod(row[3].c_str(), nullptr);
      s.lineno = lineno;
      if (s.router >= router_count)
        return fail(where + ": router id " + row[1] + " out of range (topology has " +
                    std::to_string(router_count) + " routers)");
      if (s.rtt < 0) return fail(where + ": negative RTT");
      samples.push_back(std::move(s));
    } else {
      return fail(where + ": unknown record type '" + row[0] + "'");
    }
  }

  Measurements meas(std::move(vps), router_count);
  for (const Sample& s : samples) {
    const auto it = vp_index.find(s.vp);
    if (it == vp_index.end())
      return fail("line " + std::to_string(s.lineno) + ": unknown VP '" + s.vp + "'");
    meas.pings.record(s.router, it->second, s.rtt);
  }
  return meas;
}

}  // namespace hoiho::measure
