#include "measure/rtt_io.h"

#include <cstdlib>
#include <istream>
#include <ostream>
#include <unordered_map>

#include "util/csv.h"
#include "util/strings.h"

namespace hoiho::measure {

namespace {

// Full-token numeric parses: trailing junk ("12.5ms", "3x") marks a corrupt
// field rather than silently truncating to a prefix.
bool parse_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

bool parse_index(const std::string& s, std::size_t* out) {
  if (s.empty()) return false;
  for (const char c : s)
    if (c < '0' || c > '9') return false;
  char* end = nullptr;
  *out = static_cast<std::size_t>(std::strtoull(s.c_str(), &end, 10));
  return end == s.c_str() + s.size();
}

}  // namespace

void save_measurements(std::ostream& out, const Measurements& meas) {
  out << "# hoiho-geo measurements v1\n";
  for (const VantagePoint& vp : meas.vps) {
    util::write_csv_row(out, {"V", vp.name, vp.country, util::fmt_double(vp.coord.lat, 4),
                              util::fmt_double(vp.coord.lon, 4)});
  }
  for (topo::RouterId r = 0; r < meas.pings.router_count(); ++r) {
    for (VpId v = 0; v < meas.pings.vp_count(); ++v) {
      const auto rtt = meas.pings.rtt(r, v);
      if (!rtt) continue;
      util::write_csv_row(out, {"R", std::to_string(r), meas.vps[v].name,
                                util::fmt_double(*rtt, 3)});
    }
  }
}

std::optional<Measurements> load_measurements(std::istream& in, std::size_t router_count,
                                              const io::LoadOptions& opt,
                                              io::LoadReport* report) {
  io::LoadReport local;
  io::LoadReport& rep = report != nullptr ? *report : local;

  // Two passes over the stream are awkward for pipes, so buffer sample rows
  // until all VPs are known (VP rows conventionally come first, but the
  // format does not require it).
  std::vector<VantagePoint> vps;
  std::unordered_map<std::string, VpId> vp_index;
  struct Sample {
    topo::RouterId router;
    std::string vp;
    double rtt;
    std::size_t lineno;
  };
  std::vector<Sample> samples;

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    ++rep.lines;
    if (line.size() > opt.max_line_bytes) {
      if (!rep.skip(opt, "oversized_line", lineno,
                    "line exceeds " + std::to_string(opt.max_line_bytes) + " bytes"))
        return std::nullopt;
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    const util::CsvRow row = util::parse_csv_line(line);
    if (row.empty()) continue;
    if (row[0] == "V") {
      if (row.size() < 5) {
        if (!rep.skip(opt, "bad_fields", lineno, "V record needs 5 fields")) return std::nullopt;
        continue;
      }
      VantagePoint vp;
      vp.name = row[1];
      vp.country = row[2];
      if (!parse_double(row[3], &vp.coord.lat) || !parse_double(row[4], &vp.coord.lon)) {
        if (!rep.skip(opt, "bad_number", lineno, "non-numeric coordinates")) return std::nullopt;
        continue;
      }
      if (!vp.coord.valid()) {
        if (!rep.skip(opt, "bad_coords", lineno, "invalid coordinates")) return std::nullopt;
        continue;
      }
      if (vp.name.empty() || vp_index.count(vp.name) != 0) {
        if (!rep.skip(opt, "duplicate_vp", lineno,
                      vp.name.empty() ? "empty VP name"
                                      : "duplicate VP name '" + vp.name + "'"))
          return std::nullopt;
        continue;
      }
      vp_index.emplace(vp.name, static_cast<VpId>(vps.size()));
      vps.push_back(std::move(vp));
      ++rep.records;
    } else if (row[0] == "R") {
      if (row.size() < 4) {
        if (!rep.skip(opt, "bad_fields", lineno, "R record needs 4 fields")) return std::nullopt;
        continue;
      }
      Sample s;
      std::size_t router_idx = 0;
      if (!parse_index(row[1], &router_idx) || !parse_double(row[3], &s.rtt)) {
        if (!rep.skip(opt, "bad_number", lineno, "non-numeric router id or RTT"))
          return std::nullopt;
        continue;
      }
      if (router_idx >= router_count) {
        if (!rep.skip(opt, "router_out_of_range", lineno,
                      "router id " + row[1] + " out of range (topology has " +
                          std::to_string(router_count) + " routers)"))
          return std::nullopt;
        continue;
      }
      if (s.rtt < 0) {
        if (!rep.skip(opt, "negative_rtt", lineno, "negative RTT")) return std::nullopt;
        continue;
      }
      if (opt.max_records > 0 && samples.size() >= opt.max_records) {
        rep.fail("line " + std::to_string(lineno) + ": more than " +
                 std::to_string(opt.max_records) + " samples (record cap)");
        return std::nullopt;
      }
      s.router = static_cast<topo::RouterId>(router_idx);
      s.vp = row[2];
      s.lineno = lineno;
      samples.push_back(std::move(s));
      ++rep.records;
    } else {
      if (!rep.skip(opt, "unknown_record", lineno, "unknown record type '" + row[0] + "'"))
        return std::nullopt;
      continue;
    }
  }
  if (in.bad()) {
    rep.fail("read error after line " + std::to_string(lineno));
    return std::nullopt;
  }

  Measurements meas(std::move(vps), router_count);
  for (const Sample& s : samples) {
    const auto it = vp_index.find(s.vp);
    if (it == vp_index.end()) {
      if (!rep.skip(opt, "unknown_vp", s.lineno, "unknown VP '" + s.vp + "'"))
        return std::nullopt;
      --rep.records;  // the buffered sample never landed in the matrix
      continue;
    }
    meas.pings.record(s.router, it->second, s.rtt);
  }
  return meas;
}

std::optional<Measurements> load_measurements(std::istream& in, std::size_t router_count,
                                              std::string* error) {
  io::LoadReport report;
  auto meas = load_measurements(in, router_count, io::LoadOptions{}, &report);
  if (!meas && error != nullptr) *error = report.error;
  return meas;
}

}  // namespace hoiho::measure
