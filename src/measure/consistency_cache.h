// Memoization of rtt_consistent() verdicts (paper §5.2).
//
// The pipeline asks "is location L feasible for router R?" for the same
// (R, L) pair many times: stage-2 tagging, every candidate-NC evaluation in
// stage 3, and stage-4 learning all test the same routers against the same
// dictionary locations. Each test is an O(#VPs) haversine scan. This cache
// stores the verdict in a packed 2-bit cell (unknown / false / true) per
// (router, location) pair, with rows allocated lazily on a router's first
// query so a per-suffix cache only pays for the routers the suffix touches.
//
// On a miss the cache first applies a per-router prefilter: the VP with the
// smallest measured RTT bounds how far the router can be, so a candidate
// farther than that is rejected with a single haversine instead of a full
// scan. The prefilter evaluates exactly one term of rtt_consistent()'s
// conjunction with identical arithmetic, so verdicts are bit-identical with
// and without it.
//
// A cache is valid for one RttMatrix + VP set + slack value; queries with a
// different slack bypass the table and compute directly. Not thread-safe:
// the intended scope is one cache per suffix run, used by a single thread.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "measure/consistency.h"

namespace hoiho::measure {

// Dense speed-of-light RTT table over every (location, VP) pair. The
// haversines in rtt_consistent() depend only on the location and VP
// coordinates, never the router, so one grid serves every suffix cache built
// over the same dictionary and VP set — including concurrently: the grid is
// immutable after construction. Entries for invalid coordinates are NaN and
// are never read (the cache rejects invalid coordinates before scanning).
class ExpectedRttGrid {
 public:
  // `coords[id]` must be the coordinate of dictionary location `id`.
  ExpectedRttGrid(std::span<const geo::Coordinate> coords, std::span<const VantagePoint> vps);

  double at(geo::LocationId loc, VpId v) const { return rtts_[loc * vp_count_ + v]; }
  std::size_t location_count() const { return vp_count_ == 0 ? 0 : rtts_.size() / vp_count_; }
  std::size_t vp_count() const { return vp_count_; }

 private:
  std::size_t vp_count_;
  std::vector<double> rtts_;  // [loc * vp_count_ + v]
};

class ConsistencyCache {
 public:
  // `location_count` is the dictionary size (LocationIds must be < it);
  // `prefilter` disables the closest-VP radius test (for benchmarking).
  // `grid`, if non-null, supplies precomputed expected RTTs (it must cover
  // the same locations and VPs and outlive the cache; a mismatched grid is
  // ignored); without one, expected RTTs are memoized lazily per location.
  ConsistencyCache(const Measurements& meas, std::size_t location_count, double slack_ms = 0.0,
                   bool prefilter = true, const ExpectedRttGrid* grid = nullptr);

  // Memoized rtt_consistent(meas.pings, meas.vps, r, coord, slack_ms).
  // `coord` must be the coordinate of dictionary location `loc`; callers are
  // expected to pass dict.location(loc).coord. A `slack_ms` different from
  // the cache's is computed directly without touching the table.
  bool consistent(topo::RouterId r, geo::LocationId loc, const geo::Coordinate& coord,
                  double slack_ms);
  bool consistent(topo::RouterId r, geo::LocationId loc, const geo::Coordinate& coord) {
    return consistent(r, loc, coord, slack_ms_);
  }

  double slack_ms() const { return slack_ms_; }

  struct Stats {
    std::uint64_t hits = 0;              // answered from the table
    std::uint64_t misses = 0;            // computed and stored
    std::uint64_t prefilter_rejects = 0;  // misses settled by the radius test
    std::uint64_t bypasses = 0;          // mismatched slack, computed uncached

    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }

    Stats& operator+=(const Stats& o) {
      hits += o.hits;
      misses += o.misses;
      prefilter_rejects += o.prefilter_rejects;
      bypasses += o.bypasses;
      return *this;
    }
    friend bool operator==(const Stats&, const Stats&) = default;
  };
  const Stats& stats() const { return stats_; }

 private:
  enum Verdict : std::uint8_t { kUnknown = 0, kFalse = 2, kTrue = 3 };

  // Closest-VP bound for one router, computed on first query.
  struct RouterBound {
    bool computed = false;
    bool constrained = false;  // router has at least one RTT sample
    VpId vp = 0;               // VP with the minimum measured RTT
    double budget_ms = 0.0;    // that minimum RTT + slack
  };

  Verdict cell(topo::RouterId r, geo::LocationId loc) const;
  void set_cell(topo::RouterId r, geo::LocationId loc, bool verdict);
  const RouterBound& bound(topo::RouterId r);

  // Speed-of-light minimum RTT from VP `v` to `loc`: read from the shared
  // grid when one is attached, else memoized lazily per location. Verdicts
  // are unchanged either way — the same doubles are compared.
  double expected_rtt(geo::LocationId loc, const geo::Coordinate& coord, VpId v);

  const Measurements& meas_;
  double slack_ms_;
  bool prefilter_;
  std::size_t location_count_;
  const ExpectedRttGrid* grid_;
  std::vector<std::vector<std::uint8_t>> rows_;  // [router] -> packed 2-bit cells
  std::vector<RouterBound> bounds_;
  std::vector<std::vector<double>> loc_rtts_;  // [location] -> per-VP minimum RTT
  Stats stats_;
};

}  // namespace hoiho::measure
