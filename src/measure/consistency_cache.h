// Memoization of rtt_consistent() verdicts (paper §5.2).
//
// The pipeline asks "is location L feasible for router R?" for the same
// (R, L) pair many times: stage-2 tagging, every candidate-NC evaluation in
// stage 3, and stage-4 learning all test the same routers against the same
// dictionary locations. Each test is an O(#VPs) haversine scan. This cache
// stores the verdict in a packed 2-bit cell (unknown / false / true) per
// (router, location) pair, with rows allocated lazily on a router's first
// query so a per-suffix cache only pays for the routers the suffix touches.
//
// On a miss the cache first applies a per-router prefilter: the VP with the
// smallest measured RTT bounds how far the router can be, so a candidate
// farther than that is rejected with a single haversine instead of a full
// scan. The prefilter evaluates exactly one term of rtt_consistent()'s
// conjunction with identical arithmetic, so verdicts are bit-identical with
// and without it.
//
// A cache is valid for one RttMatrix + VP set + slack value; queries with a
// different slack bypass the table and compute directly. Not thread-safe:
// the intended scope is one cache per suffix run, used by a single thread.
#pragma once

#include <cstdint>
#include <vector>

#include "measure/consistency.h"

namespace hoiho::measure {

class ConsistencyCache {
 public:
  // `location_count` is the dictionary size (LocationIds must be < it);
  // `prefilter` disables the closest-VP radius test (for benchmarking).
  ConsistencyCache(const Measurements& meas, std::size_t location_count, double slack_ms = 0.0,
                   bool prefilter = true);

  // Memoized rtt_consistent(meas.pings, meas.vps, r, coord, slack_ms).
  // `coord` must be the coordinate of dictionary location `loc`; callers are
  // expected to pass dict.location(loc).coord. A `slack_ms` different from
  // the cache's is computed directly without touching the table.
  bool consistent(topo::RouterId r, geo::LocationId loc, const geo::Coordinate& coord,
                  double slack_ms);
  bool consistent(topo::RouterId r, geo::LocationId loc, const geo::Coordinate& coord) {
    return consistent(r, loc, coord, slack_ms_);
  }

  double slack_ms() const { return slack_ms_; }

  struct Stats {
    std::uint64_t hits = 0;              // answered from the table
    std::uint64_t misses = 0;            // computed and stored
    std::uint64_t prefilter_rejects = 0;  // misses settled by the radius test
    std::uint64_t bypasses = 0;          // mismatched slack, computed uncached

    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }

    Stats& operator+=(const Stats& o) {
      hits += o.hits;
      misses += o.misses;
      prefilter_rejects += o.prefilter_rejects;
      bypasses += o.bypasses;
      return *this;
    }
    friend bool operator==(const Stats&, const Stats&) = default;
  };
  const Stats& stats() const { return stats_; }

 private:
  enum Verdict : std::uint8_t { kUnknown = 0, kFalse = 2, kTrue = 3 };

  // Closest-VP bound for one router, computed on first query.
  struct RouterBound {
    bool computed = false;
    bool constrained = false;   // router has at least one RTT sample
    geo::Coordinate vp_coord;   // VP with the minimum measured RTT
    double budget_ms = 0.0;     // that minimum RTT + slack
  };

  Verdict cell(topo::RouterId r, geo::LocationId loc) const;
  void set_cell(topo::RouterId r, geo::LocationId loc, bool verdict);
  const RouterBound& bound(topo::RouterId r);

  const Measurements& meas_;
  double slack_ms_;
  bool prefilter_;
  std::size_t location_count_;
  std::vector<std::vector<std::uint8_t>> rows_;  // [router] -> packed 2-bit cells
  std::vector<RouterBound> bounds_;
  Stats stats_;
};

}  // namespace hoiho::measure
