#include "util/strings.h"

#include <cctype>
#include <cstdio>

namespace hoiho::util {

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

bool is_lower(std::string_view s) {
  for (char c : s)
    if (c >= 'A' && c <= 'Z') return false;
  return true;
}

bool is_all_alpha(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s)
    if (!std::isalpha(static_cast<unsigned char>(c))) return false;
  return true;
}

bool is_all_digit(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s)
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  return true;
}

bool is_all_alnum(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s)
    if (!std::isalnum(static_cast<unsigned char>(c))) return false;
  return true;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::vector<std::string_view> split(std::string_view s, std::string_view delims) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_keep_empty(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

CharKind char_kind(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  if (std::isalpha(u)) return CharKind::kAlpha;
  if (std::isdigit(u)) return CharKind::kDigit;
  return CharKind::kPunct;
}

namespace {

template <typename Pred>
std::vector<Token> runs_where(std::string_view s, Pred pred) {
  std::vector<Token> out;
  std::size_t i = 0;
  while (i < s.size()) {
    if (!pred(s[i])) {
      ++i;
      continue;
    }
    std::size_t start = i;
    while (i < s.size() && pred(s[i])) ++i;
    out.push_back(Token{s.substr(start, i - start), start, i});
  }
  return out;
}

}  // namespace

std::vector<Token> split_tokens(std::string_view s, char delim) {
  std::vector<Token> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      if (i > start) out.push_back(Token{s.substr(start, i - start), start, i});
      start = i + 1;
    }
  }
  return out;
}

std::vector<Token> alpha_runs(std::string_view s) {
  return runs_where(s, [](char c) { return std::isalpha(static_cast<unsigned char>(c)) != 0; });
}

std::vector<Token> alnum_runs(std::string_view s) {
  return runs_where(s, [](char c) { return std::isalnum(static_cast<unsigned char>(c)) != 0; });
}

std::vector<Token> kind_runs(std::string_view s) {
  std::vector<Token> out;
  std::size_t i = 0;
  while (i < s.size()) {
    CharKind k = char_kind(s[i]);
    std::size_t start = i;
    while (i < s.size() && char_kind(s[i]) == k) ++i;
    out.push_back(Token{s.substr(start, i - start), start, i});
  }
  return out;
}

std::string squash_alnum(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (std::isalnum(u)) out.push_back(static_cast<char>(std::tolower(u)));
  }
  return out;
}

std::string regex_escape(std::string_view s) {
  static constexpr std::string_view kMeta = ".^$*+?()[]{}|\\";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (kMeta.find(c) != std::string_view::npos) out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string fmt_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string fmt_pct(double num, double den, int decimals) {
  if (den <= 0) return "-";
  return fmt_double(100.0 * num / den, decimals) + "%";
}

std::string fmt_count(std::uint64_t n) {
  if (n >= 10'000'000) return fmt_double(static_cast<double>(n) / 1e6, 1) + "M";
  if (n >= 1'000'000) return fmt_double(static_cast<double>(n) / 1e6, 2) + "M";
  if (n >= 10'000) return std::to_string(n / 1000) + "K";
  return std::to_string(n);
}

}  // namespace hoiho::util
