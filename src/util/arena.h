// Chunked bump allocator for batch-scoped byte storage.
//
// The streaming learner allocates one short string per hostname (the
// canonical lower-cased PTR name) and frees them all together when the
// batch retires — the textbook arena shape. Individually heap-allocated
// std::strings pay a malloc/free per name plus per-allocation headers and
// scatter a batch's hostnames across the heap; an arena packs them
// contiguously (cache-friendly for the tagger's sequential sweeps) and
// frees the whole batch by dropping chunks.
//
// Not thread-safe; one arena per owner (Topology, test fixture). Move-only:
// views handed out point into the chunks, so a copy could not preserve
// them. Moving the arena keeps every view valid (chunks move by pointer).
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace hoiho::util {

class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = 64 * 1024) : chunk_bytes_(chunk_bytes) {}

  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // `n` bytes with the given alignment (power of two). Never null; a
  // request larger than the chunk size gets a dedicated chunk.
  char* alloc(std::size_t n, std::size_t align = 1) {
    if (!chunks_.empty()) {
      Chunk& c = chunks_.back();
      const std::size_t at = (c.used + (align - 1)) & ~(align - 1);
      if (at + n <= c.size) {
        c.used = at + n;
        used_ += n;
        return c.data.get() + at;
      }
    }
    const std::size_t size = n > chunk_bytes_ ? n : chunk_bytes_;
    Chunk c{std::make_unique<char[]>(size), size, n};
    char* p = c.data.get();
    chunks_.push_back(std::move(c));
    used_ += n;
    return p;
  }

  // Copies `s` into the arena; the returned view lives as long as the arena.
  std::string_view intern(std::string_view s) {
    if (s.empty()) return {};
    char* p = alloc(s.size());
    std::memcpy(p, s.data(), s.size());
    return {p, s.size()};
  }

  // Payload bytes handed out (excludes alignment waste and chunk slack).
  std::size_t bytes_used() const { return used_; }

  // Total bytes reserved from the heap.
  std::size_t bytes_reserved() const {
    std::size_t n = 0;
    for (const Chunk& c : chunks_) n += c.size;
    return n;
  }

  // Drops every chunk; all views into the arena are invalidated.
  void clear() {
    chunks_.clear();
    used_ = 0;
  }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  std::size_t chunk_bytes_;
  std::size_t used_ = 0;
  std::vector<Chunk> chunks_;
};

}  // namespace hoiho::util
