#include "util/csv.h"

namespace hoiho::util {

CsvRow parse_csv_line(std::string_view line) {
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      row.push_back(std::move(field));
      field.clear();
    } else if (c != '\r') {
      field.push_back(c);
    }
  }
  row.push_back(std::move(field));
  return row;
}

std::vector<CsvRow> read_csv(std::istream& in) {
  std::vector<CsvRow> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    rows.push_back(parse_csv_line(line));
  }
  return rows;
}

void write_csv_row(std::ostream& out, const CsvRow& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) out << ',';
    const std::string& f = row[i];
    if (f.find_first_of(",\"\n") != std::string::npos) {
      out << '"';
      for (char c : f) {
        if (c == '"') out << "\"\"";
        else out << c;
      }
      out << '"';
    } else {
      out << f;
    }
  }
  out << '\n';
}

}  // namespace hoiho::util
