#include "util/failpoint.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "util/rng.h"

namespace hoiho::util::failpoint {

namespace {

struct Spec {
  Kind kind = Kind::kOff;
  int err = EIO;             // kError
  int delay_ms = 0;          // kDelay
  double probability = 1.0;  // fire chance per eligible hit
  std::uint64_t every = 1;   // only every nth hit is eligible
  std::int64_t times = -1;   // stop after n fires; -1 = unlimited
};

struct Site {
  Spec spec;
  std::uint64_t hits = 0;
  std::uint64_t fired = 0;
  std::uint64_t rng_state = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Site> sites;
  std::atomic<std::uint64_t> total_fired{0};
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: sites outlive static dtors
  return *r;
}

std::uint64_t seed_from_name(std::string_view site) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a 64
  for (const char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h == 0 ? 1 : h;
}

bool parse_errno(std::string_view tok, int* out) {
  if (tok == "EIO") return (*out = EIO), true;
  if (tok == "EINTR") return (*out = EINTR), true;
  if (tok == "EAGAIN") return (*out = EAGAIN), true;
  if (tok == "ENOMEM") return (*out = ENOMEM), true;
  if (tok == "ECONNRESET") return (*out = ECONNRESET), true;
  if (tok == "EPIPE") return (*out = EPIPE), true;
  if (tok == "EMFILE") return (*out = EMFILE), true;
  int v = 0;
  for (const char c : tok) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
  }
  if (tok.empty()) return false;
  *out = v;
  return true;
}

bool parse_spec(std::string_view text, Spec* spec, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  std::size_t pos = 0;
  bool first = true;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string_view part =
        text.substr(pos, comma == std::string_view::npos ? std::string_view::npos : comma - pos);
    pos = comma == std::string_view::npos ? text.size() + 1 : comma + 1;
    if (first) {
      first = false;
      if (part == "off") {
        spec->kind = Kind::kOff;
      } else if (part == "short") {
        spec->kind = Kind::kShort;
      } else if (part == "eintr") {
        spec->kind = Kind::kEintr;
      } else if (part == "error" || part.substr(0, 6) == "error:") {
        spec->kind = Kind::kError;
        if (part.size() > 6 && !parse_errno(part.substr(6), &spec->err))
          return fail("bad errno in '" + std::string(part) + "'");
      } else if (part.substr(0, 6) == "delay:") {
        spec->kind = Kind::kDelay;
        spec->delay_ms = std::atoi(std::string(part.substr(6)).c_str());
        if (spec->delay_ms < 0) return fail("negative delay");
      } else {
        return fail("unknown failpoint kind '" + std::string(part) + "'");
      }
      continue;
    }
    if (part.empty()) continue;
    const std::size_t eq = part.find('=');
    if (eq == std::string_view::npos)
      return fail("modifier '" + std::string(part) + "' needs key=value");
    const std::string_view key = part.substr(0, eq);
    const std::string value(part.substr(eq + 1));
    if (key == "p") {
      spec->probability = std::atof(value.c_str());
      // Written as a negated conjunction so NaN (for which both comparisons
      // are false) is rejected too.
      if (!(spec->probability >= 0.0 && spec->probability <= 1.0))
        return fail("p must be in [0,1]");
    } else if (key == "every") {
      spec->every = static_cast<std::uint64_t>(std::atoll(value.c_str()));
      if (spec->every == 0) return fail("every must be >= 1");
    } else if (key == "times") {
      spec->times = std::atoll(value.c_str());
      if (spec->times < 0) return fail("times must be >= 0");
    } else {
      return fail("unknown modifier '" + std::string(key) + "'");
    }
  }
  return true;
}

}  // namespace

namespace detail {

std::atomic<int> g_active_sites{0};

Fired hit_slow(std::string_view site) {
  Registry& reg = registry();
  Spec spec;
  {
    std::lock_guard lock(reg.mu);
    const auto it = reg.sites.find(std::string(site));
    if (it == reg.sites.end() || it->second.spec.kind == Kind::kOff) return {};
    Site& s = it->second;
    ++s.hits;
    if (s.hits % s.spec.every != 0) return {};
    if (s.spec.times >= 0 && static_cast<std::int64_t>(s.fired) >= s.spec.times) return {};
    if (s.spec.probability < 1.0) {
      // Inline SplitMix64 step so the decision stream is per-site state.
      util::Rng rng(s.rng_state);
      const bool fire = rng.next_bool(s.spec.probability);
      s.rng_state += 0x9e3779b97f4a7c15ULL;
      if (!fire) return {};
    }
    ++s.fired;
    reg.total_fired.fetch_add(1, std::memory_order_relaxed);
    spec = s.spec;
  }
  if (spec.kind == Kind::kDelay) {
    std::this_thread::sleep_for(std::chrono::milliseconds(spec.delay_ms));
    return Fired{Kind::kDelay, 0};
  }
  return Fired{spec.kind, spec.err};
}

}  // namespace detail

bool configure(std::string_view site, std::string_view spec_text, std::string* error) {
  Spec spec;
  if (!parse_spec(spec_text, &spec, error)) return false;
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  Site& s = reg.sites[std::string(site)];
  const bool was_active = s.spec.kind != Kind::kOff;
  const bool now_active = spec.kind != Kind::kOff;
  s.spec = spec;
  s.hits = 0;
  s.fired = 0;
  s.rng_state = seed_from_name(site);
  if (was_active != now_active)
    detail::g_active_sites.fetch_add(now_active ? 1 : -1, std::memory_order_relaxed);
  return true;
}

int configure_from_env(const char* var, std::string* error) {
  const char* raw = std::getenv(var);
  if (raw == nullptr || *raw == '\0') return 0;
  const std::string_view text(raw);
  int configured = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t semi = text.find(';', pos);
    const std::string_view entry =
        text.substr(pos, semi == std::string_view::npos ? std::string_view::npos : semi - pos);
    pos = semi == std::string_view::npos ? text.size() + 1 : semi + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      if (error != nullptr) *error = "entry '" + std::string(entry) + "' needs site=spec";
      return -1;
    }
    if (!configure(entry.substr(0, eq), entry.substr(eq + 1), error)) return -1;
    ++configured;
  }
  return configured;
}

void reset() {
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  int active = 0;
  for (const auto& [name, site] : reg.sites)
    if (site.spec.kind != Kind::kOff) ++active;
  reg.sites.clear();
  reg.total_fired.store(0, std::memory_order_relaxed);
  detail::g_active_sites.fetch_add(-active, std::memory_order_relaxed);
}

std::uint64_t total_fired() {
  return registry().total_fired.load(std::memory_order_relaxed);
}

std::uint64_t fired(std::string_view site) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  const auto it = reg.sites.find(std::string(site));
  return it == reg.sites.end() ? 0 : it->second.fired;
}

}  // namespace hoiho::util::failpoint
