// Failure-injection points for tests and chaos benches.
//
// A failpoint is a named site in production code where a test harness can
// inject a fault: an I/O error with a chosen errno, a short read/write, a
// spurious EINTR, or artificial latency. Sites are compiled in always —
// the disabled fast path is a single relaxed atomic load — so the chaos
// harness can exercise the exact binaries that ship, not a special build.
//
//   site code:   if (auto f = util::failpoint::hit("serve.write")) { ... }
//   harness:     util::failpoint::configure("serve.write", "short,p=0.1");
//   from env:    HOIHO_FAILPOINTS="serve.write=short,p=0.1;serve.read=eintr"
//
// Spec grammar (modifiers comma-separated, in any order after the kind):
//
//   spec      = kind *("," modifier)
//   kind      = "off" | "error" [":" errno] | "short" | "eintr" | "delay:" ms
//   errno     = "EIO" | "EINTR" | "EAGAIN" | "ENOMEM" | "ECONNRESET"
//             | "EPIPE" | "EMFILE" | <decimal>
//   modifier  = "p=" probability      ; fire chance per eligible hit (default 1)
//             | "every=" n            ; only every nth hit is eligible
//             | "times=" n            ; stop after n fires (default unlimited)
//
// Firing decisions are deterministic per site (SplitMix64 seeded from the
// site name), so a chaos run with a fixed spec is reproducible. "delay"
// sleeps inside hit() and reports kDelay; callers treat it as "proceed".
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace hoiho::util::failpoint {

enum class Kind { kOff, kError, kShort, kEintr, kDelay };

// What a site should simulate for this call. kOff = proceed normally.
struct Fired {
  Kind kind = Kind::kOff;
  int err = 0;  // errno to simulate when kind == kError

  explicit operator bool() const { return kind != Kind::kOff && kind != Kind::kDelay; }
};

namespace detail {
extern std::atomic<int> g_active_sites;  // sites with a non-off spec
Fired hit_slow(std::string_view site);
}  // namespace detail

// True when at least one site is armed. The only cost paid on hot paths
// while fault injection is disabled.
inline bool any_active() {
  return detail::g_active_sites.load(std::memory_order_relaxed) != 0;
}

// The site-side check. Returns the fault to simulate this call (almost
// always kOff). kDelay has already slept by the time it is returned.
inline Fired hit(std::string_view site) {
  if (!any_active()) return {};
  return detail::hit_slow(site);
}

// Arms `site` with `spec` (see grammar above; "off" disarms). False with
// *error on a malformed spec.
bool configure(std::string_view site, std::string_view spec, std::string* error = nullptr);

// Parses `var` (default HOIHO_FAILPOINTS) as "site=spec;site=spec...".
// Returns the number of sites configured; -1 with *error on a bad entry.
int configure_from_env(const char* var = "HOIHO_FAILPOINTS", std::string* error = nullptr);

// Disarms every site and zeroes all counters.
void reset();

// Total faults fired across all sites since the last reset().
std::uint64_t total_fired();

// Faults fired at one site since the last reset().
std::uint64_t fired(std::string_view site);

}  // namespace hoiho::util::failpoint
