// A small fixed-size worker pool over a bounded task queue.
//
// The pool exists so the learning pipeline can fan out across independent
// DNS suffixes (paper §5: the method is per-suffix, so suffix runs share no
// mutable state). submit() applies backpressure — it blocks while the queue
// is at capacity — so a producer enumerating millions of suffixes cannot
// balloon memory. wait_idle() is the join point: it returns once every
// submitted task has finished executing, after which the pool can be reused
// for another batch.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hoiho::util {

class ThreadPool {
 public:
  // Spawns `threads` workers (must be >= 1; use resolve() to map a user
  // knob). `queue_capacity` bounds the number of queued-but-unstarted tasks.
  explicit ThreadPool(std::size_t threads, std::size_t queue_capacity = 256);

  // Requests stop and joins the workers; queued tasks are still drained
  // (destruction is equivalent to wait_idle() then shutdown).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task, blocking while the queue is full.
  void submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished executing.
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

  // Queue accounting, maintained under the existing queue mutex (no extra
  // synchronization on the task path). Consumers fold these into an
  // obs::Registry — the pool itself stays dependency-free.
  struct Stats {
    std::uint64_t submitted = 0;       // tasks accepted by submit()
    std::uint64_t executed = 0;        // tasks that finished running
    std::size_t queue_depth = 0;       // queued-but-unstarted right now
    std::size_t max_queue_depth = 0;   // high-water mark since construction
  };
  Stats stats() const;

  // Maps a config knob to a worker count: 0 means "use the hardware"
  // (hardware_concurrency, at least 1), anything else passes through.
  static std::size_t resolve(std::size_t requested);

 private:
  void worker(std::stop_token stop);

  mutable std::mutex mu_;
  std::condition_variable cv_room_;  // queue has room (producers wait here)
  std::condition_variable cv_work_;  // queue has work, or stop requested
  std::condition_variable cv_idle_;  // in-flight count reached zero
  std::deque<std::function<void()>> queue_;
  std::size_t queue_capacity_;
  std::size_t in_flight_ = 0;  // queued + currently executing
  std::uint64_t submitted_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t max_queue_depth_ = 0;
  bool stopping_ = false;
  std::vector<std::jthread> workers_;  // last member: joins before the rest die
};

}  // namespace hoiho::util
