// Worker pools for the per-suffix learning pipeline and the serving daemon.
//
// Two pools share this header:
//
//   * ThreadPool — a fixed-size worker pool over one bounded shared queue.
//     submit() applies backpressure (blocks while the queue is at capacity),
//     which is what the serving data plane wants: producers must slow down
//     rather than balloon memory.
//
//   * WorkStealingPool — per-worker deques with steal-from-back semantics,
//     built for the learner's suffix fan-out where task sizes are heavily
//     skewed (Zipf suffix sizes: one giant consumer ISP next to thousands of
//     small operators). The caller seeds a whole batch at once, cost-ordered
//     largest-first; seeding round-robins tasks across the deques under one
//     lock acquisition per worker, so there is no shared-queue convoy.
//     Workers pop their own deque from the front (big tasks start first) and
//     steal from the back of a victim's deque when empty (stolen tasks are
//     the smallest remaining, minimizing contention on the victim's lock).
//
// Neither pool imposes an execution order on results: pipeline callers
// write into index-addressed slots, so threads=1 and threads=N produce
// byte-identical output regardless of which worker ran what.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace hoiho::util {

// Watchdog heartbeat, one per worker (both pools). The worker bumps
// task_seq and stamps busy_since_ns when it starts a task and zeroes
// busy_since_ns when the task finishes; scan_stalled() reads them to count
// workers stuck on one task past a threshold — one episode per task, so a
// slow task is reported once, not once per scan.
struct Heartbeat {
  std::atomic<std::uint64_t> busy_since_ns{0};  // 0 = idle
  std::atomic<std::uint64_t> task_seq{0};
};

// Per-worker accounting shared by both pools. For ThreadPool (one shared
// queue) `stolen`/`steal_failures` are always zero and `max_queue_depth`
// mirrors the shared queue's high-water mark.
struct WorkerStats {
  std::uint64_t executed = 0;        // tasks this worker finished
  std::uint64_t stolen = 0;          // tasks it took from another worker's deque
  std::uint64_t steal_failures = 0;  // full victim scans that found nothing
  std::size_t max_queue_depth = 0;   // high-water mark of its own deque
};

class ThreadPool {
 public:
  // Spawns `threads` workers (must be >= 1; use resolve() to map a user
  // knob). `queue_capacity` bounds the number of queued-but-unstarted tasks.
  explicit ThreadPool(std::size_t threads, std::size_t queue_capacity = 256);

  // Requests stop and joins the workers; queued tasks are still drained
  // (destruction is equivalent to wait_idle() then shutdown).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task, blocking while the queue is full.
  void submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished executing.
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

  // Queue accounting, maintained under the existing queue mutex (no extra
  // synchronization on the task path). Consumers fold these into an
  // obs::Registry — the pool itself stays dependency-free.
  struct Stats {
    std::uint64_t submitted = 0;       // tasks accepted by submit()
    std::uint64_t executed = 0;        // tasks that finished running
    std::size_t queue_depth = 0;       // queued-but-unstarted right now
    std::size_t max_queue_depth = 0;   // high-water mark since construction
    std::vector<WorkerStats> workers;  // per-worker executed counts
  };
  Stats stats() const;

  // Counts workers that have been busy on one task for longer than
  // `threshold_ms`, each stall episode reported once (keyed by the worker's
  // task_seq). Call from a single scanner thread (e.g. a server event
  // loop); the per-worker last-reported bookkeeping is not synchronized.
  std::size_t scan_stalled(std::uint64_t threshold_ms);

  // Maps a config knob to a worker count: 0 means "use the hardware"
  // (hardware_concurrency, at least 1), anything else passes through.
  static std::size_t resolve(std::size_t requested);

 private:
  void worker(std::stop_token stop, std::size_t index);

  std::vector<Heartbeat> heartbeats_;          // one per worker, fixed size
  std::vector<std::uint64_t> stall_reported_;  // scanner-owned (see scan_stalled)
  mutable std::mutex mu_;
  std::condition_variable cv_room_;  // queue has room (producers wait here)
  std::condition_variable cv_work_;  // queue has work, or stop requested
  std::condition_variable cv_idle_;  // in-flight count reached zero
  std::deque<std::function<void()>> queue_;
  std::size_t queue_capacity_;
  std::size_t in_flight_ = 0;  // queued + currently executing
  std::uint64_t submitted_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t max_queue_depth_ = 0;
  std::vector<std::uint64_t> executed_per_worker_;
  bool stopping_ = false;
  std::vector<std::jthread> workers_;  // last member: joins before the rest die
};

// Suffix-sharding pool: per-worker deques, batch seeding, work stealing.
//
// Usage is batch-oriented: seed() a whole task list (the caller orders it
// largest-cost-first), wait_idle(), optionally seed() the next batch. Task
// i of a seed call lands on worker i % thread_count() — deterministic
// placement, so a cost-descending order gives every worker one of the k
// largest tasks. submit() also exists for stragglers; it appends to the
// least-loaded deque.
class WorkStealingPool {
 public:
  explicit WorkStealingPool(std::size_t threads);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  // Distributes `tasks` round-robin across the worker deques (task i to
  // worker i % N, preserving order within each deque) and wakes the
  // workers. One lock acquisition per worker, not per task.
  void seed(std::vector<std::function<void()>> tasks);

  // Enqueues one task on the currently shallowest deque.
  void submit(std::function<void()> task);

  // Blocks until every seeded/submitted task has finished executing.
  void wait_idle();

  // wait_idle() with a timeout: true if the pool went idle, false if the
  // wait timed out (callers typically scan_stalled() and wait again).
  bool wait_idle_for(std::chrono::milliseconds timeout);

  // Same contract as ThreadPool::scan_stalled (single scanner thread).
  std::size_t scan_stalled(std::uint64_t threshold_ms);

  std::size_t thread_count() const { return workers_.size(); }

  // Optional queue-wait instrumentation: when set, the pool observes
  // (execution start - enqueue) in nanoseconds for every task into `h`.
  // This keeps queue wait out of the caller's per-task stage spans — the
  // span clock starts when the task runs, and the wait is accounted here.
  void set_queue_wait_histogram(obs::Histogram h) { queue_wait_ns_ = h; }

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t executed = 0;
    std::uint64_t tasks_stolen = 0;      // sum of workers[].stolen
    std::uint64_t steal_failures = 0;    // sum of workers[].steal_failures
    std::size_t max_queue_depth = 0;     // max over workers[].max_queue_depth
    std::vector<WorkerStats> workers;
  };
  Stats stats() const;

 private:
  struct Task {
    std::function<void()> fn;
    std::uint64_t enqueue_ns = 0;
  };

  // One deque + its lock, cache-line separated so a worker popping its own
  // deque never false-shares with a neighbour being stolen from.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::deque<Task> deque;
    WorkerStats stats;
  };

  void worker(std::stop_token stop, std::size_t index);
  bool try_pop_own(std::size_t index, Task& out);
  bool try_steal(std::size_t thief, Task& out);
  void run_task(std::size_t index, Task& task);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<Heartbeat> heartbeats_;          // one per worker, fixed size
  std::vector<std::uint64_t> stall_reported_;  // scanner-owned (see scan_stalled)
  obs::Histogram queue_wait_ns_;

  std::mutex idle_mu_;
  std::condition_variable cv_work_;  // new tasks seeded, or stop requested
  std::condition_variable cv_idle_;  // in-flight reached zero
  std::atomic<std::size_t> in_flight_{0};  // queued + executing (wait_idle)
  std::atomic<std::size_t> queued_{0};     // queued only (worker sleep/steal gate)
  std::atomic<std::uint64_t> submitted_{0};
  bool stopping_ = false;  // guarded by idle_mu_
  std::vector<std::jthread> workers_;  // last member: joins before the rest die
};

}  // namespace hoiho::util
