#include "util/sysinfo.h"

#include <cstdio>
#include <cstring>

namespace hoiho::util {

namespace {

// Reads a "Vm...: N kB" field from /proc/self/status. Returns bytes, 0 on
// any failure (non-Linux, procfs unavailable).
std::uint64_t read_status_kb(const char* field) {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  const std::size_t field_len = std::strlen(field);
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, field, field_len) != 0 || line[field_len] != ':') continue;
    std::sscanf(line + field_len + 1, "%lu", &kb);
    break;
  }
  std::fclose(f);
  return kb * 1024;
#else
  (void)field;
  return 0;
#endif
}

}  // namespace

std::uint64_t peak_rss_bytes() { return read_status_kb("VmHWM"); }

std::uint64_t current_rss_bytes() { return read_status_kb("VmRSS"); }

}  // namespace hoiho::util
