// Minimal CSV reader/writer used by the dictionary and ITDK I/O code.
//
// The dialect is deliberately simple: comma-separated, '#' comment lines,
// double-quote quoting with "" as an escaped quote, no multi-line fields.
// This matches the public data feeds (OurAirports, UN/LOCODE exports) that
// users of this library would load in place of the embedded atlas.
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace hoiho::util {

// One parsed CSV row.
using CsvRow = std::vector<std::string>;

// Parses one CSV line into fields. Handles quoted fields with embedded
// commas and doubled quotes.
CsvRow parse_csv_line(std::string_view line);

// Reads all rows from `in`, skipping blank lines and lines starting with '#'.
std::vector<CsvRow> read_csv(std::istream& in);

// Writes one row to `out`, quoting fields that contain commas or quotes.
void write_csv_row(std::ostream& out, const CsvRow& row);

}  // namespace hoiho::util
