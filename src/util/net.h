// Socket / file-descriptor RAII helpers for the serving subsystem.
//
// Everything here is a thin, error-returning wrapper over POSIX sockets:
// no exceptions, no global state, and every descriptor owned by an Fd so
// early returns cannot leak. IPv4 loopback/any only — the daemon fronts a
// lookup library, not a general-purpose network stack.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace hoiho::util {

// Owning file descriptor: closes on destruction, move-only.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  explicit operator bool() const { return valid(); }

  // Closes the held descriptor (if any) and takes ownership of `fd`.
  void reset(int fd = -1);

  // Releases ownership without closing.
  int release() { return std::exchange(fd_, -1); }

 private:
  int fd_ = -1;
};

// Sets O_NONBLOCK on `fd`; false on fcntl failure.
bool set_nonblocking(int fd);

// Disables Nagle (TCP_NODELAY) — the protocol is small request/response
// lines, where batching-by-timer only adds latency.
bool set_tcp_nodelay(int fd);

// Creates a listening TCP socket bound to 127.0.0.1:`port` (`any` = false)
// or 0.0.0.0:`port`. `port` 0 binds an ephemeral port; read it back with
// local_port(). SO_REUSEADDR is set. Invalid Fd + *error on failure.
Fd listen_tcp(std::uint16_t port, std::string* error = nullptr, bool any = false);

// Connect to `host`:`port` (numeric IPv4 or "localhost"). timeout_ms > 0
// bounds the connect (non-blocking connect + poll, then the socket is
// returned to blocking mode); 0 means block indefinitely.
Fd connect_tcp(std::string_view host, std::uint16_t port, std::string* error = nullptr,
               int timeout_ms = 0);

// Arms SO_RCVTIMEO / SO_SNDTIMEO on a blocking socket so recv()/send()
// return EAGAIN instead of hanging on a dead peer. 0 disables either side.
bool set_io_timeouts(int fd, int recv_timeout_ms, int send_timeout_ms);

// The locally-bound port of a socket; nullopt on getsockname failure.
std::optional<std::uint16_t> local_port(int fd);

// write() in a loop until all of `data` is sent; false on error (including
// an SO_SNDTIMEO expiry, which surfaces as EAGAIN). Only for blocking
// sockets (the Client); the Server manages partial writes itself.
// Failpoint: "net.write" (short / eintr / error).
bool write_all(int fd, std::string_view data);

}  // namespace hoiho::util
