// Deterministic pseudo-random number generation.
//
// Every stochastic component in this library (the synthetic Internet
// generator, the probing simulator, benches) takes an explicit seed so that
// all experiments are exactly reproducible. The generator is SplitMix64 —
// tiny, fast, and statistically adequate for workload synthesis.
#pragma once

#include <cstdint>
#include <cmath>
#include <cstddef>
#include <vector>

namespace hoiho::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  // Next raw 64-bit value (SplitMix64).
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Uniform double in [lo, hi).
  double next_range(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  // Bernoulli trial with probability p.
  bool next_bool(double p) { return next_double() < p; }

  // Approximately-normal sample via the sum of uniforms (Irwin–Hall, 12
  // terms), adequate for noise modelling in the probing simulator.
  double next_gauss(double mean, double stddev) {
    double s = 0;
    for (int i = 0; i < 12; ++i) s += next_double();
    return mean + stddev * (s - 6.0);
  }

  // Pareto-distributed sample (heavy tail) with shape `alpha`, scale `xm`.
  // Used for operator (suffix) size distribution.
  double next_pareto(double xm, double alpha) {
    double u = next_double();
    if (u >= 1.0) u = 0.999999;
    return xm / std::pow(1.0 - u, 1.0 / alpha);
  }

  // Picks an index in [0, weights.size()) proportionally to weights.
  // Returns 0 if all weights are zero or the vector is empty (callers
  // guarantee non-empty in practice).
  std::size_t next_weighted(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    if (total <= 0) return 0;
    double x = next_double() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x <= 0) return i;
    }
    return weights.size() - 1;
  }

  // Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = next_below(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t state_;
};

}  // namespace hoiho::util
