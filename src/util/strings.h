// String helpers shared across the library.
//
// All functions operate on std::string_view and never allocate unless the
// return type requires it. Hostnames in this library are always handled
// lower-cased; to_lower() is the canonicalization entry point.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hoiho::util {

// Returns a lower-cased copy of `s` (ASCII only; hostnames are ASCII).
std::string to_lower(std::string_view s);

// True if `s` contains no ASCII upper-case letter, i.e. to_lower(s) == s.
// Lets hot paths skip the to_lower() allocation for already-canonical keys.
bool is_lower(std::string_view s);

// Transparent hash for unordered containers keyed by std::string but probed
// with string_view (avoids a temporary std::string per lookup). Pair with
// std::equal_to<> as the key-equality functor.
struct TransparentStringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

// True if every character of `s` satisfies the predicate implied by the name.
bool is_all_alpha(std::string_view s);
bool is_all_digit(std::string_view s);
bool is_all_alnum(std::string_view s);

// True if `s` ends with / starts with the given affix.
bool ends_with(std::string_view s, std::string_view suffix);
bool starts_with(std::string_view s, std::string_view prefix);

// Splits `s` on any occurrence of a character in `delims`. Empty fields are
// dropped (hostname labels never contain empty tokens we care about).
std::vector<std::string_view> split(std::string_view s, std::string_view delims);

// Splits `s` on any occurrence of a character in `delims`, keeping empty
// fields (needed by CSV-style parsing).
std::vector<std::string_view> split_keep_empty(std::string_view s, char delim);

// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

// A token within a larger string, with its position recorded so regex
// generation can reconstruct the surrounding structure.
struct Token {
  std::string_view text;   // points into the original string
  std::size_t begin = 0;   // offset of first char in original string
  std::size_t end = 0;     // offset one past last char

  std::size_t size() const { return end - begin; }
};

// Character classes used when tokenizing hostnames.
enum class CharKind : std::uint8_t { kAlpha, kDigit, kPunct };

// Classifies an ASCII character for hostname tokenization purposes.
CharKind char_kind(char c);

// Splits `s` on `delim`, dropping empty fields, recording positions.
std::vector<Token> split_tokens(std::string_view s, char delim);

// Returns maximal runs of alphabetic characters in `s`, with positions.
std::vector<Token> alpha_runs(std::string_view s);

// Returns maximal runs of alphanumeric characters (i.e. splits only on
// punctuation), with positions.
std::vector<Token> alnum_runs(std::string_view s);

// Returns maximal runs of same-kind characters (alpha / digit / punct).
std::vector<Token> kind_runs(std::string_view s);

// Lower-cases and strips everything but letters and digits:
// "111-8th-Ave" -> "1118thave". Facility codes use this form.
std::string squash_alnum(std::string_view s);

// Escapes regex metacharacters in `s` so it matches literally in the
// restricted regex dialect (see src/regex/).
std::string regex_escape(std::string_view s);

// Formats `v` with `decimals` digits after the point (printf "%.*f").
std::string fmt_double(double v, int decimals);

// Formats `num`/`den` as a percentage string like "55.0%"; "-" if den == 0.
std::string fmt_pct(double num, double den, int decimals = 1);

// Renders counts like 2560000 as "2.56M", 559000 as "559K", 995 as "995".
std::string fmt_count(std::uint64_t n);

}  // namespace hoiho::util
