// Process memory accounting for the scale benches and the streaming-ingest
// RSS gauge (DESIGN.md §12): the XL acceptance criterion is "the generator
// never materializes the full world", which is only checkable if peak RSS
// is on record next to the wall time.
#pragma once

#include <cstdint>

namespace hoiho::util {

// Peak resident set size of this process in bytes (VmHWM on Linux).
// Returns 0 where unsupported.
std::uint64_t peak_rss_bytes();

// Current resident set size in bytes (VmRSS on Linux). Returns 0 where
// unsupported.
std::uint64_t current_rss_bytes();

}  // namespace hoiho::util
