#include "util/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/failpoint.h"

namespace hoiho::util {

namespace {

void set_error(std::string* error, const char* what) {
  if (error != nullptr) *error = std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool set_tcp_nodelay(int fd) {
  const int one = 1;
  return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) == 0;
}

Fd listen_tcp(std::uint16_t port, std::string* error, bool any) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd) {
    set_error(error, "socket");
    return {};
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(any ? INADDR_ANY : INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    set_error(error, "bind");
    return {};
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) {
    set_error(error, "listen");
    return {};
  }
  return fd;
}

Fd connect_tcp(std::string_view host, std::uint16_t port, std::string* error,
               int timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string host_str(host.empty() || host == "localhost" ? "127.0.0.1"
                                                                 : std::string(host));
  if (::inet_pton(AF_INET, host_str.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad IPv4 address '" + host_str + "'";
    return {};
  }
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd) {
    set_error(error, "socket");
    return {};
  }
  if (const auto f = failpoint::hit("net.connect")) {
    errno = f.err;
    set_error(error, "connect (injected)");
    return {};
  }
  if (timeout_ms <= 0) {
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      set_error(error, "connect");
      return {};
    }
  } else {
    // Bounded connect: non-blocking connect, poll for writability, check
    // SO_ERROR, then restore blocking mode for the caller.
    if (!set_nonblocking(fd.get())) {
      set_error(error, "fcntl");
      return {};
    }
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      if (errno != EINPROGRESS) {
        set_error(error, "connect");
        return {};
      }
      pollfd pfd{fd.get(), POLLOUT, 0};
      int rc;
      do {
        rc = ::poll(&pfd, 1, timeout_ms);
      } while (rc < 0 && errno == EINTR);
      if (rc == 0) {
        if (error != nullptr)
          *error = "connect timed out after " + std::to_string(timeout_ms) + "ms";
        return {};
      }
      if (rc < 0) {
        set_error(error, "poll");
        return {};
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
          so_error != 0) {
        errno = so_error != 0 ? so_error : errno;
        set_error(error, "connect");
        return {};
      }
    }
    const int flags = ::fcntl(fd.get(), F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd.get(), F_SETFL, flags & ~O_NONBLOCK) != 0) {
      set_error(error, "fcntl");
      return {};
    }
  }
  set_tcp_nodelay(fd.get());
  return fd;
}

bool set_io_timeouts(int fd, int recv_timeout_ms, int send_timeout_ms) {
  const auto to_tv = [](int ms) {
    timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
    return tv;
  };
  if (recv_timeout_ms > 0) {
    const timeval tv = to_tv(recv_timeout_ms);
    if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) return false;
  }
  if (send_timeout_ms > 0) {
    const timeval tv = to_tv(send_timeout_ms);
    if (::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) return false;
  }
  return true;
}

std::optional<std::uint16_t> local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) return std::nullopt;
  return ntohs(addr.sin_port);
}

bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    std::size_t want = data.size();
    if (failpoint::any_active()) {
      const auto f = failpoint::hit("net.write");
      if (f.kind == failpoint::Kind::kEintr) continue;  // as if a signal landed
      if (f.kind == failpoint::Kind::kError) {
        errno = f.err;
        return false;
      }
      if (f.kind == failpoint::Kind::kShort) want = (want + 1) / 2;
    }
    const ssize_t n = ::write(fd, data.data(), want);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace hoiho::util
