#include "util/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hoiho::util {

namespace {

void set_error(std::string* error, const char* what) {
  if (error != nullptr) *error = std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool set_tcp_nodelay(int fd) {
  const int one = 1;
  return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) == 0;
}

Fd listen_tcp(std::uint16_t port, std::string* error, bool any) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd) {
    set_error(error, "socket");
    return {};
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(any ? INADDR_ANY : INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    set_error(error, "bind");
    return {};
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) {
    set_error(error, "listen");
    return {};
  }
  return fd;
}

Fd connect_tcp(std::string_view host, std::uint16_t port, std::string* error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string host_str(host.empty() || host == "localhost" ? "127.0.0.1"
                                                                 : std::string(host));
  if (::inet_pton(AF_INET, host_str.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad IPv4 address '" + host_str + "'";
    return {};
  }
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd) {
    set_error(error, "socket");
    return {};
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    set_error(error, "connect");
    return {};
  }
  set_tcp_nodelay(fd.get());
  return fd;
}

std::optional<std::uint16_t> local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) return std::nullopt;
  return ntohs(addr.sin_port);
}

bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace hoiho::util
