#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace hoiho::util {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Shared scan_stalled body (contract in the header). The scanner reads
// busy_since first, then task_seq: if the worker finishes and starts a new
// task in between, the worst case is one stall attributed to the newer seq
// — an off-by-one in attribution, never a double count.
std::size_t scan_heartbeats(std::vector<Heartbeat>& hbs, std::vector<std::uint64_t>& reported,
                            std::uint64_t threshold_ms) {
  if (reported.size() != hbs.size()) reported.assign(hbs.size(), 0);
  const std::uint64_t now = steady_now_ns();
  const std::uint64_t threshold_ns = threshold_ms * 1'000'000ULL;
  std::size_t fresh = 0;
  for (std::size_t i = 0; i < hbs.size(); ++i) {
    const std::uint64_t busy = hbs[i].busy_since_ns.load(std::memory_order_acquire);
    if (busy == 0 || now - busy < threshold_ns) continue;
    const std::uint64_t seq = hbs[i].task_seq.load(std::memory_order_acquire);
    if (seq == reported[i]) continue;  // this episode already counted
    reported[i] = seq;
    ++fresh;
  }
  return fresh;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads, std::size_t queue_capacity)
    : queue_capacity_(queue_capacity == 0 ? 1 : queue_capacity) {
  if (threads == 0) threads = 1;
  executed_per_worker_.assign(threads, 0);
  heartbeats_ = std::vector<Heartbeat>(threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i](std::stop_token stop) { worker(stop, i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  for (std::jthread& w : workers_) w.request_stop();
  cv_work_.notify_all();
  // jthread destructors join; workers drain the queue before exiting.
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mu_);
    cv_room_.wait(lock, [this] { return queue_.size() < queue_capacity_ || stopping_; });
    if (stopping_) return;  // shutting down: drop the task
    queue_.push_back(std::move(task));
    ++in_flight_;
    ++submitted_;
    max_queue_depth_ = std::max(max_queue_depth_, queue_.size());
  }
  cv_work_.notify_one();
}

ThreadPool::Stats ThreadPool::stats() const {
  std::lock_guard lock(mu_);
  Stats s{submitted_, executed_, queue_.size(), max_queue_depth_, {}};
  s.workers.resize(executed_per_worker_.size());
  for (std::size_t i = 0; i < executed_per_worker_.size(); ++i) {
    s.workers[i].executed = executed_per_worker_[i];
    s.workers[i].max_queue_depth = max_queue_depth_;  // shared queue: same high-water
  }
  return s;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker(std::stop_token stop, std::size_t index) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_work_.wait(lock, [&] { return !queue_.empty() || stopping_ || stop.stop_requested(); });
      if (queue_.empty()) return;  // only leave once the queue is drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    cv_room_.notify_one();
    Heartbeat& hb = heartbeats_[index];
    hb.task_seq.fetch_add(1, std::memory_order_relaxed);
    hb.busy_since_ns.store(steady_now_ns(), std::memory_order_release);
    task();
    hb.busy_since_ns.store(0, std::memory_order_release);
    {
      std::lock_guard lock(mu_);
      --in_flight_;
      ++executed_;
      ++executed_per_worker_[index];
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

std::size_t ThreadPool::scan_stalled(std::uint64_t threshold_ms) {
  return scan_heartbeats(heartbeats_, stall_reported_, threshold_ms);
}

std::size_t ThreadPool::resolve(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

// --- WorkStealingPool --------------------------------------------------------

WorkStealingPool::WorkStealingPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  shards_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) shards_.push_back(std::make_unique<Shard>());
  heartbeats_ = std::vector<Heartbeat>(threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i](std::stop_token stop) { worker(stop, i); });
}

WorkStealingPool::~WorkStealingPool() {
  {
    std::lock_guard lock(idle_mu_);
    stopping_ = true;
  }
  for (std::jthread& w : workers_) w.request_stop();
  cv_work_.notify_all();
  // jthread destructors join; workers drain every deque before exiting.
}

void WorkStealingPool::seed(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  const std::uint64_t now = steady_now_ns();
  const std::size_t n_workers = shards_.size();
  in_flight_.fetch_add(tasks.size(), std::memory_order_relaxed);
  queued_.fetch_add(tasks.size(), std::memory_order_release);
  submitted_.fetch_add(tasks.size(), std::memory_order_relaxed);
  // One pass per worker: collect its round-robin share, push under one lock.
  for (std::size_t w = 0; w < n_workers; ++w) {
    Shard& shard = *shards_[w];
    const std::lock_guard lock(shard.mu);
    for (std::size_t i = w; i < tasks.size(); i += n_workers)
      shard.deque.push_back(Task{std::move(tasks[i]), now});
    shard.stats.max_queue_depth = std::max(shard.stats.max_queue_depth, shard.deque.size());
  }
  {
    // Fence against a sleeper that checked queued_ but hasn't blocked yet.
    const std::lock_guard lock(idle_mu_);
  }
  cv_work_.notify_all();
}

void WorkStealingPool::submit(std::function<void()> task) {
  // Pick the shallowest deque by an unlocked scan; the race is benign (the
  // choice is a load-balancing hint, not a correctness property).
  std::size_t best = 0, best_depth = static_cast<std::size_t>(-1);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::size_t d = [&] {
      const std::lock_guard lock(shards_[i]->mu);
      return shards_[i]->deque.size();
    }();
    if (d < best_depth) {
      best = i;
      best_depth = d;
    }
  }
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  queued_.fetch_add(1, std::memory_order_release);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  {
    Shard& shard = *shards_[best];
    const std::lock_guard lock(shard.mu);
    shard.deque.push_back(Task{std::move(task), steady_now_ns()});
    shard.stats.max_queue_depth = std::max(shard.stats.max_queue_depth, shard.deque.size());
  }
  {
    // Fence against a sleeper that checked queued_ but hasn't blocked yet.
    const std::lock_guard lock(idle_mu_);
  }
  cv_work_.notify_all();
}

void WorkStealingPool::wait_idle() {
  std::unique_lock lock(idle_mu_);
  cv_idle_.wait(lock, [this] { return in_flight_.load(std::memory_order_acquire) == 0; });
}

bool WorkStealingPool::wait_idle_for(std::chrono::milliseconds timeout) {
  std::unique_lock lock(idle_mu_);
  return cv_idle_.wait_for(lock, timeout,
                           [this] { return in_flight_.load(std::memory_order_acquire) == 0; });
}

std::size_t WorkStealingPool::scan_stalled(std::uint64_t threshold_ms) {
  return scan_heartbeats(heartbeats_, stall_reported_, threshold_ms);
}

WorkStealingPool::Stats WorkStealingPool::stats() const {
  Stats s;
  s.submitted = submitted_.load(std::memory_order_acquire);
  s.workers.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const std::lock_guard lock(shard->mu);
    s.workers.push_back(shard->stats);
  }
  for (const WorkerStats& w : s.workers) {
    s.executed += w.executed;
    s.tasks_stolen += w.stolen;
    s.steal_failures += w.steal_failures;
    s.max_queue_depth = std::max(s.max_queue_depth, w.max_queue_depth);
  }
  return s;
}

bool WorkStealingPool::try_pop_own(std::size_t index, Task& out) {
  Shard& shard = *shards_[index];
  const std::lock_guard lock(shard.mu);
  if (shard.deque.empty()) return false;
  out = std::move(shard.deque.front());  // own deque: front, biggest-first
  shard.deque.pop_front();
  queued_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool WorkStealingPool::try_steal(std::size_t thief, Task& out) {
  const std::size_t n = shards_.size();
  for (std::size_t k = 1; k < n; ++k) {
    Shard& victim = *shards_[(thief + k) % n];
    const std::lock_guard lock(victim.mu);
    if (victim.deque.empty()) continue;
    out = std::move(victim.deque.back());  // victim's back: smallest remaining
    victim.deque.pop_back();
    queued_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  {
    Shard& own = *shards_[thief];
    const std::lock_guard lock(own.mu);
    ++own.stats.steal_failures;
  }
  return false;
}

void WorkStealingPool::run_task(std::size_t index, Task& task) {
  if (queue_wait_ns_)
    queue_wait_ns_.observe(static_cast<double>(steady_now_ns() - task.enqueue_ns));
  Heartbeat& hb = heartbeats_[index];
  hb.task_seq.fetch_add(1, std::memory_order_relaxed);
  hb.busy_since_ns.store(steady_now_ns(), std::memory_order_release);
  task.fn();
  hb.busy_since_ns.store(0, std::memory_order_release);
  {
    Shard& own = *shards_[index];
    const std::lock_guard lock(own.mu);
    ++own.stats.executed;
  }
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task out: wake wait_idle(). Take the lock so the notify cannot
    // slip between the waiter's predicate check and its wait.
    const std::lock_guard lock(idle_mu_);
    cv_idle_.notify_all();
  }
}

void WorkStealingPool::worker(std::stop_token stop, std::size_t index) {
  for (;;) {
    Task task;
    if (try_pop_own(index, task)) {
      run_task(index, task);
      continue;
    }
    // Only scan victims while tasks are believed *queued* — in_flight_ would
    // also count currently-executing tasks, and gating on it makes every
    // waiting worker busy-spin (and rack up steal failures) for as long as
    // any long task runs anywhere in the pool.
    if (queued_.load(std::memory_order_acquire) > 0 && try_steal(index, task)) {
      {
        Shard& own = *shards_[index];
        const std::lock_guard lock(own.mu);
        ++own.stats.stolen;
      }
      run_task(index, task);
      continue;
    }
    // Every deque looked empty: sleep until new work is seeded or we stop.
    std::unique_lock lock(idle_mu_);
    if (stopping_ || stop.stop_requested()) {
      // Drain check: another thread may have seeded between our scan and
      // the lock; only exit once the scan-and-stop state is consistent.
      lock.unlock();
      if (!try_pop_own(index, task) && !try_steal(index, task)) return;
      run_task(index, task);
      continue;
    }
    cv_work_.wait_for(lock, std::chrono::milliseconds(50), [&] {
      return stopping_ || stop.stop_requested() ||
             queued_.load(std::memory_order_acquire) > 0;
    });
  }
}

}  // namespace hoiho::util
