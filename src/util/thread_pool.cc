#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace hoiho::util {

ThreadPool::ThreadPool(std::size_t threads, std::size_t queue_capacity)
    : queue_capacity_(queue_capacity == 0 ? 1 : queue_capacity) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this](std::stop_token stop) { worker(stop); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  for (std::jthread& w : workers_) w.request_stop();
  cv_work_.notify_all();
  // jthread destructors join; workers drain the queue before exiting.
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mu_);
    cv_room_.wait(lock, [this] { return queue_.size() < queue_capacity_ || stopping_; });
    if (stopping_) return;  // shutting down: drop the task
    queue_.push_back(std::move(task));
    ++in_flight_;
    ++submitted_;
    max_queue_depth_ = std::max(max_queue_depth_, queue_.size());
  }
  cv_work_.notify_one();
}

ThreadPool::Stats ThreadPool::stats() const {
  std::lock_guard lock(mu_);
  return Stats{submitted_, executed_, queue_.size(), max_queue_depth_};
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker(std::stop_token stop) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_work_.wait(lock, [&] { return !queue_.empty() || stopping_ || stop.stop_requested(); });
      if (queue_.empty()) return;  // only leave once the queue is drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    cv_room_.notify_one();
    task();
    {
      std::lock_guard lock(mu_);
      --in_flight_;
      ++executed_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

std::size_t ThreadPool::resolve(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace hoiho::util
