#include "dns/hostname.h"

#include <cctype>

namespace hoiho::dns {

bool valid_hostname(std::string_view s) {
  if (s.empty() || s.size() > 255) return false;
  if (s.front() == '.' || s.back() == '.') return false;
  std::size_t label_len = 0;
  for (char c : s) {
    if (c == '.') {
      if (label_len == 0) return false;  // empty label
      label_len = 0;
      continue;
    }
    const unsigned char u = static_cast<unsigned char>(c);
    if (!(std::islower(u) || std::isdigit(u) || c == '-' || c == '_')) return false;
    if (++label_len > 63) return false;
  }
  return label_len > 0;
}

namespace {

// Parses already-canonical (lower-cased) bytes the caller owns.
std::optional<Hostname> parse_canonical(std::string_view canonical, const PublicSuffixList& psl) {
  if (!valid_hostname(canonical)) return std::nullopt;
  const std::string_view suffix = psl.registered_domain(canonical);
  if (suffix.empty()) return std::nullopt;
  Hostname h;
  h.full = canonical;
  h.suffix_pos = canonical.size() - suffix.size();
  return h;
}

}  // namespace

std::optional<Hostname> parse_hostname(std::string_view raw, util::Arena& arena,
                                       const PublicSuffixList& psl) {
  // Lower-case into a stack buffer first: rejects (oversized, bad charset,
  // no registered domain) leave no residue in the arena.
  char buf[256];
  if (raw.empty() || raw.size() > 255) return std::nullopt;
  for (std::size_t i = 0; i < raw.size(); ++i)
    buf[i] = static_cast<char>(std::tolower(static_cast<unsigned char>(raw[i])));
  const auto h = parse_canonical({buf, raw.size()}, psl);
  if (!h) return std::nullopt;
  Hostname out = *h;
  out.full = arena.intern(h->full);
  return out;
}

std::optional<Hostname> parse_hostname(std::string_view raw, std::string& storage,
                                       const PublicSuffixList& psl) {
  storage = util::to_lower(raw);
  return parse_canonical(storage, psl);
}

}  // namespace hoiho::dns
