#include "dns/hostname.h"

#include <cctype>

namespace hoiho::dns {

bool valid_hostname(std::string_view s) {
  if (s.empty() || s.size() > 255) return false;
  if (s.front() == '.' || s.back() == '.') return false;
  std::size_t label_len = 0;
  for (char c : s) {
    if (c == '.') {
      if (label_len == 0) return false;  // empty label
      label_len = 0;
      continue;
    }
    const unsigned char u = static_cast<unsigned char>(c);
    if (!(std::islower(u) || std::isdigit(u) || c == '-' || c == '_')) return false;
    if (++label_len > 63) return false;
  }
  return label_len > 0;
}

std::optional<Hostname> parse_hostname(std::string_view raw, const PublicSuffixList& psl) {
  Hostname h;
  h.full = util::to_lower(raw);
  if (!valid_hostname(h.full)) return std::nullopt;
  const std::string_view suffix = psl.registered_domain(h.full);
  if (suffix.empty()) return std::nullopt;
  h.suffix_pos = h.full.size() - suffix.size();
  return h;
}

}  // namespace hoiho::dns
