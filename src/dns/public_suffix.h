// Public suffix handling (paper §5.1.2).
//
// The method groups hostnames by the *registered domain suffix* under which
// an operator registers names: the public suffix (effective TLD, e.g. "com",
// "net.au") plus one more label ("cogentco.com", "ccnw.net.au"). The paper
// uses the Mozilla Public Suffix List; this module embeds the subset of that
// list relevant to router hostnames and accepts additional rules (or a full
// PSL file) at runtime.
#pragma once

#include <string>
#include <string_view>
#include <unordered_set>

namespace hoiho::dns {

class PublicSuffixList {
 public:
  PublicSuffixList() = default;

  // A PSL with the embedded rule set. Built once, then shared.
  static const PublicSuffixList& builtin();

  // Adds one rule, e.g. "net.au". Lower-cases; ignores empty/comment lines,
  // so a real PSL file can be streamed through this.
  void add_rule(std::string_view rule);

  std::size_t rule_count() const { return rules_.size(); }

  // Longest public suffix of `hostname` present in the rule set; empty view
  // if none. `hostname` must be lower-case.
  std::string_view public_suffix(std::string_view hostname) const;

  // The registered domain: public suffix plus one label ("he.net" for
  // "core1.ash1.he.net"). Empty if the hostname has no label beyond the
  // public suffix (or no public suffix at all).
  std::string_view registered_domain(std::string_view hostname) const;

 private:
  std::unordered_set<std::string> rules_;
  std::size_t max_labels_ = 0;
};

}  // namespace hoiho::dns
