#include "dns/public_suffix.h"

#include <vector>

#include "util/strings.h"

namespace hoiho::dns {

namespace {

// Embedded rule set: generic TLDs plus the country-code TLDs and
// second-level registries that appear in router hostname corpora.
constexpr const char* kBuiltinRules[] = {
    // Generic.
    "com", "net", "org", "edu", "gov", "mil", "int", "info", "biz", "name",
    "io", "co", "me", "tv", "cc", "ws", "us", "eu", "asia", "cloud", "host",
    // Country codes.
    "ca", "mx", "br", "ar", "cl", "pe", "ec", "ve", "pa", "cr", "gt",
    "uk", "ie", "fr", "de", "nl", "be", "lu", "ch", "at", "cz", "sk", "pl",
    "hu", "ro", "bg", "hr", "rs", "si", "gr", "tr", "it", "es", "pt", "se",
    "no", "dk", "fi", "is", "lv", "lt", "ee", "ua", "ru",
    "jp", "kr", "cn", "hk", "tw", "sg", "my", "th", "id", "ph", "vn", "in",
    "pk", "bd", "lk", "au", "nz",
    "za", "ke", "ng", "gh", "eg", "ma", "tn", "dz",
    "ae", "qa", "sa", "kw", "bh", "om", "il", "jo", "lb",
    // Second-level registries.
    "co.uk", "ac.uk", "org.uk", "net.uk", "gov.uk", "me.uk",
    "com.au", "net.au", "org.au", "edu.au", "gov.au", "id.au",
    "co.jp", "ne.jp", "or.jp", "ad.jp", "ac.jp", "go.jp",
    "com.br", "net.br", "org.br", "gov.br",
    "co.nz", "net.nz", "org.nz", "ac.nz", "govt.nz",
    "co.za", "net.za", "org.za", "ac.za",
    "com.mx", "net.mx", "org.mx",
    "com.ar", "net.ar", "org.ar",
    "com.cn", "net.cn", "org.cn", "edu.cn",
    "co.in", "net.in", "org.in", "ac.in",
    "com.sg", "net.sg", "org.sg",
    "com.my", "net.my", "org.my",
    "com.tw", "net.tw", "org.tw",
    "com.hk", "net.hk", "org.hk",
    "com.tr", "net.tr", "org.tr",
    "co.kr", "ne.kr", "or.kr", "ac.kr",
    "com.ph", "net.ph", "com.vn", "net.vn",
    "com.pk", "net.pk", "com.bd", "net.bd",
    "co.id", "net.id", "or.id",
    "co.th", "net.th", "in.th", "ac.th",
    "com.sa", "net.sa", "com.ae", "net.ae",
    "co.il", "net.il", "org.il", "ac.il",
    "com.eg", "net.eg", "co.ke", "or.ke", "com.ng", "net.ng",
    "com.gh", "net.gh", "co.ma", "net.ma",
    "com.pe", "net.pe", "com.co", "net.co", "com.ec", "net.ec",
    "com.ve", "net.ve", "com.pa", "net.pa", "co.cr", "com.gt",
    "com.ua", "net.ua", "com.ru", "net.ru", "org.ru",
    "com.pl", "net.pl", "org.pl",
};

}  // namespace

const PublicSuffixList& PublicSuffixList::builtin() {
  static const PublicSuffixList psl = [] {
    PublicSuffixList p;
    for (const char* rule : kBuiltinRules) p.add_rule(rule);
    return p;
  }();
  return psl;
}

void PublicSuffixList::add_rule(std::string_view rule) {
  // Tolerate PSL file noise: comments, blanks, leading dots.
  if (rule.empty() || util::starts_with(rule, "//") || rule[0] == '#') return;
  while (!rule.empty() && rule.front() == '.') rule.remove_prefix(1);
  if (rule.empty()) return;
  const std::string key = util::to_lower(rule);
  const std::size_t labels = util::split(key, ".").size();
  max_labels_ = std::max(max_labels_, labels);
  rules_.insert(key);
}

std::string_view PublicSuffixList::public_suffix(std::string_view hostname) const {
  const std::vector<std::string_view> labels = util::split(hostname, ".");
  if (labels.empty()) return {};
  // Try the longest candidate suffix first.
  const std::size_t try_max = std::min(max_labels_, labels.size());
  for (std::size_t n = try_max; n >= 1; --n) {
    // Offset of the suffix made of the last n labels.
    const std::size_t start = labels[labels.size() - n].begin() - hostname.begin();
    const std::string_view cand = hostname.substr(start);
    if (rules_.contains(std::string(cand))) return cand;
  }
  return {};
}

std::string_view PublicSuffixList::registered_domain(std::string_view hostname) const {
  const std::string_view ps = public_suffix(hostname);
  if (ps.empty() || ps.size() == hostname.size()) return {};
  // One more label to the left of the public suffix.
  const std::size_t dot_before_ps = hostname.size() - ps.size() - 1;
  if (hostname[dot_before_ps] != '.') return {};  // defensive: ps not label-aligned
  const std::size_t prev_dot = hostname.rfind('.', dot_before_ps - 1);
  const std::size_t start = (prev_dot == std::string_view::npos) ? 0 : prev_dot + 1;
  if (start >= dot_before_ps) return {};
  return hostname.substr(start);
}

}  // namespace hoiho::dns
