// Hostname parsing: canonical form, suffix extraction, and the token views
// the learner works with.
//
// A parsed hostname carries its registered-domain suffix (the grouping key
// of the whole method) and exposes the *prefix* — everything left of the
// suffix — which is where operators embed geohints.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dns/public_suffix.h"
#include "util/arena.h"
#include "util/strings.h"

namespace hoiho::dns {

// True if `s` is a plausible DNS hostname for our purposes: non-empty,
// at most 255 chars, labels of [a-z0-9_-] separated by single dots.
// Expects lower-case input.
bool valid_hostname(std::string_view s);

// A parsed hostname is a *view*: the canonical lower-cased bytes live in
// whatever storage the parse call was given (a batch arena for ingestion, a
// caller string for one-off lookups), not in per-hostname heap strings. A
// streamed batch's hostnames pack contiguously in its Topology's arena and
// free together when the batch retires. Copying a Hostname copies the view;
// the storage must outlive every copy.
struct Hostname {
  std::string_view full;       // lower-cased full hostname
  std::size_t suffix_pos = 0;  // offset of the registered-domain suffix

  // The registered-domain suffix, e.g. "ntt.net".
  std::string_view suffix() const { return full.substr(suffix_pos); }

  // Everything before ".suffix" — may be empty for the apex name.
  std::string_view prefix() const {
    return suffix_pos == 0 ? std::string_view{} : full.substr(0, suffix_pos - 1);
  }

  // Dot-separated labels of the prefix, with positions into full.
  std::vector<util::Token> labels() const { return util::split_tokens(prefix(), '.'); }
};

// Canonicalizes (lower-cases) and parses `raw`; std::nullopt if the hostname
// is invalid or has no registered-domain suffix under `psl`. The canonical
// bytes are interned into `arena` (only for accepted names — rejects leave
// no residue), and the returned Hostname views them.
std::optional<Hostname> parse_hostname(std::string_view raw, util::Arena& arena,
                                       const PublicSuffixList& psl = PublicSuffixList::builtin());

// One-off form for call sites without an arena (the serving lookup path,
// small tools): the canonical bytes go into `storage`, which must outlive
// the returned Hostname.
std::optional<Hostname> parse_hostname(std::string_view raw, std::string& storage,
                                       const PublicSuffixList& psl = PublicSuffixList::builtin());

}  // namespace hoiho::dns
