// Hostname parsing: canonical form, suffix extraction, and the token views
// the learner works with.
//
// A parsed hostname carries its registered-domain suffix (the grouping key
// of the whole method) and exposes the *prefix* — everything left of the
// suffix — which is where operators embed geohints.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dns/public_suffix.h"
#include "util/strings.h"

namespace hoiho::dns {

// True if `s` is a plausible DNS hostname for our purposes: non-empty,
// at most 255 chars, labels of [a-z0-9_-] separated by single dots.
// Expects lower-case input.
bool valid_hostname(std::string_view s);

struct Hostname {
  std::string full;    // lower-cased full hostname
  std::size_t suffix_pos = 0;  // offset of the registered-domain suffix

  // The registered-domain suffix, e.g. "ntt.net".
  std::string_view suffix() const { return std::string_view(full).substr(suffix_pos); }

  // Everything before ".suffix" — may be empty for the apex name.
  std::string_view prefix() const {
    return suffix_pos == 0 ? std::string_view{}
                           : std::string_view(full).substr(0, suffix_pos - 1);
  }

  // Dot-separated labels of the prefix, with positions into full.
  std::vector<util::Token> labels() const { return util::split_tokens(prefix(), '.'); }
};

// Canonicalizes (lower-cases) and parses `raw`; std::nullopt if the hostname
// is invalid or has no registered-domain suffix under `psl`.
std::optional<Hostname> parse_hostname(std::string_view raw,
                                       const PublicSuffixList& psl = PublicSuffixList::builtin());

}  // namespace hoiho::dns
