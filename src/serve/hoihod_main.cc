// hoihod — the geolocation serving daemon.
//
// Serve a saved convention file over the line protocol:
//
//   hoihod --model conv.txt --port 9009
//   printf 'ae2.cr1.lhr1.example.net\n' | nc 127.0.0.1 9009
//
// The model hot-reloads: SIGHUP forces a reload, and --watch-ms polls the
// file's mtime so an atomic rename() deploy is picked up automatically.
// In-flight requests keep the snapshot they started with (see
// serve/model_store.h); a reload never drops a request.
//
// The GEO verb fuses hostname extraction with RTT feasibility and a
// population prior (DESIGN.md §13). Feed it measurements with:
//
//   hoihod --model conv.txt --subjects subj.csv --rtt rtt.txt \
//          [--population pop.csv]
//
// --subjects maps servable subjects (addresses/hostnames) to the router
// ids the RTT file samples; without it GEO still answers from the
// hostname + population signals alone.
//
// For demos/CI without a learned model on hand, --write-demo-model runs
// the full learning pipeline on a synthetic world and writes a convention
// file plus (with --hosts-out) a hostname list that the model answers —
// ready-made input for bench/serve_loadgen. --rtt-out and --subjects-out
// additionally dump the synthetic RTT campaign and subject map, so a
// fully fused GEO daemon can be stood up from nothing.

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "core/geolocate.h"
#include "core/hoiho.h"
#include "core/nc_io.h"
#include "core/ncb.h"
#include "fuse/fuser.h"
#include "fuse/rank.h"
#include "measure/rtt_io.h"
#include "serve/metrics_http.h"
#include "serve/server.h"
#include "sim/probing.h"
#include "util/failpoint.h"

using namespace hoiho;

namespace {

std::atomic<int> g_signal{0};

void on_signal(int sig) { g_signal.store(sig, std::memory_order_relaxed); }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --model FILE [--port N] [--workers N] [--bind-any]\n"
               "          [--port-file FILE] [--watch-ms N] [--deadline-ms N]\n"
               "          [--idle-timeout-ms N] [--max-inflight N] [--drain-timeout-ms N]\n"
               "          [--metrics-port N] [--subjects FILE] [--rtt FILE]\n"
               "          [--population FILE] [--rtt-slack-ms X]\n"
               "          [--keep-generations N] [--canary-file FILE]\n"
               "          [--worker-stall-ms N] [--delta-watch FILE]\n"
               "       %s --write-demo-model FILE [--operators N] [--hosts-out FILE]\n"
               "          [--rtt-out FILE] [--subjects-out FILE]\n"
               "--subjects + --rtt arm the GEO verb with RTT feasibility filtering\n"
               "(subject,router[,hostname] CSV + a V/R measurement file); --population\n"
               "overrides dictionary populations (city[,state],country,population).\n"
               "--metrics-port serves Prometheus text over HTTP (GET /metrics); the\n"
               "same data is available in-protocol via the METRICS and STATS2 verbs.\n"
               "--keep-generations archives the last N published models next to\n"
               "--model (GENS lists them, ROLLBACK <gen> re-serves one);\n"
               "--canary-file replays pinned queries before publishing a reload and\n"
               "rejects the new model on any divergence; --worker-stall-ms counts\n"
               "lookup workers stuck on one batch longer than N ms.\n"
               "--delta-watch (or HOIHO_DELTA=FILE) polls FILE for model deltas:\n"
               "each rewrite is applied onto the serving generation via DELTA\n"
               "semantics (stale-base and torn files are rejected, not served).\n"
               "HOIHO_FAILPOINTS=site=spec;... injects faults (testing only).\n",
               argv0, argv0);
  return 1;
}

int write_demo_model(const std::string& model_path, std::size_t operators,
                     const std::string& hosts_path, const std::string& rtt_path,
                     const std::string& subjects_path) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  sim::WorldConfig config;
  config.seed = 20260805;
  config.operators = operators;
  config.geohint_scheme_rate = 0.8;
  const sim::World world = sim::generate_world(dict, config);
  const measure::Measurements pings = sim::probe_pings(world, {});

  const core::Hoiho hoiho(dict);
  const core::HoihoResult result = hoiho.run(world.topology, pings);
  std::vector<core::StoredConvention> stored;
  core::Geolocator check(dict);
  for (const core::SuffixResult& sr : result.suffixes) {
    if (!sr.usable()) continue;
    stored.push_back(core::StoredConvention{sr.nc, sr.cls});
    check.add(sr.nc);
  }
  // Extension-dispatched: FILE ending in .ncb gets the binary format the
  // store mmaps; anything else stays text.
  std::string save_error;
  if (!core::save_model_to_file(model_path, stored, dict, &save_error)) {
    std::fprintf(stderr, "hoihod: %s\n", save_error.c_str());
    return 2;
  }
  std::printf("hoihod: wrote %zu conventions to %s\n", stored.size(), model_path.c_str());

  if (!hosts_path.empty()) {
    std::ofstream hosts(hosts_path);
    if (!hosts) {
      std::fprintf(stderr, "hoihod: cannot write '%s'\n", hosts_path.c_str());
      return 2;
    }
    std::size_t n = 0;
    for (const sim::HostnameTruth& truth : world.truths) {
      if (!check.locate(truth.hostname)) continue;
      hosts << truth.hostname << '\n';
      ++n;
    }
    std::printf("hoihod: wrote %zu answerable hostnames to %s\n", n, hosts_path.c_str());
  }

  if (!rtt_path.empty()) {
    std::ofstream rtt(rtt_path);
    if (!rtt) {
      std::fprintf(stderr, "hoihod: cannot write '%s'\n", rtt_path.c_str());
      return 2;
    }
    measure::save_measurements(rtt, pings);
    std::printf("hoihod: wrote %zu-VP RTT campaign to %s\n", pings.vps.size(),
                rtt_path.c_str());
  }

  if (!subjects_path.empty()) {
    std::ofstream subj(subjects_path);
    if (!subj) {
      std::fprintf(stderr, "hoihod: cannot write '%s'\n", subjects_path.c_str());
      return 2;
    }
    std::size_t n = 0;
    for (const topo::Router& router : world.topology.routers()) {
      std::string first_hostname;
      for (const topo::Interface& ifc : router.interfaces)
        if (ifc.hostname) {
          first_hostname = ifc.hostname->full;
          break;
        }
      for (const topo::Interface& ifc : router.interfaces) {
        if (ifc.hostname) {
          subj << ifc.hostname->full << ',' << router.id << '\n';
          ++n;
        }
        if (!ifc.address.empty()) {
          subj << ifc.address << ',' << router.id << ',' << first_hostname << '\n';
          ++n;
        }
      }
    }
    std::printf("hoihod: wrote %zu subject bindings to %s\n", n, subjects_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string model_path, demo_path, hosts_path, port_file;
  std::string rtt_path, subjects_path, population_path, rtt_out, subjects_out;
  std::uint16_t port = 9009;
  std::size_t workers = 0, operators = 60;
  int watch_ms = 1000;
  int deadline_ms = 0, idle_timeout_ms = 0, drain_timeout_ms = 5000;
  std::size_t max_inflight = 0;
  bool bind_any = false;
  int metrics_port = -1;  // < 0 = exporter off; 0 = ephemeral
  double rtt_slack_ms = 0.0;
  std::size_t keep_generations = 0;
  std::string canary_path, delta_path;
  int worker_stall_ms = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--model") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      model_path = v;
    } else if (arg == "--write-demo-model") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      demo_path = v;
    } else if (arg == "--hosts-out") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      hosts_path = v;
    } else if (arg == "--rtt-out") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      rtt_out = v;
    } else if (arg == "--subjects-out") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      subjects_out = v;
    } else if (arg == "--rtt") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      rtt_path = v;
    } else if (arg == "--subjects") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      subjects_path = v;
    } else if (arg == "--population") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      population_path = v;
    } else if (arg == "--rtt-slack-ms") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      rtt_slack_ms = std::atof(v);
    } else if (arg == "--port-file") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      port_file = v;
    } else if (arg == "--port") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--workers") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      workers = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--operators") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      operators = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--watch-ms") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      watch_ms = std::atoi(v);
    } else if (arg == "--deadline-ms") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      deadline_ms = std::atoi(v);
    } else if (arg == "--idle-timeout-ms") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      idle_timeout_ms = std::atoi(v);
    } else if (arg == "--max-inflight") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      max_inflight = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--drain-timeout-ms") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      drain_timeout_ms = std::atoi(v);
    } else if (arg == "--metrics-port") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      metrics_port = std::atoi(v);
    } else if (arg == "--keep-generations") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      keep_generations = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--canary-file") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      canary_path = v;
    } else if (arg == "--worker-stall-ms") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      worker_stall_ms = std::atoi(v);
    } else if (arg == "--delta-watch") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      delta_path = v;
    } else if (arg == "--bind-any") {
      bind_any = true;
    } else {
      return usage(argv[0]);
    }
  }

  if (!demo_path.empty())
    return write_demo_model(demo_path, operators, hosts_path, rtt_out, subjects_out);
  if (model_path.empty()) return usage(argv[0]);
  if (!rtt_path.empty() && subjects_path.empty()) {
    std::fprintf(stderr, "hoihod: --rtt requires --subjects (router id mapping)\n");
    return usage(argv[0]);
  }

  {
    std::string fp_error;
    const int fp = util::failpoint::configure_from_env("HOIHO_FAILPOINTS", &fp_error);
    if (fp < 0) {
      std::fprintf(stderr, "hoihod: HOIHO_FAILPOINTS: %s\n", fp_error.c_str());
      return 1;
    }
    if (fp > 0) std::fprintf(stderr, "hoihod: %d failpoint(s) armed\n", fp);
  }

  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  serve::ModelStore store(dict, model_path);
  // Lineage/canary arm before the first load: the boot model is archived as
  // a generation too, and a model that fails its canary refuses to serve.
  if (keep_generations > 0) store.set_keep_generations(keep_generations);
  if (!canary_path.empty()) store.set_canary(canary_path);
  // Flag wins over the env var so a unit file can pin the env default and a
  // one-off run can still override it.
  if (delta_path.empty())
    if (const char* env = std::getenv("HOIHO_DELTA"); env != nullptr && env[0] != '\0')
      delta_path = env;
  if (!delta_path.empty()) store.set_delta_watch(delta_path);
  if (const auto err = store.reload()) {
    std::fprintf(stderr, "hoihod: %s\n", err->c_str());
    return 2;
  }
  const auto snap = store.current();
  std::printf("hoihod: loaded %zu conventions, %zu compiled programs (generation %llu) from %s\n",
              snap->convention_count, snap->program_count,
              static_cast<unsigned long long>(snap->generation), model_path.c_str());
  for (const std::string& w : snap->warnings)
    std::fprintf(stderr, "hoihod: model warning: %s\n", w.c_str());

  if (!subjects_path.empty() || !population_path.empty()) {
    io::LoadOptions lopt;
    lopt.lenient = true;  // measurement archives are messy; skip + count

    std::vector<fuse::SubjectRow> subjects;
    if (!subjects_path.empty()) {
      std::ifstream sin(subjects_path);
      if (!sin) {
        std::fprintf(stderr, "hoihod: cannot open subjects file '%s'\n", subjects_path.c_str());
        return 2;
      }
      io::LoadReport srep;
      auto loaded = fuse::load_subjects(sin, lopt, &srep);
      if (!loaded) {
        std::fprintf(stderr, "hoihod: subjects file '%s': %s\n", subjects_path.c_str(),
                     srep.error.c_str());
        return 2;
      }
      subjects = std::move(*loaded);
    }
    std::size_t router_count = 0;
    for (const fuse::SubjectRow& sr : subjects)
      router_count = std::max(router_count, static_cast<std::size_t>(sr.router) + 1);

    measure::Measurements meas;
    if (!rtt_path.empty()) {
      std::ifstream rin(rtt_path);
      if (!rin) {
        std::fprintf(stderr, "hoihod: cannot open RTT file '%s'\n", rtt_path.c_str());
        return 2;
      }
      io::LoadReport rrep;
      auto loaded = measure::load_measurements(rin, router_count, lopt, &rrep);
      if (!loaded) {
        std::fprintf(stderr, "hoihod: RTT file '%s': %s\n", rtt_path.c_str(),
                     rrep.error.c_str());
        return 2;
      }
      meas = std::move(*loaded);
      if (rrep.skipped_total() > 0)
        std::fprintf(stderr, "hoihod: RTT file: skipped %zu bad lines\n",
                     rrep.skipped_total());
    }

    fuse::PopulationPrior prior;
    if (!population_path.empty()) {
      std::ifstream pin(population_path);
      if (!pin) {
        std::fprintf(stderr, "hoihod: cannot open population file '%s'\n",
                     population_path.c_str());
        return 2;
      }
      io::LoadReport prep;
      auto loaded = fuse::PopulationPrior::load(pin, dict, lopt, &prep);
      if (!loaded) {
        std::fprintf(stderr, "hoihod: population file '%s': %s\n", population_path.c_str(),
                     prep.error.c_str());
        return 2;
      }
      prior = std::move(*loaded);
    }

    const std::size_t vp_count = meas.vps.size();
    const auto ctx = fuse::FuseContext::build(subjects, std::move(meas), dict,
                                              std::move(prior));
    const bool grid = ctx->grid() != nullptr;
    store.set_fuse_context(ctx);
    std::printf("hoihod: GEO armed: %zu subjects, %zu VPs, grid=%s\n",
                ctx->subject_count(), vp_count, grid ? "dense" : "fallback");
  }

  serve::ServerConfig config;
  config.audit.fuse.rtt.slack_ms = rtt_slack_ms;
  config.port = port;
  config.bind_any = bind_any;
  config.workers = workers;
  config.request_deadline_ms = deadline_ms;
  config.idle_timeout_ms = idle_timeout_ms;
  config.max_inflight = max_inflight;
  config.drain_timeout_ms = drain_timeout_ms;
  config.worker_stall_ms = worker_stall_ms;
  config.tick_ms = watch_ms > 0 ? watch_ms : 500;
  // Tick (every tick_ms on the loop thread): translate signals into server
  // actions, and pick up model-file rewrites by mtime. server_ptr is set
  // right after construction, before run() can tick.
  serve::Server* server_ptr = nullptr;
  const bool has_delta_watch = !delta_path.empty();
  config.on_tick = [&server_ptr, &store, watch_ms, has_delta_watch]() {
    const int sig = g_signal.exchange(0, std::memory_order_relaxed);
    if (sig == SIGTERM) {
      // Graceful: finish in-flight work, flush, then exit 0. A second
      // SIGTERM during the drain still exits via drain_timeout_ms.
      if (!server_ptr->draining()) {
        std::printf("hoihod: SIGTERM, draining\n");
        std::fflush(stdout);
        server_ptr->drain();
      }
      return;
    }
    if (sig == SIGINT) {
      std::printf("hoihod: signal %d, shutting down\n", sig);
      server_ptr->stop();
      return;
    }
    if (sig == SIGHUP) {
      if (const auto err = store.reload()) {
        server_ptr->metrics().reload_failures.inc();
        std::fprintf(stderr, "hoihod: reload failed: %s\n", err->c_str());
      } else {
        server_ptr->metrics().reloads.inc();
        std::printf("hoihod: reloaded (generation %llu)\n",
                    static_cast<unsigned long long>(store.generation()));
      }
      return;
    }
    if (watch_ms <= 0) return;
    std::string watch_error;
    switch (store.poll_watch(&watch_error)) {
      case serve::ModelStore::WatchOutcome::kReloaded:
        server_ptr->metrics().reloads.inc();
        std::printf("hoihod: model file changed, reloaded (generation %llu)\n",
                    static_cast<unsigned long long>(store.generation()));
        break;
      case serve::ModelStore::WatchOutcome::kReloadFailed:
        // Reported once per file change (the watcher reloads only after the
        // mtime holds still), not once per poll.
        server_ptr->metrics().reload_failures.inc();
        std::fprintf(stderr, "hoihod: reload failed: %s\n", watch_error.c_str());
        break;
      case serve::ModelStore::WatchOutcome::kDebounced:
        server_ptr->metrics().reload_debounced.inc();
        break;
      case serve::ModelStore::WatchOutcome::kMissing:
      case serve::ModelStore::WatchOutcome::kUnchanged:
        break;
    }
    if (!has_delta_watch) return;
    std::string delta_error;
    switch (store.poll_delta_watch(&delta_error)) {
      case serve::ModelStore::WatchOutcome::kReloaded:
        std::printf("hoihod: delta file changed, applied (generation %llu)\n",
                    static_cast<unsigned long long>(store.generation()));
        break;
      case serve::ModelStore::WatchOutcome::kReloadFailed:
        // Like the model watch: one report per file change, not per poll.
        // delta_rejected is counted by the store itself.
        std::fprintf(stderr, "hoihod: delta apply failed: %s\n", delta_error.c_str());
        break;
      case serve::ModelStore::WatchOutcome::kDebounced:
      case serve::ModelStore::WatchOutcome::kMissing:
      case serve::ModelStore::WatchOutcome::kUnchanged:
        break;
    }
  };
  serve::Server server(store, config);
  server_ptr = &server;

  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "hoihod: %s\n", error.c_str());
    return 1;
  }
  std::unique_ptr<serve::MetricsHttp> exporter;
  if (metrics_port >= 0) {
    exporter = std::make_unique<serve::MetricsHttp>(
        server.metrics().registry(), static_cast<std::uint16_t>(metrics_port), bind_any);
    if (!exporter->start(&error)) {
      std::fprintf(stderr, "hoihod: metrics exporter: %s\n", error.c_str());
      return 1;
    }
    std::printf("hoihod: metrics on http://%s:%u/metrics\n",
                bind_any ? "0.0.0.0" : "127.0.0.1", static_cast<unsigned>(exporter->port()));
  }
  if (!port_file.empty()) {
    std::ofstream pf(port_file);
    pf << server.port() << '\n';
  }
  std::printf("hoihod: listening on %s:%u\n", bind_any ? "0.0.0.0" : "127.0.0.1",
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  std::signal(SIGHUP, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  server.run();
  std::printf("hoihod: bye\n");
  return 0;
}
