#include "serve/metrics.h"

namespace hoiho::serve {

Metrics::Metrics(obs::Registry* registry) {
  if (registry == nullptr) {
    owned_ = std::make_unique<obs::Registry>();
    registry = owned_.get();
  }
  registry_ = registry;
  obs::Registry& r = *registry_;

  // Effects before causes: snapshot() reads in registration order, so
  // reading hits/misses/errors *before* requests keeps
  // requests >= hits + misses in every snapshot (a counter registered
  // earlier can only be older). Same for the reload and batch families.
  hits = r.counter("serve_hits");
  misses = r.counter("serve_misses");
  errors = r.counter("serve_errors");
  requests = r.counter("serve_requests");
  admin = r.counter("serve_admin");

  reload_failures = r.counter("serve_reload_failures");
  reloads = r.counter("serve_reloads");
  reload_debounced = r.counter("serve_reload_debounced");

  deadline_expired = r.counter("serve_deadline_expired");
  shed_busy = r.counter("serve_shed_busy");
  idle_closed = r.counter("serve_idle_closed");
  injected_faults = r.counter("serve_injected_faults");

  batched_lines = r.counter("serve_batched_lines");
  batches = r.counter("serve_batches");

  connections_closed = r.counter("serve_connections_closed");
  connections_opened = r.counter("serve_connections_opened");

  parse_ns = r.counter("serve_parse_ns");
  lookup_ns = r.counter("serve_lookup_ns");
  write_ns = r.counter("serve_write_ns");

  batch_ns = r.histogram("serve_batch_ns");

  // Registered after the frozen STATS v1 set: these surface only through
  // the registry (STATS2 / METRICS / the bench registry snapshot).
  reload_rejected = r.counter("serve_reload_rejected");
  rollbacks = r.counter("serve_rollbacks");
  worker_stalled = r.counter("serve_worker_stalled");

  // Model-format family (DESIGN.md §15). Registered unconditionally so the
  // names exist (at zero) even before the first reload — schema guards and
  // dashboards key on presence.
  reload_us = r.histogram("serve_reload_us");
  load_bytes_mapped = r.counter("model_load_bytes_mapped");
  load_build_us_text = r.counter("model_load_build_us{format=\"text\"}");
  load_build_us_ncb = r.counter("model_load_build_us{format=\"ncb\"}");
  load_build_us_ncb_mmap = r.counter("model_load_build_us{format=\"ncb_mmap\"}");

  // Incremental-delta family (DESIGN.md §16). Rejections before applies,
  // same effects-before-causes discipline as above.
  delta_rejected = r.counter("serve_delta_rejected");
  delta_applies = r.counter("serve_delta_applies");
  delta_apply_us = r.histogram("serve_delta_apply_us");
  model_generation = r.gauge("model_generation");

  geob_subjects = r.counter("serve_geob_subjects");
  geob_batches = r.counter("serve_geob_batches");
}

Metrics::Snapshot Metrics::snapshot() const {
  const obs::Snapshot snap = registry_->snapshot();
  Snapshot s;
  s.requests = snap.value("serve_requests");
  s.hits = snap.value("serve_hits");
  s.misses = snap.value("serve_misses");
  s.errors = snap.value("serve_errors");
  s.admin = snap.value("serve_admin");
  s.reloads = snap.value("serve_reloads");
  s.reload_failures = snap.value("serve_reload_failures");
  s.reload_debounced = snap.value("serve_reload_debounced");
  s.deadline_expired = snap.value("serve_deadline_expired");
  s.shed_busy = snap.value("serve_shed_busy");
  s.idle_closed = snap.value("serve_idle_closed");
  s.injected_faults = snap.value("serve_injected_faults");
  s.batches = snap.value("serve_batches");
  s.batched_lines = snap.value("serve_batched_lines");
  s.connections_opened = snap.value("serve_connections_opened");
  s.connections_closed = snap.value("serve_connections_closed");
  s.parse_ns = snap.value("serve_parse_ns");
  s.lookup_ns = snap.value("serve_lookup_ns");
  s.write_ns = snap.value("serve_write_ns");
  return s;
}

}  // namespace hoiho::serve
