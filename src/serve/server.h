// hoihod's network front end: a non-blocking epoll event loop over the
// line-oriented lookup protocol (serve/protocol.h).
//
// Threading model — one I/O thread, N lookup workers:
//
//   event loop (run())      util::ThreadPool workers
//   ─────────────────       ────────────────────────
//   accept / read bytes
//   split complete lines
//   batch -> submit ──────> grab ModelStore snapshot once per batch,
//                           answer every line, time the lookups
//   drain completions <──── push result + wake via eventfd
//   reorder per-connection
//   write / backpressure
//
// Batches from one connection are sequenced, so pipelined clients get
// responses in request order even though batches complete out of order
// across workers. Admin verbs (STATS/RELOAD) ride the same batch path,
// which is what makes a RELOAD mid-pipeline ordered and lossless: requests
// before it are answered by the old snapshot, requests after it by the new
// one, and nothing is dropped.
//
// The Server owns no model: it borrows a ModelStore (hot-reloadable, see
// serve/model_store.h) and a Metrics block that STATS reports from.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "fuse/audit.h"
#include "serve/metrics.h"
#include "serve/model_store.h"
#include "util/net.h"
#include "util/thread_pool.h"

namespace hoiho::serve {

struct ServerConfig {
  std::uint16_t port = 0;   // 0 = ephemeral; read back with Server::port()
  bool bind_any = false;    // false = loopback only (the safe default)
  std::size_t workers = 0;  // lookup threads; 0 = hardware concurrency

  std::size_t max_batch = 256;   // request lines per dispatched batch
  std::size_t max_line = 1024;   // a longer line is a protocol violation
  std::size_t max_output_buffer = 1 << 20;  // pause reading a conn above this

  // Fault tolerance (DESIGN.md §9). All default off so tests and embedders
  // opt in explicitly.
  int request_deadline_ms = 0;   // >0: batches queued longer answer ERR,deadline
  int idle_timeout_ms = 0;       // >0: reap connections idle this long
  std::size_t max_inflight = 0;  // >0: lines in flight above this answer ERR,busy
  int drain_timeout_ms = 5000;   // drain() waits at most this for in-flight work

  // GEO verb tuning: fusion weights/slack plus the agree radius a claimed
  // coordinate is audited against. The measurement context itself rides in
  // the ModelSnapshot (ModelStore::set_fuse_context).
  fuse::AuditConfig audit;

  // If > 0, on_tick runs every tick_ms on the event-loop thread (used by
  // the daemon for SIGHUP polling and model-file mtime watching).
  int tick_ms = 0;
  std::function<void()> on_tick;

  // Worker watchdog (0 = off): each tick, lookup workers busy on one batch
  // longer than this are counted in serve_worker_stalled (one episode per
  // batch). Needs tick_ms > 0 — the scan rides the tick.
  int worker_stall_ms = 0;

  // Metrics registry the server's counters land in. Null (default) gives
  // the Server a private registry; pass a shared one to merge the serve_*
  // metrics into a process-wide snapshot (must outlive the Server).
  obs::Registry* registry = nullptr;
};

class Server {
 public:
  Server(ModelStore& store, ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds + listens and builds the worker pool; false (with *error) on
  // failure. Must succeed before run().
  bool start(std::string* error = nullptr);

  // The bound port (valid after start(); useful with port = 0).
  std::uint16_t port() const { return port_; }

  // Runs the event loop until stop(). Blocking; call from a dedicated
  // thread if the caller needs to keep working.
  void run();

  // Requests loop exit. Safe from any thread and from signal context is
  // NOT guaranteed — signal handlers should set a flag an on_tick checks,
  // or write to their own descriptor.
  void stop();

  // Graceful drain (what SIGTERM should do): stop accepting, let in-flight
  // batches finish and flush, close connections as they go idle, then exit
  // run(). Bounded by config.drain_timeout_ms — a client that never stops
  // pipelining cannot wedge shutdown. Safe from any thread (same caveat as
  // stop() for signal context).
  void drain();
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  Metrics& metrics() { return metrics_; }
  const ModelStore& store() const { return store_; }

 private:
  struct Connection {
    std::uint64_t id = 0;
    util::Fd fd;
    std::string in_buf;
    std::string out_buf;
    std::size_t out_off = 0;  // bytes of out_buf already sent
    std::uint64_t next_submit_seq = 0;
    std::uint64_t next_flush_seq = 0;
    std::map<std::uint64_t, std::string> done;  // out-of-order completions
    bool peer_closed = false;
    bool want_write = false;
    bool reads_paused = false;
    std::uint64_t last_activity_ms = 0;  // steady ms of last byte in/out

    bool idle() const {
      return next_flush_seq == next_submit_seq && out_off == out_buf.size();
    }
  };

  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    std::size_t line_count = 0;  // credits returned to the inflight budget
    std::string data;
  };

  void accept_ready();
  void on_readable(Connection& c);
  void on_writable(Connection& c);
  void dispatch(Connection& c, std::vector<std::string> lines);
  void process_batch(std::uint64_t conn_id, std::uint64_t seq,
                     std::uint64_t enqueue_ns, std::vector<std::string> lines);
  void drain_completions();
  void sweep_idle();   // close connections idle past idle_timeout_ms
  void drain_step();   // progress graceful drain; may set stopping_
  int loop_timeout_ms(std::chrono::steady_clock::time_point next_tick) const;
  void flush_ready(Connection& c);  // reorder done batches, flush, maybe close
  void flush(Connection& c);
  void update_epoll(Connection& c);
  void maybe_close(Connection& c);
  void close_connection(Connection& c);
  void wake();

  ModelStore& store_;
  ServerConfig config_;
  Metrics metrics_;  // constructed over config_.registry (or a private one)

  // GEO verb instrumentation, registered once at construction so workers
  // never take the registry mutex per request. The STATS v1 surface is
  // frozen; these land in STATS2/METRICS only.
  fuse::FuseMetrics fuse_metrics_;
  obs::Counter audit_agree_, audit_refute_, audit_unknown_;

  util::Fd epoll_fd_;
  util::Fd listen_fd_;
  util::Fd wake_fd_;  // eventfd: worker completions + stop()
  std::uint16_t port_ = 0;

  std::unique_ptr<util::ThreadPool> pool_;
  std::mutex completions_mu_;
  std::vector<Completion> completions_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  bool drain_started_ = false;  // loop thread only: listen fd deregistered
  std::chrono::steady_clock::time_point drain_deadline_{};
  std::size_t inflight_lines_ = 0;  // loop thread only: dispatched - completed
  std::uint64_t next_conn_id_ = 2;  // 0 = listen token, 1 = wake token
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
};

}  // namespace hoiho::serve
