// Minimal blocking client for the hoihod protocol — used by tests, the
// load generator, and as the reference for anyone wiring up another
// language (the protocol is just lines over TCP; see serve/protocol.h).
//
// Not thread-safe: one Client per thread. Supports pipelining: send any
// number of request lines with send_line(s), then read the same number of
// responses with read_line().
//
// Robustness knobs live in ClientOptions: a connect timeout (non-blocking
// connect + poll), per-socket I/O timeouts (SO_RCVTIMEO/SO_SNDTIMEO — a
// hung daemon turns into a failed read, not a stuck client), and
// connect_with_retry() for daemons that may be mid-restart: jittered
// exponential backoff so a fleet of reconnecting clients doesn't stampede
// the moment the listener returns.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/net.h"

namespace hoiho::serve {

struct ClientOptions {
  int connect_timeout_ms = 0;  // 0 = the OS default (minutes)
  int io_timeout_ms = 0;       // 0 = block forever on read/write

  // connect_with_retry() only: attempt k sleeps backoff_initial_ms * 2^k,
  // capped at backoff_max_ms, scaled by a uniform jitter in [0.5, 1.5).
  int max_attempts = 5;
  int backoff_initial_ms = 50;
  int backoff_max_ms = 2000;
  std::uint64_t backoff_seed = 1;  // jitter is deterministic per seed

  // connect_with_retry() only: overall wall-clock budget across every
  // attempt and backoff sleep (0 = unlimited, bounded only by
  // max_attempts). Each attempt's connect timeout and each sleep are
  // clamped to what remains; exhaustion reports "timed out" — the same
  // wording a single timed-out connect uses — so callers match one string.
  int overall_deadline_ms = 0;
};

class Client {
 public:
  // Connects to `host`:`port`; nullopt (with *error) on failure.
  static std::optional<Client> connect(std::string_view host, std::uint16_t port,
                                       std::string* error = nullptr,
                                       const ClientOptions& options = {});

  // connect() with jittered exponential backoff between attempts. Gives up
  // (nullopt, *error from the last attempt) after options.max_attempts.
  static std::optional<Client> connect_with_retry(std::string_view host,
                                                  std::uint16_t port,
                                                  const ClientOptions& options,
                                                  std::string* error = nullptr);

  // Sends one request line (newline appended); false on socket error.
  bool send_line(std::string_view line);

  // Sends many request lines in one write (pipelined).
  bool send_lines(const std::vector<std::string>& lines);

  // Reads one '\n'-terminated response line (newline stripped); nullopt on
  // EOF, socket error, or I/O timeout (check timed_out() to distinguish).
  std::optional<std::string> read_line();

  // send_line + read_line.
  std::optional<std::string> request(std::string_view line);

  // GEOB round trip: sends "GEOB <n>" plus the subject lines in one write,
  // reads the block header plus n per-subject GEO responses. Returns the n
  // response lines in subject order; nullopt on socket error, a short
  // block, or a server-side ERR (e.g. over kMaxGeobBatch — check *error).
  std::optional<std::vector<std::string>> geolocate_batch(
      const std::vector<std::string_view>& subjects, std::string* error = nullptr);

  // DELTA round trip: asks the daemon to apply the model-delta file at
  // `path` (a path on the *server's* filesystem). Returns the response
  // line ("DELTA,ok,...") or nullopt with *error on socket failure or a
  // "DELTA,error,..." / "ERR,..." response.
  std::optional<std::string> apply_delta(std::string_view path,
                                         std::string* error = nullptr);

  // True when the last failed read_line() hit the io_timeout_ms budget
  // rather than EOF/error. Cleared by the next successful read.
  bool timed_out() const { return timed_out_; }

  bool connected() const { return fd_.valid(); }
  void close() { fd_.reset(); }

 private:
  explicit Client(util::Fd fd) : fd_(std::move(fd)) {}

  util::Fd fd_;
  std::string buf_;        // bytes read but not yet returned
  std::size_t buf_off_ = 0;
  bool timed_out_ = false;
};

}  // namespace hoiho::serve
