// Minimal blocking client for the hoihod protocol — used by tests, the
// load generator, and as the reference for anyone wiring up another
// language (the protocol is just lines over TCP; see serve/protocol.h).
//
// Not thread-safe: one Client per thread. Supports pipelining: send any
// number of request lines with send_line(s), then read the same number of
// responses with read_line().
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/net.h"

namespace hoiho::serve {

class Client {
 public:
  // Connects to `host`:`port`; nullopt (with *error) on failure.
  static std::optional<Client> connect(std::string_view host, std::uint16_t port,
                                       std::string* error = nullptr);

  // Sends one request line (newline appended); false on socket error.
  bool send_line(std::string_view line);

  // Sends many request lines in one write (pipelined).
  bool send_lines(const std::vector<std::string>& lines);

  // Reads one '\n'-terminated response line (newline stripped); nullopt on
  // EOF or socket error.
  std::optional<std::string> read_line();

  // send_line + read_line.
  std::optional<std::string> request(std::string_view line);

  bool connected() const { return fd_.valid(); }
  void close() { fd_.reset(); }

 private:
  explicit Client(util::Fd fd) : fd_(std::move(fd)) {}

  util::Fd fd_;
  std::string buf_;        // bytes read but not yet returned
  std::size_t buf_off_ = 0;
};

}  // namespace hoiho::serve
