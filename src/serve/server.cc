#include "serve/server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "serve/protocol.h"
#include "util/failpoint.h"

namespace hoiho::serve {

namespace {

constexpr std::uint64_t kListenToken = 0;
constexpr std::uint64_t kWakeToken = 1;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t now_ms() { return now_ns() / 1000000u; }

bool epoll_add(int epfd, int fd, std::uint64_t token, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = token;
  return ::epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev) == 0;
}

}  // namespace

Server::Server(ModelStore& store, ServerConfig config)
    : store_(store),
      config_(std::move(config)),
      metrics_(config_.registry),
      fuse_metrics_(metrics_.registry()),
      audit_agree_(metrics_.registry().counter("audit_agree")),
      audit_refute_(metrics_.registry().counter("audit_refute")),
      audit_unknown_(metrics_.registry().counter("audit_unknown")) {
  // The store's canary/rollback counters land in this server's registry.
  store_.set_metrics(&metrics_);
}

Server::~Server() {
  // Drain the worker pool before tearing down the members its tasks touch
  // (wake_fd_, completions_). Pool destruction runs queued batches to
  // completion; their results are simply never flushed.
  pool_.reset();
}

bool Server::start(std::string* error) {
  listen_fd_ = util::listen_tcp(config_.port, error, config_.bind_any);
  if (!listen_fd_) return false;
  if (!util::set_nonblocking(listen_fd_.get())) {
    if (error != nullptr) *error = "cannot set listen socket non-blocking";
    return false;
  }
  const auto bound = util::local_port(listen_fd_.get());
  if (!bound) {
    if (error != nullptr) *error = "getsockname failed";
    return false;
  }
  port_ = *bound;

  epoll_fd_.reset(::epoll_create1(EPOLL_CLOEXEC));
  wake_fd_.reset(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!epoll_fd_ || !wake_fd_) {
    if (error != nullptr) *error = std::string("epoll/eventfd: ") + std::strerror(errno);
    return false;
  }
  if (!epoll_add(epoll_fd_.get(), listen_fd_.get(), kListenToken, EPOLLIN) ||
      !epoll_add(epoll_fd_.get(), wake_fd_.get(), kWakeToken, EPOLLIN)) {
    if (error != nullptr) *error = std::string("epoll_ctl: ") + std::strerror(errno);
    return false;
  }
  pool_ = std::make_unique<util::ThreadPool>(util::ThreadPool::resolve(config_.workers));
  return true;
}

void Server::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_.get(), &one, sizeof(one));
}

void Server::stop() {
  stopping_.store(true, std::memory_order_release);
  wake();
}

void Server::drain() {
  draining_.store(true, std::memory_order_release);
  wake();
}

int Server::loop_timeout_ms(std::chrono::steady_clock::time_point next_tick) const {
  using std::chrono::duration_cast;
  using std::chrono::milliseconds;
  long long timeout = -1;
  const auto clamp = [&timeout](long long ms) {
    ms = std::max<long long>(0, ms);
    if (timeout < 0 || ms < timeout) timeout = ms;
  };
  const auto now = std::chrono::steady_clock::now();
  if (config_.tick_ms > 0)
    clamp(duration_cast<milliseconds>(next_tick - now).count());
  if (config_.idle_timeout_ms > 0 && !conns_.empty())
    // Sweep at half the timeout so a connection is reaped at most 1.5x late.
    clamp(std::max(config_.idle_timeout_ms / 2, 10));
  if (drain_started_)
    clamp(duration_cast<milliseconds>(drain_deadline_ - now).count());
  return static_cast<int>(std::min<long long>(timeout, 1 << 30));
}

void Server::run() {
  using Clock = std::chrono::steady_clock;
  auto next_tick = Clock::now() + std::chrono::milliseconds(
                                      config_.tick_ms > 0 ? config_.tick_ms : 0);
  epoll_event events[64];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_.get(), events, 64, loop_timeout_ms(next_tick));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (config_.tick_ms > 0 && Clock::now() >= next_tick) {
      next_tick = Clock::now() + std::chrono::milliseconds(config_.tick_ms);
      // Watchdog: a worker wedged on one batch (slow model, livelocked
      // lookup) is surfaced as a counter instead of silently eating a
      // thread. One episode per batch (see util::Heartbeat).
      if (config_.worker_stall_ms > 0 && pool_ != nullptr) {
        metrics_.worker_stalled.add(
            pool_->scan_stalled(static_cast<std::uint64_t>(config_.worker_stall_ms)));
      }
      if (config_.on_tick) config_.on_tick();
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t token = events[i].data.u64;
      if (token == kWakeToken) {
        std::uint64_t count = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fd_.get(), &count, sizeof(count));
        drain_completions();
      } else if (token == kListenToken) {
        accept_ready();
      } else {
        const auto it = conns_.find(token);
        if (it == conns_.end()) continue;  // closed earlier this wakeup
        Connection& c = *it->second;
        if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 &&
            (events[i].events & EPOLLIN) == 0) {
          close_connection(c);
          continue;
        }
        if ((events[i].events & EPOLLOUT) != 0) on_writable(c);
        if (conns_.find(token) == conns_.end()) continue;
        if ((events[i].events & EPOLLIN) != 0) on_readable(c);
      }
    }
    if (config_.idle_timeout_ms > 0) sweep_idle();
    if (draining_.load(std::memory_order_acquire)) drain_step();
  }
}

void Server::sweep_idle() {
  const std::uint64_t now = now_ms();
  const auto limit = static_cast<std::uint64_t>(config_.idle_timeout_ms);
  std::vector<std::uint64_t> reap;
  for (const auto& [id, conn] : conns_) {
    if (conn->idle() && conn->done.empty() && now - conn->last_activity_ms > limit)
      reap.push_back(id);
  }
  for (const std::uint64_t id : reap) {
    const auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    metrics_.idle_closed.inc();
    close_connection(*it->second);
  }
}

void Server::drain_step() {
  if (!drain_started_) {
    drain_started_ = true;
    drain_deadline_ = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(std::max(config_.drain_timeout_ms, 0));
    // Stop accepting; connections already established keep being served.
    // Closing the listen socket (not just deregistering it) makes new
    // connects fail outright instead of parking in the kernel backlog.
    ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, listen_fd_.get(), nullptr);
    listen_fd_.reset();
  }
  // Close connections as they go quiet. A connection with in-flight batches
  // or unflushed output is left alone — its answers land first.
  std::vector<std::uint64_t> done_ids;
  for (const auto& [id, conn] : conns_) {
    if (conn->idle() && conn->done.empty()) done_ids.push_back(id);
  }
  for (const std::uint64_t id : done_ids) {
    const auto it = conns_.find(id);
    if (it != conns_.end()) close_connection(*it->second);
  }
  if (conns_.empty() || std::chrono::steady_clock::now() >= drain_deadline_)
    stopping_.store(true, std::memory_order_release);
}

void Server::accept_ready() {
  for (;;) {
    if (util::failpoint::any_active()) {
      const auto f = util::failpoint::hit("serve.accept");
      if (f.kind != util::failpoint::Kind::kOff)
        metrics_.injected_faults.inc();
      if (f.kind == util::failpoint::Kind::kError)
        return;  // simulated EMFILE/ENFILE: listen socket stays armed
    }
    const int fd = ::accept4(listen_fd_.get(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the listen socket stays armed
    }
    util::set_tcp_nodelay(fd);
    auto conn = std::make_unique<Connection>();
    conn->id = next_conn_id_++;
    conn->fd.reset(fd);
    conn->last_activity_ms = now_ms();
    if (!epoll_add(epoll_fd_.get(), fd, conn->id, EPOLLIN)) continue;
    metrics_.connections_opened.inc();
    conns_.emplace(conn->id, std::move(conn));
  }
}

void Server::on_readable(Connection& c) {
  const std::uint64_t t0 = now_ns();
  char buf[16384];
  for (;;) {
    const ssize_t n = ::recv(c.fd.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      c.in_buf.append(buf, static_cast<std::size_t>(n));
      c.last_activity_ms = now_ms();
      if (c.in_buf.size() >= config_.max_line) break;  // parse before reading on
    } else if (n == 0) {
      // EOF: deregister EPOLLIN immediately — a level-triggered fd at EOF
      // stays readable forever and would spin the loop while in-flight
      // batches finish.
      c.peer_closed = true;
      update_epoll(c);
      break;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    } else if (errno == EINTR) {
      continue;
    } else {
      close_connection(c);
      return;
    }
  }

  std::vector<std::string> lines;
  std::size_t start = 0;
  bool oversized = false;
  for (;;) {
    const std::size_t pos = c.in_buf.find('\n', start);
    if (pos == std::string::npos) break;
    if (pos - start > config_.max_line) {
      oversized = true;
      break;
    }
    const std::string_view line(c.in_buf.data() + start, pos - start);
    if (const auto count = parse_geob_count(line)) {
      // GEOB group framing: the header and its `count` subject lines enter
      // one batch together or not at all. An incomplete group stays in
      // in_buf (start is not advanced) until the subjects arrive; the
      // group may push the batch past max_batch — it is never split. A
      // *malformed* header takes the ordinary path below and is answered
      // ERR without consuming any subject lines.
      std::vector<std::pair<std::size_t, std::size_t>> subjects;
      subjects.reserve(*count);
      std::size_t scan = pos + 1;
      bool complete = true;
      while (subjects.size() < *count) {
        const std::size_t eol = c.in_buf.find('\n', scan);
        if (eol == std::string::npos) {
          complete = false;
          break;
        }
        if (eol - scan > config_.max_line) {
          oversized = true;
          complete = false;
          break;
        }
        subjects.emplace_back(scan, eol - scan);
        scan = eol + 1;
      }
      if (!complete) break;
      lines.emplace_back(line);
      for (const auto& [s, len] : subjects) lines.emplace_back(c.in_buf, s, len);
      start = scan;
    } else {
      lines.emplace_back(line);
      start = pos + 1;
    }
    if (lines.size() >= config_.max_batch) {
      dispatch(c, std::move(lines));
      lines.clear();
    }
  }
  c.in_buf.erase(0, start);
  if (!lines.empty()) dispatch(c, std::move(lines));

  // A retained incomplete GEOB group keeps complete (bounded) lines in
  // in_buf, so the oversize check applies to the trailing partial line
  // only — exactly what the pre-GEOB `in_buf.size()` check measured.
  const std::size_t last_nl = c.in_buf.rfind('\n');
  const std::size_t partial =
      last_nl == std::string::npos ? c.in_buf.size() : c.in_buf.size() - last_nl - 1;
  if (oversized || partial >= config_.max_line) {
    // A line over the cap — terminated or still streaming in — is a
    // protocol violation. Answer through the ordered completion path
    // (after any lines dispatched above), then drop the connection once
    // everything is flushed.
    metrics_.errors.inc();
    c.done[c.next_submit_seq++] = format_error("oversized line") + "\n";
    c.in_buf.clear();
    c.peer_closed = true;
    update_epoll(c);
  }
  metrics_.parse_ns.add(now_ns() - t0);

  const std::uint64_t id = c.id;
  drain_completions();
  const auto it = conns_.find(id);
  if (it != conns_.end()) flush_ready(*it->second);  // stashed errors + close
}

void Server::dispatch(Connection& c, std::vector<std::string> lines) {
  const std::uint64_t seq = c.next_submit_seq++;
  if (config_.max_inflight > 0 && inflight_lines_ >= config_.max_inflight) {
    // Shed at admission: answer every line ERR,busy through the ordered
    // completion path without touching the worker pool, so an overloaded
    // server degrades to fast rejections instead of unbounded queueing.
    metrics_.shed_busy.add(lines.size());
    std::string out;
    out.reserve(lines.size() * 10);
    for (std::size_t i = 0; i < lines.size(); ++i) out += format_error("busy") + "\n";
    c.done[seq] = std::move(out);
    return;
  }
  inflight_lines_ += lines.size();
  metrics_.batches.inc();
  metrics_.batched_lines.add(lines.size());
  pool_->submit(
      [this, id = c.id, seq, t0 = now_ns(), lines = std::move(lines)]() mutable {
        process_batch(id, seq, t0, std::move(lines));
      });
}

void Server::process_batch(std::uint64_t conn_id, std::uint64_t seq,
                           std::uint64_t enqueue_ns, std::vector<std::string> lines) {
  if (util::failpoint::any_active()) {
    // Artificial worker latency ("serve.process=delay:50"): the lever chaos
    // tests use to force deadline expiry and inflight shedding on demand.
    const auto f = util::failpoint::hit("serve.process");
    if (f.kind != util::failpoint::Kind::kOff)
      metrics_.injected_faults.inc();
  }
  const std::uint64_t t0 = now_ns();
  if (config_.request_deadline_ms > 0 &&
      t0 - enqueue_ns > static_cast<std::uint64_t>(config_.request_deadline_ms) * 1000000u) {
    // The batch sat queued past its deadline; the client has likely timed
    // out, so answer cheaply rather than burn lookup time on dead requests.
    metrics_.deadline_expired.add(lines.size());
    std::string out;
    out.reserve(lines.size() * 14);
    for (std::size_t i = 0; i < lines.size(); ++i) out += format_error("deadline") + "\n";
    {
      std::lock_guard lock(completions_mu_);
      completions_.push_back(Completion{conn_id, seq, lines.size(), std::move(out)});
    }
    wake();
    return;
  }
  // One snapshot per batch: lookups within a batch see one model generation
  // even if a reload lands mid-batch.
  std::shared_ptr<const ModelSnapshot> snap = store_.current();
  std::string out;
  out.reserve(lines.size() * 24);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const Request req = parse_request(lines[i]);
    if (!req.error.empty()) {
      // Shared named-error emission: the verb table (protocol.cc) did the
      // arity/argument checking; every malformed verb answers here so the
      // handlers below only ever see well-formed requests.
      if (req.kind == RequestKind::kGeo || req.kind == RequestKind::kGeoBatch) {
        metrics_.requests.inc();
      } else {
        metrics_.admin.inc();
      }
      metrics_.errors.inc();
      out += format_error(req.error);
      out += '\n';
      continue;
    }
    switch (req.kind) {
      case RequestKind::kLookup: {
        metrics_.requests.inc();
        const auto loc = snap->geolocator.locate(req.hostname);
        if (loc) {
          metrics_.hits.inc();
          out += format_hit(*loc);
        } else {
          metrics_.misses.inc();
          out += format_miss();
        }
        break;
      }
      case RequestKind::kGeo: {
        metrics_.requests.inc();
        std::optional<geo::Coordinate> claimed;
        if (req.has_claimed) claimed = req.claimed;
        // Cheap per-batch facade over the pinned snapshot: the Fuser itself
        // holds only references + config, so constructing one here keeps
        // every GEO line in this batch on one (model, context) generation.
        const fuse::Fuser fuser(snap->geolocator, snap->fuse.get(),
                                config_.audit.fuse, fuse_metrics_);
        const fuse::FuseResult fused = fuser.fuse(req.subject, claimed);
        std::optional<fuse::AuditOutcome> audit;
        if (req.has_claimed) {
          audit = fuse::classify_claim(fused, req.claimed, config_.audit.agree_km);
          switch (*audit) {
            case fuse::AuditOutcome::kAgree: audit_agree_.inc(); break;
            case fuse::AuditOutcome::kRefute: audit_refute_.inc(); break;
            case fuse::AuditOutcome::kUnknown: audit_unknown_.inc(); break;
          }
        }
        if (fused.answered()) {
          metrics_.hits.inc();
        } else {
          metrics_.misses.inc();
        }
        out += format_geo(fused, audit);
        break;
      }
      case RequestKind::kGeoBatch: {
        // The framing in on_readable guarantees the subject lines follow
        // the header inside this batch; a short group can only mean a bug,
        // answered as a named error rather than misreading subjects.
        const std::size_t n = req.geob_count;
        if (lines.size() - i - 1 < n) {
          metrics_.requests.inc();
          metrics_.errors.inc();
          out += format_error("geob_truncated");
          break;
        }
        metrics_.geob_batches.inc();
        metrics_.geob_subjects.add(n);
        out += format_geob_header(n);
        out += '\n';
        // One Fuser — one snapshot, one RTT-filter context — for the whole
        // block: the batch verb's point is amortizing this over n subjects.
        const fuse::Fuser fuser(snap->geolocator, snap->fuse.get(),
                                config_.audit.fuse, fuse_metrics_);
        for (std::size_t k = 0; k < n; ++k) {
          std::string_view subject = lines[++i];
          if (!subject.empty() && subject.back() == '\r') subject.remove_suffix(1);
          metrics_.requests.inc();
          const fuse::FuseResult fused = fuser.fuse(subject, std::nullopt);
          if (fused.answered()) {
            metrics_.hits.inc();
          } else {
            metrics_.misses.inc();
          }
          out += format_geo(fused);
          if (k + 1 < n) out += '\n';  // the shared tail adds the last one
        }
        break;
      }
      case RequestKind::kDelta: {
        metrics_.admin.inc();
        ModelStore::DeltaApply applied;
        if (const auto err = store_.apply_delta_file(std::string(req.path), &applied)) {
          out += format_delta_error(*err);
        } else {
          out += format_delta_ok(applied.new_generation, applied.base_generation,
                                 applied.upserts, applied.removes, applied.conventions);
          snap = store_.current();  // later lines in this batch see the new model
        }
        break;
      }
      case RequestKind::kStats:
        metrics_.admin.inc();
        out += format_stats(metrics_.snapshot(), snap->generation,
                            snap->convention_count, snap->program_count);
        break;
      case RequestKind::kStats2:
        metrics_.admin.inc();
        out += format_stats_v2(metrics_.registry().snapshot(), snap->generation,
                               snap->convention_count, snap->program_count);
        break;
      case RequestKind::kMetrics:
        metrics_.admin.inc();
        out += format_metrics_text(metrics_.registry().snapshot(), snap->generation,
                                   snap->convention_count, snap->program_count);
        break;
      case RequestKind::kReload: {
        metrics_.admin.inc();
        const auto err = store_.reload();
        if (err) {
          metrics_.reload_failures.inc();
          out += format_reload_error(*err);
        } else {
          metrics_.reloads.inc();
          const auto fresh = store_.current();
          out += format_reload_ok(fresh->generation, fresh->convention_count);
          snap = fresh;  // later lines in this batch see the new model
        }
        break;
      }
      case RequestKind::kGens:
        metrics_.admin.inc();
        out += format_gens(store_.generation(), store_.list_generations());
        break;
      case RequestKind::kRollback: {
        metrics_.admin.inc();
        std::uint64_t published = 0;
        const std::uint64_t from = req.rollback_gen;
        if (const auto err = store_.rollback(from, &published)) {
          out += format_rollback_error(*err);
        } else {
          const auto fresh = store_.current();
          out += format_rollback_ok(published, from, fresh->convention_count);
          snap = fresh;  // later lines in this batch see the restored model
        }
        break;
      }
      case RequestKind::kEmpty:
        metrics_.errors.inc();
        out += format_error("empty request");
        break;
      case RequestKind::kUnknownVerb:
        metrics_.errors.inc();
        out += format_error("unknown_verb");
        break;
    }
    out += '\n';
  }
  const std::uint64_t batch_ns = now_ns() - t0;
  metrics_.lookup_ns.add(batch_ns);
  metrics_.batch_ns.observe(static_cast<double>(batch_ns));
  {
    std::lock_guard lock(completions_mu_);
    completions_.push_back(Completion{conn_id, seq, lines.size(), std::move(out)});
  }
  wake();
}

void Server::drain_completions() {
  std::vector<Completion> done;
  {
    std::lock_guard lock(completions_mu_);
    done.swap(completions_);
  }
  for (Completion& comp : done) {
    // Credit the inflight budget even for closed connections — their
    // batches consumed worker capacity all the same.
    inflight_lines_ -= std::min(inflight_lines_, comp.line_count);
    const auto it = conns_.find(comp.conn_id);
    if (it == conns_.end()) continue;  // connection closed while in flight
    it->second->done[comp.seq] = std::move(comp.data);
  }
  // Flush every connection that received data (re-find: flush can close).
  for (Completion& comp : done) {
    const auto it = conns_.find(comp.conn_id);
    if (it == conns_.end()) continue;
    flush_ready(*it->second);
  }
}

void Server::flush_ready(Connection& c) {
  while (true) {
    const auto dit = c.done.find(c.next_flush_seq);
    if (dit == c.done.end()) break;
    c.out_buf += dit->second;
    c.done.erase(dit);
    ++c.next_flush_seq;
  }
  const std::uint64_t id = c.id;
  flush(c);  // may close and destroy c
  const auto again = conns_.find(id);
  if (again != conns_.end()) maybe_close(*again->second);
}

void Server::flush(Connection& c) {
  const std::uint64_t t0 = now_ns();
  while (c.out_off < c.out_buf.size()) {
    std::size_t want = c.out_buf.size() - c.out_off;
    if (util::failpoint::any_active()) {
      const auto f = util::failpoint::hit("serve.write");
      if (f.kind != util::failpoint::Kind::kOff)
        metrics_.injected_faults.inc();
      if (f.kind == util::failpoint::Kind::kEintr) continue;
      if (f.kind == util::failpoint::Kind::kError) {
        metrics_.write_ns.add(now_ns() - t0);
        close_connection(c);  // simulated peer reset
        return;
      }
      if (f.kind == util::failpoint::Kind::kShort) want = (want + 1) / 2;
    }
    const ssize_t n =
        ::send(c.fd.get(), c.out_buf.data() + c.out_off, want, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_off += static_cast<std::size_t>(n);
      c.last_activity_ms = now_ms();
    } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      metrics_.write_ns.add(now_ns() - t0);
      close_connection(c);
      return;
    }
  }
  if (c.out_off == c.out_buf.size()) {
    c.out_buf.clear();
    c.out_off = 0;
  } else if (c.out_off > (1u << 16)) {
    c.out_buf.erase(0, c.out_off);
    c.out_off = 0;
  }
  const bool want_write = c.out_off < c.out_buf.size();
  const bool pause = c.out_buf.size() - c.out_off > config_.max_output_buffer;
  const bool resume = c.reads_paused &&
                      c.out_buf.size() - c.out_off < config_.max_output_buffer / 2;
  if (want_write != c.want_write || pause != c.reads_paused || resume) {
    c.want_write = want_write;
    c.reads_paused = pause;
    update_epoll(c);
  }
  metrics_.write_ns.add(now_ns() - t0);
}

void Server::update_epoll(Connection& c) {
  epoll_event ev{};
  ev.data.u64 = c.id;
  ev.events = 0;
  if (!c.reads_paused && !c.peer_closed) ev.events |= EPOLLIN;
  if (c.want_write) ev.events |= EPOLLOUT;
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, c.fd.get(), &ev);
}

void Server::on_writable(Connection& c) { flush(c); }

void Server::maybe_close(Connection& c) {
  if (c.peer_closed && c.idle() && c.done.empty()) close_connection(c);
}

void Server::close_connection(Connection& c) {
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, c.fd.get(), nullptr);
  metrics_.connections_closed.inc();
  conns_.erase(c.id);  // destroys c
}

}  // namespace hoiho::serve
