#include "serve/protocol.h"

#include <charconv>

#include "util/strings.h"

namespace hoiho::serve {

namespace {

// True for a token that could only have been meant as a verb: all
// [A-Z0-9_] with at least one letter. Hostnames contain dots (and are
// conventionally lowercase), so they never qualify.
bool verb_shaped(std::string_view head) {
  bool letter = false;
  for (const char ch : head) {
    if (ch >= 'A' && ch <= 'Z') {
      letter = true;
    } else if ((ch < '0' || ch > '9') && ch != '_') {
      return false;
    }
  }
  return letter;
}

bool parse_double(std::string_view text, double* out) {
  if (text.empty()) return false;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, *out);
  return ec == std::errc() && ptr == end;
}

// "lat,lon" with both halves fully numeric and in range.
bool parse_coordinate(std::string_view text, geo::Coordinate* out) {
  const std::size_t comma = text.find(',');
  if (comma == std::string_view::npos) return false;
  if (!parse_double(text.substr(0, comma), &out->lat)) return false;
  if (!parse_double(text.substr(comma + 1), &out->lon)) return false;
  return out->valid();
}

std::string_view trim_spaces(std::string_view s) {
  while (!s.empty() && s.front() == ' ') s.remove_prefix(1);
  while (!s.empty() && s.back() == ' ') s.remove_suffix(1);
  return s;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  if (s.empty() || s.size() > 20) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

Request parse_rollback_args(std::string_view rest) {
  Request req;
  req.kind = RequestKind::kRollback;
  const auto gen = parse_u64(trim_spaces(rest));
  if (!gen) {
    req.error = "rollback_usage";
    return req;
  }
  req.rollback_gen = *gen;
  return req;
}

Request parse_geob_args(std::string_view rest) {
  Request req;
  req.kind = RequestKind::kGeoBatch;
  const auto count = parse_u64(trim_spaces(rest));
  if (!count || *count == 0 || *count > kMaxGeobBatch) {
    req.error = "geob_usage";
    return req;
  }
  req.geob_count = static_cast<std::size_t>(*count);
  return req;
}

Request parse_delta_args(std::string_view rest) {
  Request req;
  req.kind = RequestKind::kDelta;
  req.path = trim_spaces(rest);
  if (req.path.empty()) req.error = "delta_usage";
  return req;
}

Request parse_geo_args(std::string_view rest) {
  Request req;
  req.kind = RequestKind::kGeo;
  while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  while (!rest.empty() && rest.back() == ' ') rest.remove_suffix(1);
  if (rest.empty()) {
    req.error = "geo_usage";
    return req;
  }
  const std::size_t space = rest.find(' ');
  req.subject = space == std::string_view::npos ? rest : rest.substr(0, space);
  std::string_view claim =
      space == std::string_view::npos ? std::string_view() : rest.substr(space + 1);
  while (!claim.empty() && claim.front() == ' ') claim.remove_prefix(1);
  if (!claim.empty()) {
    if (!parse_coordinate(claim, &req.claimed)) {
      req.error = "bad_coordinate";
      return req;
    }
    req.has_claimed = true;
  }
  return req;
}

// The verb table: one row per wire verb, shared by every caller. Argless
// verbs (parse == nullptr) must appear bare — a trailing argument makes the
// line an unknown verb, exactly as before the table existed. Verbs with a
// parser own their argument grammar, arity checks, and named usage errors.
struct VerbSpec {
  std::string_view name;
  RequestKind kind;                         // argless verbs: the result kind
  Request (*parse)(std::string_view rest);  // non-null: verb takes arguments
};

constexpr VerbSpec kVerbs[] = {
    {"STATS", RequestKind::kStats, nullptr},
    {"STATS2", RequestKind::kStats2, nullptr},
    {"METRICS", RequestKind::kMetrics, nullptr},
    {"RELOAD", RequestKind::kReload, nullptr},
    {"GENS", RequestKind::kGens, nullptr},
    {"GEO", RequestKind::kGeo, parse_geo_args},
    {"GEOB", RequestKind::kGeoBatch, parse_geob_args},
    {"ROLLBACK", RequestKind::kRollback, parse_rollback_args},
    {"DELTA", RequestKind::kDelta, parse_delta_args},
};

}  // namespace

Request parse_request(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  Request req;
  if (line.empty()) {
    req.kind = RequestKind::kEmpty;
    return req;
  }
  const std::size_t space = line.find(' ');
  const std::string_view head =
      space == std::string_view::npos ? line : line.substr(0, space);
  const std::string_view rest =
      space == std::string_view::npos ? std::string_view() : line.substr(space + 1);
  for (const VerbSpec& verb : kVerbs) {
    if (head != verb.name) continue;
    if (verb.parse != nullptr) return verb.parse(rest);
    if (space == std::string_view::npos) {
      req.kind = verb.kind;
      return req;
    }
    break;  // argless verb with arguments: unknown verb (below)
  }
  if (space != std::string_view::npos || verb_shaped(head)) {
    // A spaced line (hostnames have no spaces) or a bare verb-shaped
    // token: answer a named error rather than a misleading MISS.
    req.kind = RequestKind::kUnknownVerb;
    return req;
  }
  req.kind = RequestKind::kLookup;
  req.hostname = line;
  return req;
}

std::optional<std::size_t> parse_geob_count(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  if (!util::starts_with(line, "GEOB ")) return std::nullopt;
  const Request req = parse_geob_args(line.substr(5));
  if (!req.error.empty()) return std::nullopt;
  return req.geob_count;
}

std::string format_hit(const core::Geolocation& g) {
  std::string out = util::fmt_double(g.coord.lat, 4);
  out += ',';
  out += util::fmt_double(g.coord.lon, 4);
  out += ',';
  out += g.code;
  out += ',';
  out += g.via_learned ? "learned" : "dictionary";
  return out;
}

std::string format_miss() { return "MISS"; }

std::string format_geo(const fuse::FuseResult& result,
                       const std::optional<fuse::AuditOutcome>& audit) {
  std::string out = "GEO,";
  if (!result.answered()) {
    out += "miss";
  } else {
    const fuse::Verdict& best = result.best();
    out += util::fmt_double(best.coord.lat, 4);
    out += ',';
    out += util::fmt_double(best.coord.lon, 4);
    out += ',';
    if (result.set.code.empty()) {
      out += '-';
    } else {
      out += result.set.code;
    }
    out += ',';
    out += fuse::to_string(best.source);
    out += ',';
    out += util::fmt_double(best.score, 3);
    std::size_t feasible = 0;
    for (const fuse::Candidate& c : result.set.candidates)
      if (c.feasible) ++feasible;
    out += ",candidates=" + std::to_string(result.set.candidates.size());
    out += ",feasible=" + std::to_string(feasible);
  }
  if (audit) {
    out += ",audit=";
    out += fuse::to_string(*audit);
  }
  return out;
}

std::string format_error(std::string_view reason) {
  return "ERR," + std::string(reason);
}

std::string format_stats(const Metrics::Snapshot& m, std::uint64_t generation,
                         std::size_t conventions, std::size_t programs) {
  std::string out = "STATS";
  const auto kv = [&out](std::string_view key, std::uint64_t value) {
    out += ',';
    out += key;
    out += '=';
    out += std::to_string(value);
  };
  kv("requests", m.requests);
  kv("hits", m.hits);
  kv("misses", m.misses);
  kv("errors", m.errors);
  kv("admin", m.admin);
  kv("reloads", m.reloads);
  kv("reload_failures", m.reload_failures);
  kv("reload_debounced", m.reload_debounced);
  kv("deadline_expired", m.deadline_expired);
  kv("shed_busy", m.shed_busy);
  kv("idle_closed", m.idle_closed);
  kv("injected_faults", m.injected_faults);
  kv("batches", m.batches);
  kv("batched_lines", m.batched_lines);
  out += ",avg_batch=" + util::fmt_double(m.avg_batch(), 2);
  kv("connections_opened", m.connections_opened);
  kv("connections_closed", m.connections_closed);
  kv("parse_ns", m.parse_ns);
  kv("lookup_ns", m.lookup_ns);
  kv("write_ns", m.write_ns);
  kv("generation", generation);
  kv("conventions", conventions);
  kv("programs", programs);
  return out;
}

std::string format_stats_v2(const obs::Snapshot& snap, std::uint64_t generation,
                            std::size_t conventions, std::size_t programs) {
  std::string out = "STATS2";
  for (const obs::Snapshot::Entry& e : snap.entries) {
    out += ',';
    out += e.name;
    switch (e.kind) {
      case obs::Kind::kCounter:
        out += ":c=" + std::to_string(e.value);
        break;
      case obs::Kind::kGauge:
        out += ":g=" + std::to_string(e.gauge);
        break;
      case obs::Kind::kHistogram:
        out += ":h=count:" + std::to_string(e.hist.count);
        out += ";sum:" + util::fmt_double(e.hist.sum, 0);
        out += ";p50:" + util::fmt_double(e.hist.percentile(0.50), 0);
        out += ";p90:" + util::fmt_double(e.hist.percentile(0.90), 0);
        out += ";p99:" + util::fmt_double(e.hist.percentile(0.99), 0);
        break;
    }
  }
  out += ",generation:g=" + std::to_string(generation);
  out += ",conventions:g=" + std::to_string(conventions);
  out += ",programs:g=" + std::to_string(programs);
  return out;
}

std::string format_metrics_text(const obs::Snapshot& snap, std::uint64_t generation,
                                std::size_t conventions, std::size_t programs) {
  std::string out = snap.to_prometheus();
  const auto gauge = [&out](std::string_view name, std::uint64_t v) {
    out += "# TYPE ";
    out += name;
    out += " gauge\n";
    out += name;
    out += ' ';
    out += std::to_string(v);
    out += '\n';
  };
  gauge("hoihod_generation", generation);
  gauge("hoihod_conventions", conventions);
  gauge("hoihod_programs", programs);
  out += "# EOF";
  return out;
}

std::string format_geob_header(std::size_t count) {
  return "GEOB," + std::to_string(count);
}

std::string format_delta_ok(std::uint64_t generation, std::uint64_t from,
                            std::size_t upserts, std::size_t removes,
                            std::size_t conventions) {
  return "DELTA,ok,generation=" + std::to_string(generation) +
         ",from=" + std::to_string(from) + ",upserts=" + std::to_string(upserts) +
         ",removes=" + std::to_string(removes) +
         ",conventions=" + std::to_string(conventions);
}

std::string format_delta_error(std::string_view message) {
  return "DELTA,error," + std::string(message);
}

std::string format_reload_ok(std::uint64_t generation, std::size_t conventions) {
  return "RELOAD,ok,generation=" + std::to_string(generation) +
         ",conventions=" + std::to_string(conventions);
}

std::string format_reload_error(std::string_view message) {
  return "RELOAD,error," + std::string(message);
}

std::string format_gens(std::uint64_t serving, const std::vector<std::uint64_t>& archived) {
  std::string out = "GENS,serving=" + std::to_string(serving) + ",archived=";
  if (archived.empty()) {
    out += '-';
    return out;
  }
  for (std::size_t i = 0; i < archived.size(); ++i) {
    if (i != 0) out += ';';
    out += std::to_string(archived[i]);
  }
  return out;
}

std::string format_rollback_ok(std::uint64_t generation, std::uint64_t from,
                               std::size_t conventions) {
  return "ROLLBACK,ok,generation=" + std::to_string(generation) +
         ",from=" + std::to_string(from) + ",conventions=" + std::to_string(conventions);
}

std::string format_rollback_error(std::string_view message) {
  return "ROLLBACK,error," + std::string(message);
}

ResponseKind classify_response(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  if (line == "MISS") return ResponseKind::kMiss;
  if (util::starts_with(line, "GEOB,")) return ResponseKind::kGeoBatch;
  if (util::starts_with(line, "GEO,")) return ResponseKind::kGeo;
  if (util::starts_with(line, "#")) return ResponseKind::kMetrics;
  if (util::starts_with(line, "STATS2")) return ResponseKind::kStats2;
  if (util::starts_with(line, "STATS")) return ResponseKind::kStats;
  if (util::starts_with(line, "RELOAD,ok")) return ResponseKind::kReload;
  if (util::starts_with(line, "RELOAD,error")) return ResponseKind::kReloadError;
  if (util::starts_with(line, "GENS,")) return ResponseKind::kGens;
  if (util::starts_with(line, "ROLLBACK,ok")) return ResponseKind::kRollback;
  if (util::starts_with(line, "ROLLBACK,error")) return ResponseKind::kRollbackError;
  if (util::starts_with(line, "DELTA,ok")) return ResponseKind::kDelta;
  if (util::starts_with(line, "DELTA,error")) return ResponseKind::kDeltaError;
  if (util::starts_with(line, "ERR,")) return ResponseKind::kError;
  return ResponseKind::kHit;
}

}  // namespace hoiho::serve
