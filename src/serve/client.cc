#include "serve/client.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <limits>
#include <thread>

#include "serve/protocol.h"
#include "util/rng.h"

namespace hoiho::serve {

std::optional<Client> Client::connect(std::string_view host, std::uint16_t port,
                                      std::string* error, const ClientOptions& options) {
  util::Fd fd = util::connect_tcp(host, port, error, options.connect_timeout_ms);
  if (!fd) return std::nullopt;
  if (options.io_timeout_ms > 0 &&
      !util::set_io_timeouts(fd.get(), options.io_timeout_ms, options.io_timeout_ms)) {
    if (error != nullptr) *error = "cannot set socket timeouts";
    return std::nullopt;
  }
  return Client(std::move(fd));
}

std::optional<Client> Client::connect_with_retry(std::string_view host, std::uint16_t port,
                                                 const ClientOptions& options,
                                                 std::string* error) {
  using Clock = std::chrono::steady_clock;
  util::Rng rng(options.backoff_seed);
  const int attempts = std::max(options.max_attempts, 1);
  const bool deadlined = options.overall_deadline_ms > 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(options.overall_deadline_ms);
  // Remaining overall budget in ms; 1 when the deadline just passed so the
  // caller still gets exactly one (instant-failing) attempt, 0 afterwards.
  const auto remaining_ms = [&]() -> long long {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - Clock::now())
                          .count();
    return std::max<long long>(left, 0);
  };
  for (int attempt = 0;; ++attempt) {
    ClientOptions per_attempt = options;
    if (deadlined) {
      const long long left = remaining_ms();
      if (left <= 0 && attempt > 0) break;
      // Clamp the connect timeout so one slow attempt cannot blow through
      // the overall budget (and an unlimited one becomes bounded).
      const long long budget = std::max<long long>(left, 1);
      if (per_attempt.connect_timeout_ms <= 0 || per_attempt.connect_timeout_ms > budget)
        per_attempt.connect_timeout_ms = static_cast<int>(std::min<long long>(
            budget, std::numeric_limits<int>::max()));
    }
    auto client = connect(host, port, error, per_attempt);
    if (client) return client;
    if (attempt + 1 >= attempts) return std::nullopt;
    // Full backoff would synchronize every client that failed at the same
    // moment; the jitter spreads the retry instants across a 2:1 window.
    long long delay = options.backoff_initial_ms;
    for (int k = 0; k < attempt && delay < options.backoff_max_ms; ++k) delay *= 2;
    delay = std::min<long long>(delay, options.backoff_max_ms);
    delay = static_cast<long long>(static_cast<double>(delay) * rng.next_range(0.5, 1.5));
    delay = std::max<long long>(delay, 1);
    if (deadlined) {
      const long long left = remaining_ms();
      if (left <= 0) break;
      delay = std::min(delay, left);  // never sleep past the deadline
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }
  // Only reached when the overall deadline expired with attempts left; use
  // the same "timed out" wording as a single timed-out connect so callers
  // can match one string for both shapes of timeout.
  if (error != nullptr)
    *error = "connect timed out after " + std::to_string(options.overall_deadline_ms) +
             "ms (overall deadline)";
  return std::nullopt;
}

bool Client::send_line(std::string_view line) {
  if (!fd_) return false;
  std::string framed(line);
  framed += '\n';
  return util::write_all(fd_.get(), framed);
}

bool Client::send_lines(const std::vector<std::string>& lines) {
  if (!fd_) return false;
  std::string framed;
  std::size_t total = 0;
  for (const std::string& l : lines) total += l.size() + 1;
  framed.reserve(total);
  for (const std::string& l : lines) {
    framed += l;
    framed += '\n';
  }
  return util::write_all(fd_.get(), framed);
}

std::optional<std::string> Client::read_line() {
  if (!fd_) return std::nullopt;
  for (;;) {
    const std::size_t pos = buf_.find('\n', buf_off_);
    if (pos != std::string::npos) {
      std::string line = buf_.substr(buf_off_, pos - buf_off_);
      buf_off_ = pos + 1;
      if (buf_off_ == buf_.size()) {
        buf_.clear();
        buf_off_ = 0;
      } else if (buf_off_ > (1u << 16)) {
        buf_.erase(0, buf_off_);
        buf_off_ = 0;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      timed_out_ = false;
      return line;
    }
    char chunk[16384];
    const ssize_t n = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf_.append(chunk, static_cast<std::size_t>(n));
    } else if (n == 0) {
      return std::nullopt;  // EOF
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      timed_out_ = true;  // SO_RCVTIMEO expired
      return std::nullopt;
    } else if (errno != EINTR) {
      return std::nullopt;
    }
  }
}

std::optional<std::string> Client::request(std::string_view line) {
  if (!send_line(line)) return std::nullopt;
  return read_line();
}

std::optional<std::vector<std::string>> Client::geolocate_batch(
    const std::vector<std::string_view>& subjects, std::string* error) {
  const auto fail = [&](std::string msg) -> std::optional<std::vector<std::string>> {
    if (error != nullptr) *error = std::move(msg);
    return std::nullopt;
  };
  if (subjects.empty()) return std::vector<std::string>{};
  // One write for the whole group: the server's framing requires the
  // header and every subject line before it dispatches the block.
  std::string framed = "GEOB " + std::to_string(subjects.size());
  framed += '\n';
  for (const std::string_view s : subjects) {
    framed += s;
    framed += '\n';
  }
  if (!fd_ || !util::write_all(fd_.get(), framed)) return fail("socket write failed");
  const auto header = read_line();
  if (!header) return fail("socket read failed");
  if (classify_response(*header) != ResponseKind::kGeoBatch)
    return fail("unexpected response: " + *header);
  std::vector<std::string> out;
  out.reserve(subjects.size());
  for (std::size_t i = 0; i < subjects.size(); ++i) {
    auto line = read_line();
    if (!line) return fail("short GEOB block (" + std::to_string(i) + "/" +
                           std::to_string(subjects.size()) + " lines)");
    out.push_back(std::move(*line));
  }
  return out;
}

std::optional<std::string> Client::apply_delta(std::string_view path, std::string* error) {
  const auto resp = request("DELTA " + std::string(path));
  if (!resp) {
    if (error != nullptr) *error = "socket error";
    return std::nullopt;
  }
  if (classify_response(*resp) != ResponseKind::kDelta) {
    if (error != nullptr) *error = *resp;
    return std::nullopt;
  }
  return resp;
}

}  // namespace hoiho::serve
