#include "serve/client.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace hoiho::serve {

std::optional<Client> Client::connect(std::string_view host, std::uint16_t port,
                                      std::string* error) {
  util::Fd fd = util::connect_tcp(host, port, error);
  if (!fd) return std::nullopt;
  return Client(std::move(fd));
}

bool Client::send_line(std::string_view line) {
  if (!fd_) return false;
  std::string framed(line);
  framed += '\n';
  return util::write_all(fd_.get(), framed);
}

bool Client::send_lines(const std::vector<std::string>& lines) {
  if (!fd_) return false;
  std::string framed;
  std::size_t total = 0;
  for (const std::string& l : lines) total += l.size() + 1;
  framed.reserve(total);
  for (const std::string& l : lines) {
    framed += l;
    framed += '\n';
  }
  return util::write_all(fd_.get(), framed);
}

std::optional<std::string> Client::read_line() {
  if (!fd_) return std::nullopt;
  for (;;) {
    const std::size_t pos = buf_.find('\n', buf_off_);
    if (pos != std::string::npos) {
      std::string line = buf_.substr(buf_off_, pos - buf_off_);
      buf_off_ = pos + 1;
      if (buf_off_ == buf_.size()) {
        buf_.clear();
        buf_off_ = 0;
      } else if (buf_off_ > (1u << 16)) {
        buf_.erase(0, buf_off_);
        buf_off_ = 0;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[16384];
    const ssize_t n = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf_.append(chunk, static_cast<std::size_t>(n));
    } else if (n == 0) {
      return std::nullopt;  // EOF
    } else if (errno != EINTR) {
      return std::nullopt;
    }
  }
}

std::optional<std::string> Client::request(std::string_view line) {
  if (!send_line(line)) return std::nullopt;
  return read_line();
}

}  // namespace hoiho::serve
