#include "serve/model_store.h"

#include <sys/stat.h>

#include <fstream>
#include <utility>

#include "util/failpoint.h"

namespace hoiho::serve {

ModelStore::ModelStore(const geo::GeoDictionary& dict, std::string path)
    : dict_(dict), path_(std::move(path)) {
  auto empty = std::make_shared<ModelSnapshot>(dict_);
  empty->source = path_.empty() ? "<memory>" : path_;
  std::lock_guard lock(snap_mu_);
  snap_ = std::move(empty);
}

ModelStore::FileStamp ModelStore::file_stamp(const std::string& path) {
  struct stat st{};
  FileStamp fs;
  if (::stat(path.c_str(), &st) != 0) return fs;
  fs.exists = true;
  fs.sec = st.st_mtim.tv_sec;
  fs.nsec = st.st_mtim.tv_nsec;
  return fs;
}

void ModelStore::publish(std::shared_ptr<ModelSnapshot> snap) {
  snap->generation = next_generation_++;
  std::shared_ptr<const ModelSnapshot> next(std::move(snap));
  std::lock_guard lock(snap_mu_);
  snap_.swap(next);
  // `next` (the previous snapshot) is released outside the lock when it
  // goes out of scope — possibly the last reference, freeing the model.
}

std::optional<std::string> ModelStore::reload() {
  std::lock_guard lock(reload_mu_);
  return reload_locked();
}

std::optional<std::string> ModelStore::reload_locked() {
  if (path_.empty()) return "model store has no file path";
  // Record the stamp before parsing so a write racing the load triggers one
  // more watch cycle rather than being missed.
  loaded_stamp_ = file_stamp(path_);
  if (const auto f = util::failpoint::hit("store.reload"))
    return "model file '" + path_ + "': injected reload failure";
  std::ifstream in(path_);
  if (!in) return "cannot open model file '" + path_ + "'";

  std::string error;
  std::vector<std::string> warnings;
  const auto loaded = core::load_conventions(in, dict_, &error, &warnings);
  if (!loaded) return "model file '" + path_ + "': " + error;

  auto snap = std::make_shared<ModelSnapshot>(dict_);
  snap->source = path_;
  snap->warnings = std::move(warnings);
  snap->fuse = fuse_ctx_;
  for (const core::StoredConvention& sc : *loaded) {
    if (sc.cls == core::NcClass::kPoor) continue;  // unusable per stage 5
    snap->geolocator.add(sc.nc, sc.cls);
  }
  snap->convention_count = snap->geolocator.convention_count();
  snap->program_count = snap->geolocator.program_count();
  publish(std::move(snap));
  return std::nullopt;
}

void ModelStore::install(const std::vector<core::StoredConvention>& conventions,
                         std::string source) {
  std::lock_guard lock(reload_mu_);
  auto snap = std::make_shared<ModelSnapshot>(dict_);
  snap->source = std::move(source);
  snap->fuse = fuse_ctx_;
  for (const core::StoredConvention& sc : conventions) {
    if (sc.cls == core::NcClass::kPoor) continue;
    snap->geolocator.add(sc.nc, sc.cls);
  }
  snap->convention_count = snap->geolocator.convention_count();
  snap->program_count = snap->geolocator.program_count();
  publish(std::move(snap));
}

void ModelStore::set_fuse_context(std::shared_ptr<const fuse::FuseContext> ctx) {
  std::lock_guard lock(reload_mu_);
  fuse_ctx_ = std::move(ctx);
  // Republish the live model with the new context: copy the current
  // snapshot (the Geolocator's compiled matchers copy with it — no regex
  // recompilation) and swap the context. Readers that pinned the previous
  // snapshot finish on the old (model, context) pair, consistently.
  std::shared_ptr<ModelSnapshot> snap;
  {
    std::lock_guard slock(snap_mu_);
    snap = std::make_shared<ModelSnapshot>(*snap_);
  }
  snap->fuse = fuse_ctx_;
  publish(std::move(snap));
}

ModelStore::WatchOutcome ModelStore::poll_watch(std::string* error) {
  std::lock_guard lock(reload_mu_);
  if (path_.empty()) return WatchOutcome::kUnchanged;
  const FileStamp now = file_stamp(path_);
  if (!now.exists) {
    // Mid-rename window of a deploy (or a genuinely deleted model). Keep
    // serving the loaded snapshot and keep watching; don't count this as a
    // failed reload.
    pending_valid_ = false;
    return WatchOutcome::kMissing;
  }
  if (now.same(loaded_stamp_)) {
    pending_valid_ = false;
    return WatchOutcome::kUnchanged;
  }
  if (!pending_valid_ || !now.same(pending_stamp_)) {
    // New mtime: wait until it holds still for one full poll interval so we
    // don't load a file another process is still writing.
    pending_stamp_ = now;
    pending_valid_ = true;
    return WatchOutcome::kDebounced;
  }
  pending_valid_ = false;
  if (const auto err = reload_locked()) {
    if (error != nullptr) *error = *err;
    return WatchOutcome::kReloadFailed;
  }
  return WatchOutcome::kReloaded;
}

}  // namespace hoiho::serve
