#include "serve/model_store.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <utility>

#include "serve/protocol.h"
#include "util/failpoint.h"
#include "util/strings.h"

namespace hoiho::serve {

namespace {

// Reads a whole file; false on open/read failure. Model files are small
// (the daemon reloads them whole anyway), so buffering in memory lets one
// read feed parsing, the canary build, and the generation archive.
bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return false;
  *out = buf.str();
  return true;
}

// Reads just enough of the file to sniff the model format (the ncb magic is
// 8 bytes). Keeps the mmap reload path from reading the whole model only to
// decide how to load it.
bool read_head(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  char buf[8] = {};
  in.read(buf, sizeof buf);
  out->assign(buf, static_cast<std::size_t>(in.gcount()));
  return true;
}

bool write_file_durable(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return false;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      ::unlink(tmp.c_str());
      return false;
    }
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

// Parses "gen-<N>.nc" / "gen-<N>.ncb"; nullopt for anything else in the
// archive dir. Archives carry the extension of the format they hold.
std::optional<std::uint64_t> gen_from_name(std::string_view name) {
  if (!util::starts_with(name, "gen-")) return std::nullopt;
  std::size_t ext = 0;
  if (util::ends_with(name, ".ncb"))
    ext = 4;
  else if (util::ends_with(name, ".nc"))
    ext = 3;
  else
    return std::nullopt;
  const std::string_view digits = name.substr(4, name.size() - 4 - ext);
  if (digits.empty() || digits.size() > 20) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

// Builds a snapshot from parsed conventions — the shared tail of the text
// reload and rollback paths (install has its own copy to keep its
// always-succeeds contract). The full list (kPoor included) is retained as
// snap->stored in canonical order so apply_delta can merge against it.
std::shared_ptr<ModelSnapshot> build_snapshot(const geo::GeoDictionary& dict,
                                              std::vector<core::StoredConvention> loaded,
                                              std::string source,
                                              std::vector<std::string> warnings,
                                              std::shared_ptr<const fuse::FuseContext> fuse) {
  auto snap = std::make_shared<ModelSnapshot>(dict);
  snap->source = std::move(source);
  snap->warnings = std::move(warnings);
  snap->fuse = std::move(fuse);
  for (const core::StoredConvention& sc : loaded) {
    if (sc.cls == core::NcClass::kPoor) continue;  // unusable per stage 5
    snap->geolocator.add(sc.nc, sc.cls);
  }
  snap->convention_count = snap->geolocator.convention_count();
  snap->program_count = snap->geolocator.program_count();
  core::sort_conventions(loaded);
  snap->stored = std::move(loaded);
  return snap;
}

// Binary twin: the Geolocator is assembled as views over the model (no
// regex recompilation); the snapshot pins the mapping via snap->ncb.
std::shared_ptr<ModelSnapshot> build_snapshot_ncb(const geo::GeoDictionary& dict,
                                                  std::shared_ptr<const core::NcbModel> model,
                                                  std::string source,
                                                  std::shared_ptr<const fuse::FuseContext> fuse) {
  auto snap = std::make_shared<ModelSnapshot>(dict);
  snap->source = std::move(source);
  snap->fuse = std::move(fuse);
  snap->format = model->mapped() ? "ncb_mmap" : "ncb";
  model->build_geolocator(snap->geolocator, &snap->warnings);
  snap->convention_count = snap->geolocator.convention_count();
  snap->program_count = snap->geolocator.program_count();
  snap->ncb = std::move(model);
  return snap;
}

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now() - t0)
                                        .count());
}

}  // namespace

ModelStore::ModelStore(const geo::GeoDictionary& dict, std::string path)
    : dict_(dict), path_(std::move(path)) {
  auto empty = std::make_shared<ModelSnapshot>(dict_);
  empty->source = path_.empty() ? "<memory>" : path_;
  std::lock_guard lock(snap_mu_);
  snap_ = std::move(empty);
}

ModelStore::FileStamp ModelStore::file_stamp(const std::string& path) {
  struct stat st{};
  FileStamp fs;
  if (::stat(path.c_str(), &st) != 0) return fs;
  fs.exists = true;
  fs.sec = st.st_mtim.tv_sec;
  fs.nsec = st.st_mtim.tv_nsec;
  return fs;
}

void ModelStore::swap_in_locked(std::shared_ptr<ModelSnapshot> snap) {
  snap->generation = next_generation_++;
  if (metrics_ != nullptr)
    metrics_->model_generation.set(static_cast<std::int64_t>(snap->generation));
  std::shared_ptr<const ModelSnapshot> next(std::move(snap));
  {
    std::lock_guard lock(snap_mu_);
    snap_.swap(next);
  }
  // `next` (the previous snapshot) is released outside the lock when it
  // goes out of scope — possibly the last reference, freeing the model.
}

std::optional<std::string> ModelStore::publish_locked(std::shared_ptr<ModelSnapshot> snap,
                                                      const PublishOptions& opts,
                                                      std::uint64_t* new_generation) {
  if (!opts.bypass_canary) {
    if (const auto rejected = canary_check_locked(*snap)) {
      if (metrics_ != nullptr) metrics_->reload_rejected.inc();
      return rejected;
    }
  }
  const std::uint64_t gen = next_generation_;
  swap_in_locked(std::move(snap));
  if (!opts.archive_bytes.empty()) archive_locked(gen, opts.archive_bytes);
  if (new_generation != nullptr) *new_generation = gen;
  return std::nullopt;
}

std::optional<std::string> ModelStore::publish(std::shared_ptr<ModelSnapshot> snap,
                                               const PublishOptions& opts,
                                               std::uint64_t* new_generation) {
  std::lock_guard lock(reload_mu_);
  return publish_locked(std::move(snap), opts, new_generation);
}

std::optional<std::string> ModelStore::reload() {
  std::lock_guard lock(reload_mu_);
  return reload_locked();
}

std::optional<std::string> ModelStore::reload_locked() {
  if (path_.empty()) return "model store has no file path";
  const auto t0 = std::chrono::steady_clock::now();
  // Record the stamp before parsing so a write racing the load triggers one
  // more watch cycle rather than being missed.
  loaded_stamp_ = file_stamp(path_);
  if (const auto f = util::failpoint::hit("store.reload"))
    return "model file '" + path_ + "': injected reload failure";

  // Sniff the format from the first bytes so one store serves both: the ncb
  // magic picks the binary loader, anything else is text.
  std::string head;
  if (!read_head(path_, &head)) return "cannot open model file '" + path_ + "'";

  std::shared_ptr<ModelSnapshot> snap;
  std::string owned_bytes;            // text / heap-ncb bytes, kept for the archive
  std::string_view archive_bytes;    // what archive_locked persists
  if (core::detect_model_format(head) == core::ModelFormat::kNcb) {
    std::string error;
    std::shared_ptr<const core::NcbModel> model;
    if (map_binary_) {
      model = core::NcbModel::open(path_, &error);
    } else {
      if (!read_file(path_, &owned_bytes)) return "cannot open model file '" + path_ + "'";
      model = core::NcbModel::from_bytes(owned_bytes, &error);
    }
    if (model == nullptr) return "model file '" + path_ + "': " + error;
    snap = build_snapshot_ncb(dict_, std::move(model), path_, fuse_ctx_);
    archive_bytes = snap->ncb->raw_bytes();
  } else {
    if (!read_file(path_, &owned_bytes)) return "cannot open model file '" + path_ + "'";
    std::string error;
    std::vector<std::string> warnings;
    std::istringstream in(owned_bytes);
    auto loaded = core::load_conventions(in, dict_, &error, &warnings);
    if (!loaded) return "model file '" + path_ + "': " + error;
    snap = build_snapshot(dict_, std::move(*loaded), path_, std::move(warnings), fuse_ctx_);
    archive_bytes = owned_bytes;
  }

  const std::string format = snap->format;
  const std::size_t mapped = snap->ncb != nullptr ? snap->ncb->bytes_mapped() : 0;
  PublishOptions opts;
  opts.archive_bytes = archive_bytes;
  if (const auto rejected = publish_locked(std::move(snap), opts, nullptr)) {
    // The candidate parsed but fails the health gate: keep the previous
    // generation serving. loaded_stamp_ was already recorded, so the
    // watcher won't retry the same bad file every poll.
    return "model file '" + path_ + "': " + *rejected;
  }
  // Stash the load facts even when no metrics are attached yet: the boot
  // load precedes the server's registry, and set_metrics replays the stash
  // so the load-path counters are truthful for a daemon that never swaps.
  pending_load_us_ = static_cast<long long>(elapsed_us(t0));
  pending_load_format_ = format;
  pending_load_mapped_ = mapped;
  if (metrics_ != nullptr) record_pending_load_locked();
  return std::nullopt;
}

void ModelStore::record_pending_load_locked() {
  if (pending_load_us_ < 0) return;
  const auto us = static_cast<std::uint64_t>(pending_load_us_);
  metrics_->reload_us.observe(static_cast<double>(us));
  if (pending_load_format_ == "ncb_mmap") {
    metrics_->load_build_us_ncb_mmap.add(us);
    metrics_->load_bytes_mapped.add(pending_load_mapped_);
  } else if (pending_load_format_ == "ncb") {
    metrics_->load_build_us_ncb.add(us);
  } else {
    metrics_->load_build_us_text.add(us);
  }
  pending_load_us_ = -1;
}

void ModelStore::set_metrics(Metrics* metrics) {
  std::lock_guard lock(reload_mu_);
  metrics_ = metrics;
  if (metrics_ != nullptr) {
    record_pending_load_locked();
    // Publishes that preceded the registry (the boot load) still surface
    // through the generation gauge.
    metrics_->model_generation.set(static_cast<std::int64_t>(generation()));
  }
}

void ModelStore::set_keep_generations(std::size_t n) {
  std::lock_guard lock(reload_mu_);
  keep_generations_ = n;
  if (n > 0 && !path_.empty()) scan_archive_locked();
}

void ModelStore::set_canary(std::string path, std::size_t max_failures) {
  std::lock_guard lock(reload_mu_);
  canary_path_ = std::move(path);
  canary_max_failures_ = max_failures;
}

void ModelStore::set_map_binary(bool on) {
  std::lock_guard lock(reload_mu_);
  map_binary_ = on;
}

std::string ModelStore::gen_file(std::uint64_t gen, core::ModelFormat format) const {
  return gens_dir() + "/gen-" + std::to_string(gen) +
         (format == core::ModelFormat::kNcb ? ".ncb" : ".nc");
}

std::vector<std::uint64_t> ModelStore::list_generations_locked() const {
  std::vector<std::uint64_t> gens;
  DIR* d = ::opendir(gens_dir().c_str());
  if (d == nullptr) return gens;
  while (struct dirent* e = ::readdir(d)) {
    if (const auto g = gen_from_name(e->d_name)) gens.push_back(*g);
  }
  ::closedir(d);
  std::sort(gens.begin(), gens.end());
  gens.erase(std::unique(gens.begin(), gens.end()), gens.end());
  return gens;
}

std::vector<std::uint64_t> ModelStore::list_generations() {
  std::lock_guard lock(reload_mu_);
  return list_generations_locked();
}

void ModelStore::scan_archive_locked() {
  const std::vector<std::uint64_t> gens = list_generations_locked();
  if (!gens.empty()) next_generation_ = std::max(next_generation_, gens.back() + 1);
}

void ModelStore::archive_locked(std::uint64_t gen, std::string_view bytes) {
  if (keep_generations_ == 0 || path_.empty()) return;
  ::mkdir(gens_dir().c_str(), 0755);  // EEXIST is the common case
  // Best-effort: a full disk must not turn a healthy publish into a failed
  // reload — the archive exists to serve rollbacks, not to gate serving.
  if (!write_file_durable(gen_file(gen, core::detect_model_format(bytes)), bytes)) return;
  std::vector<std::uint64_t> gens = list_generations_locked();
  for (std::size_t i = 0; gens.size() - i > keep_generations_; ++i) {
    ::unlink(gen_file(gens[i], core::ModelFormat::kText).c_str());
    ::unlink(gen_file(gens[i], core::ModelFormat::kNcb).c_str());
  }
}

std::optional<std::string> ModelStore::canary_check_locked(
    const ModelSnapshot& candidate) const {
  if (canary_path_.empty()) return std::nullopt;
  std::string text;
  if (!read_file(canary_path_, &text))
    return "canary file '" + canary_path_ + "' unreadable (failing closed)";
  std::size_t queries = 0, failures = 0;
  std::string first;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = std::string_view(text).substr(
        pos, eol == std::string::npos ? std::string::npos : eol - pos);
    pos = eol == std::string::npos ? text.size() : eol + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty() || line.front() == '#') continue;
    const std::size_t comma = line.find(',');
    const std::string_view host = comma == std::string_view::npos ? line : line.substr(0, comma);
    ++queries;
    const auto loc = candidate.geolocator.locate(host);
    const std::string got = loc ? format_hit(*loc) : format_miss();
    const bool ok = comma == std::string_view::npos ? loc.has_value()
                                                    : got == line.substr(comma + 1);
    if (!ok) {
      ++failures;
      if (first.empty()) first = std::string(host) + " -> " + got;
    }
  }
  if (queries == 0)
    return "canary file '" + canary_path_ + "' has no queries (failing closed)";
  if (failures > canary_max_failures_)
    return "canary rejected: " + std::to_string(failures) + "/" + std::to_string(queries) +
           " queries diverged (first: " + first + ")";
  return std::nullopt;
}

std::optional<std::string> ModelStore::rollback(std::uint64_t gen,
                                                std::uint64_t* new_generation) {
  std::lock_guard lock(reload_mu_);
  if (path_.empty()) return "model store has no file path";
  if (keep_generations_ == 0) return "generation archive disabled (--keep-generations)";
  const auto t0 = std::chrono::steady_clock::now();
  // Probe both archive extensions; the bytes themselves (not the name)
  // pick the loader, so a mislabeled archive still restores correctly.
  std::string source = gen_file(gen, core::ModelFormat::kText);
  std::string bytes;
  if (!read_file(source, &bytes)) {
    source = gen_file(gen, core::ModelFormat::kNcb);
    if (!read_file(source, &bytes))
      return "generation " + std::to_string(gen) + " is not in the archive";
  }
  std::shared_ptr<ModelSnapshot> snap;
  if (core::detect_model_format(bytes) == core::ModelFormat::kNcb) {
    // Archive restore is the opt-in-to-full-verification path: from_bytes
    // checks the payload hash, catching archives that rotted on disk.
    std::string error;
    auto model = core::NcbModel::from_bytes(bytes, &error);
    if (model == nullptr)
      return "archived generation " + std::to_string(gen) + ": " + error;
    snap = build_snapshot_ncb(dict_, std::move(model), source, fuse_ctx_);
  } else {
    std::string error;
    std::vector<std::string> warnings;
    std::istringstream in(bytes);
    auto loaded = core::load_conventions(in, dict_, &error, &warnings);
    if (!loaded) return "archived generation " + std::to_string(gen) + ": " + error;
    snap = build_snapshot(dict_, std::move(*loaded), source, std::move(warnings), fuse_ctx_);
  }
  PublishOptions opts;
  opts.bypass_canary = true;  // explicit operator action
  opts.archive_bytes = bytes;
  std::uint64_t published = 0;
  if (const auto err = publish_locked(std::move(snap), opts, &published)) return err;
  if (metrics_ != nullptr) {
    metrics_->rollbacks.inc();
    metrics_->reload_us.observe(static_cast<double>(elapsed_us(t0)));
  }
  if (new_generation != nullptr) *new_generation = published;
  return std::nullopt;
}

void ModelStore::install(const std::vector<core::StoredConvention>& conventions,
                         std::string source) {
  std::lock_guard lock(reload_mu_);
  auto snap = std::make_shared<ModelSnapshot>(dict_);
  snap->source = std::move(source);
  snap->fuse = fuse_ctx_;
  for (const core::StoredConvention& sc : conventions) {
    if (sc.cls == core::NcClass::kPoor) continue;
    snap->geolocator.add(sc.nc, sc.cls);
  }
  snap->convention_count = snap->geolocator.convention_count();
  snap->program_count = snap->geolocator.program_count();
  snap->stored = conventions;
  core::sort_conventions(snap->stored);
  PublishOptions opts;
  opts.bypass_canary = true;  // install() always succeeds
  publish_locked(std::move(snap), opts, nullptr);
}

void ModelStore::set_fuse_context(std::shared_ptr<const fuse::FuseContext> ctx) {
  std::lock_guard lock(reload_mu_);
  fuse_ctx_ = std::move(ctx);
  // Republish the live model with the new context: copy the current
  // snapshot (the Geolocator's compiled matchers copy with it — no regex
  // recompilation) and swap the context. Readers that pinned the previous
  // snapshot finish on the old (model, context) pair, consistently.
  std::shared_ptr<ModelSnapshot> snap;
  {
    std::lock_guard slock(snap_mu_);
    snap = std::make_shared<ModelSnapshot>(*snap_);
  }
  snap->fuse = fuse_ctx_;
  PublishOptions opts;
  opts.bypass_canary = true;  // the model bytes are unchanged
  publish_locked(std::move(snap), opts, nullptr);
}

ModelStore::WatchOutcome ModelStore::poll_watch(std::string* error) {
  std::lock_guard lock(reload_mu_);
  if (path_.empty()) return WatchOutcome::kUnchanged;
  const FileStamp now = file_stamp(path_);
  if (!now.exists) {
    // Mid-rename window of a deploy (or a genuinely deleted model). Keep
    // serving the loaded snapshot and keep watching; don't count this as a
    // failed reload.
    pending_valid_ = false;
    return WatchOutcome::kMissing;
  }
  if (now.same(loaded_stamp_)) {
    pending_valid_ = false;
    return WatchOutcome::kUnchanged;
  }
  if (!pending_valid_ || !now.same(pending_stamp_)) {
    // New mtime: wait until it holds still for one full poll interval so we
    // don't load a file another process is still writing.
    pending_stamp_ = now;
    pending_valid_ = true;
    return WatchOutcome::kDebounced;
  }
  pending_valid_ = false;
  if (const auto err = reload_locked()) {
    if (error != nullptr) *error = *err;
    return WatchOutcome::kReloadFailed;
  }
  return WatchOutcome::kReloaded;
}

std::optional<std::string> ModelStore::apply_delta(const core::ModelDelta& delta,
                                                   DeltaApply* out) {
  std::lock_guard lock(reload_mu_);
  return apply_delta_locked(delta, out);
}

std::optional<std::string> ModelStore::apply_delta_locked(const core::ModelDelta& delta,
                                                          DeltaApply* out) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto reject = [&](std::string msg) -> std::optional<std::string> {
    if (metrics_ != nullptr) metrics_->delta_rejected.inc();
    return msg;
  };

  const std::shared_ptr<const ModelSnapshot> base = current();
  if (delta.base_generation != base->generation)
    return reject("delta targets generation " + std::to_string(delta.base_generation) +
                  " but generation " + std::to_string(base->generation) + " is serving");

  // The merge base: the snapshot's stored list, materialized from the ncb
  // image the first time a delta lands on a binary generation.
  std::vector<core::StoredConvention> stored;
  if (base->stored.empty() && base->ncb != nullptr) {
    std::string error;
    auto s = base->ncb->to_stored(dict_, &error);
    if (!s) return reject("base model: " + error);
    stored = std::move(*s);
    core::sort_conventions(stored);
  } else {
    stored = base->stored;
  }

  // Successor snapshot by structural sharing: the copied Geolocator keeps
  // every unchanged suffix's compiled matcher (for an ncb base, views into
  // the mapping the copied snap->ncb handle pins).
  auto snap = std::make_shared<ModelSnapshot>(*base);
  snap->source = "delta onto gen " + std::to_string(base->generation);
  snap->warnings.clear();

  const auto find_stored = [&stored](std::string_view suffix) {
    return std::find_if(stored.begin(), stored.end(), [&](const core::StoredConvention& sc) {
      return sc.nc.suffix == suffix;
    });
  };
  for (const std::string& suffix : delta.removes) {
    const auto it = find_stored(suffix);
    if (it == stored.end())
      return reject("delta removes unknown suffix '" + suffix + "'");
    stored.erase(it);
    snap->geolocator.remove(suffix);  // no-op for kPoor entries (never added)
  }
  for (const core::StoredConvention& sc : delta.upserts) {
    const auto it = find_stored(sc.nc.suffix);
    if (it == stored.end())
      stored.push_back(sc);
    else
      *it = sc;
    if (sc.cls == core::NcClass::kPoor)
      snap->geolocator.remove(sc.nc.suffix);  // demoted: stored, not served
    else
      snap->geolocator.add(sc.nc, sc.cls);
  }
  core::sort_conventions(stored);
  snap->stored = std::move(stored);
  snap->convention_count = snap->geolocator.convention_count();
  snap->program_count = snap->geolocator.program_count();

  // Archive bytes re-serialized in the base's format, so a delta-built
  // generation is as self-contained a rollback target as a full load.
  std::string bytes;
  if (keep_generations_ > 0 && !path_.empty()) {
    if (base->ncb != nullptr) {
      bytes = core::serialize_conventions_ncb(snap->stored, dict_);
    } else {
      std::ostringstream buf;
      core::save_conventions(buf, snap->stored, dict_);
      bytes = buf.str();
      bytes += core::checksum_footer_line(core::fnv1a_hash(bytes));
      bytes += '\n';
    }
  }
  const std::size_t upserts = delta.upserts.size();
  const std::size_t removes = delta.removes.size();
  const std::size_t conventions = snap->convention_count;
  PublishOptions opts;
  opts.archive_bytes = bytes;
  std::uint64_t published = 0;
  if (const auto err = publish_locked(std::move(snap), opts, &published))
    return reject(*err);
  if (metrics_ != nullptr) {
    metrics_->delta_applies.inc();
    metrics_->delta_apply_us.observe(static_cast<double>(elapsed_us(t0)));
  }
  if (out != nullptr) {
    out->base_generation = delta.base_generation;
    out->new_generation = published;
    out->upserts = upserts;
    out->removes = removes;
    out->conventions = conventions;
  }
  return std::nullopt;
}

std::optional<std::string> ModelStore::apply_delta_file(const std::string& path,
                                                        DeltaApply* out) {
  std::lock_guard lock(reload_mu_);
  std::string bytes;
  if (!read_file(path, &bytes)) {
    if (metrics_ != nullptr) metrics_->delta_rejected.inc();
    return "cannot open delta file '" + path + "'";
  }
  std::string error;
  std::istringstream in(bytes);
  const auto delta = core::load_model_delta(in, dict_, &error);
  if (!delta) {
    if (metrics_ != nullptr) metrics_->delta_rejected.inc();
    return "delta file '" + path + "': " + error;
  }
  return apply_delta_locked(*delta, out);
}

void ModelStore::set_delta_watch(std::string path) {
  std::lock_guard lock(reload_mu_);
  delta_path_ = std::move(path);
  delta_stamp_ = FileStamp{};
  delta_pending_valid_ = false;
}

ModelStore::WatchOutcome ModelStore::poll_delta_watch(std::string* error) {
  std::unique_lock lock(reload_mu_);
  if (delta_path_.empty()) return WatchOutcome::kUnchanged;
  const FileStamp now = file_stamp(delta_path_);
  if (!now.exists) {
    delta_pending_valid_ = false;
    return WatchOutcome::kMissing;
  }
  if (now.same(delta_stamp_)) {
    delta_pending_valid_ = false;
    return WatchOutcome::kUnchanged;
  }
  if (!delta_pending_valid_ || !now.same(delta_pending_stamp_)) {
    // Same debounce as the model watch: a delta is dropped in by rename,
    // but a new mtime must hold still for one poll before we read it.
    delta_pending_stamp_ = now;
    delta_pending_valid_ = true;
    return WatchOutcome::kDebounced;
  }
  delta_pending_valid_ = false;
  // Record before applying: a failed or stale delta is reported once per
  // file change, not once per poll (same contract as poll_watch).
  delta_stamp_ = now;
  const std::string path = delta_path_;
  lock.unlock();
  if (const auto err = apply_delta_file(path)) {
    if (error != nullptr) *error = *err;
    return WatchOutcome::kReloadFailed;
  }
  return WatchOutcome::kReloaded;
}

}  // namespace hoiho::serve
