#include "serve/model_store.h"

#include <sys/stat.h>

#include <fstream>
#include <utility>

namespace hoiho::serve {

namespace {

std::time_t file_mtime(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return 0;
  return st.st_mtime;
}

}  // namespace

ModelStore::ModelStore(const geo::GeoDictionary& dict, std::string path)
    : dict_(dict), path_(std::move(path)) {
  auto empty = std::make_shared<ModelSnapshot>(dict_);
  empty->source = path_.empty() ? "<memory>" : path_;
  std::lock_guard lock(snap_mu_);
  snap_ = std::move(empty);
}

void ModelStore::publish(std::shared_ptr<ModelSnapshot> snap) {
  snap->generation = next_generation_++;
  std::shared_ptr<const ModelSnapshot> next(std::move(snap));
  std::lock_guard lock(snap_mu_);
  snap_.swap(next);
  // `next` (the previous snapshot) is released outside the lock when it
  // goes out of scope — possibly the last reference, freeing the model.
}

std::optional<std::string> ModelStore::reload() {
  std::lock_guard lock(reload_mu_);
  if (path_.empty()) return "model store has no file path";
  // Record the mtime before parsing so a write racing the load triggers one
  // more reload_if_changed() rather than being missed.
  last_mtime_ = file_mtime(path_);
  std::ifstream in(path_);
  if (!in) return "cannot open model file '" + path_ + "'";

  std::string error;
  std::vector<std::string> warnings;
  const auto loaded = core::load_conventions(in, dict_, &error, &warnings);
  if (!loaded) return "model file '" + path_ + "': " + error;

  auto snap = std::make_shared<ModelSnapshot>(dict_);
  snap->source = path_;
  snap->warnings = std::move(warnings);
  for (const core::StoredConvention& sc : *loaded) {
    if (sc.cls == core::NcClass::kPoor) continue;  // unusable per stage 5
    snap->geolocator.add(sc.nc);
  }
  snap->convention_count = snap->geolocator.convention_count();
  publish(std::move(snap));
  return std::nullopt;
}

void ModelStore::install(const std::vector<core::StoredConvention>& conventions,
                         std::string source) {
  std::lock_guard lock(reload_mu_);
  auto snap = std::make_shared<ModelSnapshot>(dict_);
  snap->source = std::move(source);
  for (const core::StoredConvention& sc : conventions) {
    if (sc.cls == core::NcClass::kPoor) continue;
    snap->geolocator.add(sc.nc);
  }
  snap->convention_count = snap->geolocator.convention_count();
  publish(std::move(snap));
}

bool ModelStore::reload_if_changed() {
  {
    std::lock_guard lock(reload_mu_);
    if (path_.empty()) return false;
    if (file_mtime(path_) == last_mtime_) return false;
  }
  reload();
  return true;
}

}  // namespace hoiho::serve
