// A one-endpoint HTTP exporter: GET anything, receive the Prometheus text
// exposition of a metrics registry (the same bytes as the line protocol's
// METRICS verb, minus the "# EOF" framing line, which is a line-protocol
// artifact — HTTP frames with Content-Length).
//
// This exists so a scraper can be pointed at hoihod (--metrics-port)
// without speaking the lookup protocol. It is deliberately not an HTTP
// server: one blocking-ish poll loop on its own thread, one response per
// connection, connection closed after the write. Request bytes are read
// only to drain them; any request gets the metrics page.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "util/net.h"

namespace hoiho::serve {

class MetricsHttp {
 public:
  // Snapshots `registry` per request; it must outlive stop().
  MetricsHttp(const obs::Registry& registry, std::uint16_t port, bool bind_any = false)
      : registry_(registry), port_(port), bind_any_(bind_any) {}
  ~MetricsHttp() { stop(); }

  MetricsHttp(const MetricsHttp&) = delete;
  MetricsHttp& operator=(const MetricsHttp&) = delete;

  // Binds and starts the exporter thread; false (with *error) on failure.
  bool start(std::string* error = nullptr);

  // Joins the exporter thread. Idempotent; called by the destructor.
  void stop();

  // The bound port (valid after start(); useful with port = 0).
  std::uint16_t port() const { return port_; }

 private:
  void loop();

  const obs::Registry& registry_;
  std::uint16_t port_;
  bool bind_any_;
  util::Fd listen_fd_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
};

}  // namespace hoiho::serve
