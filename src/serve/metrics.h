// Lock-free serving counters.
//
// One Metrics object lives for the lifetime of a Server; workers and the
// event loop bump counters with relaxed atomics (each counter is an
// independent statistic — no cross-counter invariant is promised, so a
// snapshot taken mid-flight may show e.g. hits+misses briefly behind
// requests). snapshot() materializes a plain-struct copy for formatting.
// The header is deliberately free of serving-specific types so later
// subsystems (sharding proxies, replication feeders) can reuse it.
#pragma once

#include <atomic>
#include <cstdint>

namespace hoiho::serve {

struct Metrics {
  // Request outcomes.
  std::atomic<std::uint64_t> requests{0};  // lookup lines received
  std::atomic<std::uint64_t> hits{0};      // lookups that produced a location
  std::atomic<std::uint64_t> misses{0};    // well-formed lookups with no answer
  std::atomic<std::uint64_t> errors{0};    // malformed/oversized/unservable lines
  std::atomic<std::uint64_t> admin{0};     // STATS / RELOAD verbs

  // Model lifecycle.
  std::atomic<std::uint64_t> reloads{0};
  std::atomic<std::uint64_t> reload_failures{0};
  std::atomic<std::uint64_t> reload_debounced{0};  // watch polls deferred for stability

  // Fault tolerance (see DESIGN.md §9).
  std::atomic<std::uint64_t> deadline_expired{0};  // lines answered ERR,deadline
  std::atomic<std::uint64_t> shed_busy{0};         // lines answered ERR,busy
  std::atomic<std::uint64_t> idle_closed{0};       // connections reaped for idleness
  std::atomic<std::uint64_t> injected_faults{0};   // failpoint firings observed

  // Batching shape: avg batch size = batched_lines / batches.
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> batched_lines{0};

  // Connection churn.
  std::atomic<std::uint64_t> connections_opened{0};
  std::atomic<std::uint64_t> connections_closed{0};

  // Per-stage wall time, nanoseconds (event-loop parse/write, worker lookup).
  std::atomic<std::uint64_t> parse_ns{0};
  std::atomic<std::uint64_t> lookup_ns{0};
  std::atomic<std::uint64_t> write_ns{0};

  struct Snapshot {
    std::uint64_t requests = 0, hits = 0, misses = 0, errors = 0, admin = 0;
    std::uint64_t reloads = 0, reload_failures = 0, reload_debounced = 0;
    std::uint64_t deadline_expired = 0, shed_busy = 0, idle_closed = 0, injected_faults = 0;
    std::uint64_t batches = 0, batched_lines = 0;
    std::uint64_t connections_opened = 0, connections_closed = 0;
    std::uint64_t parse_ns = 0, lookup_ns = 0, write_ns = 0;

    double avg_batch() const {
      return batches == 0 ? 0.0
                          : static_cast<double>(batched_lines) / static_cast<double>(batches);
    }
  };

  Snapshot snapshot() const {
    Snapshot s;
    s.requests = requests.load(std::memory_order_relaxed);
    s.hits = hits.load(std::memory_order_relaxed);
    s.misses = misses.load(std::memory_order_relaxed);
    s.errors = errors.load(std::memory_order_relaxed);
    s.admin = admin.load(std::memory_order_relaxed);
    s.reloads = reloads.load(std::memory_order_relaxed);
    s.reload_failures = reload_failures.load(std::memory_order_relaxed);
    s.reload_debounced = reload_debounced.load(std::memory_order_relaxed);
    s.deadline_expired = deadline_expired.load(std::memory_order_relaxed);
    s.shed_busy = shed_busy.load(std::memory_order_relaxed);
    s.idle_closed = idle_closed.load(std::memory_order_relaxed);
    s.injected_faults = injected_faults.load(std::memory_order_relaxed);
    s.batches = batches.load(std::memory_order_relaxed);
    s.batched_lines = batched_lines.load(std::memory_order_relaxed);
    s.connections_opened = connections_opened.load(std::memory_order_relaxed);
    s.connections_closed = connections_closed.load(std::memory_order_relaxed);
    s.parse_ns = parse_ns.load(std::memory_order_relaxed);
    s.lookup_ns = lookup_ns.load(std::memory_order_relaxed);
    s.write_ns = write_ns.load(std::memory_order_relaxed);
    return s;
  }

  void add(std::atomic<std::uint64_t>& counter, std::uint64_t n) {
    counter.fetch_add(n, std::memory_order_relaxed);
  }
};

}  // namespace hoiho::serve
