// Serving counters as registry handles (DESIGN.md §11).
//
// One Metrics object lives for the lifetime of a Server. Historically this
// was a bag of raw atomics; it is now a facade over obs::Registry so the
// serving counters land in the same substrate (and the same snapshot) as
// the learner pipeline and ingest counters. Pass a shared registry to merge
// them; the default constructor owns a private one.
//
// Field names are unchanged, and obs::Counter keeps inc()/add()/load(), so
// callers read the same way they always did. The STATS v1 wire format
// (protocol.h format_stats) is byte-identical to the raw-atomics era.
//
// Snapshot consistency: snapshot() reads through obs::Registry::snapshot(),
// which materializes metrics in *registration order* behind an acquire
// fence. The constructor registers effect counters before their cause —
// hits/misses/errors before requests — so a snapshot taken mid-flight can
// no longer show hits+misses ahead of requests on TSO hardware (the old
// field-by-field relaxed loads made that skew easy to observe under load).
#pragma once

#include <cstdint>
#include <memory>

#include "obs/metrics.h"

namespace hoiho::serve {

class Metrics {
 public:
  // `registry` null means this Metrics owns a private registry; non-null
  // shares the caller's (which must outlive this object).
  explicit Metrics(obs::Registry* registry = nullptr);

  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  // Request outcomes. NOTE: registration order in the constructor, not
  // declaration order here, is what snapshot consistency hangs on.
  obs::Counter requests;  // lookup lines received
  obs::Counter hits;      // lookups that produced a location
  obs::Counter misses;    // well-formed lookups with no answer
  obs::Counter errors;    // malformed/oversized/unservable lines
  obs::Counter admin;     // STATS / STATS2 / METRICS / RELOAD verbs

  // Model lifecycle. reload_rejected / rollbacks / worker_stalled and the
  // delta family are registry-only (STATS2 / METRICS): the STATS v1 key set
  // is frozen.
  obs::Counter reloads;
  obs::Counter reload_failures;
  obs::Counter reload_debounced;  // watch polls deferred for stability
  obs::Counter reload_rejected;   // canary gate kept the old generation
  obs::Counter rollbacks;         // ROLLBACK verbs that republished an archive
  obs::Counter worker_stalled;    // watchdog: worker stuck on one batch
  obs::Counter delta_applies;     // model deltas published (DELTA verb / watch)
  obs::Counter delta_rejected;    // stale base / unknown suffix / torn file
  obs::Histogram delta_apply_us;  // wall time of one apply_delta publish
  obs::Gauge model_generation;    // the serving generation, updated per publish

  // GEOB batch accounting: subjects counted under requests/hits/misses as
  // usual; these add per-batch shape (avg GEOB size = subjects / batches).
  obs::Counter geob_batches;   // GEOB blocks answered
  obs::Counter geob_subjects;  // subject lines across all GEOB blocks

  // Model-format observability (DESIGN.md §15): end-to-end reload latency
  // plus per-format load accounting, so dashboards can tell a cheap mmap
  // republish from a full text parse. Registry-only (STATS2 / METRICS).
  obs::Histogram reload_us;             // serve_reload_us (publishes + rollbacks)
  obs::Counter load_bytes_mapped;       // model_load_bytes_mapped (mmap'ed model bytes)
  obs::Counter load_build_us_text;      // model_load_build_us{format="text"}
  obs::Counter load_build_us_ncb;       // model_load_build_us{format="ncb"}
  obs::Counter load_build_us_ncb_mmap;  // model_load_build_us{format="ncb_mmap"}

  // Fault tolerance (see DESIGN.md §9).
  obs::Counter deadline_expired;  // lines answered ERR,deadline
  obs::Counter shed_busy;         // lines answered ERR,busy
  obs::Counter idle_closed;       // connections reaped for idleness
  obs::Counter injected_faults;   // failpoint firings observed

  // Batching shape: avg batch size = batched_lines / batches.
  obs::Counter batches;
  obs::Counter batched_lines;

  // Connection churn.
  obs::Counter connections_opened;
  obs::Counter connections_closed;

  // Per-stage wall time, nanoseconds (event-loop parse/write, worker lookup).
  obs::Counter parse_ns;
  obs::Counter lookup_ns;
  obs::Counter write_ns;

  // Per-batch worker latency (dequeue to answers formatted); the histogram
  // behind the STATS2 percentiles.
  obs::Histogram batch_ns;

  // Plain-struct copy for STATS v1 formatting; field set unchanged.
  struct Snapshot {
    std::uint64_t requests = 0, hits = 0, misses = 0, errors = 0, admin = 0;
    std::uint64_t reloads = 0, reload_failures = 0, reload_debounced = 0;
    std::uint64_t deadline_expired = 0, shed_busy = 0, idle_closed = 0, injected_faults = 0;
    std::uint64_t batches = 0, batched_lines = 0;
    std::uint64_t connections_opened = 0, connections_closed = 0;
    std::uint64_t parse_ns = 0, lookup_ns = 0, write_ns = 0;

    double avg_batch() const {
      return batches == 0 ? 0.0
                          : static_cast<double>(batched_lines) / static_cast<double>(batches);
    }
  };

  // One consistent materialization (see header comment). Derived from
  // registry().snapshot(), never from per-field loads.
  Snapshot snapshot() const;

  // The registry behind the handles — what STATS2 / METRICS / the HTTP
  // endpoint snapshot. Holds every serve_* metric plus whatever else a
  // shared registry carries.
  obs::Registry& registry() { return *registry_; }
  const obs::Registry& registry() const { return *registry_; }

 private:
  std::unique_ptr<obs::Registry> owned_;
  obs::Registry* registry_ = nullptr;
};

}  // namespace hoiho::serve
