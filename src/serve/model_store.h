// Hot-reloadable model storage for the serving subsystem.
//
// A ModelStore turns a saved convention file (core/nc_io format) into an
// immutable ModelSnapshot — a fully-built Geolocator plus provenance —
// published behind a mutex-guarded shared_ptr (one uncontended lock per
// current() call; the server takes one snapshot per request batch, so the
// lock is off the per-lookup path). Readers grab the current snapshot and
// keep lookups on it even while a reload swaps in a successor, so a reload
// never drops or torn-reads a request:
//
//   reader:  auto snap = store.current();   // refcount pins the model
//            snap->geolocator.locate(...)   // const, thread-safe
//   admin:   store.reload()                 // builds aside, swaps atomically
//
// Failed reloads (missing file, malformed model) keep the previous snapshot
// serving and report the error; there is no window with no model installed.
#pragma once

#include <cstdint>
#include <ctime>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/geolocate.h"
#include "core/nc_io.h"
#include "geo/dictionary.h"

namespace hoiho::serve {

// One immutable, reference-counted model generation.
struct ModelSnapshot {
  core::Geolocator geolocator;
  std::uint64_t generation = 0;      // monotonically increasing per install
  std::size_t convention_count = 0;  // usable conventions actually added
  std::string source;                // file path or "<memory>"
  std::vector<std::string> warnings; // loader notes (dropped hints, dupes)

  explicit ModelSnapshot(const geo::GeoDictionary& dict) : geolocator(dict) {}
};

class ModelStore {
 public:
  // `path` may be empty for stores fed only via install() (tests, benches).
  // Construction installs an empty generation-0 snapshot; call reload() to
  // load the file.
  explicit ModelStore(const geo::GeoDictionary& dict, std::string path = {});

  // The current snapshot; never null. Safe from any thread.
  std::shared_ptr<const ModelSnapshot> current() const {
    std::lock_guard lock(snap_mu_);
    return snap_;
  }

  // Re-reads the model file and atomically swaps in the new snapshot.
  // Returns the error message on failure (previous snapshot stays current).
  // Serialized internally; safe from any thread.
  std::optional<std::string> reload();

  // Installs an in-memory model (conventions classified kPoor are skipped,
  // matching the daemon's file path). Always succeeds.
  void install(const std::vector<core::StoredConvention>& conventions,
               std::string source = "<memory>");

  // Reloads only if the model file's mtime changed since the last (attempted)
  // load. Returns true if a reload was attempted.
  bool reload_if_changed();

  std::uint64_t generation() const { return current()->generation; }
  const std::string& path() const { return path_; }
  const geo::GeoDictionary& dictionary() const { return dict_; }

 private:
  void publish(std::shared_ptr<ModelSnapshot> snap);

  const geo::GeoDictionary& dict_;
  std::string path_;
  std::mutex reload_mu_;       // serializes reload/install; readers never take it
  std::uint64_t next_generation_ = 1;  // guarded by reload_mu_
  std::time_t last_mtime_ = 0;         // guarded by reload_mu_
  mutable std::mutex snap_mu_;         // guards snap_ swap/copy only
  std::shared_ptr<const ModelSnapshot> snap_;
};

}  // namespace hoiho::serve
