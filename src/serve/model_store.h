// Hot-reloadable model storage for the serving subsystem.
//
// A ModelStore turns a saved convention file (core/nc_io format) into an
// immutable ModelSnapshot — a fully-built Geolocator plus provenance —
// published behind a mutex-guarded shared_ptr (one uncontended lock per
// current() call; the server takes one snapshot per request batch, so the
// lock is off the per-lookup path). Readers grab the current snapshot and
// keep lookups on it even while a reload swaps in a successor, so a reload
// never drops or torn-reads a request:
//
//   reader:  auto snap = store.current();   // refcount pins the model
//            snap->geolocator.locate(...)   // const, thread-safe
//   admin:   store.reload()                 // builds aside, swaps atomically
//
// Failed reloads (missing file, malformed model) keep the previous snapshot
// serving and report the error; there is no window with no model installed.
//
// Since the incremental-relearning redesign (DESIGN.md §16) the store's
// public surface is generation-addressed rather than file-addressed: every
// way a model can change — reload(), install(), rollback(), apply_delta()
// — routes through one publish(snapshot, options) pipeline that numbers,
// canary-gates, swaps, and archives the generation. apply_delta() takes a
// core::ModelDelta (the learner's run_delta output, or a delta file) and
// builds the successor snapshot by structural sharing: unchanged suffixes
// keep the base generation's compiled matchers (for an mmap'd ncb base,
// views into the base mapping, which the new snapshot pins), so the apply
// cost scales with the delta, not the model.
#pragma once

#include <cstdint>
#include <ctime>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/delta.h"
#include "core/geolocate.h"
#include "core/nc_io.h"
#include "core/ncb.h"
#include "fuse/fuser.h"
#include "geo/dictionary.h"
#include "serve/metrics.h"

namespace hoiho::serve {

// One immutable, reference-counted model generation.
struct ModelSnapshot {
  core::Geolocator geolocator;
  std::uint64_t generation = 0;      // monotonically increasing per install
  std::size_t convention_count = 0;  // usable conventions actually added
  std::size_t program_count = 0;     // compiled regex programs prebuilt in add()
  std::string source;                // file path or "<memory>"
  std::string format = "text";       // "text" | "ncb" | "ncb_mmap"
  std::vector<std::string> warnings; // loader notes (dropped hints, dupes)

  // The full stored convention list (kPoor included — the serialized model
  // keeps them even though the Geolocator skips them), in canonical
  // suffix-sorted order. This is what apply_delta merges against and what
  // re-serializes byte-identically for the archive. Text loads and
  // install() populate it eagerly; an ncb base leaves it empty and the
  // first apply_delta materializes it via NcbModel::to_stored().
  std::vector<core::StoredConvention> stored;

  // When the snapshot was built from a binary model, this pins the mapping
  // (or aligned buffer) the Geolocator's matchers are views over. Must
  // outlive the geolocator member — declared after it, destroyed first is
  // fine because the matchers also hold their own keepalives; this handle
  // additionally lets admin surfaces report bytes_mapped().
  std::shared_ptr<const core::NcbModel> ncb;

  // Measurement-side context for the GEO verb (null = hostname-only
  // fusion). Shared across generations: a model reload keeps the context,
  // a set_fuse_context() republishes the model (RTT campaigns and models
  // churn on different cadences).
  std::shared_ptr<const fuse::FuseContext> fuse;

  explicit ModelSnapshot(const geo::GeoDictionary& dict) : geolocator(dict) {}
};

class ModelStore {
 public:
  // `path` may be empty for stores fed only via install() (tests, benches).
  // Construction installs an empty generation-0 snapshot; call reload() to
  // load the file.
  explicit ModelStore(const geo::GeoDictionary& dict, std::string path = {});

  // The current snapshot; never null. Safe from any thread.
  std::shared_ptr<const ModelSnapshot> current() const {
    std::lock_guard lock(snap_mu_);
    return snap_;
  }

  // Re-reads the model file and atomically swaps in the new snapshot.
  // Returns the error message on failure (previous snapshot stays current).
  // Serialized internally; safe from any thread.
  std::optional<std::string> reload();

  // Installs an in-memory model (conventions classified kPoor are skipped,
  // matching the daemon's file path). Always succeeds.
  void install(const std::vector<core::StoredConvention>& conventions,
               std::string source = "<memory>");

  // Attaches (or replaces, or clears with null) the fusion context every
  // snapshot carries. The current snapshot is republished with the new
  // context under a fresh generation, so readers that pin a snapshot see a
  // consistent (model, context) pair; subsequent reload()s inherit it.
  void set_fuse_context(std::shared_ptr<const fuse::FuseContext> ctx);

  // One mtime-watch poll step (what --watch-ms drives). Deploys rewrite the
  // model via rename(), so a poll can land mid-deploy: the file may be
  // transiently missing or still being written. Rather than treating either
  // as a failed reload (and logging every poll), the watcher:
  //   - reports kMissing while the file is absent — not an error, no reload;
  //   - debounces: a new mtime must be observed identical on two consecutive
  //     polls before a reload is attempted (kDebounced while waiting);
  //   - reloads only then, so a failure is reported once per file change,
  //     not once per poll.
  // Comparison uses nanosecond mtime (st_mtim), so back-to-back rewrites
  // within the same second are still detected.
  enum class WatchOutcome { kUnchanged, kMissing, kDebounced, kReloaded, kReloadFailed };
  WatchOutcome poll_watch(std::string* error = nullptr);

  // --- Generation-addressed publishing (DESIGN.md §16) ---

  // Knobs for one publish. Defaults match reload(): canary-gated, archived
  // when archive_bytes is non-empty.
  struct PublishOptions {
    bool bypass_canary = false;        // install()/rollback(): operator actions
    std::string_view archive_bytes{};  // serialized model for the lineage archive
  };

  // The single pipeline every model change goes through: canary-gate the
  // candidate (unless bypassed), assign the next generation number, swap it
  // in for readers, archive the bytes, and update model lifecycle metrics.
  // On rejection the serving snapshot is untouched and the error names the
  // divergence. *new_generation (if non-null) receives the published number.
  std::optional<std::string> publish(std::shared_ptr<ModelSnapshot> snap,
                                     const PublishOptions& opts,
                                     std::uint64_t* new_generation = nullptr);
  std::optional<std::string> publish(std::shared_ptr<ModelSnapshot> snap) {
    return publish(std::move(snap), PublishOptions{}, nullptr);
  }

  // What one apply_delta() did, for admin responses and benches.
  struct DeltaApply {
    std::uint64_t base_generation = 0;  // generation the delta was applied on
    std::uint64_t new_generation = 0;
    std::size_t upserts = 0;
    std::size_t removes = 0;
    std::size_t conventions = 0;  // usable conventions in the new snapshot
  };

  // Applies a model delta (core/delta.h) to the *serving* generation and
  // publishes the successor. Rejects — previous snapshot stays current,
  // serve_delta_rejected bumps — when the delta's base generation is not
  // the serving one (stale delta: the world moved underneath it) or when it
  // removes a suffix the base does not carry (a torn or mismatched delta).
  // The successor shares every unchanged suffix's compiled matcher with the
  // base snapshot and is archived re-serialized in the base's format, so
  // rollback targets stay self-contained. Canary-gated like a reload.
  std::optional<std::string> apply_delta(const core::ModelDelta& delta,
                                         DeltaApply* out = nullptr);

  // Loads a delta file (strict: checksum footer required — a torn delta
  // never publishes) and applies it. The DELTA admin verb and the delta
  // watcher both land here.
  std::optional<std::string> apply_delta_file(const std::string& path,
                                              DeltaApply* out = nullptr);

  // Watches `path` for model *deltas* the way poll_watch watches the model
  // file: missing file is idle (deploys drop the delta in by rename), a new
  // ns-mtime must hold still for one poll before the file is applied, and a
  // failed/rejected apply is reported once per file change, not per poll.
  // Empty path disables. Driven by the daemon's --delta-watch flag.
  void set_delta_watch(std::string path);
  WatchOutcome poll_delta_watch(std::string* error = nullptr);

  // --- Versioned lineage & health-gated publishing (DESIGN.md §14) ---

  // Keeps the last `n` published model files as `<path>.gens/gen-<N>.nc`
  // (oldest pruned past n). 0 (the default) disables archiving. The archive
  // directory is rescanned here so generation numbers keep increasing
  // across daemon restarts — a rollback target never collides with a fresh
  // install's number.
  void set_keep_generations(std::size_t n);

  // Canary gate: before a reload() (or watch-triggered reload) publishes,
  // replay the queries in `path` against the candidate snapshot. Each line
  // is `<hostname>` (must not answer MISS) or `<hostname>,<expected>` where
  // <expected> is the exact wire response ("MISS" or "lat,lon,code,method");
  // '#' lines are comments. More than `max_failures` divergences reject the
  // reload: the serving snapshot is untouched, the error names the first
  // divergence, and serve_reload_rejected is bumped. An unreadable canary
  // file also rejects (fail closed — a gate that silently vanishes is worse
  // than a loud one). Empty `path` disables the gate. install() and
  // rollback() bypass it (explicit operator actions).
  void set_canary(std::string path, std::size_t max_failures = 0);

  // Counters for rejected reloads / rollbacks (serve_reload_rejected,
  // serve_rollbacks) and the model load-path metrics; null = uncounted.
  // Must outlive the store. A load that happened before metrics were
  // attached (the daemon's boot load precedes the server's registry) is
  // replayed here so the load-path counters are truthful for a process
  // that never hot-swaps.
  void set_metrics(Metrics* metrics);

  // Binary models are mmap'ed by default (reload cost O(pages touched)).
  // false loads them into an owned buffer instead — with full payload
  // verification — for callers that must not hold a file mapping (tests,
  // benches comparing load strategies).
  void set_map_binary(bool on);

  // Archived generation numbers, ascending. Empty when archiving is off.
  std::vector<std::uint64_t> list_generations();

  // Republishes archived generation `gen` under a fresh generation number
  // (lineage is append-only: a rollback is a new generation whose bytes are
  // an old one's, so GENS shows the full history). Bypasses the canary.
  // The rolled-back model is re-archived, and the mtime watcher will not
  // re-load the bad on-disk file afterwards (its stamp was recorded at the
  // failed/rolled-back load). Returns the error message on failure;
  // *new_generation (if non-null) receives the published number on success.
  std::optional<std::string> rollback(std::uint64_t gen,
                                      std::uint64_t* new_generation = nullptr);

  std::uint64_t generation() const { return current()->generation; }
  const std::string& path() const { return path_; }
  const geo::GeoDictionary& dictionary() const { return dict_; }

 private:
  // Nanosecond-resolution mtime plus existence, so two rewrites within one
  // second still compare unequal.
  struct FileStamp {
    bool exists = false;
    std::time_t sec = 0;
    long nsec = 0;
    bool same(const FileStamp& o) const {
      return exists == o.exists && sec == o.sec && nsec == o.nsec;
    }
  };

  static FileStamp file_stamp(const std::string& path);
  // The swap itself (numbers the snapshot, flips snap_); publish() adds the
  // gate/archive/metrics around it. Requires reload_mu_.
  void swap_in_locked(std::shared_ptr<ModelSnapshot> snap);
  std::optional<std::string> publish_locked(std::shared_ptr<ModelSnapshot> snap,
                                            const PublishOptions& opts,
                                            std::uint64_t* new_generation);
  std::optional<std::string> reload_locked();       // requires reload_mu_
  std::optional<std::string> apply_delta_locked(const core::ModelDelta& delta,
                                                DeltaApply* out);  // requires reload_mu_

  // Lineage helpers; all require reload_mu_.
  std::string gens_dir() const { return path_ + ".gens"; }
  // Archives carry the extension of the format they hold: gen-<N>.nc for
  // text bytes, gen-<N>.ncb for binary (rollback probes both).
  std::string gen_file(std::uint64_t gen, core::ModelFormat format) const;
  std::vector<std::uint64_t> list_generations_locked() const;
  void scan_archive_locked();  // advances next_generation_ past archived gens
  void archive_locked(std::uint64_t gen, std::string_view bytes);
  std::optional<std::string> canary_check_locked(const ModelSnapshot& candidate) const;
  void record_pending_load_locked();  // flushes the stashed load into metrics_

  const geo::GeoDictionary& dict_;
  std::string path_;
  std::shared_ptr<const fuse::FuseContext> fuse_ctx_;  // guarded by reload_mu_
  std::mutex reload_mu_;       // serializes reload/install; readers never take it
  std::uint64_t next_generation_ = 1;  // guarded by reload_mu_
  std::size_t keep_generations_ = 0;   // guarded by reload_mu_
  bool map_binary_ = true;             // guarded by reload_mu_
  std::string canary_path_;            // guarded by reload_mu_
  std::size_t canary_max_failures_ = 0;  // guarded by reload_mu_
  Metrics* metrics_ = nullptr;         // set once before serving; not guarded
  long long pending_load_us_ = -1;     // boot-load cost awaiting metrics; reload_mu_
  std::string pending_load_format_;    // guarded by reload_mu_
  std::size_t pending_load_mapped_ = 0;  // guarded by reload_mu_
  FileStamp loaded_stamp_;             // stamp at last (attempted) load; reload_mu_
  FileStamp pending_stamp_;            // candidate stamp awaiting debounce; reload_mu_
  bool pending_valid_ = false;         // guarded by reload_mu_
  std::string delta_path_;             // delta watch target; reload_mu_
  FileStamp delta_stamp_;              // stamp at last (attempted) apply; reload_mu_
  FileStamp delta_pending_stamp_;      // candidate awaiting debounce; reload_mu_
  bool delta_pending_valid_ = false;   // guarded by reload_mu_
  mutable std::mutex snap_mu_;         // guards snap_ swap/copy only
  std::shared_ptr<const ModelSnapshot> snap_;
};

}  // namespace hoiho::serve
