#include "serve/metrics_http.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace hoiho::serve {

bool MetricsHttp::start(std::string* error) {
  listen_fd_ = util::listen_tcp(port_, error, bind_any_);
  if (!listen_fd_) return false;
  if (!util::set_nonblocking(listen_fd_.get())) {
    if (error != nullptr) *error = "cannot set metrics socket non-blocking";
    return false;
  }
  const auto bound = util::local_port(listen_fd_.get());
  if (!bound) {
    if (error != nullptr) *error = "getsockname failed";
    return false;
  }
  port_ = *bound;
  thread_ = std::thread([this] { loop(); });
  return true;
}

void MetricsHttp::stop() {
  if (!thread_.joinable()) return;
  stopping_.store(true, std::memory_order_release);
  thread_.join();
  listen_fd_.reset();
}

void MetricsHttp::loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_.get(), POLLIN, 0};
    const int n = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (n <= 0) continue;  // timeout (stop check) or EINTR

    util::Fd conn(::accept(listen_fd_.get(), nullptr, nullptr));
    if (!conn) continue;
    // Blocking I/O with timeouts: a scraper that stalls cannot wedge the
    // exporter for more than a second per request.
    util::set_io_timeouts(conn.get(), /*recv_timeout_ms=*/1000, /*send_timeout_ms=*/1000);

    // Drain the request head (we answer any request with the metrics page;
    // headers only need to be consumed, not parsed).
    char buf[4096];
    std::string head;
    while (head.find("\r\n\r\n") == std::string::npos && head.size() < (64u << 10)) {
      const ssize_t r = ::recv(conn.get(), buf, sizeof(buf), 0);
      if (r > 0) {
        head.append(buf, static_cast<std::size_t>(r));
      } else if (r < 0 && errno == EINTR) {
        continue;
      } else {
        break;  // EOF, timeout, or error: respond with what we have anyway
      }
    }

    const std::string body = registry_.snapshot().to_prometheus();
    std::string resp = "HTTP/1.0 200 OK\r\n";
    resp += "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n";
    resp += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    resp += "Connection: close\r\n\r\n";
    resp += body;
    util::write_all(conn.get(), resp);
  }
}

}  // namespace hoiho::serve
