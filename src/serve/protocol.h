// The hoihod wire protocol: one request line in, one response line out.
//
// Grammar (all lines '\n'-terminated; '\r' before '\n' is tolerated):
//
//   request   = lookup | "STATS" | "RELOAD"
//   lookup    = hostname                     ; anything that is not a verb
//
//   response  = hit | miss | stats | reload-ok | reload-err | err
//   hit       = lat "," lon "," code "," method
//   method    = "learned" | "dictionary"     ; how the code was resolved
//   miss      = "MISS"                       ; no convention / unknown code
//   stats     = "STATS," kv *("," kv)        ; kv = key "=" value
//   reload-ok = "RELOAD,ok,generation=" N ",conventions=" N
//   reload-err= "RELOAD,error," message
//   err       = "ERR," reason                ; empty or oversized line
//
// Responses preserve request order within a connection. Requests are
// independent across connections; pipelining any number of request lines
// before reading is allowed and is how the load generator reaches peak
// throughput.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "core/geolocate.h"
#include "serve/metrics.h"
#include "serve/model_store.h"

namespace hoiho::serve {

enum class RequestKind { kLookup, kStats, kReload, kEmpty };

struct Request {
  RequestKind kind = RequestKind::kLookup;
  std::string_view hostname;  // views into the request line; kLookup only
};

// Classifies one request line (without the trailing newline).
Request parse_request(std::string_view line);

// Response formatters. None include the trailing '\n'; the server appends
// it when framing.
std::string format_hit(const core::Geolocation& g);
std::string format_miss();
std::string format_error(std::string_view reason);
std::string format_stats(const Metrics::Snapshot& m, std::uint64_t generation,
                         std::size_t conventions, std::size_t programs = 0);
std::string format_reload_ok(std::uint64_t generation, std::size_t conventions);
std::string format_reload_error(std::string_view message);

// Response classification (client side: tests, load generator).
enum class ResponseKind { kHit, kMiss, kStats, kReload, kReloadError, kError };
ResponseKind classify_response(std::string_view line);

}  // namespace hoiho::serve
